#!/usr/bin/env python3
"""Pretty-print and diff observability artifacts from the flowtune
stats plane. Three input shapes are auto-detected:

  metrics snapshot   {"ts_us": ..., "metrics": {...}}
      -- the stats socket's "json" request, the daemon's --stats-file,
      or the bench's metrics_snapshot.json artifact
  flight dump        {"kind": "flight", "recent": [...], "black_box": [...]}
      -- the stats socket's "flight" request, the daemon's --flight-out
      auto-flush, or the bench's flight_dump.json artifact
  bench results      {..., "tracing": {"e2e": {...}}}
      -- BENCH_net_throughput.json; renders the traced update path's
      per-hop spans as an ASCII timeline

Usage:

  # Pretty-print one snapshot (live or from a file)
  echo json | nc -U /tmp/flowtune_stats.sock | tools/obs_dump.py
  tools/obs_dump.py metrics_snapshot.json

  # Slow-round forensics: per-round table + phase bars for every round
  # the flight recorder promoted into its black box
  echo flight | nc -U /tmp/flowtune_stats.sock | tools/obs_dump.py
  tools/obs_dump.py flight_dump.json

  # Traced e2e span timeline from a bench run
  tools/obs_dump.py BENCH_net_throughput.json

  # Filter metrics by name substring
  tools/obs_dump.py metrics_snapshot.json --match shard0

  # Diff two metrics snapshots (counter deltas, p99 shifts)
  tools/obs_dump.py before.json after.json

Counters/gauges print as aligned name/value rows; histograms get count,
mean and p50/p90/p99/max plus a compact log2-bucket sparkline. Diffing
shows per-counter deltas and per-histogram p99 movement, which is the
quickest way to see where a regression's latency went.
"""

import argparse
import json
import signal
import sys

# Dying quietly when the reader closes early (| head) beats a traceback.
signal.signal(signal.SIGPIPE, signal.SIG_DFL)

SPARK = " .:-=+*#%@"


def load(path):
    if path == "-":
        doc = json.load(sys.stdin)
    else:
        with open(path) as f:
            doc = json.load(f)
    return doc


def sparkline(buckets):
    """buckets: [[lower_bound, count], ...] (sparse)."""
    if not buckets:
        return ""
    counts = [n for _, n in buckets]
    peak = max(counts)
    out = []
    for _, n in buckets:
        idx = 0 if n == 0 else 1 + int((len(SPARK) - 2) * n / peak)
        out.append(SPARK[idx])
    return "".join(out)


def fmt_value(v):
    return f"{v:,}" if isinstance(v, int) else f"{v:g}"


def print_snapshot(doc, match):
    metrics = doc["metrics"]
    names = [n for n in metrics if match in n]
    if not names:
        print(f"no metrics match '{match}'", file=sys.stderr)
        return
    width = max(len(n) for n in names)
    scalars = [(n, metrics[n]) for n in names
               if metrics[n]["kind"] in ("counter", "gauge")]
    histos = [(n, metrics[n]) for n in names if metrics[n]["kind"] == "histo"]
    if scalars:
        print(f"-- counters / gauges ({len(scalars)})")
        for n, m in scalars:
            print(f"  {n:<{width}}  {fmt_value(m['value']):>14}")
    if histos:
        print(f"-- histograms ({len(histos)})")
        for n, m in histos:
            print(f"  {n:<{width}}  count={m['count']:<10,} "
                  f"mean={m['mean']:<10g} p50={m['p50']:<8g} "
                  f"p90={m['p90']:<8g} p99={m['p99']:<10g} "
                  f"max<={m['max']:<12g} |{sparkline(m['buckets'])}|")


def print_diff(before, after, match):
    b, a = before["metrics"], after["metrics"]
    names = sorted(set(b) | set(a))
    names = [n for n in names if match in n]
    width = max((len(n) for n in names), default=0)
    dt_us = after.get("ts_us", 0) - before.get("ts_us", 0)
    if dt_us > 0:
        print(f"-- snapshots {dt_us / 1e6:.3f} s apart")
    for n in names:
        mb, ma = b.get(n), a.get(n)
        if mb is None or ma is None:
            side = "after only" if mb is None else "before only"
            print(f"  {n:<{width}}  ({side})")
            continue
        if ma["kind"] in ("counter", "gauge"):
            delta = ma["value"] - mb["value"]
            if delta == 0 and ma["value"] == 0:
                continue  # never fired in either snapshot
            rate = ""
            if ma["kind"] == "counter" and dt_us > 0 and delta:
                rate = f"  ({delta * 1e6 / dt_us:,.0f}/s)"
            print(f"  {n:<{width}}  {fmt_value(mb['value']):>14} -> "
                  f"{fmt_value(ma['value']):>14}  [{delta:+,}]{rate}")
        else:
            dcount = ma["count"] - mb["count"]
            if dcount == 0 and ma["count"] == 0:
                continue
            print(f"  {n:<{width}}  count {mb['count']:,} -> "
                  f"{ma['count']:,} [{dcount:+,}]  "
                  f"p99 {mb['p99']:g} -> {ma['p99']:g}")


# Flight-record phases, in round order, with the single-letter glyph
# used in the attribution bar.
FLIGHT_PHASES = [("ingest_us", "i"), ("solve_us", "s"), ("emit_us", "e"),
                 ("fanout_us", "f")]


def phase_bar(rec, width=32):
    """One round's phase attribution as a proportional ASCII bar."""
    total = max(rec.get("round_us", 0.0), 1e-9)
    bar = ""
    for key, glyph in FLIGHT_PHASES:
        n = round(rec.get(key, 0.0) / total * width)
        bar += glyph * n
    other = width - len(bar)
    if other > 0:
        bar += "." * other  # untimed remainder (scheduling, clock reads)
    return bar[:width]


def print_flight_table(title, recs, detail):
    if not recs:
        print(f"-- {title}: empty")
        return
    print(f"-- {title} ({len(recs)} rounds)")
    hdr = (f"  {'round':>8} {'round_us':>10} {'ingest':>8} {'solve':>8} "
           f"{'emit':>8} {'fanout':>8} {'wakeup':>8} {'churn':>7} "
           f"{'upd':>6} {'hw':>5}")
    if detail:
        hdr += f" {'thresh':>8}  attribution (i=ingest s=solve e=emit f=fanout)"
    print(hdr)
    for r in recs:
        row = (f"  {r['round']:>8} {r['round_us']:>10.1f} "
               f"{r['ingest_us']:>8.1f} {r['solve_us']:>8.1f} "
               f"{r['emit_us']:>8.1f} {r['fanout_us']:>8.1f} "
               f"{r['wakeup_us']:>8.1f} {r['churn_events']:>7} "
               f"{r['updates']:>6} {r['up_ring_hw']:>5}")
        if detail:
            row += f" {r['threshold_us']:>8.1f}  |{phase_bar(r)}|"
        print(row)


def print_flight(doc):
    print(f"flight recorder: {doc['rounds_seen']:,} rounds seen, "
          f"{doc['promoted']:,} promoted "
          f"(p99 estimate {doc['p99_estimate_us']:.1f} us, "
          f"threshold {doc['threshold_us']:.1f} us)")
    print_flight_table("recent rounds", doc.get("recent", []), detail=False)
    print_flight_table("black box (promoted slow rounds)",
                       doc.get("black_box", []), detail=True)


# The e2e.* histogram spans of the traced update path, in hop order.
# Each entry: (metric, label, indent) -- indents show containment:
# update >= wire + service; service >= queue + solve + emit + fanout.
E2E_SPANS = [
    ("e2e.update_us", "update (agent->agent)", 0),
    ("e2e.wire_us", "wire (both directions)", 1),
    ("e2e.service_us", "service (shard->fanout)", 1),
    ("e2e.queue_us", "queue (ingest->pickup)", 2),
    ("e2e.solve_us", "solve", 2),
    ("e2e.emit_us", "emit", 2),
    ("e2e.fanout_us", "fanout", 2),
]


def print_e2e_timeline(tracing):
    e2e = tracing.get("e2e", {})
    if not e2e:
        print("no completed traces in this run", file=sys.stderr)
        return
    print(f"traced update path: 1/{tracing.get('sample_every', '?')} "
          f"sampling, {tracing.get('traces_completed', 0):,} completed "
          f"echoes of {tracing.get('traces_sent', 0):,} sampled")
    if "overhead_pct" in tracing:
        print(f"sampling overhead: {tracing['overhead_pct']:+.2f}% "
              f"msgs/sec vs tracing off")
    total_p99 = max(e2e.get("e2e.update_us", {}).get("p99_us", 0.0), 1e-9)
    width = 40
    print(f"  {'span':<26} {'p50':>10} {'p99':>10}  "
          f"timeline (p99, {total_p99:.0f} us full scale)")
    for metric, label, indent in E2E_SPANS:
        m = e2e.get(metric)
        if m is None:
            continue
        bar_n = min(width, round(m["p99_us"] / total_p99 * width))
        print(f"  {'  ' * indent + label:<26} {m['p50_us']:>8.1f}us "
              f"{m['p99_us']:>8.1f}us  |{'#' * bar_n:<{width}}|")


def print_recovery(rec):
    """The net bench's recovery-drill results: the fault-tolerance
    numbers (reconnect tail, replay-driven reconvergence, lease
    fallback under frame drops) next to the latency timeline."""
    if rec.get("failed"):
        print("recovery drill: FAILED (timed out before reconvergence)")
        return
    print(f"recovery drill: {rec.get('agents', '?')} agents x "
          f"{rec.get('flows_per_agent', '?')} flows, service killed and "
          f"warm-restarted on the same port")
    print(f"  reconnect   p50 {rec.get('reconnect_p50_us', 0):,.0f} us   "
          f"p99 {rec.get('reconnect_p99_us', 0):,.0f} us "
          f"(detection + jittered backoff + re-dial)")
    print(f"  reconverge  {rec.get('reconverge_us', 0):,.0f} us until "
          f"the fresh allocator's rates match pre-kill "
          f"({rec.get('replayed_starts', 0):,} replayed starts)")
    print(f"  degraded    {rec.get('degraded_frac', 0) * 100:.1f}% of "
          f"fleet-time not kConnected during the window")
    lease = rec.get("lease", {})
    if lease.get("failed"):
        print("  lease drill: FAILED (agent never re-armed)")
    elif lease:
        print(f"  lease drill ({lease.get('drop_frac', 0) * 100:.0f}% "
              f"downstream frames dropped): "
              f"{lease.get('frames_dropped', 0):,}/"
              f"{lease.get('frames_down', 0):,} frames lost, "
              f"{lease.get('lease_expiries', 0):,} lease expiries, "
              f"{lease.get('fallback_enters', 0):,} flows to fallback, "
              f"degraded {lease.get('degraded_frac', 0) * 100:.1f}%, "
              f"re-armed {lease.get('reclaim_us', 0):,.0f} us after "
              f"drops stopped")


def kind_of(doc):
    if doc.get("kind") == "flight":
        return "flight"
    if "metrics" in doc:
        return "metrics"
    if "tracing" in doc or "recovery" in doc:
        return "bench"
    return None


def main():
    ap = argparse.ArgumentParser(
        description="Pretty-print or diff flowtune observability "
                    "artifacts (metrics snapshots, flight-recorder "
                    "dumps, bench e2e traces).")
    ap.add_argument("snapshot", nargs="*", default=["-"],
                    help="one artifact to print, or two metrics "
                         "snapshots to diff (default: stdin)")
    ap.add_argument("--match", default="",
                    help="only show metrics whose name contains this")
    args = ap.parse_args()
    if len(args.snapshot) > 2:
        ap.error("pass one artifact to print or two snapshots to diff")
    if not args.snapshot:
        args.snapshot = ["-"]
    docs = [load(p) for p in args.snapshot]
    kinds = [kind_of(d) for d in docs]
    for path, kind in zip(args.snapshot, kinds):
        if kind is None:
            raise SystemExit(f"{path}: not a metrics snapshot, flight "
                             f"dump or bench results file")
    if len(docs) == 1:
        doc, kind = docs[0], kinds[0]
        if kind == "flight":
            print_flight(doc)
        elif kind == "bench":
            if "tracing" in doc:
                print_e2e_timeline(doc["tracing"])
            if "recovery" in doc:
                if "tracing" in doc:
                    print()
                print_recovery(doc["recovery"])
        else:
            print_snapshot(doc, args.match)
    else:
        if kinds != ["metrics", "metrics"]:
            ap.error("diffing needs two metrics snapshots")
        print_diff(docs[0], docs[1], args.match)


if __name__ == "__main__":
    main()
