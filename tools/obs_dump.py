#!/usr/bin/env python3
"""Pretty-print and diff metrics snapshots from the flowtune stats plane.

A snapshot is the JSON the stats socket serves ("json" request) or the
daemon's --stats-file / the bench's metrics_snapshot.json artifact:

  {"ts_us": ..., "metrics": {"core.solve_us": {"kind": "histo", ...}}}

Usage:

  # Pretty-print one snapshot (live or from a file)
  echo json | nc -U /tmp/flowtune_stats.sock | tools/obs_dump.py
  tools/obs_dump.py metrics_snapshot.json

  # Filter by metric-name substring
  tools/obs_dump.py metrics_snapshot.json --match shard0

  # Diff two snapshots (counter deltas, histogram percentile shifts)
  tools/obs_dump.py before.json after.json

Counters/gauges print as aligned name/value rows; histograms get count,
mean and p50/p90/p99/max plus a compact log2-bucket sparkline. Diffing
shows per-counter deltas and per-histogram p99 movement, which is the
quickest way to see where a regression's latency went.
"""

import argparse
import json
import sys

SPARK = " .:-=+*#%@"


def load(path):
    if path == "-":
        doc = json.load(sys.stdin)
    else:
        with open(path) as f:
            doc = json.load(f)
    if "metrics" not in doc:
        raise SystemExit(f"{path}: not a metrics snapshot (no 'metrics' key)")
    return doc


def sparkline(buckets):
    """buckets: [[lower_bound, count], ...] (sparse)."""
    if not buckets:
        return ""
    counts = [n for _, n in buckets]
    peak = max(counts)
    out = []
    for _, n in buckets:
        idx = 0 if n == 0 else 1 + int((len(SPARK) - 2) * n / peak)
        out.append(SPARK[idx])
    return "".join(out)


def fmt_value(v):
    return f"{v:,}" if isinstance(v, int) else f"{v:g}"


def print_snapshot(doc, match):
    metrics = doc["metrics"]
    names = [n for n in metrics if match in n]
    if not names:
        print(f"no metrics match '{match}'", file=sys.stderr)
        return
    width = max(len(n) for n in names)
    scalars = [(n, metrics[n]) for n in names
               if metrics[n]["kind"] in ("counter", "gauge")]
    histos = [(n, metrics[n]) for n in names if metrics[n]["kind"] == "histo"]
    if scalars:
        print(f"-- counters / gauges ({len(scalars)})")
        for n, m in scalars:
            print(f"  {n:<{width}}  {fmt_value(m['value']):>14}")
    if histos:
        print(f"-- histograms ({len(histos)})")
        for n, m in histos:
            print(f"  {n:<{width}}  count={m['count']:<10,} "
                  f"mean={m['mean']:<10g} p50={m['p50']:<8g} "
                  f"p90={m['p90']:<8g} p99={m['p99']:<10g} "
                  f"max<={m['max']:<12g} |{sparkline(m['buckets'])}|")


def print_diff(before, after, match):
    b, a = before["metrics"], after["metrics"]
    names = sorted(set(b) | set(a))
    names = [n for n in names if match in n]
    width = max((len(n) for n in names), default=0)
    dt_us = after.get("ts_us", 0) - before.get("ts_us", 0)
    if dt_us > 0:
        print(f"-- snapshots {dt_us / 1e6:.3f} s apart")
    for n in names:
        mb, ma = b.get(n), a.get(n)
        if mb is None or ma is None:
            side = "after only" if mb is None else "before only"
            print(f"  {n:<{width}}  ({side})")
            continue
        if ma["kind"] in ("counter", "gauge"):
            delta = ma["value"] - mb["value"]
            if delta == 0 and ma["value"] == 0:
                continue  # never fired in either snapshot
            rate = ""
            if ma["kind"] == "counter" and dt_us > 0 and delta:
                rate = f"  ({delta * 1e6 / dt_us:,.0f}/s)"
            print(f"  {n:<{width}}  {fmt_value(mb['value']):>14} -> "
                  f"{fmt_value(ma['value']):>14}  [{delta:+,}]{rate}")
        else:
            dcount = ma["count"] - mb["count"]
            if dcount == 0 and ma["count"] == 0:
                continue
            print(f"  {n:<{width}}  count {mb['count']:,} -> "
                  f"{ma['count']:,} [{dcount:+,}]  "
                  f"p99 {mb['p99']:g} -> {ma['p99']:g}")


def main():
    ap = argparse.ArgumentParser(
        description="Pretty-print or diff flowtune metrics snapshots.")
    ap.add_argument("snapshot", nargs="*", default=["-"],
                    help="one snapshot to print, or two to diff "
                         "(default: stdin)")
    ap.add_argument("--match", default="",
                    help="only show metrics whose name contains this")
    args = ap.parse_args()
    if len(args.snapshot) > 2:
        ap.error("pass one snapshot to print or two to diff")
    if not args.snapshot:
        args.snapshot = ["-"]
    if len(args.snapshot) == 1:
        print_snapshot(load(args.snapshot[0]), args.match)
    else:
        print_diff(load(args.snapshot[0]), load(args.snapshot[1]),
                   args.match)


if __name__ == "__main__":
    main()
