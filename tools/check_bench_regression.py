#!/usr/bin/env python3
"""Diff fresh BENCH_*.json results against checked-in baselines.

Walks each baseline file under --baseline-dir, finds the matching fresh
file under --fresh-dir, and compares every numeric leaf whose key looks
like a performance metric:

  higher-is-better:  *per_sec, *_pps, speedup, precision, recall
  lower-is-better:   *_us, *_ns, ns_per_iter

The *_us rule also picks up the net bench's e2e_p50_us / e2e_p99_us --
the traced agent -> service -> agent update-path latency -- so a PR
that fattens the update path shows up here, not just in msgs/sec.

A metric regresses when it is worse than baseline by more than the
tolerance band (default 35%, generous because CI runners are noisy).
Config/count keys (flows, shards, iterations, ...) are ignored.

Gating follows the same rule as the benches' own scaling gates: with
>= 8 hardware threads on the fresh run the script exits non-zero on any
regression; below that (shared CI runners, laptops) regressions are
reported as advisory and the exit code stays 0. Baselines are expected
to be regenerated when the reference hardware changes -- the run
metadata (git sha, hardware_concurrency) embedded in each file says
where a baseline came from.
"""

import argparse
import json
import os
import sys

HIGHER_SUFFIXES = ("per_sec", "_pps", "speedup", "precision", "recall")
LOWER_SUFFIXES = ("_us", "_ns", "ns_per_iter")
# stall_us / stall_every_rounds are the flight-demo's *injected* stall
# config, not measurements; sample_every is the tracing rate.
# reclaim_us (recovery drill: lease re-arm after drops stop) is one
# heartbeat of scheduler noise -- tens of microseconds -- so a 35% band
# is meaningless; the drill's tracked numbers are reconnect_p50_us/
# reconnect_p99_us/reconverge_us, which are dominated by the seeded
# backoff schedule and stay comparable across runs.
# virtual_over_wall_speedup divides deterministic virtual time by this
# machine's wall time, so it tracks runner speed, not the code; the
# deterministic sim_* metrics next to it are what the gate watches.
IGNORED_KEYS = {"hardware_concurrency", "git_sha", "stall_us",
                "stall_every_rounds", "sample_every", "reclaim_us",
                "virtual_over_wall_speedup"}

# Metrics from the virtual-time harness (bench_sim_scale, bench_chaos)
# are exact functions of (seed, config) -- identical on every machine --
# so they get a much tighter band than the wall-clock benches: any
# drift is a real behaviour change, not runner noise.
SIM_PREFIX = "sim_"
SIM_TOLERANCE = 0.05

# Chaos-campaign verdicts are correctness, not performance: any oracle
# violation is a failure, so *violations keys carry a zero band and
# gate even from a zero baseline (which the positive-baseline filter
# below would otherwise drop from tracking).
VIOLATION_SUFFIX = "violations"


def metric_direction(key):
    """Returns +1 (higher better), -1 (lower better) or 0 (ignore)."""
    if key in IGNORED_KEYS:
        return 0
    for suffix in HIGHER_SUFFIXES:
        if key.endswith(suffix):
            return +1
    for suffix in LOWER_SUFFIXES:
        if key.endswith(suffix):
            return -1
    if key.startswith(SIM_PREFIX):
        return -1  # rounds / messages / events to converge: lower wins
    return 0


def metric_tolerance(key, default):
    """Per-key band: deterministic sim_* metrics are held tight."""
    return SIM_TOLERANCE if key.startswith(SIM_PREFIX) else default


# Keys identifying which sweep configuration a list entry came from.
# List entries are matched by this signature, never by position: the
# baseline's {shards:4, alloc_threads:1} row must not be compared
# against a fresh {shards:4, alloc_threads:4} row just because both sit
# at index 4 (sweep shapes legitimately differ across machines).
CONFIG_KEYS = (
    "name",
    "detector",
    "shards",
    "alloc_threads",
    "clients",
    "flow_blocks",
    "nodes",
    "flows",
    "blocks",
    "load",
)


def element_label(value, index):
    if isinstance(value, dict):
        parts = [f"{k}={value[k]}" for k in CONFIG_KEYS if k in value]
        if parts:
            return "[" + ",".join(parts) + "]"
    return f"[{index}]"


def walk(node, path=""):
    """Yields (path, key, value) for every scalar leaf."""
    if isinstance(node, dict):
        for key, value in node.items():
            sub = f"{path}.{key}" if path else key
            if isinstance(value, (dict, list)):
                yield from walk(value, sub)
            else:
                yield sub, key, value
    elif isinstance(node, list):
        for i, value in enumerate(node):
            yield from walk(value, f"{path}{element_label(value, i)}")


def compare_file(name, baseline, fresh, tolerance):
    base_leaves = {p: (k, v) for p, k, v in walk(baseline)}
    fresh_leaves = {p: v for p, _, v in walk(fresh)}
    regressions, improvements, skipped = [], [], 0
    for path, (key, base_val) in sorted(base_leaves.items()):
        direction = metric_direction(key)
        if direction == 0 or not isinstance(base_val, (int, float)):
            continue
        if isinstance(base_val, bool):
            continue
        if key.endswith(VIOLATION_SUFFIX):
            fresh_val = fresh_leaves.get(path)
            if isinstance(fresh_val, (int, float)) and fresh_val > base_val:
                regressions.append(
                    f"  {name}:{path}: baseline {base_val:.6g} -> fresh "
                    f"{fresh_val:.6g} (violation count increased; zero "
                    "tolerance)"
                )
            continue
        if base_val <= 0:
            continue
        fresh_val = fresh_leaves.get(path)
        if not isinstance(fresh_val, (int, float)) or isinstance(
            fresh_val, bool
        ):
            skipped += 1
            continue
        ratio = fresh_val / base_val
        # Normalize so ratio < 1 always means "worse".
        goodness = ratio if direction > 0 else (1.0 / ratio if ratio else 0)
        line = (
            f"  {name}:{path}: baseline {base_val:.6g} -> fresh "
            f"{fresh_val:.6g} ({'+' if goodness >= 1 else ''}"
            f"{(goodness - 1) * 100:.1f}%)"
        )
        tol = metric_tolerance(key, tolerance)
        if goodness < 1.0 - tol:
            regressions.append(line)
        elif goodness > 1.0 + tol:
            improvements.append(line)
    return regressions, improvements, skipped


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline-dir", default="bench/baselines")
    ap.add_argument("--fresh-dir", default=".")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.35,
        help="allowed fractional slowdown before a metric counts as a "
        "regression (default 0.35)",
    )
    ap.add_argument(
        "--gate-threads",
        type=int,
        default=8,
        help="hard-fail only when the fresh run saw at least this many "
        "hardware threads (default 8; below it the diff is advisory)",
    )
    ap.add_argument(
        "--strict",
        action="store_true",
        help="hard-fail on regression regardless of core count",
    )
    args = ap.parse_args()

    if not os.path.isdir(args.baseline_dir):
        print(f"no baseline dir {args.baseline_dir}; nothing to diff")
        return 0

    all_regressions, all_improvements = [], []
    fresh_threads = 0
    baseline_threads = 0
    compared = 0
    for fname in sorted(os.listdir(args.baseline_dir)):
        if not (fname.startswith("BENCH_") and fname.endswith(".json")):
            continue
        fresh_path = os.path.join(args.fresh_dir, fname)
        if not os.path.exists(fresh_path):
            print(f"  {fname}: no fresh result; skipped")
            continue
        with open(os.path.join(args.baseline_dir, fname)) as f:
            baseline = json.load(f)
        with open(fresh_path) as f:
            fresh = json.load(f)
        compared += 1
        fresh_threads = max(
            fresh_threads,
            fresh.get("hardware_concurrency", 0),
            fresh.get("run", {}).get("hardware_concurrency", 0),
        )
        baseline_threads = max(
            baseline_threads,
            baseline.get("hardware_concurrency", 0),
            baseline.get("run", {}).get("hardware_concurrency", 0),
        )
        regs, imps, skipped = compare_file(
            fname, baseline, fresh, args.tolerance
        )
        all_regressions += regs
        all_improvements += imps
        print(
            f"  {fname}: {len(regs)} regression(s), "
            f"{len(imps)} improvement(s), {skipped} metric(s) skipped"
        )

    if all_improvements:
        print("\nimprovements beyond the tolerance band:")
        print("\n".join(all_improvements))
    if all_regressions:
        print("\nregressions beyond the tolerance band:")
        print("\n".join(all_regressions))

    # Absolute timings only gate against baselines from the same class of
    # machine: a >= 8-thread runner diffing against a baseline recorded
    # on different hardware would fail on clock differences, not code.
    # --strict overrides (for a runner that knows its baselines match).
    same_hardware = baseline_threads == fresh_threads
    if not same_hardware and fresh_threads >= args.gate_threads:
        print(
            f"\nNOTE: baseline hardware ({baseline_threads} threads) != "
            f"fresh ({fresh_threads}); gate demoted to advisory -- "
            "regenerate bench/baselines/ on this machine to enforce"
        )
    gated = args.strict or (
        fresh_threads >= args.gate_threads and same_hardware
    )
    if all_regressions and gated:
        print(
            f"\nFAIL: {len(all_regressions)} regression(s) at "
            f"{fresh_threads} hardware threads (gate >= "
            f"{args.gate_threads})"
        )
        return 1
    if all_regressions:
        reason = (
            f"only {fresh_threads} hardware threads "
            f"(< {args.gate_threads})"
            if fresh_threads < args.gate_threads
            else "baseline recorded on different hardware"
        )
        print(
            f"\nADVISORY: {len(all_regressions)} regression(s) "
            f"({reason}); not failing the build"
        )
    elif compared:
        print("\nPASS: no regressions beyond the tolerance band")
    return 0


if __name__ == "__main__":
    sys.exit(main())
