// Statistics helpers used by traces, tests and benchmark harnesses.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ft {

// Streaming mean / variance / min / max (Welford's algorithm).
class StreamingStats {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const { return sum_; }

  void merge(const StreamingStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Exact percentile computation over a stored sample set. The simulation
// experiments need trustworthy p99s over at most a few million samples, so
// storing values and sorting on demand is both exact and cheap enough.
//
// percentile() is genuinely const: it never touches the stored samples
// (an earlier version cached a sort through `mutable` members, which
// made two concurrent percentile() calls on a shared sampler a data
// race). When the sampler is unsorted it sorts a local copy; call
// sort() once after the last add() to make subsequent percentile()
// calls copy-free.
class PercentileSampler {
 public:
  void add(double x) {
    values_.push_back(x);
    sorted_ = false;
  }
  void clear() {
    values_.clear();
    sorted_ = false;
  }
  // Sorts the stored samples in place so percentile() takes the
  // zero-copy path; idempotent. Not thread-safe (unlike percentile()).
  void sort();

  [[nodiscard]] std::size_t count() const { return values_.size(); }
  [[nodiscard]] bool empty() const { return values_.empty(); }

  // q in [0, 1]; linear interpolation between closest ranks.
  // Returns 0 for an empty sampler.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double p50() const { return percentile(0.50); }
  [[nodiscard]] double p99() const { return percentile(0.99); }
  [[nodiscard]] double mean() const;

  void merge(const PercentileSampler& other);

 private:
  std::vector<double> values_;
  bool sorted_ = false;
};

// Fixed-width time-series accumulator: sums values into uniform time bins.
// Used for throughput-vs-time plots (Figure 4) and rate traces.
class TimeSeriesBins {
 public:
  TimeSeriesBins(double bin_width, std::size_t num_bins);

  // Adds `amount` at coordinate `t` (values outside the range are dropped).
  void add(double t, double amount);

  [[nodiscard]] std::size_t num_bins() const { return sums_.size(); }
  [[nodiscard]] double bin_width() const { return bin_width_; }
  [[nodiscard]] double bin_sum(std::size_t i) const { return sums_[i]; }
  // Bin sum divided by bin width (e.g. bytes -> bytes/sec).
  [[nodiscard]] double bin_rate(std::size_t i) const;

 private:
  double bin_width_;
  std::vector<double> sums_;
};

}  // namespace ft
