// Simulation time: 64-bit signed picoseconds.
//
// Picosecond resolution keeps per-byte serialization times exact for every
// link speed used in the paper (10 Gbit/s data links: 800 ps/byte,
// 40 Gbit/s allocator links: 200 ps/byte), so event ordering is fully
// deterministic with integer arithmetic. The range (+/- ~106 days) is far
// beyond any simulation horizon used here.
#pragma once

#include <cstdint>

namespace ft {

using Time = std::int64_t;  // picoseconds

inline constexpr Time kPicosecond = 1;
inline constexpr Time kNanosecond = 1'000;
inline constexpr Time kMicrosecond = 1'000'000;
inline constexpr Time kMillisecond = 1'000'000'000;
inline constexpr Time kSecond = 1'000'000'000'000;
inline constexpr Time kTimeNever = INT64_MAX;

[[nodiscard]] constexpr Time from_us(double us) {
  return static_cast<Time>(us * static_cast<double>(kMicrosecond));
}
[[nodiscard]] constexpr Time from_ms(double ms) {
  return static_cast<Time>(ms * static_cast<double>(kMillisecond));
}
[[nodiscard]] constexpr Time from_sec(double s) {
  return static_cast<Time>(s * static_cast<double>(kSecond));
}
[[nodiscard]] constexpr double to_us(Time t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}
[[nodiscard]] constexpr double to_ms(Time t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}
[[nodiscard]] constexpr double to_sec(Time t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

// Serialization time of `bytes` at `rate_bps`, rounded up to a picosecond.
[[nodiscard]] constexpr Time tx_time(std::int64_t bytes, double rate_bps) {
  const double ps = static_cast<double>(bytes) * 8.0 * 1e12 / rate_bps;
  return static_cast<Time>(ps + 0.5);
}

// Monotonic clock seam. Everything in the control plane that needs "now"
// for a deadline -- agent poll cadence, heartbeat and lease timers,
// reconnect backoff, service peer timeouts -- reads one of these instead
// of calling clock_gettime directly, so the same code runs against the
// OS clock in production and against simulated time (sim::EventQueue)
// in the virtual-time harness. now_ns is the primitive; now_us derives
// from it so the two can never disagree about ordering.
class Clock {
 public:
  virtual ~Clock() = default;
  [[nodiscard]] virtual std::int64_t now_ns() = 0;
  [[nodiscard]] std::int64_t now_us() { return now_ns() / 1'000; }
};

// CLOCK_MONOTONIC (same clock net::EpollLoop::now_us always used, at ns
// resolution). Stateless; share the process-wide instance below.
class SystemClock final : public Clock {
 public:
  [[nodiscard]] std::int64_t now_ns() override;
};

// Manually-advanced monotonic time, for deterministic tests and the
// discrete-event simulator (sim::EventQueue drives it forward as events
// dispatch). Never moves backwards: advancing to the past is a no-op,
// which lets several advancing sources share one clock safely.
class VirtualClock final : public Clock {
 public:
  [[nodiscard]] std::int64_t now_ns() override { return ns_; }
  void advance_to_ns(std::int64_t ns) {
    if (ns > ns_) ns_ = ns;
  }
  void advance_to(Time ps) { advance_to_ns(ps / kNanosecond); }

 private:
  std::int64_t ns_ = 0;
};

// The process-wide SystemClock (what every component defaults to when no
// explicit clock is configured).
[[nodiscard]] Clock& system_clock();

}  // namespace ft
