// Simulation time: 64-bit signed picoseconds.
//
// Picosecond resolution keeps per-byte serialization times exact for every
// link speed used in the paper (10 Gbit/s data links: 800 ps/byte,
// 40 Gbit/s allocator links: 200 ps/byte), so event ordering is fully
// deterministic with integer arithmetic. The range (+/- ~106 days) is far
// beyond any simulation horizon used here.
#pragma once

#include <cstdint>

namespace ft {

using Time = std::int64_t;  // picoseconds

inline constexpr Time kPicosecond = 1;
inline constexpr Time kNanosecond = 1'000;
inline constexpr Time kMicrosecond = 1'000'000;
inline constexpr Time kMillisecond = 1'000'000'000;
inline constexpr Time kSecond = 1'000'000'000'000;
inline constexpr Time kTimeNever = INT64_MAX;

[[nodiscard]] constexpr Time from_us(double us) {
  return static_cast<Time>(us * static_cast<double>(kMicrosecond));
}
[[nodiscard]] constexpr Time from_ms(double ms) {
  return static_cast<Time>(ms * static_cast<double>(kMillisecond));
}
[[nodiscard]] constexpr Time from_sec(double s) {
  return static_cast<Time>(s * static_cast<double>(kSecond));
}
[[nodiscard]] constexpr double to_us(Time t) {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}
[[nodiscard]] constexpr double to_ms(Time t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}
[[nodiscard]] constexpr double to_sec(Time t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

// Serialization time of `bytes` at `rate_bps`, rounded up to a picosecond.
[[nodiscard]] constexpr Time tx_time(std::int64_t bytes, double rate_bps) {
  const double ps = static_cast<double>(bytes) * 8.0 * 1e12 / rate_bps;
  return static_cast<Time>(ps + 0.5);
}

}  // namespace ft
