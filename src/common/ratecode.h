// 16-bit rate encoding for allocator -> endpoint rate updates.
//
// The paper's rate-update message is 6 bytes: a 32-bit flow id plus a
// 16-bit rate. We encode rates as a custom floating-point format with a
// 5-bit exponent and 11-bit mantissa over a fixed base granularity of
// 1 Kbit/s, covering ~1 Kbit/s .. ~4 Tbit/s with <= ~0.05% relative
// error -- far below the smallest (0.01) notification threshold, so
// quantization never triggers spurious updates.
#pragma once

#include <cstdint>

namespace ft {

// Encodes a non-negative rate in bits/sec. Rates below the granularity
// encode as 0; rates above the max encode as the max.
[[nodiscard]] std::uint16_t encode_rate(double rate_bps);

// Decodes to bits/sec.
[[nodiscard]] double decode_rate(std::uint16_t code);

// Upper bound on relative quantization error for rates within range.
inline constexpr double kRateCodeMaxRelError = 1.0 / 2048.0;

}  // namespace ft
