// Deterministic pseudo-random number generation (xoshiro256**).
//
// The standard <random> engines are either slow (mt19937_64 state) or
// under-specified across platforms; xoshiro256** is fast, tiny and gives
// identical streams everywhere, which keeps simulations reproducible.
#pragma once

#include <cstdint>

namespace ft {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  // SplitMix64 seeding so that nearby seeds give unrelated streams.
  void reseed(std::uint64_t seed);

  [[nodiscard]] std::uint64_t next();

  // Uniform in [0, 1).
  [[nodiscard]] double uniform();

  // Uniform in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi);

  // Uniform integer in [0, n). n must be > 0.
  [[nodiscard]] std::uint64_t below(std::uint64_t n);

  // Exponential with the given mean (> 0).
  [[nodiscard]] double exponential(double mean);

  // Fork an independent stream (for per-entity RNGs).
  [[nodiscard]] Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace ft
