// Open-addressing hash map from 64-bit keys to small values, built for
// the allocator's flowlet-key hot path: linear probing over one flat
// slot array (power-of-two capacity), backward-shift deletion (no
// tombstones, so probe sequences never degrade under churn), and a
// reserve() that pre-sizes the table -- find/erase never allocate, and
// insert allocates only when the load factor crosses the growth
// threshold, i.e. on a churn spike, never in steady state.
//
// Not a general-purpose container: keys are expected to be well mixed by
// the splitmix64 finalizer (wire-level flow keys are), values are copied
// by value, and iteration order is unspecified.
#pragma once

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"

namespace ft {

template <typename V>
class FlatMap64 {
 public:
  explicit FlatMap64(std::size_t initial_capacity = 64) {
    rehash(ceil_pow2(initial_capacity < 16 ? 16 : initial_capacity));
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  // Pre-sizes so that `n` entries fit without rehashing.
  void reserve(std::size_t n) {
    std::size_t want = ceil_pow2(n + n / 2 + 1);
    if (want > slots_.size()) rehash(want);
  }

  [[nodiscard]] bool contains(std::uint64_t key) const {
    return find(key) != nullptr;
  }

  [[nodiscard]] const V* find(std::uint64_t key) const {
    std::size_t i = index_of(key);
    while (used_[i]) {
      if (slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  [[nodiscard]] V* find(std::uint64_t key) {
    return const_cast<V*>(std::as_const(*this).find(key));
  }

  // Inserts key -> value; returns false (and leaves the map truly
  // unchanged -- no growth, so outstanding find() pointers stay valid)
  // if the key is already present.
  bool emplace(std::uint64_t key, V value) {
    std::size_t i = index_of(key);
    while (used_[i]) {
      if (slots_[i].key == key) return false;
      i = (i + 1) & mask_;
    }
    if (size_ + 1 > max_load()) {
      rehash(slots_.size() * 2);
      i = index_of(key);
      while (used_[i]) i = (i + 1) & mask_;
    }
    used_[i] = 1;
    slots_[i].key = key;
    slots_[i].value = value;
    ++size_;
    return true;
  }

  // Drops every entry but keeps the slot array: a cleared map re-fills
  // to its previous size without touching the heap (batch-coalescing
  // maps are cleared once per flush).
  void clear() {
    if (size_ == 0) return;
    std::fill(used_.begin(), used_.end(), std::uint8_t{0});
    size_ = 0;
  }

  // Removes the key; returns false if absent. Backward-shift deletion:
  // entries after the hole whose probe path crosses it are moved back,
  // keeping every remaining probe sequence gap-free.
  bool erase(std::uint64_t key) {
    std::size_t i = index_of(key);
    while (true) {
      if (!used_[i]) return false;
      if (slots_[i].key == key) break;
      i = (i + 1) & mask_;
    }
    std::size_t hole = i;
    std::size_t j = (hole + 1) & mask_;
    while (used_[j]) {
      const std::size_t ideal = index_of(slots_[j].key);
      // Move j back iff its ideal slot is cyclically outside (hole, j].
      if (((j - ideal) & mask_) >= ((j - hole) & mask_)) {
        slots_[hole] = slots_[j];
        hole = j;
      }
      j = (j + 1) & mask_;
    }
    used_[hole] = 0;
    --size_;
    return true;
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    V value{};
  };

  [[nodiscard]] static std::uint64_t mix(std::uint64_t x) {
    // splitmix64 finalizer.
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
  }
  [[nodiscard]] std::size_t index_of(std::uint64_t key) const {
    return static_cast<std::size_t>(mix(key)) & mask_;
  }
  [[nodiscard]] std::size_t max_load() const {
    return slots_.size() - slots_.size() / 4;  // 3/4 load factor
  }
  [[nodiscard]] static std::size_t ceil_pow2(std::size_t n) {
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
  }

  void rehash(std::size_t new_capacity) {
    FT_CHECK((new_capacity & (new_capacity - 1)) == 0);
    std::vector<Slot> old_slots = std::move(slots_);
    std::vector<std::uint8_t> old_used = std::move(used_);
    slots_.assign(new_capacity, Slot{});
    used_.assign(new_capacity, 0);
    mask_ = new_capacity - 1;
    size_ = 0;
    for (std::size_t i = 0; i < old_slots.size(); ++i) {
      if (old_used[i]) emplace(old_slots[i].key, old_slots[i].value);
    }
  }

  std::vector<Slot> slots_;
  std::vector<std::uint8_t> used_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

}  // namespace ft
