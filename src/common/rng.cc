#include "common/rng.h"

#include <cmath>

namespace ft {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::below(std::uint64_t n) {
  // Lemire's multiply-shift rejection method: unbiased and division-free
  // in the common case.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = -n % n;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double mean) {
  double u = uniform();
  // uniform() can return exactly 0; log(0) is -inf.
  while (u <= 0.0) u = uniform();
  return -mean * std::log(u);
}

Rng Rng::fork() {
  Rng child(0);
  for (auto& s : child.s_) s = next();
  return child;
}

}  // namespace ft
