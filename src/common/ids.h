// Strong index types for nodes, links and flows.
//
// All three are dense indices into per-topology / per-problem arrays; the
// wrapper prevents accidentally indexing a link table with a flow id.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>

namespace ft {

template <class Tag>
struct Id {
  using value_type = std::uint32_t;
  static constexpr value_type kInvalid =
      std::numeric_limits<value_type>::max();

  value_type v = kInvalid;

  constexpr Id() = default;
  constexpr explicit Id(value_type value) : v(value) {}

  [[nodiscard]] constexpr bool valid() const { return v != kInvalid; }
  [[nodiscard]] constexpr value_type value() const { return v; }

  friend constexpr bool operator==(Id a, Id b) { return a.v == b.v; }
  friend constexpr bool operator!=(Id a, Id b) { return a.v != b.v; }
  friend constexpr bool operator<(Id a, Id b) { return a.v < b.v; }
};

struct NodeTag {};
struct LinkTag {};
struct FlowTag {};

using NodeId = Id<NodeTag>;
using LinkId = Id<LinkTag>;
using FlowId = Id<FlowTag>;

}  // namespace ft

namespace std {
template <class Tag>
struct hash<ft::Id<Tag>> {
  size_t operator()(ft::Id<Tag> id) const noexcept {
    return std::hash<std::uint32_t>()(id.v);
  }
};
}  // namespace std
