#include "common/wire.h"

#include <algorithm>

namespace ft {

std::int64_t wire_bytes_l3(std::int64_t l3_bytes) {
  const std::int64_t frame = std::max(kMinFrame, l3_bytes + kEthHeaderFcs);
  return frame + kEthPreambleIfg;
}

std::int64_t wire_bytes_tcp(std::int64_t payload) {
  return wire_bytes_l3(payload + kTcpIpHeader);
}

std::int64_t wire_bytes_tcp_stream(std::int64_t payload) {
  if (payload <= 0) return 0;
  const std::int64_t full = payload / kMss;
  const std::int64_t rem = payload % kMss;
  return full * wire_bytes_tcp(kMss) + (rem > 0 ? wire_bytes_tcp(rem) : 0);
}

}  // namespace ft
