#include "common/time.h"

#include <time.h>

namespace ft {

std::int64_t SystemClock::now_ns() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

Clock& system_clock() {
  static SystemClock clock;
  return clock;
}

}  // namespace ft
