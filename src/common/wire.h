// Ethernet / TCP-IP wire-size accounting (§7 of the paper: 64-byte minimum
// frames, 84 bytes minimum on the wire including preamble and inter-frame
// gap).
#pragma once

#include <cstdint>

namespace ft {

inline constexpr std::int64_t kMss = 1460;          // TCP payload bytes
inline constexpr std::int64_t kTcpIpHeader = 40;    // TCP + IPv4, no options
inline constexpr std::int64_t kEthHeaderFcs = 18;   // L2 header + FCS
inline constexpr std::int64_t kEthPreambleIfg = 20; // preamble + IFG
inline constexpr std::int64_t kMinFrame = 64;       // excl. preamble/IFG

// Bytes occupied on the wire by a TCP segment with `payload` bytes.
[[nodiscard]] std::int64_t wire_bytes_tcp(std::int64_t payload);

// Bytes occupied on the wire by a raw L3 datagram of `l3_bytes`.
[[nodiscard]] std::int64_t wire_bytes_l3(std::int64_t l3_bytes);

// Bytes occupied on the wire by `payload` bytes sent over an established
// TCP stream, split into MSS-sized segments (control-plane batches can
// exceed one MSS). 0 payload costs nothing: it generates no segment.
[[nodiscard]] std::int64_t wire_bytes_tcp_stream(std::int64_t payload);

}  // namespace ft
