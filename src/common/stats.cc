#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace ft {

void StreamingStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double StreamingStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

void StreamingStats::merge(const StreamingStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

namespace {

double percentile_of_sorted(const std::vector<double>& v, double q) {
  const double rank = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

}  // namespace

void PercentileSampler::sort() {
  if (sorted_) return;
  std::sort(values_.begin(), values_.end());
  sorted_ = true;
}

double PercentileSampler::percentile(double q) const {
  if (values_.empty()) return 0.0;
  FT_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted_) return percentile_of_sorted(values_, q);
  std::vector<double> copy(values_);
  std::sort(copy.begin(), copy.end());
  return percentile_of_sorted(copy, q);
}

double PercentileSampler::mean() const {
  if (values_.empty()) return 0.0;
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

void PercentileSampler::merge(const PercentileSampler& other) {
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  sorted_ = false;
}

TimeSeriesBins::TimeSeriesBins(double bin_width, std::size_t num_bins)
    : bin_width_(bin_width), sums_(num_bins, 0.0) {
  FT_CHECK(bin_width > 0.0);
  FT_CHECK(num_bins > 0);
}

void TimeSeriesBins::add(double t, double amount) {
  if (t < 0.0) return;
  const auto bin = static_cast<std::size_t>(t / bin_width_);
  if (bin >= sums_.size()) return;
  sums_[bin] += amount;
}

double TimeSeriesBins::bin_rate(std::size_t i) const {
  FT_CHECK(i < sums_.size());
  return sums_[i] / bin_width_;
}

}  // namespace ft
