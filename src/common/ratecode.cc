#include "common/ratecode.h"

#include <array>
#include <cmath>

namespace ft {
namespace {

// code = [5-bit exponent e][11-bit mantissa m]; rate = (2048 + m) * 2^e
// * kGranularity, with the special case e == 0, m < 2048 denormal-style
// direct encoding for tiny rates.
constexpr double kGranularityBps = 1e3;  // 1 Kbit/s
constexpr int kMantissaBits = 11;
constexpr std::uint16_t kMantissaMask = (1u << kMantissaBits) - 1;
constexpr int kMaxExponent = 31;

}  // namespace

std::uint16_t encode_rate(double rate_bps) {
  if (!(rate_bps > 0.0)) return 0;
  double units = rate_bps / kGranularityBps;
  if (units < 1.0) return 0;
  if (units < static_cast<double>(1u << kMantissaBits)) {
    // Denormal range: exponent 0, direct value.
    return static_cast<std::uint16_t>(units);
  }
  int e = 0;
  while (units >= static_cast<double>(1u << (kMantissaBits + 1)) &&
         e < kMaxExponent) {
    units /= 2.0;
    ++e;
  }
  if (e == kMaxExponent &&
      units >= static_cast<double>(1u << (kMantissaBits + 1))) {
    // Clamp to max representable.
    return static_cast<std::uint16_t>((kMaxExponent << kMantissaBits) |
                                      kMantissaMask);
  }
  // units in [2048, 4096): store low 11 bits, exponent e+1 marks normal.
  const auto m =
      static_cast<std::uint16_t>(static_cast<std::uint32_t>(units + 0.5) -
                                 (1u << kMantissaBits));
  const auto mm = static_cast<std::uint16_t>(
      m > kMantissaMask ? kMantissaMask : m);
  return static_cast<std::uint16_t>(((e + 1) << kMantissaBits) | mm);
}

double decode_rate(std::uint16_t code) {
  const int e = code >> kMantissaBits;
  const std::uint16_t m = code & kMantissaMask;
  if (e == 0) return static_cast<double>(m) * kGranularityBps;
  // 2^(e-1) from a table: decode sits on the allocator's per-update
  // emission path, where a libm ldexp call dominated the loop.
  static constexpr auto kPow2 = [] {
    std::array<double, 32> t{};
    double v = 1.0;
    for (std::size_t i = 0; i < t.size(); ++i, v *= 2.0) t[i] = v;
    return t;
  }();
  const double units =
      static_cast<double>((1u << kMantissaBits) + m) *
      kPow2[static_cast<std::size_t>(e - 1)];
  return units * kGranularityBps;
}

}  // namespace ft
