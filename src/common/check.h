// Lightweight always-on invariant checks.
//
// FT_CHECK aborts with a message on violation; it is used for programming
// errors (broken invariants), never for recoverable conditions. Unlike
// assert() it stays on in release builds: the simulator's correctness
// claims depend on these invariants holding during benchmarks too.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ft::detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line) {
  std::fprintf(stderr, "FT_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}
}  // namespace ft::detail

#define FT_CHECK(expr)                                     \
  do {                                                     \
    if (!(expr)) [[unlikely]] {                            \
      ::ft::detail::check_failed(#expr, __FILE__, __LINE__); \
    }                                                      \
  } while (0)
