// ControlPlaneHarness: the real control plane -- one AllocatorService
// and N real EndpointAgents -- in a single process on virtual time.
//
// Nothing here is a mock: the service is the same AllocatorService the
// daemon runs (inline mode, its allocation rounds on a loop timer), the
// agents are the same EndpointAgent the endpoints run (auto-reconnect,
// leases, heartbeats and all), and the wire between them is the same
// length-prefixed frame stream -- only the transport underneath is
// sim::SimTransport, so ten thousand endpoints converge in seconds of
// wall clock and every run with the same seed replays bit-identically.
//
// Flowlet churn comes from the wl:: Poisson generator: arrivals are
// mapped onto their source host's agent and registered through the
// real flowlet_start batching path at their generated virtual times,
// staggered behind the agents' connection ramp.
//
// The harness doubles as a fault rig: kill_connections() resets every
// stream at once (reconnect storm on virtual time), restart_service()
// tears the service down and rebinds the same port (agents replay
// their flowlets on reconnect), and the transport's drop/black-hole
// knobs are exposed directly.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/allocator.h"
#include "net/client.h"
#include "net/server.h"
#include "sim/event_queue.h"
#include "sim/sim_proxy.h"
#include "sim/sim_transport.h"
#include "topo/clos.h"

namespace ft::sim {

struct HarnessConfig {
  int num_endpoints = 10'000;
  // Mean concurrent flowlets per endpoint; the generator's arrival
  // count is num_endpoints * flows_per_endpoint.
  int flows_per_endpoint = 2;
  // Topology auto-sizing: racks = ceil(num_endpoints / servers_per_rack).
  int servers_per_rack = 40;
  int spines = 4;
  double host_link_bps = 10e9;
  double fabric_link_bps = 40e9;
  // Allocation round + agent poll cadence (virtual microseconds).
  std::int64_t iteration_period_us = 1'000;
  std::int64_t poll_period_us = 1'000;
  // Agent dials spread uniformly across this window from t=0.
  std::int64_t connect_spread_us = 2'000;
  // Liveness plumbing (0 = off, the bare control plane).
  std::int64_t heartbeat_period_us = 0;
  std::int64_t rate_lease_us = 0;
  std::int64_t peer_timeout_us = 0;
  std::int64_t agent_heartbeat_period_us = 0;
  std::int64_t agent_peer_timeout_us = 0;
  // Endpoint link shaping (every agent<->service stream).
  SimLinkParams link;
  std::uint64_t seed = 1;
  // Converged = every flow saw >= 1 rate update and this many
  // consecutive rounds emitted none.
  int stable_rounds = 5;
  // Safety horizon for run_to_convergence (virtual microseconds).
  std::int64_t max_virtual_us = 30'000'000;
  // VIP mode: agents dial a SimProxy in front of the service instead
  // of the service itself. restart_service() then models a warm
  // restart behind a load balancer -- the agents' sockets never drop,
  // which is exactly the topology stale-rate bugs need (see
  // sim/sim_proxy.h).
  bool use_vip_proxy = false;
  std::int64_t vip_redial_delay_us = 1'000;
  // Mutation hooks, plumbed to every agent's AgentConfig. All default
  // to the hardened behavior; the chaos suite flips them one at a time
  // to prove each invariant oracle catches its matching bug.
  bool agent_epoch_filtering = true;
  bool agent_lease_enforcement = true;
  bool agent_leak_fds = false;
  // Rate anti-entropy is ON by default here (unlike the bare core
  // allocator): the harness's whole point is a lossy transport under
  // fault schedules, where a dropped rate update whose flow then stays
  // inside the notification threshold would otherwise leave an agent
  // holding a stale rate forever (the chaos campaign found exactly
  // this: restart + one-way downstream partition, repro seed
  // 11510521379511642707). run_to_convergence stretches its quiet
  // window to cover one full refresh sweep so quiesce-time oracle
  // checks always see post-anti-entropy state.
  core::AllocatorConfig alloc{.refresh_rounds = 32};
};

struct ConvergeStats {
  bool converged = false;
  std::uint64_t rounds = 0;       // service iterations at convergence
  std::int64_t virtual_us = 0;    // virtual time at convergence
  std::uint64_t updates_sent = 0;
  std::uint64_t updates_received = 0;  // summed over agents
  std::uint64_t events_processed = 0;
  // Order-sensitive FNV-1a over every (virtual_us, agent, key, code)
  // rate application; two same-seed runs must match bit-for-bit.
  std::uint64_t trajectory_hash = 0;
};

class ControlPlaneHarness {
 public:
  explicit ControlPlaneHarness(HarnessConfig cfg);
  ~ControlPlaneHarness();
  ControlPlaneHarness(const ControlPlaneHarness&) = delete;
  ControlPlaneHarness& operator=(const ControlPlaneHarness&) = delete;

  // Runs until converged or cfg.max_virtual_us; re-entrant (a fault can
  // be injected between calls and the plane re-converged).
  ConvergeStats run_to_convergence();
  // Advances virtual time by `us` unconditionally.
  void run_for(std::int64_t us);

  // --- fault drills (compose with virtual time) ---
  // Reset storm: every stream dies; agents enter jittered backoff.
  void kill_connections() { tr_.kill_all(); }
  // Tears the service down (flows end, listener closes) and brings a
  // fresh one up on the same port; agents reconnect and replay.
  void restart_service();
  void set_drop_down_frac(double f) { tr_.set_drop_down_frac(f); }
  void set_black_hole(bool on) { tr_.set_black_hole(on); }
  // One-way partitions (sim/sim_transport.h): only the named direction
  // evaporates, the other keeps flowing.
  void set_partition_up(bool on) { tr_.set_partition_up(on); }
  void set_partition_down(bool on) { tr_.set_partition_down(on); }

  [[nodiscard]] std::uint64_t trajectory_hash() const { return hash_; }
  [[nodiscard]] std::int64_t virtual_now_us() const {
    return events_.now() / kMicrosecond;
  }
  [[nodiscard]] net::AllocatorService& service() { return *svc_; }
  [[nodiscard]] net::EndpointAgent& agent(int i) { return *agents_[i]; }
  [[nodiscard]] int num_agents() const {
    return static_cast<int>(agents_.size());
  }
  [[nodiscard]] std::size_t total_flows() const { return total_flows_; }
  [[nodiscard]] std::size_t flows_seen() const { return seen_count_; }
  [[nodiscard]] SimTransport& transport() { return tr_; }
  [[nodiscard]] core::Allocator& allocator() { return alloc_; }
  [[nodiscard]] int restart_count() const { return restarts_; }
  // Null unless cfg.use_vip_proxy.
  [[nodiscard]] SimProxy* proxy() { return proxy_.get(); }
  [[nodiscard]] const HarnessConfig& config() const { return cfg_; }

 private:
  void note_rate(int agent_idx, std::uint32_t key, std::uint16_t code);
  [[nodiscard]] net::ServerConfig server_cfg();

  HarnessConfig cfg_;
  EventQueue events_;
  SimTransport tr_;
  topo::ClosTopology topo_;
  core::Allocator alloc_;
  std::unique_ptr<SimLoop> loop_;
  std::unique_ptr<net::AllocatorService> svc_;
  std::unique_ptr<SimProxy> proxy_;
  std::vector<std::unique_ptr<net::EndpointAgent>> agents_;
  int port_ = -1;
  int restarts_ = 0;  // also drives the allocator epoch: 1 + restarts_
  std::size_t total_flows_ = 0;
  std::size_t seen_count_ = 0;
  std::vector<bool> seen_;  // by flow key (dense, 1-based)
  std::uint64_t hash_ = 1469598103934665603ULL;  // FNV-1a offset basis
};

}  // namespace ft::sim
