// Umbrella for the simulation substrate plus the Simulator convenience
// bundle (event queue + packet pool) every experiment starts from.
#pragma once

#include "sim/event_queue.h"  // IWYU pragma: export
#include "sim/network.h"      // IWYU pragma: export
#include "sim/packet.h"       // IWYU pragma: export
#include "sim/pfabric_queue.h"  // IWYU pragma: export
#include "sim/queue.h"        // IWYU pragma: export
#include "sim/sfq_codel.h"    // IWYU pragma: export
#include "sim/trace.h"        // IWYU pragma: export
#include "sim/xcp_queue.h"    // IWYU pragma: export

namespace ft::sim {

struct Simulator {
  EventQueue events;
  PacketPool pool;

  [[nodiscard]] Time now() const { return events.now(); }
  void run_until(Time t) { events.run_until(t); }
};

}  // namespace ft::sim
