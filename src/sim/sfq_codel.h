// sfqCoDel: stochastic fair queueing with per-bucket CoDel AQM (Nichols &
// Jacobson, "Controlling Queue Delay", CACM 2012; the ns-2 sfqcodel used
// by the paper).
//
// Flows hash into buckets; buckets are served by deficit round robin with
// a one-MTU quantum; each bucket runs the CoDel control law on packet
// sojourn times (drop-and-halve-interval while above target). Target and
// interval default to datacenter-scaled values (the WAN defaults of
// 5 ms / 100 ms would never engage at 14-22 us RTTs); see DESIGN.md.
#pragma once

#include <deque>
#include <vector>

#include "sim/queue.h"

namespace ft::sim {

struct SfqCodelConfig {
  std::int32_t num_buckets = 1024;
  std::int64_t limit_bytes = 2 * 1024 * 1024;  // shared buffer
  Time target = 50 * kMicrosecond;
  Time interval = 1 * kMillisecond;
  std::int64_t quantum_bytes = 1514;
};

class SfqCodelQueue : public QueueDisc {
 public:
  explicit SfqCodelQueue(SfqCodelConfig cfg = SfqCodelConfig());

  void enqueue(Packet* p, Time now) override;
  Packet* dequeue(Time now) override;
  [[nodiscard]] std::int64_t byte_length() const override { return bytes_; }

 private:
  struct Bucket {
    std::deque<Packet*> q;
    std::int64_t bytes = 0;
    std::int64_t deficit = 0;
    bool active = false;  // on the DRR list
    // CoDel state.
    Time first_above_time = 0;
    Time drop_next = 0;
    std::uint32_t count = 0;
    std::uint32_t last_count = 0;
    bool dropping = false;
  };

  // CoDel helpers (per bucket).
  [[nodiscard]] bool should_drop(Bucket& b, const Packet* p, Time now);
  [[nodiscard]] Time control_law(Time t, std::uint32_t count) const;

  // Pops the head of bucket b, updating byte counts (no CoDel logic).
  Packet* pop_head(Bucket& b);

  SfqCodelConfig cfg_;
  std::vector<Bucket> buckets_;
  std::deque<std::int32_t> drr_;  // active bucket indices
  std::int64_t bytes_ = 0;
};

}  // namespace ft::sim
