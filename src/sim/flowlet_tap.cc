#include "sim/flowlet_tap.h"

#include <algorithm>

namespace ft::sim {

FlowletTap::FlowletTap(Network& net, flowlet::FlowletDetector& det,
                       Time advance_period)
    : net_(net), det_(det), period_(advance_period) {
  net_.set_tx_observer([this](const Packet& p) { on_tx(p); });
  det_.set_callbacks(
      [this](const flowlet::PacketRecord&) { started_here_ = true; },
      nullptr);
}

FlowletTap::~FlowletTap() {
  net_.set_tx_observer(nullptr);
  det_.set_callbacks(nullptr, nullptr);
}

void FlowletTap::start(Time until) {
  until_ = until;
  net_.events().schedule(net_.events().now() + period_, this, 0);
}

void FlowletTap::on_event(std::uint32_t /*tag*/, std::uint64_t /*arg*/) {
  const Time now = net_.events().now();
  det_.advance(now);
  if (now + period_ <= until_) {
    net_.events().schedule(now + period_, this, 0);
  }
}

void FlowletTap::on_tx(const Packet& p) {
  started_here_ = false;
  flowlet::PacketRecord rec;
  rec.flow_key = p.flow_id;
  rec.src_host = static_cast<std::uint16_t>(p.src_host);
  rec.dst_host = static_cast<std::uint16_t>(p.dst_host);
  rec.bytes = static_cast<std::uint32_t>(p.payload);
  rec.at = net_.events().now();
  det_.on_packet(rec);
  scorer_.record(p.truth_burst_start, started_here_);
}

TraceReplay::TraceReplay(Network& net, std::vector<wl::PacketEvent> trace)
    : net_(net), trace_(std::move(trace)) {}

void TraceReplay::start() {
  net_.set_delivery_handler([this](Packet* p) {
    ++delivered_;
    net_.pool().free(p);
  });
  if (trace_.empty()) return;
  net_.events().schedule(
      std::max(trace_.front().at, net_.events().now()), this, 0);
}

void TraceReplay::on_event(std::uint32_t /*tag*/, std::uint64_t /*arg*/) {
  inject_next();
  if (next_ < trace_.size()) {
    net_.events().schedule(
        std::max(trace_[next_].at, net_.events().now()), this, 0);
  }
}

void TraceReplay::inject_next() {
  const wl::PacketEvent& ev = trace_[next_++];
  Packet* p = net_.pool().alloc();
  p->flow_id = ev.flow_id;
  p->src_host = ev.src_host;
  p->dst_host = ev.dst_host;
  p->payload = ev.bytes;
  p->finalize_size();
  p->truth_burst_start = ev.burst_start;
  p->sent_at = net_.events().now();
  const topo::ClosTopology& clos = net_.clos();
  const topo::Path path = clos.host_path(
      clos.host(ev.src_host), clos.host(ev.dst_host), ev.flow_id);
  p->set_path(path.begin(), path.size());
  net_.send(p);
}

}  // namespace ft::sim
