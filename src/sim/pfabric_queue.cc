#include "sim/pfabric_queue.h"

#include <algorithm>

namespace ft::sim {

void PfabricQueue::enqueue(Packet* p, Time now) {
  p->enq_at = now;
  while (bytes_ + p->wire_bytes > limit_ && !q_.empty()) {
    // Evict the worst (max remaining; FIFO-later tie-break) among queued
    // packets; if the arrival itself is the worst, reject it instead.
    std::size_t worst = 0;
    for (std::size_t i = 1; i < q_.size(); ++i) {
      if (q_[i]->remaining >= q_[worst]->remaining) worst = i;
    }
    if (q_[worst]->remaining < p->remaining) {
      drop(p);
      return;
    }
    Packet* victim = q_[worst];
    q_[worst] = q_.back();
    q_.pop_back();
    bytes_ -= victim->wire_bytes;
    drop(victim);
  }
  if (bytes_ + p->wire_bytes > limit_) {  // empty queue, oversized packet
    drop(p);
    return;
  }
  bytes_ += p->wire_bytes;
  q_.push_back(p);
  ++stats_.enqueued;
}

Packet* PfabricQueue::dequeue(Time /*now*/) {
  if (q_.empty()) return nullptr;
  // Find the highest-priority flow (min remaining), then the earliest
  // sequence packet of that flow.
  std::size_t best = 0;
  for (std::size_t i = 1; i < q_.size(); ++i) {
    if (q_[i]->remaining < q_[best]->remaining) best = i;
  }
  const std::uint32_t flow = q_[best]->flow_id;
  for (std::size_t i = 0; i < q_.size(); ++i) {
    if (q_[i]->flow_id == flow && q_[i]->seq < q_[best]->seq) best = i;
  }
  Packet* p = q_[best];
  q_[best] = q_.back();
  q_.pop_back();
  bytes_ -= p->wire_bytes;
  ++stats_.dequeued;
  return p;
}

}  // namespace ft::sim
