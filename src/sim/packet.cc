#include "sim/packet.h"

namespace ft::sim {

PacketPool::~PacketPool() {
  for (Packet* p : all_) delete p;
}

Packet* PacketPool::alloc() {
  Packet* p;
  if (free_list_.empty()) {
    p = new Packet();
    all_.push_back(p);
  } else {
    p = free_list_.back();
    free_list_.pop_back();
    *p = Packet{};  // reset to defaults
  }
  ++outstanding_;
  return p;
}

void PacketPool::free(Packet* p) {
  FT_CHECK(p != nullptr);
  FT_CHECK(outstanding_ > 0);
  --outstanding_;
  free_list_.push_back(p);
}

}  // namespace ft::sim
