// In-simulation flowlet detection: a host-NIC tap plus a packet-trace
// replayer.
//
// FlowletTap hooks the network's tx observer (the sending host's NIC,
// before any network delay -- exactly where endpoint-side detection
// runs) and feeds every transmitted packet to a flowlet::FlowletDetector.
// When replayed packets carry ground-truth boundary flags, the tap
// scores the detector's per-packet decisions as it goes, so detection
// accuracy is measured under full simulation timing.
//
// TraceReplay injects a workload PacketTrace into the network verbatim:
// each PacketEvent becomes a source-routed packet sent at its trace
// time along its flow's ECMP path, with the ground-truth flag stamped
// for the tap.
#pragma once

#include <cstdint>
#include <vector>

#include "flowlet/accuracy.h"
#include "flowlet/detector.h"
#include "sim/network.h"
#include "workload/traffic_gen.h"

namespace ft::sim {

class FlowletTap : public EventHandler {
 public:
  // Installs itself as `net`'s tx observer and takes over the detector's
  // callbacks (start events feed the scorer).
  FlowletTap(Network& net, flowlet::FlowletDetector& det,
             Time advance_period = kMillisecond);
  // Unhooks both (the network and detector may outlive the tap).
  ~FlowletTap() override;
  FlowletTap(const FlowletTap&) = delete;
  FlowletTap& operator=(const FlowletTap&) = delete;

  // Runs the detector's idle sweep every advance_period until `until`.
  void start(Time until = kTimeNever);

  [[nodiscard]] const flowlet::BoundaryScorer& scorer() const {
    return scorer_;
  }
  [[nodiscard]] const flowlet::FlowletDetector& detector() const {
    return det_;
  }

  void on_event(std::uint32_t tag, std::uint64_t arg) override;

 private:
  void on_tx(const Packet& p);

  Network& net_;
  flowlet::FlowletDetector& det_;
  Time period_;
  Time until_ = kTimeNever;
  bool started_here_ = false;
  flowlet::BoundaryScorer scorer_;
};

class TraceReplay : public EventHandler {
 public:
  // `trace` must be time-sorted (PacketTraceGenerator output is).
  TraceReplay(Network& net, std::vector<wl::PacketEvent> trace);

  // Installs the delivery handler (packets are freed on arrival) and
  // schedules the injections; run the event queue to completion after.
  void start();

  [[nodiscard]] std::size_t injected() const { return next_; }
  [[nodiscard]] std::size_t delivered() const { return delivered_; }

  void on_event(std::uint32_t tag, std::uint64_t arg) override;

 private:
  void inject_next();

  Network& net_;
  std::vector<wl::PacketEvent> trace_;
  std::size_t next_ = 0;
  std::size_t delivered_ = 0;
};

}  // namespace ft::sim
