// SimProxy: a VIP-style L4 forwarder for the simulated control plane.
//
// Production deployments put the allocator behind a virtual IP: agents
// dial the VIP, a proxy (or the load-balancer dataplane) forwards to
// whichever allocator instance is live, and an allocator restart is
// *invisible* at the agent's socket -- the client leg stays up while
// the proxy re-dials the new instance. That topology is exactly where
// stale-rate bugs hide: the agent never sees a disconnect, its lease
// keeps getting renewed by the new instance's heartbeats, and nothing
// forces it to drop rates computed by the old instance. The epoch
// stamp (core/messages.h) exists to close that hole; SimProxy exists
// to *reach* it deterministically in virtual time.
//
// Forwarding is frame-aligned in both directions: the proxy cuts
// complete length-prefixed frames (net/frame.h) out of each leg and
// forwards whole frames only. That makes an upstream swap parser-safe:
//   - client->upstream: a partial frame's remainder will still arrive
//     (the client leg survived), so parse residue is kept; complete
//     frames not yet written to the dead upstream are preserved and
//     sent to its replacement. Frames already written but lost in
//     flight are gone -- recovering those is the agents' job (epoch-
//     triggered flowlet replay), not the proxy's.
//   - upstream->client: a partial frame's remainder will *never*
//     arrive (that upstream is dead), so the residue is discarded --
//     and counted, never silently (bytes_discarded_resync).
// A direction that turns out not to be length-prefixed falls back to
// verbatim forwarding (raw mode), mirroring FaultJail's sieve.
//
// Single-threaded, event-driven on the Transport's IoLoop; with
// SimTransport underneath every action is a deterministic virtual-time
// event, so chaos schedules involving VIP warm restarts replay
// bit-identically from a seed.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string_view>
#include <vector>

#include "net/transport.h"

namespace ft::obs {
class Counter;
}  // namespace ft::obs

namespace ft::sim {

struct SimProxyStats {
  std::uint64_t clients_accepted = 0;
  std::uint64_t clients_closed = 0;
  std::uint64_t upstream_dials = 0;    // successful connects, incl. first
  std::uint64_t upstream_redials = 0;  // of those, replacements after a loss
  std::uint64_t upstream_losses = 0;   // EOF/reset/refused on a live leg
  std::int64_t bytes_up = 0;           // client -> upstream, forwarded
  std::int64_t bytes_down = 0;         // upstream -> client, forwarded
  // Partial-frame residue discarded when swapping a dead upstream
  // (the only place the proxy deliberately drops bytes).
  std::int64_t bytes_discarded_resync = 0;
};

class SimProxy {
 public:
  struct Config {
    int listen_port = 0;     // 0 = ephemeral; see port()
    int upstream_port = 0;   // where the allocator (re)binds
    std::int64_t redial_delay_us = 1000;  // backoff between upstream dials
  };

  SimProxy(net::Transport& tr, const Config& cfg);
  ~SimProxy();
  SimProxy(const SimProxy&) = delete;
  SimProxy& operator=(const SimProxy&) = delete;

  // The VIP: what agents should dial.
  [[nodiscard]] int port() const { return port_; }
  [[nodiscard]] const SimProxyStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t num_sessions() const { return sessions_.size(); }
  // Sessions currently holding a live upstream leg (the rest are
  // mid-redial). The leak oracle counts transport slots against this.
  [[nodiscard]] std::size_t num_upstreams() const {
    return upstream_owner_.size();
  }

  // Mirrors the proxy's one deliberate drop path into a named counter
  // ("<prefix>.bytes_discarded_resync").
  void bind_metrics(obs::MetricsRegistry& reg, std::string_view prefix);

 private:
  // One direction of a session: frame cutter + ready-to-write queue.
  struct Pipe {
    std::vector<std::uint8_t> parse;  // incomplete-frame accumulation
    std::vector<std::uint8_t> ready;  // whole frames awaiting write
    std::size_t ready_off = 0;        // written prefix of `ready`
    bool raw = false;                 // unframeable: forward verbatim
  };

  struct Session {
    int client_fd = -1;
    int upstream_fd = -1;  // -1 while the upstream is being re-dialed
    Pipe up;               // client -> upstream
    Pipe down;             // upstream -> client
    net::IoLoop::TimerId redial_timer = 0;  // 0 = none armed
    bool had_upstream = false;  // a dial ever succeeded (redial counting)
  };

  void on_listener_ready(std::uint32_t mask);
  void on_client_ready(int client_fd, std::uint32_t mask);
  void on_upstream_ready(int client_fd, std::uint32_t mask);

  // Reads everything available from `fd` into `p`, cutting frames.
  // Returns false when the source is dead (EOF or reset).
  bool pump_in(int fd, Pipe& p);
  // Writes p.ready toward `fd`, adding what shipped to *forwarded;
  // returns false when the sink is dead.
  bool flush(int fd, Pipe& p, std::int64_t* forwarded);
  void update_interest(Session& s);

  void dial_upstream(Session& s);
  void arm_redial(Session& s);
  void lose_upstream(Session& s);
  void teardown(int client_fd);

  net::Transport& tr_;
  Config cfg_;
  std::unique_ptr<net::IoLoop> loop_;
  int listen_fd_ = -1;
  int port_ = 0;
  // Ordered for deterministic teardown.
  std::map<int, Session> sessions_;       // by client_fd
  std::map<int, int> upstream_owner_;     // upstream_fd -> client_fd
  SimProxyStats stats_;
  obs::Counter* discard_counter_ = nullptr;
};

}  // namespace ft::sim
