// A unidirectional link: queue discipline + serialization at the link
// rate + propagation delay. The link is the DropSink for its queue and
// owns all drop accounting.
#pragma once

#include <functional>
#include <memory>

#include "common/ids.h"
#include "sim/event_queue.h"
#include "sim/packet.h"
#include "sim/queue.h"

namespace ft::sim {

class Link : public EventHandler, public DropSink {
 public:
  struct Stats {
    std::uint64_t tx_packets = 0;
    std::int64_t tx_bytes = 0;
    std::uint64_t drops = 0;
    std::int64_t dropped_bytes = 0;
  };

  // `deliver` is invoked when a packet finishes serialization plus
  // propagation; `on_dropped` (optional) observes drops for tracing.
  Link(EventQueue& events, LinkId id, double capacity_bps, Time prop_delay,
       std::unique_ptr<QueueDisc> queue, PacketPool& pool,
       std::function<void(Packet*)> deliver);

  void set_drop_observer(std::function<void(LinkId, const Packet*)> obs) {
    drop_observer_ = std::move(obs);
  }

  // Hands a packet to the link (enqueue; starts transmitting if idle).
  void send(Packet* p);

  [[nodiscard]] LinkId id() const { return id_; }
  [[nodiscard]] double capacity_bps() const { return capacity_bps_; }
  [[nodiscard]] Time prop_delay() const { return prop_delay_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] const QueueDisc& queue() const { return *queue_; }

  // Bytes queued (excluding the packet in serialization): used by the
  // queue-delay sampler.
  [[nodiscard]] std::int64_t queued_bytes() const {
    return queue_->byte_length();
  }
  // Queuing delay a newly arriving packet would experience.
  [[nodiscard]] Time queue_delay() const {
    return tx_time(queue_->byte_length(), capacity_bps_);
  }

  // EventHandler.
  void on_event(std::uint32_t tag, std::uint64_t arg) override;
  // DropSink.
  void on_drop(Packet* p) override;

 private:
  static constexpr std::uint32_t kTxDone = 1;
  static constexpr std::uint32_t kArrive = 2;

  void start_tx();

  EventQueue& events_;
  LinkId id_;
  double capacity_bps_;
  Time prop_delay_;
  std::unique_ptr<QueueDisc> queue_;
  PacketPool& pool_;
  std::function<void(Packet*)> deliver_;
  std::function<void(LinkId, const Packet*)> drop_observer_;
  bool busy_ = false;
  Stats stats_;
};

}  // namespace ft::sim
