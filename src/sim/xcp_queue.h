// XCP router queue (Katabi, Handley, Rohrs, SIGCOMM 2002).
//
// A drop-tail FIFO plus the XCP efficiency + fairness controllers. Every
// control interval (the running mean RTT of traversing packets) the
// router computes the aggregate feedback
//
//   phi = alpha * d * S - beta * Q
//
// where S is spare bandwidth (capacity minus input rate), Q the
// persistent (minimum) queue over the interval, alpha = 0.4 and
// beta = 0.226. Bandwidth shuffling (10% of traffic) redistributes
// allocation between flows even at full utilization. Per-packet feedback
// uses the previous interval's scale factors:
//
//   positive:  p_i = xi_p * rtt_i^2 * s_i / cwnd_i
//   negative:  n_i = xi_n * rtt_i * s_i
//
// and the packet's congestion-header feedback field takes the minimum of
// its current value and (p_i - n_i), so the bottleneck router governs.
// Interval rollover is evaluated lazily on packet arrival, which is
// equivalent under traffic (and irrelevant without it).
#pragma once

#include <deque>

#include "sim/queue.h"

namespace ft::sim {

struct XcpConfig {
  std::int64_t limit_bytes = 400 * 1500;
  double alpha = 0.4;
  double beta = 0.226;
  double shuffle = 0.1;
  Time initial_interval = 30 * kMicrosecond;
};

class XcpQueue : public QueueDisc {
 public:
  XcpQueue(double capacity_bps, XcpConfig cfg = XcpConfig());

  void enqueue(Packet* p, Time now) override;
  Packet* dequeue(Time now) override;
  [[nodiscard]] std::int64_t byte_length() const override { return bytes_; }

 private:
  void maybe_rollover(Time now);
  void apply_feedback(Packet* p);

  double capacity_Bps_;  // bytes per second
  XcpConfig cfg_;
  std::int64_t bytes_ = 0;
  std::deque<Packet*> q_;

  // Current interval accumulators.
  Time interval_start_ = 0;
  Time interval_len_;
  std::int64_t input_bytes_ = 0;
  std::int64_t min_queue_ = 0;
  double sum_s_ = 0.0;                // sum of s_i (data bytes)
  double sum_rtt_s_over_cwnd_ = 0.0;  // sum of rtt_i * s_i / cwnd_i
  double sum_rtt_bytes_ = 0.0;        // for mean RTT (weighted by bytes)
  std::int64_t data_bytes_ = 0;

  // Previous interval's per-packet feedback scale factors.
  double xi_p_ = 0.0;
  double xi_n_ = 0.0;
};

}  // namespace ft::sim
