#include "sim/control_plane_harness.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"
#include "obs/metrics.h"
#include "workload/traffic_gen.h"

namespace ft::sim {

namespace {

topo::ClosConfig clos_cfg(const HarnessConfig& cfg) {
  topo::ClosConfig c;
  c.servers_per_rack = cfg.servers_per_rack;
  c.racks =
      (cfg.num_endpoints + cfg.servers_per_rack - 1) / cfg.servers_per_rack;
  c.spines = cfg.spines;
  c.host_link_bps = cfg.host_link_bps;
  c.fabric_link_bps = cfg.fabric_link_bps;
  return c;
}

std::vector<double> caps_of(const topo::ClosTopology& topo) {
  std::vector<double> caps;
  caps.reserve(topo.graph().links().size());
  for (const auto& l : topo.graph().links()) caps.push_back(l.capacity_bps);
  return caps;
}

// splitmix64: derives independent per-agent seeds from the harness seed.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

ControlPlaneHarness::ControlPlaneHarness(HarnessConfig cfg)
    : cfg_(cfg),
      tr_(events_, cfg_.seed),
      topo_(clos_cfg(cfg_)),
      alloc_(caps_of(topo_), cfg_.alloc) {
  FT_CHECK(cfg_.num_endpoints > 0);
  FT_CHECK(cfg_.num_endpoints <= topo_.num_hosts());
  tr_.set_default_link(cfg_.link);
  // Every obs:: timestamp in the process (flight recorder, traces,
  // metrics) now reads the event queue's clock; the dtor restores.
  obs::set_clock_override(&tr_.virtual_clock());

  loop_ = std::make_unique<SimLoop>(tr_);
  svc_ = std::make_unique<net::AllocatorService>(*loop_, alloc_, topo_,
                                                server_cfg());
  port_ = svc_->tcp_port();
  FT_CHECK(port_ > 0);

  // VIP mode: agents dial the proxy; restart_service() becomes a warm
  // restart the agents' sockets never see.
  int dial_port = port_;
  if (cfg_.use_vip_proxy) {
    SimProxy::Config pc;
    pc.upstream_port = port_;
    pc.redial_delay_us = cfg_.vip_redial_delay_us;
    proxy_ = std::make_unique<SimProxy>(tr_, pc);
    dial_port = proxy_->port();
  }

  const int n = cfg_.num_endpoints;
  agents_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    net::AgentConfig ac;
    ac.transport = &tr_;
    ac.auto_reconnect = true;
    // Explicit per-agent jitter seed: the default derives from the
    // object's address, which would break cross-run determinism.
    ac.reconnect_seed = mix(cfg_.seed, static_cast<std::uint64_t>(i));
    ac.heartbeat_period_us = cfg_.agent_heartbeat_period_us;
    ac.peer_timeout_us = cfg_.agent_peer_timeout_us;
    ac.epoch_filtering = cfg_.agent_epoch_filtering;
    ac.lease_enforcement = cfg_.agent_lease_enforcement;
    ac.leak_connection_fds = cfg_.agent_leak_fds;
    agents_.push_back(std::make_unique<net::EndpointAgent>(std::move(ac)));
    agents_.back()->set_rate_callback(
        [this, i](std::uint32_t key, double /*rate_bps*/,
                  std::uint16_t code) { note_rate(i, key, code); });
  }

  // Connection ramp: dials spread uniformly across connect_spread_us so
  // ten thousand SYNs do not land on one virtual instant.
  for (int i = 0; i < n; ++i) {
    const std::int64_t at_us = cfg_.connect_spread_us * i / n;
    loop_->add_timer(at_us, [this, i, dial_port] {
      (void)agents_[static_cast<std::size_t>(i)]->connect_tcp("sim",
                                                              dial_port);
    });
  }

  // Flowlet arrivals from the Poisson generator, offset behind the
  // connection ramp; each lands on its source host's agent through the
  // real flowlet_start batching path.
  wl::TrafficConfig tc;
  tc.num_hosts = n;
  tc.host_link_bps = cfg_.host_link_bps;
  tc.seed = mix(cfg_.seed, 0xf1071e75ULL);
  total_flows_ =
      static_cast<std::size_t>(n) *
      static_cast<std::size_t>(cfg_.flows_per_endpoint);
  seen_.assign(total_flows_ + 1, false);
  wl::TrafficGenerator gen(tc);
  for (std::size_t k = 0; k < total_flows_; ++k) {
    const wl::FlowletEvent ev = gen.next();
    const std::uint32_t key = static_cast<std::uint32_t>(k + 1);
    const std::int64_t at_us =
        cfg_.connect_spread_us + ev.start / kMicrosecond;
    const std::uint32_t hint = static_cast<std::uint32_t>(std::min<
        std::int64_t>(ev.bytes, std::numeric_limits<std::uint32_t>::max()));
    loop_->add_timer(at_us, [this, ev, key, hint] {
      (void)agents_[static_cast<std::size_t>(ev.src_host)]->flowlet_start(
          key, static_cast<std::uint16_t>(ev.src_host),
          static_cast<std::uint16_t>(ev.dst_host), hint);
    });
  }

  // Poll sweep: index order, every poll_period_us -- the virtual-time
  // equivalent of each endpoint's poll loop, deterministic by design.
  loop_->add_periodic(cfg_.poll_period_us, [this] {
    for (auto& a : agents_) (void)a->poll();
  });
}

ControlPlaneHarness::~ControlPlaneHarness() {
  obs::set_clock_override(nullptr);
}

net::ServerConfig ControlPlaneHarness::server_cfg() {
  net::ServerConfig s;
  s.transport = &tr_;
  s.tcp_port = port_ > 0 ? port_ : 0;  // rebind the same port on restart
  s.iteration_period_us = cfg_.iteration_period_us;
  s.heartbeat_period_us = cfg_.heartbeat_period_us;
  s.rate_lease_us = cfg_.rate_lease_us;
  s.peer_timeout_us = cfg_.peer_timeout_us;
  s.num_shards = 0;  // sim transport is single-threaded by contract
  // Deterministic epoch (the process-global fallback would couple runs
  // in one test binary): the first service is epoch 1, each restart
  // increments, so agents can order instances across warm restarts.
  s.epoch = static_cast<std::uint16_t>(1 + restarts_);
  return s;
}

void ControlPlaneHarness::restart_service() {
  svc_.reset();  // closes every connection, ends every flowlet
  ++restarts_;
  svc_ = std::make_unique<net::AllocatorService>(*loop_, alloc_, topo_,
                                                server_cfg());
  FT_CHECK(svc_->tcp_port() == port_);
}

void ControlPlaneHarness::note_rate(int agent_idx, std::uint32_t key,
                                    std::uint16_t code) {
  if (key < seen_.size() && !seen_[key]) {
    seen_[key] = true;
    ++seen_count_;
  }
  const auto fnv = [this](std::uint64_t v) {
    hash_ ^= v;
    hash_ *= 1099511628211ULL;  // FNV-1a prime
  };
  fnv(static_cast<std::uint64_t>(events_.now() / kMicrosecond));
  fnv(static_cast<std::uint64_t>(agent_idx));
  fnv(key);
  fnv(code);
}

void ControlPlaneHarness::run_for(std::int64_t us) {
  events_.run_until(events_.now() + us * kMicrosecond);
}

ConvergeStats ControlPlaneHarness::run_to_convergence() {
  ConvergeStats out;
  const Time horizon = cfg_.max_virtual_us * kMicrosecond;
  // Stability watches the ORGANIC update stream (emitted minus
  // anti-entropy re-emissions): refresh traffic flows forever by
  // design and must not hold convergence open. The quiet window is
  // stretched to cover one full refresh sweep (+1 for stagger phase)
  // so every agent-held rate has been re-synced to the allocator's
  // final value by the time quiesce oracles run.
  const auto organic = [this] {
    const core::AllocatorStats a = alloc_.stats();
    return a.updates_emitted - a.updates_refreshed;
  };
  const int need =
      std::max(cfg_.stable_rounds,
               cfg_.alloc.refresh_rounds > 0 ? cfg_.alloc.refresh_rounds + 1
                                             : 0);
  std::uint64_t last_updates = organic();
  int stable = 0;
  while (events_.now() < horizon) {
    events_.run_until(events_.now() +
                      cfg_.iteration_period_us * kMicrosecond);
    const std::uint64_t now_updates = organic();
    // Quiet counters alone are not convergence: after a fault (service
    // restart, reset storm) the service is silent precisely because the
    // flow set has not been rebuilt yet -- require it whole first.
    const bool plane_whole =
        seen_count_ == total_flows_ &&
        alloc_.num_active_flowlets() == total_flows_;
    if (plane_whole && now_updates == last_updates) {
      if (++stable >= need) {
        out.converged = true;
        break;
      }
    } else {
      stable = 0;
    }
    last_updates = now_updates;
  }
  const net::ServiceStats st = svc_->stats();
  out.rounds = st.iterations;
  out.updates_sent = st.updates_sent;
  out.virtual_us = events_.now() / kMicrosecond;
  out.events_processed = events_.processed();
  out.trajectory_hash = hash_;
  for (const auto& a : agents_) {
    out.updates_received += a->stats().updates_received;
  }
  return out;
}

}  // namespace ft::sim
