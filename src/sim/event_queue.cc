#include "sim/event_queue.h"

namespace ft::sim {

void EventQueue::run_until(Time horizon) {
  while (!heap_.empty() && heap_.top().at <= horizon) {
    const Event ev = heap_.top();
    heap_.pop();
    FT_CHECK(ev.at >= now_);
    now_ = ev.at;
    if (clock_ != nullptr) clock_->advance_to(now_);
    ++processed_;
    ev.handler->on_event(ev.tag, ev.arg);
  }
  now_ = horizon;
  if (clock_ != nullptr) clock_->advance_to(now_);
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  const Event ev = heap_.top();
  heap_.pop();
  now_ = ev.at;
  if (clock_ != nullptr) clock_->advance_to(now_);
  ++processed_;
  ev.handler->on_event(ev.tag, ev.arg);
  return true;
}

}  // namespace ft::sim
