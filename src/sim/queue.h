// Queue discipline interface and the DropTail / ECN-marking variant.
//
// A QueueDisc owns packets between enqueue and dequeue. Drops (on
// enqueue overflow, victim eviction, or AQM decisions at dequeue) are
// reported to a DropSink -- the owning Link -- which does the accounting
// and recycles the packet.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>

#include "common/time.h"
#include "sim/packet.h"

namespace ft::sim {

class DropSink {
 public:
  virtual ~DropSink() = default;
  virtual void on_drop(Packet* p) = 0;
};

struct QueueStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t dropped = 0;
  std::int64_t dropped_bytes = 0;
  std::uint64_t ecn_marked = 0;
};

class QueueDisc {
 public:
  virtual ~QueueDisc() = default;

  void set_drop_sink(DropSink* sink) { sink_ = sink; }

  // Takes ownership; may drop (this packet or a queued victim).
  virtual void enqueue(Packet* p, Time now) = 0;
  // Returns the next packet to serialize, or nullptr if empty. May drop
  // packets as a side effect (AQM).
  virtual Packet* dequeue(Time now) = 0;

  [[nodiscard]] virtual std::int64_t byte_length() const = 0;
  [[nodiscard]] bool empty() const { return byte_length() == 0; }

  [[nodiscard]] const QueueStats& stats() const { return stats_; }

 protected:
  void drop(Packet* p) {
    ++stats_.dropped;
    stats_.dropped_bytes += p->wire_bytes;
    sink_->on_drop(p);
  }

  DropSink* sink_ = nullptr;
  QueueStats stats_;
};

// Tail-drop FIFO with an optional ECN marking threshold (DCTCP's switch
// behaviour: mark when the instantaneous queue exceeds K).
class DropTailQueue : public QueueDisc {
 public:
  explicit DropTailQueue(std::int64_t limit_bytes,
                         std::int64_t ecn_threshold_bytes = 0)
      : limit_(limit_bytes), ecn_threshold_(ecn_threshold_bytes) {}

  void enqueue(Packet* p, Time now) override;
  Packet* dequeue(Time now) override;
  [[nodiscard]] std::int64_t byte_length() const override { return bytes_; }

 private:
  std::int64_t limit_;
  std::int64_t ecn_threshold_;
  std::int64_t bytes_ = 0;
  std::deque<Packet*> q_;
};

using QueueFactory =
    std::function<std::unique_ptr<QueueDisc>(double link_capacity_bps)>;

}  // namespace ft::sim
