#include "sim/xcp_queue.h"

#include <algorithm>
#include <cmath>

namespace ft::sim {

XcpQueue::XcpQueue(double capacity_bps, XcpConfig cfg)
    : capacity_Bps_(capacity_bps / 8.0),
      cfg_(cfg),
      interval_len_(cfg.initial_interval) {}

void XcpQueue::maybe_rollover(Time now) {
  if (now - interval_start_ < interval_len_) return;
  const double d = to_sec(now - interval_start_);

  // Aggregate feedback (bytes over the interval).
  const double spare =
      capacity_Bps_ * d - static_cast<double>(input_bytes_);
  const double phi = cfg_.alpha * spare -
                     cfg_.beta * static_cast<double>(min_queue_);
  const double shuffle =
      std::max(0.0, cfg_.shuffle * static_cast<double>(input_bytes_) -
                        std::abs(phi));
  const double pos = shuffle + std::max(phi, 0.0);
  const double neg = shuffle + std::max(-phi, 0.0);

  // Scale factors (Katabi et al. §3.5): sum of p_i over an interval's
  // packets equals P (each packet's rtt/d weighting cancels against the
  // per-RTT application of feedback), and likewise for n_i.
  xi_p_ = sum_rtt_s_over_cwnd_ > 0.0 ? pos / (d * sum_rtt_s_over_cwnd_)
                                     : 0.0;
  xi_n_ = sum_s_ > 0.0 ? neg / (d * sum_s_) : 0.0;

  // Next interval length: mean RTT of traversing bytes (clamped).
  if (data_bytes_ > 0 && sum_rtt_bytes_ > 0.0) {
    const double mean_rtt =
        sum_rtt_bytes_ / static_cast<double>(data_bytes_);
    interval_len_ = std::clamp(from_sec(mean_rtt), 10 * kMicrosecond,
                               10 * kMillisecond);
  }

  interval_start_ = now;
  input_bytes_ = 0;
  min_queue_ = bytes_;
  sum_s_ = 0.0;
  sum_rtt_s_over_cwnd_ = 0.0;
  sum_rtt_bytes_ = 0.0;
  data_bytes_ = 0;
}

void XcpQueue::apply_feedback(Packet* p) {
  if (p->xcp_cwnd_bytes <= 0.0 || p->xcp_rtt_sec <= 0.0) return;
  const auto s = static_cast<double>(p->wire_bytes);
  const double pos =
      xi_p_ * p->xcp_rtt_sec * p->xcp_rtt_sec * s / p->xcp_cwnd_bytes;
  const double neg = xi_n_ * p->xcp_rtt_sec * s;
  p->xcp_feedback_bytes = std::min(p->xcp_feedback_bytes, pos - neg);
}

void XcpQueue::enqueue(Packet* p, Time now) {
  maybe_rollover(now);
  input_bytes_ += p->wire_bytes;
  if (p->kind == PacketKind::kData && p->xcp_rtt_sec > 0.0) {
    const auto s = static_cast<double>(p->wire_bytes);
    sum_s_ += s;
    if (p->xcp_cwnd_bytes > 0.0) {
      sum_rtt_s_over_cwnd_ += p->xcp_rtt_sec * s / p->xcp_cwnd_bytes;
    }
    sum_rtt_bytes_ += p->xcp_rtt_sec * s;
    data_bytes_ += p->wire_bytes;
  }
  apply_feedback(p);

  if (bytes_ + p->wire_bytes > cfg_.limit_bytes) {
    drop(p);
    return;
  }
  p->enq_at = now;
  bytes_ += p->wire_bytes;
  q_.push_back(p);
  ++stats_.enqueued;
}

Packet* XcpQueue::dequeue(Time now) {
  maybe_rollover(now);
  min_queue_ = std::min(min_queue_, bytes_);
  if (q_.empty()) return nullptr;
  Packet* p = q_.front();
  q_.pop_front();
  bytes_ -= p->wire_bytes;
  ++stats_.dequeued;
  return p;
}

}  // namespace ft::sim
