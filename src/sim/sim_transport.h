// SimTransport: the net::Transport seam backed by the discrete-event
// queue instead of the kernel.
//
// Handles are table ids over in-memory duplex streams. A write is cut
// into delivery events on the shared sim::EventQueue: bytes leave the
// writer no faster than the stream's configured bandwidth (a
// serialization cursor per direction, exactly like sim::Link) and land
// in the peer's inbox one configured latency later. Readiness is
// delivered through SimLoop -- an IoLoop whose timers and fd callbacks
// are all queue events -- so the *real* AllocatorService and
// EndpointAgent run unmodified on virtual time: a 10k-endpoint
// control plane converges in seconds of wall clock, and two runs with
// the same seed replay bit-identically (single thread, seeded RNG,
// seq-ordered event ties, ordered handle maps).
//
// FaultJail-style faults compose with virtual time natively:
//   - set_drop_down_frac: a seeded fraction of service->agent *frames*
//     vanish in flight (whole frames, never mid-record, via the same
//     length-prefix sieve FaultJail uses, so parsers keep working);
//   - set_black_hole: writes succeed but bytes evaporate (the silent
//     partition leases exist for);
//   - set_partition_up / set_partition_down: the black hole's one-way
//     cousins -- only agent->service (up) or service->agent (down)
//     bytes evaporate, the other direction flows normally. One-way
//     loss is the nastier failure: the side that can still hear keeps
//     believing the conversation is healthy;
//   - kill_all: every established stream resets at once -- reads give
//     ECONNRESET, writes EPIPE -- driving agents into reconnect backoff
//     (a virtual-time reconnect storm).
//
// Every byte write() accepts is accounted to exactly one fate, so the
// chaos harness can assert conservation as an exact identity:
//
//   bytes_accepted == bytes_delivered + bytes_blackholed
//                   + bytes_partitioned_up + bytes_partitioned_down
//                   + bytes_dropped_sieve + bytes_dropped_closed
//                   + stranded_bytes()
//
// where stranded_bytes() is what is still legitimately in motion
// (segments in flight plus sieve parse residue). Any silent loss path
// breaks the identity and trips the conservation oracle.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "net/transport.h"
#include "sim/event_queue.h"

namespace ft::obs {
class Counter;
}  // namespace ft::obs

namespace ft::sim {

// Per-stream shaping (one instance per direction).
struct SimLinkParams {
  std::int64_t latency_us = 5;
  double bandwidth_bps = 10e9;
};

struct SimTransportStats {
  std::uint64_t conns_opened = 0;
  std::uint64_t conns_reset = 0;     // kill_all victims
  std::uint64_t frames_down = 0;     // frames sieved on drop-enabled dirs
  std::uint64_t frames_dropped = 0;  // of those, injected drops
  // Byte fates. bytes_accepted is everything write() returned success
  // for (post receive-window clamp); the rest partition it exhaustively
  // together with stranded_bytes() -- see the conservation identity in
  // the header comment.
  std::int64_t bytes_accepted = 0;
  std::int64_t bytes_delivered = 0;        // landed in a peer inbox
  std::int64_t bytes_blackholed = 0;       // two-way black hole
  std::int64_t bytes_partitioned_up = 0;   // one-way: agent->service
  std::int64_t bytes_partitioned_down = 0; // one-way: service->agent
  std::int64_t bytes_dropped_sieve = 0;    // whole frames the sieve cut
  std::int64_t bytes_dropped_closed = 0;   // died at a closed/gone peer
  // Record types inside sieve-dropped frames (drop *accounting*, not
  // just drop *counting*: the conservation oracle demands every lost
  // record shows up under a name).
  std::uint64_t records_dropped_start = 0;
  std::uint64_t records_dropped_end = 0;
  std::uint64_t records_dropped_rate = 0;
  std::uint64_t records_dropped_trace = 0;
  std::uint64_t records_dropped_heartbeat = 0;
  std::uint64_t records_dropped_other = 0;  // unknown tag / malformed tail
};

class SimLoop;

class SimTransport final : public net::Transport, public EventHandler {
 public:
  explicit SimTransport(EventQueue& events, std::uint64_t seed = 1);
  ~SimTransport() override;
  SimTransport(const SimTransport&) = delete;
  SimTransport& operator=(const SimTransport&) = delete;

  // --- net::Transport ---
  [[nodiscard]] Clock& clock() override { return clock_; }
  int connect_tcp(const std::string& host, int port) override;
  int connect_unix(const std::string& path) override;
  int listen_tcp(int port, bool listen_any, int* bound_port) override;
  int listen_unix(const std::string& path) override;
  int accept(int listen_handle) override;
  [[nodiscard]] std::int64_t read(int handle, void* buf,
                                  std::size_t len) override;
  [[nodiscard]] std::int64_t write(int handle, const void* buf,
                                   std::size_t len) override;
  void close(int handle) override;
  void set_nodelay(int /*handle*/) override {}
  void set_sndbuf(int /*handle*/, int /*bytes*/) override {}
  void unlink_path(const std::string& path) override;
  [[nodiscard]] std::unique_ptr<net::IoLoop> make_loop() override;
  [[nodiscard]] bool supports_threads() const override { return false; }

  // --- configuration ---
  // Default shaping for both directions of future connections.
  void set_default_link(const SimLinkParams& p) { default_link_ = p; }
  // One-shot override for the next connect_* call (per-endpoint
  // heterogeneous links without threading params through AgentConfig).
  void set_next_dial_link(const SimLinkParams& p) {
    next_dial_link_ = p;
    next_dial_link_set_ = true;
  }
  // Bytes a stream direction may hold un-read + in flight before writes
  // return EAGAIN (the SO_SNDBUF/receive-window analogue).
  void set_stream_buf_bytes(std::size_t n) { stream_buf_bytes_ = n; }

  // --- faults ---
  // Fraction of frames written by *accept-side* handles (service ->
  // agent) silently dropped, whole frames at a time.
  void set_drop_down_frac(double f) { drop_down_frac_ = f; }
  void set_black_hole(bool on) { black_hole_ = on; }
  // One-way partitions: writes in the affected direction succeed but
  // the bytes evaporate; the opposite direction is untouched. "Up" is
  // the client->server direction (agent -> allocator), "down" is
  // server->client (allocator -> agent). Both may be on at once (then
  // equivalent to a black hole, but accounted per direction).
  void set_partition_up(bool on) { partition_up_ = on; }
  void set_partition_down(bool on) { partition_down_ = on; }
  // Reset storm: every established stream dies now (ECONNRESET/EPIPE);
  // listeners survive so re-dials succeed.
  void kill_all();

  // Mirrors the drop/fault counters into named obs:: counters (e.g.
  // "<prefix>.bytes_dropped_sieve") so simulated loss is visible on the
  // same metrics plane as production loss. Call once at setup; the
  // registry must outlive the transport.
  void bind_metrics(obs::MetricsRegistry& reg, std::string_view prefix);

  [[nodiscard]] const SimTransportStats& stats() const { return stats_; }
  // Bytes legitimately still in motion: segments scheduled but not yet
  // delivered, plus sieve parse residue awaiting a complete frame.
  // Closes the conservation identity (see header comment).
  [[nodiscard]] std::int64_t stranded_bytes() const;
  [[nodiscard]] std::size_t num_streams() const { return streams_.size(); }
  [[nodiscard]] EventQueue& events() { return events_; }
  [[nodiscard]] VirtualClock& virtual_clock() { return clock_; }

  // EventHandler: delivery / readiness / backlog events.
  void on_event(std::uint32_t tag, std::uint64_t arg) override;

 private:
  friend class SimLoop;

  struct Watch {
    SimLoop* loop = nullptr;
    net::IoLoop::FdCallback cb;
    std::uint32_t interest = 0;
    bool notify_pending = false;
  };

  struct Stream {
    int peer = -1;
    bool server_side = false;  // created by accept (service end)
    bool open = true;          // close() not yet called locally
    bool peer_closed = false;  // peer's FIN arrived
    bool reset = false;        // kill_all victim
    std::vector<std::uint8_t> inbox;
    std::size_t inbox_off = 0;
    std::int64_t in_flight = 0;  // bytes scheduled toward this inbox
    Time link_free_at = 0;       // serialization cursor for *our* writes
    SimLinkParams link;
    // Frame sieve state for drop injection (server-side writers only).
    std::vector<std::uint8_t> down_parse;
    bool raw_mode = false;
    Watch watch;
  };

  struct Listener {
    std::deque<int> backlog;  // server-side handles awaiting accept()
    int port = -1;            // -1 for unix listeners
    std::string path;
    Watch watch;
  };

  struct Segment {
    int dst = -1;
    std::vector<std::uint8_t> data;
  };

  int dial(int listener_handle);
  // Schedules `data` from stream `from` toward its peer.
  void send_segment(Stream& from, std::vector<std::uint8_t> data);
  // Cuts whole frames out of from.down_parse, rolling the drop die.
  void sieve_and_send(Stream& from);
  // Accounts bytes that died at a closed or vanished peer.
  void drop_closed(std::int64_t n);
  // Attributes each record in a sieve-dropped frame payload to its
  // per-type drop counter.
  void count_dropped_records(const std::uint8_t* payload, std::size_t len);
  [[nodiscard]] std::uint32_t ready_mask(int handle) const;
  // Schedules a readiness dispatch if the handle is watched, ready and
  // none is pending.
  void request_notify(int handle);
  void maybe_erase_pair(int handle);
  [[nodiscard]] Watch* watch_of(int handle);

  EventQueue& events_;
  VirtualClock clock_;
  Rng rng_;
  SimLinkParams default_link_;
  SimLinkParams next_dial_link_;
  bool next_dial_link_set_ = false;
  std::size_t stream_buf_bytes_ = 1 << 20;
  double drop_down_frac_ = 0.0;
  bool black_hole_ = false;
  bool partition_up_ = false;
  bool partition_down_ = false;
  SimTransportStats stats_;
  // Named-counter mirrors for loss paths; null until bind_metrics.
  struct LossCounters {
    obs::Counter* blackholed = nullptr;
    obs::Counter* partitioned_up = nullptr;
    obs::Counter* partitioned_down = nullptr;
    obs::Counter* dropped_sieve = nullptr;
    obs::Counter* dropped_closed = nullptr;
    obs::Counter* records_dropped = nullptr;
  };
  LossCounters lc_;

  int next_handle_ = 1;
  std::uint64_t next_segment_ = 1;
  // Ordered maps: kill_all and teardown iterate them, and determinism
  // must not depend on hash-table layout.
  std::map<int, Stream> streams_;
  std::map<int, Listener> listeners_;
  std::unordered_map<int, int> tcp_binds_;  // port -> listener handle
  std::unordered_map<std::string, int> unix_binds_;
  std::unordered_map<std::uint64_t, Segment> segments_;
  int next_ephemeral_port_ = 40000;
};

// IoLoop over the shared EventQueue: timers are queue events, fd
// readiness arrives from SimTransport. run_once(max_wait) advances
// virtual time by up to max_wait microseconds (never busy-waits);
// run() drains until stop() or the queue empties.
class SimLoop final : public net::IoLoop, public EventHandler {
 public:
  explicit SimLoop(SimTransport& tr) : tr_(tr) {}
  ~SimLoop() override;

  void add_fd(int fd, std::uint32_t events, FdCallback cb) override;
  void mod_fd(int fd, std::uint32_t events) override;
  void del_fd(int fd) override;
  [[nodiscard]] bool watching(int fd) const override {
    return fds_.contains(fd);
  }
  TimerId add_timer(std::int64_t delay_us, TimerCallback cb) override;
  TimerId add_periodic(std::int64_t period_us, TimerCallback cb) override;
  void cancel_timer(TimerId id) override;
  using net::IoLoop::run_once;
  int run_once(std::int64_t max_wait_us) override;
  void run() override;
  void stop() override { stop_ = true; }
  void bind_metrics(obs::MetricsRegistry& /*reg*/,
                    std::string_view /*prefix*/) override {}

  // EventHandler: timer firings.
  void on_event(std::uint32_t tag, std::uint64_t arg) override;

 private:
  struct Timer {
    TimerCallback cb;
    std::int64_t period_us = 0;  // 0 = one-shot
  };

  SimTransport& tr_;
  std::unordered_map<int, bool> fds_;  // handles registered via this loop
  std::unordered_map<TimerId, Timer> timers_;
  TimerId next_timer_id_ = 1;
  bool stop_ = false;
};

}  // namespace ft::sim
