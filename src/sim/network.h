// The simulated network: one Link per topology link, source-routed
// forwarding, and host ingress/egress processing delays (§6.2: servers
// add 2 us).
//
// Transport agents inject packets with a stamped path via `send`; the
// network delivers them to the registered delivery handler after the
// path's serialization, propagation, queueing and the two host delays.
// The delivery handler (the transport layer's dispatcher) owns the packet
// from that point.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/event_queue.h"
#include "sim/link.h"
#include "sim/packet.h"
#include "topo/clos.h"

namespace ft::sim {

class Network : public EventHandler {
 public:
  // `queue_factory` builds each link's queue discipline (passed the link
  // capacity so thresholds can scale).
  Network(EventQueue& events, PacketPool& pool,
          const topo::ClosTopology& clos, const QueueFactory& queue_factory);

  void set_delivery_handler(std::function<void(Packet*)> handler) {
    deliver_ = std::move(handler);
  }
  void set_drop_observer(std::function<void(LinkId, const Packet*)> obs);
  // Observes every packet at injection time (the sending host's NIC),
  // before any network delay -- the hook a flowlet detection tap uses.
  void set_tx_observer(std::function<void(const Packet&)> obs) {
    tx_observer_ = std::move(obs);
  }

  // Injects a packet at its source host. The packet's path must be set;
  // host egress delay applies before it reaches the first link.
  void send(Packet* p);

  [[nodiscard]] Link& link(LinkId id) {
    return *links_[id.value()];
  }
  [[nodiscard]] const Link& link(LinkId id) const {
    return *links_[id.value()];
  }
  [[nodiscard]] std::size_t num_links() const { return links_.size(); }
  [[nodiscard]] const topo::ClosTopology& clos() const { return clos_; }
  [[nodiscard]] EventQueue& events() { return events_; }
  [[nodiscard]] PacketPool& pool() { return pool_; }

  // Total bytes dropped across all links.
  [[nodiscard]] std::int64_t total_dropped_bytes() const;
  [[nodiscard]] std::int64_t total_tx_bytes() const;

  void on_event(std::uint32_t tag, std::uint64_t arg) override;

 private:
  static constexpr std::uint32_t kHostEgress = 1;
  static constexpr std::uint32_t kHostIngress = 2;

  void forward(Packet* p);  // called when a link delivers a packet

  EventQueue& events_;
  PacketPool& pool_;
  const topo::ClosTopology& clos_;
  std::vector<std::unique_ptr<Link>> links_;
  std::function<void(Packet*)> deliver_;
  std::function<void(const Packet&)> tx_observer_;
  Time host_delay_;
};

}  // namespace ft::sim
