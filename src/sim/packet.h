// Simulated packets and the packet pool.
//
// One packet struct serves every transport (fields unused by a scheme stay
// zero) -- the simulator moves pointers, never copies. Packets are pool-
// allocated and recycled; PacketPool asserts balance at destruction so
// leaks in transport logic fail tests loudly.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/time.h"
#include "common/wire.h"

namespace ft::sim {

enum class PacketKind : std::uint8_t {
  kData = 0,
  kAck = 1,
};

struct Packet {
  // Identity / routing (source-routed: hop indexes into path).
  std::uint32_t flow_id = 0;
  std::int32_t src_host = -1;
  std::int32_t dst_host = -1;
  std::array<LinkId, 8> path{};
  std::uint8_t path_len = 0;
  std::uint8_t hop = 0;
  PacketKind kind = PacketKind::kData;

  // Sizes.
  std::int64_t payload = 0;     // transport payload bytes
  std::int64_t wire_bytes = 0;  // total bytes on the wire

  // Reliable stream fields.
  std::int64_t seq = 0;      // first payload byte offset
  std::int64_t ack_seq = 0;  // cumulative ack (receiver -> sender)
  std::int64_t sack_seq = -1;  // exact segment being acked (-1 = none)
  bool fin = false;

  // ECN (DCTCP).
  bool ecn_capable = false;
  bool ecn_marked = false;
  bool ecn_echo = false;  // on ACKs

  // pFabric: remaining flow bytes (lower = higher priority).
  std::int64_t remaining = 0;

  // XCP congestion header.
  double xcp_cwnd_bytes = 0.0;
  double xcp_rtt_sec = 0.0;
  double xcp_feedback_bytes = 0.0;  // demand, decremented by routers

  // Tracing.
  Time sent_at = 0;    // transport transmission time (RTT estimation)
  Time enq_at = 0;     // last queue-entry time (CoDel sojourn, delay traces)
  // Ground-truth flowlet boundary carried by replayed workload traces,
  // so a host-NIC detection tap can be scored in-simulation.
  bool truth_burst_start = false;

  void set_path(const LinkId* links, std::size_t n) {
    FT_CHECK(n <= path.size());
    for (std::size_t i = 0; i < n; ++i) path[i] = links[i];
    path_len = static_cast<std::uint8_t>(n);
    hop = 0;
  }

  [[nodiscard]] bool at_last_hop() const { return hop >= path_len; }

  // Recomputes wire occupancy from the payload (TCP/IP + Ethernet).
  void finalize_size() { wire_bytes = wire_bytes_tcp(payload); }
};

class PacketPool {
 public:
  PacketPool() = default;
  ~PacketPool();

  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  [[nodiscard]] Packet* alloc();
  void free(Packet* p);

  [[nodiscard]] std::size_t outstanding() const { return outstanding_; }

 private:
  std::vector<Packet*> free_list_;
  std::vector<Packet*> all_;
  std::size_t outstanding_ = 0;
};

}  // namespace ft::sim
