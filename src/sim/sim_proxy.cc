#include "sim/sim_proxy.h"

#include <cerrno>
#include <cstring>
#include <string>

#include "common/check.h"
#include "net/frame.h"
#include "obs/metrics.h"

namespace ft::sim {
namespace {

std::uint32_t get_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

// Moves complete length-prefixed frames from `parse` to `ready`. An
// unframeable stream flips to raw mode (verbatim pass-through).
void cut_frames(std::vector<std::uint8_t>& parse,
                std::vector<std::uint8_t>& ready, bool& raw) {
  if (raw) {
    ready.insert(ready.end(), parse.begin(), parse.end());
    parse.clear();
    return;
  }
  std::size_t off = 0;
  while (parse.size() - off >= net::kFrameHeaderBytes) {
    const std::size_t payload_len = get_le32(&parse[off]);
    if (payload_len == 0 || payload_len > net::kMaxFramePayload) {
      raw = true;
      ready.insert(ready.end(),
                   parse.begin() + static_cast<std::ptrdiff_t>(off),
                   parse.end());
      parse.clear();
      return;
    }
    const std::size_t total = net::kFrameHeaderBytes + payload_len;
    if (parse.size() - off < total) break;
    ready.insert(ready.end(),
                 parse.begin() + static_cast<std::ptrdiff_t>(off),
                 parse.begin() + static_cast<std::ptrdiff_t>(off + total));
    off += total;
  }
  parse.erase(parse.begin(), parse.begin() + static_cast<std::ptrdiff_t>(off));
}

}  // namespace

SimProxy::SimProxy(net::Transport& tr, const Config& cfg)
    : tr_(tr), cfg_(cfg), loop_(tr.make_loop()) {
  listen_fd_ = tr_.listen_tcp(cfg_.listen_port, true, &port_);
  FT_CHECK(listen_fd_ >= 0);
  loop_->add_fd(listen_fd_, net::kEvRead,
                [this](std::uint32_t m) { on_listener_ready(m); });
}

SimProxy::~SimProxy() {
  while (!sessions_.empty()) teardown(sessions_.begin()->first);
  if (listen_fd_ >= 0) {
    loop_->del_fd(listen_fd_);
    tr_.close(listen_fd_);
  }
}

void SimProxy::bind_metrics(obs::MetricsRegistry& reg,
                            std::string_view prefix) {
  discard_counter_ =
      &reg.counter(std::string(prefix) + ".bytes_discarded_resync");
}

void SimProxy::on_listener_ready(std::uint32_t /*mask*/) {
  for (;;) {
    const int cfd = tr_.accept(listen_fd_);
    if (cfd < 0) return;  // EAGAIN: backlog drained
    ++stats_.clients_accepted;
    auto [it, inserted] = sessions_.emplace(cfd, Session{});
    FT_CHECK(inserted);
    Session& s = it->second;
    s.client_fd = cfd;
    loop_->add_fd(cfd, net::kEvRead,
                  [this, cfd](std::uint32_t m) { on_client_ready(cfd, m); });
    dial_upstream(s);
  }
}

void SimProxy::dial_upstream(Session& s) {
  const int ufd = tr_.connect_tcp("vip-upstream", cfg_.upstream_port);
  if (ufd < 0) {
    // Nothing bound (the allocator is mid-restart): try again shortly.
    arm_redial(s);
    return;
  }
  s.upstream_fd = ufd;
  upstream_owner_.emplace(ufd, s.client_fd);
  ++stats_.upstream_dials;
  if (s.had_upstream) ++stats_.upstream_redials;
  s.had_upstream = true;
  const int cfd = s.client_fd;
  loop_->add_fd(ufd, net::kEvRead,
                [this, cfd](std::uint32_t m) { on_upstream_ready(cfd, m); });
  // Frames buffered while the upstream was down ship to the new one.
  if (!flush(ufd, s.up, &stats_.bytes_up)) {
    lose_upstream(s);
    arm_redial(s);
    return;
  }
  update_interest(s);
}

void SimProxy::arm_redial(Session& s) {
  if (s.redial_timer != 0) return;
  const int cfd = s.client_fd;
  s.redial_timer = loop_->add_timer(cfg_.redial_delay_us, [this, cfd] {
    const auto it = sessions_.find(cfd);
    if (it == sessions_.end()) return;
    it->second.redial_timer = 0;
    if (it->second.upstream_fd < 0) dial_upstream(it->second);
  });
}

void SimProxy::lose_upstream(Session& s) {
  ++stats_.upstream_losses;
  if (s.upstream_fd >= 0) {
    loop_->del_fd(s.upstream_fd);
    tr_.close(s.upstream_fd);
    upstream_owner_.erase(s.upstream_fd);
    s.upstream_fd = -1;
  }
  // A partial frame from the dead upstream can never complete; forward-
  // ing it would desync the client's parser. Discard -- and count.
  if (!s.down.parse.empty()) {
    const auto n = static_cast<std::int64_t>(s.down.parse.size());
    stats_.bytes_discarded_resync += n;
    if (discard_counter_ != nullptr) {
      discard_counter_->add(static_cast<std::uint64_t>(n));
    }
    s.down.parse.clear();
  }
}

void SimProxy::teardown(int client_fd) {
  const auto it = sessions_.find(client_fd);
  if (it == sessions_.end()) return;
  Session& s = it->second;
  if (s.redial_timer != 0) loop_->cancel_timer(s.redial_timer);
  if (s.upstream_fd >= 0) {
    loop_->del_fd(s.upstream_fd);
    tr_.close(s.upstream_fd);
    upstream_owner_.erase(s.upstream_fd);
  }
  loop_->del_fd(s.client_fd);
  tr_.close(s.client_fd);
  ++stats_.clients_closed;
  sessions_.erase(it);
}

bool SimProxy::pump_in(int fd, Pipe& p) {
  std::uint8_t buf[16384];
  bool alive = true;
  for (;;) {
    const std::int64_t n = tr_.read(fd, buf, sizeof buf);
    if (n > 0) {
      p.parse.insert(p.parse.end(), buf, buf + n);
      continue;
    }
    if (n == 0) {
      alive = false;  // clean EOF
      break;
    }
    if (errno == EAGAIN) break;
    alive = false;  // ECONNRESET or similar
    break;
  }
  cut_frames(p.parse, p.ready, p.raw);
  return alive;
}

bool SimProxy::flush(int fd, Pipe& p, std::int64_t* forwarded) {
  bool alive = true;
  while (p.ready_off < p.ready.size()) {
    const std::int64_t n = tr_.write(fd, p.ready.data() + p.ready_off,
                                     p.ready.size() - p.ready_off);
    if (n > 0) {
      p.ready_off += static_cast<std::size_t>(n);
      *forwarded += n;
      continue;
    }
    if (errno == EAGAIN) break;  // window full; resume on writable
    alive = false;               // EPIPE: sink is gone
    break;
  }
  if (p.ready_off > 0) {
    p.ready.erase(p.ready.begin(),
                  p.ready.begin() + static_cast<std::ptrdiff_t>(p.ready_off));
    p.ready_off = 0;
  }
  return alive;
}

void SimProxy::update_interest(Session& s) {
  std::uint32_t ci = net::kEvRead;
  if (!s.down.ready.empty()) ci |= net::kEvWrite;
  loop_->mod_fd(s.client_fd, ci);
  if (s.upstream_fd >= 0) {
    std::uint32_t ui = net::kEvRead;
    if (!s.up.ready.empty()) ui |= net::kEvWrite;
    loop_->mod_fd(s.upstream_fd, ui);
  }
}

void SimProxy::on_client_ready(int client_fd, std::uint32_t mask) {
  const auto it = sessions_.find(client_fd);
  if (it == sessions_.end()) return;
  Session& s = it->second;
  if (!pump_in(client_fd, s.up)) {
    // The agent hung up (or was reset): the session dies with it.
    teardown(client_fd);
    return;
  }
  if (s.upstream_fd >= 0 && !flush(s.upstream_fd, s.up, &stats_.bytes_up)) {
    lose_upstream(s);
    arm_redial(s);
  }
  if ((mask & net::kEvWrite) != 0 &&
      !flush(client_fd, s.down, &stats_.bytes_down)) {
    teardown(client_fd);
    return;
  }
  update_interest(s);
}

void SimProxy::on_upstream_ready(int client_fd, std::uint32_t /*mask*/) {
  const auto it = sessions_.find(client_fd);
  if (it == sessions_.end()) return;
  Session& s = it->second;
  if (s.upstream_fd < 0) return;  // stale event from a replaced leg
  const bool upstream_alive = pump_in(s.upstream_fd, s.down);
  if (!flush(client_fd, s.down, &stats_.bytes_down)) {
    teardown(client_fd);
    return;
  }
  if (!upstream_alive) {
    lose_upstream(s);
    arm_redial(s);
  } else if (!flush(s.upstream_fd, s.up, &stats_.bytes_up)) {
    lose_upstream(s);
    arm_redial(s);
  }
  update_interest(s);
}

}  // namespace ft::sim
