#include "sim/link.h"

namespace ft::sim {

Link::Link(EventQueue& events, LinkId id, double capacity_bps,
           Time prop_delay, std::unique_ptr<QueueDisc> queue,
           PacketPool& pool, std::function<void(Packet*)> deliver)
    : events_(events),
      id_(id),
      capacity_bps_(capacity_bps),
      prop_delay_(prop_delay),
      queue_(std::move(queue)),
      pool_(pool),
      deliver_(std::move(deliver)) {
  FT_CHECK(capacity_bps_ > 0.0);
  queue_->set_drop_sink(this);
}

void Link::send(Packet* p) {
  queue_->enqueue(p, events_.now());
  if (!busy_) start_tx();
}

void Link::start_tx() {
  Packet* p = queue_->dequeue(events_.now());
  if (p == nullptr) {
    busy_ = false;
    return;
  }
  busy_ = true;
  events_.schedule(events_.now() + tx_time(p->wire_bytes, capacity_bps_),
                   this, kTxDone, reinterpret_cast<std::uint64_t>(p));
}

void Link::on_event(std::uint32_t tag, std::uint64_t arg) {
  auto* p = reinterpret_cast<Packet*>(arg);
  switch (tag) {
    case kTxDone:
      stats_.tx_packets++;
      stats_.tx_bytes += p->wire_bytes;
      // Propagation happens in parallel with the next serialization.
      events_.schedule(events_.now() + prop_delay_, this, kArrive, arg);
      start_tx();
      break;
    case kArrive:
      deliver_(p);
      break;
    default:
      FT_CHECK(false);
  }
}

void Link::on_drop(Packet* p) {
  ++stats_.drops;
  stats_.dropped_bytes += p->wire_bytes;
  if (drop_observer_) drop_observer_(id_, p);
  pool_.free(p);
}

}  // namespace ft::sim
