// Invariant oracles over the simulated control plane.
//
// An oracle is a predicate the control plane must satisfy no matter
// what fault schedule the chaos engine throws at it. Each check reads
// live harness state (real agents, real service, real allocator --
// nothing instrumented specially for testing) and returns a report
// naming the violated invariant, the offending entity and the virtual
// timestamp. The chaos engine sweeps these continuously during fault
// campaigns; a single report fails the schedule and triggers shrinking
// (sim/chaos.h).
//
// The catalog:
//
//   stale_rate     (continuous)  No agent flow outside fallback holds a
//                                rate stamped by an older allocator
//                                epoch than the agent has observed.
//                                This is THE cross-restart safety bug:
//                                an allocation computed by a dead
//                                allocator instance steering traffic
//                                after its successor took over.
//   lease_safety   (continuous)  No agent still believes its rate lease
//                                past expiry + grace: once heartbeats
//                                stop, the agent must degrade within
//                                one poll period, not keep allocator
//                                rates on faith.
//   conservation   (continuous)  Every byte the transport accepted is
//                                accounted: delivered, black-holed,
//                                partitioned, sieve-dropped, died at a
//                                closed peer, or still in motion. An
//                                exact identity -- any silent loss path
//                                anywhere in the stack breaks it.
//   resource_leaks (quiesce)     Transport stream slots match the live
//                                connection count exactly -- restarts
//                                and reconnect storms must not leak
//                                connection state.
//   flow_set       (quiesce)     The allocator's active-flowlet set is
//                                exactly the union of live agent
//                                flowlets, key by key -- restarts must
//                                neither lose flows (under-allocation
//                                forever) nor resurrect ended ones
//                                (phantom allocations).
//   reconvergence  (liveness)    After faults clear, the plane returns
//                                to the fault-free trajectory's rate
//                                fixpoint (each flow within one code
//                                step) within a virtual-time bound.
//
// Quiesce-only checks assume faults are cleared and the plane has been
// given time to reconverge; running them mid-fault reports transient
// states as violations by design (the chaos engine knows when to ask).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/control_plane_harness.h"

namespace ft::sim {

struct OracleReport {
  std::string oracle;     // catalog name, e.g. "stale_rate"
  std::string detail;     // offending entity + values, human-readable
  std::int64_t virtual_us = 0;  // harness virtual time at detection
};

struct OracleConfig {
  // Slack past the lease deadline before lease_safety fires: must cover
  // at least one agent poll period (expiry is only *observable* at a
  // poll boundary) plus scheduling slack.
  std::int64_t lease_grace_us = 10'000;
  // reconvergence: per flow, |rate_code - baseline_code| must stay
  // within max(abs, rel * baseline). The band is NOT solver noise --
  // it is the §6.4 notification threshold (AllocatorConfig::threshold,
  // default 1%): the allocator suppresses updates within +/-threshold
  // of the last notified rate, so agent-held codes legitimately lag
  // the true fixpoint by up to the threshold, and two convergences
  // approached from different directions (fault-free ramp vs post-fault
  // re-registration) can disagree by ~2x threshold plus rate-code
  // quantization. On top of that, a connection kill culls every owned
  // flowlet and re-registers it on reconnect, so the post-fault run is
  // a fresh NUM iteration from a mass-churned starting point: it stops
  // (per the harness stability criterion) at a point whose residual
  // sits anywhere inside the no-notify band, and at 1k+ endpoints that
  // compounds to a few percent per flow (observed max ~6% across 200
  // seed-derived schedules). 10% covers both effects with margin; real
  // misconvergence (missing flow, stuck fallback, dead allocator) shows
  // up as got==0 or tens of percent, far outside the band.
  int rate_code_tolerance = 4;
  double rate_code_rel_tolerance = 0.10;
};

class Oracles {
 public:
  explicit Oracles(OracleConfig cfg = {}) : cfg_(cfg) {}

  // --- continuous safety checks (any time) ---
  [[nodiscard]] std::optional<OracleReport> check_stale_rate(
      ControlPlaneHarness& h) const;
  [[nodiscard]] std::optional<OracleReport> check_lease_safety(
      ControlPlaneHarness& h) const;
  [[nodiscard]] std::optional<OracleReport> check_conservation(
      ControlPlaneHarness& h) const;
  // All three above; empty means the plane is safe right now.
  [[nodiscard]] std::vector<OracleReport> check_safety(
      ControlPlaneHarness& h) const;

  // --- quiesce checks (faults cleared, plane reconverged) ---
  [[nodiscard]] std::optional<OracleReport> check_resource_leaks(
      ControlPlaneHarness& h) const;
  [[nodiscard]] std::optional<OracleReport> check_flow_set(
      ControlPlaneHarness& h) const;
  [[nodiscard]] std::vector<OracleReport> check_quiesce(
      ControlPlaneHarness& h) const;

  // --- liveness ---
  // Rate codes per flow key (index = key, 0 = never saw an update),
  // collected from live agent state; the fault-free run's codes are the
  // baseline the faulted run must return to.
  [[nodiscard]] static std::vector<std::uint16_t> collect_rate_codes(
      ControlPlaneHarness& h);
  [[nodiscard]] std::optional<OracleReport> check_reconvergence(
      ControlPlaneHarness& h,
      const std::vector<std::uint16_t>& baseline) const;

 private:
  OracleConfig cfg_;
};

}  // namespace ft::sim
