#include "sim/sim_transport.h"

#include <cerrno>
#include <cstring>

#include "common/check.h"
#include "net/frame.h"
#include "obs/metrics.h"

namespace ft::sim {
namespace {

// Event tags. SimTransport and SimLoop are separate EventHandlers, so
// the tag spaces are independent; these are SimTransport's.
constexpr std::uint32_t kTagDeliver = 1;
constexpr std::uint32_t kTagNotify = 2;
constexpr std::uint32_t kTagConnect = 3;
constexpr std::uint32_t kTagFin = 4;
// SimLoop's single tag.
constexpr std::uint32_t kTagTimer = 1;

constexpr std::uint64_t pack_connect(int listener, int server_handle) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(listener))
          << 32) |
         static_cast<std::uint32_t>(server_handle);
}

std::uint32_t get_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

SimTransport::SimTransport(EventQueue& events, std::uint64_t seed)
    : events_(events), rng_(seed) {
  events_.bind_clock(&clock_);
}

SimTransport::~SimTransport() { events_.bind_clock(nullptr); }

int SimTransport::listen_tcp(int port, bool /*listen_any*/,
                             int* bound_port) {
  if (port == 0) port = next_ephemeral_port_++;
  if (tcp_binds_.contains(port)) {
    errno = EADDRINUSE;
    return -1;
  }
  const int h = next_handle_++;
  Listener l;
  l.port = port;
  listeners_.emplace(h, std::move(l));
  tcp_binds_.emplace(port, h);
  if (bound_port != nullptr) *bound_port = port;
  return h;
}

int SimTransport::listen_unix(const std::string& path) {
  // Mirrors unix_listen: rebinding an existing path steals it.
  unix_binds_.erase(path);
  const int h = next_handle_++;
  Listener l;
  l.path = path;
  listeners_.emplace(h, std::move(l));
  unix_binds_.emplace(path, h);
  return h;
}

int SimTransport::connect_tcp(const std::string& /*host*/, int port) {
  const auto it = tcp_binds_.find(port);
  if (it == tcp_binds_.end()) {
    next_dial_link_set_ = false;
    errno = ECONNREFUSED;
    return -1;
  }
  return dial(it->second);
}

int SimTransport::connect_unix(const std::string& path) {
  const auto it = unix_binds_.find(path);
  if (it == unix_binds_.end()) {
    next_dial_link_set_ = false;
    errno = ECONNREFUSED;
    return -1;
  }
  return dial(it->second);
}

int SimTransport::dial(int listener_handle) {
  const SimLinkParams link =
      next_dial_link_set_ ? next_dial_link_ : default_link_;
  next_dial_link_set_ = false;
  const int ch = next_handle_++;
  const int sh = next_handle_++;
  Stream client;
  client.peer = sh;
  client.link = link;
  Stream server;
  server.peer = ch;
  server.server_side = true;
  server.link = link;
  streams_.emplace(ch, std::move(client));
  streams_.emplace(sh, std::move(server));
  ++stats_.conns_opened;
  // The SYN reaches the listener one propagation delay from now; any
  // bytes the client writes meanwhile arrive behind it.
  events_.schedule(events_.now() + link.latency_us * kMicrosecond, this,
                   kTagConnect, pack_connect(listener_handle, sh));
  return ch;
}

int SimTransport::accept(int listen_handle) {
  const auto it = listeners_.find(listen_handle);
  FT_CHECK(it != listeners_.end());
  if (it->second.backlog.empty()) {
    errno = EAGAIN;
    return -1;
  }
  const int sh = it->second.backlog.front();
  it->second.backlog.pop_front();
  return sh;
}

std::int64_t SimTransport::read(int handle, void* buf, std::size_t len) {
  const auto it = streams_.find(handle);
  FT_CHECK(it != streams_.end());
  Stream& s = it->second;
  if (s.reset) {
    errno = ECONNRESET;
    return -1;
  }
  const std::size_t avail = s.inbox.size() - s.inbox_off;
  if (avail > 0) {
    const std::size_t n = std::min(len, avail);
    std::memcpy(buf, s.inbox.data() + s.inbox_off, n);
    s.inbox_off += n;
    if (s.inbox_off == s.inbox.size()) {
      s.inbox.clear();
      s.inbox_off = 0;
    }
    // Reading freed receive-window space: the peer may be write-blocked.
    if (streams_.contains(s.peer)) request_notify(s.peer);
    return static_cast<std::int64_t>(n);
  }
  if (s.peer_closed && s.in_flight == 0) return 0;  // clean EOF
  errno = EAGAIN;
  return -1;
}

std::int64_t SimTransport::write(int handle, const void* buf,
                                 std::size_t len) {
  const auto it = streams_.find(handle);
  FT_CHECK(it != streams_.end());
  Stream& s = it->second;
  if (s.reset || s.peer_closed) {
    errno = EPIPE;
    return -1;
  }
  const auto pit = streams_.find(s.peer);
  if (pit == streams_.end()) {
    errno = EPIPE;
    return -1;
  }
  Stream& peer = pit->second;
  const auto pending = static_cast<std::int64_t>(peer.inbox.size() -
                                                 peer.inbox_off) +
                       peer.in_flight;
  const auto space =
      static_cast<std::int64_t>(stream_buf_bytes_) - pending;
  if (space <= 0) {
    errno = EAGAIN;
    return -1;
  }
  const std::size_t n =
      std::min(len, static_cast<std::size_t>(space));
  const auto* p = static_cast<const std::uint8_t*>(buf);
  // Every byte accepted past this point is accounted to exactly one
  // fate (see the conservation identity in the header).
  stats_.bytes_accepted += static_cast<std::int64_t>(n);
  if (black_hole_) {
    stats_.bytes_blackholed += static_cast<std::int64_t>(n);
    if (lc_.blackholed != nullptr) lc_.blackholed->add(n);
    return static_cast<std::int64_t>(n);
  }
  if (!s.server_side && partition_up_) {
    stats_.bytes_partitioned_up += static_cast<std::int64_t>(n);
    if (lc_.partitioned_up != nullptr) lc_.partitioned_up->add(n);
    return static_cast<std::int64_t>(n);
  }
  if (s.server_side && partition_down_) {
    stats_.bytes_partitioned_down += static_cast<std::int64_t>(n);
    if (lc_.partitioned_down != nullptr) lc_.partitioned_down->add(n);
    return static_cast<std::int64_t>(n);
  }
  if (s.server_side && drop_down_frac_ > 0.0 && !s.raw_mode) {
    s.down_parse.insert(s.down_parse.end(), p, p + n);
    sieve_and_send(s);
  } else {
    send_segment(s, std::vector<std::uint8_t>(p, p + n));
  }
  return static_cast<std::int64_t>(n);
}

void SimTransport::send_segment(Stream& from,
                                std::vector<std::uint8_t> data) {
  if (data.empty()) return;
  const auto pit = streams_.find(from.peer);
  if (pit == streams_.end() || !pit->second.open) {
    // The peer closed (or vanished) before these bytes could ship; a
    // real kernel would discard them the same way, but here the loss
    // must be *named* or the conservation oracle fires.
    drop_closed(static_cast<std::int64_t>(data.size()));
    return;
  }
  const Time start = std::max(events_.now(), from.link_free_at);
  from.link_free_at =
      start + tx_time(static_cast<std::int64_t>(data.size()),
                      from.link.bandwidth_bps);
  const Time arrive =
      from.link_free_at + from.link.latency_us * kMicrosecond;
  pit->second.in_flight += static_cast<std::int64_t>(data.size());
  const std::uint64_t id = next_segment_++;
  segments_.emplace(id, Segment{from.peer, std::move(data)});
  events_.schedule(arrive, this, kTagDeliver, id);
}

void SimTransport::sieve_and_send(Stream& from) {
  // FaultJail's sieve on virtual time: cut complete length-prefixed
  // frames, roll the seeded die per frame, forward survivors. An
  // unframeable stream falls back to verbatim forwarding.
  std::size_t off = 0;
  std::vector<std::uint8_t> out;
  while (from.down_parse.size() - off >= net::kFrameHeaderBytes) {
    const std::size_t payload_len = get_le32(&from.down_parse[off]);
    if (payload_len == 0 || payload_len > net::kMaxFramePayload) {
      from.raw_mode = true;
      out.insert(out.end(), from.down_parse.begin() +
                                static_cast<std::ptrdiff_t>(off),
                 from.down_parse.end());
      from.down_parse.clear();
      send_segment(from, std::move(out));
      return;
    }
    const std::size_t total = net::kFrameHeaderBytes + payload_len;
    if (from.down_parse.size() - off < total) break;
    ++stats_.frames_down;
    if (rng_.uniform() < drop_down_frac_) {
      ++stats_.frames_dropped;
      stats_.bytes_dropped_sieve += static_cast<std::int64_t>(total);
      if (lc_.dropped_sieve != nullptr) lc_.dropped_sieve->add(total);
      count_dropped_records(&from.down_parse[off + net::kFrameHeaderBytes],
                            payload_len);
    } else {
      out.insert(
          out.end(),
          from.down_parse.begin() + static_cast<std::ptrdiff_t>(off),
          from.down_parse.begin() +
              static_cast<std::ptrdiff_t>(off + total));
    }
    off += total;
  }
  from.down_parse.erase(
      from.down_parse.begin(),
      from.down_parse.begin() + static_cast<std::ptrdiff_t>(off));
  send_segment(from, std::move(out));
}

void SimTransport::close(int handle) {
  const auto lit = listeners_.find(handle);
  if (lit != listeners_.end()) {
    // Pending, never-accepted connections die with the listener.
    for (const int sh : lit->second.backlog) close(sh);
    if (lit->second.port >= 0) tcp_binds_.erase(lit->second.port);
    if (!lit->second.path.empty()) {
      const auto bit = unix_binds_.find(lit->second.path);
      if (bit != unix_binds_.end() && bit->second == handle) {
        unix_binds_.erase(bit);
      }
    }
    listeners_.erase(lit);
    return;
  }
  const auto it = streams_.find(handle);
  if (it == streams_.end()) return;
  Stream& s = it->second;
  if (!s.open) return;
  s.open = false;
  s.watch = Watch{};
  const auto pit = streams_.find(s.peer);
  if (pit != streams_.end() && pit->second.open && !pit->second.reset) {
    // FIN ordering: it arrives behind every byte already written.
    const Time at = std::max(events_.now(), s.link_free_at) +
                    s.link.latency_us * kMicrosecond;
    events_.schedule(at, this, kTagFin,
                     static_cast<std::uint64_t>(
                         static_cast<std::uint32_t>(s.peer)));
  }
  maybe_erase_pair(handle);
}

void SimTransport::maybe_erase_pair(int handle) {
  const auto it = streams_.find(handle);
  if (it == streams_.end() || it->second.open) return;
  const auto pit = streams_.find(it->second.peer);
  if (pit != streams_.end() && pit->second.open) return;
  // Sieve parse residue (an incomplete trailing frame) dies with the
  // pair; until now it counted as stranded, so re-home it.
  drop_closed(static_cast<std::int64_t>(it->second.down_parse.size()));
  if (pit != streams_.end()) {
    drop_closed(static_cast<std::int64_t>(pit->second.down_parse.size()));
    streams_.erase(pit);
  }
  streams_.erase(handle);
}

void SimTransport::drop_closed(std::int64_t n) {
  if (n <= 0) return;
  stats_.bytes_dropped_closed += n;
  if (lc_.dropped_closed != nullptr) {
    lc_.dropped_closed->add(static_cast<std::uint64_t>(n));
  }
}

void SimTransport::count_dropped_records(const std::uint8_t* payload,
                                         std::size_t len) {
  std::size_t off = 0;
  while (off < len) {
    std::size_t rec = 0;
    std::uint64_t* slot = nullptr;
    switch (static_cast<net::MsgType>(payload[off])) {
      case net::MsgType::kFlowletStart:
        slot = &stats_.records_dropped_start;
        rec = net::kStartRecordBytes;
        break;
      case net::MsgType::kFlowletEnd:
        slot = &stats_.records_dropped_end;
        rec = net::kEndRecordBytes;
        break;
      case net::MsgType::kRateUpdate:
        slot = &stats_.records_dropped_rate;
        rec = net::kRateRecordBytes;
        break;
      case net::MsgType::kTraceMark:
        slot = &stats_.records_dropped_trace;
        rec = net::kTraceRecordBytes;
        break;
      case net::MsgType::kHeartbeat:
        slot = &stats_.records_dropped_heartbeat;
        rec = net::kHeartbeatRecordBytes;
        break;
      default:
        break;
    }
    if (slot == nullptr || len - off < rec) {
      // Unknown tag or truncated trailing record: the rest of the frame
      // is one opaque loss (the sieve only checks the length prefix,
      // not record alignment).
      ++stats_.records_dropped_other;
      if (lc_.records_dropped != nullptr) lc_.records_dropped->add(1);
      return;
    }
    ++*slot;
    if (lc_.records_dropped != nullptr) lc_.records_dropped->add(1);
    off += rec;
  }
}

std::int64_t SimTransport::stranded_bytes() const {
  std::int64_t n = 0;
  for (const auto& [id, seg] : segments_) {
    n += static_cast<std::int64_t>(seg.data.size());
  }
  for (const auto& [h, s] : streams_) {
    n += static_cast<std::int64_t>(s.down_parse.size());
  }
  return n;
}

void SimTransport::bind_metrics(obs::MetricsRegistry& reg,
                                std::string_view prefix) {
  const std::string p(prefix);
  lc_.blackholed = &reg.counter(p + ".bytes_blackholed");
  lc_.partitioned_up = &reg.counter(p + ".bytes_partitioned_up");
  lc_.partitioned_down = &reg.counter(p + ".bytes_partitioned_down");
  lc_.dropped_sieve = &reg.counter(p + ".bytes_dropped_sieve");
  lc_.dropped_closed = &reg.counter(p + ".bytes_dropped_closed");
  lc_.records_dropped = &reg.counter(p + ".records_dropped");
}

void SimTransport::unlink_path(const std::string& path) {
  // ::unlink removes the name binding; an already-open listener keeps
  // serving, which the bind map can't express -- by this point the
  // listener is closed (service teardown order), so just drop the name.
  unix_binds_.erase(path);
}

void SimTransport::kill_all() {
  // Ordered map: victims reset in handle order on every run.
  for (auto& [h, s] : streams_) {
    if (s.reset || !s.open) continue;
    s.reset = true;
    if (!s.server_side) ++stats_.conns_reset;
    request_notify(h);
  }
}

SimTransport::Watch* SimTransport::watch_of(int handle) {
  const auto it = streams_.find(handle);
  if (it != streams_.end()) return &it->second.watch;
  const auto lit = listeners_.find(handle);
  if (lit != listeners_.end()) return &lit->second.watch;
  return nullptr;
}

std::uint32_t SimTransport::ready_mask(int handle) const {
  const auto lit = listeners_.find(handle);
  if (lit != listeners_.end()) {
    const std::uint32_t m =
        lit->second.backlog.empty() ? 0 : net::kEvRead;
    return m & lit->second.watch.interest;
  }
  const auto it = streams_.find(handle);
  if (it == streams_.end()) return 0;
  const Stream& s = it->second;
  std::uint32_t m = 0;
  if (s.reset) {
    m = net::kEvRead | net::kEvErr | net::kEvHup;
  } else {
    if (s.inbox.size() - s.inbox_off > 0 ||
        (s.peer_closed && s.in_flight == 0)) {
      m |= net::kEvRead;
    }
    if (!s.peer_closed) {
      const auto pit = streams_.find(s.peer);
      if (pit != streams_.end()) {
        const auto pending =
            static_cast<std::int64_t>(pit->second.inbox.size() -
                                      pit->second.inbox_off) +
            pit->second.in_flight;
        if (pending < static_cast<std::int64_t>(stream_buf_bytes_)) {
          m |= net::kEvWrite;
        }
      }
    }
  }
  // Like epoll: ERR/HUP are always reported, everything else only on
  // interest.
  return m & (s.watch.interest | net::kEvErr | net::kEvHup);
}

void SimTransport::request_notify(int handle) {
  Watch* w = watch_of(handle);
  if (w == nullptr || w->loop == nullptr || w->notify_pending) return;
  if (ready_mask(handle) == 0) return;
  w->notify_pending = true;
  events_.schedule(events_.now(), this, kTagNotify,
                   static_cast<std::uint64_t>(
                       static_cast<std::uint32_t>(handle)));
}

void SimTransport::on_event(std::uint32_t tag, std::uint64_t arg) {
  switch (tag) {
    case kTagDeliver: {
      auto node = segments_.extract(arg);
      if (node.empty()) return;
      Segment& seg = node.mapped();
      const auto it = streams_.find(seg.dst);
      if (it == streams_.end()) {
        // Destination pair already torn down while the segment was in
        // flight: the bytes die, but not silently.
        drop_closed(static_cast<std::int64_t>(seg.data.size()));
        return;
      }
      Stream& dst = it->second;
      dst.in_flight -= static_cast<std::int64_t>(seg.data.size());
      if (!dst.open || dst.reset) {
        // Bytes die at a closed door.
        drop_closed(static_cast<std::int64_t>(seg.data.size()));
        return;
      }
      dst.inbox.insert(dst.inbox.end(), seg.data.begin(),
                       seg.data.end());
      stats_.bytes_delivered += static_cast<std::int64_t>(seg.data.size());
      request_notify(seg.dst);
      // The sender's write-space shrank then grew back as this segment
      // left the window; if the *reader's* peer is write-blocked it
      // wakes when the reader drains (see read()).
      return;
    }
    case kTagNotify: {
      const int handle = static_cast<int>(static_cast<std::uint32_t>(arg));
      Watch* w = watch_of(handle);
      if (w == nullptr) return;
      w->notify_pending = false;
      if (w->loop == nullptr) return;
      const std::uint32_t mask = ready_mask(handle);
      if (mask == 0) return;
      // Copy: the callback may del_fd (and so destroy) its own watch.
      const net::IoLoop::FdCallback cb = w->cb;
      cb(mask);
      return;
    }
    case kTagConnect: {
      const int listener = static_cast<int>(arg >> 32);
      const int sh = static_cast<int>(static_cast<std::uint32_t>(arg));
      const auto sit = streams_.find(sh);
      if (sit == streams_.end()) return;
      const auto lit = listeners_.find(listener);
      if (lit == listeners_.end()) {
        // Listener closed while the SYN was in flight: refuse late.
        sit->second.reset = true;
        const auto pit = streams_.find(sit->second.peer);
        if (pit != streams_.end()) {
          pit->second.reset = true;
          request_notify(sit->second.peer);
        }
        return;
      }
      lit->second.backlog.push_back(sh);
      request_notify(listener);
      return;
    }
    case kTagFin: {
      const int handle = static_cast<int>(static_cast<std::uint32_t>(arg));
      const auto it = streams_.find(handle);
      if (it == streams_.end()) return;
      it->second.peer_closed = true;
      request_notify(handle);
      return;
    }
    default:
      FT_CHECK(false);
  }
}

std::unique_ptr<net::IoLoop> SimTransport::make_loop() {
  return std::make_unique<SimLoop>(*this);
}

// --- SimLoop ---

SimLoop::~SimLoop() {
  // Watches must not outlive the loop they dispatch into.
  for (const auto& [fd, _] : fds_) {
    if (SimTransport::Watch* w = tr_.watch_of(fd)) {
      if (w->loop == this) *w = SimTransport::Watch{};
    }
  }
}

void SimLoop::add_fd(int fd, std::uint32_t events, FdCallback cb) {
  SimTransport::Watch* w = tr_.watch_of(fd);
  FT_CHECK(w != nullptr);
  FT_CHECK(w->loop == nullptr);
  w->loop = this;
  w->cb = std::move(cb);
  w->interest = events;
  fds_.emplace(fd, true);
  tr_.request_notify(fd);
}

void SimLoop::mod_fd(int fd, std::uint32_t events) {
  SimTransport::Watch* w = tr_.watch_of(fd);
  FT_CHECK(w != nullptr && w->loop == this);
  w->interest = events;
  tr_.request_notify(fd);
}

void SimLoop::del_fd(int fd) {
  if (SimTransport::Watch* w = tr_.watch_of(fd)) {
    if (w->loop == this) *w = SimTransport::Watch{};
  }
  fds_.erase(fd);
}

net::IoLoop::TimerId SimLoop::add_timer(std::int64_t delay_us,
                                        TimerCallback cb) {
  const TimerId id = next_timer_id_++;
  timers_.emplace(id, Timer{std::move(cb), 0});
  tr_.events().schedule(
      tr_.events().now() + std::max<std::int64_t>(delay_us, 0) *
                               kMicrosecond,
      this, kTagTimer, id);
  return id;
}

net::IoLoop::TimerId SimLoop::add_periodic(std::int64_t period_us,
                                           TimerCallback cb) {
  FT_CHECK(period_us > 0);
  const TimerId id = next_timer_id_++;
  timers_.emplace(id, Timer{std::move(cb), period_us});
  tr_.events().schedule(tr_.events().now() + period_us * kMicrosecond,
                        this, kTagTimer, id);
  return id;
}

void SimLoop::cancel_timer(TimerId id) { timers_.erase(id); }

void SimLoop::on_event(std::uint32_t tag, std::uint64_t arg) {
  FT_CHECK(tag == kTagTimer);
  const auto it = timers_.find(arg);
  if (it == timers_.end()) return;  // cancelled; stale event
  if (it->second.period_us > 0) {
    // Re-arm first (fixed period from the previous deadline): the
    // callback may cancel_timer, which then kills the re-armed firing
    // through the map lookup above.
    tr_.events().schedule(
        tr_.events().now() + it->second.period_us * kMicrosecond, this,
        kTagTimer, arg);
    const TimerCallback cb = it->second.cb;
    cb();
    return;
  }
  const TimerCallback cb = std::move(it->second.cb);
  timers_.erase(it);
  cb();
}

int SimLoop::run_once(std::int64_t max_wait_us) {
  EventQueue& q = tr_.events();
  const std::uint64_t before = q.processed();
  if (max_wait_us < 0) {
    // "Wait without cap": advance to the next event, if any.
    q.step();
  } else {
    q.run_until(q.now() + max_wait_us * kMicrosecond);
  }
  return static_cast<int>(q.processed() - before);
}

void SimLoop::run() {
  stop_ = false;
  while (!stop_ && tr_.events().step()) {
  }
}

}  // namespace ft::sim
