#include "sim/sfq_codel.h"

#include <cmath>

namespace ft::sim {
namespace {

// Knuth multiplicative hash spreads flow ids across buckets.
std::uint32_t hash_flow(std::uint32_t flow_id) {
  return flow_id * 2654435761u;
}

}  // namespace

SfqCodelQueue::SfqCodelQueue(SfqCodelConfig cfg)
    : cfg_(cfg), buckets_(static_cast<std::size_t>(cfg.num_buckets)) {}

void SfqCodelQueue::enqueue(Packet* p, Time now) {
  if (bytes_ + p->wire_bytes > cfg_.limit_bytes) {
    // Shared buffer full: drop from the head of the longest bucket (ns-2
    // sfqcodel behaviour), making room for the arrival unless the
    // arrival's own bucket is the only content.
    std::size_t longest = 0;
    for (std::size_t i = 1; i < buckets_.size(); ++i) {
      if (buckets_[i].bytes > buckets_[longest].bytes) longest = i;
    }
    if (buckets_[longest].q.empty()) {
      drop(p);
      return;
    }
    drop(pop_head(buckets_[longest]));
  }
  const auto b_idx = static_cast<std::int32_t>(
      hash_flow(p->flow_id) % static_cast<std::uint32_t>(cfg_.num_buckets));
  Bucket& b = buckets_[static_cast<std::size_t>(b_idx)];
  p->enq_at = now;
  b.q.push_back(p);
  b.bytes += p->wire_bytes;
  bytes_ += p->wire_bytes;
  ++stats_.enqueued;
  if (!b.active) {
    b.active = true;
    b.deficit = cfg_.quantum_bytes;  // new flows get a fresh quantum
    drr_.push_back(b_idx);
  }
}

Packet* SfqCodelQueue::pop_head(Bucket& b) {
  Packet* p = b.q.front();
  b.q.pop_front();
  b.bytes -= p->wire_bytes;
  bytes_ -= p->wire_bytes;
  return p;
}

Time SfqCodelQueue::control_law(Time t, std::uint32_t count) const {
  return t + static_cast<Time>(
                 static_cast<double>(cfg_.interval) /
                 std::sqrt(static_cast<double>(count)));
}

bool SfqCodelQueue::should_drop(Bucket& b, const Packet* p, Time now) {
  const Time sojourn = now - p->enq_at;
  if (sojourn < cfg_.target || b.bytes <= cfg_.quantum_bytes) {
    b.first_above_time = 0;
    return false;
  }
  if (b.first_above_time == 0) {
    b.first_above_time = now + cfg_.interval;
    return false;
  }
  return now >= b.first_above_time;
}

Packet* SfqCodelQueue::dequeue(Time now) {
  while (!drr_.empty()) {
    const std::int32_t b_idx = drr_.front();
    Bucket& b = buckets_[static_cast<std::size_t>(b_idx)];
    if (b.q.empty()) {
      drr_.pop_front();
      b.active = false;
      b.dropping = false;
      continue;
    }
    if (b.deficit <= 0) {
      // Rotate to the back with a refreshed quantum.
      drr_.pop_front();
      drr_.push_back(b_idx);
      b.deficit += cfg_.quantum_bytes;
      continue;
    }
    // CoDel on this bucket's head.
    Packet* p = pop_head(b);
    if (b.dropping) {
      if (!should_drop(b, p, now)) {
        b.dropping = false;
      } else if (now >= b.drop_next) {
        while (now >= b.drop_next && b.dropping) {
          drop(p);
          ++b.count;
          if (b.q.empty()) {
            b.dropping = false;
            b.active = false;
            // Bucket drained by drops: rotate it out.
            p = nullptr;
            break;
          }
          p = pop_head(b);
          if (!should_drop(b, p, now)) {
            b.dropping = false;
          } else {
            b.drop_next = control_law(b.drop_next, b.count);
          }
        }
        if (p == nullptr) {
          drr_.pop_front();
          continue;
        }
      }
    } else if (should_drop(b, p, now)) {
      drop(p);
      b.dropping = true;
      // Start (or resume) a drop cycle; reuse recent count if we were
      // dropping recently (CoDel's "count" hysteresis).
      b.count = (b.count > 2 && now - b.drop_next < 8 * cfg_.interval)
                    ? b.count - 2
                    : 1;
      b.drop_next = control_law(now, b.count);
      if (b.q.empty()) {
        b.active = false;
        drr_.pop_front();
        continue;
      }
      p = pop_head(b);
    }
    b.deficit -= p->wire_bytes;
    ++stats_.dequeued;
    return p;
  }
  return nullptr;
}

}  // namespace ft::sim
