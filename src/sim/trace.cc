#include "sim/trace.h"

#include <cmath>

#include "common/wire.h"

namespace ft::sim {

PathDelaySampler::PathDelaySampler(Network& net, Time period,
                                   std::int32_t paths_per_sample,
                                   std::uint64_t seed)
    : net_(net),
      period_(period),
      paths_per_sample_(paths_per_sample),
      rng_(seed) {}

void PathDelaySampler::start(Time until) {
  until_ = until;
  net_.events().schedule(net_.events().now() + period_, this, 0, 0);
}

void PathDelaySampler::on_event(std::uint32_t /*tag*/, std::uint64_t) {
  if (net_.events().now() > until_) return;
  sample_once();
  if (net_.events().now() + period_ <= until_) {
    net_.events().schedule(net_.events().now() + period_, this, 0, 0);
  }
}

void PathDelaySampler::sample_once() {
  const topo::ClosTopology& clos = net_.clos();
  const auto hosts = static_cast<std::uint64_t>(clos.num_hosts());
  for (std::int32_t i = 0; i < paths_per_sample_; ++i) {
    // Random 2-hop path: two hosts in the same rack.
    {
      const auto rack = static_cast<std::int32_t>(
          rng_.below(static_cast<std::uint64_t>(clos.config().racks)));
      const auto spr =
          static_cast<std::uint64_t>(clos.config().servers_per_rack);
      if (spr >= 2) {
        const auto a = static_cast<std::int32_t>(rng_.below(spr));
        auto b = static_cast<std::int32_t>(rng_.below(spr - 1));
        if (b >= a) ++b;
        const auto p = clos.host_path(clos.host(rack, a),
                                      clos.host(rack, b), rng_.next());
        Time d = 0;
        for (LinkId l : p) d += net_.link(l).queue_delay();
        two_hop_.add(to_us(d));
      }
    }
    // Random 4-hop path: hosts in different racks.
    {
      const auto a = static_cast<std::int32_t>(rng_.below(hosts));
      auto b = static_cast<std::int32_t>(rng_.below(hosts - 1));
      if (b >= a) ++b;
      if (clos.rack_of_host(clos.host(a)) ==
          clos.rack_of_host(clos.host(b))) {
        continue;  // keep strictly 4-hop samples
      }
      const auto p =
          clos.host_path(clos.host(a), clos.host(b), rng_.next());
      Time d = 0;
      for (LinkId l : p) d += net_.link(l).queue_delay();
      four_hop_.add(to_us(d));
    }
  }
}

FlowStats::FlowStats(const topo::ClosTopology& clos) : clos_(clos) {}

void FlowStats::on_flow_start(std::uint32_t flow_id, std::int64_t bytes,
                              std::int32_t src, std::int32_t dst,
                              Time now) {
  if (records_.size() <= flow_id) records_.resize(flow_id + 1);
  records_[flow_id] = Open{bytes, src, dst, now};
}

Time FlowStats::ideal_fct(std::int64_t bytes, std::int32_t src,
                          std::int32_t dst) const {
  const topo::ClosConfig& cfg = clos_.config();
  // Serialization of every segment at the bottleneck host link rate plus
  // one path round trip (SYN-less model: first byte out to last ack
  // back), matching "send out and receive all its bytes on an empty
  // network".
  const std::int64_t wire = wire_bytes_tcp_stream(bytes);
  const Time serialize = tx_time(wire, cfg.host_link_bps);
  const auto path = clos_.host_path(clos_.host(src), clos_.host(dst), 0);
  Time prop = 2 * cfg.host_delay;
  for (LinkId l : path) prop += clos_.graph().link(l).delay;
  // ACK path back (symmetric propagation; ack serialization negligible
  // but the 84-byte frame at host rate is included for exactness).
  const Time ack = prop + tx_time(wire_bytes_tcp(0), cfg.host_link_bps);
  return serialize + prop + ack;
}

void FlowStats::on_flow_complete(std::uint32_t flow_id, Time now) {
  FT_CHECK(flow_id < records_.size());
  const Open& r = records_[flow_id];
  FT_CHECK(r.bytes > 0);
  const Time fct = now - r.start;
  FT_CHECK(fct > 0);
  const double norm =
      static_cast<double>(fct) /
      static_cast<double>(ideal_fct(r.bytes, r.src, r.dst));
  buckets_[static_cast<std::size_t>(wl::size_bucket(r.bytes))].add(norm);
  all_norm_fct_.add(norm);
  // Achieved rate in Gbit/s for the fairness score.
  const double rate_gbps =
      static_cast<double>(r.bytes) * 8.0 / to_sec(fct) / 1e9;
  log2_rate_.add(std::log2(rate_gbps));
  ++completed_;
}

double FlowStats::fairness_score() const { return log2_rate_.mean(); }

double FlowStats::mean_normalized_fct() const {
  return all_norm_fct_.mean();
}

ThroughputSeries::ThroughputSeries(std::size_t num_flows, Time bin,
                                   Time horizon) {
  const auto bins = static_cast<std::size_t>((horizon + bin - 1) / bin);
  per_flow_.reserve(num_flows);
  for (std::size_t f = 0; f < num_flows; ++f) {
    per_flow_.emplace_back(to_sec(bin), bins);
  }
}

void ThroughputSeries::on_bytes(std::uint32_t flow_id, std::int64_t bytes,
                                Time now) {
  if (flow_id >= per_flow_.size()) return;
  per_flow_[flow_id].add(to_sec(now), static_cast<double>(bytes));
}

double ThroughputSeries::gbps(std::uint32_t flow_id,
                              std::size_t bin) const {
  FT_CHECK(flow_id < per_flow_.size());
  return per_flow_[flow_id].bin_rate(bin) * 8.0 / 1e9;
}

std::size_t ThroughputSeries::num_bins() const {
  return per_flow_.empty() ? 0 : per_flow_[0].num_bins();
}

}  // namespace ft::sim
