#include "sim/chaos.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "common/check.h"
#include "common/rng.h"

namespace ft::sim {
namespace {

// splitmix64, same construction the harness uses for per-agent seeds.
std::uint64_t mix(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a + 0x9e3779b97f4a7c15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

bool windowed(ChaosFaultKind k) {
  switch (k) {
    case ChaosFaultKind::kBlackHole:
    case ChaosFaultKind::kPartitionUp:
    case ChaosFaultKind::kPartitionDown:
    case ChaosFaultKind::kDropFrames:
      return true;
    case ChaosFaultKind::kKillConnections:
    case ChaosFaultKind::kRestartService:
      return false;
  }
  return false;
}

void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string keep_list(const ChaosSchedule& s) {
  std::string out;
  for (const ChaosEvent& e : s.events) {
    if (!out.empty()) out += ',';
    out += std::to_string(e.idx);
  }
  return out;
}

}  // namespace

const char* chaos_fault_name(ChaosFaultKind k) {
  switch (k) {
    case ChaosFaultKind::kKillConnections:
      return "kill_connections";
    case ChaosFaultKind::kRestartService:
      return "restart_service";
    case ChaosFaultKind::kBlackHole:
      return "black_hole";
    case ChaosFaultKind::kPartitionUp:
      return "partition_up";
    case ChaosFaultKind::kPartitionDown:
      return "partition_down";
    case ChaosFaultKind::kDropFrames:
      return "drop_frames";
  }
  return "unknown";
}

ChaosSchedule ChaosEngine::generate(std::uint64_t seed) const {
  Rng rng(mix(seed, 0xC4A05ULL));
  ChaosSchedule s;
  s.seed = seed;
  const int span = cfg_.max_events - cfg_.min_events + 1;
  const int n =
      cfg_.min_events + static_cast<int>(rng.below(
                            static_cast<std::uint64_t>(std::max(span, 1))));
  s.events.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    ChaosEvent e;
    e.kind = static_cast<ChaosFaultKind>(rng.below(6));
    e.at_us = static_cast<std::int64_t>(
        rng.below(static_cast<std::uint64_t>(cfg_.window_us)));
    if (windowed(e.kind)) {
      e.duration_us =
          cfg_.min_fault_duration_us +
          static_cast<std::int64_t>(rng.below(static_cast<std::uint64_t>(
              cfg_.max_fault_duration_us - cfg_.min_fault_duration_us + 1)));
    }
    if (e.kind == ChaosFaultKind::kDropFrames) {
      e.magnitude = rng.uniform(cfg_.min_drop_frac, cfg_.max_drop_frac);
    }
    s.events.push_back(e);
  }
  std::stable_sort(s.events.begin(), s.events.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.at_us < b.at_us;
                   });
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    s.events[i].idx = static_cast<int>(i);
  }
  return s;
}

ChaosSchedule ChaosEngine::apply_keep(const ChaosSchedule& s,
                                      const std::vector<int>& keep) {
  ChaosSchedule out;
  out.seed = s.seed;
  for (const ChaosEvent& e : s.events) {
    if (std::find(keep.begin(), keep.end(), e.idx) != keep.end()) {
      out.events.push_back(e);
    }
  }
  return out;
}

ChaosResult ChaosEngine::run_schedule(const ChaosSchedule& s) const {
  ChaosResult out;
  out.schedule = s;

  ControlPlaneHarness h(cfg_.harness);
  const ConvergeStats pre = h.run_to_convergence();
  FT_CHECK(pre.converged);  // the plane must be healthy before faults
  const std::vector<std::uint16_t> baseline = Oracles::collect_rate_codes(h);

  // Expand events into a timeline of apply/clear actions. Windowed
  // faults are level-triggered flags, so overlapping windows of the
  // same kind are resolved by nesting depth.
  struct Action {
    std::int64_t at_us;
    int seq;  // stable tiebreak: expansion order
    ChaosFaultKind kind;
    bool on;
    double magnitude;
  };
  std::vector<Action> acts;
  int seq = 0;
  std::int64_t last_us = 0;
  for (const ChaosEvent& e : s.events) {
    acts.push_back({e.at_us, seq++, e.kind, true, e.magnitude});
    if (windowed(e.kind)) {
      acts.push_back({e.at_us + e.duration_us, seq++, e.kind, false, 0.0});
      last_us = std::max(last_us, e.at_us + e.duration_us);
    } else {
      last_us = std::max(last_us, e.at_us);
    }
  }
  std::stable_sort(acts.begin(), acts.end(),
                   [](const Action& a, const Action& b) {
                     return a.at_us != b.at_us ? a.at_us < b.at_us
                                               : a.seq < b.seq;
                   });

  int depth_black = 0;
  int depth_up = 0;
  int depth_down = 0;
  int depth_drop = 0;
  double drop_frac = 0.0;
  const auto apply = [&](const Action& a) {
    switch (a.kind) {
      case ChaosFaultKind::kKillConnections:
        h.kill_connections();
        break;
      case ChaosFaultKind::kRestartService:
        h.restart_service();
        break;
      case ChaosFaultKind::kBlackHole:
        depth_black += a.on ? 1 : -1;
        h.set_black_hole(depth_black > 0);
        break;
      case ChaosFaultKind::kPartitionUp:
        depth_up += a.on ? 1 : -1;
        h.set_partition_up(depth_up > 0);
        break;
      case ChaosFaultKind::kPartitionDown:
        depth_down += a.on ? 1 : -1;
        h.set_partition_down(depth_down > 0);
        break;
      case ChaosFaultKind::kDropFrames:
        depth_drop += a.on ? 1 : -1;
        if (a.on) drop_frac = std::max(drop_frac, a.magnitude);
        if (depth_drop == 0) drop_frac = 0.0;
        h.set_drop_down_frac(depth_drop > 0 ? drop_frac : 0.0);
        break;
    }
  };

  // Sweep the safety oracles between every virtual-time advance; the
  // first report ends the schedule (the shrinker only needs a yes/no,
  // and mutation bugs keep violating forever anyway).
  const Oracles orc(cfg_.oracle);
  std::int64_t cursor = 0;  // offset from pre-fault convergence
  const auto sweep_until = [&](std::int64_t target) -> bool {
    while (cursor < target) {
      const std::int64_t step =
          std::min(cfg_.sweep_period_us, target - cursor);
      h.run_for(step);
      cursor += step;
      auto v = orc.check_safety(h);
      if (!v.empty()) {
        out.violations = std::move(v);
        return false;
      }
    }
    return true;
  };

  for (const Action& a : acts) {
    if (!sweep_until(a.at_us)) {
      out.trajectory_hash = h.trajectory_hash();
      return out;
    }
    apply(a);
  }
  if (!sweep_until(last_us + cfg_.settle_us)) {
    out.trajectory_hash = h.trajectory_hash();
    return out;
  }

  // All windows have closed by construction; clear defensively anyway
  // so reconvergence is measured fault-free.
  h.set_black_hole(false);
  h.set_partition_up(false);
  h.set_partition_down(false);
  h.set_drop_down_frac(0.0);

  const std::int64_t rc_start = h.virtual_now_us();
  const ConvergeStats rc = h.run_to_convergence();
  out.trajectory_hash = h.trajectory_hash();
  if (!rc.converged) {
    OracleReport r;
    r.oracle = "reconvergence";
    r.detail = "plane did not reconverge before the virtual horizon";
    r.virtual_us = h.virtual_now_us();
    out.violations.push_back(std::move(r));
    return out;
  }
  out.reconverge_us = h.virtual_now_us() - rc_start;
  if (out.reconverge_us > cfg_.max_reconverge_us) {
    OracleReport r;
    r.oracle = "reconvergence";
    r.detail = "reconverged in " + std::to_string(out.reconverge_us) +
               " us, bound " + std::to_string(cfg_.max_reconverge_us);
    r.virtual_us = h.virtual_now_us();
    out.violations.push_back(std::move(r));
    return out;
  }

  out.violations = orc.check_quiesce(h);
  if (auto r = orc.check_reconvergence(h, baseline)) {
    out.violations.push_back(std::move(*r));
  }
  out.ok = out.violations.empty();
  return out;
}

ShrinkResult ChaosEngine::shrink(const ChaosResult& failing) const {
  FT_CHECK(!failing.ok && !failing.violations.empty());
  const std::string& oracle = failing.violations.front().oracle;
  ShrinkResult out;
  out.minimal = failing.schedule;
  out.result = failing;
  bool improved = true;
  while (improved && out.minimal.events.size() > 1) {
    improved = false;
    for (std::size_t i = 0; i < out.minimal.events.size(); ++i) {
      ChaosSchedule cand = out.minimal;
      cand.events.erase(cand.events.begin() +
                        static_cast<std::ptrdiff_t>(i));
      ChaosResult r = run_schedule(cand);
      ++out.runs;
      if (!r.ok && !r.violations.empty() &&
          r.violations.front().oracle == oracle) {
        out.minimal = std::move(cand);
        out.result = std::move(r);
        improved = true;
        break;
      }
    }
  }
  return out;
}

std::string ChaosEngine::replay_command(const ChaosResult& r) const {
  std::string cmd = "bench_chaos --replay-schedule-seed=" +
                    std::to_string(r.schedule.seed) +
                    " --keep=" + keep_list(r.schedule) +
                    " --endpoints=" +
                    std::to_string(cfg_.harness.num_endpoints) +
                    " --plane-seed=" + std::to_string(cfg_.harness.seed);
  if (cfg_.harness.use_vip_proxy) cmd += " --vip";
  return cmd;
}

std::string ChaosEngine::repro_json(const ChaosResult& r) const {
  std::string j = "{\n";
  j += "  \"schedule_seed\": " + std::to_string(r.schedule.seed) + ",\n";
  j += "  \"plane_seed\": " + std::to_string(cfg_.harness.seed) + ",\n";
  j += "  \"endpoints\": " +
       std::to_string(cfg_.harness.num_endpoints) + ",\n";
  j += "  \"vip\": ";
  j += cfg_.harness.use_vip_proxy ? "true" : "false";
  j += ",\n";
  j += "  \"keep\": [" + keep_list(r.schedule) + "],\n";
  j += "  \"events\": [";
  for (std::size_t i = 0; i < r.schedule.events.size(); ++i) {
    const ChaosEvent& e = r.schedule.events[i];
    if (i > 0) j += ",";
    j += "\n    {\"idx\": " + std::to_string(e.idx) + ", \"kind\": \"";
    j += chaos_fault_name(e.kind);
    j += "\", \"at_us\": " + std::to_string(e.at_us) +
         ", \"duration_us\": " + std::to_string(e.duration_us) +
         ", \"magnitude\": " + std::to_string(e.magnitude) + "}";
  }
  j += "\n  ],\n";
  if (!r.violations.empty()) {
    const OracleReport& v = r.violations.front();
    j += "  \"violated_oracle\": \"";
    json_escape_into(j, v.oracle);
    j += "\",\n  \"detail\": \"";
    json_escape_into(j, v.detail);
    j += "\",\n  \"virtual_us\": " + std::to_string(v.virtual_us) + ",\n";
  }
  j += "  \"replay\": \"";
  json_escape_into(j, replay_command(r));
  j += "\"\n}\n";
  return j;
}

CampaignResult ChaosEngine::run_campaign(std::uint64_t campaign_seed,
                                         int n) const {
  CampaignResult out;
  const auto fnv = [&out](std::uint64_t v) {
    out.campaign_hash ^= v;
    out.campaign_hash *= 1099511628211ULL;
  };
  for (int i = 0; i < n; ++i) {
    const ChaosSchedule s = generate(mix(campaign_seed,
                                         static_cast<std::uint64_t>(i)));
    ChaosResult r = run_schedule(s);
    ++out.schedules_run;
    fnv(r.trajectory_hash);
    if (r.ok) {
      if (r.reconverge_us >= 0) out.reconverge_us.push_back(r.reconverge_us);
      continue;
    }
    // First failure: shrink it and stop -- one minimal repro beats a
    // pile of unshrunk ones.
    ++out.violations;
    out.first_violation = r;
    out.shrunk = shrink(r);
    break;
  }
  return out;
}

}  // namespace ft::sim
