#include "sim/oracles.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

#include "core/messages.h"

namespace ft::sim {
namespace {

std::string fmt(const char* f, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof buf, f, ap);
  va_end(ap);
  return std::string(buf);
}

OracleReport report(ControlPlaneHarness& h, const char* oracle,
                    std::string detail) {
  OracleReport r;
  r.oracle = oracle;
  r.detail = std::move(detail);
  r.virtual_us = h.virtual_now_us();
  return r;
}

}  // namespace

std::optional<OracleReport> Oracles::check_stale_rate(
    ControlPlaneHarness& h) const {
  std::vector<net::EndpointAgent::FlowView> flows;
  for (int i = 0; i < h.num_agents(); ++i) {
    net::EndpointAgent& a = h.agent(i);
    if (!a.epoch_seen()) continue;
    const std::uint16_t observed = a.observed_epoch();
    flows.clear();
    a.snapshot_flows(flows);
    for (const auto& f : flows) {
      // A flow in fallback already handed its rate back; a flow that
      // never saw an update has nothing to be stale. Everything else
      // must be stamped by the epoch the agent knows about.
      if (f.in_fallback || f.rate_code == 0) continue;
      if (core::epoch_newer(observed, f.rate_epoch)) {
        return report(
            h, "stale_rate",
            fmt("agent %d flow %u holds rate code %u from epoch %u "
                "while agent observed epoch %u",
                i, f.key, f.rate_code, f.rate_epoch, observed));
      }
    }
  }
  return std::nullopt;
}

std::optional<OracleReport> Oracles::check_lease_safety(
    ControlPlaneHarness& h) const {
  const std::int64_t now = h.virtual_now_us();
  for (int i = 0; i < h.num_agents(); ++i) {
    net::EndpointAgent& a = h.agent(i);
    if (a.conn_state() != net::ConnState::kConnected) continue;
    const std::int64_t deadline = a.lease_deadline_us();
    if (deadline == 0) continue;  // lease disarmed (or not configured)
    if (now > deadline + cfg_.lease_grace_us) {
      return report(h, "lease_safety",
                    fmt("agent %d still kConnected with lease deadline "
                        "%lld at virtual %lld (+%lld grace)",
                        i, static_cast<long long>(deadline),
                        static_cast<long long>(now),
                        static_cast<long long>(cfg_.lease_grace_us)));
    }
  }
  return std::nullopt;
}

std::optional<OracleReport> Oracles::check_conservation(
    ControlPlaneHarness& h) const {
  const SimTransportStats& st = h.transport().stats();
  const std::int64_t accounted =
      st.bytes_delivered + st.bytes_blackholed + st.bytes_partitioned_up +
      st.bytes_partitioned_down + st.bytes_dropped_sieve +
      st.bytes_dropped_closed + h.transport().stranded_bytes();
  if (st.bytes_accepted != accounted) {
    return report(
        h, "conservation",
        fmt("accepted %lld != accounted %lld (delivered %lld blackholed "
            "%lld part_up %lld part_down %lld sieve %lld closed %lld "
            "stranded %lld)",
            static_cast<long long>(st.bytes_accepted),
            static_cast<long long>(accounted),
            static_cast<long long>(st.bytes_delivered),
            static_cast<long long>(st.bytes_blackholed),
            static_cast<long long>(st.bytes_partitioned_up),
            static_cast<long long>(st.bytes_partitioned_down),
            static_cast<long long>(st.bytes_dropped_sieve),
            static_cast<long long>(st.bytes_dropped_closed),
            static_cast<long long>(h.transport().stranded_bytes())));
  }
  return std::nullopt;
}

std::vector<OracleReport> Oracles::check_safety(
    ControlPlaneHarness& h) const {
  std::vector<OracleReport> out;
  if (auto r = check_stale_rate(h)) out.push_back(std::move(*r));
  if (auto r = check_lease_safety(h)) out.push_back(std::move(*r));
  if (auto r = check_conservation(h)) out.push_back(std::move(*r));
  return out;
}

std::optional<OracleReport> Oracles::check_resource_leaks(
    ControlPlaneHarness& h) const {
  // Every live connection is one stream pair. At quiesce the live set
  // is: each agent holding a socket (kConnected or kDegraded), plus --
  // in VIP mode -- each proxy upstream leg. Anything beyond that is a
  // leaked slot (a close that never happened).
  std::size_t agent_conns = 0;
  for (int i = 0; i < h.num_agents(); ++i) {
    const net::ConnState s = h.agent(i).conn_state();
    if (s == net::ConnState::kConnected || s == net::ConnState::kDegraded) {
      ++agent_conns;
    }
  }
  std::size_t expected_pairs = agent_conns;
  if (h.proxy() != nullptr) expected_pairs += h.proxy()->num_upstreams();
  const std::size_t streams = h.transport().num_streams();
  if (streams != 2 * expected_pairs) {
    return report(h, "resource_leaks",
                  fmt("transport holds %zu stream slots, expected %zu "
                      "(2 x %zu live connections)",
                      streams, 2 * expected_pairs, expected_pairs));
  }
  // The service's connection view must agree with the client side of
  // the same count (agents directly, or proxy sessions in VIP mode).
  const std::size_t service_conns = h.service().num_connections();
  const std::size_t expected_service =
      h.proxy() != nullptr ? h.proxy()->num_upstreams() : agent_conns;
  if (service_conns != expected_service) {
    return report(h, "resource_leaks",
                  fmt("service tracks %zu connections, expected %zu",
                      service_conns, expected_service));
  }
  return std::nullopt;
}

std::optional<OracleReport> Oracles::check_flow_set(
    ControlPlaneHarness& h) const {
  // Union of live agent flowlets, by dense key.
  const std::size_t total = h.total_flows();
  std::vector<bool> agent_has(total + 1, false);
  std::size_t agent_count = 0;
  std::vector<net::EndpointAgent::FlowView> flows;
  for (int i = 0; i < h.num_agents(); ++i) {
    flows.clear();
    h.agent(i).snapshot_flows(flows);
    for (const auto& f : flows) {
      if (f.key <= total && !agent_has[f.key]) {
        agent_has[f.key] = true;
        ++agent_count;
      }
    }
  }
  if (h.allocator().num_active_flowlets() != agent_count) {
    return report(h, "flow_set",
                  fmt("allocator tracks %zu active flowlets, agents "
                      "hold %zu",
                      h.allocator().num_active_flowlets(), agent_count));
  }
  for (std::uint32_t key = 1; key <= total; ++key) {
    if (h.allocator().is_active(key) != agent_has[key]) {
      return report(h, "flow_set",
                    fmt("flow %u: allocator_active=%d agent_holds=%d",
                        key, h.allocator().is_active(key) ? 1 : 0,
                        agent_has[key] ? 1 : 0));
    }
  }
  return std::nullopt;
}

std::vector<OracleReport> Oracles::check_quiesce(
    ControlPlaneHarness& h) const {
  std::vector<OracleReport> out = check_safety(h);
  if (auto r = check_resource_leaks(h)) out.push_back(std::move(*r));
  if (auto r = check_flow_set(h)) out.push_back(std::move(*r));
  return out;
}

std::vector<std::uint16_t> Oracles::collect_rate_codes(
    ControlPlaneHarness& h) {
  std::vector<std::uint16_t> codes(h.total_flows() + 1, 0);
  std::vector<net::EndpointAgent::FlowView> flows;
  for (int i = 0; i < h.num_agents(); ++i) {
    flows.clear();
    h.agent(i).snapshot_flows(flows);
    for (const auto& f : flows) {
      if (f.key < codes.size()) codes[f.key] = f.rate_code;
    }
  }
  return codes;
}

std::optional<OracleReport> Oracles::check_reconvergence(
    ControlPlaneHarness& h,
    const std::vector<std::uint16_t>& baseline) const {
  const std::vector<std::uint16_t> codes = collect_rate_codes(h);
  const std::size_t n = std::min(codes.size(), baseline.size());
  for (std::size_t key = 1; key < n; ++key) {
    const int got = codes[key];
    const int want = baseline[key];
    if (want == 0) continue;  // flow never converged fault-free either
    const int tol = std::max(
        cfg_.rate_code_tolerance,
        static_cast<int>(cfg_.rate_code_rel_tolerance * want));
    if (got == 0 || std::abs(got - want) > tol) {
      return report(h, "reconvergence",
                    fmt("flow %zu rate code %d vs fault-free %d "
                        "(tolerance %d)",
                        key, got, want, tol));
    }
  }
  return std::nullopt;
}

}  // namespace ft::sim
