#include "sim/queue.h"

#include <functional>

namespace ft::sim {

void DropTailQueue::enqueue(Packet* p, Time now) {
  if (bytes_ + p->wire_bytes > limit_) {
    drop(p);
    return;
  }
  // DCTCP marking: instantaneous queue above K marks the *arriving*
  // packet (Alizadeh et al. §3.2).
  if (ecn_threshold_ > 0 && p->ecn_capable && bytes_ >= ecn_threshold_) {
    p->ecn_marked = true;
    ++stats_.ecn_marked;
  }
  p->enq_at = now;
  bytes_ += p->wire_bytes;
  q_.push_back(p);
  ++stats_.enqueued;
}

Packet* DropTailQueue::dequeue(Time /*now*/) {
  if (q_.empty()) return nullptr;
  Packet* p = q_.front();
  q_.pop_front();
  bytes_ -= p->wire_bytes;
  ++stats_.dequeued;
  return p;
}

}  // namespace ft::sim
