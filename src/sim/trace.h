// Measurement instruments for the paper's evaluation figures: path
// queue-delay sampling (Figure 9), drop accounting (Figure 10), flow
// completion recording (Figures 8 and 11) and throughput time series
// (Figure 4).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "sim/network.h"
#include "workload/size_dist.h"

namespace ft::sim {

// Samples the queuing delay of random 2-hop and 4-hop paths every
// sampling period (the paper samples queue lengths every 1 ms and infers
// path queuing delay).
class PathDelaySampler : public EventHandler {
 public:
  PathDelaySampler(Network& net, Time period = 1 * kMillisecond,
                   std::int32_t paths_per_sample = 32,
                   std::uint64_t seed = 1);

  // Samples every period until `until` (kTimeNever = forever).
  void start(Time until = kTimeNever);

  [[nodiscard]] const PercentileSampler& two_hop() const {
    return two_hop_;
  }
  [[nodiscard]] const PercentileSampler& four_hop() const {
    return four_hop_;
  }

  void on_event(std::uint32_t tag, std::uint64_t arg) override;

 private:
  void sample_once();

  Network& net_;
  Time period_;
  Time until_ = kTimeNever;
  std::int32_t paths_per_sample_;
  Rng rng_;
  PercentileSampler two_hop_;   // microseconds
  PercentileSampler four_hop_;  // microseconds
};

// Per-flow completion records, bucketed as in Figure 8. FCTs are
// normalized by the ideal completion time on an empty network
// (paper §6.5: "we normalize each flow's completion time by the time it
// would take to send out and receive all its bytes on an empty network").
struct FlowRecord {
  std::uint32_t flow_id = 0;
  std::int64_t bytes = 0;
  Time start = 0;
  Time completion = 0;  // 0 = not finished
};

class FlowStats {
 public:
  explicit FlowStats(const topo::ClosTopology& clos);

  void on_flow_start(std::uint32_t flow_id, std::int64_t bytes,
                     std::int32_t src, std::int32_t dst, Time now);
  void on_flow_complete(std::uint32_t flow_id, Time now);

  // Ideal FCT on an empty network for a flow (serialization of all bytes
  // at the host rate + path RTT components).
  [[nodiscard]] Time ideal_fct(std::int64_t bytes, std::int32_t src,
                               std::int32_t dst) const;

  // Normalized-FCT percentile sampler per size bucket.
  [[nodiscard]] const PercentileSampler& bucket(wl::SizeBucket b) const {
    return buckets_[static_cast<std::size_t>(b)];
  }
  // Proportional-fairness score (Figure 11): mean over completed flows of
  // log2(achieved rate in Gbit/s ... any common unit cancels when
  // comparing schemes).
  [[nodiscard]] double fairness_score() const;
  [[nodiscard]] std::size_t completed() const { return completed_; }
  [[nodiscard]] std::size_t started() const { return records_.size(); }
  [[nodiscard]] double mean_normalized_fct() const;

 private:
  struct Open {
    std::int64_t bytes;
    std::int32_t src;
    std::int32_t dst;
    Time start;
  };

  const topo::ClosTopology& clos_;
  std::vector<Open> records_;  // indexed by flow_id
  std::array<PercentileSampler, wl::kNumSizeBuckets> buckets_;
  PercentileSampler all_norm_fct_;
  StreamingStats log2_rate_;
  std::size_t completed_ = 0;
};

// Bytes-delivered time series per flow (Figure 4's throughput traces).
class ThroughputSeries {
 public:
  ThroughputSeries(std::size_t num_flows, Time bin, Time horizon);

  void on_bytes(std::uint32_t flow_id, std::int64_t bytes, Time now);

  // Gbit/s of flow `f` in bin `b`.
  [[nodiscard]] double gbps(std::uint32_t flow_id, std::size_t bin) const;
  [[nodiscard]] std::size_t num_bins() const;

 private:
  std::vector<TimeSeriesBins> per_flow_;
};

}  // namespace ft::sim
