#include "sim/network.h"

namespace ft::sim {

Network::Network(EventQueue& events, PacketPool& pool,
                 const topo::ClosTopology& clos,
                 const QueueFactory& queue_factory)
    : events_(events),
      pool_(pool),
      clos_(clos),
      host_delay_(clos.config().host_delay) {
  links_.reserve(clos.graph().num_links());
  for (const topo::Link& l : clos.graph().links()) {
    links_.push_back(std::make_unique<Link>(
        events_, l.id, l.capacity_bps, l.delay,
        queue_factory(l.capacity_bps), pool_,
        [this](Packet* p) { forward(p); }));
  }
}

void Network::set_drop_observer(
    std::function<void(LinkId, const Packet*)> obs) {
  for (auto& l : links_) l->set_drop_observer(obs);
}

void Network::send(Packet* p) {
  FT_CHECK(p->path_len > 0);
  FT_CHECK(deliver_ != nullptr);
  if (tx_observer_) tx_observer_(*p);
  events_.schedule(events_.now() + host_delay_, this, kHostEgress,
                   reinterpret_cast<std::uint64_t>(p));
}

void Network::forward(Packet* p) {
  ++p->hop;
  if (p->at_last_hop()) {
    // Destination host: ingress processing delay, then the transport.
    events_.schedule(events_.now() + host_delay_, this, kHostIngress,
                     reinterpret_cast<std::uint64_t>(p));
    return;
  }
  links_[p->path[p->hop].value()]->send(p);
}

void Network::on_event(std::uint32_t tag, std::uint64_t arg) {
  auto* p = reinterpret_cast<Packet*>(arg);
  switch (tag) {
    case kHostEgress:
      links_[p->path[0].value()]->send(p);
      break;
    case kHostIngress:
      deliver_(p);
      break;
    default:
      FT_CHECK(false);
  }
}

std::int64_t Network::total_dropped_bytes() const {
  std::int64_t total = 0;
  for (const auto& l : links_) total += l->stats().dropped_bytes;
  return total;
}

std::int64_t Network::total_tx_bytes() const {
  std::int64_t total = 0;
  for (const auto& l : links_) total += l->stats().tx_bytes;
  return total;
}

}  // namespace ft::sim
