// ChaosEngine: randomized fault campaigns over the simulated control
// plane, with invariant oracles and automatic schedule shrinking.
//
// A *schedule* is a short sequence of fault events (service restarts,
// reset storms, black holes, one-way partitions, frame-drop windows)
// derived entirely from one 64-bit seed: same seed, same schedule,
// same virtual-time trajectory, bit for bit. The engine runs each
// schedule on a fresh ControlPlaneHarness -- converge fault-free,
// snapshot the rate fixpoint as the liveness baseline, inject the
// events on their virtual-time offsets while sweeping the safety
// oracles (sim/oracles.h) between every step, then clear all faults,
// require reconvergence to the baseline fixpoint, and close with the
// quiesce oracles (leaks, flow-set equality).
//
// When a schedule violates an oracle, the shrinker delta-debugs it:
// greedily re-run with one event removed until no single removal still
// reproduces the violation -- the result is 1-minimal by construction,
// typically 1-3 events naming the exact interaction that breaks the
// invariant. The repro is serialized as JSON (seed, kept event
// indices, violated oracle, virtual timestamp) plus a ready-to-paste
// bench_chaos replay command; because schedules regenerate from their
// seed, the repro is a few dozen bytes, not a trace.
//
// Everything runs on virtual time: a campaign of hundreds of
// schedules at a thousand endpoints is minutes of wall clock and
// exactly reproducible in CI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/control_plane_harness.h"
#include "sim/oracles.h"

namespace ft::sim {

enum class ChaosFaultKind : std::uint8_t {
  kKillConnections = 0,  // reset storm (instantaneous)
  kRestartService = 1,   // cold restart, or warm restart in VIP mode
  kBlackHole = 2,        // both directions evaporate for a window
  kPartitionUp = 3,      // agent->service evaporates for a window
  kPartitionDown = 4,    // service->agent evaporates for a window
  kDropFrames = 5,       // seeded frame sieve at `magnitude` for a window
};

[[nodiscard]] const char* chaos_fault_name(ChaosFaultKind k);

struct ChaosEvent {
  ChaosFaultKind kind = ChaosFaultKind::kKillConnections;
  std::int64_t at_us = 0;        // offset from pre-fault convergence
  std::int64_t duration_us = 0;  // 0 for instantaneous kinds
  double magnitude = 0.0;        // drop fraction for kDropFrames
  int idx = 0;  // position in the generated schedule (stable across
                // shrinking, so a subset is expressible as seed+indices)
};

struct ChaosSchedule {
  std::uint64_t seed = 0;  // the seed generate() derived events from
  std::vector<ChaosEvent> events;  // sorted by at_us
};

struct ChaosConfig {
  // The plane under test. harness.seed is the *plane* seed (topology,
  // workload, jitter); schedule seeds only shape the faults, so every
  // schedule in a campaign faults the same deterministic plane.
  HarnessConfig harness;
  OracleConfig oracle;
  // Schedule shape.
  int min_events = 1;
  int max_events = 4;
  std::int64_t window_us = 150'000;  // event offsets land in [0, window)
  std::int64_t min_fault_duration_us = 5'000;
  std::int64_t max_fault_duration_us = 40'000;
  double min_drop_frac = 0.05;
  double max_drop_frac = 0.5;
  // Safety-oracle sweep cadence while faults are in play.
  std::int64_t sweep_period_us = 5'000;
  // Fault-free tail after the last event before demanding reconvergence.
  std::int64_t settle_us = 100'000;
  // Liveness bound: virtual time from all-faults-cleared to
  // reconvergence at the baseline fixpoint.
  std::int64_t max_reconverge_us = 5'000'000;
};

struct ChaosResult {
  ChaosSchedule schedule;
  bool ok = false;
  std::vector<OracleReport> violations;  // empty iff ok
  std::int64_t reconverge_us = -1;  // faults-clear -> converged; -1 if not
  std::uint64_t trajectory_hash = 0;
};

struct ShrinkResult {
  ChaosSchedule minimal;  // 1-minimal: no single removal still violates
  ChaosResult result;     // the minimal schedule's run
  int runs = 0;           // replays the shrinker spent
};

struct CampaignResult {
  int schedules_run = 0;
  int violations = 0;
  // First violating schedule, shrunk; meaningful iff violations > 0.
  ShrinkResult shrunk;
  ChaosResult first_violation;
  // Green-schedule liveness samples (virtual us to reconverge).
  std::vector<std::int64_t> reconverge_us;
  // FNV-1a over every schedule's trajectory hash: one number that must
  // match across runs of the same campaign seed (determinism gate).
  std::uint64_t campaign_hash = 1469598103934665603ULL;
};

class ChaosEngine {
 public:
  explicit ChaosEngine(ChaosConfig cfg) : cfg_(std::move(cfg)) {}

  [[nodiscard]] const ChaosConfig& config() const { return cfg_; }

  // Deterministic schedule from a seed (pure function of seed + cfg).
  [[nodiscard]] ChaosSchedule generate(std::uint64_t seed) const;
  // `keep` filters a generated schedule down to the events whose idx is
  // listed -- how a shrunken repro replays from just seed + indices.
  [[nodiscard]] static ChaosSchedule apply_keep(
      const ChaosSchedule& s, const std::vector<int>& keep);

  // Runs one schedule on a fresh harness; stops at the first safety
  // violation (the shrinker only needs "does it still fail").
  [[nodiscard]] ChaosResult run_schedule(const ChaosSchedule& s) const;

  // Schedules i in [0, n) with seeds derived from campaign_seed. Stops
  // at (and shrinks) the first violating schedule.
  [[nodiscard]] CampaignResult run_campaign(std::uint64_t campaign_seed,
                                            int n) const;

  // Greedy single-event-removal to a 1-minimal schedule reproducing
  // the same oracle violation as `failing`.
  [[nodiscard]] ShrinkResult shrink(const ChaosResult& failing) const;

  // Repro artifact: JSON with the seed, kept indices, schedule, the
  // violated oracle and the exact replay command.
  [[nodiscard]] std::string repro_json(const ChaosResult& r) const;
  [[nodiscard]] std::string replay_command(const ChaosResult& r) const;

 private:
  ChaosConfig cfg_;
};

}  // namespace ft::sim
