// pFabric switch queue (Alizadeh et al., SIGCOMM 2013).
//
// Very small buffers; packets carry the flow's *remaining* bytes as
// priority. Dequeue picks the packet of the flow with the minimum
// remaining bytes -- but within that flow, the earliest-sequence packet,
// to limit reordering (the paper's "starvation prevention" refinement).
// On overflow the queue evicts the enqueued packet with the *maximum*
// remaining bytes (or rejects the arrival if it is the worst). Buffers
// hold tens of packets, so linear scans beat fancier structures.
#pragma once

#include <vector>

#include "sim/queue.h"

namespace ft::sim {

class PfabricQueue : public QueueDisc {
 public:
  explicit PfabricQueue(std::int64_t limit_bytes)
      : limit_(limit_bytes) {}

  void enqueue(Packet* p, Time now) override;
  Packet* dequeue(Time now) override;
  [[nodiscard]] std::int64_t byte_length() const override { return bytes_; }

 private:
  std::int64_t limit_;
  std::int64_t bytes_ = 0;
  std::vector<Packet*> q_;  // unordered; scanned on demand
};

}  // namespace ft::sim
