// Discrete-event scheduler core.
//
// Events are (time, handler, tag, arg) tuples with a strictly increasing
// sequence number as tie-breaker, so simulations are fully deterministic.
// No allocation per event: the priority queue stores small PODs and
// handlers dispatch on an integer tag. Cancellation is by generation
// counting at the handler (schedule the timer with a generation arg and
// ignore stale deliveries), which is cheaper and simpler than removing
// heap entries.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/check.h"
#include "common/time.h"

namespace ft::sim {

class EventHandler {
 public:
  virtual ~EventHandler() = default;
  virtual void on_event(std::uint32_t tag, std::uint64_t arg) = 0;
};

class EventQueue {
 public:
  void schedule(Time at, EventHandler* handler, std::uint32_t tag,
                std::uint64_t arg = 0) {
    FT_CHECK(at >= now_);
    FT_CHECK(handler != nullptr);
    heap_.push(Event{at, seq_++, handler, tag, arg});
  }

  [[nodiscard]] Time now() const { return now_; }
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }
  [[nodiscard]] std::uint64_t processed() const { return processed_; }

  // Mirrors queue time onto `clock` (advanced before each dispatch and
  // at run_until horizons), so components reading a ft::Clock see
  // virtual time move as events fire. Null detaches.
  void bind_clock(VirtualClock* clock) {
    clock_ = clock;
    if (clock_ != nullptr) clock_->advance_to(now_);
  }

  // Runs events with time <= horizon; leaves now() == horizon.
  void run_until(Time horizon);

  // Runs a single event if any exists; returns false when drained.
  bool step();

 private:
  struct Event {
    Time at;
    std::uint64_t seq;
    EventHandler* handler;
    std::uint32_t tag;
    std::uint64_t arg;

    // std::priority_queue is a max-heap; invert for earliest-first, with
    // seq as the deterministic tie-break.
    friend bool operator<(const Event& a, const Event& b) {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event> heap_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  VirtualClock* clock_ = nullptr;
};

}  // namespace ft::sim
