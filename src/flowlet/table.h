// Bounded per-flow state store for flowlet detection.
//
// The table mirrors what a programmable data plane or NIC could hold: a
// fixed, power-of-two array of slots indexed by a hash of the flow key,
// direct-mapped with eviction-on-collision (the incumbent flow's state is
// recycled for the newcomer, exactly like a P4 register array that has no
// room for chaining). Memory is allocated once at construction and never
// grows, so detection state stays bounded under arbitrary flow churn; the
// cost is occasional evictions, which the detector surfaces as forced
// flowlet-ends and the stats make measurable.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/time.h"

namespace ft::flowlet {

// One flow's detection state. `gap` is the flow's current boundary
// threshold; the EWMAs feed the dynamic policy and persist across
// flowlets of the same flow, so a flow's learned spacing survives idle
// periods until the slot is evicted.
struct FlowSlot {
  std::uint32_t key = 0;
  std::uint16_t src_host = 0;
  std::uint16_t dst_host = 0;
  bool occupied = false;
  bool in_flowlet = false;
  Time last_seen = 0;
  Time gap = 0;
  Time ewma_ipt = 0;  // intra-flowlet packet inter-arrival (0 = no sample)
  Time ewma_rtt = 0;  // measured RTT (0 = no sample)
  std::uint32_t flowlet_packets = 0;  // packets in the current flowlet
  std::uint64_t flowlets = 0;         // flowlets this slot has seen
  // Opaque per-flow tag for the detector's owner (the endpoint agent
  // stores the flow's weight here); persists across flowlets of the
  // same flow, dies with the slot on eviction -- bounded like all
  // detection state. 0 = unset.
  std::uint16_t user_tag = 0;
};

struct TableStats {
  std::uint64_t hits = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
};

class FlowletTable {
 public:
  // Capacity is rounded up to a power of two (minimum 2).
  explicit FlowletTable(std::size_t capacity);

  // Returns the slot for `key`, claiming it if free. If the slot is held
  // by a different flow, that flow is evicted: its state is copied to
  // `evicted` and `was_evicted` is set so the caller can emit a forced
  // flowlet-end before the slot is reused. The returned slot is always
  // initialized for `key` (fresh slots zeroed except key/occupied).
  [[nodiscard]] FlowSlot& claim(std::uint32_t key, bool& was_evicted,
                                FlowSlot& evicted);

  // The slot currently holding `key`, or nullptr.
  [[nodiscard]] FlowSlot* find(std::uint32_t key);
  [[nodiscard]] const FlowSlot* find(std::uint32_t key) const;

  // Frees a slot (manual recycling; the next claim re-inserts).
  void release(FlowSlot& slot);

  [[nodiscard]] std::size_t capacity() const { return slots_.size(); }
  [[nodiscard]] std::size_t occupied() const { return occupied_; }
  [[nodiscard]] const TableStats& stats() const { return stats_; }

  // Full slot array (occupied or not), for idle-expiry scans.
  [[nodiscard]] std::span<FlowSlot> slots() { return slots_; }
  [[nodiscard]] std::span<const FlowSlot> slots() const { return slots_; }

 private:
  [[nodiscard]] std::size_t index_of(std::uint32_t key) const;

  std::vector<FlowSlot> slots_;
  std::size_t mask_;
  std::size_t occupied_ = 0;
  TableStats stats_;
};

}  // namespace ft::flowlet
