#include "flowlet/accuracy.h"

namespace ft::flowlet {

TraceScore score_trace(FlowletDetector& det,
                       std::span<const wl::PacketEvent> trace,
                       Time advance_period) {
  BoundaryScorer scorer;
  bool started_here = false;
  det.set_callbacks(
      [&started_here](const PacketRecord&) { started_here = true; },
      nullptr);
  Time next_advance =
      trace.empty() ? 0 : trace.front().at + advance_period;
  for (const wl::PacketEvent& ev : trace) {
    if (advance_period > 0 && ev.at >= next_advance) {
      det.advance(ev.at);
      next_advance = ev.at + advance_period;
    }
    started_here = false;
    PacketRecord rec;
    rec.flow_key = ev.flow_id;
    rec.src_host = static_cast<std::uint16_t>(ev.src_host);
    rec.dst_host = static_cast<std::uint16_t>(ev.dst_host);
    rec.bytes = static_cast<std::uint32_t>(ev.bytes);
    rec.at = ev.at;
    det.on_packet(rec);
    scorer.record(ev.burst_start, started_here);
  }
  if (!trace.empty()) det.flush(trace.back().at);
  det.set_callbacks(nullptr, nullptr);  // they reference locals

  TraceScore score;
  score.precision = scorer.precision();
  score.recall = scorer.recall();
  score.truth_boundaries =
      scorer.true_positives() + scorer.false_negatives();
  score.detected_boundaries =
      scorer.true_positives() + scorer.false_positives();
  score.packets = scorer.packets();
  score.evictions = det.table().stats().evictions;
  return score;
}

}  // namespace ft::flowlet
