#include "flowlet/table.h"

#include "common/check.h"

namespace ft::flowlet {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 2;
  while (p < n) p <<= 1;
  return p;
}

// murmur3 finalizer: flow keys are often sequential, so the raw key
// would pile consecutive flows into consecutive slots and make eviction
// behaviour depend on allocation order instead of being hash-uniform.
std::uint32_t mix(std::uint32_t k) {
  k ^= k >> 16;
  k *= 0x85ebca6bU;
  k ^= k >> 13;
  k *= 0xc2b2ae35U;
  k ^= k >> 16;
  return k;
}

}  // namespace

FlowletTable::FlowletTable(std::size_t capacity)
    : slots_(round_up_pow2(capacity)), mask_(slots_.size() - 1) {
  FT_CHECK(capacity >= 1);
}

std::size_t FlowletTable::index_of(std::uint32_t key) const {
  return static_cast<std::size_t>(mix(key)) & mask_;
}

FlowSlot& FlowletTable::claim(std::uint32_t key, bool& was_evicted,
                              FlowSlot& evicted) {
  FlowSlot& s = slots_[index_of(key)];
  was_evicted = false;
  if (s.occupied && s.key == key) {
    ++stats_.hits;
    return s;
  }
  if (s.occupied) {
    was_evicted = true;
    evicted = s;
    ++stats_.evictions;
  } else {
    ++occupied_;
  }
  s = FlowSlot{};
  s.key = key;
  s.occupied = true;
  ++stats_.inserts;
  return s;
}

FlowSlot* FlowletTable::find(std::uint32_t key) {
  FlowSlot& s = slots_[index_of(key)];
  return (s.occupied && s.key == key) ? &s : nullptr;
}

const FlowSlot* FlowletTable::find(std::uint32_t key) const {
  const FlowSlot& s = slots_[index_of(key)];
  return (s.occupied && s.key == key) ? &s : nullptr;
}

void FlowletTable::release(FlowSlot& slot) {
  if (!slot.occupied) return;
  slot = FlowSlot{};
  --occupied_;
}

}  // namespace ft::flowlet
