// The observation boundary of the flowlet detection engine.
//
// A PacketRecord is the minimal view of one transmitted packet that a
// detector needs: flow identity, endpoints, size, a timestamp on the
// simulation/monotonic clock (common/time.h picoseconds) and an optional
// RTT measurement. Anything that transmits packets -- the simulator's
// host NIC tap, the endpoint agent's send path, a trace replayer -- can
// produce records; anything implementing PacketObserver can consume them.
#pragma once

#include <cstdint>

#include "common/time.h"

namespace ft::flowlet {

struct PacketRecord {
  std::uint32_t flow_key = 0;
  std::uint16_t src_host = 0;
  std::uint16_t dst_host = 0;
  std::uint32_t bytes = 0;
  Time at = 0;
  // Most recent RTT measurement for this flow, if the producer has one
  // (0 = unknown). Dynamic detectors fold it into their gap threshold.
  Time rtt_hint = 0;
};

class PacketObserver {
 public:
  virtual ~PacketObserver() = default;
  virtual void on_packet(const PacketRecord& p) = 0;
};

}  // namespace ft::flowlet
