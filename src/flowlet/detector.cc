#include "flowlet/detector.h"

#include <algorithm>

namespace ft::flowlet {

GapDetectorBase::GapDetectorBase(std::size_t table_capacity,
                                 Time min_sweep_interval)
    : table_(table_capacity), min_sweep_interval_(min_sweep_interval) {}

void GapDetectorBase::emit_start(const PacketRecord& p) {
  ++stats_.starts;
  if (on_start_) on_start_(p);
}

void GapDetectorBase::emit_end(std::uint32_t key, Time at) {
  ++stats_.ends;
  if (on_end_) on_end_(key, at);
}

void GapDetectorBase::begin_flowlet(FlowSlot& s, const PacketRecord& p) {
  s.in_flowlet = true;
  ++active_flowlets_;
  s.flowlet_packets = 1;
  ++s.flowlets;
  emit_start(p);
}

void GapDetectorBase::on_packet(const PacketRecord& p) {
  ++stats_.packets;
  bool was_evicted = false;
  FlowSlot evicted;
  FlowSlot& s = table_.claim(p.flow_key, was_evicted, evicted);
  if (was_evicted && evicted.in_flowlet) {
    --active_flowlets_;
    ++stats_.evicted_ends;
    emit_end(evicted.key, evicted.last_seen);
  }
  if (s.flowlets == 0) s.gap = initial_gap();  // fresh slot

  if (!s.in_flowlet) {
    begin_flowlet(s, p);
    update_gap(s, 0, p);
  } else {
    const Time ipt = std::max<Time>(0, p.at - s.last_seen);
    if (ipt > s.gap) {
      ++stats_.gap_ends;
      emit_end(s.key, s.last_seen);
      s.in_flowlet = false;
      --active_flowlets_;
      begin_flowlet(s, p);
      update_gap(s, 0, p);
    } else {
      ++s.flowlet_packets;
      update_gap(s, ipt, p);
    }
  }
  s.src_host = p.src_host;
  s.dst_host = p.dst_host;
  s.last_seen = std::max(s.last_seen, p.at);
}

void GapDetectorBase::advance(Time now) {
  // The slot scan is O(capacity): skip it entirely when nothing is
  // active, and rate-limit it to gap-scale resolution otherwise, so a
  // tight poll loop pays near-zero for idle detection.
  if (active_flowlets_ == 0 || now < next_sweep_) return;
  next_sweep_ = now + min_sweep_interval_;
  expired_scratch_.clear();
  for (const FlowSlot& s : table_.slots()) {
    if (s.occupied && s.in_flowlet && now - s.last_seen > s.gap) {
      expired_scratch_.push_back(s.key);
    }
  }
  for (const std::uint32_t key : expired_scratch_) {
    FlowSlot* s = table_.find(key);
    if (s == nullptr || !s->in_flowlet) continue;  // callback re-entered
    s->in_flowlet = false;
    --active_flowlets_;
    ++stats_.idle_ends;
    emit_end(key, s->last_seen);
  }
}

void GapDetectorBase::flush(Time /*now*/) {
  expired_scratch_.clear();
  for (const FlowSlot& s : table_.slots()) {
    if (s.occupied && s.in_flowlet) expired_scratch_.push_back(s.key);
  }
  for (const std::uint32_t key : expired_scratch_) {
    FlowSlot* s = table_.find(key);
    if (s == nullptr || !s->in_flowlet) continue;
    s->in_flowlet = false;
    --active_flowlets_;
    emit_end(key, s->last_seen);
  }
}

bool GapDetectorBase::end_flow(std::uint32_t key) {
  FlowSlot* s = table_.find(key);
  if (s == nullptr || !s->in_flowlet) return false;
  s->in_flowlet = false;
  --active_flowlets_;
  return true;
}

StaticGapDetector::StaticGapDetector(StaticGapConfig cfg)
    // Sweep at gap-scale resolution: the configured interval is a
    // ceiling, clamped so idle-end latency stays within ~1.25x the gap
    // even for sub-millisecond thresholds.
    : GapDetectorBase(cfg.table_capacity,
                      std::min(cfg.min_sweep_interval,
                               std::max<Time>(1, cfg.gap / 4))),
      cfg_(cfg) {}

void StaticGapDetector::update_gap(FlowSlot& s, Time /*intra_ipt*/,
                                   const PacketRecord& /*p*/) {
  s.gap = cfg_.gap;
}

DynamicGapDetector::DynamicGapDetector(DynamicGapConfig cfg)
    // min_gap bounds the tightest per-flow gap, so sweeping at a
    // quarter of it keeps idle-end latency proportional for every flow.
    : GapDetectorBase(cfg.table_capacity,
                      std::min(cfg.min_sweep_interval,
                               std::max<Time>(1, cfg.min_gap / 4))),
      cfg_(cfg) {}

void DynamicGapDetector::update_gap(FlowSlot& s, Time intra_ipt,
                                    const PacketRecord& p) {
  if (intra_ipt > 0) {
    if (s.ewma_ipt == 0) {
      s.ewma_ipt = intra_ipt;
    } else {
      s.ewma_ipt += (intra_ipt - s.ewma_ipt) >> cfg_.ewma_shift;
    }
  }
  if (p.rtt_hint > 0) {
    if (s.ewma_rtt == 0) {
      s.ewma_rtt = p.rtt_hint;
    } else {
      s.ewma_rtt += (p.rtt_hint - s.ewma_rtt) >> cfg_.ewma_shift;
    }
  }
  Time g = 0;
  if (s.ewma_ipt > 0) {
    g = static_cast<Time>(cfg_.ipt_mult) * s.ewma_ipt;
  }
  if (s.ewma_rtt > 0) {
    g = std::max(g, static_cast<Time>(cfg_.rtt_mult *
                                      static_cast<double>(s.ewma_rtt)));
  }
  s.gap = g == 0 ? cfg_.initial_gap
                 : std::clamp(g, cfg_.min_gap, cfg_.max_gap);
}

}  // namespace ft::flowlet
