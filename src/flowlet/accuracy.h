// Detection accuracy against ground truth.
//
// Boundary detection is a per-packet binary decision: "does this packet
// begin a new flowlet?". The workload's packet traces carry the true
// answer (PacketEvent::burst_start), so precision/recall reduce to
// counting per-packet agreement -- no time-window matching heuristics.
#pragma once

#include <cstdint>
#include <span>

#include "flowlet/detector.h"
#include "workload/traffic_gen.h"

namespace ft::flowlet {

class BoundaryScorer {
 public:
  void record(bool truth_start, bool predicted_start) {
    if (truth_start && predicted_start) ++tp_;
    if (!truth_start && predicted_start) ++fp_;
    if (truth_start && !predicted_start) ++fn_;
    if (!truth_start && !predicted_start) ++tn_;
  }

  [[nodiscard]] double precision() const {
    return tp_ + fp_ == 0 ? 1.0
                          : static_cast<double>(tp_) /
                                static_cast<double>(tp_ + fp_);
  }
  [[nodiscard]] double recall() const {
    return tp_ + fn_ == 0 ? 1.0
                          : static_cast<double>(tp_) /
                                static_cast<double>(tp_ + fn_);
  }
  [[nodiscard]] std::uint64_t true_positives() const { return tp_; }
  [[nodiscard]] std::uint64_t false_positives() const { return fp_; }
  [[nodiscard]] std::uint64_t false_negatives() const { return fn_; }
  [[nodiscard]] std::uint64_t packets() const {
    return tp_ + fp_ + fn_ + tn_;
  }

 private:
  std::uint64_t tp_ = 0;
  std::uint64_t fp_ = 0;
  std::uint64_t fn_ = 0;
  std::uint64_t tn_ = 0;
};

struct TraceScore {
  double precision = 0.0;
  double recall = 0.0;
  std::uint64_t truth_boundaries = 0;
  std::uint64_t detected_boundaries = 0;
  std::uint64_t packets = 0;
  std::uint64_t evictions = 0;
};

// Runs `det` over a time-sorted packet trace and scores its boundary
// decisions. Installs its own callbacks on the detector (any previously
// set callbacks are replaced) and calls advance() every
// `advance_period` of trace time, mirroring a periodic poll loop.
[[nodiscard]] TraceScore score_trace(FlowletDetector& det,
                                     std::span<const wl::PacketEvent> trace,
                                     Time advance_period = kMillisecond);

}  // namespace ft::flowlet
