// Flowlet detection from raw packet observations.
//
// A FlowletDetector consumes PacketRecords and decides where flowlets
// begin and end, reporting both through callbacks so the same policy can
// drive a simulator tap, an offline trace scorer, or the live endpoint
// agent's control-plane notifications. Two policies are provided:
//
//  * StaticGapDetector -- the paper's primitive: a flowlet ends once the
//    flow has been idle longer than one fixed gap threshold.
//  * DynamicGapDetector -- FlowDyn-style (arXiv:1910.03324): the gap is
//    per-flow and adapts online from EWMAs of the intra-flowlet packet
//    inter-arrival time and, when available, measured RTT. A paced
//    10 Gbit/s stream and a bursty RPC flow get very different
//    thresholds without any per-trace tuning.
//
// Both are backed by the bounded FlowletTable; a hash collision evicts
// the incumbent flow, which is surfaced as a forced flowlet-end
// (evicted_ends in the stats), mirroring the behaviour of detection
// state held in a fixed-size data-plane register array.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.h"
#include "flowlet/packet.h"
#include "flowlet/table.h"

namespace ft::flowlet {

struct DetectorStats {
  std::uint64_t packets = 0;
  std::uint64_t starts = 0;        // flowlet starts emitted
  std::uint64_t ends = 0;          // flowlet ends emitted (all causes)
  std::uint64_t gap_ends = 0;      // ends from an observed over-gap packet
  std::uint64_t idle_ends = 0;     // ends from an advance() idle sweep
  std::uint64_t evicted_ends = 0;  // ends forced by table eviction
};

class FlowletDetector : public PacketObserver {
 public:
  // First packet of a newly detected flowlet (carries src/dst/time).
  using StartCallback = std::function<void(const PacketRecord&)>;
  // (flow key, time the flowlet is considered ended -- its last activity).
  using EndCallback = std::function<void(std::uint32_t, Time)>;

  void set_callbacks(StartCallback on_start, EndCallback on_end) {
    on_start_ = std::move(on_start);
    on_end_ = std::move(on_end);
  }

  // Ends every flowlet whose flow has been idle past its gap at `now`.
  virtual void advance(Time now) = 0;
  // Ends all active flowlets (trace end / agent disconnect).
  virtual void flush(Time now) = 0;
  // Externally-initiated end (e.g. the application deregistered the
  // flow): clears detection state without an end callback. Returns false
  // if the flow was not in an active flowlet.
  virtual bool end_flow(std::uint32_t key) = 0;

  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual const DetectorStats& stats() const = 0;
  [[nodiscard]] virtual const FlowletTable& table() const = 0;
  // Mutable slot access for the detector's owner (e.g. to stash a
  // user_tag); nullptr when the flow holds no slot.
  [[nodiscard]] virtual FlowSlot* find_flow(std::uint32_t key) = 0;

 protected:
  StartCallback on_start_;
  EndCallback on_end_;
};

// Shared gap-threshold machinery: per-packet boundary test against the
// slot's current gap, idle sweeps, eviction handling. Subclasses define
// how the gap is initialized and how it adapts.
class GapDetectorBase : public FlowletDetector {
 public:
  void on_packet(const PacketRecord& p) override;
  void advance(Time now) override;
  void flush(Time now) override;
  bool end_flow(std::uint32_t key) override;

  [[nodiscard]] const DetectorStats& stats() const override {
    return stats_;
  }
  [[nodiscard]] const FlowletTable& table() const override {
    return table_;
  }
  [[nodiscard]] FlowSlot* find_flow(std::uint32_t key) override {
    return table_.find(key);
  }

  // Active (in-flowlet) flow count, e.g. for sizing decisions.
  [[nodiscard]] std::size_t active_flowlets() const {
    return active_flowlets_;
  }

 protected:
  // `min_sweep_interval` rate-limits the advance() slot scan: called
  // from a tight poll loop, the O(capacity) sweep runs at most once
  // per interval (idle detection only needs gap-scale resolution).
  GapDetectorBase(std::size_t table_capacity, Time min_sweep_interval);

  // The gap assigned to a slot that has no samples yet.
  [[nodiscard]] virtual Time initial_gap() const = 0;
  // Called for every packet after the boundary decision; `intra_ipt` is
  // the intra-flowlet inter-arrival sample (0 on flowlet starts).
  virtual void update_gap(FlowSlot& s, Time intra_ipt,
                          const PacketRecord& p) = 0;

  FlowletTable table_;
  DetectorStats stats_;

 private:
  void emit_start(const PacketRecord& p);
  void emit_end(std::uint32_t key, Time at);
  void begin_flowlet(FlowSlot& s, const PacketRecord& p);

  // Reused across advance() sweeps so idle expiry never allocates on the
  // poll path (keys are collected first: end callbacks may re-enter).
  std::vector<std::uint32_t> expired_scratch_;
  std::size_t active_flowlets_ = 0;
  Time min_sweep_interval_;
  Time next_sweep_ = 0;
};

struct StaticGapConfig {
  Time gap = 500 * kMicrosecond;  // the paper-style fixed threshold
  std::size_t table_capacity = 1 << 14;
  Time min_sweep_interval = kMillisecond;
};

class StaticGapDetector : public GapDetectorBase {
 public:
  explicit StaticGapDetector(StaticGapConfig cfg = {});

  [[nodiscard]] const char* name() const override { return "static-gap"; }

 protected:
  [[nodiscard]] Time initial_gap() const override { return cfg_.gap; }
  void update_gap(FlowSlot& s, Time intra_ipt,
                  const PacketRecord& p) override;

 private:
  StaticGapConfig cfg_;
};

struct DynamicGapConfig {
  // gap = clamp(max(ipt_mult * EWMA(ipt), rtt_mult * EWMA(rtt)),
  //             min_gap, max_gap); before any intra-flowlet sample the
  // flow uses initial_gap.
  Time min_gap = 10 * kMicrosecond;
  Time max_gap = 5 * kMillisecond;
  Time initial_gap = 60 * kMicrosecond;
  std::uint32_t ipt_mult = 8;
  double rtt_mult = 1.5;
  std::uint32_t ewma_shift = 3;  // EWMA weight 1/8 on new samples
  std::size_t table_capacity = 1 << 14;
  Time min_sweep_interval = kMillisecond;
};

class DynamicGapDetector : public GapDetectorBase {
 public:
  explicit DynamicGapDetector(DynamicGapConfig cfg = {});

  [[nodiscard]] const char* name() const override { return "dynamic-gap"; }
  [[nodiscard]] const DynamicGapConfig& config() const { return cfg_; }

 protected:
  [[nodiscard]] Time initial_gap() const override {
    return cfg_.initial_gap;
  }
  void update_gap(FlowSlot& s, Time intra_ipt,
                  const PacketRecord& p) override;

 private:
  DynamicGapConfig cfg_;
};

}  // namespace ft::flowlet
