#include "net/transport.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "net/epoll_loop.h"
#include "net/socket_util.h"

namespace ft::net {

// The kEv* masks promise epoll's numeric values so the OS path never
// translates.
static_assert(kEvRead == EPOLLIN);
static_assert(kEvWrite == EPOLLOUT);
static_assert(kEvErr == EPOLLERR);
static_assert(kEvHup == EPOLLHUP);

namespace {

// Real sockets + EpollLoop: the exact syscall sequences the pre-seam
// client/server inlined, centralized behind the Transport interface.
class OsTransport final : public Transport {
 public:
  Clock& clock() override { return system_clock(); }

  int connect_tcp(const std::string& host, int port) override {
    const int fd = tcp_dial(host, port);
    if (fd >= 0) set_nonblocking(fd);
    return fd;
  }

  int connect_unix(const std::string& path) override {
    const int fd = unix_dial(path);
    if (fd >= 0) set_nonblocking(fd);
    return fd;
  }

  int listen_tcp(int port, bool listen_any, int* bound_port) override {
    return tcp_listen(port, listen_any, bound_port);
  }

  int listen_unix(const std::string& path) override {
    return net::unix_listen(path);
  }

  int accept(int listen_handle) override {
    return accept_nonblocking(listen_handle);
  }

  std::int64_t read(int handle, void* buf, std::size_t len) override {
    return ::recv(handle, buf, len, 0);
  }

  std::int64_t write(int handle, const void* buf,
                     std::size_t len) override {
    return ::send(handle, buf, len, MSG_NOSIGNAL);
  }

  void close(int handle) override { ::close(handle); }

  void set_nodelay(int handle) override { set_tcp_nodelay(handle); }

  void set_sndbuf(int handle, int bytes) override {
    ::setsockopt(handle, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof bytes);
  }

  void unlink_path(const std::string& path) override {
    ::unlink(path.c_str());
  }

  std::unique_ptr<IoLoop> make_loop() override {
    return std::make_unique<EpollLoop>();
  }

  bool supports_threads() const override { return true; }
};

}  // namespace

Transport& os_transport() {
  static OsTransport transport;
  return transport;
}

}  // namespace ft::net
