#include "net/frame.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "common/wire.h"

namespace ft::net {
namespace {

void put_le32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

template <std::size_t N>
void append_record(std::vector<std::uint8_t>& out, MsgType type,
                   const std::array<std::uint8_t, N>& enc) {
  out.push_back(static_cast<std::uint8_t>(type));
  out.insert(out.end(), enc.begin(), enc.end());
}

}  // namespace

void FrameWriter::add(const core::FlowletStartMsg& m) {
  append_record(payload_, MsgType::kFlowletStart, core::encode(m));
  ++open_records_;
}

void FrameWriter::add(const core::FlowletEndMsg& m) {
  append_record(payload_, MsgType::kFlowletEnd, core::encode(m));
  ++open_records_;
  // An end for a flow obsoletes any rate update still queued for it; the
  // offset map must also not resurrect a stale slot after this record.
  rate_record_at_.erase(m.flow_key);
}

void FrameWriter::add(const core::RateUpdateMsg& m) {
  const auto enc = core::encode(m);
  if (const std::size_t* at = rate_record_at_.find(m.flow_key)) {
    std::memcpy(&payload_[*at + 1], enc.data(), enc.size());
    ++stats_.coalesced_updates;
    return;
  }
  rate_record_at_.emplace(m.flow_key, payload_.size());
  append_record(payload_, MsgType::kRateUpdate, enc);
  ++open_records_;
}

void FrameWriter::add(const core::TraceMarkMsg& m) {
  append_record(payload_, MsgType::kTraceMark, core::encode(m));
  ++open_records_;
}

void FrameWriter::add(const core::HeartbeatMsg& m) {
  append_record(payload_, MsgType::kHeartbeat, core::encode(m));
  ++open_records_;
}

void FrameWriter::clear() {
  payload_.clear();
  rate_record_at_.clear();
  open_records_ = 0;
}

std::size_t FrameWriter::flush(std::vector<std::uint8_t>& out) {
  if (payload_.empty()) return 0;
  FT_CHECK(payload_.size() <= kMaxFramePayload);
  const std::size_t total = kFrameHeaderBytes + payload_.size();
  std::uint8_t header[kFrameHeaderBytes];
  put_le32(header, static_cast<std::uint32_t>(payload_.size()));
  out.insert(out.end(), header, header + kFrameHeaderBytes);
  out.insert(out.end(), payload_.begin(), payload_.end());

  ++stats_.frames;
  stats_.records += open_records_;
  stats_.payload_bytes += static_cast<std::int64_t>(payload_.size());
  stats_.wire_bytes +=
      wire_bytes_tcp_stream(static_cast<std::int64_t>(total));

  payload_.clear();
  rate_record_at_.clear();
  open_records_ = 0;
  return total;
}

bool FrameParser::feed(std::span<const std::uint8_t> bytes,
                       MessageSink& sink) {
  if (corrupt_) return false;
  stats_.bytes_in += static_cast<std::int64_t>(bytes.size());
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());

  std::size_t off = 0;
  while (buf_.size() - off >= kFrameHeaderBytes) {
    const std::size_t payload_len = get_le32(&buf_[off]);
    if (payload_len == 0 || payload_len > max_payload_) {
      corrupt_ = true;
      return false;
    }
    if (buf_.size() - off < kFrameHeaderBytes + payload_len) break;
    if (!parse_payload({&buf_[off + kFrameHeaderBytes], payload_len},
                       sink)) {
      corrupt_ = true;
      return false;
    }
    ++stats_.frames;
    off += kFrameHeaderBytes + payload_len;
  }
  buf_.erase(buf_.begin(),
             buf_.begin() + static_cast<std::ptrdiff_t>(off));
  return true;
}

bool FrameParser::parse_payload(std::span<const std::uint8_t> payload,
                                MessageSink& sink) {
  std::size_t off = 0;
  while (off < payload.size()) {
    const auto type = static_cast<MsgType>(payload[off]);
    const auto rest = payload.subspan(off + 1);
    switch (type) {
      case MsgType::kFlowletStart: {
        const auto m = core::try_decode_flowlet_start(rest);
        if (!m) return false;
        sink.on_flowlet_start(*m);
        off += kStartRecordBytes;
        break;
      }
      case MsgType::kFlowletEnd: {
        const auto m = core::try_decode_flowlet_end(rest);
        if (!m) return false;
        sink.on_flowlet_end(*m);
        off += kEndRecordBytes;
        break;
      }
      case MsgType::kRateUpdate: {
        const auto m = core::try_decode_rate_update(rest);
        if (!m) return false;
        sink.on_rate_update(*m);
        off += kRateRecordBytes;
        break;
      }
      case MsgType::kTraceMark: {
        const auto m = core::try_decode_trace_mark(rest);
        if (!m) return false;
        sink.on_trace_mark(*m);
        off += kTraceRecordBytes;
        break;
      }
      case MsgType::kHeartbeat: {
        const auto m = core::try_decode_heartbeat(rest);
        if (!m) return false;
        sink.on_heartbeat(*m);
        off += kHeartbeatRecordBytes;
        break;
      }
      default:
        return false;
    }
    ++stats_.records;
  }
  return off == payload.size();
}

}  // namespace ft::net
