// The transport/clock seam: everything the control plane needs from the
// OS, as an interface implemented twice.
//
//   * OsTransport (net/transport.cc) is the production path: handles are
//     real fds, connect/accept/read/write/close are the exact syscall
//     sequences the pre-seam code inlined (blocking loopback dials made
//     nonblocking on adoption, accept4 + O_NONBLOCK, send with
//     MSG_NOSIGNAL), and make_loop() returns an EpollLoop -- byte-for-
//     byte the old behavior.
//   * sim::SimTransport (sim/sim_transport.h) backs the same interface
//     with in-memory duplex pipes scheduled on a sim::EventQueue:
//     handles are table ids, delivery happens at virtual
//     now + latency + tx_time(bytes, bandwidth), and clock() reads
//     virtual time -- so the *real* AllocatorService and EndpointAgent
//     run unmodified under the discrete-event simulator.
//
// IoLoop is the readiness/timer half of the seam: EpollLoop's exact
// public surface as an abstract interface, so the service's shard loops
// and timers work against either backend. Event masks use epoll's
// numeric values (verified by static_asserts in transport.cc), which
// keeps the OS path a pass-through: existing EPOLLIN/EPOLLOUT call
// sites and the kEv* names below are interchangeable.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/time.h"

namespace ft::obs {
class MetricsRegistry;
}  // namespace ft::obs

namespace ft::net {

// Readiness masks, numerically equal to EPOLLIN/EPOLLOUT/EPOLLERR/
// EPOLLHUP so OS-path code can keep using either spelling.
inline constexpr std::uint32_t kEvRead = 0x001;
inline constexpr std::uint32_t kEvWrite = 0x004;
inline constexpr std::uint32_t kEvErr = 0x008;
inline constexpr std::uint32_t kEvHup = 0x010;

// Abstract readiness + timer loop (EpollLoop's public API). All
// callbacks run on the thread driving run()/run_once(); stop() is the
// only entry point a concrete implementation must make thread-safe
// (and the sim backend, being single-threaded by construction, need
// not).
class IoLoop {
 public:
  using FdCallback = std::function<void(std::uint32_t events)>;
  using TimerCallback = std::function<void()>;
  using TimerId = std::uint64_t;

  virtual ~IoLoop() = default;

  // Registers `fd` (an OS fd or a sim transport handle) for `events`.
  // The callback receives the ready event mask. The loop does not own
  // the handle.
  virtual void add_fd(int fd, std::uint32_t events, FdCallback cb) = 0;
  virtual void mod_fd(int fd, std::uint32_t events) = 0;
  virtual void del_fd(int fd) = 0;
  [[nodiscard]] virtual bool watching(int fd) const = 0;

  // One-shot timer firing `delay_us` from now (<=0 fires on the next
  // dispatch). Periodic timers re-arm at fixed period from the previous
  // deadline. Both may be cancelled; ids are never reused.
  virtual TimerId add_timer(std::int64_t delay_us, TimerCallback cb) = 0;
  virtual TimerId add_periodic(std::int64_t period_us,
                               TimerCallback cb) = 0;
  virtual void cancel_timer(TimerId id) = 0;

  // Waits for readiness or the next timer deadline (capped by
  // `max_wait_us`, -1 = no cap), dispatches fd events then due timers.
  // Returns the number of callbacks dispatched. (The sim loop never
  // waits: it advances virtual time to the next due event instead.)
  virtual int run_once(std::int64_t max_wait_us) = 0;
  // run_once(0) -- a virtual function cannot carry the historical
  // default argument through every override cleanly, so spell it out.
  int run_once() { return run_once(0); }

  virtual void run() = 0;
  virtual void stop() = 0;

  virtual void bind_metrics(obs::MetricsRegistry& reg,
                            std::string_view prefix) = 0;
};

// Byte-stream transport: connection setup, stream I/O and handle
// teardown. Handles are plain ints -- fds on the OS path, table ids in
// the sim -- so Connection structs and fd-keyed maps work unchanged.
// Stream calls follow nonblocking-socket semantics exactly: read/write
// return bytes moved, 0 from read means EOF, -1 sets errno (EAGAIN when
// the operation would block), so the existing drain/flush loops run
// against either backend.
class Transport {
 public:
  virtual ~Transport() = default;

  // The clock this transport's timestamps and deadlines live on (the
  // system clock for OS sockets, virtual time for the sim).
  [[nodiscard]] virtual Clock& clock() = 0;

  // Blocking-style dials (loopback semantics: immediate success or
  // failure); the returned handle is nonblocking. -1 on failure.
  virtual int connect_tcp(const std::string& host, int port) = 0;
  virtual int connect_unix(const std::string& path) = 0;

  // Listeners come back nonblocking; port 0 = assigned (written to
  // *bound_port when non-null). -1 aborts service setup (FT_CHECKed by
  // callers).
  virtual int listen_tcp(int port, bool listen_any, int* bound_port) = 0;
  virtual int listen_unix(const std::string& path) = 0;
  // Accepts one pending connection as a nonblocking handle; -1 with
  // errno EAGAIN when the backlog is empty (EMFILE etc. pass through).
  virtual int accept(int listen_handle) = 0;

  [[nodiscard]] virtual std::int64_t read(int handle, void* buf,
                                          std::size_t len) = 0;
  [[nodiscard]] virtual std::int64_t write(int handle, const void* buf,
                                           std::size_t len) = 0;
  virtual void close(int handle) = 0;

  // Socket options; no-ops off the OS path.
  virtual void set_nodelay(int handle) = 0;
  virtual void set_sndbuf(int handle, int bytes) = 0;
  // Removes a unix listener's path binding (::unlink on the OS).
  virtual void unlink_path(const std::string& path) = 0;

  // A fresh loop for I/O shards (EpollLoop on the OS, a SimLoop sharing
  // the transport's event queue in the sim).
  [[nodiscard]] virtual std::unique_ptr<IoLoop> make_loop() = 0;
  // Whether shard threads may drive this transport concurrently. The
  // sim is single-threaded by construction (determinism), so services
  // must run inline (num_shards == 0) on it.
  [[nodiscard]] virtual bool supports_threads() const = 0;
};

// The process-wide OS transport (what every component defaults to when
// no explicit transport is configured).
[[nodiscard]] Transport& os_transport();

}  // namespace ft::net
