// FaultJail: a deterministic fault-injection proxy for the allocator
// control plane. It sits between endpoint agents and the
// AllocatorService as a TCP forwarder on the caller's EpollLoop and
// misbehaves on command:
//
//   - drop a seeded-random fraction of service->agent frames (rate
//     update batches vanish in flight, but the stream stays framed --
//     drops happen on whole frames, never mid-record, so the agent's
//     parser keeps working and what *does* arrive is valid);
//   - black-hole everything in both directions while keeping the
//     sockets open (the silent-partition case leases exist for);
//   - kill every proxied connection at once (reset storm -> agents see
//     ECONNRESET and enter reconnect backoff);
//   - repoint the upstream (service restarted elsewhere).
//
// All randomness comes from one seeded Rng, so a drill that drops "30%
// of batches" drops the *same* batches on every run. Single-threaded:
// everything happens on the loop that owns the jail. Test/bench
// harness, not a production path -- upstream dials are blocking (the
// upstream is loopback in every drill).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "net/frame.h"
#include "net/transport.h"

namespace ft::obs {
class Counter;
class MetricsRegistry;
}  // namespace ft::obs

namespace ft::net {

struct FaultJailConfig {
  // Upstream the jail forwards to: TCP host:port, or a Unix-domain path
  // (exactly one must be set).
  std::string upstream_host = "127.0.0.1";
  int upstream_port = -1;
  std::string upstream_unix;
  // Jail's own TCP listener (loopback); 0 = kernel-assigned, see port().
  int listen_port = 0;
  std::uint64_t seed = 1;
  // Fraction of downstream (service->agent) frames silently dropped.
  double drop_down_frac = 0.0;
  // Frames longer than this mark the stream unframeable; the pair falls
  // back to verbatim forwarding (drop injection needs valid framing).
  std::size_t max_frame_payload = kMaxFramePayload;
  // A direction buffering more than this (peer stopped reading) kills
  // the pair rather than growing without bound.
  std::size_t max_buffer_bytes = 8 * 1024 * 1024;
};

struct FaultJailStats {
  std::uint64_t conns_opened = 0;
  std::uint64_t conns_killed = 0;   // incl. kill_all and natural EOF
  std::uint64_t frames_down = 0;    // complete frames seen downstream
  std::uint64_t frames_dropped = 0; // of those, injected drops
  std::int64_t bytes_up = 0;        // agent -> service forwarded
  std::int64_t bytes_down = 0;      // service -> agent forwarded
  std::int64_t bytes_blackholed = 0;
  // Every byte the jail eats is named: the bytes inside injected frame
  // drops, and buffered bytes discarded when a pair is killed mid-write
  // (the conservation audit wants drops attributable, never silent).
  std::int64_t bytes_dropped_frames = 0;
  std::int64_t bytes_discarded_on_kill = 0;
};

class FaultJail {
 public:
  FaultJail(IoLoop& loop, FaultJailConfig cfg);
  ~FaultJail();
  FaultJail(const FaultJail&) = delete;
  FaultJail& operator=(const FaultJail&) = delete;

  // Bound TCP port agents should dial instead of the service's.
  [[nodiscard]] int port() const { return listen_port_; }

  void set_drop_down_frac(double f) { cfg_.drop_down_frac = f; }
  // While on, bytes in both directions are read and discarded; sockets
  // stay open. The partition leases are designed for.
  void set_black_hole(bool on) { black_hole_ = on; }
  // Reset storm: every proxied pair dies now. New dials still accept.
  void kill_all();
  // Repoint future upstream dials (service restarted on another port).
  void set_upstream_port(int p) { cfg_.upstream_port = p; }

  [[nodiscard]] const FaultJailStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t num_pairs() const { return pairs_.size(); }

  // Mirrors the loss-path stats into named counters
  // (`<prefix>.frames_dropped`, `.bytes_dropped_frames`,
  // `.bytes_blackholed`, `.bytes_discarded_on_kill`, `.conns_killed`)
  // so drills show their damage on the live stats plane.
  void bind_metrics(obs::MetricsRegistry& reg,
                    const std::string& prefix = "faultjail");

 private:
  // One proxied connection: the agent-side socket and its upstream twin,
  // plus per-direction pending-write buffers and the downstream frame
  // reassembly buffer drops are decided on.
  struct Pair {
    int client_fd = -1;
    int upstream_fd = -1;
    std::vector<std::uint8_t> to_client;    // surviving downstream bytes
    std::size_t to_client_off = 0;
    std::vector<std::uint8_t> to_upstream;  // upstream-bound bytes
    std::size_t to_upstream_off = 0;
    std::vector<std::uint8_t> down_parse;   // frame reassembly
    bool raw_mode = false;  // unframeable stream: forward verbatim
    bool client_out_armed = false;
    bool upstream_out_armed = false;
  };

  void accept_ready();
  void pump_up(Pair& p);    // client readable
  void pump_down(Pair& p);  // upstream readable
  // Cuts complete frames out of down_parse, rolling the drop die per
  // frame; survivors append to to_client.
  void sieve_down(Pair& p);
  // Flushes a pending buffer to fd; arms EPOLLOUT on partial write.
  // Returns false when the pair must die (peer reset or buffer cap).
  bool flush_dir(int fd, std::vector<std::uint8_t>& buf,
                 std::size_t& off, bool& armed);
  void kill_pair(int client_fd);
  int dial_upstream();

  IoLoop& loop_;
  FaultJailConfig cfg_;
  int listen_fd_ = -1;
  int listen_port_ = -1;
  bool black_hole_ = false;
  Rng rng_;
  FaultJailStats stats_;
  // Loss-path counters; null until bind_metrics (obs wiring optional).
  struct LossCounters {
    obs::Counter* frames_dropped = nullptr;
    obs::Counter* bytes_dropped_frames = nullptr;
    obs::Counter* bytes_blackholed = nullptr;
    obs::Counter* bytes_discarded_on_kill = nullptr;
    obs::Counter* conns_killed = nullptr;
  } lc_;
  std::unordered_map<int, std::unique_ptr<Pair>> pairs_;  // by client_fd
  std::unordered_map<int, int> upstream_to_client_;
};

}  // namespace ft::net
