// AllocatorService: the Flowtune allocator as a network service (§6.2,
// §7). Endpoint agents connect over TCP or a Unix-domain socket and send
// flowlet start/end notifications; the service resolves each flowlet's
// ECMP route through the Clos topology, registers it with the
// core::Allocator, runs the allocation iteration on a periodic timer, and
// pushes thresholded rate updates back -- batched and coalesced per
// endpoint, and only to the endpoint that owns the flow.
//
// Flow ownership is tracked by flow key (the wire-level 32-bit id), never
// by allocator slot index: NumProblem recycles slots through its free
// list on every flowlet end, so keys are the only stable handle across
// churn.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/allocator.h"
#include "net/epoll_loop.h"
#include "net/frame.h"
#include "topo/clos.h"

namespace ft::net {

struct ServerConfig {
  // TCP listener: port >= 0 enables it (0 = kernel-assigned, see
  // tcp_port()). Listens on 127.0.0.1 unless listen_any is set.
  int tcp_port = -1;
  bool listen_any = false;
  // Unix-domain listener: non-empty path enables it (unlinked first).
  std::string unix_path;
  // Allocation round period; <= 0 disables the timer (drive rounds
  // manually with run_allocation_round, e.g. from tests).
  std::int64_t iteration_period_us = 100;
  std::size_t max_frame_payload = kMaxFramePayload;
  // Outgoing frames are cut at this payload size, so a round touching
  // arbitrarily many of one endpoint's flows emits several frames
  // instead of overrunning max_frame_payload.
  std::size_t flush_chunk_bytes = 64 * 1024;
  // A peer that stops reading gets dropped once this much output is
  // buffered for it (close_conn ends its flowlets cleanly); without the
  // cap a stalled endpoint grows the outbox by one frame per round.
  std::size_t max_outbox_bytes = 4 * 1024 * 1024;
};

struct ServiceStats {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t flowlet_starts = 0;
  std::uint64_t flowlet_ends = 0;
  std::uint64_t rejected_starts = 0;  // duplicate key or bad host index
  std::uint64_t unknown_ends = 0;
  std::uint64_t protocol_errors = 0;  // malformed streams (conn dropped)
  std::uint64_t iterations = 0;
  std::uint64_t updates_sent = 0;
  std::uint64_t updates_coalesced = 0;
  std::uint64_t frames_out = 0;
  std::int64_t bytes_in = 0;        // stream bytes received
  std::int64_t bytes_out = 0;       // stream bytes queued out (framed)
  std::int64_t wire_bytes_out = 0;  // common/wire.h accounting
};

class AllocatorService {
 public:
  AllocatorService(EpollLoop& loop, core::Allocator& alloc,
                   const topo::ClosTopology& topo, ServerConfig cfg);
  ~AllocatorService();
  AllocatorService(const AllocatorService&) = delete;
  AllocatorService& operator=(const AllocatorService&) = delete;

  // Actual TCP port after binding (meaningful when cfg.tcp_port >= 0).
  [[nodiscard]] int tcp_port() const { return tcp_port_; }
  [[nodiscard]] const std::string& unix_path() const {
    return cfg_.unix_path;
  }

  // One allocation round: allocator iteration + normalized, thresholded
  // rate updates pushed to their owning endpoints. Runs on the iteration
  // timer when cfg.iteration_period_us > 0.
  void run_allocation_round();

  [[nodiscard]] const ServiceStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t num_connections() const {
    return conns_.size();
  }

 private:
  struct Connection;

  void setup_tcp_listener();
  void setup_unix_listener();
  void accept_ready(int listen_fd);
  void conn_ready(Connection& c, std::uint32_t events);
  void handle_start(Connection& c, const core::FlowletStartMsg& m);
  void handle_end(Connection& c, const core::FlowletEndMsg& m);
  // Frames the connection's pending batch and writes as much as the
  // socket accepts; the rest waits for EPOLLOUT.
  void flush_conn(Connection& c);
  void try_write(Connection& c);
  void close_conn(int fd);

  EpollLoop& loop_;
  core::Allocator& alloc_;
  const topo::ClosTopology& topo_;
  ServerConfig cfg_;
  int tcp_listen_fd_ = -1;
  int unix_listen_fd_ = -1;
  int tcp_port_ = -1;
  EpollLoop::TimerId iter_timer_ = 0;
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  std::unordered_map<std::uint32_t, Connection*> key_owner_;
  std::vector<core::RateUpdate> updates_scratch_;
  std::vector<int> touched_scratch_;
  // One pending accept-retry timer per listener fd (overwritten on
  // re-arm; the previous one-shot has always fired by then).
  std::unordered_map<int, EpollLoop::TimerId> accept_retry_timer_;
  ServiceStats stats_;
};

}  // namespace ft::net
