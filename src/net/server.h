// AllocatorService: the Flowtune allocator as a network service (§6.2,
// §7). Endpoint agents connect over TCP or a Unix-domain socket and send
// flowlet start/end notifications; the service resolves each flowlet's
// ECMP route through the Clos topology, registers it with the
// core::Allocator, runs the allocation iteration on a periodic timer, and
// pushes thresholded rate updates back -- batched and coalesced per
// endpoint, and only to the endpoint that owns the flow.
//
// The service scales across cores by sharding its I/O (§5 applied to the
// control plane): with cfg.num_shards >= 1 it spawns N shard threads,
// each owning a private EpollLoop and the connections handed to it --
// accept stays on the caller's loop (one listener), which also runs the
// allocation rounds. Decoded flowlet start/end records are funneled from
// the shards to the allocation thread through per-shard SPSC rings, and
// rate updates fan back out through per-shard rings to whichever shard
// owns the flow's connection; eventfd wakeups replace polling, and no
// lock is taken anywhere on the hot path. key_owner_ state is sharded
// with the connections: each shard maps its own keys to its own
// connections, while the allocation thread maps keys to shards. With
// cfg.num_shards == 0 everything runs inline on the caller's loop (the
// original single-threaded service), which tests drive deterministically.
//
// Flow ownership is tracked by flow key (the wire-level 32-bit id), never
// by allocator slot index: NumProblem recycles slots through its free
// list on every flowlet end, so keys are the only stable handle across
// churn.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/flat_map.h"
#include "core/allocator.h"
#include "core/cpu_map.h"
#include "net/frame.h"
#include "net/spsc_queue.h"
#include "net/transport.h"
#include "obs/flight.h"
#include "topo/clos.h"

namespace ft::obs {
class Counter;
class LatencyHisto;
class MetricsRegistry;
}  // namespace ft::obs

namespace ft::net {

struct ServerConfig {
  // The transport/clock seam the service runs on. Null = the
  // process-wide OS transport (real sockets + EpollLoop). The
  // virtual-time harness passes a sim::SimTransport, under which the
  // service must run inline (num_shards == 0; FT_CHECKed).
  Transport* transport = nullptr;
  // TCP listener: port >= 0 enables it (0 = kernel-assigned, see
  // tcp_port()). Listens on 127.0.0.1 unless listen_any is set.
  int tcp_port = -1;
  bool listen_any = false;
  // Unix-domain listener: non-empty path enables it (unlinked first).
  std::string unix_path;
  // Allocation round period; <= 0 disables the timer (drive rounds
  // manually with run_allocation_round, e.g. from tests).
  std::int64_t iteration_period_us = 100;
  std::size_t max_frame_payload = kMaxFramePayload;
  // Outgoing frames are cut at this payload size, so a round touching
  // arbitrarily many of one endpoint's flows emits several frames
  // instead of overrunning max_frame_payload.
  std::size_t flush_chunk_bytes = 64 * 1024;
  // A peer that stops reading gets dropped once this much output is
  // buffered for it (close_conn ends its flowlets cleanly); without the
  // cap a stalled endpoint grows the outbox by one frame per round.
  std::size_t max_outbox_bytes = 4 * 1024 * 1024;
  // SO_SNDBUF for accepted sockets; 0 = kernel default. A small value
  // bounds kernel-side buffering so the max_outbox_bytes cap (not the
  // kernel) is what governs a stalled reader.
  int send_buffer_bytes = 0;
  // I/O sharding: 0 = inline single-threaded service on the caller's
  // loop; N >= 1 spawns N shard threads, connections assigned
  // round-robin.
  int num_shards = 0;
  // Per-direction SPSC ring capacity per shard (entries).
  std::size_t shard_queue_capacity = 1 << 15;
  // §6.1 co-scheduling: pin shard thread i to the CPU of FlowBlock row i
  // (same CpuMap layout the ParallelNed workers use), so the I/O shard
  // serving a block row shares that row's core and cache. Run one shard
  // per block row for the paper's mapping. No-op when disabled.
  core::CpuMapConfig pin;
  // Telemetry sink (src/obs/). When null the service owns a private
  // registry; stats() aggregates from the registry either way. The
  // daemon passes a shared registry so the net.* / svc.* metrics land on
  // its stats socket next to the allocator's core.* metrics.
  obs::MetricsRegistry* metrics = nullptr;
  // Always-on flight recorder tuning (obs/flight.h): per-round black-box
  // ring sizes and the adaptive promotion threshold.
  obs::FlightRecorder::Config flight;
  // Liveness + leases (tentpoles 2/3). heartbeat_period_us > 0 sends a
  // HeartbeatMsg to every connection each period from the shard that
  // owns it; the beacon proves the allocation plane alive to flows
  // whose thresholded rate never changes. rate_lease_us rides on those
  // heartbeats: the agent holds any applied rate at most that long
  // past the last heartbeat/update before decaying to its fallback, so
  // a dead allocator can never pin a stale allocation (leases require
  // heartbeats to be advertised). peer_timeout_us > 0 closes
  // connections that sent nothing (agents heartbeat too) for that
  // long, ending their flows and freeing their slots in O(heartbeat)
  // rather than O(TCP timeout). All 0 by default (pre-recovery wire
  // behaviour).
  std::int64_t heartbeat_period_us = 0;
  std::int64_t rate_lease_us = 0;
  std::int64_t peer_timeout_us = 0;
  // Allocator epoch stamped into every outgoing heartbeat and rate
  // update. 0 = take the next value from a process-global counter (each
  // service instance in this process gets a fresh, increasing epoch --
  // the production restart path). The virtual-time harness passes an
  // explicit epoch (1 + restart count) so trajectories stay bit-identical
  // across runs regardless of what else the process constructed.
  std::uint16_t epoch = 0;
  // Fault injection for flight-recorder forensics tests and demos: every
  // `stall_every_rounds`-th allocation round busy-spins for `stall_us`
  // microseconds inside the fanout phase, forcing a promotable slow
  // round with a known phase attribution. 0 = disabled.
  std::uint64_t stall_every_rounds = 0;
  std::int64_t stall_us = 0;
};

struct ServiceStats {
  std::uint64_t accepted = 0;
  std::uint64_t closed = 0;
  std::uint64_t flowlet_starts = 0;
  std::uint64_t flowlet_ends = 0;
  std::uint64_t rejected_starts = 0;  // duplicate key or bad host index
  // Duplicate starts from the key's own live connection: a registration
  // refresh (the agent never saw a rate for the flow on this
  // connection, e.g. the update died in a fault window). The flow's
  // notification state is invalidated so the next round re-emits its
  // rate unconditionally.
  std::uint64_t replayed_starts = 0;
  std::uint64_t unknown_ends = 0;
  std::uint64_t protocol_errors = 0;  // malformed streams (conn dropped)
  std::uint64_t iterations = 0;
  std::uint64_t updates_sent = 0;
  std::uint64_t updates_coalesced = 0;
  std::uint64_t frames_out = 0;
  // Events dropped on a persistently full shard ring (overload): rate
  // updates (re-armed so the next round re-emits them), shed connection
  // handoffs (the socket is closed, counted in `closed` too), dropped
  // start rejections (a stale shard owner entry lingers until its
  // connection closes), and lifecycle events abandoned during shutdown.
  std::uint64_t queue_drops = 0;
  // Rate updates that found no owner connection for their key (flow
  // ended or connection culled between emission and queueing). Counted,
  // never silent: the chaos conservation oracle audits this path.
  std::uint64_t updates_orphaned = 0;
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_received = 0;
  std::uint64_t peer_timeouts = 0;  // conns culled for radio silence
  std::uint64_t recv_calls = 0;     // recv(2) invocations across shards
  std::uint64_t send_calls = 0;     // send(2) invocations across shards
  std::int64_t bytes_in = 0;        // stream bytes received
  std::int64_t bytes_out = 0;       // stream bytes queued out (framed)
  std::int64_t wire_bytes_out = 0;  // common/wire.h accounting
};

class AllocatorService {
 public:
  AllocatorService(IoLoop& loop, core::Allocator& alloc,
                   const topo::ClosTopology& topo, ServerConfig cfg);
  ~AllocatorService();
  AllocatorService(const AllocatorService&) = delete;
  AllocatorService& operator=(const AllocatorService&) = delete;

  // Actual TCP port after binding (meaningful when cfg.tcp_port >= 0).
  [[nodiscard]] int tcp_port() const { return tcp_port_; }
  // The allocator epoch this instance stamps into heartbeats and rate
  // updates (cfg.epoch, or the auto-assigned process-global value).
  [[nodiscard]] std::uint16_t epoch() const { return epoch_; }
  [[nodiscard]] const std::string& unix_path() const {
    return cfg_.unix_path;
  }

  // One allocation round: pending shard events applied, allocator
  // iteration, normalized thresholded rate updates pushed to their
  // owning endpoints (directly inline, or via the owning shard's ring).
  // Runs on the iteration timer when cfg.iteration_period_us > 0; must
  // be called from the thread driving the caller's loop.
  void run_allocation_round();

  // Aggregated snapshot across the allocation thread and all shards
  // (relaxed counters: safe to call from any thread while serving).
  [[nodiscard]] ServiceStats stats() const;
  // The registry this service records into (cfg.metrics, or the private
  // one): per-shard net.shard<i>.* I/O counters, ring high-water gauges
  // and wakeup latency, plus the svc.* round-phase histograms.
  [[nodiscard]] obs::MetricsRegistry& metrics() const { return *metrics_; }
  [[nodiscard]] std::size_t num_connections() const;
  // Number of I/O shard threads (0 = inline mode).
  [[nodiscard]] int num_shards() const {
    return static_cast<int>(shards_.size());
  }
  // Shard -> CPU layout in use ("" when pinning is disabled).
  [[nodiscard]] std::string pinning() const {
    return shard_cpu_map_.describe();
  }

  // Wall-clock microseconds of recent allocation rounds (iteration +
  // update fan-out), most recent last, up to an internal cap. Written by
  // the allocation thread; read it while rounds are quiescent.
  [[nodiscard]] std::vector<double> round_latency_us() const;

  // The always-on per-round flight recorder (obs/flight.h). Written by
  // the allocation thread each round; read it from that thread (the
  // stats socket's `flight` verb shares the caller's loop, so the
  // daemon serializes naturally).
  [[nodiscard]] const obs::FlightRecorder& flight() const {
    return flight_;
  }

 private:
  struct Connection;
  struct Counters;
  struct Shard;
  struct UpEvent;
  struct DownEvent;

  void setup_tcp_listener();
  void setup_unix_listener();
  void accept_ready(int listen_fd);
  void adopt_conn(Shard& s, int fd);
  void conn_ready(Shard& s, Connection& c, std::uint32_t events);
  void handle_start(Shard& s, Connection& c,
                    const core::FlowletStartMsg& m);
  void handle_end(Shard& s, Connection& c, const core::FlowletEndMsg& m);
  // A trace mark rode in behind a sampled flowlet_start: stamp the shard
  // ingest hop and forward the context to the allocation thread (shard
  // thread; inline mode records directly).
  void handle_trace_mark(Shard& s, const core::TraceMarkMsg& m);
  void handle_heartbeat(Shard& s, const core::HeartbeatMsg& m);
  // Arms the per-shard heartbeat/peer-timeout timer (on the shard's own
  // loop; called before its thread starts) and the periodic tick: one
  // heartbeat per connection, silent peers culled.
  void arm_heartbeat(Shard& s);
  void heartbeat_tick(Shard& s);
  // Appends an echo mark to the flow owner's open batch, stamping the
  // fanout-write hop (shard thread / inline fanout).
  void queue_trace_echo(Shard& s, core::TraceMarkMsg mark);
  // Queues one rate update for the shard's owner of `key` (no-op when
  // the flow ended meanwhile), cutting the batch at flush_chunk_bytes;
  // touched connections are flushed together by flush_touched.
  void queue_update(Shard& s, std::uint32_t key, std::uint16_t rate_code);
  void flush_touched(Shard& s);
  // Frames the connection's pending batch and writes as much as the
  // socket accepts; the rest waits for EPOLLOUT.
  void flush_conn(Shard& s, Connection& c);
  void try_write(Shard& s, Connection& c);
  void close_conn(Shard& s, int fd);

  // Resolves the ECMP route for a start message; false on bad hosts.
  bool resolve_route(const core::FlowletStartMsg& m,
                     std::array<LinkId, core::kMaxRouteLinks>& route,
                     std::uint8_t& len) const;

  // Sharded mode plumbing (all no-ops in inline mode).
  void push_up(Shard& s, const UpEvent& ev);      // shard thread
  bool push_down(Shard& s, const DownEvent& ev);  // allocation thread
  void wake_shard(Shard& s);
  void drain_up(Shard& s);        // allocation thread
  void drain_down(Shard& s);      // shard thread
  void apply_start(Shard& s, const UpEvent& ev);  // allocation thread
  void note_kick(Shard& s);  // stamp first kick for wakeup latency
  void record_round_latency(double us);

  IoLoop& loop_;
  core::Allocator& alloc_;
  const topo::ClosTopology& topo_;
  ServerConfig cfg_;
  Transport* tr_;  // cfg_.transport, or the OS transport
  Clock* clock_;   // the transport's clock (all liveness deadlines)
  std::uint16_t epoch_ = 0;  // stamped into heartbeats + rate updates
  int tcp_listen_fd_ = -1;
  int unix_listen_fd_ = -1;
  int tcp_port_ = -1;
  IoLoop::TimerId iter_timer_ = 0;
  int alloc_wake_fd_ = -1;  // shards kick this to get their rings drained
  // Inline shard (index -1, caller's loop) -- used when num_shards == 0.
  std::unique_ptr<Shard> inline_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;
  core::CpuMap shard_cpu_map_;  // shard index -> CPU (§6.1 co-scheduling)
  std::size_t next_shard_ = 0;  // round-robin accept assignment
  // Allocation-thread view: which shard owns each live flow key.
  std::unordered_map<std::uint32_t, std::uint32_t> key_shard_;
  // End-to-end trace contexts awaiting their echo (allocation thread).
  // A sampled flowlet_start parks its origin + ingest stamps here; the
  // first rate update emitted for the flow carries the completed mark
  // back to the agent, then the entry is erased (also erased on
  // flowlet_end). Bounded: inserts beyond kMaxTraced are dropped and
  // counted in svc.trace_drops.
  struct TraceCtx {
    std::uint64_t trace_id = 0;
    std::int64_t t_agent_send_ns = 0;
    std::int64_t t_shard_ingest_ns = 0;
    std::int64_t t_round_pickup_ns = 0;  // 0 until a round picks it up
  };
  static constexpr std::size_t kMaxTraced = 512;
  FlatMap64<TraceCtx> traced_;
  // Keys inserted into traced_ since the last round; the next round
  // stamps their pickup hop in one pass (FlatMap64 has no iteration).
  std::vector<std::uint32_t> traced_pending_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // when cfg has none
  obs::MetricsRegistry* metrics_ = nullptr;
  // Allocation-round phase histograms (svc.*; allocation thread only).
  obs::LatencyHisto* ingest_us_ = nullptr;  // drain_up at round start
  obs::LatencyHisto* fanout_us_ = nullptr;  // update push + flush
  obs::LatencyHisto* round_us_ = nullptr;   // full round incl. ingest
  // Trace-mark accounting (striped counters: any thread).
  obs::Counter* trace_marks_ = nullptr;   // marks received from agents
  obs::Counter* trace_echoes_ = nullptr;  // marks echoed back
  obs::Counter* trace_drops_ = nullptr;   // contexts/echoes dropped
  std::unique_ptr<Counters> alloc_stats_;

  // Flight recorder state (allocation thread). The per-round scratch
  // accumulates between rounds (drain_up also runs on eventfd wakeups)
  // and resets after each RoundRecord is cut.
  obs::FlightRecorder flight_;
  std::uint64_t round_id_ = 0;
  std::uint32_t round_churn_ = 0;        // up events since last record
  double round_wakeup_max_us_ = 0.0;     // worst kick->drain this round
  std::size_t round_up_hw_ = 0;          // max up-ring depth at drain
  std::uint64_t round_queue_drops_ = 0;  // fanout pushes dropped
  std::atomic<bool> stopping_{false};
  std::vector<core::RateUpdate> updates_scratch_;
  std::vector<bool> touched_shards_;
  // One pending accept-retry timer per listener fd (overwritten on
  // re-arm; the previous one-shot has always fired by then).
  std::unordered_map<int, IoLoop::TimerId> accept_retry_timer_;

  static constexpr std::size_t kLatencyCap = 8192;
  std::array<double, kLatencyCap> round_lat_us_{};
  std::uint64_t round_lat_count_ = 0;
};

}  // namespace ft::net
