#include "net/socket_util.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>

#include "common/check.h"

namespace ft::net {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  FT_CHECK(flags >= 0);
  FT_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

void set_tcp_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

int tcp_listen(int port, bool listen_any, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(listen_any ? INADDR_ANY : INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 128) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  if (bound_port != nullptr) *bound_port = ntohs(addr.sin_port);
  set_nonblocking(fd);
  return fd;
}

int unix_listen(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  FT_CHECK(path.size() < sizeof addr.sun_path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, 128) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  set_nonblocking(fd);
  return fd;
}

int tcp_dial(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    errno = EINVAL;
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  set_tcp_nodelay(fd);
  return fd;
}

int unix_dial(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    ::close(fd);
    errno = ENAMETOOLONG;
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    return -1;
  }
  return fd;
}

int accept_nonblocking(int listen_fd) {
  const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
  if (fd < 0) return -1;
  set_nonblocking(fd);
  return fd;
}

}  // namespace ft::net
