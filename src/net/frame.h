// Length-prefixed batch framing for the allocator control plane.
//
// Endpoints and the allocator exchange the §6.2 message encodings
// (core/messages.h) over byte streams (TCP or Unix-domain sockets). A
// *frame* is one batch: a 4-byte little-endian payload length followed by
// back-to-back records, each a 1-byte type tag plus the message's fixed
// encoding. Batching amortizes the per-segment TCP/IP overhead that
// dominates 4..16-byte control messages, and rate updates coalesce
// *latest-wins per flow* within the open batch -- an endpoint only ever
// needs the newest rate, so an update superseded before the batch is
// flushed costs zero bytes on the wire.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/flat_map.h"
#include "core/messages.h"

namespace ft::net {

enum class MsgType : std::uint8_t {
  kFlowletStart = 1,
  kFlowletEnd = 2,
  kRateUpdate = 3,
  kTraceMark = 4,
  kHeartbeat = 5,
};

inline constexpr std::size_t kFrameHeaderBytes = 4;
// Upper bound on a frame payload; a peer announcing more is malformed
// (guards against unbounded buffering on corrupt or hostile input).
inline constexpr std::size_t kMaxFramePayload = 1 << 20;

inline constexpr std::size_t kStartRecordBytes =
    1 + core::kFlowletStartBytes;
inline constexpr std::size_t kEndRecordBytes = 1 + core::kFlowletEndBytes;
inline constexpr std::size_t kRateRecordBytes = 1 + core::kRateUpdateBytes;
inline constexpr std::size_t kTraceRecordBytes = 1 + core::kTraceMarkBytes;
inline constexpr std::size_t kHeartbeatRecordBytes =
    1 + core::kHeartbeatBytes;

struct FrameWriterStats {
  std::uint64_t frames = 0;
  std::uint64_t records = 0;            // records actually framed
  std::uint64_t coalesced_updates = 0;  // rate updates absorbed in place
  std::int64_t payload_bytes = 0;       // sum of flushed payloads
  std::int64_t wire_bytes = 0;          // incl. header + TCP/IP/Ethernet
};

// Accumulates one outgoing batch per peer. add() appends records to the
// open batch; flush() finalizes it (length prefix + payload) into an
// output buffer and starts a new one.
class FrameWriter {
 public:
  void add(const core::FlowletStartMsg& m);
  void add(const core::FlowletEndMsg& m);
  // Latest-wins: if the open batch already carries an update for
  // m.flow_key, its rate code is overwritten in place.
  void add(const core::RateUpdateMsg& m);
  // Trace marks never coalesce: each one is a distinct sampled context.
  void add(const core::TraceMarkMsg& m);
  // Heartbeats never coalesce either: batches holding one are flushed
  // promptly, so at most a handful are ever open at once.
  void add(const core::HeartbeatMsg& m);

  [[nodiscard]] bool empty() const { return payload_.empty(); }
  [[nodiscard]] std::size_t pending_bytes() const { return payload_.size(); }
  [[nodiscard]] std::uint64_t pending_records() const {
    return open_records_;
  }

  // Drops the open batch without framing it (capacity kept, stats
  // untouched): a reconnecting agent must not let residue from the dead
  // connection leak into the first frame of the new one.
  void clear();

  // Appends the finished frame (header + payload) to `out` and resets the
  // open batch. Returns the number of bytes appended (0 if empty).
  std::size_t flush(std::vector<std::uint8_t>& out);

  [[nodiscard]] const FrameWriterStats& stats() const { return stats_; }

 private:
  std::vector<std::uint8_t> payload_;
  // flow_key -> payload offset of that flow's rate-update record. Flat
  // open-addressed map so the per-batch coalescing lookups never touch
  // the heap once the table is warm (clear() keeps capacity).
  FlatMap64<std::size_t> rate_record_at_;
  std::uint64_t open_records_ = 0;
  FrameWriterStats stats_;
};

// Decoded-record sink for FrameParser. Virtual dispatch keeps the parser
// allocation-free on the hot path (no std::function).
class MessageSink {
 public:
  virtual ~MessageSink() = default;
  virtual void on_flowlet_start(const core::FlowletStartMsg&) {}
  virtual void on_flowlet_end(const core::FlowletEndMsg&) {}
  virtual void on_rate_update(const core::RateUpdateMsg&) {}
  virtual void on_trace_mark(const core::TraceMarkMsg&) {}
  virtual void on_heartbeat(const core::HeartbeatMsg&) {}
};

struct FrameParserStats {
  std::uint64_t frames = 0;
  std::uint64_t records = 0;
  std::int64_t bytes_in = 0;
};

// Incremental stream parser: feed() arbitrary byte chunks in arrival
// order; every completed frame is decoded record-by-record into the sink.
// Tolerates any split boundary, including mid-header and mid-record.
class FrameParser {
 public:
  explicit FrameParser(std::size_t max_payload = kMaxFramePayload)
      : max_payload_(max_payload) {}

  // Returns false on a malformed stream (oversized frame, unknown record
  // tag, or a frame whose payload does not split exactly into records);
  // the caller should drop the connection. Once malformed, stays false.
  [[nodiscard]] bool feed(std::span<const std::uint8_t> bytes,
                          MessageSink& sink);

  [[nodiscard]] const FrameParserStats& stats() const { return stats_; }

 private:
  bool parse_payload(std::span<const std::uint8_t> payload,
                     MessageSink& sink);

  std::size_t max_payload_;
  std::vector<std::uint8_t> buf_;
  bool corrupt_ = false;
  FrameParserStats stats_;
};

}  // namespace ft::net
