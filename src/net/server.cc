#include "net/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <span>

#include "common/check.h"
#include "common/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ft::net {
namespace {

// Registry counters are striped relaxed atomics: monotonic tallies,
// never used for synchronization.
void bump(obs::Counter& c) { c.add(1); }
void bump_by(obs::Counter& c, std::int64_t n) {
  c.add(static_cast<std::uint64_t>(n));
}
void bump_by(obs::Counter& c, std::uint64_t n) { c.add(n); }

void kick_eventfd(int fd) {
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(fd, &one, sizeof one);
}

void drain_eventfd(int fd) {
  std::uint64_t v;
  while (::read(fd, &v, sizeof v) > 0) {
  }
}

// Process-global allocator-epoch source for cfg.epoch == 0: every
// service instance constructed in this process gets a fresh, strictly
// increasing epoch, so a daemon restart (new process) or an in-process
// warm restart both advance it. Starts at 1 -- epoch 0 on the wire
// means "unstamped" (agent-originated heartbeats).
std::atomic<std::uint16_t> g_next_epoch{0};

std::uint16_t claim_epoch() {
  std::uint16_t e = static_cast<std::uint16_t>(
      g_next_epoch.fetch_add(1, std::memory_order_relaxed) + 1);
  if (e == 0) e = static_cast<std::uint16_t>(
      g_next_epoch.fetch_add(1, std::memory_order_relaxed) + 1);
  return e;
}

}  // namespace

// Per-thread counter set (one for the allocation thread, one per
// shard), unified onto the metrics registry: each member is a named
// registry counter (<prefix>.accepted, ...) resolved once here, so the
// same tallies serve both the stats() aggregate (existing accessor,
// now a shim summing the sets) and the export plane.
struct AllocatorService::Counters {
  obs::Counter& accepted;
  obs::Counter& closed;
  obs::Counter& flowlet_starts;
  obs::Counter& flowlet_ends;
  obs::Counter& rejected_starts;
  obs::Counter& replayed_starts;
  obs::Counter& unknown_ends;
  obs::Counter& protocol_errors;
  obs::Counter& iterations;
  obs::Counter& updates_sent;
  obs::Counter& updates_coalesced;
  obs::Counter& frames_out;
  obs::Counter& queue_drops;
  obs::Counter& updates_orphaned;
  obs::Counter& heartbeats_sent;
  obs::Counter& heartbeats_received;
  obs::Counter& peer_timeouts;
  obs::Counter& recv_calls;
  obs::Counter& send_calls;
  obs::Counter& bytes_in;
  obs::Counter& bytes_out;
  obs::Counter& wire_bytes_out;

  Counters(obs::MetricsRegistry& reg, const std::string& p)
      : accepted(reg.counter(p + ".accepted")),
        closed(reg.counter(p + ".closed")),
        flowlet_starts(reg.counter(p + ".flowlet_starts")),
        flowlet_ends(reg.counter(p + ".flowlet_ends")),
        rejected_starts(reg.counter(p + ".rejected_starts")),
        replayed_starts(reg.counter(p + ".replayed_starts")),
        unknown_ends(reg.counter(p + ".unknown_ends")),
        protocol_errors(reg.counter(p + ".protocol_errors")),
        iterations(reg.counter(p + ".iterations")),
        updates_sent(reg.counter(p + ".updates_sent")),
        updates_coalesced(reg.counter(p + ".updates_coalesced")),
        frames_out(reg.counter(p + ".frames_out")),
        queue_drops(reg.counter(p + ".queue_drops")),
        updates_orphaned(reg.counter(p + ".updates_orphaned")),
        heartbeats_sent(reg.counter(p + ".heartbeats_sent")),
        heartbeats_received(reg.counter(p + ".heartbeats_received")),
        peer_timeouts(reg.counter(p + ".peer_timeouts")),
        recv_calls(reg.counter(p + ".recv_calls")),
        send_calls(reg.counter(p + ".send_calls")),
        bytes_in(reg.counter(p + ".bytes_in")),
        bytes_out(reg.counter(p + ".bytes_out")),
        wire_bytes_out(reg.counter(p + ".wire_bytes_out")) {}

  void add_to(ServiceStats& s) const {
    s.accepted += accepted.value();
    s.closed += closed.value();
    s.flowlet_starts += flowlet_starts.value();
    s.flowlet_ends += flowlet_ends.value();
    s.rejected_starts += rejected_starts.value();
    s.replayed_starts += replayed_starts.value();
    s.unknown_ends += unknown_ends.value();
    s.protocol_errors += protocol_errors.value();
    s.iterations += iterations.value();
    s.updates_sent += updates_sent.value();
    s.updates_coalesced += updates_coalesced.value();
    s.frames_out += frames_out.value();
    s.queue_drops += queue_drops.value();
    s.updates_orphaned += updates_orphaned.value();
    s.heartbeats_sent += heartbeats_sent.value();
    s.heartbeats_received += heartbeats_received.value();
    s.peer_timeouts += peer_timeouts.value();
    s.recv_calls += recv_calls.value();
    s.send_calls += send_calls.value();
    s.bytes_in += static_cast<std::int64_t>(bytes_in.value());
    s.bytes_out += static_cast<std::int64_t>(bytes_out.value());
    s.wire_bytes_out += static_cast<std::int64_t>(wire_bytes_out.value());
  }
};

// Shard -> allocation thread: decoded flowlet lifecycle events. Starts
// carry the route resolved on the shard thread (link ids), so the
// allocation thread only touches the allocator.
struct AllocatorService::UpEvent {
  enum class Kind : std::uint8_t { kStart, kEnd, kTrace, kRefresh };
  Kind kind = Kind::kEnd;
  std::uint8_t route_len = 0;
  std::uint16_t weight_milli = 1000;
  std::uint32_t key = 0;
  // Shard-local start-attempt tag echoed back in kReject, so a stale
  // reject cannot cancel a newer registration of the same key.
  std::uint64_t seq = 0;
  // kTrace payload: the agent's trace id + origin stamp, and the shard
  // ingest stamp taken when the mark came off the socket.
  std::uint64_t trace_id = 0;
  std::int64_t t_origin_ns = 0;
  std::int64_t t_ingest_ns = 0;
  std::array<std::uint32_t, core::kMaxRouteLinks> route{};
};

// Allocation thread -> shard: accepted-connection handoff, rate updates
// for keys the shard owns, and start rejections (cross-shard duplicate
// keys) that undo the shard's tentative ownership.
struct AllocatorService::DownEvent {
  enum class Kind : std::uint8_t { kConn, kRate, kReject };
  Kind kind = Kind::kRate;
  std::uint16_t rate_code = 0;
  std::uint32_t key = 0;
  int fd = -1;
  std::uint64_t seq = 0;  // kReject: the start attempt being answered
};

// One endpoint connection. Routes decoded records straight into the
// service (MessageSink keeps the parser callback-free). Owned by exactly
// one shard; all its I/O happens on that shard's loop thread.
struct AllocatorService::Connection : MessageSink {
  AllocatorService* svc = nullptr;
  Shard* shard = nullptr;
  int fd = -1;
  FrameParser parser;
  FrameWriter writer;
  std::vector<std::uint8_t> outbox;
  std::size_t out_off = 0;
  bool epollout_armed = false;
  std::uint64_t coalesced_reported = 0;
  // Last instant the peer put bytes on the wire (agent heartbeats keep
  // this fresh even when no flowlets churn); heartbeat_tick culls the
  // connection once it falls peer_timeout_us behind.
  std::int64_t last_rx_us = 0;
  std::unordered_set<std::uint32_t> owned_keys;

  explicit Connection(std::size_t max_payload) : parser(max_payload) {}

  void on_flowlet_start(const core::FlowletStartMsg& m) override {
    svc->handle_start(*shard, *this, m);
  }
  void on_flowlet_end(const core::FlowletEndMsg& m) override {
    svc->handle_end(*shard, *this, m);
  }
  void on_trace_mark(const core::TraceMarkMsg& m) override {
    svc->handle_trace_mark(*shard, m);
  }
  void on_heartbeat(const core::HeartbeatMsg& m) override {
    svc->handle_heartbeat(*shard, m);
  }
  // Endpoints never send rate updates; MessageSink's default ignores
  // them, which keeps an agent bug from taking the service down.
};

// One I/O shard: a private epoll loop + thread, the connections handed
// to it, and the key ownership map for those connections. The inline
// service is a degenerate shard (index -1) on the caller's loop with no
// thread or rings.
struct AllocatorService::Shard {
  int index = -1;
  IoLoop* loop = nullptr;
  std::unique_ptr<IoLoop> owned_loop;
  std::thread thread;
  std::unique_ptr<SpscQueue<UpEvent>> up;      // shard -> allocation
  std::unique_ptr<SpscQueue<DownEvent>> down;  // allocation -> shard
  // Completed trace marks headed back to the agent, kept off the hot
  // DownEvent ring (a mark is 60 bytes; rate events stay 24). Drained
  // into the owner's open batch alongside the round's rate updates.
  std::unique_ptr<SpscQueue<core::TraceMarkMsg>> trace_down;
  int wake_fd = -1;
  // Key ownership: the owning connection plus the start-attempt tag
  // (threaded mode; 0 inline). A kReject only cancels the attempt
  // whose tag it echoes -- the key may have been ended and
  // re-registered since, and that newer attempt must survive.
  struct Owner {
    Connection* conn = nullptr;
    std::uint64_t seq = 0;
  };
  std::unordered_map<int, std::unique_ptr<Connection>> conns;
  std::unordered_map<std::uint32_t, Owner> key_owner;
  std::uint64_t next_seq = 0;
  std::atomic<std::size_t> num_conns{0};
  std::unique_ptr<Counters> stats;  // <prefix>.* registry counters
  // Ring telemetry (threaded shards only; null inline): occupancy
  // high-water marks after each push, and the latency from the first
  // pending eventfd kick to the allocation thread's drain.
  obs::Gauge* up_depth_hw = nullptr;
  obs::Gauge* down_depth_hw = nullptr;
  obs::LatencyHisto* wakeup_us = nullptr;
  std::atomic<std::int64_t> kick_t_ns{0};  // 0 = no kick outstanding
  std::vector<int> touched;  // flush batching scratch
  bool kick_alloc = false;   // pending alloc-thread wakeup (shard thread)
  // Heartbeat/peer-timeout tick (shard loop; caller's loop inline). The
  // fd snapshot is reused scratch: flush_conn inside the tick can
  // close_conn, so the tick never iterates `conns` directly.
  IoLoop::TimerId hb_timer = 0;
  std::vector<int> hb_scratch;

  [[nodiscard]] bool threaded() const { return owned_loop != nullptr; }
};

AllocatorService::AllocatorService(IoLoop& loop, core::Allocator& alloc,
                                   const topo::ClosTopology& topo,
                                   ServerConfig cfg)
    : loop_(loop),
      alloc_(alloc),
      topo_(topo),
      cfg_(std::move(cfg)),
      tr_(cfg_.transport != nullptr ? cfg_.transport : &os_transport()),
      clock_(&tr_->clock()),
      epoch_(cfg_.epoch != 0 ? cfg_.epoch : claim_epoch()),
      flight_(cfg_.flight) {
  FT_CHECK(cfg_.tcp_port >= 0 || !cfg_.unix_path.empty());
  FT_CHECK(cfg_.num_shards >= 0);
  // Shard threads drive their own loops concurrently; the sim transport
  // is single-threaded by construction, so it only serves inline mode.
  FT_CHECK(cfg_.num_shards == 0 || tr_->supports_threads());
  if (cfg_.metrics != nullptr) {
    metrics_ = cfg_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  alloc_stats_ = std::make_unique<Counters>(*metrics_, "net.alloc");
  ingest_us_ = &metrics_->histo("svc.ingest_us");
  fanout_us_ = &metrics_->histo("svc.fanout_us");
  round_us_ = &metrics_->histo("svc.round_us");
  trace_marks_ = &metrics_->counter("svc.trace_marks");
  trace_echoes_ = &metrics_->counter("svc.trace_echoes");
  trace_drops_ = &metrics_->counter("svc.trace_drops");
  traced_.reserve(kMaxTraced);
  traced_pending_.reserve(kMaxTraced);
  if (cfg_.num_shards == 0) {
    inline_shard_ = std::make_unique<Shard>();
    inline_shard_->loop = &loop_;
    inline_shard_->stats =
        std::make_unique<Counters>(*metrics_, "net.inline");
    arm_heartbeat(*inline_shard_);
  } else {
    touched_shards_.assign(static_cast<std::size_t>(cfg_.num_shards),
                           false);
    alloc_wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    FT_CHECK(alloc_wake_fd_ >= 0);
    loop_.add_fd(alloc_wake_fd_, EPOLLIN, [this](std::uint32_t) {
      drain_eventfd(alloc_wake_fd_);
      for (auto& s : shards_) drain_up(*s);
    });
    for (int i = 0; i < cfg_.num_shards; ++i) {
      auto s = std::make_unique<Shard>();
      s->index = i;
      s->owned_loop = tr_->make_loop();
      s->loop = s->owned_loop.get();
      const std::string prefix = "net.shard" + std::to_string(i);
      s->stats = std::make_unique<Counters>(*metrics_, prefix);
      s->up_depth_hw = &metrics_->gauge(prefix + ".up_depth_hw");
      s->down_depth_hw = &metrics_->gauge(prefix + ".down_depth_hw");
      s->wakeup_us = &metrics_->histo(prefix + ".wakeup_to_drain_us");
      s->owned_loop->bind_metrics(*metrics_, prefix);
      s->up = std::make_unique<SpscQueue<UpEvent>>(
          cfg_.shard_queue_capacity);
      s->down = std::make_unique<SpscQueue<DownEvent>>(
          cfg_.shard_queue_capacity);
      // Small on purpose: at most kMaxTraced echoes can be in flight,
      // and a full ring just drops the echo (counted), never the rate.
      s->trace_down = std::make_unique<SpscQueue<core::TraceMarkMsg>>(
          kMaxTraced);
      s->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
      FT_CHECK(s->wake_fd >= 0);
      Shard* sp = s.get();
      s->loop->add_fd(s->wake_fd, EPOLLIN, [this, sp](std::uint32_t) {
        drain_eventfd(sp->wake_fd);
        drain_down(*sp);
      });
      // Armed before the shard thread exists, so the timer insertion
      // never races the loop.
      arm_heartbeat(*s);
      shards_.push_back(std::move(s));
    }
    shard_cpu_map_ = core::CpuMap::make(cfg_.num_shards, cfg_.pin);
    for (auto& s : shards_) {
      Shard* sp = s.get();
      // Shard i co-schedules with FlowBlock row i (§6.1): same CpuMap
      // layout as the ParallelNed workers, so the row's solver thread
      // and the I/O shard serving its endpoints share a core.
      const int cpu = shard_cpu_map_.enabled()
                          ? shard_cpu_map_.cpu_for_row(sp->index)
                          : -1;
      sp->thread = std::thread([sp, cpu] {
        if (cpu >= 0) core::CpuMap::pin_current_thread(cpu);
        sp->loop->run();
      });
    }
  }
  if (cfg_.tcp_port >= 0) setup_tcp_listener();
  if (!cfg_.unix_path.empty()) setup_unix_listener();
  if (cfg_.iteration_period_us > 0) {
    iter_timer_ = loop_.add_periodic(cfg_.iteration_period_us,
                                     [this] { run_allocation_round(); });
  }
}

AllocatorService::~AllocatorService() {
  // Stop shard threads first; after the joins every shard's state is
  // owned by this thread. stopping_ turns any in-flight push_up spin
  // into a drop so a full ring cannot wedge the join.
  stopping_.store(true, std::memory_order_release);
  for (auto& s : shards_) s->loop->stop();
  for (auto& s : shards_) {
    if (s->thread.joinable()) s->thread.join();
  }
  // Apply lifecycle events still queued, then end everything the shard
  // connections still own -- exactly as if every endpoint had sent
  // flowlet-end for each key.
  for (auto& s : shards_) drain_up(*s);
  for (auto& s : shards_) {
    // Accepted sockets still sitting in the down ring as kConn
    // handoffs were never adopted; close them here or they leak.
    DownEvent ev;
    while (s->down->try_pop(ev)) {
      if (ev.kind == DownEvent::Kind::kConn) {
        tr_->close(ev.fd);
        bump(alloc_stats_->closed);
      }
    }
  }
  for (auto& s : shards_) {
    for (auto& [fd, conn] : s->conns) {
      for (const std::uint32_t key : conn->owned_keys) {
        const auto it = key_shard_.find(key);
        if (it == key_shard_.end()) continue;  // start never applied
        FT_CHECK(alloc_.flowlet_end(key));
        key_shard_.erase(it);
        bump(alloc_stats_->flowlet_ends);
      }
      tr_->close(fd);
      bump(s->stats->closed);
    }
    s->conns.clear();
    if (s->wake_fd >= 0) ::close(s->wake_fd);
  }
  // Anything still in key_shard_ lost its flowlet-end on the way here
  // (e.g. a kEnd dropped by push_up while stopping): end it so the
  // caller-owned allocator is left clean.
  for (const auto& [key, shard_idx] : key_shard_) {
    FT_CHECK(alloc_.flowlet_end(key));
    bump(alloc_stats_->flowlet_ends);
  }
  key_shard_.clear();
  if (inline_shard_) {
    while (!inline_shard_->conns.empty()) {
      close_conn(*inline_shard_, inline_shard_->conns.begin()->first);
    }
  }
  if (inline_shard_ && inline_shard_->hb_timer != 0) {
    loop_.cancel_timer(inline_shard_->hb_timer);
  }
  if (iter_timer_ != 0) loop_.cancel_timer(iter_timer_);
  for (const auto& [fd, id] : accept_retry_timer_) loop_.cancel_timer(id);
  if (alloc_wake_fd_ >= 0) {
    loop_.del_fd(alloc_wake_fd_);
    ::close(alloc_wake_fd_);
  }
  for (const int fd : {tcp_listen_fd_, unix_listen_fd_}) {
    if (fd >= 0) {
      loop_.del_fd(fd);
      tr_->close(fd);
    }
  }
  if (!cfg_.unix_path.empty()) tr_->unlink_path(cfg_.unix_path);
}

void AllocatorService::setup_tcp_listener() {
  tcp_listen_fd_ =
      tr_->listen_tcp(cfg_.tcp_port, cfg_.listen_any, &tcp_port_);
  FT_CHECK(tcp_listen_fd_ >= 0);
  loop_.add_fd(tcp_listen_fd_, EPOLLIN,
               [this](std::uint32_t) { accept_ready(tcp_listen_fd_); });
}

void AllocatorService::setup_unix_listener() {
  unix_listen_fd_ = tr_->listen_unix(cfg_.unix_path);
  FT_CHECK(unix_listen_fd_ >= 0);
  loop_.add_fd(unix_listen_fd_, EPOLLIN,
               [this](std::uint32_t) { accept_ready(unix_listen_fd_); });
}

void AllocatorService::accept_ready(int listen_fd) {
  while (true) {
    const int fd = tr_->accept(listen_fd);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Out of fds: the pending connection stays in the backlog and
        // keeps the listener level-triggered readable, which would spin
        // the loop at 100% CPU. Mute the listener and retry shortly.
        loop_.mod_fd(listen_fd, 0);
        accept_retry_timer_[listen_fd] =
            loop_.add_timer(100'000, [this, listen_fd] {
              if (loop_.watching(listen_fd)) {
                loop_.mod_fd(listen_fd, EPOLLIN);
              }
            });
        return;
      }
      return;  // transient accept failure; keep serving
    }
    if (listen_fd == tcp_listen_fd_) tr_->set_nodelay(fd);
    bump(alloc_stats_->accepted);
    if (inline_shard_) {
      adopt_conn(*inline_shard_, fd);
      continue;
    }
    // Round-robin handoff: the shard registers the fd on its own loop.
    Shard& s = *shards_[next_shard_];
    next_shard_ = (next_shard_ + 1) % shards_.size();
    DownEvent ev;
    ev.kind = DownEvent::Kind::kConn;
    ev.fd = fd;
    if (push_down(s, ev)) {
      wake_shard(s);
    } else {
      tr_->close(fd);  // shard wedged at capacity; shed the connection
      bump(alloc_stats_->closed);  // keep accepted - closed = live
      bump(alloc_stats_->queue_drops);
    }
  }
}

void AllocatorService::adopt_conn(Shard& s, int fd) {
  if (cfg_.send_buffer_bytes > 0) {
    tr_->set_sndbuf(fd, cfg_.send_buffer_bytes);
  }
  auto conn = std::make_unique<Connection>(cfg_.max_frame_payload);
  conn->svc = this;
  conn->shard = &s;
  conn->fd = fd;
  conn->last_rx_us = clock_->now_us();
  Connection* c = conn.get();
  s.conns.emplace(fd, std::move(conn));
  s.num_conns.store(s.conns.size(), std::memory_order_relaxed);
  s.loop->add_fd(
      fd, EPOLLIN,
      [this, &s, c](std::uint32_t ev) { conn_ready(s, *c, ev); });
}

void AllocatorService::conn_ready(Shard& s, Connection& c,
                                  std::uint32_t events) {
  const int fd = c.fd;  // c may be destroyed by close_conn below
  const auto done = [&] {
    if (s.kick_alloc) {
      s.kick_alloc = false;
      note_kick(s);
      kick_eventfd(alloc_wake_fd_);
    }
  };
  if (events & (EPOLLHUP | EPOLLERR)) {
    close_conn(s, fd);
    done();
    return;
  }
  if (events & EPOLLOUT) {
    try_write(s, c);
    if (!s.conns.contains(fd)) {
      done();
      return;
    }
  }
  if (events & EPOLLIN) {
    std::uint8_t buf[64 * 1024];
    while (true) {
      const std::int64_t n = tr_->read(c.fd, buf, sizeof buf);
      bump(s.stats->recv_calls);
      if (n > 0) {
        bump_by(s.stats->bytes_in, n);
        c.last_rx_us = clock_->now_us();
        if (!c.parser.feed({buf, static_cast<std::size_t>(n)}, c)) {
          bump(s.stats->protocol_errors);
          close_conn(s, c.fd);
          break;
        }
        if (static_cast<std::size_t>(n) < sizeof buf) break;
        continue;
      }
      if (n == 0) {
        close_conn(s, c.fd);
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      close_conn(s, c.fd);
      break;
    }
  }
  done();
}

bool AllocatorService::resolve_route(
    const core::FlowletStartMsg& m,
    std::array<LinkId, core::kMaxRouteLinks>& route,
    std::uint8_t& len) const {
  const auto hosts = topo_.num_hosts();
  if (m.src_host >= hosts || m.dst_host >= hosts ||
      m.src_host == m.dst_host) {
    return false;
  }
  const auto path = topo_.host_path(topo_.host(m.src_host),
                                    topo_.host(m.dst_host), m.flow_key);
  len = 0;
  for (const LinkId l : path) {
    FT_CHECK(len < core::kMaxRouteLinks);
    route[len++] = l;
  }
  return len > 0;
}

void AllocatorService::handle_start(Shard& s, Connection& c,
                                    const core::FlowletStartMsg& m) {
  std::array<LinkId, core::kMaxRouteLinks> route;
  std::uint8_t len = 0;
  const auto owner = s.key_owner.find(m.flow_key);
  if (owner != s.key_owner.end()) {
    if (owner->second.conn == &c) {
      // Registration refresh: the owning agent re-sent the start, which
      // means it never saw a rate for this flow on this connection (the
      // update died in a fault window, or the original batch raced a
      // restart). Re-arm unconditional notification so the next round
      // re-emits the rate -- without this, the threshold filter would
      // starve the flow until its rate drifted.
      bump(s.stats->replayed_starts);
      if (!s.threaded()) {
        alloc_.invalidate_notification(m.flow_key);
      } else {
        UpEvent ev;
        ev.kind = UpEvent::Kind::kRefresh;
        ev.key = m.flow_key;
        push_up(s, ev);
      }
      return;
    }
    // Owned by another connection (stale owner from a dying socket, or
    // a genuine duplicate key): reject as before. Once the dead owner
    // is culled its flows end, and the agent's next refresh wins.
    bump(s.stats->rejected_starts);
    return;
  }
  if (!resolve_route(m, route, len)) {
    bump(s.stats->rejected_starts);
    return;
  }
  if (!s.threaded()) {
    const double weight =
        1e9 * (m.weight_milli == 0 ? 1000 : m.weight_milli) / 1000.0;
    if (!alloc_.flowlet_start(m.flow_key,
                              std::span<const LinkId>(route.data(), len),
                              core::Utility::log_utility(weight))) {
      bump(s.stats->rejected_starts);
      return;
    }
    s.key_owner.emplace(m.flow_key, Shard::Owner{&c, 0});
    c.owned_keys.insert(m.flow_key);
    bump(s.stats->flowlet_starts);
    return;
  }
  // Tentative ownership: the allocation thread is the cross-shard
  // authority and sends kReject to undo a duplicate.
  s.key_owner.emplace(m.flow_key, Shard::Owner{&c, ++s.next_seq});
  c.owned_keys.insert(m.flow_key);
  UpEvent ev;
  ev.kind = UpEvent::Kind::kStart;
  ev.key = m.flow_key;
  ev.seq = s.next_seq;
  ev.weight_milli = m.weight_milli;
  ev.route_len = len;
  for (std::uint8_t i = 0; i < len; ++i) ev.route[i] = route[i].value();
  push_up(s, ev);
}

void AllocatorService::handle_end(Shard& s, Connection& c,
                                  const core::FlowletEndMsg& m) {
  const auto it = s.key_owner.find(m.flow_key);
  if (it == s.key_owner.end() || it->second.conn != &c) {
    bump(s.stats->unknown_ends);
    return;
  }
  s.key_owner.erase(it);
  c.owned_keys.erase(m.flow_key);
  if (!s.threaded()) {
    FT_CHECK(alloc_.flowlet_end(m.flow_key));
    bump(s.stats->flowlet_ends);
    if (!traced_.empty()) traced_.erase(m.flow_key);
    return;
  }
  UpEvent ev;
  ev.kind = UpEvent::Kind::kEnd;
  ev.key = m.flow_key;
  push_up(s, ev);
}

void AllocatorService::handle_trace_mark(Shard& s,
                                         const core::TraceMarkMsg& m) {
  bump(*trace_marks_);
  const std::int64_t t_ingest = obs::now_ns();
  // Only flows this shard owns can complete the loop (the mark follows
  // its flowlet_start in the same batch, so ownership -- tentative in
  // threaded mode -- is already registered when it arrives).
  if (!s.key_owner.contains(m.flow_key)) {
    bump(*trace_drops_);
    return;
  }
  if (!s.threaded()) {
    if (traced_.size() >= kMaxTraced) {
      bump(*trace_drops_);
      return;
    }
    TraceCtx ctx;
    ctx.trace_id = m.trace_id;
    ctx.t_agent_send_ns = m.t_ns[core::kHopAgentSend];
    ctx.t_shard_ingest_ns = t_ingest;
    if (traced_.emplace(m.flow_key, ctx)) {
      traced_pending_.push_back(m.flow_key);
    }
    return;
  }
  UpEvent ev;
  ev.kind = UpEvent::Kind::kTrace;
  ev.key = m.flow_key;
  ev.trace_id = m.trace_id;
  ev.t_origin_ns = m.t_ns[core::kHopAgentSend];
  ev.t_ingest_ns = t_ingest;
  push_up(s, ev);
}

void AllocatorService::handle_heartbeat(Shard& s,
                                        const core::HeartbeatMsg&) {
  // The payload is informational (agents advertise no lease); what
  // matters is the bytes themselves, which conn_ready already folded
  // into last_rx_us before the parser dispatched here.
  bump(s.stats->heartbeats_received);
}

void AllocatorService::arm_heartbeat(Shard& s) {
  if (cfg_.heartbeat_period_us <= 0 && cfg_.peer_timeout_us <= 0) return;
  // Dead-peer detection wants to fire a few times per timeout window
  // even when outbound heartbeats are off.
  std::int64_t period = cfg_.heartbeat_period_us;
  if (period <= 0) period = std::max<std::int64_t>(cfg_.peer_timeout_us / 4, 1);
  Shard* sp = &s;
  s.hb_timer = s.loop->add_periodic(period, [this, sp] {
    heartbeat_tick(*sp);
  });
}

void AllocatorService::heartbeat_tick(Shard& s) {
  const std::int64_t now = clock_->now_us();
  // Snapshot fds first: flushing a heartbeat can close_conn (dead
  // socket, outbox cap), and culling a timed-out peer certainly does.
  s.hb_scratch.clear();
  for (const auto& [fd, conn] : s.conns) s.hb_scratch.push_back(fd);
  for (const int fd : s.hb_scratch) {
    const auto it = s.conns.find(fd);
    if (it == s.conns.end()) continue;
    Connection& c = *it->second;
    if (cfg_.peer_timeout_us > 0 &&
        now - c.last_rx_us > cfg_.peer_timeout_us) {
      // Radio silence past the deadline: the endpoint is gone (agents
      // heartbeat whenever they are alive), so end its flows and free
      // the slots now rather than waiting out the TCP stack.
      bump(s.stats->peer_timeouts);
      close_conn(s, fd);
      continue;
    }
    if (cfg_.heartbeat_period_us > 0) {
      // Flushed immediately below: a batch the tick opens must not
      // linger if no round fanout ever touches this connection again.
      c.writer.add(core::HeartbeatMsg{
          obs::now_ns(), static_cast<std::uint32_t>(cfg_.rate_lease_us),
          epoch_});
      bump(s.stats->heartbeats_sent);
      flush_conn(s, c);
    }
  }
  // close_conn on a threaded shard pushed kEnd events up; mirror
  // conn_ready's deferred wakeup so the allocation thread drains them.
  if (s.kick_alloc) {
    s.kick_alloc = false;
    note_kick(s);
    kick_eventfd(alloc_wake_fd_);
  }
}

void AllocatorService::queue_trace_echo(Shard& s, core::TraceMarkMsg mark) {
  const auto it = s.key_owner.find(mark.flow_key);
  if (it == s.key_owner.end()) {  // flow ended while the echo was queued
    bump(*trace_drops_);
    return;
  }
  Connection& c = *it->second.conn;
  if (c.writer.empty()) s.touched.push_back(c.fd);
  mark.t_ns[core::kHopFanoutWrite] = obs::now_ns();
  c.writer.add(mark);
  bump(*trace_echoes_);
  if (c.writer.pending_bytes() >= cfg_.flush_chunk_bytes) {
    flush_conn(s, c);
  }
}

void AllocatorService::push_up(Shard& s, const UpEvent& ev) {
  // Lifecycle events are lossless: spin until the allocation thread
  // drains (it drains on every wakeup and at every round start). The
  // periodic re-kick covers an allocation thread parked in epoll_wait.
  std::uint32_t spins = 0;
  while (!s.up->try_push(ev)) {
    if (stopping_.load(std::memory_order_acquire)) {
      bump(s.stats->queue_drops);
      return;
    }
    if ((spins++ & 0x3FF) == 0) {
      note_kick(s);
      kick_eventfd(alloc_wake_fd_);
    }
    std::this_thread::yield();
  }
  s.kick_alloc = true;
  if (s.up_depth_hw != nullptr) {
    s.up_depth_hw->update_max(
        static_cast<std::int64_t>(s.up->size_approx()));
  }
}

bool AllocatorService::push_down(Shard& s, const DownEvent& ev) {
  // Bounded: the shard may itself be blocked in push_up waiting for us,
  // so the allocation thread must never wait forever. Every caller
  // handles a false return (dropped rate updates are re-armed through
  // invalidate_notification; a dropped kConn is closed; a dropped
  // kReject leaves a stale shard entry that conn close cleans up).
  for (std::uint32_t spin = 0; spin < (1u << 14); ++spin) {
    if (s.down->try_push(ev)) {
      if (s.down_depth_hw != nullptr) {
        s.down_depth_hw->update_max(
            static_cast<std::int64_t>(s.down->size_approx()));
      }
      return true;
    }
    if ((spin & 0xFF) == 0) wake_shard(s);
    std::this_thread::yield();
  }
  return false;
}

void AllocatorService::note_kick(Shard& s) {
  // Stamp the first kick of a kick->drain cycle; drain_up consumes the
  // stamp, so the histogram measures how long queued events waited for
  // the allocation thread to wake (scheduling + epoll dispatch). RAW
  // clock (obs::now_ns) like every other cross-thread trace delta.
  if (s.wakeup_us == nullptr) return;
  std::int64_t expect = 0;
  s.kick_t_ns.compare_exchange_strong(expect, obs::now_ns(),
                                      std::memory_order_relaxed);
}

void AllocatorService::wake_shard(Shard& s) { kick_eventfd(s.wake_fd); }

void AllocatorService::apply_start(Shard& s, const UpEvent& ev) {
  const auto reject = [&] {
    bump(alloc_stats_->rejected_starts);
    DownEvent rej;
    rej.kind = DownEvent::Kind::kReject;
    rej.key = ev.key;
    rej.seq = ev.seq;
    if (push_down(s, rej)) {
      wake_shard(s);
    } else {
      // The shard keeps a stale owner entry until the connection
      // closes; ends for it resolve as unknown here.
      bump(alloc_stats_->queue_drops);
    }
  };
  if (key_shard_.contains(ev.key)) {
    reject();
    return;
  }
  std::array<LinkId, core::kMaxRouteLinks> route;
  for (std::uint8_t i = 0; i < ev.route_len; ++i) {
    route[i] = LinkId(ev.route[i]);
  }
  const double weight =
      1e9 * (ev.weight_milli == 0 ? 1000 : ev.weight_milli) / 1000.0;
  if (!alloc_.flowlet_start(
          ev.key, std::span<const LinkId>(route.data(), ev.route_len),
          core::Utility::log_utility(weight))) {
    reject();
    return;
  }
  key_shard_.emplace(ev.key, static_cast<std::uint32_t>(s.index));
  bump(alloc_stats_->flowlet_starts);
}

void AllocatorService::drain_up(Shard& s) {
  if (s.wakeup_us != nullptr) {
    const std::int64_t t =
        s.kick_t_ns.exchange(0, std::memory_order_relaxed);
    if (t > 0) {
      const double us =
          static_cast<double>(obs::now_ns() - t) / 1000.0;
      s.wakeup_us->record_signed(static_cast<std::int64_t>(us));
      round_wakeup_max_us_ = std::max(round_wakeup_max_us_, us);
    }
    round_up_hw_ = std::max(round_up_hw_, s.up->size_approx());
  }
  UpEvent ev;
  while (s.up->try_pop(ev)) {
    ++round_churn_;
    if (ev.kind == UpEvent::Kind::kStart) {
      apply_start(s, ev);
      continue;
    }
    if (ev.kind == UpEvent::Kind::kRefresh) {
      // Registration refresh forwarded from a shard: re-arm the flow's
      // notification (only if this shard's start actually won the key).
      const auto it = key_shard_.find(ev.key);
      if (it != key_shard_.end() &&
          it->second == static_cast<std::uint32_t>(s.index)) {
        alloc_.invalidate_notification(ev.key);
      }
      continue;
    }
    if (ev.kind == UpEvent::Kind::kTrace) {
      // Adopt the context only if this shard's start actually won the
      // key (a cross-shard duplicate was rejected above and its trace
      // dies with it). FIFO order guarantees the kStart was applied
      // before its mark.
      const auto it = key_shard_.find(ev.key);
      if (it == key_shard_.end() ||
          it->second != static_cast<std::uint32_t>(s.index) ||
          traced_.size() >= kMaxTraced) {
        bump(*trace_drops_);
        continue;
      }
      TraceCtx ctx;
      ctx.trace_id = ev.trace_id;
      ctx.t_agent_send_ns = ev.t_origin_ns;
      ctx.t_shard_ingest_ns = ev.t_ingest_ns;
      if (traced_.emplace(ev.key, ctx)) {
        traced_pending_.push_back(ev.key);
      }
      continue;
    }
    const auto it = key_shard_.find(ev.key);
    if (it == key_shard_.end() ||
        it->second != static_cast<std::uint32_t>(s.index)) {
      bump(alloc_stats_->unknown_ends);
      continue;
    }
    FT_CHECK(alloc_.flowlet_end(ev.key));
    key_shard_.erase(it);
    bump(alloc_stats_->flowlet_ends);
    if (!traced_.empty()) traced_.erase(ev.key);
  }
}

void AllocatorService::queue_update(Shard& s, std::uint32_t key,
                                    std::uint16_t rate_code) {
  const auto it = s.key_owner.find(key);
  if (it == s.key_owner.end()) {
    // Ended or culled between emission and queueing: the update dies
    // here, so the drop must be visible to the conservation oracle.
    bump(s.stats->updates_orphaned);
    return;
  }
  Connection& c = *it->second.conn;
  if (c.writer.empty()) s.touched.push_back(c.fd);
  c.writer.add(core::RateUpdateMsg{key, rate_code, epoch_});
  bump(s.stats->updates_sent);
  // Cut the batch before it can overrun the frame size limit (an
  // endpoint may own arbitrarily many flows). flush_conn can close the
  // connection on a dead socket; lookups go through key_owner, which
  // close_conn scrubs, so the caller's iteration stays safe.
  if (c.writer.pending_bytes() >= cfg_.flush_chunk_bytes) {
    flush_conn(s, c);
  }
}

void AllocatorService::flush_touched(Shard& s) {
  // Batched push: one frame per endpoint per round/drain. Lookups go
  // back through conns because flush_conn may close (erase) a
  // connection, and a chunked flush in queue_update may have left a fd
  // in the list twice (harmless: the second visit sees an empty
  // writer).
  for (const int fd : s.touched) {
    const auto it = s.conns.find(fd);
    if (it != s.conns.end() && !it->second->writer.empty()) {
      flush_conn(s, *it->second);
    }
  }
  s.touched.clear();
}

void AllocatorService::drain_down(Shard& s) {
  s.touched.clear();
  DownEvent ev;
  while (s.down->try_pop(ev)) {
    switch (ev.kind) {
      case DownEvent::Kind::kConn:
        adopt_conn(s, ev.fd);
        break;
      case DownEvent::Kind::kRate:
        queue_update(s, ev.key, ev.rate_code);
        break;
      case DownEvent::Kind::kReject: {
        // Only cancel the exact attempt this reject answers (see
        // Shard::Owner).
        const auto it = s.key_owner.find(ev.key);
        if (it == s.key_owner.end() || it->second.seq != ev.seq) break;
        it->second.conn->owned_keys.erase(ev.key);
        s.key_owner.erase(it);
        break;
      }
    }
  }
  // Echo completed trace marks after the rate drain so a mark lands
  // behind its flow's rate record when both arrive in the same cycle.
  if (s.trace_down) {
    core::TraceMarkMsg mark;
    while (s.trace_down->try_pop(mark)) queue_trace_echo(s, mark);
  }
  flush_touched(s);
  if (s.kick_alloc) {
    s.kick_alloc = false;
    note_kick(s);
    kick_eventfd(alloc_wake_fd_);
  }
}

void AllocatorService::run_allocation_round() {
  // Phase attribution: ingest (shard ring drain) -> solve + emit (timed
  // inside run_iteration as core.solve_us / core.emit_us) -> fanout
  // (update push + flush). round_us covers the whole thing; the
  // round_latency_us() ring keeps its historical meaning (post-ingest).
  // All stamps on the RAW trace clock (obs::now_ns) so the flight record
  // and the e2e trace hops line up exactly.
  const std::int64_t t_in = obs::now_ns();
  for (auto& s : shards_) drain_up(*s);
  const std::int64_t t0 = obs::now_ns();
  ingest_us_->record_signed((t0 - t_in) / 1000);
  if (!traced_pending_.empty()) {
    // Stamp the round-pickup hop for contexts that arrived since the
    // last round: this is the round whose solve their update rides.
    for (const std::uint32_t key : traced_pending_) {
      TraceCtx* ctx = traced_.find(key);
      if (ctx != nullptr && ctx->t_round_pickup_ns == 0) {
        ctx->t_round_pickup_ns = t0;
      }
    }
    traced_pending_.clear();
  }
  updates_scratch_.clear();
  alloc_.run_iteration(updates_scratch_);
  const std::int64_t t1 = obs::now_ns();
  bump(alloc_stats_->iterations);
  if (cfg_.stall_every_rounds > 0 &&
      (round_id_ + 1) % cfg_.stall_every_rounds == 0) {
    // Injected fault (see ServerConfig): burn stall_us inside the fanout
    // phase so the flight recorder has a known-slow round to promote.
    const std::int64_t until = obs::now_ns() + cfg_.stall_us * 1000;
    while (obs::now_ns() < until) {
    }
  }
  // Builds the echo for a traced flow whose first rate update is being
  // fanned out this round: service-side hops completed from the parked
  // context plus the allocator's solve/emit boundary stamps; the
  // fanout-write hop is stamped by whoever writes it into the batch.
  const auto make_echo = [this](std::uint32_t key, const TraceCtx& ctx) {
    const core::Allocator::RoundStamps& st = alloc_.last_round_stamps();
    core::TraceMarkMsg mark;
    mark.flow_key = key;
    mark.trace_id = ctx.trace_id;
    mark.t_ns[core::kHopAgentSend] = ctx.t_agent_send_ns;
    mark.t_ns[core::kHopShardIngest] = ctx.t_shard_ingest_ns;
    mark.t_ns[core::kHopRoundPickup] = ctx.t_round_pickup_ns;
    mark.t_ns[core::kHopSolveDone] = st.solve_end_ns;
    mark.t_ns[core::kHopEmitDone] = st.emit_end_ns;
    return mark;
  };
  std::uint32_t batches = 0;
  if (inline_shard_) {
    Shard& s = *inline_shard_;
    s.touched.clear();
    for (const core::RateUpdate& u : updates_scratch_) {
      const auto key = static_cast<std::uint32_t>(u.key);
      queue_update(s, key, u.rate_code);
      if (!traced_.empty()) {
        if (const TraceCtx* ctx = traced_.find(key)) {
          queue_trace_echo(s, make_echo(key, *ctx));
          traced_.erase(key);
        }
      }
    }
    batches = static_cast<std::uint32_t>(s.touched.size());
    flush_touched(s);
  } else {
    std::fill(touched_shards_.begin(), touched_shards_.end(), false);
    for (const core::RateUpdate& u : updates_scratch_) {
      const auto key = static_cast<std::uint32_t>(u.key);
      const auto it = key_shard_.find(key);
      if (it == key_shard_.end()) continue;
      DownEvent ev;
      ev.kind = DownEvent::Kind::kRate;
      ev.key = key;
      ev.rate_code = u.rate_code;
      if (push_down(*shards_[it->second], ev)) {
        touched_shards_[it->second] = true;
        if (!traced_.empty()) {
          if (const TraceCtx* ctx = traced_.find(key)) {
            // Echo rides its own ring; a full ring costs the echo only,
            // never the rate.
            if (!shards_[it->second]->trace_down->try_push(
                    make_echo(key, *ctx))) {
              bump(*trace_drops_);
            }
            traced_.erase(key);
          }
        }
      } else {
        // The emitted update is gone and the allocator already recorded
        // it as notified; un-record it so the next round re-emits
        // instead of the endpoint keeping a stale rate until the
        // allocation drifts past the threshold again.
        alloc_.invalidate_notification(key);
        bump(alloc_stats_->queue_drops);
        ++round_queue_drops_;
      }
    }
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (touched_shards_[i]) {
        wake_shard(*shards_[i]);
        ++batches;
      }
    }
  }
  const std::int64_t t2 = obs::now_ns();
  fanout_us_->record_signed((t2 - t1) / 1000);
  round_us_->record_signed((t2 - t_in) / 1000);
  if (obs::PhaseTracer::enabled()) {
    obs::PhaseTracer::record("svc.ingest", t_in / 1000, (t0 - t_in) / 1000);
    obs::PhaseTracer::record("svc.fanout", t1 / 1000, (t2 - t1) / 1000);
  }
  record_round_latency(static_cast<double>(t2 - t0) / 1000.0);

  const core::Allocator::RoundStamps& st = alloc_.last_round_stamps();
  obs::RoundRecord rec;
  rec.round = round_id_++;
  rec.t_start_ns = t_in;
  rec.ingest_us = static_cast<double>(t0 - t_in) / 1000.0;
  rec.solve_us =
      static_cast<double>(st.solve_end_ns - st.solve_start_ns) / 1000.0;
  rec.emit_us =
      static_cast<double>(st.emit_end_ns - st.solve_end_ns) / 1000.0;
  rec.fanout_us = static_cast<double>(t2 - t1) / 1000.0;
  rec.round_us = static_cast<double>(t2 - t_in) / 1000.0;
  rec.wakeup_us = round_wakeup_max_us_;
  rec.band_max_us = alloc_.backend().last_band_max_us();
  rec.churn_events = round_churn_;
  rec.updates = static_cast<std::uint32_t>(updates_scratch_.size());
  rec.batches = batches;
  rec.queue_drops = static_cast<std::uint32_t>(
      std::min<std::uint64_t>(round_queue_drops_, 0xFFFFFFFFu));
  rec.up_ring_hw = static_cast<std::uint16_t>(
      std::min<std::size_t>(round_up_hw_, 0xFFFF));
  std::size_t down_hw = 0;
  for (const auto& s : shards_) {
    down_hw = std::max(down_hw, s->down->size_approx());
  }
  rec.down_ring_hw = static_cast<std::uint16_t>(
      std::min<std::size_t>(down_hw, 0xFFFF));
  flight_.record(rec);
  round_churn_ = 0;
  round_wakeup_max_us_ = 0.0;
  round_up_hw_ = 0;
  round_queue_drops_ = 0;
}

void AllocatorService::flush_conn(Shard& s, Connection& c) {
  const std::size_t framed = c.writer.flush(c.outbox);
  if (framed == 0) return;
  bump(s.stats->frames_out);
  bump_by(s.stats->bytes_out, static_cast<std::int64_t>(framed));
  bump_by(s.stats->wire_bytes_out,
          wire_bytes_tcp_stream(static_cast<std::int64_t>(framed)));
  const std::uint64_t coalesced = c.writer.stats().coalesced_updates;
  bump_by(s.stats->updates_coalesced, coalesced - c.coalesced_reported);
  c.coalesced_reported = coalesced;
  if (c.outbox.size() - c.out_off > cfg_.max_outbox_bytes) {
    // The peer has stopped reading; drop it rather than buffer forever.
    close_conn(s, c.fd);
    return;
  }
  try_write(s, c);
}

void AllocatorService::try_write(Shard& s, Connection& c) {
  while (c.out_off < c.outbox.size()) {
    const std::int64_t n = tr_->write(c.fd, c.outbox.data() + c.out_off,
                                      c.outbox.size() - c.out_off);
    bump(s.stats->send_calls);
    if (n > 0) {
      c.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!c.epollout_armed) {
        s.loop->mod_fd(c.fd, EPOLLIN | EPOLLOUT);
        c.epollout_armed = true;
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    close_conn(s, c.fd);
    return;
  }
  c.outbox.clear();
  c.out_off = 0;
  if (c.epollout_armed) {
    s.loop->mod_fd(c.fd, EPOLLIN);
    c.epollout_armed = false;
  }
}

void AllocatorService::close_conn(Shard& s, int fd) {
  const auto it = s.conns.find(fd);
  if (it == s.conns.end()) return;
  Connection& c = *it->second;
  // The endpoint is gone: everything it owned ends now, exactly as if it
  // had sent flowlet-end for each key.
  for (const std::uint32_t key : c.owned_keys) {
    s.key_owner.erase(key);
    if (s.threaded()) {
      UpEvent ev;
      ev.kind = UpEvent::Kind::kEnd;
      ev.key = key;
      push_up(s, ev);
    } else {
      FT_CHECK(alloc_.flowlet_end(key));
      bump(s.stats->flowlet_ends);
    }
  }
  s.loop->del_fd(fd);
  tr_->close(fd);
  s.conns.erase(it);
  s.num_conns.store(s.conns.size(), std::memory_order_relaxed);
  bump(s.stats->closed);
}

ServiceStats AllocatorService::stats() const {
  ServiceStats out;
  alloc_stats_->add_to(out);
  if (inline_shard_) inline_shard_->stats->add_to(out);
  for (const auto& s : shards_) s->stats->add_to(out);
  return out;
}

std::size_t AllocatorService::num_connections() const {
  std::size_t n =
      inline_shard_ ? inline_shard_->conns.size() : 0;
  for (const auto& s : shards_) {
    n += s->num_conns.load(std::memory_order_relaxed);
  }
  return n;
}

void AllocatorService::record_round_latency(double us) {
  round_lat_us_[round_lat_count_ % kLatencyCap] = us;
  ++round_lat_count_;
}

std::vector<double> AllocatorService::round_latency_us() const {
  std::vector<double> out;
  const std::uint64_t n = round_lat_count_;
  const std::uint64_t have = std::min<std::uint64_t>(n, kLatencyCap);
  out.reserve(have);
  for (std::uint64_t i = n - have; i < n; ++i) {
    out.push_back(round_lat_us_[i % kLatencyCap]);
  }
  return out;
}

}  // namespace ft::net
