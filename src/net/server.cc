#include "net/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.h"
#include "common/wire.h"

namespace ft::net {
namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  FT_CHECK(flags >= 0);
  FT_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

}  // namespace

// One endpoint connection. Routes decoded records straight into the
// service (MessageSink keeps the parser callback-free).
struct AllocatorService::Connection : MessageSink {
  AllocatorService* svc = nullptr;
  int fd = -1;
  FrameParser parser;
  FrameWriter writer;
  std::vector<std::uint8_t> outbox;
  std::size_t out_off = 0;
  bool epollout_armed = false;
  std::uint64_t coalesced_reported = 0;
  std::unordered_set<std::uint32_t> owned_keys;

  explicit Connection(std::size_t max_payload) : parser(max_payload) {}

  void on_flowlet_start(const core::FlowletStartMsg& m) override {
    svc->handle_start(*this, m);
  }
  void on_flowlet_end(const core::FlowletEndMsg& m) override {
    svc->handle_end(*this, m);
  }
  // Endpoints never send rate updates; MessageSink's default ignores
  // them, which keeps an agent bug from taking the service down.
};

AllocatorService::AllocatorService(EpollLoop& loop, core::Allocator& alloc,
                                   const topo::ClosTopology& topo,
                                   ServerConfig cfg)
    : loop_(loop), alloc_(alloc), topo_(topo), cfg_(std::move(cfg)) {
  FT_CHECK(cfg_.tcp_port >= 0 || !cfg_.unix_path.empty());
  if (cfg_.tcp_port >= 0) setup_tcp_listener();
  if (!cfg_.unix_path.empty()) setup_unix_listener();
  if (cfg_.iteration_period_us > 0) {
    iter_timer_ = loop_.add_periodic(cfg_.iteration_period_us,
                                     [this] { run_allocation_round(); });
  }
}

AllocatorService::~AllocatorService() {
  while (!conns_.empty()) close_conn(conns_.begin()->first);
  if (iter_timer_ != 0) loop_.cancel_timer(iter_timer_);
  for (const auto& [fd, id] : accept_retry_timer_) loop_.cancel_timer(id);
  for (const int fd : {tcp_listen_fd_, unix_listen_fd_}) {
    if (fd >= 0) {
      loop_.del_fd(fd);
      ::close(fd);
    }
  }
  if (!cfg_.unix_path.empty()) ::unlink(cfg_.unix_path.c_str());
}

void AllocatorService::setup_tcp_listener() {
  tcp_listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  FT_CHECK(tcp_listen_fd_ >= 0);
  const int one = 1;
  ::setsockopt(tcp_listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr =
      htonl(cfg_.listen_any ? INADDR_ANY : INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.tcp_port));
  FT_CHECK(::bind(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof addr) == 0);
  FT_CHECK(::listen(tcp_listen_fd_, 128) == 0);
  socklen_t len = sizeof addr;
  FT_CHECK(::getsockname(tcp_listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                         &len) == 0);
  tcp_port_ = ntohs(addr.sin_port);
  set_nonblocking(tcp_listen_fd_);
  loop_.add_fd(tcp_listen_fd_, EPOLLIN,
               [this](std::uint32_t) { accept_ready(tcp_listen_fd_); });
}

void AllocatorService::setup_unix_listener() {
  unix_listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  FT_CHECK(unix_listen_fd_ >= 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  FT_CHECK(cfg_.unix_path.size() < sizeof addr.sun_path);
  std::strncpy(addr.sun_path, cfg_.unix_path.c_str(),
               sizeof addr.sun_path - 1);
  ::unlink(cfg_.unix_path.c_str());
  FT_CHECK(::bind(unix_listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof addr) == 0);
  FT_CHECK(::listen(unix_listen_fd_, 128) == 0);
  set_nonblocking(unix_listen_fd_);
  loop_.add_fd(unix_listen_fd_, EPOLLIN,
               [this](std::uint32_t) { accept_ready(unix_listen_fd_); });
}

void AllocatorService::accept_ready(int listen_fd) {
  while (true) {
    const int fd = ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE) {
        // Out of fds: the pending connection stays in the backlog and
        // keeps the listener level-triggered readable, which would spin
        // the loop at 100% CPU. Mute the listener and retry shortly.
        loop_.mod_fd(listen_fd, 0);
        accept_retry_timer_[listen_fd] =
            loop_.add_timer(100'000, [this, listen_fd] {
              if (loop_.watching(listen_fd)) {
                loop_.mod_fd(listen_fd, EPOLLIN);
              }
            });
        return;
      }
      return;  // transient accept failure; keep serving
    }
    set_nonblocking(fd);
    if (listen_fd == tcp_listen_fd_) {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    }
    auto conn = std::make_unique<Connection>(cfg_.max_frame_payload);
    conn->svc = this;
    conn->fd = fd;
    Connection* c = conn.get();
    conns_.emplace(fd, std::move(conn));
    loop_.add_fd(fd, EPOLLIN,
                 [this, c](std::uint32_t ev) { conn_ready(*c, ev); });
    ++stats_.accepted;
  }
}

void AllocatorService::conn_ready(Connection& c, std::uint32_t events) {
  const int fd = c.fd;  // c may be destroyed by close_conn below
  if (events & (EPOLLHUP | EPOLLERR)) {
    close_conn(fd);
    return;
  }
  if (events & EPOLLOUT) {
    try_write(c);
    if (!conns_.contains(fd)) return;
  }
  if (!(events & EPOLLIN)) return;
  std::uint8_t buf[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
    if (n > 0) {
      stats_.bytes_in += n;
      if (!c.parser.feed({buf, static_cast<std::size_t>(n)}, c)) {
        ++stats_.protocol_errors;
        close_conn(c.fd);
        return;
      }
      if (static_cast<std::size_t>(n) < sizeof buf) return;
      continue;
    }
    if (n == 0) {
      close_conn(c.fd);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    close_conn(c.fd);
    return;
  }
}

void AllocatorService::handle_start(Connection& c,
                                    const core::FlowletStartMsg& m) {
  const auto hosts = topo_.num_hosts();
  if (m.src_host >= hosts || m.dst_host >= hosts ||
      m.src_host == m.dst_host || key_owner_.contains(m.flow_key)) {
    ++stats_.rejected_starts;
    return;
  }
  const auto path = topo_.host_path(topo_.host(m.src_host),
                                    topo_.host(m.dst_host), m.flow_key);
  const std::vector<LinkId> route(path.begin(), path.end());
  const double weight =
      1e9 * (m.weight_milli == 0 ? 1000 : m.weight_milli) / 1000.0;
  if (!alloc_.flowlet_start(m.flow_key, route,
                            core::Utility::log_utility(weight))) {
    ++stats_.rejected_starts;
    return;
  }
  key_owner_.emplace(m.flow_key, &c);
  c.owned_keys.insert(m.flow_key);
  ++stats_.flowlet_starts;
}

void AllocatorService::handle_end(Connection& c,
                                  const core::FlowletEndMsg& m) {
  const auto it = key_owner_.find(m.flow_key);
  if (it == key_owner_.end() || it->second != &c) {
    ++stats_.unknown_ends;
    return;
  }
  FT_CHECK(alloc_.flowlet_end(m.flow_key));
  key_owner_.erase(it);
  c.owned_keys.erase(m.flow_key);
  ++stats_.flowlet_ends;
}

void AllocatorService::run_allocation_round() {
  updates_scratch_.clear();
  alloc_.run_iteration(updates_scratch_);
  ++stats_.iterations;
  touched_scratch_.clear();
  for (const core::RateUpdate& u : updates_scratch_) {
    const auto it = key_owner_.find(static_cast<std::uint32_t>(u.key));
    if (it == key_owner_.end()) continue;
    Connection& c = *it->second;
    if (c.writer.empty()) touched_scratch_.push_back(c.fd);
    c.writer.add(core::RateUpdateMsg{static_cast<std::uint32_t>(u.key),
                                     u.rate_code});
    ++stats_.updates_sent;
    // Cut the batch before it can overrun the frame size limit (an
    // endpoint may own arbitrarily many flows). flush_conn can close
    // the connection on a dead socket; lookups above go through
    // key_owner_, which close_conn scrubs, so iteration stays safe.
    if (c.writer.pending_bytes() >= cfg_.flush_chunk_bytes) {
      flush_conn(c);
    }
  }
  // Batched push: one frame per endpoint per round, however many of its
  // flows changed rate -- only connections touched above are visited
  // (idle endpoints cost nothing). Lookups go back through conns_
  // because flush_conn may close (erase) a connection, and a chunked
  // flush above may have left a fd in the list twice (harmless: the
  // second visit sees an empty writer).
  for (const int fd : touched_scratch_) {
    const auto it = conns_.find(fd);
    if (it != conns_.end() && !it->second->writer.empty()) {
      flush_conn(*it->second);
    }
  }
}

void AllocatorService::flush_conn(Connection& c) {
  const std::size_t framed = c.writer.flush(c.outbox);
  if (framed == 0) return;
  ++stats_.frames_out;
  stats_.bytes_out += static_cast<std::int64_t>(framed);
  stats_.wire_bytes_out +=
      wire_bytes_tcp_stream(static_cast<std::int64_t>(framed));
  const std::uint64_t coalesced = c.writer.stats().coalesced_updates;
  stats_.updates_coalesced += coalesced - c.coalesced_reported;
  c.coalesced_reported = coalesced;
  if (c.outbox.size() - c.out_off > cfg_.max_outbox_bytes) {
    // The peer has stopped reading; drop it rather than buffer forever.
    close_conn(c.fd);
    return;
  }
  try_write(c);
}

void AllocatorService::try_write(Connection& c) {
  while (c.out_off < c.outbox.size()) {
    const ssize_t n = ::send(c.fd, c.outbox.data() + c.out_off,
                             c.outbox.size() - c.out_off, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!c.epollout_armed) {
        loop_.mod_fd(c.fd, EPOLLIN | EPOLLOUT);
        c.epollout_armed = true;
      }
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    close_conn(c.fd);
    return;
  }
  c.outbox.clear();
  c.out_off = 0;
  if (c.epollout_armed) {
    loop_.mod_fd(c.fd, EPOLLIN);
    c.epollout_armed = false;
  }
}

void AllocatorService::close_conn(int fd) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Connection& c = *it->second;
  // The endpoint is gone: everything it owned ends now, exactly as if it
  // had sent flowlet-end for each key.
  for (const std::uint32_t key : c.owned_keys) {
    FT_CHECK(alloc_.flowlet_end(key));
    key_owner_.erase(key);
    ++stats_.flowlet_ends;
  }
  loop_.del_fd(fd);
  ::close(fd);
  conns_.erase(it);
  ++stats_.closed;
}

}  // namespace ft::net
