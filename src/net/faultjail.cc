#include "net/faultjail.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

#include "common/check.h"
#include "net/socket_util.h"
#include "obs/metrics.h"

namespace ft::net {
namespace {

std::uint32_t get_le32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

FaultJail::FaultJail(IoLoop& loop, FaultJailConfig cfg)
    : loop_(loop), cfg_(std::move(cfg)), rng_(cfg_.seed) {
  FT_CHECK(cfg_.upstream_port >= 0 || !cfg_.upstream_unix.empty());
  listen_fd_ =
      tcp_listen(cfg_.listen_port, /*listen_any=*/false, &listen_port_);
  FT_CHECK(listen_fd_ >= 0);
  loop_.add_fd(listen_fd_, EPOLLIN,
               [this](std::uint32_t) { accept_ready(); });
}

FaultJail::~FaultJail() {
  while (!pairs_.empty()) kill_pair(pairs_.begin()->first);
  if (listen_fd_ >= 0) {
    loop_.del_fd(listen_fd_);
    ::close(listen_fd_);
  }
}

int FaultJail::dial_upstream() {
  // Blocking dials on purpose: the upstream is loopback in every drill,
  // so this either completes immediately or fails immediately (which is
  // itself the fault being drilled -- service down).
  const int fd = !cfg_.upstream_unix.empty()
                     ? unix_dial(cfg_.upstream_unix)
                     : tcp_dial(cfg_.upstream_host, cfg_.upstream_port);
  if (fd < 0) return -1;
  set_nonblocking(fd);
  return fd;
}

void FaultJail::accept_ready() {
  while (true) {
    const int cfd = accept_nonblocking(listen_fd_);
    if (cfd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient failure; keep serving
    }
    set_tcp_nodelay(cfd);
    const int ufd = dial_upstream();
    if (ufd < 0) {
      // Upstream unreachable: refuse the client too, so the agent sees
      // the outage instead of a half-open proxy.
      ::close(cfd);
      continue;
    }
    auto pair = std::make_unique<Pair>();
    pair->client_fd = cfd;
    pair->upstream_fd = ufd;
    Pair* p = pair.get();
    pairs_.emplace(cfd, std::move(pair));
    upstream_to_client_.emplace(ufd, cfd);
    ++stats_.conns_opened;
    loop_.add_fd(cfd, EPOLLIN, [this, p](std::uint32_t ev) {
      if (ev & (EPOLLHUP | EPOLLERR)) {
        kill_pair(p->client_fd);
        return;
      }
      if (ev & EPOLLOUT) {
        p->client_out_armed = false;
        loop_.mod_fd(p->client_fd, EPOLLIN);
        if (!flush_dir(p->client_fd, p->to_client, p->to_client_off,
                       p->client_out_armed)) {
          kill_pair(p->client_fd);
          return;
        }
      }
      if (ev & EPOLLIN) pump_up(*p);
    });
    loop_.add_fd(ufd, EPOLLIN, [this, p](std::uint32_t ev) {
      if (ev & (EPOLLHUP | EPOLLERR)) {
        kill_pair(p->client_fd);
        return;
      }
      if (ev & EPOLLOUT) {
        p->upstream_out_armed = false;
        loop_.mod_fd(p->upstream_fd, EPOLLIN);
        if (!flush_dir(p->upstream_fd, p->to_upstream,
                       p->to_upstream_off, p->upstream_out_armed)) {
          kill_pair(p->client_fd);
          return;
        }
      }
      if (ev & EPOLLIN) pump_down(*p);
    });
  }
}

void FaultJail::pump_up(Pair& p) {
  std::uint8_t buf[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(p.client_fd, buf, sizeof buf, 0);
    if (n > 0) {
      if (black_hole_) {
        stats_.bytes_blackholed += n;
        if (lc_.bytes_blackholed != nullptr) lc_.bytes_blackholed->add(n);
        continue;
      }
      stats_.bytes_up += n;
      p.to_upstream.insert(p.to_upstream.end(), buf, buf + n);
      if (!flush_dir(p.upstream_fd, p.to_upstream, p.to_upstream_off,
                     p.upstream_out_armed)) {
        kill_pair(p.client_fd);
        return;
      }
      if (static_cast<std::size_t>(n) < sizeof buf) return;
      continue;
    }
    if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR)) {
      kill_pair(p.client_fd);
      return;
    }
    if (errno == EINTR) continue;
    return;  // EAGAIN
  }
}

void FaultJail::pump_down(Pair& p) {
  std::uint8_t buf[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(p.upstream_fd, buf, sizeof buf, 0);
    if (n > 0) {
      if (black_hole_) {
        stats_.bytes_blackholed += n;
        if (lc_.bytes_blackholed != nullptr) lc_.bytes_blackholed->add(n);
        continue;
      }
      if (p.raw_mode || cfg_.drop_down_frac <= 0.0) {
        stats_.bytes_down += n;
        p.to_client.insert(p.to_client.end(), buf, buf + n);
      } else {
        p.down_parse.insert(p.down_parse.end(), buf, buf + n);
        sieve_down(p);
        if (p.down_parse.size() > cfg_.max_buffer_bytes) {
          kill_pair(p.client_fd);
          return;
        }
      }
      if (!flush_dir(p.client_fd, p.to_client, p.to_client_off,
                     p.client_out_armed)) {
        kill_pair(p.client_fd);
        return;
      }
      if (static_cast<std::size_t>(n) < sizeof buf) return;
      continue;
    }
    if (n == 0 || (errno != EAGAIN && errno != EWOULDBLOCK &&
                   errno != EINTR)) {
      kill_pair(p.client_fd);
      return;
    }
    if (errno == EINTR) continue;
    return;  // EAGAIN
  }
}

void FaultJail::sieve_down(Pair& p) {
  std::size_t off = 0;
  while (p.down_parse.size() - off >= kFrameHeaderBytes) {
    const std::size_t payload_len = get_le32(&p.down_parse[off]);
    if (payload_len == 0 || payload_len > cfg_.max_frame_payload) {
      // Unframeable stream: stop pretending to understand it and
      // forward everything verbatim from here on.
      p.raw_mode = true;
      stats_.bytes_down +=
          static_cast<std::int64_t>(p.down_parse.size() - off);
      p.to_client.insert(p.to_client.end(), p.down_parse.begin() + off,
                         p.down_parse.end());
      p.down_parse.clear();
      return;
    }
    const std::size_t total = kFrameHeaderBytes + payload_len;
    if (p.down_parse.size() - off < total) break;
    ++stats_.frames_down;
    if (rng_.uniform() < cfg_.drop_down_frac) {
      ++stats_.frames_dropped;
      stats_.bytes_dropped_frames += static_cast<std::int64_t>(total);
      if (lc_.frames_dropped != nullptr) {
        lc_.frames_dropped->add(1);
        lc_.bytes_dropped_frames->add(static_cast<std::int64_t>(total));
      }
    } else {
      stats_.bytes_down += static_cast<std::int64_t>(total);
      p.to_client.insert(
          p.to_client.end(), p.down_parse.begin() + off,
          p.down_parse.begin() + static_cast<std::ptrdiff_t>(off + total));
    }
    off += total;
  }
  p.down_parse.erase(p.down_parse.begin(),
                     p.down_parse.begin() + static_cast<std::ptrdiff_t>(off));
}

bool FaultJail::flush_dir(int fd, std::vector<std::uint8_t>& buf,
                          std::size_t& off, bool& armed) {
  while (off < buf.size()) {
    const ssize_t n =
        ::send(fd, buf.data() + off, buf.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (buf.size() - off > cfg_.max_buffer_bytes) return false;
      if (!armed) {
        loop_.mod_fd(fd, EPOLLIN | EPOLLOUT);
        armed = true;
      }
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  buf.clear();
  off = 0;
  return true;
}

void FaultJail::kill_pair(int client_fd) {
  const auto it = pairs_.find(client_fd);
  if (it == pairs_.end()) return;
  Pair& p = *it->second;
  // Buffered-but-unsent bytes die with the pair; name them rather than
  // letting them vanish (the drop-accounting audit's rule: every byte
  // the jail eats shows up on a counter).
  const std::int64_t discarded = static_cast<std::int64_t>(
      (p.to_client.size() - p.to_client_off) +
      (p.to_upstream.size() - p.to_upstream_off) + p.down_parse.size());
  if (discarded > 0) {
    stats_.bytes_discarded_on_kill += discarded;
    if (lc_.bytes_discarded_on_kill != nullptr) {
      lc_.bytes_discarded_on_kill->add(discarded);
    }
  }
  loop_.del_fd(p.client_fd);
  loop_.del_fd(p.upstream_fd);
  ::close(p.client_fd);
  ::close(p.upstream_fd);
  upstream_to_client_.erase(p.upstream_fd);
  pairs_.erase(it);
  ++stats_.conns_killed;
  if (lc_.conns_killed != nullptr) lc_.conns_killed->add(1);
}

void FaultJail::bind_metrics(obs::MetricsRegistry& reg,
                             const std::string& prefix) {
  lc_.frames_dropped = &reg.counter(prefix + ".frames_dropped");
  lc_.bytes_dropped_frames = &reg.counter(prefix + ".bytes_dropped_frames");
  lc_.bytes_blackholed = &reg.counter(prefix + ".bytes_blackholed");
  lc_.bytes_discarded_on_kill =
      &reg.counter(prefix + ".bytes_discarded_on_kill");
  lc_.conns_killed = &reg.counter(prefix + ".conns_killed");
}

void FaultJail::kill_all() {
  while (!pairs_.empty()) kill_pair(pairs_.begin()->first);
}

}  // namespace ft::net
