// Non-blocking epoll event loop with monotonic timers.
//
// Single-threaded by design: all callbacks run on the thread calling
// run()/run_once(). The only thread-safe entry point is stop(), which
// wakes the loop through an eventfd. Timers are a min-heap keyed on
// CLOCK_MONOTONIC microseconds and drive the epoll_wait timeout, so a
// periodic allocator iteration coexists with socket readiness without
// busy-waiting.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <queue>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/transport.h"

namespace ft::obs {
class Counter;
class LatencyHisto;
class MetricsRegistry;
}  // namespace ft::obs

namespace ft::net {

class EpollLoop final : public IoLoop {
 public:
  using FdCallback = IoLoop::FdCallback;
  using TimerCallback = IoLoop::TimerCallback;
  using TimerId = IoLoop::TimerId;

  EpollLoop();
  ~EpollLoop() override;
  EpollLoop(const EpollLoop&) = delete;
  EpollLoop& operator=(const EpollLoop&) = delete;

  // Registers `fd` for `events` (EPOLLIN | EPOLLOUT | ...). The callback
  // receives the ready event mask. The loop does not own the fd.
  void add_fd(int fd, std::uint32_t events, FdCallback cb) override;
  void mod_fd(int fd, std::uint32_t events) override;
  void del_fd(int fd) override;  // safe from inside any callback
  [[nodiscard]] bool watching(int fd) const override {
    return fds_.contains(fd);
  }

  // One-shot timer firing `delay_us` from now (<=0 fires on the next
  // run_once). Periodic timers re-arm at fixed period from the previous
  // deadline. Both may be cancelled; ids are never reused.
  TimerId add_timer(std::int64_t delay_us, TimerCallback cb) override;
  TimerId add_periodic(std::int64_t period_us, TimerCallback cb) override;
  void cancel_timer(TimerId id) override;

  // Waits for readiness or the next timer deadline (capped by
  // `max_wait_us`, -1 = no cap), dispatches fd events then due timers.
  // Returns the number of callbacks dispatched.
  using IoLoop::run_once;
  int run_once(std::int64_t max_wait_us) override;

  // Dispatches until stop() is called.
  void run() override;
  // Thread-safe: requests run() to return after the current dispatch.
  void stop() override;

  [[nodiscard]] static std::int64_t now_us();

  // Telemetry (cold path; call from the loop's thread, or before it
  // starts): every subsequent run_once records its kernel wait into
  // <prefix>.epoll_wait_us and counts <prefix>.polls. Unbound loops pay
  // one null check per run_once.
  void bind_metrics(obs::MetricsRegistry& reg,
                    std::string_view prefix) override;

 private:
  struct Timer {
    TimerCallback cb;
    std::int64_t period_us = 0;  // 0 = one-shot
    bool cancelled = false;
  };
  struct Deadline {
    std::int64_t at_us;
    TimerId id;
    bool operator>(const Deadline& o) const {
      return at_us != o.at_us ? at_us > o.at_us : id > o.id;
    }
  };

  int fire_due_timers(std::int64_t now);
  [[nodiscard]] std::int64_t wait_budget_us(std::int64_t max_wait_us) const;

  int epfd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::unordered_map<int, FdCallback> fds_;
  std::unordered_map<TimerId, Timer> timers_;
  std::priority_queue<Deadline, std::vector<Deadline>, std::greater<>>
      deadlines_;
  TimerId next_timer_id_ = 1;

  obs::LatencyHisto* wait_us_ = nullptr;  // kernel wait per run_once
  obs::Counter* polls_ = nullptr;
};

}  // namespace ft::net
