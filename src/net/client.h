// EndpointAgent: the endpoint side of the allocator control plane.
//
// The agent owns one socket to the allocator service. The application
// either registers flowlets explicitly (flowlet_start/flowlet_end) or --
// the detection path -- just reports transmitted packets via
// observe_packet() and lets the agent's FlowletDetector decide where
// flowlets begin and end: detected starts and gap/idle ends are framed
// and batched to the service automatically, so the exact same detection
// policy (src/flowlet/) runs in simulation and on the live control
// plane. By default the agent builds a StaticGapDetector from
// AgentConfig::idle_gap_us (the pre-detector behaviour); pass any
// FlowletDetector (e.g. a FlowDyn-style DynamicGapDetector) to replace
// the policy.
//
// Single-threaded: call poll() from one thread (an event loop tick or a
// pacing loop). poll() drains the socket, runs the detector's idle sweep
// and flushes pending writes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "flowlet/detector.h"
#include "net/frame.h"

namespace ft::obs {
class MetricsRegistry;
}  // namespace ft::obs

namespace ft::net {

struct AgentConfig {
  // When no detector is supplied: auto flowlet-end after this much
  // inactivity via a StaticGapDetector; <= 0 disables detection.
  std::int64_t idle_gap_us = 0;
  // Slot count for the auto-built detector's flow table. Detection
  // state is bounded and direct-mapped, so two live flows whose keys
  // hash to the same slot evict each other (the evicted flowlet is
  // ended and its next packet re-registers it). Size this comfortably
  // above the expected number of concurrent flows.
  std::size_t detector_table_capacity = 1 << 14;
  // Flush the outgoing batch automatically when it grows past this many
  // payload bytes (latency/amortization trade-off).
  std::size_t flush_threshold_bytes = 16 * 1024;
  std::size_t max_frame_payload = kMaxFramePayload;
  // Give up (disconnect) once this much unsent output is buffered: a
  // service that stopped reading must not grow the agent without bound.
  std::size_t max_outbox_bytes = 4 * 1024 * 1024;
  // Optional telemetry sink (src/obs/): agent.first_update_rtt_us
  // (flowlet-start sent -> first rate update back), agent.poll_us /
  // agent.poll_gap_us (rate-apply lag: how stale an update can get
  // between polls), and detector table occupancy/eviction gauges. Null
  // disables recording entirely (no clock reads on the packet path).
  obs::MetricsRegistry* metrics = nullptr;
  // End-to-end update-path tracing: every Nth flowlet start is sampled
  // (its FlowletStartMsg carries kFlowletStartTracedFlag and a
  // TraceMarkMsg rides the same batch). The service stamps each hop and
  // echoes the completed mark back on the flow's first rate update,
  // landing e2e.* span histograms in `metrics` and the raw hops in
  // last_trace(). 0 disables sampling.
  std::uint32_t trace_sample_every = 0;
};

struct AgentStats {
  std::uint64_t starts_sent = 0;
  std::uint64_t ends_sent = 0;
  std::uint64_t idle_ends = 0;  // subset of ends_sent from the detector
  std::uint64_t updates_received = 0;
  std::uint64_t traces_sent = 0;       // sampled starts with a mark
  std::uint64_t traces_completed = 0;  // echoes received back
  std::uint64_t frames_out = 0;
  std::int64_t bytes_out = 0;
  std::int64_t bytes_in = 0;
  std::int64_t wire_bytes_out = 0;
};

class EndpointAgent : MessageSink {
 public:
  // Rate-update observer: (flow_key, rate_bps, rate_code).
  using RateCallback =
      std::function<void(std::uint32_t, double, std::uint16_t)>;

  explicit EndpointAgent(
      AgentConfig cfg = {},
      std::unique_ptr<flowlet::FlowletDetector> detector = nullptr);
  ~EndpointAgent() override;
  EndpointAgent(const EndpointAgent&) = delete;
  EndpointAgent& operator=(const EndpointAgent&) = delete;

  [[nodiscard]] bool connect_tcp(const std::string& host, int port);
  [[nodiscard]] bool connect_unix(const std::string& path);
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void disconnect();

  void set_rate_callback(RateCallback cb) { on_rate_ = std::move(cb); }

  // Registers a flowlet from host index `src` to `dst` (batched; sent on
  // the next flush/poll). Returns false if the key is already active.
  // When detection is enabled, an idle gap (or, rarely, a detector
  // table collision) auto-ends the flowlet exactly like the old idle
  // timer did: it drops out of is_active() and later touch() calls
  // no-op, so an app that keeps sending should watch is_active() and
  // re-register -- or report traffic via observe_packet(), which
  // re-registers automatically. A non-default weight survives
  // detector-driven end/restart cycles (it rides in the detector's
  // bounded flow table) until the slot is evicted.
  bool flowlet_start(std::uint32_t key, std::uint16_t src,
                     std::uint16_t dst, std::uint32_t size_hint_bytes = 0,
                     std::uint16_t weight_milli = 1000);
  // Explicitly ends a flowlet. Returns false if the key is unknown.
  bool flowlet_end(std::uint32_t key);
  // Marks traffic activity on a flowlet, deferring its idle expiry.
  void touch(std::uint32_t key);

  // Detection path: reports one transmitted packet of flow `key`. The
  // detector auto-registers the flowlet on its first packet (and after
  // every detected gap), so no flowlet_start call is needed. Requires a
  // detector (idle_gap_us > 0 or one passed at construction).
  void observe_packet(std::uint32_t key, std::uint16_t src,
                      std::uint16_t dst, std::uint32_t bytes = 0);

  // Drains incoming rate updates, runs the detector's idle sweep
  // (against the same CLOCK_MONOTONIC clock that stamps activity),
  // flushes pending writes. Returns false once the connection is lost.
  bool poll();
  // Forces the open batch onto the wire.
  void flush();

  [[nodiscard]] bool is_active(std::uint32_t key) const {
    return flows_.contains(key);
  }
  [[nodiscard]] std::size_t num_active() const { return flows_.size(); }
  // Last rate applied for a flow (0 before the first update / unknown).
  [[nodiscard]] double rate_bps(std::uint32_t key) const;
  [[nodiscard]] std::uint16_t rate_code(std::uint32_t key) const;

  [[nodiscard]] const AgentStats& stats() const { return stats_; }
  // The most recent completed trace: the echoed mark's six wire hops
  // plus the local receive stamp (the seventh). Meaningful once
  // stats().traces_completed > 0.
  struct TraceResult {
    core::TraceMarkMsg mark;
    std::int64_t t_receive_ns = 0;
  };
  [[nodiscard]] const TraceResult& last_trace() const {
    return last_trace_;
  }
  // The active detection policy (nullptr when detection is disabled).
  [[nodiscard]] const flowlet::FlowletDetector* detector() const {
    return detector_.get();
  }

 private:
  struct Metrics;  // resolved registry handles (client.cc)

  struct FlowletState {
    double rate_bps = 0.0;
    std::uint16_t rate_code = 0;
    std::uint16_t src = 0;
    std::uint16_t dst = 0;
    std::uint16_t weight_milli = 1000;
    // Registration time, for first_update_rtt_us (0 = not tracked, or
    // the first update already arrived).
    std::int64_t start_us = 0;
  };

  void on_rate_update(const core::RateUpdateMsg& m) override;
  void on_trace_mark(const core::TraceMarkMsg& m) override;
  // Sampling decision for the next flowlet start (0 or the traced flag).
  [[nodiscard]] std::uint16_t next_start_flags();
  // Appends the origin-stamped mark behind its sampled start record.
  void emit_trace_mark(std::uint32_t key);
  bool adopt_socket(int fd);
  bool drain_socket();
  bool try_write();
  // Detector callbacks: auto-register / auto-end flowlets.
  void detected_start(const flowlet::PacketRecord& p);
  void detected_end(std::uint32_t key);
  // Detector clock: picoseconds since agent construction (rebased so
  // the us -> ps conversion cannot overflow on a long-uptime host).
  [[nodiscard]] Time now_ps() const;

  AgentConfig cfg_;
  std::int64_t epoch_us_;
  std::unique_ptr<flowlet::FlowletDetector> detector_;
  int fd_ = -1;
  FrameParser parser_;
  FrameWriter writer_;
  std::vector<std::uint8_t> outbox_;
  std::size_t out_off_ = 0;
  std::unordered_map<std::uint32_t, FlowletState> flows_;
  RateCallback on_rate_;
  AgentStats stats_;
  std::unique_ptr<Metrics> m_;  // null when cfg.metrics is null
  std::int64_t last_poll_us_ = 0;
  std::uint64_t trace_start_count_ = 0;  // starts seen by the sampler
  std::uint64_t trace_seq_ = 0;          // per-agent trace id entropy
  TraceResult last_trace_;
};

}  // namespace ft::net
