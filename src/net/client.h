// EndpointAgent: the endpoint side of the allocator control plane.
//
// The agent owns one socket to the allocator service. The application
// either registers flowlets explicitly (flowlet_start/flowlet_end) or --
// the detection path -- just reports transmitted packets via
// observe_packet() and lets the agent's FlowletDetector decide where
// flowlets begin and end: detected starts and gap/idle ends are framed
// and batched to the service automatically, so the exact same detection
// policy (src/flowlet/) runs in simulation and on the live control
// plane. By default the agent builds a StaticGapDetector from
// AgentConfig::idle_gap_us (the pre-detector behaviour); pass any
// FlowletDetector (e.g. a FlowDyn-style DynamicGapDetector) to replace
// the policy.
//
// Single-threaded: call poll() from one thread (an event loop tick or a
// pacing loop). poll() drains the socket, runs the detector's idle sweep
// and flushes pending writes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "flowlet/detector.h"
#include "net/frame.h"
#include "net/transport.h"

namespace ft::obs {
class MetricsRegistry;
}  // namespace ft::obs

namespace ft::net {

// Agent connection state (conn_state()). The failure ladder runs
// kConnected -> kDegraded (socket up but the rate lease expired: the
// service stopped proving its allocations fresh, so applied rates decay
// toward the fallback) -> kReconnecting (socket lost, jittered
// exponential backoff running). kDisconnected is terminal: either the
// agent never connected, auto_reconnect is off, or disconnect() was
// called deliberately.
enum class ConnState : std::uint8_t {
  kDisconnected = 0,
  kConnected = 1,
  kDegraded = 2,
  kReconnecting = 3,
};

struct AgentConfig {
  // The transport/clock seam this agent runs on. Null = the process-wide
  // OS transport (real sockets, CLOCK_MONOTONIC). The virtual-time
  // harness passes a sim::SimTransport instead, and every deadline in
  // the agent -- poll cadence, heartbeats, lease expiry, backoff jitter
  // waits -- then lives on simulated time.
  Transport* transport = nullptr;
  // When no detector is supplied: auto flowlet-end after this much
  // inactivity via a StaticGapDetector; <= 0 disables detection.
  std::int64_t idle_gap_us = 0;
  // Slot count for the auto-built detector's flow table. Detection
  // state is bounded and direct-mapped, so two live flows whose keys
  // hash to the same slot evict each other (the evicted flowlet is
  // ended and its next packet re-registers it). Size this comfortably
  // above the expected number of concurrent flows.
  std::size_t detector_table_capacity = 1 << 14;
  // Flush the outgoing batch automatically when it grows past this many
  // payload bytes (latency/amortization trade-off).
  std::size_t flush_threshold_bytes = 16 * 1024;
  std::size_t max_frame_payload = kMaxFramePayload;
  // Give up (disconnect) once this much unsent output is buffered: a
  // service that stopped reading must not grow the agent without bound.
  std::size_t max_outbox_bytes = 4 * 1024 * 1024;
  // Optional telemetry sink (src/obs/): agent.first_update_rtt_us
  // (flowlet-start sent -> first rate update back), agent.poll_us /
  // agent.poll_gap_us (rate-apply lag: how stale an update can get
  // between polls), and detector table occupancy/eviction gauges. Null
  // disables recording entirely (no clock reads on the packet path).
  obs::MetricsRegistry* metrics = nullptr;
  // End-to-end update-path tracing: every Nth flowlet start is sampled
  // (its FlowletStartMsg carries kFlowletStartTracedFlag and a
  // TraceMarkMsg rides the same batch). The service stamps each hop and
  // echoes the completed mark back on the flow's first rate update,
  // landing e2e.* span histograms in `metrics` and the raw hops in
  // last_trace(). 0 disables sampling.
  std::uint32_t trace_sample_every = 0;

  // --- Fault tolerance (all off by default: the pre-recovery agent) ---

  // Lost connections re-dial automatically from poll(): jittered
  // exponential backoff between attempts, and on success every live
  // flowlet is re-registered (a replayed flowlet_start batch built from
  // the agent's own flow table), so an allocator that crash-restarted
  // rebuilds its entire flow set purely from these replays.
  bool auto_reconnect = false;
  // Backoff bounds: attempt i waits uniformly in [b/2, b) where
  // b = min(reconnect_backoff_min_us * 2^i, reconnect_backoff_max_us).
  // The jitter keeps a storm of agents losing one allocator from
  // re-dialing in lockstep (thundering herd).
  std::int64_t reconnect_backoff_min_us = 10'000;
  std::int64_t reconnect_backoff_max_us = 1'000'000;
  // Seed for the backoff jitter. 0 derives a per-agent seed from the
  // agent's address so colocated agents spread naturally; tests pass
  // explicit seeds for reproducible schedules.
  std::uint64_t reconnect_seed = 0;
  // Agent -> service liveness beacons: at least one heartbeat record is
  // sent per period so a silent-but-alive agent is never culled by the
  // service's peer timeout. 0 disables.
  std::int64_t heartbeat_period_us = 0;
  // Dead service detection: if no bytes (rate updates or heartbeats)
  // arrive for this long the connection is declared dead and the
  // reconnect path runs -- O(heartbeat) instead of O(TCP timeout).
  // 0 disables (only FIN/RST tears the connection down).
  std::int64_t peer_timeout_us = 0;

  // --- Rate leases (tentpole 2) ---
  // The service advertises a lease duration on its heartbeats; every
  // heartbeat or rate update received re-arms the lease. When it
  // expires (>= lease_us of silence) the agent stops trusting its
  // allocation: conn_state() degrades and each applied rate decays by
  // fallback_decay every fallback_decay_interval_us toward
  // fallback_rate_bps -- the paper's failure story, handing control
  // back to the endpoint's own congestion control instead of pinning a
  // stale centrally-allocated rate forever. A fresh update re-arms the
  // lease and restores normal operation.
  double fallback_rate_bps = 0.0;   // decay floor (0 = decay to zero)
  double fallback_decay = 0.5;      // multiplicative decay per interval
  std::int64_t fallback_decay_interval_us = 10'000;
  // FallbackPolicy hook: (flow_key, current rate_bps, entering).
  // Called once per flow when it enters fallback (entering = true;
  // the app should hand the flow to its own congestion control) and
  // once when a fresh rate update reclaims it (entering = false).
  // Null = no hook; the decayed value is still visible via rate_bps().
  std::function<void(std::uint32_t, double, bool)> on_fallback;

  // --- Allocator epochs ---
  // Heartbeats and rate updates carry the allocator's epoch (core/
  // messages.h), which increments on every service (re)start. The agent
  // tracks the newest epoch it has seen; on an epoch advance it
  // invalidates every held rate the old allocator computed (into
  // fallback, firing on_fallback) and, if the advance arrived WITHOUT an
  // intervening reconnect (warm restart behind a VIP/proxy: the socket
  // never dropped, so no reconnect replay ran), re-registers its
  // flowlets so the new allocator learns them. Records from an older
  // epoch than the newest observed are discarded -- counted, never
  // silent. This test hook exists so mutation tests can re-introduce
  // the stale-rate bug and prove the chaos oracles catch it; production
  // code never clears it.
  bool epoch_filtering = true;
  // --- Registration refresh ---
  // Flowlet registration is soft state: a start (or a reconnect/epoch
  // replay) can die in a fault window -- eaten by a silent partition,
  // dropped frame, or a restart race -- and nothing downstream would
  // ever retry. A rate update arriving on the current connection acks
  // the flow's registration; while kConnected, any flow still unacked
  // (or, with epoch filtering, still holding a rate from an older epoch
  // than the newest observed) after this long since the last replay
  // triggers another full replay. The service treats a duplicate start
  // from the owning connection as "re-send my rate" (see
  // ServiceStats::replayed_starts), closing the loop even when the
  // original rate update was the casualty. 0 disables.
  std::int64_t reregister_period_us = 250'000;
  // Mutation hook: when false, the agent tracks its rate lease but
  // never acts on expiry -- flows keep allocator rates indefinitely
  // after the service goes silent. Exists so the chaos suite can prove
  // the lease-safety oracle catches exactly this bug; never disable in
  // production.
  bool lease_enforcement = true;
  // Mutation hook: when true, a lost connection's transport handle is
  // never closed (the slot leaks). Exists so the chaos suite can prove
  // the fd-leak oracle catches exactly this bug; never enable in
  // production.
  bool leak_connection_fds = false;
};

struct AgentStats {
  std::uint64_t starts_sent = 0;
  std::uint64_t ends_sent = 0;
  std::uint64_t idle_ends = 0;  // subset of ends_sent from the detector
  std::uint64_t updates_received = 0;
  std::uint64_t traces_sent = 0;       // sampled starts with a mark
  std::uint64_t traces_completed = 0;  // echoes received back
  std::uint64_t frames_out = 0;
  std::int64_t bytes_out = 0;
  std::int64_t bytes_in = 0;
  std::int64_t wire_bytes_out = 0;
  // Fault tolerance:
  std::uint64_t disconnects = 0;          // connections lost (any cause)
  std::uint64_t reconnects = 0;           // successful re-dials
  std::uint64_t reconnect_attempts = 0;   // dials, incl. failures
  std::uint64_t replayed_starts = 0;      // flowlet_starts re-sent
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_received = 0;
  std::uint64_t lease_expiries = 0;       // kConnected -> kDegraded
  // Records still queued (open batch) when a connection died; they are
  // dropped -- the reconnect replay, not the residue, rebuilds state.
  std::uint64_t queue_drops_on_close = 0;
  std::int64_t degraded_us = 0;  // cumulative time not kConnected
  // Allocator epochs:
  std::uint64_t epoch_advances = 0;         // newer epoch adopted
  std::uint64_t epoch_invalidated_rates = 0;  // held rates forced stale
  std::uint64_t epoch_replays = 0;  // warm-restart replays (no reconnect)
  std::uint64_t stale_updates_discarded = 0;    // older-epoch rates
  std::uint64_t stale_heartbeats_discarded = 0;  // older-epoch beacons
  // Periodic replays fired because a flow's registration was never
  // acked (no rate update on the current connection / current epoch).
  std::uint64_t registration_refreshes = 0;
};

class EndpointAgent : MessageSink {
 public:
  // Rate-update observer: (flow_key, rate_bps, rate_code).
  using RateCallback =
      std::function<void(std::uint32_t, double, std::uint16_t)>;

  explicit EndpointAgent(
      AgentConfig cfg = {},
      std::unique_ptr<flowlet::FlowletDetector> detector = nullptr);
  ~EndpointAgent() override;
  EndpointAgent(const EndpointAgent&) = delete;
  EndpointAgent& operator=(const EndpointAgent&) = delete;

  [[nodiscard]] bool connect_tcp(const std::string& host, int port);
  [[nodiscard]] bool connect_unix(const std::string& path);
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  // Deliberate teardown: closes the socket and disables auto-reconnect
  // (state -> kDisconnected). Losing the socket involuntarily instead
  // runs the recovery ladder -- see ConnState.
  void disconnect();

  [[nodiscard]] ConnState conn_state() const { return state_; }
  // The jittered delay (us) behind the most recent reconnect attempt;
  // tests assert the spread across agents (no thundering herd).
  [[nodiscard]] std::int64_t last_backoff_us() const {
    return last_backoff_us_;
  }
  // True while the rate lease is armed and fresh (service heartbeats /
  // updates arriving within the advertised lease window).
  [[nodiscard]] bool lease_fresh() const {
    return lease_deadline_us_ != 0 && state_ == ConnState::kConnected;
  }

  void set_rate_callback(RateCallback cb) { on_rate_ = std::move(cb); }

  // Registers a flowlet from host index `src` to `dst` (batched; sent on
  // the next flush/poll). Returns false if the key is already active.
  // When detection is enabled, an idle gap (or, rarely, a detector
  // table collision) auto-ends the flowlet exactly like the old idle
  // timer did: it drops out of is_active() and later touch() calls
  // no-op, so an app that keeps sending should watch is_active() and
  // re-register -- or report traffic via observe_packet(), which
  // re-registers automatically. A non-default weight survives
  // detector-driven end/restart cycles (it rides in the detector's
  // bounded flow table) until the slot is evicted.
  bool flowlet_start(std::uint32_t key, std::uint16_t src,
                     std::uint16_t dst, std::uint32_t size_hint_bytes = 0,
                     std::uint16_t weight_milli = 1000);
  // Explicitly ends a flowlet. Returns false if the key is unknown.
  bool flowlet_end(std::uint32_t key);
  // Marks traffic activity on a flowlet, deferring its idle expiry.
  void touch(std::uint32_t key);

  // Detection path: reports one transmitted packet of flow `key`. The
  // detector auto-registers the flowlet on its first packet (and after
  // every detected gap), so no flowlet_start call is needed. Requires a
  // detector (idle_gap_us > 0 or one passed at construction).
  void observe_packet(std::uint32_t key, std::uint16_t src,
                      std::uint16_t dst, std::uint32_t bytes = 0);

  // Drains incoming rate updates, runs the detector's idle sweep
  // (against the same CLOCK_MONOTONIC clock that stamps activity),
  // flushes pending writes, and drives the whole recovery ladder:
  // lease expiry -> fallback decay, dead-peer detection, and (with
  // auto_reconnect) backed-off re-dials with flowlet replay. Returns
  // false once the connection is lost for good (never while
  // kReconnecting).
  bool poll();
  // Forces the open batch onto the wire.
  void flush();

  [[nodiscard]] bool is_active(std::uint32_t key) const {
    return flows_.contains(key);
  }
  [[nodiscard]] std::size_t num_active() const { return flows_.size(); }
  // Last rate applied for a flow (0 before the first update / unknown).
  [[nodiscard]] double rate_bps(std::uint32_t key) const;
  [[nodiscard]] std::uint16_t rate_code(std::uint32_t key) const;

  // Newest allocator epoch observed on this agent's wire (meaningful
  // once epoch_seen(); epochs compare with core::epoch_newer).
  [[nodiscard]] std::uint16_t observed_epoch() const {
    return observed_epoch_;
  }
  [[nodiscard]] bool epoch_seen() const { return epoch_seen_; }
  // Armed lease deadline (us on the agent's clock; 0 = not armed).
  [[nodiscard]] std::int64_t lease_deadline_us() const {
    return lease_deadline_us_;
  }

  // Read-only view of one live flowlet's applied-rate state, for the
  // chaos-engine invariant oracles (sim/oracles.h).
  struct FlowView {
    std::uint32_t key = 0;
    std::uint16_t rate_code = 0;
    std::uint16_t rate_epoch = 0;  // epoch that computed the held rate
    bool in_fallback = false;
    double rate_bps = 0.0;
  };
  // Appends a view of every live flowlet to `out` (unspecified order).
  void snapshot_flows(std::vector<FlowView>& out) const;

  [[nodiscard]] const AgentStats& stats() const { return stats_; }
  // The most recent completed trace: the echoed mark's six wire hops
  // plus the local receive stamp (the seventh). Meaningful once
  // stats().traces_completed > 0.
  struct TraceResult {
    core::TraceMarkMsg mark;
    std::int64_t t_receive_ns = 0;
  };
  [[nodiscard]] const TraceResult& last_trace() const {
    return last_trace_;
  }
  // The active detection policy (nullptr when detection is disabled).
  [[nodiscard]] const flowlet::FlowletDetector* detector() const {
    return detector_.get();
  }

 private:
  struct Metrics;  // resolved registry handles (client.cc)

  struct FlowletState {
    double rate_bps = 0.0;
    std::uint16_t rate_code = 0;
    std::uint16_t src = 0;
    std::uint16_t dst = 0;
    std::uint16_t weight_milli = 1000;
    // Registration time, for first_update_rtt_us (0 = not tracked, or
    // the first update already arrived).
    std::int64_t start_us = 0;
    bool in_fallback = false;  // decaying toward the safe rate
    // Allocator epoch stamped on the update that set rate_code (0 =
    // no update applied yet, or a pre-epoch peer). Last in the struct:
    // callers aggregate-initialize the fields above.
    std::uint16_t rate_epoch = 0;
    // conn_gen_ when a rate update last arrived for this flow: the
    // registration ack. != conn_gen_ means the current connection has
    // never confirmed this flow (see AgentConfig::reregister_period_us).
    std::uint64_t ack_conn_gen = 0;
  };

  void on_rate_update(const core::RateUpdateMsg& m) override;
  void on_trace_mark(const core::TraceMarkMsg& m) override;
  void on_heartbeat(const core::HeartbeatMsg& m) override;
  // Sampling decision for the next flowlet start (0 or the traced flag).
  [[nodiscard]] std::uint16_t next_start_flags();
  // Appends the origin-stamped mark behind its sampled start record.
  void emit_trace_mark(std::uint32_t key);
  bool adopt_socket(int fd);
  bool drain_socket();
  bool try_write();
  // Recovery machinery (client.cc): dial the remembered target, tear a
  // dead connection down (arming the backoff when auto_reconnect is
  // on), attempt a re-dial + flowlet replay, lease bookkeeping.
  [[nodiscard]] int dial_target() const;
  void became_connected(std::int64_t now_us);
  void lose_connection(std::int64_t now_us);
  void try_reconnect(std::int64_t now_us);
  void schedule_next_attempt(std::int64_t now_us);
  void replay_flowlets();
  // Folds a wire-observed allocator epoch into the agent's view: adopts
  // newer epochs (invalidating pre-restart rates; replaying flowlets on
  // a warm restart that never dropped the socket). Returns false when
  // the record carrying `e` is from an older epoch and must be dropped.
  bool observe_epoch(std::uint16_t e);
  void arm_lease(std::int64_t now_us);
  void enter_degraded(std::int64_t now_us);
  void note_recovered(std::int64_t now_us);
  void run_fallback_decay(std::int64_t now_us);
  void drop_pending_output();
  // Detector callbacks: auto-register / auto-end flowlets.
  void detected_start(const flowlet::PacketRecord& p);
  void detected_end(std::uint32_t key);
  // Detector clock: picoseconds since agent construction (rebased so
  // the us -> ps conversion cannot overflow on a long-uptime host).
  [[nodiscard]] Time now_ps() const;

  AgentConfig cfg_;
  Transport* tr_;     // cfg_.transport, or the OS transport
  Clock* clock_;      // the transport's clock (all deadlines below)
  std::int64_t epoch_us_;
  std::unique_ptr<flowlet::FlowletDetector> detector_;
  int fd_ = -1;
  FrameParser parser_;
  FrameWriter writer_;
  std::vector<std::uint8_t> outbox_;
  std::size_t out_off_ = 0;
  std::unordered_map<std::uint32_t, FlowletState> flows_;
  RateCallback on_rate_;
  AgentStats stats_;
  std::unique_ptr<Metrics> m_;  // null when cfg.metrics is null
  std::int64_t last_poll_us_ = 0;
  std::uint64_t trace_start_count_ = 0;  // starts seen by the sampler
  std::uint64_t trace_seq_ = 0;          // per-agent trace id entropy
  TraceResult last_trace_;

  // Connection state machine + reconnect backoff.
  ConnState state_ = ConnState::kDisconnected;
  enum class Target : std::uint8_t { kNone, kTcp, kUnix };
  Target target_ = Target::kNone;  // remembered for re-dialing
  std::string target_host_;
  int target_port_ = -1;
  std::string target_path_;
  Rng backoff_rng_{1};
  std::int64_t cur_backoff_us_ = 0;   // 0 = next attempt starts at min
  std::int64_t last_backoff_us_ = 0;
  std::int64_t next_attempt_us_ = 0;
  std::int64_t disconnected_at_us_ = 0;
  std::int64_t degraded_since_us_ = 0;  // 0 = currently kConnected
  // Rate lease + fallback decay.
  std::uint32_t lease_us_ = 0;         // advertised by the service
  std::int64_t lease_deadline_us_ = 0;  // 0 = not armed
  std::int64_t next_decay_us_ = 0;
  // Allocator-epoch tracking. conn_gen_ counts became_connected calls;
  // epoch_adopt_gen_ remembers the generation at the last epoch
  // adoption, so an adoption with conn_gen_ unchanged means the epoch
  // advanced without a reconnect (warm restart behind a VIP) and the
  // flowlet replay that try_reconnect would have run must happen here.
  std::uint16_t observed_epoch_ = 0;
  bool epoch_seen_ = false;
  std::uint64_t conn_gen_ = 0;
  std::uint64_t epoch_adopt_gen_ = 0;
  // Registration-refresh pacing: virtual/real time of the last full
  // flowlet replay (any cause), so unacked flows re-replay at most once
  // per reregister_period_us.
  std::int64_t last_replay_us_ = 0;
  // Liveness clocks.
  std::int64_t last_rx_us_ = 0;
  std::int64_t last_hb_tx_us_ = 0;
  std::int64_t now_cache_us_ = 0;  // poll-entry stamp for sink callbacks
};

}  // namespace ft::net
