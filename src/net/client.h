// EndpointAgent: the endpoint side of the allocator control plane.
//
// The agent owns one socket to the allocator service. The application
// registers flowlets (flowlet_start) and reports traffic activity
// (touch); the agent frames and batches the outgoing notifications,
// applies incoming rate updates to its local table, and -- mirroring
// endpoint-side flowlet detection -- auto-emits a flowlet-end once a
// flowlet has been idle longer than the configured gap, so applications
// that stop sending need not remember to deregister.
//
// Single-threaded: call poll() from one thread (an event loop tick or a
// pacing loop). poll() drains the socket, expires idle flowlets and
// flushes pending writes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/frame.h"

namespace ft::net {

struct AgentConfig {
  // Auto flowlet-end after this much inactivity; <= 0 disables it.
  std::int64_t idle_gap_us = 0;
  // Flush the outgoing batch automatically when it grows past this many
  // payload bytes (latency/amortization trade-off).
  std::size_t flush_threshold_bytes = 16 * 1024;
  std::size_t max_frame_payload = kMaxFramePayload;
  // Give up (disconnect) once this much unsent output is buffered: a
  // service that stopped reading must not grow the agent without bound.
  std::size_t max_outbox_bytes = 4 * 1024 * 1024;
};

struct AgentStats {
  std::uint64_t starts_sent = 0;
  std::uint64_t ends_sent = 0;
  std::uint64_t idle_ends = 0;  // subset of ends_sent emitted by the gap
  std::uint64_t updates_received = 0;
  std::uint64_t frames_out = 0;
  std::int64_t bytes_out = 0;
  std::int64_t bytes_in = 0;
  std::int64_t wire_bytes_out = 0;
};

class EndpointAgent : MessageSink {
 public:
  // Rate-update observer: (flow_key, rate_bps, rate_code).
  using RateCallback =
      std::function<void(std::uint32_t, double, std::uint16_t)>;

  explicit EndpointAgent(AgentConfig cfg = {});
  ~EndpointAgent() override;
  EndpointAgent(const EndpointAgent&) = delete;
  EndpointAgent& operator=(const EndpointAgent&) = delete;

  [[nodiscard]] bool connect_tcp(const std::string& host, int port);
  [[nodiscard]] bool connect_unix(const std::string& path);
  [[nodiscard]] bool connected() const { return fd_ >= 0; }
  void disconnect();

  void set_rate_callback(RateCallback cb) { on_rate_ = std::move(cb); }

  // Registers a flowlet from host index `src` to `dst` (batched; sent on
  // the next flush/poll). Returns false if the key is already active.
  bool flowlet_start(std::uint32_t key, std::uint16_t src,
                     std::uint16_t dst, std::uint32_t size_hint_bytes = 0,
                     std::uint16_t weight_milli = 1000);
  // Explicitly ends a flowlet. Returns false if the key is unknown.
  bool flowlet_end(std::uint32_t key);
  // Marks traffic activity on a flowlet, deferring its idle-gap expiry.
  void touch(std::uint32_t key);

  // Drains incoming rate updates, expires idle flowlets (against the
  // same CLOCK_MONOTONIC clock that stamps activity), flushes pending
  // writes. Returns false once the connection is lost.
  bool poll();
  // Forces the open batch onto the wire.
  void flush();

  [[nodiscard]] bool is_active(std::uint32_t key) const {
    return flows_.contains(key);
  }
  [[nodiscard]] std::size_t num_active() const { return flows_.size(); }
  // Last rate applied for a flow (0 before the first update / unknown).
  [[nodiscard]] double rate_bps(std::uint32_t key) const;
  [[nodiscard]] std::uint16_t rate_code(std::uint32_t key) const;

  [[nodiscard]] const AgentStats& stats() const { return stats_; }

 private:
  struct FlowletState {
    double rate_bps = 0.0;
    std::uint16_t rate_code = 0;
    std::int64_t last_activity_us = 0;
  };

  void on_rate_update(const core::RateUpdateMsg& m) override;
  bool adopt_socket(int fd);
  bool drain_socket();
  bool try_write();
  void expire_idle(std::int64_t now_us);

  AgentConfig cfg_;
  int fd_ = -1;
  FrameParser parser_;
  FrameWriter writer_;
  std::vector<std::uint8_t> outbox_;
  std::size_t out_off_ = 0;
  std::unordered_map<std::uint32_t, FlowletState> flows_;
  RateCallback on_rate_;
  AgentStats stats_;
};

}  // namespace ft::net
