#include "net/epoll_loop.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <string>

#include "common/check.h"
#include "obs/metrics.h"

namespace ft::net {

EpollLoop::EpollLoop() {
  epfd_ = ::epoll_create1(EPOLL_CLOEXEC);
  FT_CHECK(epfd_ >= 0);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  FT_CHECK(wake_fd_ >= 0);
  add_fd(wake_fd_, EPOLLIN, [this](std::uint32_t) {
    std::uint64_t v;
    while (::read(wake_fd_, &v, sizeof v) > 0) {
    }
  });
}

EpollLoop::~EpollLoop() {
  ::close(wake_fd_);
  ::close(epfd_);
}

std::int64_t EpollLoop::now_us() {
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000 +
         ts.tv_nsec / 1'000;
}

void EpollLoop::add_fd(int fd, std::uint32_t events, FdCallback cb) {
  FT_CHECK(fd >= 0 && !fds_.contains(fd));
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  FT_CHECK(::epoll_ctl(epfd_, EPOLL_CTL_ADD, fd, &ev) == 0);
  fds_.emplace(fd, std::move(cb));
}

void EpollLoop::mod_fd(int fd, std::uint32_t events) {
  FT_CHECK(fds_.contains(fd));
  epoll_event ev{};
  ev.events = events;
  ev.data.fd = fd;
  FT_CHECK(::epoll_ctl(epfd_, EPOLL_CTL_MOD, fd, &ev) == 0);
}

void EpollLoop::del_fd(int fd) {
  if (fds_.erase(fd) == 0) return;
  // The fd may already be closed by the caller; EBADF/ENOENT are fine.
  ::epoll_ctl(epfd_, EPOLL_CTL_DEL, fd, nullptr);
}

EpollLoop::TimerId EpollLoop::add_timer(std::int64_t delay_us,
                                        TimerCallback cb) {
  const TimerId id = next_timer_id_++;
  timers_.emplace(id, Timer{std::move(cb), 0, false});
  deadlines_.push({now_us() + std::max<std::int64_t>(delay_us, 0), id});
  return id;
}

EpollLoop::TimerId EpollLoop::add_periodic(std::int64_t period_us,
                                           TimerCallback cb) {
  FT_CHECK(period_us > 0);
  const TimerId id = next_timer_id_++;
  timers_.emplace(id, Timer{std::move(cb), period_us, false});
  deadlines_.push({now_us() + period_us, id});
  return id;
}

void EpollLoop::cancel_timer(TimerId id) {
  const auto it = timers_.find(id);
  if (it != timers_.end()) it->second.cancelled = true;
}

std::int64_t EpollLoop::wait_budget_us(std::int64_t max_wait_us) const {
  std::int64_t budget = max_wait_us;
  if (!deadlines_.empty()) {
    const std::int64_t until =
        std::max<std::int64_t>(deadlines_.top().at_us - now_us(), 0);
    budget = budget < 0 ? until : std::min(budget, until);
  }
  return budget;
}

int EpollLoop::fire_due_timers(std::int64_t now) {
  int fired = 0;
  while (!deadlines_.empty() && deadlines_.top().at_us <= now) {
    const Deadline d = deadlines_.top();
    deadlines_.pop();
    const auto it = timers_.find(d.id);
    if (it == timers_.end()) continue;
    if (it->second.cancelled) {
      timers_.erase(it);
      continue;
    }
    if (it->second.period_us > 0) {
      // Re-arm from the scheduled deadline, skipping missed periods so a
      // stalled loop doesn't fire a burst of catch-up iterations.
      std::int64_t next = d.at_us + it->second.period_us;
      if (next <= now) {
        const std::int64_t behind = now - d.at_us;
        next = d.at_us +
               (behind / it->second.period_us + 1) * it->second.period_us;
      }
      deadlines_.push({next, d.id});
      it->second.cb();
    } else {
      TimerCallback cb = std::move(it->second.cb);
      timers_.erase(it);
      cb();
    }
    ++fired;
  }
  return fired;
}

void EpollLoop::bind_metrics(obs::MetricsRegistry& reg,
                             std::string_view prefix) {
  const std::string p(prefix);
  wait_us_ = &reg.histo(p + ".epoll_wait_us");
  polls_ = &reg.counter(p + ".polls");
}

int EpollLoop::run_once(std::int64_t max_wait_us) {
  const std::int64_t budget = wait_budget_us(max_wait_us);
  const std::int64_t t_wait = wait_us_ != nullptr ? now_us() : 0;

  epoll_event events[64];
#if defined(__GLIBC__)
#if __GLIBC_PREREQ(2, 35)
#define FT_HAVE_EPOLL_PWAIT2 1
#endif
#endif
#if defined(FT_HAVE_EPOLL_PWAIT2)
  // epoll_pwait2 takes a timespec: sub-millisecond timer deadlines (the
  // paper's 10 us iteration period) hold without busy-waiting.
  timespec ts{};
  if (budget >= 0) {
    ts.tv_sec = budget / 1'000'000;
    ts.tv_nsec = (budget % 1'000'000) * 1'000;
  }
  const int n = ::epoll_pwait2(epfd_, events, 64,
                               budget < 0 ? nullptr : &ts, nullptr);
#else
  const int timeout_ms =
      budget < 0 ? -1 : static_cast<int>((budget + 999) / 1'000);
  const int n = ::epoll_wait(epfd_, events, 64, timeout_ms);
#endif
  if (wait_us_ != nullptr) {
    wait_us_->record_signed(now_us() - t_wait);
    polls_->add(1);
  }
  int dispatched = 0;
  for (int i = 0; i < n; ++i) {
    const int fd = events[i].data.fd;
    // A callback earlier in this batch may have del_fd()'d this one.
    const auto it = fds_.find(fd);
    if (it == fds_.end()) continue;
    it->second(events[i].events);
    ++dispatched;
  }
  dispatched += fire_due_timers(now_us());
  return dispatched;
}

void EpollLoop::run() {
  // stop_ is deliberately not reset here: a stop() issued before run()
  // starts (e.g. a signal between installing handlers and entering the
  // loop) must still take effect.
  while (!stop_.load(std::memory_order_relaxed)) {
    run_once(-1);
  }
}

void EpollLoop::stop() {
  stop_.store(true, std::memory_order_relaxed);
  const std::uint64_t one = 1;
  [[maybe_unused]] const auto n = ::write(wake_fd_, &one, sizeof one);
}

}  // namespace ft::net
