// Bounded single-producer/single-consumer ring used on the sharded
// service's hot path: each I/O shard funnels flowlet start/end events to
// the allocation thread through one of these, and rate updates fan back
// out through another -- one producer and one consumer per queue by
// construction, so no lock is ever taken.
//
// Classic two-index design with cached counterpart indices: the producer
// re-reads the consumer's head (acquire) only when its cached copy says
// the ring looks full, and vice versa, so steady-state push/pop touch a
// single cache line each.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

namespace ft::net {

template <class T>
class SpscQueue {
 public:
  // `capacity` is rounded up to a power of two; every slot is usable
  // (free-running indices, no reserved empty slot).
  explicit SpscQueue(std::size_t capacity) {
    std::size_t cap = 2;
    while (cap < capacity) cap <<= 1;
    buf_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  // Producer side. Returns false when the ring is full.
  bool try_push(const T& v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - head_cache_ > mask_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail - head_cache_ > mask_) return false;
    }
    buf_[tail & mask_] = v;
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  // Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = buf_[head & mask_];
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  // Approximate occupancy, callable from either side (telemetry only:
  // both indices are relaxed loads, so the value can be momentarily
  // stale but never exceeds capacity).
  [[nodiscard]] std::size_t size_approx() const {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    return tail - head;
  }

  // Consumer-side emptiness probe.
  [[nodiscard]] bool empty() const {
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t capacity() const { return mask_ + 1; }

 private:
  std::vector<T> buf_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  // consumer index
  alignas(64) std::size_t tail_cache_ = 0;        // consumer's view of tail
  alignas(64) std::atomic<std::size_t> tail_{0};  // producer index
  alignas(64) std::size_t head_cache_ = 0;        // producer's view of head
};

}  // namespace ft::net
