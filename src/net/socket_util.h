// Shared socket plumbing for the OS transport path.
//
// The nonblocking / SO_REUSEADDR / TCP_NODELAY / close-on-failure
// boilerplate used to be copy-pasted across net/client.cc, net/server.cc
// and net/faultjail.cc; it lives here once. Every function either
// returns a ready fd (listeners and accepted sockets come back
// nonblocking) or -1 with the failing call's errno preserved and no fd
// leaked.
#pragma once

#include <string>

namespace ft::net {

// fcntl O_NONBLOCK; aborts on failure (callers only pass healthy fds).
void set_nonblocking(int fd);
// Best-effort TCP_NODELAY (control messages are tiny; Nagle would batch
// them behind the ACK clock).
void set_tcp_nodelay(int fd);

// Loopback/any TCP listener with SO_REUSEADDR, bound, listening and
// nonblocking. port 0 = kernel-assigned; the bound port is written to
// *bound_port when non-null. Returns the fd or -1.
int tcp_listen(int port, bool listen_any, int* bound_port);
// Unix-domain listener at `path` (unlinked first), nonblocking.
int unix_listen(const std::string& path);

// Blocking connect to host:port with TCP_NODELAY, or to a unix path.
// The caller sets nonblocking afterwards if it wants to (the blocking
// dial keeps loopback connect semantics: immediate success or failure).
int tcp_dial(const std::string& host, int port);
int unix_dial(const std::string& path);

// accept4(SOCK_CLOEXEC) + set_nonblocking on success. Returns the fd or
// -1 with accept's errno (EAGAIN/EMFILE/... for the caller to sort out).
int accept_nonblocking(int listen_fd);

}  // namespace ft::net
