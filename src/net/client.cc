#include "net/client.h"

#include <algorithm>
#include <cerrno>

#include "common/check.h"
#include "common/ratecode.h"
#include "common/time.h"
#include "common/wire.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ft::net {

// Registry handles resolved once at construction (only when a sink is
// configured; the null case costs one pointer check per site).
struct EndpointAgent::Metrics {
  obs::LatencyHisto& first_update_rtt_us;
  obs::LatencyHisto& poll_us;
  obs::LatencyHisto& poll_gap_us;
  obs::Counter& updates_received;
  obs::Gauge& detector_occupancy;
  obs::Gauge& detector_evictions;
  // Fault tolerance: connection losses, successful re-dials, the
  // outage span each re-dial closed, cumulative non-kConnected time,
  // lease expiries and records dropped with a dying connection.
  obs::Counter& disconnects;
  obs::Counter& reconnects;
  obs::LatencyHisto& reconnect_us;
  obs::Counter& degraded_us;
  obs::Counter& lease_expiries;
  obs::Counter& queue_drops_on_close;
  // Allocator epochs: pre-restart records discarded and held rates
  // invalidated on an epoch advance (counted, never silent -- the
  // chaos conservation oracle audits these paths).
  obs::Counter& stale_updates_discarded;
  obs::Counter& stale_heartbeats_discarded;
  obs::Counter& epoch_invalidated_rates;
  // End-to-end span breakdown from completed trace echoes. update_us is
  // the full agent-send -> agent-receive loop on the agent's RAW clock;
  // queue/solve/emit/fanout are the service-side hop deltas; service_us
  // spans shard ingest -> fanout write; wire_us is the residual (wire +
  // epoll queueing, both directions -- same-host runs only).
  obs::LatencyHisto& e2e_update_us;
  obs::LatencyHisto& e2e_queue_us;
  obs::LatencyHisto& e2e_solve_us;
  obs::LatencyHisto& e2e_emit_us;
  obs::LatencyHisto& e2e_fanout_us;
  obs::LatencyHisto& e2e_service_us;
  obs::LatencyHisto& e2e_wire_us;

  explicit Metrics(obs::MetricsRegistry& reg)
      : first_update_rtt_us(reg.histo("agent.first_update_rtt_us")),
        poll_us(reg.histo("agent.poll_us")),
        poll_gap_us(reg.histo("agent.poll_gap_us")),
        updates_received(reg.counter("agent.updates_received")),
        detector_occupancy(reg.gauge("agent.detector_occupancy")),
        detector_evictions(reg.gauge("agent.detector_evictions")),
        disconnects(reg.counter("agent.disconnects")),
        reconnects(reg.counter("agent.reconnects")),
        reconnect_us(reg.histo("agent.reconnect_us")),
        degraded_us(reg.counter("agent.degraded_us")),
        lease_expiries(reg.counter("agent.lease_expiries")),
        queue_drops_on_close(reg.counter("agent.queue_drops_on_close")),
        stale_updates_discarded(
            reg.counter("agent.stale_updates_discarded")),
        stale_heartbeats_discarded(
            reg.counter("agent.stale_heartbeats_discarded")),
        epoch_invalidated_rates(
            reg.counter("agent.epoch_invalidated_rates")),
        e2e_update_us(reg.histo("e2e.update_us")),
        e2e_queue_us(reg.histo("e2e.queue_us")),
        e2e_solve_us(reg.histo("e2e.solve_us")),
        e2e_emit_us(reg.histo("e2e.emit_us")),
        e2e_fanout_us(reg.histo("e2e.fanout_us")),
        e2e_service_us(reg.histo("e2e.service_us")),
        e2e_wire_us(reg.histo("e2e.wire_us")) {}
};

EndpointAgent::EndpointAgent(
    AgentConfig cfg, std::unique_ptr<flowlet::FlowletDetector> detector)
    : cfg_(std::move(cfg)),
      tr_(cfg_.transport != nullptr ? cfg_.transport : &os_transport()),
      clock_(&tr_->clock()),
      epoch_us_(clock_->now_us()),
      detector_(std::move(detector)),
      parser_(cfg_.max_frame_payload) {
  if (!detector_ && cfg_.idle_gap_us > 0) {
    // Pre-detector behaviour: one fixed idle gap for every flow.
    flowlet::StaticGapConfig dcfg;
    dcfg.gap = cfg_.idle_gap_us * kMicrosecond;
    dcfg.table_capacity = cfg_.detector_table_capacity;
    detector_ = std::make_unique<flowlet::StaticGapDetector>(dcfg);
  }
  if (detector_) {
    detector_->set_callbacks(
        [this](const flowlet::PacketRecord& p) { detected_start(p); },
        [this](std::uint32_t key, Time) { detected_end(key); });
  }
  if (cfg_.metrics != nullptr) {
    m_ = std::make_unique<Metrics>(*cfg_.metrics);
  }
  // Jitter stream: an explicit seed gives a reproducible backoff
  // schedule (tests); 0 derives one from this agent's address so a
  // fleet sharing a config still spreads its re-dials.
  backoff_rng_.reseed(cfg_.reconnect_seed != 0
                          ? cfg_.reconnect_seed
                          : reinterpret_cast<std::uintptr_t>(this));
}

EndpointAgent::~EndpointAgent() { disconnect(); }

Time EndpointAgent::now_ps() const {
  return static_cast<Time>(clock_->now_us() - epoch_us_) * kMicrosecond;
}

bool EndpointAgent::adopt_socket(int fd) {
  // Transport dials hand back ready nonblocking handles; adoption is
  // just ownership.
  if (fd < 0) return false;
  fd_ = fd;
  return true;
}

// Dials the remembered target. Returns the connected handle or -1;
// never touches agent state, so connect_* and the reconnect path share
// it.
int EndpointAgent::dial_target() const {
  if (target_ == Target::kTcp) {
    return tr_->connect_tcp(target_host_, target_port_);
  }
  if (target_ == Target::kUnix) return tr_->connect_unix(target_path_);
  return -1;
}

bool EndpointAgent::connect_tcp(const std::string& host, int port) {
  FT_CHECK(fd_ < 0);
  target_ = Target::kTcp;
  target_host_ = host;
  target_port_ = port;
  const int fd = dial_target();
  if (fd < 0 || !adopt_socket(fd)) return false;
  became_connected(clock_->now_us());
  return true;
}

bool EndpointAgent::connect_unix(const std::string& path) {
  FT_CHECK(fd_ < 0);
  target_ = Target::kUnix;
  target_path_ = path;
  const int fd = dial_target();
  if (fd < 0 || !adopt_socket(fd)) return false;
  became_connected(clock_->now_us());
  return true;
}

void EndpointAgent::became_connected(std::int64_t now_us) {
  state_ = ConnState::kConnected;
  ++conn_gen_;
  cur_backoff_us_ = 0;
  next_attempt_us_ = 0;
  last_rx_us_ = now_us;
  last_hb_tx_us_ = now_us;
  // Arm the registration-refresh timer: a fresh connection owes the
  // service a full reregister_period before re-replaying (otherwise a
  // first poll on a real clock sees "elapsed since 0" and refreshes
  // flows whose first updates are simply still in flight).
  last_replay_us_ = now_us;
  // The lease is disarmed until the new service advertises one; flows
  // parked in fallback stay there until their fresh update lands.
  lease_deadline_us_ = 0;
}

void EndpointAgent::disconnect() {
  drop_pending_output();
  if (fd_ >= 0) {
    tr_->close(fd_);
    fd_ = -1;
  }
  state_ = ConnState::kDisconnected;
  lease_deadline_us_ = 0;
  degraded_since_us_ = 0;  // deliberate teardown ends any outage clock
}

// Counts then discards everything queued for a connection that will
// never carry it (satellite fix: these drops used to be silent).
void EndpointAgent::drop_pending_output() {
  const std::uint64_t records = writer_.pending_records();
  if (records > 0) {
    stats_.queue_drops_on_close += records;
    if (m_ != nullptr) {
      m_->queue_drops_on_close.add(records);
    }
    writer_.clear();
  }
  outbox_.clear();
  out_off_ = 0;
}

// The socket died under us (peer close, send/recv error, outbox cap,
// peer timeout). Tear it down and either arm the reconnect backoff or
// go terminal, depending on config.
void EndpointAgent::lose_connection(std::int64_t now_us) {
  ++stats_.disconnects;
  if (m_ != nullptr) m_->disconnects.add(1);
  drop_pending_output();
  if (fd_ >= 0) {
    // leak_connection_fds is the chaos suite's slot-recycling mutation:
    // skipping the close leaks the transport slot on every disconnect.
    if (!cfg_.leak_connection_fds) tr_->close(fd_);
    fd_ = -1;
  }
  lease_deadline_us_ = 0;
  if (degraded_since_us_ == 0) degraded_since_us_ = now_us;
  if (cfg_.auto_reconnect && target_ != Target::kNone) {
    state_ = ConnState::kReconnecting;
    disconnected_at_us_ = now_us;
    cur_backoff_us_ = 0;
    // The first attempt is already jittered: N agents losing the same
    // allocator at the same instant must not re-dial in one burst.
    schedule_next_attempt(now_us);
  } else {
    state_ = ConnState::kDisconnected;
  }
}

void EndpointAgent::schedule_next_attempt(std::int64_t now_us) {
  cur_backoff_us_ =
      cur_backoff_us_ == 0
          ? cfg_.reconnect_backoff_min_us
          : std::min(cur_backoff_us_ * 2, cfg_.reconnect_backoff_max_us);
  const std::int64_t half = std::max<std::int64_t>(cur_backoff_us_ / 2, 1);
  last_backoff_us_ =
      half + static_cast<std::int64_t>(
                 backoff_rng_.below(static_cast<std::uint64_t>(half)));
  next_attempt_us_ = now_us + last_backoff_us_;
}

// Re-registers every locally-live flowlet on the fresh connection. The
// agent's flow table is the authoritative replay source: whether the
// old service ended our flows on disconnect or a restarted allocator
// never heard of them, these starts rebuild the exact same set.
void EndpointAgent::replay_flowlets() {
  last_replay_us_ = clock_->now_us();
  for (auto& [key, st] : flows_) {
    writer_.add(core::FlowletStartMsg{key, st.src, st.dst, 0,
                                      st.weight_milli, 0});
    ++stats_.replayed_starts;
    if (m_ != nullptr && st.start_us == 0) {
      // Re-arm the first-update RTT clock: the next update this flow
      // sees is the recovery round trip.
      st.start_us = clock_->now_us();
    }
  }
}

void EndpointAgent::try_reconnect(std::int64_t now_us) {
  if (now_us < next_attempt_us_) return;
  ++stats_.reconnect_attempts;
  const int fd = dial_target();
  if (fd < 0 || !adopt_socket(fd)) {
    schedule_next_attempt(now_us);
    return;
  }
  // Fresh connection: no residue from the dead one may cross it. The
  // parser is rebuilt (mid-frame bytes and a sticky corrupt flag die
  // with it), the writer's open batch and coalescing table were
  // dropped at disconnect, and the outbox is empty.
  parser_ = FrameParser(cfg_.max_frame_payload);
  writer_.clear();
  outbox_.clear();
  out_off_ = 0;
  ++stats_.reconnects;
  if (m_ != nullptr) {
    m_->reconnects.add(1);
    m_->reconnect_us.record_signed(now_us - disconnected_at_us_);
  }
  became_connected(now_us);
  note_recovered(now_us);
  replay_flowlets();
  flush();
}

// One wire record carried allocator epoch `e`. Returns false when the
// record predates the newest epoch this agent has evidence of -- the
// caller must drop it (an old allocator's output must never override
// the new one's, TCP ordering notwithstanding: reconnects splice two
// independent streams, and a zombie instance can linger behind a VIP).
// Adopting a NEWER epoch means the allocator restarted; everything the
// old one computed is invalidated into fallback, and if the socket
// never dropped (warm restart behind a proxy: no reconnect, so
// try_reconnect never replayed) the flowlets are re-registered here so
// the new allocator learns a flow set it otherwise never would.
bool EndpointAgent::observe_epoch(std::uint16_t e) {
  if (!cfg_.epoch_filtering) {
    // Mutation-test hook: keep tracking the newest epoch (the oracles
    // need the reference point) but never invalidate, replay, or drop
    // -- the pre-epoch agent, stale-rate bug re-introduced.
    if (!epoch_seen_ || core::epoch_newer(e, observed_epoch_)) {
      epoch_seen_ = true;
      observed_epoch_ = e;
    }
    return true;
  }
  if (epoch_seen_ && e == observed_epoch_) return true;
  if (epoch_seen_ && !core::epoch_newer(e, observed_epoch_)) return false;
  const bool first = !epoch_seen_;
  epoch_seen_ = true;
  observed_epoch_ = e;
  if (first) {
    epoch_adopt_gen_ = conn_gen_;
    return true;
  }
  ++stats_.epoch_advances;
  for (auto& [key, st] : flows_) {
    if (st.in_fallback || st.rate_code == 0) continue;
    if (!core::epoch_newer(e, st.rate_epoch)) continue;
    st.in_fallback = true;
    ++stats_.epoch_invalidated_rates;
    if (m_ != nullptr) m_->epoch_invalidated_rates.add(1);
    if (cfg_.on_fallback) cfg_.on_fallback(key, st.rate_bps, true);
  }
  if (epoch_adopt_gen_ == conn_gen_ && fd_ >= 0) {
    replay_flowlets();
    ++stats_.epoch_replays;
  }
  epoch_adopt_gen_ = conn_gen_;
  return true;
}

void EndpointAgent::arm_lease(std::int64_t now_us) {
  if (lease_us_ == 0) return;
  lease_deadline_us_ = now_us + lease_us_;
  if (state_ == ConnState::kDegraded) {
    state_ = ConnState::kConnected;
    note_recovered(now_us);
  }
}

void EndpointAgent::enter_degraded(std::int64_t now_us) {
  state_ = ConnState::kDegraded;
  lease_deadline_us_ = 0;
  ++stats_.lease_expiries;
  if (m_ != nullptr) m_->lease_expiries.add(1);
  if (degraded_since_us_ == 0) degraded_since_us_ = now_us;
  next_decay_us_ = now_us;  // first decay tick runs immediately
}

void EndpointAgent::note_recovered(std::int64_t now_us) {
  if (degraded_since_us_ == 0) return;
  const std::int64_t span = now_us - degraded_since_us_;
  stats_.degraded_us += span;
  if (m_ != nullptr) {
    m_->degraded_us.add(static_cast<std::uint64_t>(std::max<std::int64_t>(
        span, 0)));
  }
  degraded_since_us_ = 0;
}

// Degraded/reconnecting: walk the applied rates toward the safe
// fallback instead of pinning a stale allocation (§ failure model; the
// FallbackPolicy hook hands each flow to the endpoint's own congestion
// control on entry). Zero-alloc: iterates the existing flow table.
void EndpointAgent::run_fallback_decay(std::int64_t now_us) {
  if (flows_.empty() || now_us < next_decay_us_) return;
  next_decay_us_ = now_us + cfg_.fallback_decay_interval_us;
  for (auto& [key, st] : flows_) {
    if (!st.in_fallback) {
      st.in_fallback = true;
      if (cfg_.on_fallback) cfg_.on_fallback(key, st.rate_bps, true);
    }
    if (st.rate_bps > cfg_.fallback_rate_bps) {
      st.rate_bps = std::max(cfg_.fallback_rate_bps,
                             st.rate_bps * cfg_.fallback_decay);
    }
  }
}

bool EndpointAgent::flowlet_start(std::uint32_t key, std::uint16_t src,
                                  std::uint16_t dst,
                                  std::uint32_t size_hint_bytes,
                                  std::uint16_t weight_milli) {
  if (flows_.contains(key)) return false;
  flows_.emplace(key,
                 FlowletState{0.0, 0, src, dst, weight_milli,
                              m_ != nullptr ? clock_->now_us() : 0});
  const std::uint16_t flags = next_start_flags();
  writer_.add(core::FlowletStartMsg{key, src, dst, size_hint_bytes,
                                    weight_milli, flags});
  if (flags != 0) emit_trace_mark(key);
  ++stats_.starts_sent;
  if (detector_) {
    // Prime the detector so the idle sweep covers explicit
    // registrations too; detected_start sees the key active and does
    // not double-send. The weight rides in the flow's slot so a
    // detector-driven restart of this flow re-registers with it.
    detector_->on_packet(
        {key, src, dst, size_hint_bytes, now_ps(), 0});
    if (flowlet::FlowSlot* s = detector_->find_flow(key)) {
      s->user_tag = weight_milli;
    }
  }
  if (writer_.pending_bytes() >= cfg_.flush_threshold_bytes) flush();
  return true;
}

bool EndpointAgent::flowlet_end(std::uint32_t key) {
  if (flows_.erase(key) == 0) return false;
  if (detector_) {
    detector_->end_flow(key);
    // Explicit deregistration retires the weight; a later detected
    // restart of this key is a fresh flow.
    if (flowlet::FlowSlot* s = detector_->find_flow(key)) {
      s->user_tag = 0;
    }
  }
  writer_.add(core::FlowletEndMsg{key});
  ++stats_.ends_sent;
  if (writer_.pending_bytes() >= cfg_.flush_threshold_bytes) flush();
  return true;
}

void EndpointAgent::touch(std::uint32_t key) {
  if (!detector_) return;
  const auto it = flows_.find(key);
  if (it == flows_.end()) return;
  detector_->on_packet(
      {key, it->second.src, it->second.dst, 0, now_ps(), 0});
}

void EndpointAgent::observe_packet(std::uint32_t key, std::uint16_t src,
                                   std::uint16_t dst,
                                   std::uint32_t bytes) {
  FT_CHECK(detector_ != nullptr);
  detector_->on_packet({key, src, dst, bytes, now_ps(), 0});
  if (writer_.pending_bytes() >= cfg_.flush_threshold_bytes) flush();
}

void EndpointAgent::detected_start(const flowlet::PacketRecord& p) {
  if (flows_.contains(p.flow_key)) return;  // explicitly registered
  // A flow registered with a non-default weight keeps it when the
  // detector restarts it after a gap (the weight lives in the flow's
  // slot); size hint 0 = unknown, we only ever see one packet here.
  std::uint16_t weight = 1000;
  if (const flowlet::FlowSlot* s = detector_->find_flow(p.flow_key);
      s != nullptr && s->user_tag != 0) {
    weight = s->user_tag;
  }
  flows_.emplace(p.flow_key,
                 FlowletState{0.0, 0, p.src_host, p.dst_host, weight,
                              m_ != nullptr ? clock_->now_us() : 0});
  const std::uint16_t flags = next_start_flags();
  writer_.add(core::FlowletStartMsg{p.flow_key, p.src_host, p.dst_host,
                                    0, weight, flags});
  if (flags != 0) emit_trace_mark(p.flow_key);
  ++stats_.starts_sent;
}

void EndpointAgent::detected_end(std::uint32_t key) {
  if (flows_.erase(key) == 0) return;
  writer_.add(core::FlowletEndMsg{key});
  ++stats_.ends_sent;
  ++stats_.idle_ends;
}

std::uint16_t EndpointAgent::next_start_flags() {
  if (cfg_.trace_sample_every == 0) return 0;
  if (++trace_start_count_ % cfg_.trace_sample_every != 0) return 0;
  return core::kFlowletStartTracedFlag;
}

void EndpointAgent::emit_trace_mark(std::uint32_t key) {
  core::TraceMarkMsg mark;
  mark.flow_key = key;
  mark.trace_id =
      (static_cast<std::uint64_t>(key) << 32) ^ ++trace_seq_;
  mark.t_ns[core::kHopAgentSend] = obs::now_ns();
  writer_.add(mark);
  ++stats_.traces_sent;
}

void EndpointAgent::on_trace_mark(const core::TraceMarkMsg& m) {
  // The completed echo. Slot 0 and this receive stamp are on our RAW
  // clock, hops 1..5 on the service's; same-host runs share one clock so
  // every delta below is exact. Cross-host, only the agent-side total
  // and the service-side run are individually meaningful.
  const std::int64_t t6 = obs::now_ns();
  last_trace_.mark = m;
  last_trace_.t_receive_ns = t6;
  ++stats_.traces_completed;
  const auto& t = m.t_ns;
  const std::int64_t e2e = t6 - t[core::kHopAgentSend];
  if (m_ != nullptr) {
    const std::int64_t service =
        t[core::kHopFanoutWrite] - t[core::kHopShardIngest];
    m_->e2e_update_us.record_signed(e2e / 1000);
    m_->e2e_queue_us.record_signed(
        (t[core::kHopRoundPickup] - t[core::kHopShardIngest]) / 1000);
    m_->e2e_solve_us.record_signed(
        (t[core::kHopSolveDone] - t[core::kHopRoundPickup]) / 1000);
    m_->e2e_emit_us.record_signed(
        (t[core::kHopEmitDone] - t[core::kHopSolveDone]) / 1000);
    m_->e2e_fanout_us.record_signed(
        (t[core::kHopFanoutWrite] - t[core::kHopEmitDone]) / 1000);
    m_->e2e_service_us.record_signed(service / 1000);
    m_->e2e_wire_us.record_signed((e2e - service) / 1000);
  }
  if (obs::PhaseTracer::enabled()) {
    obs::PhaseTracer::record("e2e.update", t[core::kHopAgentSend] / 1000,
                             e2e / 1000);
  }
}

void EndpointAgent::on_heartbeat(const core::HeartbeatMsg& m) {
  ++stats_.heartbeats_received;
  // Epoch 0 = unstamped (agent-originated beacons; pre-epoch peers).
  if (m.epoch != 0 && !observe_epoch(m.epoch)) {
    // A pre-restart allocator's beacon must not re-arm the lease the
    // new epoch's silence is supposed to expire.
    ++stats_.stale_heartbeats_discarded;
    if (m_ != nullptr) m_->stale_heartbeats_discarded.add(1);
    return;
  }
  // The service's beacon proves the allocation plane alive even for
  // flows whose thresholded rate never changes; it also advertises the
  // lease duration the agent should hold rates for.
  if (m.lease_us > 0) {
    lease_us_ = m.lease_us;
    arm_lease(now_cache_us_ != 0 ? now_cache_us_ : clock_->now_us());
  }
}

void EndpointAgent::on_rate_update(const core::RateUpdateMsg& m) {
  ++stats_.updates_received;
  if (m.epoch != 0 && !observe_epoch(m.epoch)) {
    // A rate the pre-restart allocator computed: applying it would pin
    // state the live allocator knows nothing about. Dropped (counted),
    // and it proves nothing about lease freshness either.
    ++stats_.stale_updates_discarded;
    if (m_ != nullptr) m_->stale_updates_discarded.add(1);
    return;
  }
  // Every update implies a fresh lease (the service just proved this
  // allocation current).
  if (lease_us_ > 0) {
    arm_lease(now_cache_us_ != 0 ? now_cache_us_ : clock_->now_us());
  }
  const auto it = flows_.find(m.flow_key);
  if (it == flows_.end()) return;  // raced with a local flowlet-end
  if (it->second.in_fallback) {
    // Fresh central allocation reclaims the flow from fallback.
    it->second.in_fallback = false;
    if (cfg_.on_fallback) {
      cfg_.on_fallback(m.flow_key, decode_rate(m.rate_code), false);
    }
  }
  if (m_ != nullptr) {
    m_->updates_received.add(1);
    if (it->second.start_us != 0) {
      // First allocation for this flowlet: registration -> rate-back
      // round trip through the service (queueing + round + fan-out).
      m_->first_update_rtt_us.record_signed(clock_->now_us() -
                                            it->second.start_us);
      it->second.start_us = 0;
    }
  }
  it->second.rate_code = m.rate_code;
  it->second.rate_bps = decode_rate(m.rate_code);
  it->second.rate_epoch = m.epoch;
  // A rate on this connection acks the flow's registration: the
  // allocator provably knows about it (see reregister_period_us).
  it->second.ack_conn_gen = conn_gen_;
  if (on_rate_) on_rate_(m.flow_key, it->second.rate_bps, m.rate_code);
}

void EndpointAgent::snapshot_flows(std::vector<FlowView>& out) const {
  out.reserve(out.size() + flows_.size());
  for (const auto& [key, st] : flows_) {
    out.push_back(FlowView{key, st.rate_code, st.rate_epoch,
                           st.in_fallback, st.rate_bps});
  }
}

double EndpointAgent::rate_bps(std::uint32_t key) const {
  const auto it = flows_.find(key);
  return it == flows_.end() ? 0.0 : it->second.rate_bps;
}

std::uint16_t EndpointAgent::rate_code(std::uint32_t key) const {
  const auto it = flows_.find(key);
  return it == flows_.end() ? 0 : it->second.rate_code;
}

bool EndpointAgent::drain_socket() {
  std::uint8_t buf[64 * 1024];
  while (true) {
    const std::int64_t n = tr_->read(fd_, buf, sizeof buf);
    if (n > 0) {
      stats_.bytes_in += n;
      last_rx_us_ = now_cache_us_ != 0 ? now_cache_us_ : clock_->now_us();
      if (!parser_.feed({buf, static_cast<std::size_t>(n)}, *this)) {
        return false;  // malformed stream from the service
      }
      if (static_cast<std::size_t>(n) < sizeof buf) return true;
      continue;
    }
    if (n == 0) return false;  // service closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
}

bool EndpointAgent::try_write() {
  while (out_off_ < outbox_.size()) {
    const std::int64_t n = tr_->write(fd_, outbox_.data() + out_off_,
                                      outbox_.size() - out_off_);
    if (n > 0) {
      out_off_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  outbox_.clear();
  out_off_ = 0;
  return true;
}

void EndpointAgent::flush() {
  if (fd_ < 0) {
    // Disconnected: nothing will ever be sent; drop instead of letting
    // pending output grow without bound. The reconnect replay -- not
    // this residue -- rebuilds service state, and the drop is counted
    // (agent.queue_drops_on_close), never silent.
    drop_pending_output();
    return;
  }
  const std::size_t framed = writer_.flush(outbox_);
  if (framed > 0) {
    ++stats_.frames_out;
    stats_.bytes_out += static_cast<std::int64_t>(framed);
    stats_.wire_bytes_out +=
        wire_bytes_tcp_stream(static_cast<std::int64_t>(framed));
  }
  if (outbox_.size() - out_off_ > cfg_.max_outbox_bytes) {
    // The service stopped reading; give up rather than buffer forever.
    lose_connection(clock_->now_us());
    return;
  }
  if (!try_write()) lose_connection(clock_->now_us());
}

bool EndpointAgent::poll() {
  const std::int64_t now = clock_->now_us();
  now_cache_us_ = now;
  if (fd_ < 0) {
    if (state_ != ConnState::kReconnecting) {
      now_cache_us_ = 0;
      return false;
    }
    // Reconnect ladder: the detector keeps sweeping (flows that go
    // idle during the outage still end locally) and rates keep
    // decaying toward the fallback while the backoff runs.
    if (detector_) detector_->advance(now_ps());
    run_fallback_decay(now);
    try_reconnect(now);
    now_cache_us_ = 0;
    return true;  // still recovering, not lost for good
  }
  std::int64_t t0 = 0;
  if (m_ != nullptr) {
    t0 = now;
    // The gap between polls bounds rate-apply lag: an update that
    // arrived just after the previous poll waits this long on the wire.
    if (last_poll_us_ != 0) m_->poll_gap_us.record_signed(t0 - last_poll_us_);
    last_poll_us_ = t0;
  }
  if (!drain_socket()) {
    lose_connection(now);
    now_cache_us_ = 0;
    return state_ == ConnState::kReconnecting;
  }
  // Dead-peer detection: a service that stopped talking (no updates,
  // no heartbeats) for peer_timeout_us is gone even though TCP has not
  // noticed -- O(heartbeat) failover instead of O(TCP timeout).
  if (cfg_.peer_timeout_us > 0 && last_rx_us_ != 0 &&
      now - last_rx_us_ > cfg_.peer_timeout_us) {
    lose_connection(now);
    now_cache_us_ = 0;
    return state_ == ConnState::kReconnecting;
  }
  // Rate-lease expiry: the allocation is stale; degrade and start
  // handing rates back to endpoint congestion control.
  if (state_ == ConnState::kConnected && lease_deadline_us_ != 0 &&
      now > lease_deadline_us_ && cfg_.lease_enforcement) {
    enter_degraded(now);
  }
  if (state_ == ConnState::kDegraded) run_fallback_decay(now);
  // The detector's idle sweep replaces the old per-poll expire_idle
  // vector churn: expiry state lives in the detector's bounded table
  // and its reused scratch buffer.
  if (detector_) detector_->advance(now_ps());
  // Agent-side liveness beacon, so the service's peer timeout never
  // culls an idle-but-alive endpoint.
  if (cfg_.heartbeat_period_us > 0 &&
      now - last_hb_tx_us_ >= cfg_.heartbeat_period_us) {
    writer_.add(core::HeartbeatMsg{obs::now_ns(), 0});
    last_hb_tx_us_ = now;
    ++stats_.heartbeats_sent;
  }
  // Registration refresh: flowlet registration is soft state. If any
  // flow has never been acked by a rate update on this connection (a
  // replay died in a fault window), or still holds a rate from an
  // older allocator epoch than the newest observed (a warm-restart
  // replay died the same way), re-send the full registration; the
  // service answers a duplicate start from the owning connection by
  // re-arming that flow's notification. Without this, a black hole
  // overlapping a reconnect or restart strands the plane forever --
  // the chaos campaign's very first find.
  if (cfg_.reregister_period_us > 0 && state_ == ConnState::kConnected &&
      now - last_replay_us_ >= cfg_.reregister_period_us) {
    bool unacked = false;
    for (const auto& [key, st] : flows_) {
      if (st.ack_conn_gen != conn_gen_ ||
          (cfg_.epoch_filtering && epoch_seen_ &&
           st.rate_epoch != observed_epoch_)) {
        unacked = true;
        break;
      }
    }
    if (unacked) {
      ++stats_.registration_refreshes;
      replay_flowlets();
    }
  }
  flush();
  if (m_ != nullptr) {
    m_->poll_us.record_signed(clock_->now_us() - t0);
    if (detector_) {
      const flowlet::FlowletTable& t = detector_->table();
      m_->detector_occupancy.set(
          static_cast<std::int64_t>(t.occupied()));
      m_->detector_evictions.set(
          static_cast<std::int64_t>(t.stats().evictions));
    }
  }
  now_cache_us_ = 0;
  return fd_ >= 0 || state_ == ConnState::kReconnecting;
}

}  // namespace ft::net
