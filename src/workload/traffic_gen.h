// Open-loop Poisson flowlet generator (§6.2): flowlets arrive as a Poisson
// process; sizes come from a workload distribution; sources and
// destinations are chosen uniformly at random (src != dst). 100% load is
// the arrival rate at which the mean per-server offered load equals the
// server link capacity.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "workload/size_dist.h"

namespace ft::wl {

struct FlowletEvent {
  Time start = 0;
  std::int32_t src_host = 0;
  std::int32_t dst_host = 0;
  std::int64_t bytes = 0;
};

struct TrafficConfig {
  std::int32_t num_hosts = 144;
  double host_link_bps = 10e9;
  double load = 0.6;  // fraction of aggregate host capacity
  Workload workload = Workload::kWeb;
  std::uint64_t seed = 1;
};

// Aggregate flowlet arrival rate (flowlets/sec) for a config.
[[nodiscard]] double arrival_rate_per_sec(const TrafficConfig& cfg);

class TrafficGenerator {
 public:
  explicit TrafficGenerator(const TrafficConfig& cfg);

  // Next flowlet in arrival order; advances internal state.
  [[nodiscard]] FlowletEvent next();

  // All flowlets with start < horizon, in arrival order.
  [[nodiscard]] std::vector<FlowletEvent> generate(Time horizon);

  [[nodiscard]] const TrafficConfig& config() const { return cfg_; }

 private:
  TrafficConfig cfg_;
  Rng rng_;
  double rate_per_sec_;
  Time next_time_ = 0;
};

}  // namespace ft::wl
