// Open-loop Poisson flowlet generator (§6.2): flowlets arrive as a Poisson
// process; sizes come from a workload distribution; sources and
// destinations are chosen uniformly at random (src != dst). 100% load is
// the arrival rate at which the mean per-server offered load equals the
// server link capacity.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "workload/size_dist.h"

namespace ft::wl {

struct FlowletEvent {
  Time start = 0;
  std::int32_t src_host = 0;
  std::int32_t dst_host = 0;
  std::int64_t bytes = 0;
};

struct TrafficConfig {
  std::int32_t num_hosts = 144;
  double host_link_bps = 10e9;
  double load = 0.6;  // fraction of aggregate host capacity
  Workload workload = Workload::kWeb;
  std::uint64_t seed = 1;
};

// Aggregate flowlet arrival rate (flowlets/sec) for a config.
[[nodiscard]] double arrival_rate_per_sec(const TrafficConfig& cfg);

class TrafficGenerator {
 public:
  explicit TrafficGenerator(const TrafficConfig& cfg);

  // Next flowlet in arrival order; advances internal state.
  [[nodiscard]] FlowletEvent next();

  // All flowlets with start < horizon, in arrival order.
  [[nodiscard]] std::vector<FlowletEvent> generate(Time horizon);

  [[nodiscard]] const TrafficConfig& config() const { return cfg_; }

 private:
  TrafficConfig cfg_;
  Rng rng_;
  double rate_per_sec_;
  Time next_time_ = 0;
};

// ---------------------------------------------------------------------
// Packet-level sub-structure. Each arrival from TrafficGenerator is
// treated as one flow whose bytes are transmitted as a sequence of
// bursts -- the ground-truth flowlets -- of MTU packets paced at the
// host line rate (with jitter), separated by application think-time
// gaps. The emitted trace carries the true flowlet boundaries, so a
// detector run over it can be scored for precision/recall
// (flowlet/accuracy.h).

struct PacketEvent {
  Time at = 0;
  std::uint32_t flow_id = 0;  // dense, in flow-arrival order
  std::int32_t src_host = 0;
  std::int32_t dst_host = 0;
  std::int32_t bytes = 0;
  std::uint32_t burst_index = 0;  // flowlet ordinal within the flow
  bool burst_start = false;  // ground truth: first packet of a flowlet
  bool burst_end = false;    // ground truth: last packet of a flowlet
};

struct BurstConfig {
  std::int32_t mtu_bytes = 1500;
  // Intra-burst packet spacing: mtu serialization at this rate,
  // stretched by a uniform [1, 1 + jitter_max] factor per packet.
  double pacing_bps = 10e9;
  double jitter_max = 1.0;
  // Burst length in packets: 1 + geometric, mean `mean_burst_packets`.
  double mean_burst_packets = 16.0;
  // Think-time between bursts of one flow: min + exponential(mean).
  // The floor keeps ground-truth gaps separable from pacing jitter.
  Time min_think_gap = 80 * kMicrosecond;
  Time mean_think_gap = 250 * kMicrosecond;
};

struct PacketTrace {
  std::vector<PacketEvent> packets;  // time-sorted across flows
  std::size_t flows = 0;
  std::size_t bursts = 0;  // total ground-truth flowlets
};

class PacketTraceGenerator {
 public:
  PacketTraceGenerator(const TrafficConfig& cfg, BurstConfig burst = {});

  // Expands every flow arriving before `horizon` into its packets
  // (which may extend past the horizon), merged in time order.
  [[nodiscard]] PacketTrace generate(Time horizon);

  [[nodiscard]] const BurstConfig& burst_config() const { return burst_; }

 private:
  TrafficGenerator flows_;
  BurstConfig burst_;
  Rng rng_;
};

}  // namespace ft::wl
