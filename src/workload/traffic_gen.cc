#include "workload/traffic_gen.h"

#include "common/check.h"

namespace ft::wl {

double arrival_rate_per_sec(const TrafficConfig& cfg) {
  FT_CHECK(cfg.num_hosts >= 2);
  FT_CHECK(cfg.load > 0.0);
  const double mean_bits = workload_dist(cfg.workload).mean_bytes() * 8.0;
  return cfg.load * cfg.host_link_bps *
         static_cast<double>(cfg.num_hosts) / mean_bits;
}

TrafficGenerator::TrafficGenerator(const TrafficConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed), rate_per_sec_(arrival_rate_per_sec(cfg)) {
  next_time_ = static_cast<Time>(
      rng_.exponential(static_cast<double>(kSecond) / rate_per_sec_));
}

FlowletEvent TrafficGenerator::next() {
  FlowletEvent ev;
  ev.start = next_time_;
  const auto n = static_cast<std::uint64_t>(cfg_.num_hosts);
  ev.src_host = static_cast<std::int32_t>(rng_.below(n));
  // Uniform destination among the other hosts.
  auto dst = static_cast<std::int32_t>(rng_.below(n - 1));
  if (dst >= ev.src_host) ++dst;
  ev.dst_host = dst;
  ev.bytes = workload_dist(cfg_.workload).sample(rng_);
  next_time_ += static_cast<Time>(
      rng_.exponential(static_cast<double>(kSecond) / rate_per_sec_));
  return ev;
}

std::vector<FlowletEvent> TrafficGenerator::generate(Time horizon) {
  std::vector<FlowletEvent> out;
  while (next_time_ < horizon) out.push_back(next());
  return out;
}

}  // namespace ft::wl
