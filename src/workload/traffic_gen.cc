#include "workload/traffic_gen.h"

#include <algorithm>

#include "common/check.h"

namespace ft::wl {

double arrival_rate_per_sec(const TrafficConfig& cfg) {
  FT_CHECK(cfg.num_hosts >= 2);
  FT_CHECK(cfg.load > 0.0);
  const double mean_bits = workload_dist(cfg.workload).mean_bytes() * 8.0;
  return cfg.load * cfg.host_link_bps *
         static_cast<double>(cfg.num_hosts) / mean_bits;
}

TrafficGenerator::TrafficGenerator(const TrafficConfig& cfg)
    : cfg_(cfg), rng_(cfg.seed), rate_per_sec_(arrival_rate_per_sec(cfg)) {
  next_time_ = static_cast<Time>(
      rng_.exponential(static_cast<double>(kSecond) / rate_per_sec_));
}

FlowletEvent TrafficGenerator::next() {
  FlowletEvent ev;
  ev.start = next_time_;
  const auto n = static_cast<std::uint64_t>(cfg_.num_hosts);
  ev.src_host = static_cast<std::int32_t>(rng_.below(n));
  // Uniform destination among the other hosts.
  auto dst = static_cast<std::int32_t>(rng_.below(n - 1));
  if (dst >= ev.src_host) ++dst;
  ev.dst_host = dst;
  ev.bytes = workload_dist(cfg_.workload).sample(rng_);
  next_time_ += static_cast<Time>(
      rng_.exponential(static_cast<double>(kSecond) / rate_per_sec_));
  return ev;
}

std::vector<FlowletEvent> TrafficGenerator::generate(Time horizon) {
  std::vector<FlowletEvent> out;
  while (next_time_ < horizon) out.push_back(next());
  return out;
}

PacketTraceGenerator::PacketTraceGenerator(const TrafficConfig& cfg,
                                           BurstConfig burst)
    : flows_(cfg), burst_(burst), rng_(cfg.seed ^ 0xB0B5B0B5ULL) {
  FT_CHECK(burst_.mtu_bytes >= 1);
  FT_CHECK(burst_.pacing_bps > 0.0);
  FT_CHECK(burst_.mean_burst_packets >= 1.0);
}

PacketTrace PacketTraceGenerator::generate(Time horizon) {
  PacketTrace trace;
  const Time base_spacing = tx_time(burst_.mtu_bytes, burst_.pacing_bps);
  for (const FlowletEvent& flow : flows_.generate(horizon)) {
    const auto flow_id = static_cast<std::uint32_t>(trace.flows++);
    std::int64_t remaining =
        (flow.bytes + burst_.mtu_bytes - 1) / burst_.mtu_bytes;
    std::int64_t last_bytes =
        flow.bytes - (remaining - 1) * burst_.mtu_bytes;
    Time t = flow.start;
    std::uint32_t burst_index = 0;
    while (remaining > 0) {
      std::int64_t burst_len = 1;
      if (burst_.mean_burst_packets > 1.0) {
        burst_len += static_cast<std::int64_t>(
            rng_.exponential(burst_.mean_burst_packets - 1.0));
      }
      burst_len = std::min(burst_len, remaining);
      ++trace.bursts;
      for (std::int64_t i = 0; i < burst_len; ++i) {
        PacketEvent p;
        p.at = t;
        p.flow_id = flow_id;
        p.src_host = flow.src_host;
        p.dst_host = flow.dst_host;
        p.bytes = (remaining == 1)
                      ? static_cast<std::int32_t>(last_bytes)
                      : burst_.mtu_bytes;
        p.burst_index = burst_index;
        p.burst_start = (i == 0);
        p.burst_end = (i == burst_len - 1);
        trace.packets.push_back(p);
        --remaining;
        t += static_cast<Time>(
            static_cast<double>(base_spacing) *
            rng_.uniform(1.0, 1.0 + burst_.jitter_max));
      }
      ++burst_index;
      if (remaining > 0) {
        t += burst_.min_think_gap +
             static_cast<Time>(rng_.exponential(
                 static_cast<double>(burst_.mean_think_gap)));
      }
    }
  }
  std::stable_sort(trace.packets.begin(), trace.packets.end(),
                   [](const PacketEvent& a, const PacketEvent& b) {
                     return a.at < b.at;
                   });
  return trace;
}

}  // namespace ft::wl
