#include "workload/size_dist.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/wire.h"

namespace ft::wl {
namespace {

// Mean of a log-linear CDF segment [(b0, p0), (b1, p1)]: sizes within the
// segment are distributed with CDF linear in probability against
// log(bytes), i.e. the quantile is b0 * (b1/b0)^((u - p0)/(p1 - p0)); the
// conditional mean is the integral of the quantile over u, which has the
// closed form (b1 - b0) / log(b1/b0) when b1 != b0.
double segment_mean(double b0, double b1) {
  if (b0 == b1) return b0;
  return (b1 - b0) / std::log(b1 / b0);
}

}  // namespace

SizeDistribution::SizeDistribution(std::string name,
                                   std::vector<CdfPoint> points)
    : name_(std::move(name)), points_(std::move(points)) {
  FT_CHECK(points_.size() >= 2);
  FT_CHECK(points_.front().cum_prob == 0.0);
  FT_CHECK(points_.back().cum_prob == 1.0);
  for (std::size_t i = 1; i < points_.size(); ++i) {
    FT_CHECK(points_[i].bytes >= points_[i - 1].bytes);
    FT_CHECK(points_[i].cum_prob >= points_[i - 1].cum_prob);
    FT_CHECK(points_[i].bytes > 0.0);
  }
  FT_CHECK(points_.front().bytes >= 1.0);
  double mean = 0.0;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    const double dp = points_[i].cum_prob - points_[i - 1].cum_prob;
    mean += dp * segment_mean(points_[i - 1].bytes, points_[i].bytes);
  }
  mean_ = mean;
}

double SizeDistribution::quantile(double u) const {
  FT_CHECK(u >= 0.0 && u <= 1.0);
  // Find the segment containing u.
  auto it = std::lower_bound(
      points_.begin(), points_.end(), u,
      [](const CdfPoint& p, double v) { return p.cum_prob < v; });
  if (it == points_.begin()) return points_.front().bytes;
  if (it == points_.end()) return points_.back().bytes;
  const CdfPoint& hi = *it;
  const CdfPoint& lo = *(it - 1);
  if (hi.cum_prob == lo.cum_prob || hi.bytes == lo.bytes) return hi.bytes;
  const double frac = (u - lo.cum_prob) / (hi.cum_prob - lo.cum_prob);
  return lo.bytes * std::pow(hi.bytes / lo.bytes, frac);
}

std::int64_t SizeDistribution::sample(Rng& rng) const {
  const double b = quantile(rng.uniform());
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(b + 0.5));
}

const SizeDistribution& workload_dist(Workload w) {
  // Approximations of the Facebook flow-size CDFs (see header comment).
  // Mean sizes: Web ~ 64 KB < Cache ~ 163 KB < Hadoop ~ 625 KB.
  static const SizeDistribution web(
      "web", {
                 {64, 0.00},
                 {256, 0.15},
                 {512, 0.30},
                 {1024, 0.50},
                 {2048, 0.62},
                 {4096, 0.72},
                 {16384, 0.84},
                 {65536, 0.91},
                 {262144, 0.965},
                 {1048576, 0.992},
                 {10485760, 1.00},
             });
  static const SizeDistribution cache(
      "cache", {
                   {64, 0.00},
                   {512, 0.12},
                   {2048, 0.35},
                   {8192, 0.56},
                   {32768, 0.72},
                   {131072, 0.84},
                   {524288, 0.925},
                   {2097152, 0.975},
                   {8388608, 0.996},
                   {33554432, 1.00},
               });
  static const SizeDistribution hadoop(
      "hadoop", {
                    {256, 0.00},
                    {1024, 0.30},
                    {4096, 0.52},
                    {16384, 0.66},
                    {131072, 0.80},
                    {1048576, 0.90},
                    {8388608, 0.965},
                    {67108864, 0.995},
                    {268435456, 1.00},
                });
  switch (w) {
    case Workload::kWeb:
      return web;
    case Workload::kCache:
      return cache;
    case Workload::kHadoop:
      return hadoop;
  }
  FT_CHECK(false);
}

const char* workload_name(Workload w) {
  switch (w) {
    case Workload::kWeb:
      return "web";
    case Workload::kCache:
      return "cache";
    case Workload::kHadoop:
      return "hadoop";
  }
  return "?";
}

SizeBucket size_bucket(std::int64_t bytes) {
  const auto pkts = (bytes + kMss - 1) / kMss;
  if (pkts <= 1) return SizeBucket::kOnePacket;
  if (pkts <= 10) return SizeBucket::k1To10;
  if (pkts <= 100) return SizeBucket::k10To100;
  if (pkts <= 1000) return SizeBucket::k100To1000;
  return SizeBucket::kLarge;
}

const char* size_bucket_name(SizeBucket b) {
  switch (b) {
    case SizeBucket::kOnePacket:
      return "1 packet";
    case SizeBucket::k1To10:
      return "1-10 packets";
    case SizeBucket::k10To100:
      return "10-100 packets";
    case SizeBucket::k100To1000:
      return "100-1000 packets";
    case SizeBucket::kLarge:
      return "large";
  }
  return "?";
}

}  // namespace ft::wl
