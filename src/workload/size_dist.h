// Flow/flowlet size distributions.
//
// The paper draws flowlet sizes from the Web, Cache and Hadoop workloads
// published by Facebook (Roy et al., "Inside the social network's
// (datacenter) network", SIGCOMM 2015). The exact traces are proprietary;
// the piecewise log-linear CDFs below approximate the published curves.
// What Flowtune's results depend on -- and what these tables preserve --
// is (a) most flows are a handful of packets, (b) heavy upper tails carry
// most bytes, and (c) the mean flowlet size ordering Web < Cache < Hadoop,
// which drives the relative allocator-traffic overhead of §6.4 (Web has
// the smallest mean, hence the highest churn and the most update traffic).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/rng.h"

namespace ft::wl {

struct CdfPoint {
  double bytes;
  double cum_prob;  // P(size <= bytes)
};

// Empirical CDF with log-linear interpolation between points; sampling is
// by inverse transform.
class SizeDistribution {
 public:
  SizeDistribution(std::string name, std::vector<CdfPoint> points);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::span<const CdfPoint> points() const { return points_; }

  // Mean flow size in bytes (closed form over the log-linear segments).
  [[nodiscard]] double mean_bytes() const { return mean_; }

  // Inverse CDF at quantile u in [0, 1).
  [[nodiscard]] double quantile(double u) const;

  // Draw a flow size in bytes (>= 1).
  [[nodiscard]] std::int64_t sample(Rng& rng) const;

 private:
  std::string name_;
  std::vector<CdfPoint> points_;
  double mean_ = 0.0;
};

enum class Workload { kWeb, kCache, kHadoop };

[[nodiscard]] const SizeDistribution& workload_dist(Workload w);
[[nodiscard]] const char* workload_name(Workload w);

// FCT reporting buckets of Figure 8, in packets of kMss bytes:
// "1 packet", "1-10", "10-100", "100-1000", "large".
enum class SizeBucket : std::uint8_t {
  kOnePacket = 0,
  k1To10 = 1,
  k10To100 = 2,
  k100To1000 = 3,
  kLarge = 4,
};
inline constexpr std::int32_t kNumSizeBuckets = 5;

[[nodiscard]] SizeBucket size_bucket(std::int64_t bytes);
[[nodiscard]] const char* size_bucket_name(SizeBucket b);

}  // namespace ft::wl
