#include "core/problem.h"

#include <algorithm>
#include <cmath>

namespace ft::core {

NumProblem::NumProblem(std::vector<double> link_capacities_bps)
    : capacity_(std::move(link_capacities_bps)) {
  FT_CHECK(!capacity_.empty());
  for (double c : capacity_) FT_CHECK(c > 0.0);
}

void NumProblem::scale_capacities(double factor) {
  FT_CHECK(factor > 0.0);
  for (double& c : capacity_) c *= factor;
}

void NumProblem::set_capacity(std::size_t link, double capacity_bps) {
  FT_CHECK(link < capacity_.size());
  FT_CHECK(capacity_bps > 0.0);
  capacity_[link] = capacity_bps;
  for (FlowEntry& f : flows_) {
    if (!f.active) continue;
    bool on_link = false;
    for (std::uint32_t l : f.route()) on_link = on_link || l == link;
    if (!on_link) continue;
    double cap = capacity_[f.links[0]];
    for (std::uint32_t l : f.route()) cap = std::min(cap, capacity_[l]);
    f.rate_cap = cap;
    f.price_floor =
        f.util.is_fixed()
            ? 0.0
            : f.util.weight /
                  std::pow(kDemandCapFactor * cap, f.util.alpha);
  }
  ++version_;
}

FlowIndex NumProblem::add_flow(std::span<const LinkId> route,
                               Utility util) {
  FT_CHECK(!route.empty());
  FT_CHECK(route.size() <= kMaxRouteLinks);
  FT_CHECK(util.weight > 0.0);

  FlowIndex idx;
  if (!free_list_.empty()) {
    idx = free_list_.back();
    free_list_.pop_back();
  } else {
    idx = static_cast<FlowIndex>(flows_.size());
    flows_.emplace_back();
  }
  FlowEntry& f = flows_[idx];
  f.util = util;
  f.num_links = static_cast<std::uint8_t>(route.size());
  double cap = capacity_[route[0].value()];
  for (std::size_t i = 0; i < route.size(); ++i) {
    FT_CHECK(route[i].value() < capacity_.size());
    f.links[i] = route[i].value();
    cap = std::min(cap, capacity_[route[i].value()]);
  }
  f.rate_cap = cap;
  // x(P) = (w/P)^(1/alpha) == kDemandCapFactor * cap at
  // P = w / (kDemandCapFactor * cap)^alpha. Fixed-demand flows ignore
  // prices entirely.
  f.price_floor =
      util.is_fixed()
          ? 0.0
          : util.weight / std::pow(kDemandCapFactor * cap, util.alpha);
  f.active = true;
  ++num_active_;
  ++version_;
  return idx;
}

void NumProblem::remove_flow(FlowIndex idx) {
  FT_CHECK(idx < flows_.size());
  FT_CHECK(flows_[idx].active);
  flows_[idx].active = false;
  flows_[idx].num_links = 0;
  free_list_.push_back(idx);
  FT_CHECK(num_active_ > 0);
  --num_active_;
  ++version_;
}

}  // namespace ft::core
