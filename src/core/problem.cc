#include "core/problem.h"

#include <algorithm>
#include <cmath>

namespace ft::core {

NumProblem::NumProblem(std::vector<double> link_capacities_bps)
    : capacity_(std::move(link_capacities_bps)),
      link_flows_(capacity_.size()) {
  FT_CHECK(!capacity_.empty());
  for (double c : capacity_) FT_CHECK(c > 0.0);
}

void NumProblem::scale_capacities(double factor) {
  FT_CHECK(factor > 0.0);
  for (double& c : capacity_) c *= factor;
}

void NumProblem::refresh_demand_bound(FlowIndex s) {
  const std::uint32_t* r = route_links_.data() + s * kMaxRouteLinks;
  double cap = capacity_[r[0]];
  for (std::uint32_t i = 1; i < route_len_[s]; ++i) {
    cap = std::min(cap, capacity_[r[i]]);
  }
  rate_cap_[s] = cap;
  // x(P) = (w/P)^(1/alpha) == kDemandCapFactor * cap at
  // P = w / (kDemandCapFactor * cap)^alpha. Fixed-demand flows ignore
  // prices entirely.
  price_floor_[s] =
      alpha_[s] == 0.0
          ? 0.0
          : weight_[s] / std::pow(kDemandCapFactor * cap, alpha_[s]);
}

void NumProblem::set_capacity(std::size_t link, double capacity_bps) {
  FT_CHECK(link < capacity_.size());
  FT_CHECK(capacity_bps > 0.0);
  capacity_[link] = capacity_bps;
  for (const std::uint32_t entry : link_flows_[link]) {
    refresh_demand_bound(adj_slot(entry));
  }
  ++version_;
}

void NumProblem::reserve(std::size_t slots) {
  route_len_.reserve(slots);
  route_links_.reserve(slots * kMaxRouteLinks);
  weight_.reserve(slots);
  alpha_.reserve(slots);
  price_floor_.reserve(slots);
  rate_cap_.reserve(slots);
  adj_pos_.reserve(slots * kMaxRouteLinks);
  free_list_.reserve(slots);
  // Per-link adjacency: reserve each link's uniform-average share (the
  // total matches route_links_, so this at most doubles the reserve's
  // footprint). Links loaded beyond the average still grow to their own
  // peak once, then stay there across churn.
  const std::size_t per_link =
      slots * kMaxRouteLinks / link_flows_.size() + 1;
  for (auto& adj : link_flows_) adj.reserve(per_link);
}

FlowIndex NumProblem::add_flow(std::span<const LinkId> route,
                               Utility util) {
  FT_CHECK(!route.empty());
  FT_CHECK(route.size() <= kMaxRouteLinks);
  FT_CHECK(util.weight > 0.0);

  FlowIndex idx;
  if (!free_list_.empty()) {
    idx = free_list_.back();
    free_list_.pop_back();
  } else {
    idx = static_cast<FlowIndex>(route_len_.size());
    route_len_.push_back(0);
    route_links_.resize(route_links_.size() + kMaxRouteLinks, 0);
    weight_.push_back(0.0);
    alpha_.push_back(0.0);
    price_floor_.push_back(0.0);
    rate_cap_.push_back(0.0);
    adj_pos_.resize(adj_pos_.size() + kMaxRouteLinks, 0);
  }
  weight_[idx] = util.weight;
  alpha_[idx] = util.alpha;
  route_len_[idx] = static_cast<std::uint8_t>(route.size());
  std::uint32_t* r = route_links_.data() + idx * kMaxRouteLinks;
  std::uint32_t* pos = adj_pos_.data() + idx * kMaxRouteLinks;
  for (std::size_t i = 0; i < route.size(); ++i) {
    const std::uint32_t l = route[i].value();
    FT_CHECK(l < capacity_.size());
    r[i] = l;
    auto& adj = link_flows_[l];
    pos[i] = static_cast<std::uint32_t>(adj.size());
    adj.push_back((idx << 3) | static_cast<std::uint32_t>(i));
  }
  refresh_demand_bound(idx);
  ++num_active_;
  ++version_;
  return idx;
}

void NumProblem::remove_flow(FlowIndex idx) {
  FT_CHECK(idx < route_len_.size());
  FT_CHECK(route_len_[idx] != 0);
  const std::uint32_t* r = route_links_.data() + idx * kMaxRouteLinks;
  const std::uint32_t* pos = adj_pos_.data() + idx * kMaxRouteLinks;
  for (std::uint32_t i = 0; i < route_len_[idx]; ++i) {
    auto& adj = link_flows_[r[i]];
    const std::uint32_t p = pos[i];
    FT_CHECK(p < adj.size() && adj_slot(adj[p]) == idx);
    // Swap-remove, fixing the moved entry's position index.
    adj[p] = adj.back();
    adj.pop_back();
    if (p < adj.size()) {
      adj_pos_[adj_slot(adj[p]) * kMaxRouteLinks + adj_route_idx(adj[p])] =
          p;
    }
  }
  route_len_[idx] = 0;
  free_list_.push_back(idx);
  FT_CHECK(num_active_ > 0);
  --num_active_;
  ++version_;
}

}  // namespace ft::core
