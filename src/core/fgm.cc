#include "core/fgm.h"

#include <algorithm>
#include <cmath>

namespace ft::core {

void FgmSolver::iterate() {
  if (restart_on_churn_ && problem_.version() != seen_version_) {
    t_ = 1.0;
    prev_prices_ = prices_;
  }
  seen_version_ = problem_.version();

  // Extrapolated point y = p_k + ((t_k - 1) / t_{k+1}) (p_k - p_{k-1}).
  const double t_next = 0.5 * (1.0 + std::sqrt(1.0 + 4.0 * t_ * t_));
  const double beta = (t_ - 1.0) / t_next;
  std::vector<double> y(prices_.size());
  for (std::size_t l = 0; l < prices_.size(); ++l) {
    y[l] =
        std::max(0.0, prices_[l] + beta * (prices_[l] - prev_prices_[l]));
  }
  prev_prices_ = prices_;
  t_ = t_next;

  // Gradient at the extrapolated point: evaluate rates with prices = y.
  prices_.swap(y);
  update_rates();

  // Crude curvature upper bound per link: |x'_s(P)| for alpha-fair flows
  // is decreasing in P and P >= p_l on s's route, so evaluating the
  // demand slope as if the flow saw only this link's (floored) price
  // upper-bounds the flow's Hessian contribution.
  constexpr double kPriceFloor = 1e-2;
  std::vector<double> bound(prices_.size(), 0.0);
  for (const FlowEntry& f : problem_.flows()) {
    if (!f.active) continue;
    for (std::uint32_t l : f.route()) {
      const double pl = std::max(prices_[l], kPriceFloor);
      const double x = f.util.rate(pl);
      bound[l] += -f.util.drate(pl, x);  // |x'(pl)|
    }
  }
  for (std::size_t l = 0; l < prices_.size(); ++l) {
    if (bound[l] <= 0.0) continue;  // idle link: keep price
    const double g = link_alloc_[l] - problem_.capacity(l);
    prices_[l] = std::max(0.0, prices_[l] + gamma_ * g / bound[l]);
  }
}

}  // namespace ft::core
