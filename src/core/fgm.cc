#include "core/fgm.h"

#include <algorithm>
#include <cmath>

namespace ft::core {

void FgmSolver::iterate() {
  if (restart_on_churn_ && problem_.version() != seen_version_) {
    t_ = 1.0;
    prev_prices_ = prices_;
  }
  seen_version_ = problem_.version();

  // Extrapolated point y = p_k + ((t_k - 1) / t_{k+1}) (p_k - p_{k-1}).
  const double t_next = 0.5 * (1.0 + std::sqrt(1.0 + 4.0 * t_ * t_));
  const double beta = (t_ - 1.0) / t_next;
  std::vector<double> y(prices_.size());
  for (std::size_t l = 0; l < prices_.size(); ++l) {
    y[l] =
        std::max(0.0, prices_[l] + beta * (prices_[l] - prev_prices_[l]));
  }
  prev_prices_ = prices_;
  t_ = t_next;

  // Gradient at the extrapolated point: evaluate rates with prices = y.
  prices_.swap(y);
  update_rates();

  // Crude curvature upper bound per link: |x'_s(P)| for alpha-fair flows
  // is decreasing in P and P >= p_l on s's route, so evaluating the
  // demand slope as if the flow saw only this link's (floored) price
  // upper-bounds the flow's Hessian contribution.
  constexpr double kPriceFloor = 1e-2;
  std::vector<double> bound(prices_.size(), 0.0);
  const std::uint8_t* len = problem_.route_len().data();
  const std::uint32_t* links = problem_.route_links().data();
  for (std::size_t s = 0; s < problem_.num_slots(); ++s) {
    const std::uint32_t nl = len[s];
    if (nl == 0) continue;
    const Utility util{problem_.weight()[s], problem_.alpha()[s]};
    const std::uint32_t* r = links + s * kMaxRouteLinks;
    for (std::uint32_t i = 0; i < nl; ++i) {
      const std::uint32_t l = r[i];
      const double pl = std::max(prices_[l], kPriceFloor);
      const double x = util.rate(pl);
      bound[l] += -util.drate(pl, x);  // |x'(pl)|
    }
  }
  for (std::size_t l = 0; l < prices_.size(); ++l) {
    if (bound[l] <= 0.0) continue;  // idle link: keep price
    const double g = link_alloc_[l] - problem_.capacity(l);
    prices_[l] = std::max(0.0, prices_[l] + gamma_ * g / bound[l]);
  }
}

}  // namespace ft::core
