#include "core/allocator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/ratecode.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ft::core {

// Registry handles resolved once at construction; every hot-path
// recording below is a relaxed striped-atomic touch (no lock, no heap).
struct Allocator::Metrics {
  obs::Counter& flowlet_starts;
  obs::Counter& flowlet_ends;
  obs::Counter& iterations;
  obs::Counter& updates_emitted;
  obs::Counter& updates_suppressed;
  obs::Counter& updates_refreshed;
  obs::LatencyHisto& solve_us;  // backend solve + normalize per round
  obs::LatencyHisto& emit_us;   // thresholded emission sweep per round

  explicit Metrics(obs::MetricsRegistry& reg)
      : flowlet_starts(reg.counter("core.flowlet_starts")),
        flowlet_ends(reg.counter("core.flowlet_ends")),
        iterations(reg.counter("core.iterations")),
        updates_emitted(reg.counter("core.updates_emitted")),
        updates_suppressed(reg.counter("core.updates_suppressed")),
        updates_refreshed(reg.counter("core.updates_refreshed")),
        solve_us(reg.histo("core.solve_us")),
        emit_us(reg.histo("core.emit_us")) {}
};

Allocator::Allocator(std::vector<double> link_capacities_bps,
                     AllocatorConfig cfg)
    : Allocator(std::move(link_capacities_bps), cfg,
                sequential_backend()) {}

Allocator::Allocator(std::vector<double> link_capacities_bps,
                     AllocatorConfig cfg, BackendFactory backend)
    : cfg_(cfg), problem_(std::move(link_capacities_bps)) {
  FT_CHECK(cfg.threshold >= 0.0 && cfg.threshold < 1.0);
  FT_CHECK(cfg.iters_per_round >= 1);
  if (cfg_.reserve_headroom && cfg_.threshold > 0.0) {
    problem_.scale_capacities(1.0 - cfg_.threshold);
  }
  backend_ = backend(problem_, cfg_.gamma, cfg_.norm);
  FT_CHECK(backend_ != nullptr);
  if (cfg_.metrics != nullptr) {
    metrics_ = cfg_.metrics;
  } else {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  m_ = std::make_unique<Metrics>(*metrics_);
  backend_->bind_metrics(*metrics_);
}

Allocator::~Allocator() = default;

AllocatorStats Allocator::stats() const {
  AllocatorStats s;
  s.flowlet_starts = m_->flowlet_starts.value();
  s.flowlet_ends = m_->flowlet_ends.value();
  s.iterations = m_->iterations.value();
  s.updates_emitted = m_->updates_emitted.value();
  s.updates_suppressed = m_->updates_suppressed.value();
  s.updates_refreshed = m_->updates_refreshed.value();
  return s;
}

void Allocator::reserve(std::size_t flows) {
  problem_.reserve(flows);
  key_to_slot_.reserve(flows);
  slot_to_key_.reserve(flows);
  last_notified_.reserve(flows);
}

bool Allocator::flowlet_start(std::uint64_t key,
                              std::span<const LinkId> route) {
  return flowlet_start(key, route, cfg_.default_util);
}

bool Allocator::flowlet_start(std::uint64_t key,
                              std::span<const LinkId> route, Utility util) {
  if (key_to_slot_.contains(key)) return false;
  const FlowIndex slot = problem_.add_flow(route, util);
  backend_->flow_added(slot);
  key_to_slot_.emplace(key, slot);
  if (slot >= slot_to_key_.size()) {
    // Churn spike: grow geometrically in one step so repeated starts
    // within a round do not reallocate again and again.
    const std::size_t want = slot + 1;
    if (want > slot_to_key_.capacity()) {
      const std::size_t cap =
          std::max<std::size_t>(want, slot_to_key_.capacity() * 2);
      slot_to_key_.reserve(cap);
      last_notified_.reserve(cap);
    }
    slot_to_key_.resize(want, 0);
    last_notified_.resize(want, -1.0);
  }
  slot_to_key_[slot] = key;
  last_notified_[slot] = -1.0;
  m_->flowlet_starts.add(1);
  return true;
}

void Allocator::set_link_capacity(std::size_t link, double capacity_bps) {
  FT_CHECK(capacity_bps > 0.0);
  if (cfg_.reserve_headroom && cfg_.threshold > 0.0) {
    capacity_bps *= 1.0 - cfg_.threshold;
  }
  problem_.set_capacity(link, capacity_bps);
}

bool Allocator::flowlet_end(std::uint64_t key) {
  const FlowIndex* slot = key_to_slot_.find(key);
  if (slot == nullptr) return false;
  backend_->flow_removed(*slot);
  problem_.remove_flow(*slot);
  last_notified_[*slot] = -1.0;
  key_to_slot_.erase(key);
  m_->flowlet_ends.add(1);
  return true;
}

void Allocator::run_iteration(std::vector<RateUpdate>& out) {
  // One clock for the round: obs::now_ns (CLOCK_MONOTONIC_RAW), so the
  // stamps exposed via last_round_stamps() difference cleanly against
  // the service's trace hop stamps. Histograms keep microseconds.
  const std::int64_t t0 = obs::now_ns();
  backend_->solve(cfg_.iters_per_round);
  const std::int64_t t1 = obs::now_ns();
  m_->solve_us.record_signed((t1 - t0) / 1000);
  m_->iterations.add(1);

  const std::span<const double> norm_rates = backend_->norm_rates();
  const std::size_t slots = problem_.num_slots();
  const std::uint8_t* len = problem_.route_len().data();
  // One up-front re-reserve covers the worst case (every active flow
  // notified) so the emission loop never reallocates mid-round; with a
  // recycled `out` this is a steady-state no-op.
  out.reserve(out.size() + problem_.num_active());
  // Per-update counts accumulate locally and hit the striped counters
  // once per round: the 100k-flow emission sweep stays atomics-free.
  std::uint64_t emitted = 0;
  std::uint64_t suppressed = 0;
  std::uint64_t refreshed = 0;
  const std::uint64_t round = ++round_seq_;
  const auto refresh_n = static_cast<std::uint64_t>(
      cfg_.refresh_rounds > 0 ? cfg_.refresh_rounds : 0);
  for (std::size_t s = 0; s < slots; ++s) {
    if (len[s] == 0) continue;
    const double rate = norm_rates[s];
    const double last = last_notified_[s];
    const bool first = last < 0.0;
    // Notify when the rate moved by more than the threshold relative to
    // the last notified value (both directions), or on first allocation.
    const bool organic =
        first || rate > last * (1.0 + cfg_.threshold) ||
        rate < last * (1.0 - cfg_.threshold);
    // Anti-entropy: this slot's staggered turn to be re-emitted past
    // the filter, repairing any update the delivery layer lost (see
    // AllocatorConfig::refresh_rounds).
    const bool refresh =
        !organic && refresh_n != 0 && (round + s) % refresh_n == 0;
    if (!organic && !refresh) {
      ++suppressed;
      continue;
    }
    RateUpdate u;
    u.key = slot_to_key_[s];
    u.rate_code = encode_rate(rate);
    u.rate_bps = decode_rate(u.rate_code);
    out.push_back(u);
    last_notified_[s] = u.rate_bps;
    ++emitted;
    if (refresh) ++refreshed;
  }
  const std::int64_t t2 = obs::now_ns();
  m_->emit_us.record_signed((t2 - t1) / 1000);
  m_->updates_emitted.add(emitted);
  m_->updates_suppressed.add(suppressed);
  m_->updates_refreshed.add(refreshed);
  stamps_.solve_start_ns = t0;
  stamps_.solve_end_ns = t1;
  stamps_.emit_end_ns = t2;
  if (obs::PhaseTracer::enabled()) {
    obs::PhaseTracer::record("core.solve", t0 / 1000, (t1 - t0) / 1000);
    obs::PhaseTracer::record("core.emit", t1 / 1000, (t2 - t1) / 1000);
  }
}

void Allocator::invalidate_notification(std::uint64_t key) {
  const FlowIndex* slot = key_to_slot_.find(key);
  if (slot == nullptr) return;
  last_notified_[*slot] = -1.0;
}

double Allocator::notified_rate(std::uint64_t key) const {
  const FlowIndex* slot = key_to_slot_.find(key);
  if (slot == nullptr) return 0.0;
  const double r = last_notified_[*slot];
  return r < 0.0 ? 0.0 : r;
}

double Allocator::allocated_rate(std::uint64_t key) const {
  const FlowIndex* slot = key_to_slot_.find(key);
  if (slot == nullptr) return 0.0;
  const std::span<const double> norm_rates = backend_->norm_rates();
  if (*slot >= norm_rates.size()) return 0.0;
  return norm_rates[*slot];
}

}  // namespace ft::core
