// Multicore NED + F-NORM engine (paper §5, Figures 2-3).
//
// Workers form an n x n grid of FlowBlocks (row = source block, column =
// destination block). Each worker keeps *private copies* of the link
// state (prices, aggregate allocation, Hessian diagonal) for its row's
// upward LinkBlock and its column's downward LinkBlock, so the rate
// update performs no cross-worker writes at all. A log2(n)-step pairwise
// aggregation (Figure 3) then combines the private sums onto authoritative
// owners -- upward LinkBlock i at worker (i,i), downward LinkBlock j at
// worker (n-1-j, j) -- which apply the NED price update and compute
// F-NORM's link ratios; the same schedule replayed in reverse distributes
// fresh prices and ratios back to every worker's private copies.
//
// The engine produces results identical to the sequential NedSolver up to
// floating-point summation order (unit-tested), and runs its workers on a
// configurable number of threads, as in §6.1 where multiple FlowBlocks
// are mapped to each CPU: each thread owns a *contiguous* band of grid
// workers (whole rows when num_threads == num_blocks) and, when a CpuMap
// is configured, pins itself to that band's row CPU so LinkBlock state
// stays cache-resident across iterations.
#pragma once

#include <atomic>
#include <barrier>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/cpu_map.h"
#include "core/problem.h"
#include "topo/partition.h"

namespace ft::obs {
class LatencyHisto;
class MetricsRegistry;
}  // namespace ft::obs

namespace ft::core {

struct ParallelConfig {
  std::int32_t num_blocks = 2;   // n; must be a power of two
  std::int32_t num_threads = 0;  // 0 = min(n^2, hardware_concurrency)
  double gamma = 1.0;
  bool compute_norm = true;      // piggyback F-NORM on the same schedule
  // §6.1 block-row -> CPU pinning for the worker threads (no-op when
  // disabled). Thread t is pinned to the CPU of the first grid row it
  // owns, so with num_threads == num_blocks each row has its own core.
  CpuMapConfig pin;
};

class ParallelNed {
 public:
  ParallelNed(NumProblem& problem, const topo::BlockPartition& partition,
              ParallelConfig cfg);
  ~ParallelNed();

  ParallelNed(const ParallelNed&) = delete;
  ParallelNed& operator=(const ParallelNed&) = delete;

  // Assigns a flow slot to FlowBlock (src_block, dst_block). Every link
  // on the flow's route must belong to the matching LinkBlock.
  void assign_flow(FlowIndex slot, std::int32_t src_block,
                   std::int32_t dst_block);
  void unassign_flow(FlowIndex slot);

  // One full parallel iteration (rate update, aggregate, price update,
  // distribute, normalize). Pass compute_norm = false to skip the
  // normalization pass for this iteration (e.g. all but the last of a
  // multi-iteration round -- only the final rates are normalized);
  // it is also skipped whenever the config disables it.
  void iterate(bool compute_norm = true);

  [[nodiscard]] std::span<const double> rates() const { return rates_; }
  [[nodiscard]] std::span<const double> norm_rates() const {
    return norm_rates_;
  }
  // Authoritative per-link prices / allocations (written by owners).
  [[nodiscard]] std::span<const double> prices() const {
    return global_price_;
  }
  [[nodiscard]] std::span<const double> link_alloc() const {
    return global_alloc_;
  }

  [[nodiscard]] std::int32_t num_workers() const { return num_workers_; }
  [[nodiscard]] std::int32_t num_threads() const { return num_threads_; }
  // Row -> CPU layout in use ("" when pinning is disabled); for logs and
  // bench run metadata.
  [[nodiscard]] std::string pinning() const { return cpu_map_.describe(); }

  // Wall-clock duration of the last iterate() in seconds, and TSC cycles
  // when available (0 otherwise).
  [[nodiscard]] double last_iter_seconds() const {
    return last_iter_seconds_;
  }
  [[nodiscard]] std::uint64_t last_iter_cycles() const {
    return last_iter_cycles_;
  }
  // Slowest thread's compute time (barrier waits excluded) in the last
  // iterate(), in microseconds. The flight recorder stores this per
  // round so a solve spike can be attributed to band load imbalance
  // without re-running with tracing on. Valid after the first iterate().
  [[nodiscard]] double last_band_max_us() const;

  // Telemetry (cold path; call before the first iterate): each worker
  // thread records its per-iteration compute time (barrier waits
  // excluded) into core.par.band_us and its accumulated barrier wait
  // into core.par.barrier_wait_us -- the spread between threads is the
  // load-imbalance signal.
  void bind_metrics(obs::MetricsRegistry& reg);

 private:
  struct WorkerState {
    std::vector<double> price;
    std::vector<double> alloc;
    std::vector<double> dxdp;
    std::vector<double> ratio;
    std::vector<FlowIndex> flows;
  };

  void thread_main(std::int32_t t);
  void run_phases(std::int32_t t);
  void rate_update(WorkerState& w, std::int32_t row, std::int32_t col);
  void price_update_owned(std::int32_t worker);

  [[nodiscard]] std::span<const LinkId> block_links(bool upward,
                                                    std::int32_t b) const {
    const auto& v = upward ? part_.up_links[static_cast<std::size_t>(b)]
                           : part_.down_links[static_cast<std::size_t>(b)];
    return v;
  }

  NumProblem& problem_;
  topo::BlockPartition part_;
  topo::AggregationSchedule schedule_;
  ParallelConfig cfg_;
  std::int32_t n_;
  std::int32_t num_workers_;
  std::int32_t num_threads_;
  CpuMap cpu_map_;

  // Contiguous worker -> thread bands: thread t owns workers
  // [band_begin_[t], band_begin_[t + 1]), i.e. whole rows when
  // num_threads == n. Any partition is correct (workers touch disjoint
  // private state between barriers); contiguity is what makes row
  // pinning meaningful.
  std::vector<std::int32_t> band_begin_;  // size num_threads + 1

  std::vector<WorkerState> workers_;
  std::vector<std::int32_t> flow_worker_;    // slot -> worker (-1 = none)
  std::vector<std::uint32_t> flow_pos_;      // slot -> index in flows vec
  std::vector<double> rates_;
  std::vector<double> norm_rates_;
  std::vector<double> global_price_;
  std::vector<double> global_alloc_;

  bool norm_this_iter_ = true;  // written before the start barrier
  std::vector<std::jthread> threads_;
  std::barrier<> start_barrier_;   // num_threads + 1 (main)
  std::barrier<> end_barrier_;     // num_threads + 1 (main)
  std::barrier<> phase_barrier_;   // num_threads
  std::atomic<bool> stop_{false};

  double last_iter_seconds_ = 0.0;
  std::uint64_t last_iter_cycles_ = 0;
  // Per-thread compute ns of the last iteration. Each thread writes only
  // its own slot between the start/end barriers; the main thread reads
  // after the end barrier, so access is race-free without atomics.
  std::vector<std::int64_t> last_band_ns_;

  obs::LatencyHisto* band_us_ = nullptr;          // per-thread compute
  obs::LatencyHisto* barrier_wait_us_ = nullptr;  // per-thread waiting
};

}  // namespace ft::core
