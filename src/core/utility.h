// Flow utility functions for the NUM objective (paper §3).
//
// NED admits any strictly concave, differentiable, monotonically
// increasing utility. We implement the weighted alpha-fair family
// (Mo & Walrand), which covers the paper's default:
//
//   alpha = 1:  U(x) = w log x            (weighted proportional fairness)
//   alpha != 1: U(x) = w x^(1-alpha) / (1-alpha)
//
// The solver needs the *demand function* x(P) = (U')^{-1}(P) mapping a
// path price to the flow's selfish rate, and its derivative dx/dP (the
// flow's contribution to the Hessian diagonal). For the alpha-fair family:
//
//   x(P)    = (w / P)^(1/alpha)
//   dx/dP   = -x / (alpha * P)      (strictly negative)
//
// The default weight is 1 Gbit/s so that optimal prices are O(1) for
// datacenter-scale capacities; NED's price update G/H is invariant to this
// scaling (both G and H scale linearly with w), it only conditions the
// numerics.
#pragma once

#include <cmath>

#include "common/check.h"

namespace ft::core {

// Smallest path price used in demand evaluations; prevents infinite rates
// while prices re-converge after churn. Rate caps (per-flow bottleneck
// capacity) provide the physically meaningful bound; this is only a
// numerical guard. It must sit far below any realistic optimal price:
// with alpha-fair utilities the optimal price scale is w / x^alpha, which
// for alpha = 2, w = 1e9 and x = 10 Gbit/s is ~1e-11.
inline constexpr double kMinPathPrice = 1e-18;

struct Utility {
  double weight = 1e9;  // w > 0
  // alpha > 0 selects the alpha-fair family (1 = w log x). alpha == 0 is
  // the special *fixed-demand* pseudo-utility used for external traffic
  // (§7 "add dummy flows for external traffic"): the flow demands
  // exactly `weight` bits/sec regardless of prices and contributes
  // nothing to the Hessian -- it consumes capacity, price-responsive
  // flows share the rest.
  double alpha = 1.0;

  [[nodiscard]] static Utility log_utility(double w = 1e9) {
    return Utility{w, 1.0};
  }
  [[nodiscard]] static Utility alpha_fair(double alpha, double w = 1e9) {
    FT_CHECK(alpha > 0.0);
    return Utility{w, alpha};
  }
  [[nodiscard]] static Utility fixed_demand(double rate_bps) {
    FT_CHECK(rate_bps > 0.0);
    return Utility{rate_bps, 0.0};
  }

  [[nodiscard]] bool is_fixed() const { return alpha == 0.0; }

  // Demand x(P) = (U')^{-1}(P).
  [[nodiscard]] double rate(double price_sum) const {
    if (is_fixed()) return weight;
    const double p = price_sum < kMinPathPrice ? kMinPathPrice : price_sum;
    if (alpha == 1.0) return weight / p;
    return std::pow(weight / p, 1.0 / alpha);
  }

  // d x(P) / dP evaluated via the rate (avoids recomputing the power).
  [[nodiscard]] double drate(double price_sum, double rate_at_p) const {
    if (is_fixed()) return 0.0;
    const double p = price_sum < kMinPathPrice ? kMinPathPrice : price_sum;
    return -rate_at_p / (alpha * p);
  }

  // U(x); used for objective-value reporting and fairness scores.
  // Fixed-demand flows carry no utility (they are constraints, not
  // optimization variables).
  [[nodiscard]] double value(double x) const {
    if (is_fixed()) return 0.0;
    FT_CHECK(x > 0.0);
    if (alpha == 1.0) return weight * std::log(x);
    return weight * std::pow(x, 1.0 - alpha) / (1.0 - alpha);
  }

  // U'(x); used in KKT residual checks.
  [[nodiscard]] double marginal(double x) const {
    if (is_fixed()) return 0.0;
    FT_CHECK(x > 0.0);
    if (alpha == 1.0) return weight / x;
    return weight * std::pow(x, -alpha);
  }
};

}  // namespace ft::core
