#include "core/fastpass.h"

namespace ft::core {

FastpassArbiter::FastpassArbiter(std::int32_t num_hosts,
                                 std::int64_t mtu_bytes)
    : num_hosts_(num_hosts),
      mtu_(mtu_bytes),
      pair_index_(static_cast<std::size_t>(num_hosts) *
                      static_cast<std::size_t>(num_hosts),
                  -1),
      src_busy_(static_cast<std::size_t>(num_hosts), 0),
      dst_busy_(static_cast<std::size_t>(num_hosts), 0) {
  FT_CHECK(num_hosts >= 2);
  FT_CHECK(mtu_bytes > 0);
}

void FastpassArbiter::add_demand(std::int32_t src, std::int32_t dst,
                                 std::int64_t bytes) {
  FT_CHECK(src >= 0 && src < num_hosts_);
  FT_CHECK(dst >= 0 && dst < num_hosts_);
  FT_CHECK(src != dst);
  FT_CHECK(bytes > 0);
  const std::size_t key = static_cast<std::size_t>(src) *
                              static_cast<std::size_t>(num_hosts_) +
                          static_cast<std::size_t>(dst);
  backlog_total_ += bytes;
  if (pair_index_[key] >= 0) {
    pairs_[static_cast<std::size_t>(pair_index_[key])].backlog += bytes;
    return;
  }
  pair_index_[key] = static_cast<std::int32_t>(pairs_.size());
  pairs_.push_back(Pair{src, dst, bytes});
}

const std::vector<FastpassArbiter::Grant>&
FastpassArbiter::allocate_timeslot() {
  grants_.clear();
  ++stats_.timeslots;
  ++slot_stamp_;  // invalidates all busy markers from previous slots

  const std::size_t n = pairs_.size();
  if (n == 0) return grants_;
  if (rotate_ >= n) rotate_ = 0;

  // Greedy maximal matching in rotating order. Erasures (drained pairs)
  // are handled with swap-remove after the scan so indices stay stable
  // during it.
  for (std::size_t step = 0; step < n; ++step) {
    const std::size_t i = rotate_ + step < n ? rotate_ + step
                                             : rotate_ + step - n;
    Pair& p = pairs_[i];
    const auto s = static_cast<std::size_t>(p.src);
    const auto d = static_cast<std::size_t>(p.dst);
    if (src_busy_[s] == slot_stamp_ || dst_busy_[d] == slot_stamp_) {
      continue;
    }
    src_busy_[s] = slot_stamp_;
    dst_busy_[d] = slot_stamp_;
    grants_.push_back(Grant{p.src, p.dst});
    const std::int64_t served = p.backlog < mtu_ ? p.backlog : mtu_;
    p.backlog -= served;
    backlog_total_ -= served;
    ++stats_.grants;
    stats_.bytes_granted += served;
  }
  ++rotate_;

  // Remove drained pairs.
  for (std::size_t i = 0; i < pairs_.size();) {
    if (pairs_[i].backlog > 0) {
      ++i;
      continue;
    }
    const Pair& p = pairs_[i];
    const std::size_t key = static_cast<std::size_t>(p.src) *
                                static_cast<std::size_t>(num_hosts_) +
                            static_cast<std::size_t>(p.dst);
    pair_index_[key] = -1;
    if (i + 1 != pairs_.size()) {
      pairs_[i] = pairs_.back();
      const std::size_t moved_key =
          static_cast<std::size_t>(pairs_[i].src) *
              static_cast<std::size_t>(num_hosts_) +
          static_cast<std::size_t>(pairs_[i].dst);
      pair_index_[moved_key] = static_cast<std::int32_t>(i);
    }
    pairs_.pop_back();
  }
  return grants_;
}

}  // namespace ft::core
