// Fast Weighted Gradient Method (Beck, Nedic, Ozdaglar, Teboulle, "A
// Gradient Method for Network Resource Allocation Problems", IEEE TCNS
// 2014), one of the baselines in Figure 12.
//
// FGM is a Nesterov-accelerated dual gradient method. Instead of the exact
// Hessian diagonal, each link weights its step by a *crude upper bound* on
// the curvature of the dual: for the alpha-fair family, |dx_s/dP| is
// maximized on s's route when the entire path price sits on this link, so
// L_l = sum over s on l of |x'_s(max(p_l, p_floor))| bounds |H_ll|.
// Momentum is carried across iterations; on flow churn the accumulated
// momentum points in stale directions, which is exactly why the paper
// finds FGM "does not handle the stream of updates well" -- allocations
// become unrealistic at even moderate loads. We reproduce the method
// faithfully, including restarting t_k only when the caller asks.
#pragma once

#include "core/solver.h"

namespace ft::core {

class FgmSolver : public Solver {
 public:
  explicit FgmSolver(NumProblem& problem, double gamma = 1.0,
                     bool restart_on_churn = false)
      : Solver(problem),
        gamma_(gamma),
        restart_on_churn_(restart_on_churn),
        prev_prices_(problem.num_links(), 1.0) {}

  void iterate() override;
  [[nodiscard]] const char* name() const override { return "FGM"; }

 private:
  double gamma_;
  bool restart_on_churn_;
  double t_ = 1.0;  // Nesterov momentum sequence
  std::uint64_t seen_version_ = 0;
  std::vector<double> prev_prices_;
};

}  // namespace ft::core
