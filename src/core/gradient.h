// Gradient projection baseline (Low & Lapsley, "Optimization Flow
// Control I"): p_l <- max(0, p_l + gamma * G_l / c_l).
//
// The G_l / c_l normalization expresses over-allocation as a fraction of
// link capacity so that one gamma works across link speeds; it is the
// standard per-link step-size scaling and corresponds to the paper's
// description of Gradient as adjusting prices "directly from the amount
// of over-allocation" with no Hessian weighting. Convergence requires a
// small gamma: large steps make flows overreact and oscillate (§3).
#pragma once

#include "core/solver.h"

namespace ft::core {

class GradientSolver : public Solver {
 public:
  explicit GradientSolver(NumProblem& problem, double gamma = 0.1)
      : Solver(problem), gamma_(gamma) {}

  void iterate() override;
  [[nodiscard]] const char* name() const override { return "Gradient"; }

  [[nodiscard]] double gamma() const { return gamma_; }
  void set_gamma(double g) { gamma_ = g; }

 private:
  double gamma_;
};

}  // namespace ft::core
