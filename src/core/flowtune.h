// Umbrella header for the Flowtune core library: the NUM problem, the
// NED optimizer and baselines, rate normalization, the allocator facade,
// control-message codecs and the multicore engine.
//
// Quick start (see examples/quickstart.cc for a complete program):
//
//   ft::core::Allocator alloc(link_capacities, {});
//   alloc.flowlet_start(key, route_links);
//   std::vector<ft::core::RateUpdate> updates;
//   alloc.run_iteration(updates);   // every 10 us in the paper
#pragma once

#include "core/allocator.h"   // IWYU pragma: export
#include "core/backend.h"     // IWYU pragma: export
#include "core/exact.h"       // IWYU pragma: export
#include "core/fgm.h"         // IWYU pragma: export
#include "core/gradient.h"    // IWYU pragma: export
#include "core/messages.h"    // IWYU pragma: export
#include "core/ned.h"         // IWYU pragma: export
#include "core/newton_like.h" // IWYU pragma: export
#include "core/normalizer.h"  // IWYU pragma: export
#include "core/parallel.h"    // IWYU pragma: export
#include "core/problem.h"     // IWYU pragma: export
#include "core/rt.h"          // IWYU pragma: export
#include "core/utility.h"     // IWYU pragma: export
