#include "core/exact.h"

#include <algorithm>
#include <cmath>

#include "core/ned.h"

namespace ft::core {

double kkt_residual(const NumProblem& problem,
                    std::span<const double> rates,
                    std::span<const double> prices) {
  double worst = 0.0;
  // Per-link primal feasibility and complementary slackness.
  std::vector<double> alloc(problem.num_links(), 0.0);
  for (std::size_t s = 0; s < problem.num_slots(); ++s) {
    const FlowView f = problem.flow(static_cast<FlowIndex>(s));
    if (!f.active()) continue;
    for (std::uint32_t l : f.route()) alloc[l] += rates[s];
  }
  for (std::size_t l = 0; l < alloc.size(); ++l) {
    const double c = problem.capacity(l);
    worst = std::max(worst, (alloc[l] - c) / c);
    const double cs = prices[l] * std::abs(alloc[l] - c) /
                      (c * std::max(1.0, prices[l]));
    worst = std::max(worst, cs);
  }
  // Stationarity: rates consistent with the demand function.
  for (std::size_t s = 0; s < problem.num_slots(); ++s) {
    const FlowView f = problem.flow(static_cast<FlowIndex>(s));
    if (!f.active()) continue;
    double p_sum = 0.0;
    for (std::uint32_t l : f.route()) p_sum += prices[l];
    const double demand = f.demand(p_sum);
    if (demand > 0.0) {
      worst = std::max(worst, std::abs(rates[s] - demand) / demand);
    }
  }
  return worst;
}

double objective_value(const NumProblem& problem,
                       std::span<const double> rates) {
  double total = 0.0;
  for (std::size_t s = 0; s < problem.num_slots(); ++s) {
    const FlowView f = problem.flow(static_cast<FlowIndex>(s));
    if (!f.active()) continue;
    total += f.util().value(std::max(rates[s], 1.0));
  }
  return total;
}

ExactResult solve_exact(NumProblem& problem, ExactOptions opt) {
  NedSolver ned(problem, opt.gamma);
  ExactResult res;
  if (problem.num_active() == 0) {
    res.converged = true;
    res.prices.assign(problem.num_links(), 1.0);
    res.rates.assign(problem.num_slots(), 0.0);
    return res;
  }

  double prev_obj = -1e300;
  int stable = 0;
  // Step damping: NED's diagonal approximation can limit-cycle at large
  // gamma on strongly coupled topologies; halving gamma whenever a
  // convergence-check budget expires guarantees eventual convergence
  // (gradient-like behaviour in the limit) without slowing the common
  // fast path.
  const int damp_every = std::max(64, opt.max_iters / 16);
  for (int it = 1; it <= opt.max_iters; ++it) {
    if (it % damp_every == 0) {
      ned.set_gamma(std::max(0.05, ned.gamma() * 0.5));
    }
    ned.iterate();
    res.iterations = it;
    // Cheap convergence probe every few iterations.
    if (it % 8 != 0) continue;

    bool feasible = true;
    bool slack_ok = true;
    for (std::size_t l = 0; l < problem.num_links(); ++l) {
      const double c = problem.capacity(l);
      const double g = ned.link_alloc()[l] - c;
      if (g > opt.feas_tol * c) feasible = false;
      if (ned.prices()[l] * std::abs(g) >
          opt.cs_tol * c * std::max(1.0, ned.prices()[l])) {
        slack_ok = false;
      }
    }
    const double obj = objective_value(problem, ned.rates());
    const bool obj_stable =
        std::abs(obj - prev_obj) <=
        1e-9 * std::max(1.0, std::abs(obj));
    prev_obj = obj;
    if (feasible && slack_ok && obj_stable) {
      if (++stable >= 2) {
        res.converged = true;
        break;
      }
    } else {
      stable = 0;
    }
  }
  res.rates.assign(ned.rates().begin(), ned.rates().end());
  res.prices.assign(ned.prices().begin(), ned.prices().end());
  res.kkt_residual = kkt_residual(problem, res.rates, res.prices);
  res.objective = objective_value(problem, res.rates);
  for (std::size_t s = 0; s < problem.num_slots(); ++s) {
    if (problem.flow(static_cast<FlowIndex>(s)).active()) {
      res.total_rate += res.rates[s];
    }
  }
  return res;
}

}  // namespace ft::core
