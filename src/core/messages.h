// Allocator <-> endpoint control message encodings (§6.2): flowlet start
// notifications are 16 bytes, flowlet end 4 bytes, and rate updates 6
// bytes, all "plus the standard TCP/IP overheads". Encoders pack
// little-endian into fixed arrays; decoders are exact inverses
// (round-trip tested).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

namespace ft::core {

inline constexpr std::size_t kFlowletStartBytes = 16;
inline constexpr std::size_t kFlowletEndBytes = 4;
inline constexpr std::size_t kRateUpdateBytes = 6;

struct FlowletStartMsg {
  std::uint32_t flow_key = 0;
  std::uint16_t src_host = 0;
  std::uint16_t dst_host = 0;
  std::uint32_t size_hint_bytes = 0;  // advisory; 0 = unknown
  std::uint16_t weight_milli = 1000;  // utility weight, in 1/1000ths
  std::uint16_t flags = 0;

  friend bool operator==(const FlowletStartMsg&,
                         const FlowletStartMsg&) = default;
};

struct FlowletEndMsg {
  std::uint32_t flow_key = 0;

  friend bool operator==(const FlowletEndMsg&,
                         const FlowletEndMsg&) = default;
};

struct RateUpdateMsg {
  std::uint32_t flow_key = 0;
  std::uint16_t rate_code = 0;  // common/ratecode.h encoding

  friend bool operator==(const RateUpdateMsg&,
                         const RateUpdateMsg&) = default;
};

[[nodiscard]] std::array<std::uint8_t, kFlowletStartBytes> encode(
    const FlowletStartMsg& m);
[[nodiscard]] std::array<std::uint8_t, kFlowletEndBytes> encode(
    const FlowletEndMsg& m);
[[nodiscard]] std::array<std::uint8_t, kRateUpdateBytes> encode(
    const RateUpdateMsg& m);

// Stream-oriented decoders: parse a message from the front of `buf`
// without copying into a fixed array first. Returns nullopt when fewer
// than the message's fixed size bytes are available (the caller keeps
// buffering); extra trailing bytes are ignored.
[[nodiscard]] std::optional<FlowletStartMsg> try_decode_flowlet_start(
    std::span<const std::uint8_t> buf);
[[nodiscard]] std::optional<FlowletEndMsg> try_decode_flowlet_end(
    std::span<const std::uint8_t> buf);
[[nodiscard]] std::optional<RateUpdateMsg> try_decode_rate_update(
    std::span<const std::uint8_t> buf);

// Fixed-array decoders (thin wrappers over the span overloads).
[[nodiscard]] FlowletStartMsg decode_flowlet_start(
    const std::array<std::uint8_t, kFlowletStartBytes>& buf);
[[nodiscard]] FlowletEndMsg decode_flowlet_end(
    const std::array<std::uint8_t, kFlowletEndBytes>& buf);
[[nodiscard]] RateUpdateMsg decode_rate_update(
    const std::array<std::uint8_t, kRateUpdateBytes>& buf);

}  // namespace ft::core
