// Allocator <-> endpoint control message encodings (§6.2): flowlet start
// notifications are 16 bytes, flowlet end 4 bytes, and rate updates 6
// bytes, all "plus the standard TCP/IP overheads". Encoders pack
// little-endian into fixed arrays; decoders are exact inverses
// (round-trip tested).
//
// Deviation from the paper: rate updates and heartbeats carry a 2-byte
// allocator epoch (8 and 14 bytes on the wire). The epoch increments on
// every allocator (re)start, so an agent can tell post-restart state
// from pre-restart leftovers even when the bytes arrive in TCP order —
// e.g. across a warm restart behind a VIP/proxy, where the agent's
// socket never drops and replay is never triggered by a reconnect.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>

namespace ft::core {

inline constexpr std::size_t kFlowletStartBytes = 16;
inline constexpr std::size_t kFlowletEndBytes = 4;
inline constexpr std::size_t kRateUpdateBytes = 8;
inline constexpr std::size_t kHeartbeatBytes = 14;

// Serial-number comparison (RFC 1982 style) for the 16-bit allocator
// epoch: true when `a` is strictly newer than `b`, tolerating wrap.
[[nodiscard]] constexpr bool epoch_newer(std::uint16_t a, std::uint16_t b) {
  return static_cast<std::int16_t>(static_cast<std::uint16_t>(a - b)) > 0;
}

// Update-path trace hop slots carried by TraceMarkMsg. Slot 0 is stamped
// on the agent's clock; 1..5 on the service's. The seventh hop (agent
// receive) is taken locally when the echoed mark arrives, so it never
// rides the wire.
enum TraceHop : std::uint8_t {
  kHopAgentSend = 0,    // agent wrote the sampled flowlet_start
  kHopShardIngest = 1,  // shard thread decoded the mark off the socket
  kHopRoundPickup = 2,  // allocation thread drained the start's event
  kHopSolveDone = 3,    // NED/F-NORM solve for the covering round done
  kHopEmitDone = 4,     // thresholded update emission done
  kHopFanoutWrite = 5,  // rate record written into the peer's batch
};
inline constexpr std::size_t kTraceHopSlots = 6;
inline constexpr std::size_t kTraceMarkBytes =
    4 + 8 + 8 * kTraceHopSlots;  // flow_key + trace_id + hop stamps

// FlowletStartMsg::flags bit: this start is traced; a TraceMarkMsg for
// the same flow_key follows in the same batch.
inline constexpr std::uint16_t kFlowletStartTracedFlag = 1u << 0;

struct FlowletStartMsg {
  std::uint32_t flow_key = 0;
  std::uint16_t src_host = 0;
  std::uint16_t dst_host = 0;
  std::uint32_t size_hint_bytes = 0;  // advisory; 0 = unknown
  std::uint16_t weight_milli = 1000;  // utility weight, in 1/1000ths
  std::uint16_t flags = 0;

  friend bool operator==(const FlowletStartMsg&,
                         const FlowletStartMsg&) = default;
};

struct FlowletEndMsg {
  std::uint32_t flow_key = 0;

  friend bool operator==(const FlowletEndMsg&,
                         const FlowletEndMsg&) = default;
};

struct RateUpdateMsg {
  std::uint32_t flow_key = 0;
  std::uint16_t rate_code = 0;  // common/ratecode.h encoding
  std::uint16_t epoch = 0;      // allocator epoch that computed this rate

  friend bool operator==(const RateUpdateMsg&,
                         const RateUpdateMsg&) = default;
};

// Liveness beacon, sent in both directions so a dead peer is detected
// in O(heartbeat period) instead of O(TCP timeout). Service -> agent
// heartbeats also advertise the rate lease: the agent treats every
// heartbeat or rate update as re-arming a lease of `lease_us`
// microseconds, and hands rate control back to the endpoint's own
// congestion control (FallbackPolicy) when the lease expires. Agent ->
// service heartbeats carry lease_us = 0 (they exist only to keep the
// peer-timeout clock fresh on an otherwise idle connection).
struct HeartbeatMsg {
  std::int64_t t_send_ns = 0;   // sender's clock, diagnostic only
  std::uint32_t lease_us = 0;   // rate lease duration; 0 = no lease
  std::uint16_t epoch = 0;      // allocator epoch (0 from agents)

  friend bool operator==(const HeartbeatMsg&, const HeartbeatMsg&) = default;
};

// Trace context for one sampled flowlet_start. Emitted by the agent
// right after the flagged start record, hop-stamped inside the service
// (obs::now_ns, CLOCK_MONOTONIC_RAW), and echoed back on the traced
// flow's rate-update batch. A zero t_ns slot means "not stamped yet".
struct TraceMarkMsg {
  std::uint32_t flow_key = 0;
  std::uint64_t trace_id = 0;
  std::array<std::int64_t, kTraceHopSlots> t_ns{};

  friend bool operator==(const TraceMarkMsg&, const TraceMarkMsg&) = default;
};

[[nodiscard]] std::array<std::uint8_t, kFlowletStartBytes> encode(
    const FlowletStartMsg& m);
[[nodiscard]] std::array<std::uint8_t, kFlowletEndBytes> encode(
    const FlowletEndMsg& m);
[[nodiscard]] std::array<std::uint8_t, kRateUpdateBytes> encode(
    const RateUpdateMsg& m);
[[nodiscard]] std::array<std::uint8_t, kTraceMarkBytes> encode(
    const TraceMarkMsg& m);
[[nodiscard]] std::array<std::uint8_t, kHeartbeatBytes> encode(
    const HeartbeatMsg& m);

// Stream-oriented decoders: parse a message from the front of `buf`
// without copying into a fixed array first. Returns nullopt when fewer
// than the message's fixed size bytes are available (the caller keeps
// buffering); extra trailing bytes are ignored.
[[nodiscard]] std::optional<FlowletStartMsg> try_decode_flowlet_start(
    std::span<const std::uint8_t> buf);
[[nodiscard]] std::optional<FlowletEndMsg> try_decode_flowlet_end(
    std::span<const std::uint8_t> buf);
[[nodiscard]] std::optional<RateUpdateMsg> try_decode_rate_update(
    std::span<const std::uint8_t> buf);
[[nodiscard]] std::optional<TraceMarkMsg> try_decode_trace_mark(
    std::span<const std::uint8_t> buf);
[[nodiscard]] std::optional<HeartbeatMsg> try_decode_heartbeat(
    std::span<const std::uint8_t> buf);

// Fixed-array decoders (thin wrappers over the span overloads).
[[nodiscard]] FlowletStartMsg decode_flowlet_start(
    const std::array<std::uint8_t, kFlowletStartBytes>& buf);
[[nodiscard]] FlowletEndMsg decode_flowlet_end(
    const std::array<std::uint8_t, kFlowletEndBytes>& buf);
[[nodiscard]] RateUpdateMsg decode_rate_update(
    const std::array<std::uint8_t, kRateUpdateBytes>& buf);
[[nodiscard]] TraceMarkMsg decode_trace_mark(
    const std::array<std::uint8_t, kTraceMarkBytes>& buf);
[[nodiscard]] HeartbeatMsg decode_heartbeat(
    const std::array<std::uint8_t, kHeartbeatBytes>& buf);

}  // namespace ft::core
