// Converged reference solutions and KKT optimality diagnostics.
//
// The "optimal" baseline in Figure 13 is obtained by running a separate
// NED instance from a cold start until convergence after every change;
// solve_exact implements that, with adaptive step damping and explicit
// KKT residual verification so tests can trust the result.
#pragma once

#include <vector>

#include "core/problem.h"

namespace ft::core {

struct ExactOptions {
  double gamma = 1.0;
  int max_iters = 200000;
  // Convergence: every link satisfies alloc <= c (1 + feas_tol) and
  // complementary slackness |p * (alloc - c)| <= cs_tol * c * p_scale.
  double feas_tol = 1e-6;
  double cs_tol = 1e-6;
};

struct ExactResult {
  std::vector<double> rates;   // per flow slot
  std::vector<double> prices;  // per link
  bool converged = false;
  int iterations = 0;
  double kkt_residual = 0.0;   // max normalized KKT violation
  double objective = 0.0;      // sum of U_s(x_s) over active flows
  double total_rate = 0.0;     // sum of x_s (throughput)
};

[[nodiscard]] ExactResult solve_exact(NumProblem& problem,
                                      ExactOptions opt = {});

// Max normalized KKT violation of (rates, prices) for the problem:
//  - primal feasibility: max(0, alloc_l - c_l) / c_l
//  - complementary slackness: p_l |alloc_l - c_l| / (c_l max(p_l, 1))
//  - stationarity: |x_s - x_s(P_s)| / x_s(P_s) for unclamped flows.
[[nodiscard]] double kkt_residual(const NumProblem& problem,
                                  std::span<const double> rates,
                                  std::span<const double> prices);

// Objective value sum U_s(x_s) over active flows (x floored at 1 bit/s so
// log utilities stay finite).
[[nodiscard]] double objective_value(const NumProblem& problem,
                                     std::span<const double> rates);

}  // namespace ft::core
