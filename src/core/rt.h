// Real-time (RT) solver variants (§6.6, Figure 12): NED-RT and
// Gradient-RT use single-precision floating point state and numeric
// approximations for speed -- here, a bit-trick reciprocal with two
// Newton refinements replacing the divisions on the rate-update fast
// path. Only log utility (the paper's default) gets the fast path; other
// utilities fall back to float math with true division.
//
// The RT solvers expose the same double-precision `rates()` / `prices()`
// views as the reference solvers (converted after each iteration), so
// harnesses can compare them drop-in; Figure 12 shows their allocations
// track the reference implementations closely.
#pragma once

#include "core/solver.h"

namespace ft::core {

// Approximate 1/x for positive finite x: initial guess from exponent-bit
// arithmetic plus two Newton-Raphson steps (~1e-5 relative error).
[[nodiscard]] float fast_recip(float x);

namespace detail {

// Shared float-state machinery for RT solvers.
class RtBase : public Solver {
 public:
  explicit RtBase(NumProblem& problem);

 protected:
  // Float rate update with fast reciprocals; fills the float sums and
  // mirrors results into the base-class double vectors.
  void update_rates_rt();

  std::vector<float> prices_f_;
  std::vector<float> alloc_f_;
  std::vector<float> dxdp_f_;
  std::vector<float> rates_f_;

  void mirror_to_double();
};

}  // namespace detail

class NedRtSolver : public detail::RtBase {
 public:
  explicit NedRtSolver(NumProblem& problem, double gamma = 1.0)
      : RtBase(problem), gamma_(static_cast<float>(gamma)) {}

  void iterate() override;
  [[nodiscard]] const char* name() const override { return "NED-RT"; }

 private:
  float gamma_;
};

class GradientRtSolver : public detail::RtBase {
 public:
  explicit GradientRtSolver(NumProblem& problem, double gamma = 0.1)
      : RtBase(problem), gamma_(static_cast<float>(gamma)) {}

  void iterate() override;
  [[nodiscard]] const char* name() const override { return "Gradient-RT"; }

 private:
  float gamma_;
};

}  // namespace ft::core
