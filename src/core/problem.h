// Online NUM problem instance: a fixed set of capacitated links and a
// churning set of flows, each with a fixed route (<= 8 links) and a
// utility function.
//
// Flow storage is structure-of-arrays with slot recycling through a free
// list: flowlet start/end is O(route length) and slot indices stay dense,
// so solvers iterate over slots as branch-light linear sweeps over
// parallel arrays (route lengths, flattened routes, utility parameters,
// demand-bound floors) instead of chasing per-flow objects -- the §6.1
// requirement that the allocator's inner loop stay cache-resident.
// A CSR-style link->flow adjacency (per-link contiguous entry lists,
// incrementally maintained on churn) lets capacity changes and analyses
// touch exactly the flows on a link.
//
// The old object-per-flow accessors survive as thin views (FlowView) so
// cold paths -- backend grid assignment, exact solvers, tests -- migrate
// without semantic change.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "core/utility.h"

namespace ft::core {

using FlowIndex = std::uint32_t;
inline constexpr FlowIndex kInvalidFlow = UINT32_MAX;

inline constexpr std::size_t kMaxRouteLinks = 8;

// Demand bound: a flow's demand x(P) is evaluated at an *effective* path
// price P_eff = max(P, floor) chosen so that x never exceeds
// kDemandCapFactor times the flow's bottleneck capacity. This keeps
// transient demands finite (the paper's pure dynamics would request
// unbounded rates when a path's prices are all ~0) while preserving
// NED's conditioning: a flow at the bound still reports the clamp-edge
// sensitivity dx/dP, so H_ll never collapses to zero on loaded links.
// Factor 1.0 = a flow never demands more than its bottleneck capacity --
// the physical NIC limit; endpoints cannot transmit faster regardless of
// the allocation.
inline constexpr double kDemandCapFactor = 1.0;

// Demand x(P) and slope dx/dP from the SoA utility parameters, with the
// demand-bound floor applied. Matches Utility::rate / Utility::drate at
// max(price_sum, floor) to within one reciprocal rounding: the dominant
// alpha == 1 case spends one division instead of two (x = w * (1/P),
// dx = -x * (1/P)), which is what makes the solver sweep branch-light
// and division-bound-free. Every solver hot loop inlines this so SoA
// and view paths cannot drift apart.
inline void flow_demand(double weight, double alpha, double floor,
                        double price_sum, double& x, double& dx) {
  double p = price_sum < floor ? floor : price_sum;
  if (alpha == 0.0) {  // fixed-demand pseudo-utility (§7 external traffic)
    x = weight;
    dx = 0.0;
    return;
  }
  if (p < kMinPathPrice) p = kMinPathPrice;
  if (alpha == 1.0) {
    const double rp = 1.0 / p;
    x = weight * rp;
    dx = -x * rp;
    return;
  }
  x = std::pow(weight / p, 1.0 / alpha);
  dx = -x / (alpha * p);
}

class NumProblem;

// Thin per-slot view over the SoA arrays; the object-style accessor for
// cold paths. Invalidated by add_flow/remove_flow like an index would be.
class FlowView {
 public:
  [[nodiscard]] bool active() const;
  [[nodiscard]] std::span<const std::uint32_t> route() const;
  [[nodiscard]] double rate_cap() const;
  [[nodiscard]] double price_floor() const;
  [[nodiscard]] Utility util() const;

  // Demand and its derivative at path price `price_sum`, with the bound
  // applied. Used identically by every solver.
  [[nodiscard]] double demand(double price_sum) const;
  [[nodiscard]] double demand_slope(double price_sum, double x) const;

 private:
  friend class NumProblem;
  FlowView(const NumProblem* p, FlowIndex s) : p_(p), s_(s) {}
  const NumProblem* p_;
  FlowIndex s_;
};

class NumProblem {
 public:
  explicit NumProblem(std::vector<double> link_capacities_bps);

  [[nodiscard]] std::size_t num_links() const { return capacity_.size(); }
  [[nodiscard]] double capacity(std::size_t link) const {
    return capacity_[link];
  }
  [[nodiscard]] std::span<const double> capacities() const {
    return capacity_;
  }

  // Scales all capacities by `factor` (the allocator reserves headroom of
  // one notification threshold, §6.4).
  void scale_capacities(double factor);

  // Adjusts one link's capacity at runtime (§7 closed loop: "dynamically
  // adjust link capacities ... for external traffic"). Refreshes the
  // demand bounds of exactly the flows traversing the link (via the
  // link->flow adjacency).
  void set_capacity(std::size_t link, double capacity_bps);

  FlowIndex add_flow(std::span<const LinkId> route, Utility util);
  void remove_flow(FlowIndex idx);

  // Pre-sizes every per-slot array (and the slot free list) so that the
  // next `slots` concurrent flows churn without reallocating.
  void reserve(std::size_t slots);

  [[nodiscard]] std::size_t num_slots() const { return route_len_.size(); }
  [[nodiscard]] std::size_t num_active() const { return num_active_; }

  [[nodiscard]] FlowView flow(FlowIndex idx) const {
    FT_CHECK(idx < route_len_.size());
    return FlowView(this, idx);
  }

  // --- SoA hot-path arrays, indexed by slot. A slot is inactive iff its
  // route length is 0. route_links() is flattened with stride
  // kMaxRouteLinks; only the first route_len()[s] entries are valid.
  [[nodiscard]] std::span<const std::uint8_t> route_len() const {
    return route_len_;
  }
  [[nodiscard]] std::span<const std::uint32_t> route_links() const {
    return route_links_;
  }
  [[nodiscard]] std::span<const double> weight() const { return weight_; }
  [[nodiscard]] std::span<const double> alpha() const { return alpha_; }
  [[nodiscard]] std::span<const double> price_floor() const {
    return price_floor_;
  }
  [[nodiscard]] std::span<const double> rate_cap() const {
    return rate_cap_;
  }

  // --- Link->flow adjacency (CSR-style per-link contiguous lists,
  // swap-remove maintained on churn). Entries pack the flow slot with the
  // link's position in that flow's route.
  [[nodiscard]] std::span<const std::uint32_t> link_flows(
      std::size_t link) const {
    FT_CHECK(link < link_flows_.size());
    return link_flows_[link];
  }
  // Entries pack the route position into the low 3 bits.
  static_assert(kMaxRouteLinks <= 8,
                "adjacency entries pack the route index into 3 bits");
  [[nodiscard]] static FlowIndex adj_slot(std::uint32_t entry) {
    return entry >> 3;
  }
  [[nodiscard]] static std::uint32_t adj_route_idx(std::uint32_t entry) {
    return entry & 7u;
  }

  // Monotone counter bumped on every add/remove; lets solvers detect
  // churn (e.g. to reset momentum state).
  [[nodiscard]] std::uint64_t version() const { return version_; }

 private:
  friend class FlowView;

  // Recomputes rate_cap_/price_floor_ for one active slot from current
  // capacities (same arithmetic as add_flow).
  void refresh_demand_bound(FlowIndex s);

  std::vector<double> capacity_;

  // Per-slot SoA arrays (all sized num_slots()).
  std::vector<std::uint8_t> route_len_;      // 0 == inactive slot
  std::vector<std::uint32_t> route_links_;   // stride kMaxRouteLinks
  std::vector<double> weight_;
  std::vector<double> alpha_;                // 0 == fixed demand
  std::vector<double> price_floor_;          // P_eff floor (demand bound)
  std::vector<double> rate_cap_;             // min capacity along route
  // Position of slot s's i-th route link inside link_flows_ (for O(1)
  // swap-remove), stride kMaxRouteLinks like route_links_.
  std::vector<std::uint32_t> adj_pos_;

  std::vector<std::vector<std::uint32_t>> link_flows_;  // per link
  std::vector<FlowIndex> free_list_;
  std::size_t num_active_ = 0;
  std::uint64_t version_ = 0;
};

inline bool FlowView::active() const {
  return p_->route_len_[s_] != 0;
}
inline std::span<const std::uint32_t> FlowView::route() const {
  return {p_->route_links_.data() + s_ * kMaxRouteLinks,
          p_->route_len_[s_]};
}
inline double FlowView::rate_cap() const { return p_->rate_cap_[s_]; }
inline double FlowView::price_floor() const {
  return p_->price_floor_[s_];
}
inline Utility FlowView::util() const {
  return Utility{p_->weight_[s_], p_->alpha_[s_]};
}
inline double FlowView::demand(double price_sum) const {
  double x, dx;
  flow_demand(p_->weight_[s_], p_->alpha_[s_], p_->price_floor_[s_],
              price_sum, x, dx);
  return x;
}
inline double FlowView::demand_slope(double price_sum, double x) const {
  const double floor = p_->price_floor_[s_];
  return util().drate(price_sum < floor ? floor : price_sum, x);
}

}  // namespace ft::core
