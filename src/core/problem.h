// Online NUM problem instance: a fixed set of capacitated links and a
// churning set of flows, each with a fixed route (<= 8 links) and a
// utility function.
//
// Flow storage is slot-based with a free list: flowlet start/end is O(1)
// and slot indices stay dense, so solvers iterate over slots linearly
// (cache-friendly, branch on an active flag) exactly as the paper's
// allocator does in its online setting.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "core/utility.h"

namespace ft::core {

using FlowIndex = std::uint32_t;
inline constexpr FlowIndex kInvalidFlow = UINT32_MAX;

inline constexpr std::size_t kMaxRouteLinks = 8;

// Demand bound: a flow's demand x(P) is evaluated at an *effective* path
// price P_eff = max(P, floor) chosen so that x never exceeds
// kDemandCapFactor times the flow's bottleneck capacity. This keeps
// transient demands finite (the paper's pure dynamics would request
// unbounded rates when a path's prices are all ~0) while preserving
// NED's conditioning: a flow at the bound still reports the clamp-edge
// sensitivity dx/dP, so H_ll never collapses to zero on loaded links.
// Factor 1.0 = a flow never demands more than its bottleneck capacity --
// the physical NIC limit; endpoints cannot transmit faster regardless of
// the allocation.
inline constexpr double kDemandCapFactor = 1.0;

struct FlowEntry {
  Utility util;
  std::uint8_t num_links = 0;
  bool active = false;
  std::array<std::uint32_t, kMaxRouteLinks> links{};
  double rate_cap = 0.0;      // min capacity along the route
  double price_floor = 0.0;   // P_eff floor implementing the demand bound

  [[nodiscard]] std::span<const std::uint32_t> route() const {
    return {links.data(), num_links};
  }

  // Demand and its derivative at path price `price_sum`, with the bound
  // applied. Used identically by every solver.
  [[nodiscard]] double demand(double price_sum) const {
    return util.rate(price_sum < price_floor ? price_floor : price_sum);
  }
  [[nodiscard]] double demand_slope(double price_sum, double x) const {
    return util.drate(price_sum < price_floor ? price_floor : price_sum,
                      x);
  }
};

class NumProblem {
 public:
  explicit NumProblem(std::vector<double> link_capacities_bps);

  [[nodiscard]] std::size_t num_links() const { return capacity_.size(); }
  [[nodiscard]] double capacity(std::size_t link) const {
    return capacity_[link];
  }
  [[nodiscard]] std::span<const double> capacities() const {
    return capacity_;
  }

  // Scales all capacities by `factor` (the allocator reserves headroom of
  // one notification threshold, §6.4).
  void scale_capacities(double factor);

  // Adjusts one link's capacity at runtime (§7 closed loop: "dynamically
  // adjust link capacities ... for external traffic"). Refreshes the
  // demand bounds of flows traversing the link.
  void set_capacity(std::size_t link, double capacity_bps);

  FlowIndex add_flow(std::span<const LinkId> route, Utility util);
  void remove_flow(FlowIndex idx);

  [[nodiscard]] std::size_t num_slots() const { return flows_.size(); }
  [[nodiscard]] std::size_t num_active() const { return num_active_; }
  [[nodiscard]] const FlowEntry& flow(FlowIndex idx) const {
    FT_CHECK(idx < flows_.size());
    return flows_[idx];
  }
  [[nodiscard]] std::span<const FlowEntry> flows() const { return flows_; }

  // Monotone counter bumped on every add/remove; lets solvers detect
  // churn (e.g. to reset momentum state).
  [[nodiscard]] std::uint64_t version() const { return version_; }

 private:
  std::vector<double> capacity_;
  std::vector<FlowEntry> flows_;
  std::vector<FlowIndex> free_list_;
  std::size_t num_active_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace ft::core
