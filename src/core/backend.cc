#include "core/backend.h"

#include <utility>
#include <vector>

#include "common/check.h"
#include "core/ned.h"
#include "obs/metrics.h"

namespace ft::core {
namespace {

class SequentialNedBackend final : public SolveBackend {
 public:
  SequentialNedBackend(NumProblem& problem, double gamma, NormKind norm)
      : problem_(problem), ned_(problem, gamma), norm_(norm) {}

  void flow_added(FlowIndex) override {}
  void flow_removed(FlowIndex) override {}

  void solve(int iters) override {
    const std::int64_t t0 = ned_us_ != nullptr ? obs::now_us() : 0;
    for (int i = 0; i < iters; ++i) ned_.iterate();
    const std::int64_t t1 = ned_us_ != nullptr ? obs::now_us() : 0;
    norm_rates_.resize(problem_.num_slots());
    // Reused scratch: steady-state rounds perform no heap allocation.
    // F-NORM reuses the solver's per-link accumulators from the final
    // iteration (one sweep instead of f_norm's re-scatter).
    if (norm_ == NormKind::kPerFlow) {
      f_norm_from_alloc(problem_, ned_.rates(), ned_.link_alloc(),
                        ned_.link_fixed(), norm_rates_, scratch_);
    } else {
      normalize(norm_, problem_, ned_.rates(), norm_rates_, scratch_);
    }
    if (ned_us_ != nullptr) {
      ned_us_->record_signed(t1 - t0);
      norm_us_->record_signed(obs::now_us() - t1);
    }
  }

  void bind_metrics(obs::MetricsRegistry& reg) override {
    ned_us_ = &reg.histo("core.ned_us");
    norm_us_ = &reg.histo("core.norm_us");
  }

  [[nodiscard]] std::span<const double> norm_rates() const override {
    return norm_rates_;
  }
  [[nodiscard]] const char* name() const override { return "sequential"; }

 private:
  NumProblem& problem_;
  NedSolver ned_;
  NormKind norm_;
  std::vector<double> norm_rates_;
  NormScratch scratch_;
  obs::LatencyHisto* ned_us_ = nullptr;   // NED iteration time per round
  obs::LatencyHisto* norm_us_ = nullptr;  // normalization time per round
};

class ParallelNedBackend final : public SolveBackend {
 public:
  ParallelNedBackend(NumProblem& problem, topo::BlockPartition partition,
                     ParallelConfig cfg, NormKind norm)
      : problem_(problem), part_(std::move(partition)), norm_(norm) {
    // The parallel engine piggybacks F-NORM on its aggregation schedule;
    // U-NORM (a global ratio) has no per-block formulation here.
    FT_CHECK(norm == NormKind::kPerFlow || norm == NormKind::kNone);
    cfg.compute_norm = norm == NormKind::kPerFlow;
    par_ = std::make_unique<ParallelNed>(problem, part_, cfg);
  }

  void flow_added(FlowIndex slot) override {
    const FlowView f = problem_.flow(slot);
    // FlowBlock coordinates (Figure 2): the block whose upward LinkBlock
    // carries the route's up links, and the block whose downward
    // LinkBlock carries its down links. Every host-to-host route has at
    // least one of each (host->ToR up, ToR->host down).
    std::int32_t src_block = -1;
    std::int32_t dst_block = -1;
    for (std::uint32_t l : f.route()) {
      const topo::LinkClass& cls = part_.link_class[l];
      if (cls.dir == topo::LinkDir::kUp && src_block < 0) {
        src_block = cls.block;
      } else if (cls.dir == topo::LinkDir::kDown && dst_block < 0) {
        dst_block = cls.block;
      }
    }
    FT_CHECK(src_block >= 0 && dst_block >= 0);
    par_->assign_flow(slot, src_block, dst_block);
  }

  void flow_removed(FlowIndex slot) override { par_->unassign_flow(slot); }

  void solve(int iters) override {
    // Normalization only matters for the final rates, so skip its pass
    // on all but the last iteration (matching the sequential backend,
    // which normalizes once per round).
    for (int i = 0; i < iters; ++i) par_->iterate(i + 1 == iters);
  }

  [[nodiscard]] std::span<const double> norm_rates() const override {
    return norm_ == NormKind::kPerFlow ? par_->norm_rates()
                                       : par_->rates();
  }

  void bind_metrics(obs::MetricsRegistry& reg) override {
    par_->bind_metrics(reg);
  }

  [[nodiscard]] double last_band_max_us() const override {
    return par_->last_band_max_us();
  }

  [[nodiscard]] const char* name() const override { return "parallel"; }

 private:
  NumProblem& problem_;
  topo::BlockPartition part_;
  NormKind norm_;
  std::unique_ptr<ParallelNed> par_;
};

}  // namespace

BackendFactory sequential_backend() {
  return [](NumProblem& problem, double gamma, NormKind norm) {
    return std::make_unique<SequentialNedBackend>(problem, gamma, norm);
  };
}

BackendFactory parallel_backend(topo::BlockPartition partition,
                                ParallelConfig cfg) {
  return [partition = std::move(partition), cfg](
             NumProblem& problem, double gamma,
             NormKind norm) mutable -> std::unique_ptr<SolveBackend> {
    cfg.gamma = gamma;
    cfg.num_blocks = partition.num_blocks;
    return std::make_unique<ParallelNedBackend>(problem, partition, cfg,
                                                norm);
  };
}

}  // namespace ft::core
