// Common interface and shared machinery for NUM price-based solvers.
//
// Every solver alternates the two steps of Algorithm 1:
//   rate update:  x_s = (U_s')^{-1}( sum of prices on the route ),
//                 clamped to the flow's bottleneck capacity, and
//   price update: solver-specific (NED / Gradient / Newton-like / FGM).
//
// The rate update also accumulates, per link, the aggregate allocation
// G-term input (sum of x_s) and the exact Hessian diagonal (sum of
// dx_s/dP) -- the quantity NED exploits (paper §3).
#pragma once

#include <span>
#include <vector>

#include "core/problem.h"

namespace ft::core {

class Solver {
 public:
  explicit Solver(NumProblem& problem);
  virtual ~Solver() = default;

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  // One rate-update + price-update iteration.
  virtual void iterate() = 0;
  [[nodiscard]] virtual const char* name() const = 0;

  // Per-flow-slot rates from the last iteration (undefined for inactive
  // slots) and per-link prices / aggregate allocations.
  [[nodiscard]] std::span<const double> rates() const { return rates_; }
  [[nodiscard]] std::span<const double> prices() const { return prices_; }
  [[nodiscard]] std::span<const double> link_alloc() const {
    return link_alloc_;
  }
  // Per-link aggregate of fixed-demand (§7 external) flows from the last
  // rate update; together with link_alloc() this lets F-NORM reuse the
  // sweep's accumulators instead of re-scattering every flow
  // (f_norm_from_alloc in core/normalizer.h).
  [[nodiscard]] std::span<const double> link_fixed() const {
    return link_fixed_;
  }

  [[nodiscard]] NumProblem& problem() { return problem_; }
  [[nodiscard]] const NumProblem& problem() const { return problem_; }

  // Sum of max(0, alloc_l - c_l): total over-allocation in bits/sec
  // (Figure 12's metric).
  [[nodiscard]] double total_over_allocation() const;

 protected:
  // Executes the rate-update step and fills rates_, link_alloc_ and
  // link_dxdp_ (Hessian diagonal). Grows state vectors on flow churn.
  void update_rates();

  NumProblem& problem_;
  std::vector<double> prices_;      // per link, init 1.0 (paper §3)
  std::vector<double> rates_;       // per flow slot
  std::vector<double> link_alloc_;  // per link: sum of rates
  std::vector<double> link_dxdp_;   // per link: H_ll (<= 0)
  std::vector<double> link_fixed_;  // per link: sum of fixed-demand rates
};

}  // namespace ft::core
