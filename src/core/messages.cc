#include "core/messages.h"

namespace ft::core {
namespace {

void put16(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
}
void put32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v);
  p[1] = static_cast<std::uint8_t>(v >> 8);
  p[2] = static_cast<std::uint8_t>(v >> 16);
  p[3] = static_cast<std::uint8_t>(v >> 24);
}
std::uint16_t get16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}
std::uint32_t get32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}
void put64(std::uint8_t* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}
std::uint64_t get64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}

}  // namespace

std::array<std::uint8_t, kFlowletStartBytes> encode(
    const FlowletStartMsg& m) {
  std::array<std::uint8_t, kFlowletStartBytes> buf{};
  put32(&buf[0], m.flow_key);
  put16(&buf[4], m.src_host);
  put16(&buf[6], m.dst_host);
  put32(&buf[8], m.size_hint_bytes);
  put16(&buf[12], m.weight_milli);
  put16(&buf[14], m.flags);
  return buf;
}

std::array<std::uint8_t, kFlowletEndBytes> encode(const FlowletEndMsg& m) {
  std::array<std::uint8_t, kFlowletEndBytes> buf{};
  put32(&buf[0], m.flow_key);
  return buf;
}

std::array<std::uint8_t, kRateUpdateBytes> encode(const RateUpdateMsg& m) {
  std::array<std::uint8_t, kRateUpdateBytes> buf{};
  put32(&buf[0], m.flow_key);
  put16(&buf[4], m.rate_code);
  put16(&buf[6], m.epoch);
  return buf;
}

std::array<std::uint8_t, kTraceMarkBytes> encode(const TraceMarkMsg& m) {
  std::array<std::uint8_t, kTraceMarkBytes> buf{};
  put32(&buf[0], m.flow_key);
  put64(&buf[4], m.trace_id);
  for (std::size_t i = 0; i < kTraceHopSlots; ++i) {
    put64(&buf[12 + 8 * i], static_cast<std::uint64_t>(m.t_ns[i]));
  }
  return buf;
}

std::array<std::uint8_t, kHeartbeatBytes> encode(const HeartbeatMsg& m) {
  std::array<std::uint8_t, kHeartbeatBytes> buf{};
  put64(&buf[0], static_cast<std::uint64_t>(m.t_send_ns));
  put32(&buf[8], m.lease_us);
  put16(&buf[12], m.epoch);
  return buf;
}

std::optional<FlowletStartMsg> try_decode_flowlet_start(
    std::span<const std::uint8_t> buf) {
  if (buf.size() < kFlowletStartBytes) return std::nullopt;
  FlowletStartMsg m;
  m.flow_key = get32(&buf[0]);
  m.src_host = get16(&buf[4]);
  m.dst_host = get16(&buf[6]);
  m.size_hint_bytes = get32(&buf[8]);
  m.weight_milli = get16(&buf[12]);
  m.flags = get16(&buf[14]);
  return m;
}

std::optional<FlowletEndMsg> try_decode_flowlet_end(
    std::span<const std::uint8_t> buf) {
  if (buf.size() < kFlowletEndBytes) return std::nullopt;
  return FlowletEndMsg{get32(&buf[0])};
}

std::optional<RateUpdateMsg> try_decode_rate_update(
    std::span<const std::uint8_t> buf) {
  if (buf.size() < kRateUpdateBytes) return std::nullopt;
  RateUpdateMsg m;
  m.flow_key = get32(&buf[0]);
  m.rate_code = get16(&buf[4]);
  m.epoch = get16(&buf[6]);
  return m;
}

std::optional<TraceMarkMsg> try_decode_trace_mark(
    std::span<const std::uint8_t> buf) {
  if (buf.size() < kTraceMarkBytes) return std::nullopt;
  TraceMarkMsg m;
  m.flow_key = get32(&buf[0]);
  m.trace_id = get64(&buf[4]);
  for (std::size_t i = 0; i < kTraceHopSlots; ++i) {
    m.t_ns[i] = static_cast<std::int64_t>(get64(&buf[12 + 8 * i]));
  }
  return m;
}

std::optional<HeartbeatMsg> try_decode_heartbeat(
    std::span<const std::uint8_t> buf) {
  if (buf.size() < kHeartbeatBytes) return std::nullopt;
  HeartbeatMsg m;
  m.t_send_ns = static_cast<std::int64_t>(get64(&buf[0]));
  m.lease_us = get32(&buf[8]);
  m.epoch = get16(&buf[12]);
  return m;
}

FlowletStartMsg decode_flowlet_start(
    const std::array<std::uint8_t, kFlowletStartBytes>& buf) {
  return *try_decode_flowlet_start(std::span<const std::uint8_t>(buf));
}

FlowletEndMsg decode_flowlet_end(
    const std::array<std::uint8_t, kFlowletEndBytes>& buf) {
  return *try_decode_flowlet_end(std::span<const std::uint8_t>(buf));
}

RateUpdateMsg decode_rate_update(
    const std::array<std::uint8_t, kRateUpdateBytes>& buf) {
  return *try_decode_rate_update(std::span<const std::uint8_t>(buf));
}

TraceMarkMsg decode_trace_mark(
    const std::array<std::uint8_t, kTraceMarkBytes>& buf) {
  return *try_decode_trace_mark(std::span<const std::uint8_t>(buf));
}

HeartbeatMsg decode_heartbeat(
    const std::array<std::uint8_t, kHeartbeatBytes>& buf) {
  return *try_decode_heartbeat(std::span<const std::uint8_t>(buf));
}

}  // namespace ft::core
