#include "core/newton_like.h"

#include <algorithm>
#include <cmath>

namespace ft::core {

void NewtonLikeSolver::iterate() {
  update_rates();
  for (std::size_t l = 0; l < prices_.size(); ++l) {
    const double g = link_alloc_[l] - problem_.capacity(l);

    // Update the measured slope estimate d(throughput)/d(price).
    const double dp = prices_[l] - prev_prices_[l];
    if (have_prev_[l] && std::abs(dp) >= opt_.min_dp) {
      const double slope = (link_alloc_[l] - prev_alloc_[l]) / dp;
      // Only negative slopes are physically meaningful for the dual;
      // churn between measurements routinely produces positive ones,
      // which the EWMA happily averages in -- a key source of the
      // method's instability that we keep.
      h_est_[l] = (1.0 - opt_.ewma) * h_est_[l] + opt_.ewma * slope;
    }
    prev_prices_[l] = prices_[l];
    prev_alloc_[l] = link_alloc_[l];
    have_prev_[l] = 1;

    double h = h_est_[l];
    if (h > -opt_.h_min) {
      // No usable estimate yet (or it has the wrong sign): fall back to a
      // capacity-normalized gradient step so prices still move.
      prices_[l] = std::max(
          0.0, prices_[l] + opt_.gamma * g / problem_.capacity(l));
      continue;
    }
    h = std::max(h, -opt_.h_max);
    prices_[l] = std::max(0.0, prices_[l] - opt_.gamma * g / h);
  }
}

}  // namespace ft::core
