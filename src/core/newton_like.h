// The Newton-like method (Athuraliya & Low, "Optimization Flow Control
// with Newton-like Algorithm", Telecommunication Systems 2000).
//
// Like NED it scales the price step by an estimate of the Hessian
// diagonal, but where NED *computes* H_ll exactly from flow utilities,
// the Newton-like method *estimates* it from network measurements: the
// observed change in aggregate link throughput per unit change in the
// link's price, averaged over a measurement window. The paper (§8) notes
// the measurement delay slows convergence and the estimation error makes
// the algorithm unstable in several settings; this implementation
// reproduces that behaviour with an EWMA estimator and the customary
// safeguards (minimum price motion before updating the estimate, clamps
// on the estimate's magnitude).
#pragma once

#include "core/solver.h"

namespace ft::core {

struct NewtonLikeOptions {
  double gamma = 1.0;
  double ewma = 0.25;          // estimator smoothing
  double min_dp = 1e-6;        // minimum |dp| to update the estimate
  double h_min = 1e-12;        // clamp: |H| lower bound
  double h_max = 1e12;         // clamp: |H| upper bound (in rate/price)
};

class NewtonLikeSolver : public Solver {
 public:
  using Options = NewtonLikeOptions;

  explicit NewtonLikeSolver(NumProblem& problem, Options opt = Options())
      : Solver(problem),
        opt_(opt),
        prev_prices_(problem.num_links(), 1.0),
        prev_alloc_(problem.num_links(), 0.0),
        h_est_(problem.num_links(), 0.0),
        have_prev_(problem.num_links(), 0) {}

  void iterate() override;
  [[nodiscard]] const char* name() const override { return "Newton-like"; }

 private:
  Options opt_;
  std::vector<double> prev_prices_;
  std::vector<double> prev_alloc_;
  std::vector<double> h_est_;  // estimated H_ll (negative when valid)
  std::vector<std::uint8_t> have_prev_;
};

}  // namespace ft::core
