// §6.1 FlowBlock-row -> CPU scheduling. The paper's multicore scaling
// result depends on a fixed mapping of FlowBlocks to CPUs: each worker
// thread owns a contiguous band of grid rows and stays pinned to one
// core, so the row's LinkBlock state remains cache-resident across
// iterations and the I/O shard serving that row's endpoints can be
// co-scheduled onto the same core (one shard per block row).
//
// CpuMap computes the row -> CPU layout once: either an explicit CPU
// list, or all online CPUs, optionally interleaved round-robin across
// NUMA nodes (discovered via sysfs; no libnuma dependency) so adjacent
// rows land on different memory domains and aggregate bandwidth scales.
// Pinning itself is one sched_setaffinity call per thread; on platforms
// without it the map degrades to a no-op and everything still runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ft::core {

struct CpuMapConfig {
  bool enable = false;
  // Explicit CPU list used round-robin by row; empty = all online CPUs.
  std::vector<int> cpus;
  // Spread rows round-robin across NUMA nodes instead of filling node 0
  // first. Ignored when an explicit CPU list is given.
  bool numa_interleave = false;
};

class CpuMap {
 public:
  CpuMap() = default;

  // Builds the layout for `rows` block rows (or I/O shards). Disabled
  // configs produce an empty (no-op) map.
  static CpuMap make(std::int32_t rows, const CpuMapConfig& cfg);

  [[nodiscard]] bool enabled() const { return !row_cpu_.empty(); }
  [[nodiscard]] std::int32_t rows() const {
    return static_cast<std::int32_t>(row_cpu_.size());
  }
  // CPU for a block row; rows beyond the layout wrap round-robin.
  [[nodiscard]] int cpu_for_row(std::int32_t row) const;

  // "0,2,4,6" layout string for logs and BENCH_*.json run metadata;
  // empty when disabled.
  [[nodiscard]] std::string describe() const;

  // Pins the calling thread to one CPU. Returns false if unsupported or
  // the CPU is not allowed (the thread keeps running unpinned).
  static bool pin_current_thread(int cpu);

  // Online CPU count (>= 1).
  static int num_cpus();

  // Parses a cpulist ("0-3,8,10-11" -- the sysfs format, which the
  // daemon's --pin-cpus flag shares) into CPU ids. Returns false on a
  // malformed or negative entry (out contains the ids parsed so far).
  static bool parse_cpulist(const std::string& text,
                            std::vector<int>& out);

  // CPU ids per NUMA node from sysfs; a single pseudo-node with all
  // CPUs when the hierarchy is absent.
  static std::vector<std::vector<int>> numa_nodes();

 private:
  std::vector<int> row_cpu_;
};

}  // namespace ft::core
