#include "core/solver.h"

#include <algorithm>

namespace ft::core {

Solver::Solver(NumProblem& problem)
    : problem_(problem),
      prices_(problem.num_links(), 1.0),
      link_alloc_(problem.num_links(), 0.0),
      link_dxdp_(problem.num_links(), 0.0) {}

void Solver::update_rates() {
  rates_.resize(problem_.num_slots(), 0.0);
  std::fill(link_alloc_.begin(), link_alloc_.end(), 0.0);
  std::fill(link_dxdp_.begin(), link_dxdp_.end(), 0.0);

  const auto flows = problem_.flows();
  for (std::size_t s = 0; s < flows.size(); ++s) {
    const FlowEntry& f = flows[s];
    if (!f.active) {
      rates_[s] = 0.0;
      continue;
    }
    double price_sum = 0.0;
    for (std::uint32_t l : f.route()) price_sum += prices_[l];
    const double x = f.demand(price_sum);
    const double dx = f.demand_slope(price_sum, x);
    rates_[s] = x;
    for (std::uint32_t l : f.route()) {
      link_alloc_[l] += x;
      link_dxdp_[l] += dx;
    }
  }
}

double Solver::total_over_allocation() const {
  double total = 0.0;
  for (std::size_t l = 0; l < link_alloc_.size(); ++l) {
    total += std::max(0.0, link_alloc_[l] - problem_.capacity(l));
  }
  return total;
}

}  // namespace ft::core
