#include "core/solver.h"

#include <algorithm>

namespace ft::core {

Solver::Solver(NumProblem& problem)
    : problem_(problem),
      prices_(problem.num_links(), 1.0),
      link_alloc_(problem.num_links(), 0.0),
      link_dxdp_(problem.num_links(), 0.0),
      link_fixed_(problem.num_links(), 0.0) {}

void Solver::update_rates() {
  const std::size_t slots = problem_.num_slots();
  rates_.resize(slots, 0.0);
  std::fill(link_alloc_.begin(), link_alloc_.end(), 0.0);
  std::fill(link_dxdp_.begin(), link_dxdp_.end(), 0.0);
  std::fill(link_fixed_.begin(), link_fixed_.end(), 0.0);

  // Branch-light linear sweep over the SoA arrays (no per-flow objects).
  const std::uint8_t* len = problem_.route_len().data();
  const std::uint32_t* links = problem_.route_links().data();
  const double* weight = problem_.weight().data();
  const double* alpha = problem_.alpha().data();
  const double* floor = problem_.price_floor().data();
  const double* price = prices_.data();
  double* alloc = link_alloc_.data();
  double* dxdp = link_dxdp_.data();
  for (std::size_t s = 0; s < slots; ++s) {
    const std::uint32_t nl = len[s];
    if (nl == 0) {
      rates_[s] = 0.0;
      continue;
    }
    const std::uint32_t* r = links + s * kMaxRouteLinks;
    double price_sum = 0.0;
    for (std::uint32_t i = 0; i < nl; ++i) price_sum += price[r[i]];
    double x, dx;
    flow_demand(weight[s], alpha[s], floor[s], price_sum, x, dx);
    rates_[s] = x;
    for (std::uint32_t i = 0; i < nl; ++i) {
      alloc[r[i]] += x;
      dxdp[r[i]] += dx;
    }
    if (alpha[s] == 0.0) [[unlikely]] {
      // Fixed-demand (external) flows: tracked separately so F-NORM can
      // normalize adaptive traffic against residual capacity without a
      // second full scatter pass.
      for (std::uint32_t i = 0; i < nl; ++i) link_fixed_[r[i]] += x;
    }
  }
}

double Solver::total_over_allocation() const {
  double total = 0.0;
  for (std::size_t l = 0; l < link_alloc_.size(); ++l) {
    total += std::max(0.0, link_alloc_[l] - problem_.capacity(l));
  }
  return total;
}

}  // namespace ft::core
