#include "core/gradient.h"

#include <algorithm>

namespace ft::core {

void GradientSolver::iterate() {
  update_rates();
  for (std::size_t l = 0; l < prices_.size(); ++l) {
    const double g_rel =
        (link_alloc_[l] - problem_.capacity(l)) / problem_.capacity(l);
    prices_[l] = std::max(0.0, prices_[l] + gamma_ * g_rel);
  }
}

}  // namespace ft::core
