#include "core/parallel.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define FT_HAVE_RDTSC 1
#endif

namespace ft::core {
namespace {

std::uint64_t read_cycles() {
#ifdef FT_HAVE_RDTSC
  return __rdtsc();
#else
  return 0;
#endif
}

std::int32_t pick_threads(std::int32_t requested, std::int32_t workers) {
  if (requested > 0) return std::min(requested, workers);
  const auto hw = static_cast<std::int32_t>(
      std::thread::hardware_concurrency());
  return std::max(1, std::min(hw > 0 ? hw : 1, workers));
}

}  // namespace

ParallelNed::ParallelNed(NumProblem& problem,
                         const topo::BlockPartition& partition,
                         ParallelConfig cfg)
    : problem_(problem),
      part_(partition),
      schedule_(topo::AggregationSchedule::make(partition.num_blocks)),
      cfg_(cfg),
      n_(partition.num_blocks),
      num_workers_(n_ * n_),
      num_threads_(pick_threads(cfg.num_threads, num_workers_)),
      workers_(static_cast<std::size_t>(num_workers_)),
      global_price_(problem.num_links(), 1.0),
      global_alloc_(problem.num_links(), 0.0),
      start_barrier_(num_threads_ + 1),
      end_barrier_(num_threads_ + 1),
      phase_barrier_(num_threads_) {
  FT_CHECK(cfg.num_blocks == partition.num_blocks);
  const std::size_t links = problem.num_links();
  for (auto& w : workers_) {
    w.price.assign(links, 1.0);
    w.alloc.assign(links, 0.0);
    w.dxdp.assign(links, 0.0);
    w.ratio.assign(links, 0.0);
  }
  threads_.reserve(static_cast<std::size_t>(num_threads_));
  for (std::int32_t t = 0; t < num_threads_; ++t) {
    threads_.emplace_back([this, t] { thread_main(t); });
  }
}

ParallelNed::~ParallelNed() {
  stop_.store(true, std::memory_order_release);
  start_barrier_.arrive_and_wait();
  // jthread joins on destruction.
}

void ParallelNed::assign_flow(FlowIndex slot, std::int32_t src_block,
                              std::int32_t dst_block) {
  FT_CHECK(src_block >= 0 && src_block < n_);
  FT_CHECK(dst_block >= 0 && dst_block < n_);
  const FlowEntry& f = problem_.flow(slot);
  FT_CHECK(f.active);
  // Validate the partition property: up links in src block, down links in
  // dst block (Figure 2).
  for (std::uint32_t l : f.route()) {
    const topo::LinkClass& cls = part_.link_class[l];
    if (cls.dir == topo::LinkDir::kUp) {
      FT_CHECK(cls.block == src_block);
    } else if (cls.dir == topo::LinkDir::kDown) {
      FT_CHECK(cls.block == dst_block);
    } else {
      FT_CHECK(false);  // flows must not traverse unpartitioned links
    }
  }
  if (flow_worker_.size() <= slot) {
    flow_worker_.resize(slot + 1, -1);
    flow_pos_.resize(slot + 1, 0);
  }
  FT_CHECK(flow_worker_[slot] == -1);
  const std::int32_t w = src_block * n_ + dst_block;
  flow_worker_[slot] = w;
  flow_pos_[slot] =
      static_cast<std::uint32_t>(workers_[static_cast<std::size_t>(w)]
                                     .flows.size());
  workers_[static_cast<std::size_t>(w)].flows.push_back(slot);
}

void ParallelNed::unassign_flow(FlowIndex slot) {
  FT_CHECK(slot < flow_worker_.size());
  const std::int32_t w = flow_worker_[slot];
  FT_CHECK(w >= 0);
  auto& flows = workers_[static_cast<std::size_t>(w)].flows;
  const std::uint32_t pos = flow_pos_[slot];
  FT_CHECK(pos < flows.size() && flows[pos] == slot);
  // Swap-remove, fixing the moved slot's position index.
  flows[pos] = flows.back();
  flow_pos_[flows[pos]] = pos;
  flows.pop_back();
  flow_worker_[slot] = -1;
}

void ParallelNed::rate_update(WorkerState& w, std::int32_t row,
                              std::int32_t col) {
  for (LinkId l : block_links(true, row)) {
    w.alloc[l.value()] = 0.0;
    w.dxdp[l.value()] = 0.0;
  }
  for (LinkId l : block_links(false, col)) {
    w.alloc[l.value()] = 0.0;
    w.dxdp[l.value()] = 0.0;
  }
  for (FlowIndex slot : w.flows) {
    const FlowEntry& f = problem_.flow(slot);
    FT_CHECK(f.active);
    double price_sum = 0.0;
    for (std::uint32_t l : f.route()) price_sum += w.price[l];
    const double x = f.demand(price_sum);
    const double dx = f.demand_slope(price_sum, x);
    rates_[slot] = x;
    for (std::uint32_t l : f.route()) {
      w.alloc[l] += x;
      w.dxdp[l] += dx;
    }
  }
}

void ParallelNed::price_update_owned(std::int32_t worker) {
  const std::int32_t row = worker / n_;
  const std::int32_t col = worker % n_;
  WorkerState& w = workers_[static_cast<std::size_t>(worker)];
  // Identical update rule to NedSolver::iterate (see ned.cc).
  const auto update = [&](LinkId link) {
    const std::size_t l = link.value();
    const double h = w.dxdp[l];
    const double cap = problem_.capacity(l);
    if (h < 0.0) {
      const double g = w.alloc[l] - cap;
      w.price[l] = std::max(0.0, w.price[l] - cfg_.gamma * g / h);
    }
    w.ratio[l] = w.alloc[l] / cap;
    global_price_[l] = w.price[l];
    global_alloc_[l] = w.alloc[l];
  };
  if (row == col) {  // upward owner of block `row`
    for (LinkId l : block_links(true, row)) update(l);
  }
  if (row == n_ - 1 - col) {  // downward owner of block `col`
    for (LinkId l : block_links(false, col)) update(l);
  }
}

void ParallelNed::run_phases(std::int32_t t) {
  const auto my_worker = [this, t](std::int32_t w) {
    return w % num_threads_ == t;
  };

  // Phase 0: rate update on private copies.
  for (std::int32_t w = 0; w < num_workers_; ++w) {
    if (!my_worker(w)) continue;
    rate_update(workers_[static_cast<std::size_t>(w)], w / n_, w % n_);
  }
  phase_barrier_.arrive_and_wait();

  // Aggregation steps: receiver-side execution, one barrier per step.
  for (const auto& step : schedule_.steps) {
    for (const topo::Transfer& tr : step) {
      if (!my_worker(tr.dst_worker)) continue;
      const WorkerState& src =
          workers_[static_cast<std::size_t>(tr.src_worker)];
      WorkerState& dst = workers_[static_cast<std::size_t>(tr.dst_worker)];
      for (LinkId l : block_links(tr.upward, tr.block)) {
        dst.alloc[l.value()] += src.alloc[l.value()];
        dst.dxdp[l.value()] += src.dxdp[l.value()];
      }
    }
    phase_barrier_.arrive_and_wait();
  }

  // Price update + ratio computation at the owners.
  for (std::int32_t w = 0; w < num_workers_; ++w) {
    if (my_worker(w)) price_update_owned(w);
  }
  phase_barrier_.arrive_and_wait();

  // Distribution: reverse schedule, reversed transfer direction,
  // receiver-side execution (the receiver is the original src_worker).
  for (auto it = schedule_.steps.rbegin(); it != schedule_.steps.rend();
       ++it) {
    for (const topo::Transfer& tr : *it) {
      if (!my_worker(tr.src_worker)) continue;
      const WorkerState& from =
          workers_[static_cast<std::size_t>(tr.dst_worker)];
      WorkerState& to = workers_[static_cast<std::size_t>(tr.src_worker)];
      for (LinkId l : block_links(tr.upward, tr.block)) {
        to.price[l.value()] = from.price[l.value()];
        to.ratio[l.value()] = from.ratio[l.value()];
      }
    }
    phase_barrier_.arrive_and_wait();
  }

  // Normalization (F-NORM) using the distributed ratios.
  if (cfg_.compute_norm && norm_this_iter_) {
    for (std::int32_t wi = 0; wi < num_workers_; ++wi) {
      if (!my_worker(wi)) continue;
      const WorkerState& w = workers_[static_cast<std::size_t>(wi)];
      for (FlowIndex slot : w.flows) {
        const FlowEntry& f = problem_.flow(slot);
        double r = 0.0;
        for (std::uint32_t l : f.route()) r = std::max(r, w.ratio[l]);
        norm_rates_[slot] = r > 0.0 ? rates_[slot] / r : rates_[slot];
      }
    }
  }
}

void ParallelNed::thread_main(std::int32_t t) {
  while (true) {
    start_barrier_.arrive_and_wait();
    if (stop_.load(std::memory_order_acquire)) return;
    run_phases(t);
    end_barrier_.arrive_and_wait();
  }
}

void ParallelNed::iterate(bool compute_norm) {
  norm_this_iter_ = compute_norm;
  rates_.resize(problem_.num_slots(), 0.0);
  norm_rates_.resize(problem_.num_slots(), 0.0);
  if (flow_worker_.size() < problem_.num_slots()) {
    flow_worker_.resize(problem_.num_slots(), -1);
    flow_pos_.resize(problem_.num_slots(), 0);
  }
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t c0 = read_cycles();
  start_barrier_.arrive_and_wait();
  end_barrier_.arrive_and_wait();
  last_iter_cycles_ = read_cycles() - c0;
  last_iter_seconds_ =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
}

}  // namespace ft::core
