#include "core/parallel.h"

#include <algorithm>

#include "common/check.h"
#include "obs/metrics.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#define FT_HAVE_RDTSC 1
#endif

namespace ft::core {
namespace {

std::uint64_t read_cycles() {
#ifdef FT_HAVE_RDTSC
  return __rdtsc();
#else
  return 0;
#endif
}

std::int32_t pick_threads(std::int32_t requested, std::int32_t workers) {
  if (requested > 0) return std::min(requested, workers);
  const auto hw = static_cast<std::int32_t>(
      std::thread::hardware_concurrency());
  return std::max(1, std::min(hw > 0 ? hw : 1, workers));
}

}  // namespace

ParallelNed::ParallelNed(NumProblem& problem,
                         const topo::BlockPartition& partition,
                         ParallelConfig cfg)
    : problem_(problem),
      part_(partition),
      schedule_(topo::AggregationSchedule::make(partition.num_blocks)),
      cfg_(cfg),
      n_(partition.num_blocks),
      num_workers_(n_ * n_),
      // More threads than rows is the common pick_threads outcome on big
      // machines: size the layout to whichever is larger so every thread
      // can land on its own CPU instead of piling onto the row CPUs.
      num_threads_(pick_threads(cfg.num_threads, num_workers_)),
      cpu_map_(CpuMap::make(std::max(n_, num_threads_), cfg.pin)),
      workers_(static_cast<std::size_t>(num_workers_)),
      global_price_(problem.num_links(), 1.0),
      global_alloc_(problem.num_links(), 0.0),
      start_barrier_(num_threads_ + 1),
      end_barrier_(num_threads_ + 1),
      phase_barrier_(num_threads_) {
  FT_CHECK(cfg.num_blocks == partition.num_blocks);
  const std::size_t links = problem.num_links();
  for (auto& w : workers_) {
    w.price.assign(links, 1.0);
    w.alloc.assign(links, 0.0);
    w.dxdp.assign(links, 0.0);
    w.ratio.assign(links, 0.0);
  }
  last_band_ns_.assign(static_cast<std::size_t>(num_threads_), 0);
  band_begin_.resize(static_cast<std::size_t>(num_threads_) + 1);
  for (std::int32_t t = 0; t <= num_threads_; ++t) {
    band_begin_[static_cast<std::size_t>(t)] =
        static_cast<std::int32_t>(static_cast<std::int64_t>(t) *
                                  num_workers_ / num_threads_);
  }
  threads_.reserve(static_cast<std::size_t>(num_threads_));
  for (std::int32_t t = 0; t < num_threads_; ++t) {
    threads_.emplace_back([this, t] { thread_main(t); });
  }
}

ParallelNed::~ParallelNed() {
  stop_.store(true, std::memory_order_release);
  start_barrier_.arrive_and_wait();
  // jthread joins on destruction.
}

void ParallelNed::assign_flow(FlowIndex slot, std::int32_t src_block,
                              std::int32_t dst_block) {
  FT_CHECK(src_block >= 0 && src_block < n_);
  FT_CHECK(dst_block >= 0 && dst_block < n_);
  const FlowView f = problem_.flow(slot);
  FT_CHECK(f.active());
  // Validate the partition property: up links in src block, down links in
  // dst block (Figure 2).
  for (std::uint32_t l : f.route()) {
    const topo::LinkClass& cls = part_.link_class[l];
    if (cls.dir == topo::LinkDir::kUp) {
      FT_CHECK(cls.block == src_block);
    } else if (cls.dir == topo::LinkDir::kDown) {
      FT_CHECK(cls.block == dst_block);
    } else {
      FT_CHECK(false);  // flows must not traverse unpartitioned links
    }
  }
  if (flow_worker_.size() <= slot) {
    flow_worker_.resize(slot + 1, -1);
    flow_pos_.resize(slot + 1, 0);
  }
  FT_CHECK(flow_worker_[slot] == -1);
  const std::int32_t w = src_block * n_ + dst_block;
  flow_worker_[slot] = w;
  flow_pos_[slot] =
      static_cast<std::uint32_t>(workers_[static_cast<std::size_t>(w)]
                                     .flows.size());
  workers_[static_cast<std::size_t>(w)].flows.push_back(slot);
}

void ParallelNed::unassign_flow(FlowIndex slot) {
  FT_CHECK(slot < flow_worker_.size());
  const std::int32_t w = flow_worker_[slot];
  FT_CHECK(w >= 0);
  auto& flows = workers_[static_cast<std::size_t>(w)].flows;
  const std::uint32_t pos = flow_pos_[slot];
  FT_CHECK(pos < flows.size() && flows[pos] == slot);
  // Swap-remove, fixing the moved slot's position index.
  flows[pos] = flows.back();
  flow_pos_[flows[pos]] = pos;
  flows.pop_back();
  flow_worker_[slot] = -1;
}

void ParallelNed::rate_update(WorkerState& w, std::int32_t row,
                              std::int32_t col) {
  for (LinkId l : block_links(true, row)) {
    w.alloc[l.value()] = 0.0;
    w.dxdp[l.value()] = 0.0;
  }
  for (LinkId l : block_links(false, col)) {
    w.alloc[l.value()] = 0.0;
    w.dxdp[l.value()] = 0.0;
  }
  // Branch-light sweep over the SoA arrays; only assigned (active) slots
  // are in w.flows.
  const std::uint32_t* links = problem_.route_links().data();
  const std::uint8_t* len = problem_.route_len().data();
  const double* weight = problem_.weight().data();
  const double* alpha = problem_.alpha().data();
  const double* floor = problem_.price_floor().data();
  double* price = w.price.data();
  double* alloc = w.alloc.data();
  double* dxdp = w.dxdp.data();
  for (FlowIndex slot : w.flows) {
    const std::uint32_t nl = len[slot];
    const std::uint32_t* r = links + slot * kMaxRouteLinks;
    double price_sum = 0.0;
    for (std::uint32_t i = 0; i < nl; ++i) price_sum += price[r[i]];
    double x, dx;
    flow_demand(weight[slot], alpha[slot], floor[slot], price_sum, x, dx);
    rates_[slot] = x;
    for (std::uint32_t i = 0; i < nl; ++i) {
      alloc[r[i]] += x;
      dxdp[r[i]] += dx;
    }
  }
}

void ParallelNed::price_update_owned(std::int32_t worker) {
  const std::int32_t row = worker / n_;
  const std::int32_t col = worker % n_;
  WorkerState& w = workers_[static_cast<std::size_t>(worker)];
  // Identical update rule to NedSolver::iterate (see ned.cc).
  const auto update = [&](LinkId link) {
    const std::size_t l = link.value();
    const double h = w.dxdp[l];
    const double cap = problem_.capacity(l);
    if (h < 0.0) {
      const double g = w.alloc[l] - cap;
      w.price[l] = std::max(0.0, w.price[l] - cfg_.gamma * g / h);
    }
    w.ratio[l] = w.alloc[l] / cap;
    global_price_[l] = w.price[l];
    global_alloc_[l] = w.alloc[l];
  };
  if (row == col) {  // upward owner of block `row`
    for (LinkId l : block_links(true, row)) update(l);
  }
  if (row == n_ - 1 - col) {  // downward owner of block `col`
    for (LinkId l : block_links(false, col)) update(l);
  }
}

void ParallelNed::run_phases(std::int32_t t) {
  // Contiguous band: thread t owns [band_lo, band_hi) -- whole grid rows
  // when num_threads == n, matching the row pinning.
  const std::int32_t band_lo = band_begin_[static_cast<std::size_t>(t)];
  const std::int32_t band_hi =
      band_begin_[static_cast<std::size_t>(t) + 1];
  const auto my_worker = [band_lo, band_hi](std::int32_t w) {
    return w >= band_lo && w < band_hi;
  };

  // Band timing is always on (obs::now_ns, two reads per barrier --
  // tens of ns against a multi-us phase): the flight recorder wants
  // last_band_max_us() per round even when no registry is bound. Wait
  // time accumulates locally and is recorded once per iteration, so the
  // record cost does not scale with the barrier count.
  const std::int64_t t_begin = obs::now_ns();
  std::int64_t wait_ns = 0;
  const auto phase_wait = [&] {
    const std::int64_t w0 = obs::now_ns();
    phase_barrier_.arrive_and_wait();
    wait_ns += obs::now_ns() - w0;
  };

  // Phase 0: rate update on private copies.
  for (std::int32_t w = band_lo; w < band_hi; ++w) {
    rate_update(workers_[static_cast<std::size_t>(w)], w / n_, w % n_);
  }
  phase_wait();

  // Aggregation steps: receiver-side execution, one barrier per step.
  for (const auto& step : schedule_.steps) {
    for (const topo::Transfer& tr : step) {
      if (!my_worker(tr.dst_worker)) continue;
      const WorkerState& src =
          workers_[static_cast<std::size_t>(tr.src_worker)];
      WorkerState& dst = workers_[static_cast<std::size_t>(tr.dst_worker)];
      for (LinkId l : block_links(tr.upward, tr.block)) {
        dst.alloc[l.value()] += src.alloc[l.value()];
        dst.dxdp[l.value()] += src.dxdp[l.value()];
      }
    }
    phase_wait();
  }

  // Price update + ratio computation at the owners.
  for (std::int32_t w = band_lo; w < band_hi; ++w) {
    price_update_owned(w);
  }
  phase_wait();

  // Distribution: reverse schedule, reversed transfer direction,
  // receiver-side execution (the receiver is the original src_worker).
  for (auto it = schedule_.steps.rbegin(); it != schedule_.steps.rend();
       ++it) {
    for (const topo::Transfer& tr : *it) {
      if (!my_worker(tr.src_worker)) continue;
      const WorkerState& from =
          workers_[static_cast<std::size_t>(tr.dst_worker)];
      WorkerState& to = workers_[static_cast<std::size_t>(tr.src_worker)];
      for (LinkId l : block_links(tr.upward, tr.block)) {
        to.price[l.value()] = from.price[l.value()];
        to.ratio[l.value()] = from.ratio[l.value()];
      }
    }
    phase_wait();
  }

  // Normalization (F-NORM) using the distributed ratios.
  if (cfg_.compute_norm && norm_this_iter_) {
    const std::uint32_t* links = problem_.route_links().data();
    const std::uint8_t* len = problem_.route_len().data();
    for (std::int32_t wi = band_lo; wi < band_hi; ++wi) {
      const WorkerState& w = workers_[static_cast<std::size_t>(wi)];
      const double* ratio = w.ratio.data();
      for (FlowIndex slot : w.flows) {
        const std::uint32_t nl = len[slot];
        const std::uint32_t* rt = links + slot * kMaxRouteLinks;
        double r = 0.0;
        for (std::uint32_t i = 0; i < nl; ++i) {
          r = std::max(r, ratio[rt[i]]);
        }
        norm_rates_[slot] = r > 0.0 ? rates_[slot] / r : rates_[slot];
      }
    }
  }

  const std::int64_t compute_ns = obs::now_ns() - t_begin - wait_ns;
  last_band_ns_[static_cast<std::size_t>(t)] = compute_ns;
  if (band_us_ != nullptr) {
    band_us_->record_signed(compute_ns / 1000);
    barrier_wait_us_->record_signed(wait_ns / 1000);
  }
}

double ParallelNed::last_band_max_us() const {
  std::int64_t max_ns = 0;
  for (const std::int64_t ns : last_band_ns_) {
    max_ns = std::max(max_ns, ns);
  }
  return static_cast<double>(max_ns) / 1000.0;
}

void ParallelNed::bind_metrics(obs::MetricsRegistry& reg) {
  // Resolve before publishing: worker threads only read these between
  // the start/end barriers, so a pre-iterate bind is race-free.
  barrier_wait_us_ = &reg.histo("core.par.barrier_wait_us");
  band_us_ = &reg.histo("core.par.band_us");
}

void ParallelNed::thread_main(std::int32_t t) {
  if (cpu_map_.enabled()) {
    // §6.1 block -> CPU mapping: with at most one thread per row, pin to
    // the CPU of the first grid row this thread's band covers. With more
    // threads than rows (several threads splitting a row), pin each
    // thread to its own layout slot -- row-major bands keep same-row
    // threads on adjacent CPUs without oversubscribing any core.
    const std::int32_t first_row =
        band_begin_[static_cast<std::size_t>(t)] / n_;
    const std::int32_t slot = num_threads_ <= n_ ? first_row : t;
    CpuMap::pin_current_thread(cpu_map_.cpu_for_row(slot));
  }
  while (true) {
    start_barrier_.arrive_and_wait();
    if (stop_.load(std::memory_order_acquire)) return;
    run_phases(t);
    end_barrier_.arrive_and_wait();
  }
}

void ParallelNed::iterate(bool compute_norm) {
  norm_this_iter_ = compute_norm;
  rates_.resize(problem_.num_slots(), 0.0);
  norm_rates_.resize(problem_.num_slots(), 0.0);
  if (flow_worker_.size() < problem_.num_slots()) {
    flow_worker_.resize(problem_.num_slots(), -1);
    flow_pos_.resize(problem_.num_slots(), 0);
  }
  // obs::now_ns, not steady_clock: iterate() wall time is differenced
  // against worker-thread band stamps, so every side must read the same
  // (RAW) clock.
  const std::int64_t t0 = obs::now_ns();
  const std::uint64_t c0 = read_cycles();
  start_barrier_.arrive_and_wait();
  end_barrier_.arrive_and_wait();
  last_iter_cycles_ = read_cycles() - c0;
  last_iter_seconds_ = static_cast<double>(obs::now_ns() - t0) / 1e9;
}

}  // namespace ft::core
