// Newton-Exact-Diagonal (NED): the paper's rate allocation algorithm
// (Algorithm 1).
//
// Price update:  p_l <- max(0, p_l - gamma * G_l / H_ll)
// where G_l = alloc_l - c_l (over-allocation) and H_ll is the *exactly
// computed* Hessian diagonal sum over flows on l of dx_s/dP (negative).
// Because H is exact -- possible in the datacenter where the allocator
// knows every flow's utility and route -- the step normalizes the price
// move by how strongly flows will react, giving fast, stable convergence
// without measuring the network.
#pragma once

#include "core/solver.h"

namespace ft::core {

class NedSolver : public Solver {
 public:
  explicit NedSolver(NumProblem& problem, double gamma = 1.0)
      : Solver(problem), gamma_(gamma) {}

  void iterate() override;
  [[nodiscard]] const char* name() const override { return "NED"; }

  [[nodiscard]] double gamma() const { return gamma_; }
  void set_gamma(double g) { gamma_ = g; }

 private:
  double gamma_;
};

}  // namespace ft::core
