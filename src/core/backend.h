// Pluggable solve backends for the allocator (paper §5, §6.1).
//
// The Allocator's control logic (flowlet bookkeeping, thresholded update
// emission, headroom) is independent of *how* the NED iteration and
// F-NORM normalization are computed. A SolveBackend owns that part:
//
//   * SequentialNedBackend -- the single-core reference: NedSolver
//     iterations followed by core::normalize.
//   * ParallelNedBackend -- the §5 multicore engine: core::ParallelNed
//     over a topo::BlockPartition, with F-NORM piggybacked on the same
//     aggregation schedule. Flow slots are assigned to FlowBlocks
//     (src_block, dst_block) derived from each flow's route, so the
//     Allocator API is unchanged: flowlet_start/end keep mapping wire
//     keys to slots, and the backend keeps the grid in sync.
//
// Both backends produce identical rates up to floating-point summation
// order (unit-tested), so they are interchangeable behind the service.
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "core/normalizer.h"
#include "core/parallel.h"
#include "core/problem.h"

namespace ft::obs {
class MetricsRegistry;
}  // namespace ft::obs

namespace ft::core {

class SolveBackend {
 public:
  virtual ~SolveBackend() = default;

  // Slot lifecycle: flow_added runs after `slot` was added to the
  // problem; flow_removed runs before it is removed (the entry is still
  // active). Slots are recycled through the problem's free list, so the
  // same index recurs across churn.
  virtual void flow_added(FlowIndex slot) = 0;
  virtual void flow_removed(FlowIndex slot) = 0;

  // `iters` NED iterations followed by normalization. Afterwards
  // norm_rates() covers every problem slot (values for inactive slots
  // are unspecified).
  virtual void solve(int iters) = 0;
  [[nodiscard]] virtual std::span<const double> norm_rates() const = 0;

  // Resolves backend-specific metric handles in `reg` (cold path; the
  // registry must outlive the backend). The sequential backend splits
  // solve time into core.ned_us / core.norm_us; the parallel backend
  // adds per-band solve and barrier-wait histograms. Default: no-op.
  virtual void bind_metrics(obs::MetricsRegistry& /*reg*/) {}

  // Slowest worker band's compute time (us) in the most recent solve,
  // for flight-recorder spike attribution; 0 when the backend has no
  // notion of bands (sequential).
  [[nodiscard]] virtual double last_band_max_us() const { return 0.0; }

  [[nodiscard]] virtual const char* name() const = 0;
};

// Factory invoked by the Allocator once its NumProblem exists (after
// headroom scaling); gamma and the normalization kind come from the
// AllocatorConfig.
using BackendFactory = std::function<std::unique_ptr<SolveBackend>(
    NumProblem& problem, double gamma, NormKind norm)>;

// The default single-core backend (NedSolver + core::normalize).
[[nodiscard]] BackendFactory sequential_backend();

// The §5 multicore backend. `partition` must cover the topology the
// allocator's link capacities came from; routes must only traverse
// partitioned (up/down) links, so external_traffic_start over allocator
// attachment links is not supported with this backend. cfg.gamma is
// overridden by the allocator's gamma; U-NORM is not supported (the
// parallel engine piggybacks F-NORM only).
[[nodiscard]] BackendFactory parallel_backend(topo::BlockPartition partition,
                                              ParallelConfig cfg);

}  // namespace ft::core
