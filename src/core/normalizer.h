// Rate normalization (paper §4): the optimizer's momentary allocations can
// exceed link capacities while prices re-converge after flowlet churn;
// normalization scales rates so no link is over capacity, avoiding queuing
// without waiting for convergence.
//
//   U-NORM: x_s / r*          with r* = max over links of alloc_l / c_l
//   F-NORM: x_s / max r_l     over the links on s's own route
//
// F-NORM's guarantee: for any link l, sum over s in S(l) of
// x_s / max_m r_m <= sum x_s / r_l = c_l. Both schemes can scale flows
// *up* when their links are under-allocated (the paper notes F-NORM
// "occasionally slightly exceeds the optimal" throughput -- at some
// fairness cost -- while never exceeding link capacities).
//
// Every entry point has a NormScratch overload: callers on the allocation
// round hot path (core/backend.cc) keep one scratch alive so steady-state
// rounds perform no heap allocation. The scratch-free overloads allocate
// internally and exist for tests and one-shot analyses.
#pragma once

#include <span>
#include <vector>

#include "core/problem.h"

namespace ft::core {

// Reusable per-link buffers for the normalization pass. Sized on first
// use; subsequent calls with the same problem allocate nothing.
struct NormScratch {
  std::vector<double> ratios;
  std::vector<double> fixed;
};

// Per-link allocation ratios r_l = alloc_l / c_l for the given rates.
// `fixed_scratch` accumulates fixed-demand (external, §7) traffic, which
// is excluded from the numerator and subtracted from the denominator.
void link_ratios(const NumProblem& problem, std::span<const double> rates,
                 std::span<double> out_ratios,
                 std::vector<double>& fixed_scratch);
void link_ratios(const NumProblem& problem, std::span<const double> rates,
                 std::span<double> out_ratios);

// U-NORM. Returns the scale factor r* that was applied (1 if no link has
// any allocation). `out` may alias `rates`.
double u_norm(const NumProblem& problem, std::span<const double> rates,
              std::span<double> out, NormScratch& scratch);
double u_norm(const NumProblem& problem, std::span<const double> rates,
              std::span<double> out);

// F-NORM. `out` may alias `rates`. Flows whose every link has zero
// aggregate allocation keep their rate (the division-by-zero case noted
// in §4).
void f_norm(const NumProblem& problem, std::span<const double> rates,
            std::span<double> out, NormScratch& scratch);
void f_norm(const NumProblem& problem, std::span<const double> rates,
            std::span<double> out);

// F-NORM reusing the solver's per-link accumulators: `link_alloc` is the
// sum of *all* flows' rates per link (Solver::link_alloc) and
// `link_fixed` the fixed-demand portion (Solver::link_fixed), both from
// the same rate update that produced `rates`. Skips f_norm's full
// re-scatter over every flow -- one sweep instead of two on the
// allocation round hot path. Equal to f_norm up to fp summation order.
void f_norm_from_alloc(const NumProblem& problem,
                       std::span<const double> rates,
                       std::span<const double> link_alloc,
                       std::span<const double> link_fixed,
                       std::span<double> out, NormScratch& scratch);

enum class NormKind { kNone, kUniform, kPerFlow };

// Dispatch helper used by the allocator and benches.
void normalize(NormKind kind, const NumProblem& problem,
               std::span<const double> rates, std::span<double> out,
               NormScratch& scratch);
void normalize(NormKind kind, const NumProblem& problem,
               std::span<const double> rates, std::span<double> out);

}  // namespace ft::core
