#include "core/normalizer.h"

#include <algorithm>

#include "common/check.h"

namespace ft::core {
namespace {

// Minimum residual capacity fraction when external traffic saturates a
// link; keeps ratios finite (adaptive flows get squeezed toward zero).
constexpr double kMinResidualFrac = 1e-6;

}  // namespace

void link_ratios(const NumProblem& problem, std::span<const double> rates,
                 std::span<double> out_ratios,
                 std::vector<double>& fixed_scratch) {
  FT_CHECK(out_ratios.size() == problem.num_links());
  // Adaptive allocation is normalized against the capacity left after
  // fixed-demand (external, §7) traffic, which the allocator cannot
  // scale.
  fixed_scratch.resize(problem.num_links());
  std::fill(fixed_scratch.begin(), fixed_scratch.end(), 0.0);
  std::fill(out_ratios.begin(), out_ratios.end(), 0.0);
  const std::size_t slots = problem.num_slots();
  const std::uint8_t* len = problem.route_len().data();
  const std::uint32_t* links = problem.route_links().data();
  const double* alpha = problem.alpha().data();
  for (std::size_t s = 0; s < slots; ++s) {
    const std::uint32_t nl = len[s];
    if (nl == 0) continue;
    FT_CHECK(s < rates.size());
    const std::uint32_t* r = links + s * kMaxRouteLinks;
    double* acc = alpha[s] == 0.0 ? fixed_scratch.data()
                                  : out_ratios.data();
    for (std::uint32_t i = 0; i < nl; ++i) acc[r[i]] += rates[s];
  }
  for (std::size_t l = 0; l < out_ratios.size(); ++l) {
    const double c = problem.capacity(l);
    const double residual =
        std::max(c - fixed_scratch[l], kMinResidualFrac * c);
    out_ratios[l] /= residual;
  }
}

void link_ratios(const NumProblem& problem, std::span<const double> rates,
                 std::span<double> out_ratios) {
  std::vector<double> fixed;
  link_ratios(problem, rates, out_ratios, fixed);
}

double u_norm(const NumProblem& problem, std::span<const double> rates,
              std::span<double> out, NormScratch& scratch) {
  scratch.ratios.resize(problem.num_links());
  link_ratios(problem, rates, scratch.ratios, scratch.fixed);
  double r_star = 0.0;
  for (double r : scratch.ratios) r_star = std::max(r_star, r);
  if (r_star <= 0.0) r_star = 1.0;
  const std::size_t slots = problem.num_slots();
  const std::uint8_t* len = problem.route_len().data();
  const double* alpha = problem.alpha().data();
  for (std::size_t s = 0; s < slots; ++s) {
    if (len[s] == 0) {
      out[s] = 0.0;
    } else if (alpha[s] == 0.0) {
      out[s] = rates[s];  // external traffic is not scalable
    } else {
      out[s] = rates[s] / r_star;
    }
  }
  return r_star;
}

double u_norm(const NumProblem& problem, std::span<const double> rates,
              std::span<double> out) {
  NormScratch scratch;
  return u_norm(problem, rates, out, scratch);
}

namespace {

// Shared per-flow pass of F-NORM: scale each flow by the max ratio along
// its own route (fixed-demand flows are never scaled).
void f_norm_flow_pass(const NumProblem& problem,
                      std::span<const double> rates,
                      const double* ratios, std::span<double> out) {
  const std::size_t slots = problem.num_slots();
  const std::uint8_t* len = problem.route_len().data();
  const std::uint32_t* links = problem.route_links().data();
  const double* alpha = problem.alpha().data();
  for (std::size_t s = 0; s < slots; ++s) {
    const std::uint32_t nl = len[s];
    if (nl == 0) {
      out[s] = 0.0;
      continue;
    }
    if (alpha[s] == 0.0) {
      out[s] = rates[s];
      continue;
    }
    const std::uint32_t* rt = links + s * kMaxRouteLinks;
    double r = 0.0;
    for (std::uint32_t i = 0; i < nl; ++i) {
      r = std::max(r, ratios[rt[i]]);
    }
    out[s] = r > 0.0 ? rates[s] / r : rates[s];
  }
}

}  // namespace

void f_norm_from_alloc(const NumProblem& problem,
                       std::span<const double> rates,
                       std::span<const double> link_alloc,
                       std::span<const double> link_fixed,
                       std::span<double> out, NormScratch& scratch) {
  FT_CHECK(link_alloc.size() == problem.num_links());
  FT_CHECK(link_fixed.size() == problem.num_links());
  scratch.ratios.resize(problem.num_links());
  for (std::size_t l = 0; l < scratch.ratios.size(); ++l) {
    const double c = problem.capacity(l);
    const double residual =
        std::max(c - link_fixed[l], kMinResidualFrac * c);
    scratch.ratios[l] = (link_alloc[l] - link_fixed[l]) / residual;
  }
  f_norm_flow_pass(problem, rates, scratch.ratios.data(), out);
}

void f_norm(const NumProblem& problem, std::span<const double> rates,
            std::span<double> out, NormScratch& scratch) {
  scratch.ratios.resize(problem.num_links());
  link_ratios(problem, rates, scratch.ratios, scratch.fixed);
  f_norm_flow_pass(problem, rates, scratch.ratios.data(), out);
}

void f_norm(const NumProblem& problem, std::span<const double> rates,
            std::span<double> out) {
  NormScratch scratch;
  f_norm(problem, rates, out, scratch);
}

void normalize(NormKind kind, const NumProblem& problem,
               std::span<const double> rates, std::span<double> out,
               NormScratch& scratch) {
  switch (kind) {
    case NormKind::kNone:
      if (out.data() != rates.data()) {
        std::copy(rates.begin(), rates.end(), out.begin());
      }
      return;
    case NormKind::kUniform:
      u_norm(problem, rates, out, scratch);
      return;
    case NormKind::kPerFlow:
      f_norm(problem, rates, out, scratch);
      return;
  }
  FT_CHECK(false);
}

void normalize(NormKind kind, const NumProblem& problem,
               std::span<const double> rates, std::span<double> out) {
  NormScratch scratch;
  normalize(kind, problem, rates, out, scratch);
}

}  // namespace ft::core
