#include "core/normalizer.h"

#include <algorithm>

#include "common/check.h"

namespace ft::core {
namespace {

// Minimum residual capacity fraction when external traffic saturates a
// link; keeps ratios finite (adaptive flows get squeezed toward zero).
constexpr double kMinResidualFrac = 1e-6;

}  // namespace

void link_ratios(const NumProblem& problem, std::span<const double> rates,
                 std::span<double> out_ratios) {
  FT_CHECK(out_ratios.size() == problem.num_links());
  // Adaptive allocation is normalized against the capacity left after
  // fixed-demand (external, §7) traffic, which the allocator cannot
  // scale.
  std::vector<double> fixed(problem.num_links(), 0.0);
  std::fill(out_ratios.begin(), out_ratios.end(), 0.0);
  const auto flows = problem.flows();
  for (std::size_t s = 0; s < flows.size(); ++s) {
    if (!flows[s].active) continue;
    FT_CHECK(s < rates.size());
    if (flows[s].util.is_fixed()) {
      for (std::uint32_t l : flows[s].route()) fixed[l] += rates[s];
    } else {
      for (std::uint32_t l : flows[s].route()) out_ratios[l] += rates[s];
    }
  }
  for (std::size_t l = 0; l < out_ratios.size(); ++l) {
    const double c = problem.capacity(l);
    const double residual =
        std::max(c - fixed[l], kMinResidualFrac * c);
    out_ratios[l] /= residual;
  }
}

double u_norm(const NumProblem& problem, std::span<const double> rates,
              std::span<double> out) {
  std::vector<double> ratios(problem.num_links());
  link_ratios(problem, rates, ratios);
  double r_star = 0.0;
  for (double r : ratios) r_star = std::max(r_star, r);
  if (r_star <= 0.0) r_star = 1.0;
  const auto flows = problem.flows();
  for (std::size_t s = 0; s < flows.size(); ++s) {
    if (!flows[s].active) {
      out[s] = 0.0;
    } else if (flows[s].util.is_fixed()) {
      out[s] = rates[s];  // external traffic is not scalable
    } else {
      out[s] = rates[s] / r_star;
    }
  }
  return r_star;
}

void f_norm(const NumProblem& problem, std::span<const double> rates,
            std::span<double> out) {
  std::vector<double> ratios(problem.num_links());
  link_ratios(problem, rates, ratios);
  const auto flows = problem.flows();
  for (std::size_t s = 0; s < flows.size(); ++s) {
    if (!flows[s].active) {
      out[s] = 0.0;
      continue;
    }
    if (flows[s].util.is_fixed()) {
      out[s] = rates[s];
      continue;
    }
    double r = 0.0;
    for (std::uint32_t l : flows[s].route()) {
      r = std::max(r, ratios[l]);
    }
    out[s] = r > 0.0 ? rates[s] / r : rates[s];
  }
}

void normalize(NormKind kind, const NumProblem& problem,
               std::span<const double> rates, std::span<double> out) {
  switch (kind) {
    case NormKind::kNone:
      if (out.data() != rates.data()) {
        std::copy(rates.begin(), rates.end(), out.begin());
      }
      return;
    case NormKind::kUniform:
      u_norm(problem, rates, out);
      return;
    case NormKind::kPerFlow:
      f_norm(problem, rates, out);
      return;
  }
  FT_CHECK(false);
}

}  // namespace ft::core
