// Fastpass-style timeslot arbiter (Perry et al., "Fastpass: A
// Centralized 'Zero-Queue' Datacenter Network", SIGCOMM 2014) -- the
// centralized baseline the paper's throughput comparison is made
// against (§1, §6.1: Flowtune handles 10.4x more throughput per core
// and scales to 8x more cores, an 83x gain).
//
// Fastpass performs *per-packet* work: time is divided into timeslots of
// one MTU at the host link rate (~1.23 us at 10 Gbit/s); every timeslot
// the arbiter computes a maximal matching between sources and
// destinations over the backlogged demands and grants each matched pair
// one MTU. Its allocation throughput is therefore proportional to how
// many timeslot matchings per second a core can compute -- it degrades
// as link speeds grow -- while Flowtune's flowlet-granularity NED cost
// is independent of link speed (§6.1 "Fastpass performs per-packet
// work, so its scalability declines with increases in link speed").
//
// The matching algorithm mirrors Fastpass's pipelined greedy maximal
// matcher: demands are visited in a rotating order (for fairness) and a
// (src, dst) pair is granted iff both endpoints are still free in the
// slot. The result is a maximal matching: no ungranted demand has both
// endpoints free (unit-tested).
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace ft::core {

class FastpassArbiter {
 public:
  struct Grant {
    std::int32_t src;
    std::int32_t dst;
  };

  struct Stats {
    std::uint64_t timeslots = 0;
    std::uint64_t grants = 0;
    std::int64_t bytes_granted = 0;
  };

  FastpassArbiter(std::int32_t num_hosts, std::int64_t mtu_bytes = 1538);

  // Adds backlog for a (src, dst) pair (a flowlet arrival, in Flowtune
  // terms). Demands are tracked in bytes and served one MTU per grant.
  void add_demand(std::int32_t src, std::int32_t dst, std::int64_t bytes);

  // Computes one timeslot's maximal matching over the current backlog.
  // The returned span is valid until the next call.
  const std::vector<Grant>& allocate_timeslot();

  [[nodiscard]] std::int64_t total_backlog_bytes() const {
    return backlog_total_;
  }
  [[nodiscard]] std::size_t active_pairs() const { return pairs_.size(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::int64_t mtu() const { return mtu_; }

 private:
  struct Pair {
    std::int32_t src;
    std::int32_t dst;
    std::int64_t backlog;
  };

  std::int32_t num_hosts_;
  std::int64_t mtu_;
  std::vector<Pair> pairs_;           // active demands (unordered)
  std::vector<std::int32_t> pair_index_;  // src*N+dst -> index (-1 none)
  std::vector<std::uint32_t> src_busy_;   // slot-stamped busy markers
  std::vector<std::uint32_t> dst_busy_;
  std::uint32_t slot_stamp_ = 0;
  std::size_t rotate_ = 0;  // rotating start for fairness
  std::vector<Grant> grants_;
  std::int64_t backlog_total_ = 0;
  Stats stats_;
};

}  // namespace ft::core
