#include "core/rt.h"

#include <algorithm>
#include <bit>
#include <cstdint>

namespace ft::core {

float fast_recip(float x) {
  // 0x7EF311C3 is the magic constant minimizing worst-case error of the
  // exponent-flip initial guess for 1/x.
  const auto bits = std::bit_cast<std::uint32_t>(x);
  float r = std::bit_cast<float>(0x7EF311C3u - bits);
  r = r * (2.0f - x * r);
  r = r * (2.0f - x * r);
  return r;
}

namespace detail {

RtBase::RtBase(NumProblem& problem)
    : Solver(problem),
      prices_f_(problem.num_links(), 1.0f),
      alloc_f_(problem.num_links(), 0.0f),
      dxdp_f_(problem.num_links(), 0.0f) {}

void RtBase::update_rates_rt() {
  const std::size_t slots = problem_.num_slots();
  rates_f_.resize(slots, 0.0f);
  std::fill(alloc_f_.begin(), alloc_f_.end(), 0.0f);
  std::fill(dxdp_f_.begin(), dxdp_f_.end(), 0.0f);

  const std::uint8_t* len = problem_.route_len().data();
  const std::uint32_t* links = problem_.route_links().data();
  const double* weight = problem_.weight().data();
  const double* alpha = problem_.alpha().data();
  const double* floor_d = problem_.price_floor().data();
  for (std::size_t s = 0; s < slots; ++s) {
    const std::uint32_t nl = len[s];
    if (nl == 0) {
      rates_f_[s] = 0.0f;
      continue;
    }
    const std::uint32_t* r = links + s * kMaxRouteLinks;
    float price_sum = 0.0f;
    for (std::uint32_t i = 0; i < nl; ++i) price_sum += prices_f_[r[i]];
    const auto floor = static_cast<float>(floor_d[s]);
    if (price_sum < floor) price_sum = floor;

    float x;
    float dx;
    if (alpha[s] == 1.0) {
      // Fast path: x = w / P, dx = -x / P via one shared reciprocal.
      const float rp = fast_recip(price_sum);
      x = static_cast<float>(weight[s]) * rp;
      dx = -x * rp;
    } else {
      const Utility util{weight[s], alpha[s]};
      x = static_cast<float>(util.rate(price_sum));
      dx = static_cast<float>(util.drate(price_sum, x));
    }
    rates_f_[s] = x;
    for (std::uint32_t i = 0; i < nl; ++i) {
      alloc_f_[r[i]] += x;
      dxdp_f_[r[i]] += dx;
    }
  }
}

void RtBase::mirror_to_double() {
  rates_.resize(rates_f_.size());
  for (std::size_t i = 0; i < rates_f_.size(); ++i) {
    rates_[i] = static_cast<double>(rates_f_[i]);
  }
  for (std::size_t l = 0; l < prices_f_.size(); ++l) {
    prices_[l] = static_cast<double>(prices_f_[l]);
    link_alloc_[l] = static_cast<double>(alloc_f_[l]);
    link_dxdp_[l] = static_cast<double>(dxdp_f_[l]);
  }
}

}  // namespace detail

void NedRtSolver::iterate() {
  update_rates_rt();
  for (std::size_t l = 0; l < prices_f_.size(); ++l) {
    const float h = dxdp_f_[l];
    if (h < 0.0f) {
      const auto cap = static_cast<float>(problem_.capacity(l));
      const float g = alloc_f_[l] - cap;
      const float step = gamma_ * g * fast_recip(-h);
      prices_f_[l] = std::max(0.0f, prices_f_[l] + step);
    }
  }
  mirror_to_double();
}

void GradientRtSolver::iterate() {
  update_rates_rt();
  for (std::size_t l = 0; l < prices_f_.size(); ++l) {
    const auto cap = static_cast<float>(problem_.capacity(l));
    const float g_rel = (alloc_f_[l] - cap) * fast_recip(cap);
    prices_f_[l] = std::max(0.0f, prices_f_[l] + gamma_ * g_rel);
  }
  mirror_to_double();
}

}  // namespace ft::core
