#include "core/rt.h"

#include <algorithm>
#include <bit>
#include <cstdint>

namespace ft::core {

float fast_recip(float x) {
  // 0x7EF311C3 is the magic constant minimizing worst-case error of the
  // exponent-flip initial guess for 1/x.
  const auto bits = std::bit_cast<std::uint32_t>(x);
  float r = std::bit_cast<float>(0x7EF311C3u - bits);
  r = r * (2.0f - x * r);
  r = r * (2.0f - x * r);
  return r;
}

namespace detail {

RtBase::RtBase(NumProblem& problem)
    : Solver(problem),
      prices_f_(problem.num_links(), 1.0f),
      alloc_f_(problem.num_links(), 0.0f),
      dxdp_f_(problem.num_links(), 0.0f) {}

void RtBase::update_rates_rt() {
  rates_f_.resize(problem_.num_slots(), 0.0f);
  std::fill(alloc_f_.begin(), alloc_f_.end(), 0.0f);
  std::fill(dxdp_f_.begin(), dxdp_f_.end(), 0.0f);

  const auto flows = problem_.flows();
  for (std::size_t s = 0; s < flows.size(); ++s) {
    const FlowEntry& f = flows[s];
    if (!f.active) {
      rates_f_[s] = 0.0f;
      continue;
    }
    float price_sum = 0.0f;
    for (std::uint32_t l : f.route()) price_sum += prices_f_[l];
    const auto floor = static_cast<float>(f.price_floor);
    if (price_sum < floor) price_sum = floor;

    float x;
    float dx;
    if (f.util.alpha == 1.0) {
      // Fast path: x = w / P, dx = -x / P via one shared reciprocal.
      const float rp = fast_recip(price_sum);
      x = static_cast<float>(f.util.weight) * rp;
      dx = -x * rp;
    } else {
      x = static_cast<float>(f.util.rate(price_sum));
      dx = static_cast<float>(f.util.drate(price_sum, x));
    }
    rates_f_[s] = x;
    for (std::uint32_t l : f.route()) {
      alloc_f_[l] += x;
      dxdp_f_[l] += dx;
    }
  }
}

void RtBase::mirror_to_double() {
  rates_.resize(rates_f_.size());
  for (std::size_t i = 0; i < rates_f_.size(); ++i) {
    rates_[i] = static_cast<double>(rates_f_[i]);
  }
  for (std::size_t l = 0; l < prices_f_.size(); ++l) {
    prices_[l] = static_cast<double>(prices_f_[l]);
    link_alloc_[l] = static_cast<double>(alloc_f_[l]);
    link_dxdp_[l] = static_cast<double>(dxdp_f_[l]);
  }
}

}  // namespace detail

void NedRtSolver::iterate() {
  update_rates_rt();
  for (std::size_t l = 0; l < prices_f_.size(); ++l) {
    const float h = dxdp_f_[l];
    if (h < 0.0f) {
      const auto cap = static_cast<float>(problem_.capacity(l));
      const float g = alloc_f_[l] - cap;
      const float step = gamma_ * g * fast_recip(-h);
      prices_f_[l] = std::max(0.0f, prices_f_[l] + step);
    }
  }
  mirror_to_double();
}

void GradientRtSolver::iterate() {
  update_rates_rt();
  for (std::size_t l = 0; l < prices_f_.size(); ++l) {
    const auto cap = static_cast<float>(problem_.capacity(l));
    const float g_rel = (alloc_f_[l] - cap) * fast_recip(cap);
    prices_f_[l] = std::max(0.0f, prices_f_[l] + gamma_ * g_rel);
  }
  mirror_to_double();
}

}  // namespace ft::core
