// The Flowtune allocator (paper §2, Figure 1): receives flowlet start/end
// notifications, runs NED every iteration period, normalizes rates with
// F-NORM, and emits rate updates to endpoints -- suppressing updates whose
// relative change is below the notification threshold (§6.4). To keep
// suppressed drift from over-filling links, the allocator reserves one
// threshold's worth of headroom by scaling link capacities by
// (1 - threshold).
//
// The NED+normalization computation itself is a pluggable SolveBackend
// (core/backend.h): the default is the sequential NedSolver; pass
// core::parallel_backend(...) to run the §5 multicore FlowBlock engine
// instead -- the allocator keeps the grid assignment in sync with
// flowlet churn and the rest of its behaviour is identical.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/flat_map.h"
#include "common/ids.h"
#include "core/backend.h"
#include "core/normalizer.h"
#include "core/problem.h"

namespace ft::obs {
class MetricsRegistry;
}  // namespace ft::obs

namespace ft::core {

struct RateUpdate {
  std::uint64_t key = 0;
  double rate_bps = 0.0;       // quantized (post rate-code) value
  std::uint16_t rate_code = 0;
};

struct AllocatorConfig {
  double gamma = 0.4;           // paper §6.2
  double threshold = 0.01;      // notification threshold (§6.4)
  // Anti-entropy for lossy delivery layers (0 = off). The threshold
  // filter tracks the last rate *emitted*, not what the agent actually
  // received: if a delivery layer drops an update and the rate then
  // stays inside the threshold band, the flow is never re-notified and
  // the agent holds the stale rate for as long as heartbeats keep its
  // lease alive. With refresh_rounds = N, slot s is re-emitted on every
  // round where (round + s) % N == 0 regardless of the filter, so a
  // lost update is repaired within N rounds and the per-round overhead
  // is a flat active/N updates (staggered, never a burst).
  int refresh_rounds = 0;
  NormKind norm = NormKind::kPerFlow;  // F-NORM
  int iters_per_round = 1;
  Utility default_util = Utility::log_utility();
  bool reserve_headroom = true;
  // Telemetry sink (src/obs/). When null the allocator owns a private
  // registry, so per-instance stats() stays exact either way; the daemon
  // passes a shared registry so core.* metrics land on its stats plane.
  obs::MetricsRegistry* metrics = nullptr;
};

// Point-in-time view assembled from the allocator's registry counters
// (core.flowlet_starts etc.); kept as a plain struct so existing callers
// read fields exactly as before the registry unification.
struct AllocatorStats {
  std::uint64_t flowlet_starts = 0;
  std::uint64_t flowlet_ends = 0;
  std::uint64_t iterations = 0;
  std::uint64_t updates_emitted = 0;
  std::uint64_t updates_suppressed = 0;
  // Of updates_emitted, how many were anti-entropy re-emissions (the
  // threshold filter alone would have suppressed them). emitted minus
  // refreshed is the "organic" update stream -- the convergence signal.
  std::uint64_t updates_refreshed = 0;
};

class Allocator {
 public:
  Allocator(std::vector<double> link_capacities_bps, AllocatorConfig cfg);
  // With an explicit solve backend (core/backend.h). The factory runs
  // after headroom scaling, so the backend sees final capacities.
  Allocator(std::vector<double> link_capacities_bps, AllocatorConfig cfg,
            BackendFactory backend);
  ~Allocator();
  // Not movable: the backend holds a reference to problem_ (prvalue
  // returns still work through guaranteed copy elision).
  Allocator(const Allocator&) = delete;
  Allocator& operator=(const Allocator&) = delete;

  // Registers a new flowlet with the given route. Returns false (no-op)
  // if the key is already active.
  bool flowlet_start(std::uint64_t key, std::span<const LinkId> route);
  bool flowlet_start(std::uint64_t key, std::span<const LinkId> route,
                     Utility util);
  // Ends a flowlet. Returns false if the key is unknown.
  bool flowlet_end(std::uint64_t key);

  // §7 closed loop: registers uncontrolled external traffic of
  // `rate_bps` on `route` as a fixed-demand dummy flow. It consumes
  // capacity in the optimization and is never scaled by normalization;
  // end it with flowlet_end.
  bool external_traffic_start(std::uint64_t key,
                              std::span<const LinkId> route,
                              double rate_bps) {
    return flowlet_start(key, route, Utility::fixed_demand(rate_bps));
  }

  // §7 closed loop: adjusts a link's capacity at runtime (headroom
  // scaling is applied on top when configured).
  void set_link_capacity(std::size_t link, double capacity_bps);
  [[nodiscard]] bool is_active(std::uint64_t key) const {
    return key_to_slot_.contains(key);
  }

  // One allocation round: NED iteration(s), normalization, thresholded
  // update emission. Updates are appended to `out`. Steady state (stable
  // flow set, recycled `out`) performs no heap allocation; churn spikes
  // re-reserve up front rather than reallocating mid-round.
  void run_iteration(std::vector<RateUpdate>& out);

  // Pre-sizes every per-flow structure (problem SoA arrays incl. the
  // per-link adjacency's uniform-average share, key map, notification
  // state) for `flows` concurrent flowlets. Churn up to that size then
  // allocates nothing, except that a link loaded beyond the uniform
  // average grows its adjacency list to its own peak once.
  void reserve(std::size_t flows);

  // Marks a flow as never-notified so the next run_iteration re-emits
  // its rate unconditionally. For delivery layers that can drop an
  // emitted update (e.g. a full shard ring under overload): without
  // this the threshold filter would suppress the flow until its rate
  // drifted past the threshold again.
  void invalidate_notification(std::uint64_t key);

  // CLOCK_MONOTONIC_RAW stamps (obs::now_ns) of the most recent
  // run_iteration's phase boundaries: solve start, solve/normalize done,
  // emission sweep done. The service's update-path tracer copies these
  // into a traced flow's kHopSolveDone / kHopEmitDone slots.
  struct RoundStamps {
    std::int64_t solve_start_ns = 0;
    std::int64_t solve_end_ns = 0;
    std::int64_t emit_end_ns = 0;
  };
  [[nodiscard]] const RoundStamps& last_round_stamps() const {
    return stamps_;
  }

  // Most recent *normalized, quantized* rate notified for a flow (0 if
  // never notified or unknown).
  [[nodiscard]] double notified_rate(std::uint64_t key) const;
  // Most recent normalized rate (pre-threshold) for a flow.
  [[nodiscard]] double allocated_rate(std::uint64_t key) const;

  [[nodiscard]] AllocatorStats stats() const;
  // The registry this allocator records into (cfg.metrics, or the
  // private one): core.solve_us / core.emit_us round-phase histograms,
  // backend timing, and the counters behind stats().
  [[nodiscard]] obs::MetricsRegistry& metrics() const { return *metrics_; }
  [[nodiscard]] const AllocatorConfig& config() const { return cfg_; }
  [[nodiscard]] const NumProblem& problem() const { return problem_; }
  [[nodiscard]] const SolveBackend& backend() const { return *backend_; }
  [[nodiscard]] std::size_t num_active_flowlets() const {
    return key_to_slot_.size();
  }

 private:
  struct Metrics;  // resolved registry handles (allocator.cc)

  AllocatorConfig cfg_;
  NumProblem problem_;
  std::unique_ptr<SolveBackend> backend_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // when cfg has none
  obs::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<Metrics> m_;
  // Open-addressing flat map (common/flat_map.h): key lookups on the
  // churn and notification hot paths never touch the heap.
  FlatMap64<FlowIndex> key_to_slot_;
  std::vector<std::uint64_t> slot_to_key_;
  std::vector<double> last_notified_;  // per slot; <0 = never notified
  std::uint64_t round_seq_ = 0;        // run_iteration count (refresh stagger)
  RoundStamps stamps_;
};

}  // namespace ft::core
