#include "core/ned.h"

#include <algorithm>

namespace ft::core {

void NedSolver::iterate() {
  update_rates();
  for (std::size_t l = 0; l < prices_.size(); ++l) {
    const double h = link_dxdp_[l];
    if (h < 0.0) {
      const double g = link_alloc_[l] - problem_.capacity(l);
      prices_[l] = std::max(0.0, prices_[l] - gamma_ * g / h);
    }
    // h == 0 means no active flows traverse this link (flows at the
    // demand bound still report clamp-edge sensitivity): leave the price
    // unchanged. Prices are sticky across idle periods, as in the paper
    // where initialization happens only once at system start.
  }
}

}  // namespace ft::core
