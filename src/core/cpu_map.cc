#include "core/cpu_map.h"

#include <algorithm>
#include <cstdio>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#endif

namespace ft::core {
namespace {

std::vector<int> read_cpulist(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return {};
  char buf[4096];
  const std::size_t n = std::fread(buf, 1, sizeof buf - 1, f);
  std::fclose(f);
  buf[n] = '\0';
  std::vector<int> cpus;
  CpuMap::parse_cpulist(buf, cpus);
  return cpus;
}

}  // namespace

bool CpuMap::parse_cpulist(const std::string& text,
                           std::vector<int>& out) {
  int value = 0;
  int range_start = -1;
  bool have_digit = false;
  for (std::size_t at = 0;; ++at) {
    const char c = at < text.size() ? text[at] : '\0';
    if (c >= '0' && c <= '9') {
      value = value * 10 + (c - '0');
      have_digit = true;
      continue;
    }
    const bool end = c == '\0' || c == '\n';
    if (have_digit) {
      if (range_start >= 0) {
        if (value < range_start) return false;  // "5-3"
        for (int i = range_start; i <= value; ++i) out.push_back(i);
        range_start = -1;
      } else if (c == '-') {
        range_start = value;
      } else if (c == ',' || end) {
        out.push_back(value);
      } else {
        return false;  // stray character
      }
      value = 0;
      have_digit = false;
    } else if (!end && c != ',') {
      return false;  // token without digits ("x", "--", leading '-')
    } else if (c == '-' || range_start >= 0) {
      return false;  // dangling range ("3-")
    }
    if (end) break;
  }
  return range_start < 0;
}

int CpuMap::num_cpus() {
  const auto hw = static_cast<int>(std::thread::hardware_concurrency());
  return hw > 0 ? hw : 1;
}

std::vector<std::vector<int>> CpuMap::numa_nodes() {
  std::vector<std::vector<int>> nodes;
  for (int node = 0;; ++node) {
    auto cpus = read_cpulist("/sys/devices/system/node/node" +
                             std::to_string(node) + "/cpulist");
    if (cpus.empty()) break;
    nodes.push_back(std::move(cpus));
  }
  if (nodes.empty()) {
    std::vector<int> all(static_cast<std::size_t>(num_cpus()));
    for (std::size_t i = 0; i < all.size(); ++i) {
      all[i] = static_cast<int>(i);
    }
    nodes.push_back(std::move(all));
  }
  return nodes;
}

CpuMap CpuMap::make(std::int32_t rows, const CpuMapConfig& cfg) {
  CpuMap map;
  if (!cfg.enable || rows <= 0) return map;
  std::vector<int> pool = cfg.cpus;
  if (pool.empty()) {
    if (cfg.numa_interleave) {
      // Round-robin over nodes, skipping exhausted ones, until either
      // every row has a CPU or every CPU (across all nodes, however
      // asymmetric) is in the pool.
      const auto nodes = numa_nodes();
      std::size_t total = 0;
      for (const auto& n : nodes) total += n.size();
      const std::size_t want =
          std::min(total, static_cast<std::size_t>(std::max(rows, 1)));
      std::vector<std::size_t> next(nodes.size(), 0);
      std::size_t node = 0;
      while (pool.size() < want) {
        while (next[node] >= nodes[node].size()) {
          node = (node + 1) % nodes.size();
        }
        pool.push_back(nodes[node][next[node]++]);
        node = (node + 1) % nodes.size();
      }
      if (pool.empty()) pool.push_back(0);
    } else {
      pool.resize(static_cast<std::size_t>(num_cpus()));
      for (std::size_t i = 0; i < pool.size(); ++i) {
        pool[i] = static_cast<int>(i);
      }
    }
  }
  map.row_cpu_.resize(static_cast<std::size_t>(rows));
  for (std::int32_t r = 0; r < rows; ++r) {
    map.row_cpu_[static_cast<std::size_t>(r)] =
        pool[static_cast<std::size_t>(r) % pool.size()];
  }
  return map;
}

int CpuMap::cpu_for_row(std::int32_t row) const {
  if (row_cpu_.empty()) return -1;
  return row_cpu_[static_cast<std::size_t>(row) % row_cpu_.size()];
}

std::string CpuMap::describe() const {
  std::string out;
  for (std::size_t i = 0; i < row_cpu_.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(row_cpu_[i]);
  }
  return out;
}

bool CpuMap::pin_current_thread(int cpu) {
#if defined(__linux__)
  if (cpu < 0) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(cpu), &set);
  return ::sched_setaffinity(0, sizeof set, &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

}  // namespace ft::core
