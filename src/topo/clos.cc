#include "topo/clos.h"

namespace ft::topo {

ClosTopology::ClosTopology(const ClosConfig& cfg) : cfg_(cfg) {
  FT_CHECK(cfg.racks > 0);
  FT_CHECK(cfg.servers_per_rack > 0);
  FT_CHECK(cfg.spines > 0);

  const auto racks = static_cast<std::size_t>(cfg.racks);
  const auto spines = static_cast<std::size_t>(cfg.spines);
  const auto hosts = static_cast<std::size_t>(cfg.num_hosts());

  hosts_.reserve(hosts);
  tors_.reserve(racks);
  spines_.reserve(spines);
  host_up_.resize(hosts);
  host_down_.resize(hosts);
  tor_to_spine_.resize(racks * spines);
  spine_to_tor_.resize(spines * racks);

  for (std::int32_t r = 0; r < cfg.racks; ++r) {
    tors_.push_back(topo_.add_node(NodeType::kTor, r));
  }
  for (std::int32_t s = 0; s < cfg.spines; ++s) {
    spines_.push_back(topo_.add_node(NodeType::kSpine));
  }
  for (std::int32_t r = 0; r < cfg.racks; ++r) {
    for (std::int32_t i = 0; i < cfg.servers_per_rack; ++i) {
      const NodeId h = topo_.add_node(NodeType::kHost, r);
      const auto hi = hosts_.size();
      hosts_.push_back(h);
      host_up_[hi] =
          topo_.add_link(h, tors_[static_cast<std::size_t>(r)],
                         cfg.host_link_bps, cfg.link_delay);
      host_down_[hi] =
          topo_.add_link(tors_[static_cast<std::size_t>(r)], h,
                         cfg.host_link_bps, cfg.link_delay);
    }
  }
  for (std::int32_t r = 0; r < cfg.racks; ++r) {
    for (std::int32_t s = 0; s < cfg.spines; ++s) {
      tor_to_spine_[static_cast<std::size_t>(r) * spines +
                    static_cast<std::size_t>(s)] =
          topo_.add_link(tors_[static_cast<std::size_t>(r)],
                         spines_[static_cast<std::size_t>(s)],
                         cfg.fabric_link_bps, cfg.link_delay);
      spine_to_tor_[static_cast<std::size_t>(s) * racks +
                    static_cast<std::size_t>(r)] =
          topo_.add_link(spines_[static_cast<std::size_t>(s)],
                         tors_[static_cast<std::size_t>(r)],
                         cfg.fabric_link_bps, cfg.link_delay);
    }
  }
  if (cfg.with_allocator) {
    allocator_ = topo_.add_node(NodeType::kAllocator);
    spine_to_alloc_.resize(spines);
    alloc_to_spine_.resize(spines);
    for (std::int32_t s = 0; s < cfg.spines; ++s) {
      spine_to_alloc_[static_cast<std::size_t>(s)] =
          topo_.add_link(spines_[static_cast<std::size_t>(s)], allocator_,
                         cfg.allocator_link_bps, cfg.link_delay);
      alloc_to_spine_[static_cast<std::size_t>(s)] =
          topo_.add_link(allocator_, spines_[static_cast<std::size_t>(s)],
                         cfg.allocator_link_bps, cfg.link_delay);
    }
  }
}

std::int32_t ClosTopology::host_index(NodeId h) const {
  const Node& n = topo_.node(h);
  FT_CHECK(n.type == NodeType::kHost);
  // Hosts are created rack-major after ToRs and spines, so the dense index
  // can be recovered from the node id.
  const auto first_host = hosts_.front().value();
  FT_CHECK(h.value() >= first_host);
  // Each host allocates one node id; hosts within a rack are contiguous.
  // Host node ids are not strictly contiguous across racks (no other nodes
  // are interleaved, so they are in fact contiguous).
  const auto idx = static_cast<std::int32_t>(h.value() - first_host);
  FT_CHECK(idx < num_hosts());
  FT_CHECK(hosts_[static_cast<std::size_t>(idx)] == h);
  return idx;
}

Path ClosTopology::host_path(NodeId src, NodeId dst,
                             std::uint64_t flow_hash) const {
  FT_CHECK(src != dst);
  const std::int32_t src_rack = rack_of_host(src);
  const std::int32_t dst_rack = rack_of_host(dst);
  const auto si = static_cast<std::size_t>(host_index(src));
  const auto di = static_cast<std::size_t>(host_index(dst));
  Path p;
  p.push_back(host_up_[si]);
  if (src_rack != dst_rack) {
    const auto s = static_cast<std::size_t>(
        flow_hash % static_cast<std::uint64_t>(cfg_.spines));
    p.push_back(tor_to_spine_[static_cast<std::size_t>(src_rack) *
                                  static_cast<std::size_t>(cfg_.spines) +
                              s]);
    p.push_back(spine_to_tor_[s * static_cast<std::size_t>(cfg_.racks) +
                              static_cast<std::size_t>(dst_rack)]);
  }
  p.push_back(host_down_[di]);
  return p;
}

Path ClosTopology::to_allocator_path(NodeId src,
                                     std::uint64_t flow_hash) const {
  FT_CHECK(cfg_.with_allocator);
  const auto si = static_cast<std::size_t>(host_index(src));
  const auto s = static_cast<std::size_t>(
      flow_hash % static_cast<std::uint64_t>(cfg_.spines));
  Path p;
  p.push_back(host_up_[si]);
  p.push_back(tor_to_spine_[static_cast<std::size_t>(rack_of_host(src)) *
                                static_cast<std::size_t>(cfg_.spines) +
                            s]);
  p.push_back(spine_to_alloc_[s]);
  return p;
}

Path ClosTopology::from_allocator_path(NodeId dst,
                                       std::uint64_t flow_hash) const {
  FT_CHECK(cfg_.with_allocator);
  const auto di = static_cast<std::size_t>(host_index(dst));
  const auto s = static_cast<std::size_t>(
      flow_hash % static_cast<std::uint64_t>(cfg_.spines));
  Path p;
  p.push_back(alloc_to_spine_[s]);
  p.push_back(spine_to_tor_[s * static_cast<std::size_t>(cfg_.racks) +
                            static_cast<std::size_t>(rack_of_host(dst))]);
  p.push_back(host_down_[di]);
  return p;
}

LinkId ClosTopology::host_up_link(NodeId h) const {
  return host_up_[static_cast<std::size_t>(host_index(h))];
}

LinkId ClosTopology::host_down_link(NodeId h) const {
  return host_down_[static_cast<std::size_t>(host_index(h))];
}

}  // namespace ft::topo
