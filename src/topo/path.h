// A network path: a short inline sequence of link ids.
//
// Paths in 2-tier Clos networks have at most 4 hops (host-ToR-spine-ToR-
// host); allocator paths have 3. A fixed-capacity inline array avoids heap
// allocation on the flow-arrival fast path.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "common/check.h"
#include "common/ids.h"

namespace ft::topo {

class Path {
 public:
  static constexpr std::size_t kMaxHops = 8;

  Path() = default;

  void push_back(LinkId l) {
    FT_CHECK(size_ < kMaxHops);
    links_[size_++] = l;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] LinkId operator[](std::size_t i) const {
    FT_CHECK(i < size_);
    return links_[i];
  }
  [[nodiscard]] std::span<const LinkId> links() const {
    return {links_.data(), size_};
  }
  [[nodiscard]] const LinkId* begin() const { return links_.data(); }
  [[nodiscard]] const LinkId* end() const { return links_.data() + size_; }

  friend bool operator==(const Path& a, const Path& b) {
    if (a.size_ != b.size_) return false;
    for (std::size_t i = 0; i < a.size_; ++i) {
      if (a.links_[i] != b.links_[i]) return false;
    }
    return true;
  }

 private:
  std::array<LinkId, kMaxHops> links_{};
  std::size_t size_ = 0;
};

}  // namespace ft::topo
