// Directed network topology graph: nodes (hosts / switches) and
// unidirectional capacitated links with propagation delay.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/ids.h"
#include "common/time.h"

namespace ft::topo {

enum class NodeType : std::uint8_t { kHost, kTor, kSpine, kAllocator };

struct Node {
  NodeId id;
  NodeType type = NodeType::kHost;
  std::int32_t rack = -1;  // rack index for hosts/ToRs; -1 otherwise
};

struct Link {
  LinkId id;
  NodeId src;
  NodeId dst;
  double capacity_bps = 0.0;
  Time delay = 0;
};

class Topology {
 public:
  NodeId add_node(NodeType type, std::int32_t rack = -1);
  LinkId add_link(NodeId src, NodeId dst, double capacity_bps, Time delay);

  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t num_links() const { return links_.size(); }

  [[nodiscard]] const Node& node(NodeId id) const {
    FT_CHECK(id.value() < nodes_.size());
    return nodes_[id.value()];
  }
  [[nodiscard]] const Link& link(LinkId id) const {
    FT_CHECK(id.value() < links_.size());
    return links_[id.value()];
  }
  [[nodiscard]] std::span<const Node> nodes() const { return nodes_; }
  [[nodiscard]] std::span<const Link> links() const { return links_; }

  // Links whose source is `node`.
  [[nodiscard]] std::span<const LinkId> out_links(NodeId node) const {
    FT_CHECK(node.value() < out_.size());
    return out_[node.value()];
  }

  // First link from src to dst; invalid id if none exists.
  [[nodiscard]] LinkId find_link(NodeId src, NodeId dst) const;

 private:
  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> out_;
};

}  // namespace ft::topo
