// Two-tier full-bisection Clos topology builder (the paper's simulation
// topology, §6.2: 4 spines, 9 racks x 16 servers, 10 Gbit/s host links,
// 1.5 us link delay) plus ECMP path selection and the optional allocator
// node attached to every spine by a 40 Gbit/s link.
#pragma once

#include <cstdint>
#include <vector>

#include "topo/path.h"
#include "topo/topology.h"

namespace ft::topo {

struct ClosConfig {
  std::int32_t racks = 9;
  std::int32_t servers_per_rack = 16;
  std::int32_t spines = 4;
  double host_link_bps = 10e9;
  double fabric_link_bps = 40e9;
  Time link_delay = 1500 * kNanosecond;
  // Endpoint processing delay; applied by the simulator at hosts, stored
  // here so topology and simulation agree on RTTs.
  Time host_delay = 2 * kMicrosecond;
  bool with_allocator = false;
  double allocator_link_bps = 40e9;

  [[nodiscard]] std::int32_t num_hosts() const {
    return racks * servers_per_rack;
  }
};

class ClosTopology {
 public:
  explicit ClosTopology(const ClosConfig& cfg);

  [[nodiscard]] const ClosConfig& config() const { return cfg_; }
  [[nodiscard]] const Topology& graph() const { return topo_; }

  [[nodiscard]] std::int32_t num_hosts() const {
    return static_cast<std::int32_t>(hosts_.size());
  }
  [[nodiscard]] NodeId host(std::int32_t index) const {
    return hosts_[static_cast<std::size_t>(index)];
  }
  [[nodiscard]] NodeId host(std::int32_t rack, std::int32_t slot) const {
    return hosts_[static_cast<std::size_t>(rack * cfg_.servers_per_rack +
                                           slot)];
  }
  [[nodiscard]] NodeId tor(std::int32_t rack) const {
    return tors_[static_cast<std::size_t>(rack)];
  }
  [[nodiscard]] NodeId spine(std::int32_t s) const {
    return spines_[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] NodeId allocator_node() const {
    FT_CHECK(cfg_.with_allocator);
    return allocator_;
  }
  [[nodiscard]] std::int32_t rack_of_host(NodeId h) const {
    return topo_.node(h).rack;
  }
  // Dense host index (0..num_hosts-1) of a host node.
  [[nodiscard]] std::int32_t host_index(NodeId h) const;

  // ECMP data path between two hosts. `flow_hash` selects the spine for
  // inter-rack flows; intra-rack flows take host-ToR-host.
  [[nodiscard]] Path host_path(NodeId src, NodeId dst,
                               std::uint64_t flow_hash) const;

  // Control paths between a host and the allocator node (3 hops:
  // host-ToR-spine-allocator and the reverse).
  [[nodiscard]] Path to_allocator_path(NodeId src,
                                       std::uint64_t flow_hash) const;
  [[nodiscard]] Path from_allocator_path(NodeId dst,
                                         std::uint64_t flow_hash) const;

  // Convenience link lookups (valid dense indices are checked).
  [[nodiscard]] LinkId host_up_link(NodeId h) const;    // host -> ToR
  [[nodiscard]] LinkId host_down_link(NodeId h) const;  // ToR -> host

 private:
  ClosConfig cfg_;
  Topology topo_;
  std::vector<NodeId> hosts_;
  std::vector<NodeId> tors_;
  std::vector<NodeId> spines_;
  NodeId allocator_;
  // Link id caches for O(1) path construction.
  std::vector<LinkId> host_up_;               // by host index
  std::vector<LinkId> host_down_;             // by host index
  std::vector<LinkId> tor_to_spine_;          // [rack * spines + s]
  std::vector<LinkId> spine_to_tor_;          // [s * racks + rack]
  std::vector<LinkId> spine_to_alloc_;        // by spine
  std::vector<LinkId> alloc_to_spine_;        // by spine
};

}  // namespace ft::topo
