#include "topo/partition.h"

#include <algorithm>

#include "common/check.h"

namespace ft::topo {
namespace {

[[nodiscard]] bool is_pow2(std::int32_t x) {
  return x > 0 && (x & (x - 1)) == 0;
}

}  // namespace

BlockPartition BlockPartition::make(const ClosTopology& clos,
                                    std::int32_t num_blocks) {
  const ClosConfig& cfg = clos.config();
  FT_CHECK(num_blocks >= 1);
  FT_CHECK(num_blocks <= cfg.racks);

  BlockPartition p;
  p.num_blocks = num_blocks;
  p.block_of_rack.resize(static_cast<std::size_t>(cfg.racks));
  // Contiguous rack ranges per block (ceil-sized), matching "groups of
  // network racks form blocks" in the paper.
  const std::int32_t per_block =
      (cfg.racks + num_blocks - 1) / num_blocks;
  for (std::int32_t r = 0; r < cfg.racks; ++r) {
    p.block_of_rack[static_cast<std::size_t>(r)] =
        std::min(r / per_block, num_blocks - 1);
  }

  const Topology& g = clos.graph();
  p.link_class.resize(g.num_links());
  p.up_links.resize(static_cast<std::size_t>(num_blocks));
  p.down_links.resize(static_cast<std::size_t>(num_blocks));

  for (const Link& l : g.links()) {
    const Node& src = g.node(l.src);
    const Node& dst = g.node(l.dst);
    LinkClass cls;
    if (src.type == NodeType::kHost && dst.type == NodeType::kTor) {
      cls = {LinkDir::kUp, p.block_of_rack[static_cast<std::size_t>(
                               src.rack)]};
    } else if (src.type == NodeType::kTor &&
               dst.type == NodeType::kSpine) {
      cls = {LinkDir::kUp, p.block_of_rack[static_cast<std::size_t>(
                               src.rack)]};
    } else if (src.type == NodeType::kSpine &&
               dst.type == NodeType::kTor) {
      cls = {LinkDir::kDown, p.block_of_rack[static_cast<std::size_t>(
                                 dst.rack)]};
    } else if (src.type == NodeType::kTor &&
               dst.type == NodeType::kHost) {
      cls = {LinkDir::kDown, p.block_of_rack[static_cast<std::size_t>(
                                 dst.rack)]};
    } else {
      cls = {LinkDir::kOther, -1};  // allocator attachment links
    }
    p.link_class[l.id.value()] = cls;
    if (cls.dir == LinkDir::kUp) {
      p.up_links[static_cast<std::size_t>(cls.block)].push_back(l.id);
    } else if (cls.dir == LinkDir::kDown) {
      p.down_links[static_cast<std::size_t>(cls.block)].push_back(l.id);
    }
  }
  return p;
}

std::int32_t BlockPartition::default_blocks(const ClosTopology& clos) {
  std::int32_t b = 1;
  while (b * 2 <= clos.config().racks) b *= 2;
  return b;
}

AggregationSchedule AggregationSchedule::make(std::int32_t n) {
  FT_CHECK(is_pow2(n));
  AggregationSchedule s;
  s.n = n;
  const auto worker = [n](std::int32_t row, std::int32_t col) {
    return row * n + col;
  };
  // Level m combines 2^m x 2^m groups from four 2^(m-1) quadrants.
  for (std::int32_t size = 2; size <= n; size *= 2) {
    std::vector<Transfer> step;
    const std::int32_t h = size / 2;
    for (std::int32_t r0 = 0; r0 < n; r0 += size) {
      for (std::int32_t c0 = 0; c0 < n; c0 += size) {
        for (std::int32_t k = 0; k < h; ++k) {
          // Upward LinkBlocks move along rows onto the group main
          // diagonal: TR quadrant diagonal -> TL diagonal, and BL
          // diagonal -> BR diagonal.
          step.push_back(Transfer{worker(r0 + k, c0 + h + k),
                                  worker(r0 + k, c0 + k), true,
                                  /*block=*/-1});
          step.push_back(Transfer{worker(r0 + h + k, c0 + k),
                                  worker(r0 + h + k, c0 + h + k), true,
                                  /*block=*/-1});
          // Downward LinkBlocks move along columns onto the group
          // secondary diagonal: TL secondary -> BL secondary, and BR
          // secondary -> TR secondary.
          step.push_back(Transfer{worker(r0 + h - 1 - k, c0 + k),
                                  worker(r0 + size - 1 - k, c0 + k),
                                  false, /*block=*/-1});
          step.push_back(Transfer{worker(r0 + size - 1 - k, c0 + h + k),
                                  worker(r0 + h - 1 - k, c0 + h + k),
                                  false, /*block=*/-1});
        }
      }
    }
    s.steps.push_back(std::move(step));
  }
  // Fill in which block's LinkBlock each transfer carries: a worker on
  // row i always carries up-block i; a worker in column j always carries
  // down-block j.
  for (auto& step : s.steps) {
    for (Transfer& t : step) {
      if (t.upward) {
        t.block = t.src_worker / n;  // row
      } else {
        t.block = t.src_worker % n;  // column
      }
    }
  }
  return s;
}

}  // namespace ft::topo
