#include "topo/topology.h"

namespace ft::topo {

NodeId Topology::add_node(NodeType type, std::int32_t rack) {
  const NodeId id(static_cast<std::uint32_t>(nodes_.size()));
  nodes_.push_back(Node{id, type, rack});
  out_.emplace_back();
  return id;
}

LinkId Topology::add_link(NodeId src, NodeId dst, double capacity_bps,
                          Time delay) {
  FT_CHECK(src.value() < nodes_.size());
  FT_CHECK(dst.value() < nodes_.size());
  FT_CHECK(src != dst);
  FT_CHECK(capacity_bps > 0.0);
  FT_CHECK(delay >= 0);
  const LinkId id(static_cast<std::uint32_t>(links_.size()));
  links_.push_back(Link{id, src, dst, capacity_bps, delay});
  out_[src.value()].push_back(id);
  return id;
}

LinkId Topology::find_link(NodeId src, NodeId dst) const {
  for (LinkId l : out_links(src)) {
    if (links_[l.value()].dst == dst) return l;
  }
  return LinkId();
}

}  // namespace ft::topo
