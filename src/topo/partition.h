// FlowBlock / LinkBlock partitioning of a 2-tier Clos network (paper §5,
// Figures 2 and 3).
//
// Racks are grouped into `num_blocks` blocks. All links going *up* from a
// block (host->ToR and ToR->spine) form its upward LinkBlock; all links
// going *down* towards a block (spine->ToR and ToR->host) form its
// downward LinkBlock. Flows are partitioned by (source block, destination
// block) into FlowBlocks, laid out as an n x n worker grid.
//
// AggregationSchedule generates the log2(n)-step pairwise transfer pattern
// of Figure 3: after step m, every 2^m x 2^m group of workers has upward
// LinkBlock sums on its main diagonal and downward LinkBlock sums on its
// secondary diagonal. Distribution (prices back to workers) replays the
// schedule in reverse.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.h"
#include "topo/clos.h"

namespace ft::topo {

enum class LinkDir : std::uint8_t { kUp, kDown, kOther };

struct LinkClass {
  LinkDir dir = LinkDir::kOther;
  std::int32_t block = -1;  // -1 for kOther (e.g. allocator links)
};

struct BlockPartition {
  std::int32_t num_blocks = 1;
  std::vector<std::int32_t> block_of_rack;
  std::vector<LinkClass> link_class;             // indexed by LinkId
  std::vector<std::vector<LinkId>> up_links;     // per block
  std::vector<std::vector<LinkId>> down_links;   // per block

  [[nodiscard]] std::int32_t block_of_host(const ClosTopology& clos,
                                           NodeId host) const {
    return block_of_rack[static_cast<std::size_t>(
        clos.rack_of_host(host))];
  }

  // Partition `clos` into `num_blocks` blocks (must divide the rack count
  // or be at most it; racks are assigned round-robin-contiguously).
  static BlockPartition make(const ClosTopology& clos,
                             std::int32_t num_blocks);

  // Default grid side for `clos`: the largest power of two that fits
  // the rack count (the AggregationSchedule requires a power of two).
  static std::int32_t default_blocks(const ClosTopology& clos);
};

// One LinkBlock state transfer between two workers in the aggregation
// tree. Workers are identified by grid coordinates (row = source block,
// col = destination block), linearized as row * n + col.
struct Transfer {
  std::int32_t src_worker = 0;
  std::int32_t dst_worker = 0;
  bool upward = true;           // which LinkBlock kind moves
  std::int32_t block = 0;       // which block's LinkBlock moves
};

struct AggregationSchedule {
  std::int32_t n = 1;  // grid side; must be a power of two
  std::vector<std::vector<Transfer>> steps;

  // Owner workers after full aggregation.
  [[nodiscard]] std::int32_t up_owner(std::int32_t block) const {
    return block * n + block;
  }
  [[nodiscard]] std::int32_t down_owner(std::int32_t block) const {
    return (n - 1 - block) * n + block;
  }

  static AggregationSchedule make(std::int32_t n);
};

}  // namespace ft::topo
