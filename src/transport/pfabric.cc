#include "transport/pfabric.h"

namespace ft::transport {

void PfabricFlow::on_ack_hook(const sim::Packet& ack, std::int64_t) {
  if (ack.sack_seq >= 0) sacked_.insert(ack.sack_seq);
  // Garbage-collect below the cumulative ack.
  while (!sacked_.empty() && *sacked_.begin() < ack.ack_seq) {
    sacked_.erase(sacked_.begin());
  }
}

void PfabricFlow::on_dupacks() {
  // Selective fast retransmit of the earliest hole; the fixed window is
  // untouched (pFabric's minimal rate control).
  const std::int64_t hole = first_unsacked();
  if (hole < snd_nxt_) send_segment(hole, true);
  dupacks_ = 0;  // allow re-triggering on further duplicate ACKs
}

std::int64_t PfabricFlow::first_unsacked() const {
  std::int64_t seq = snd_una_;
  auto it = sacked_.lower_bound(seq);
  while (it != sacked_.end() && *it == seq) {
    seq += cfg_.mss;
    ++it;
  }
  return seq;
}

void PfabricFlow::on_rto() {
  // Selective: resend only the earliest unacked segment; the fixed
  // window keeps the rest of the flight outstanding.
  const std::int64_t hole = first_unsacked();
  if (hole < snd_nxt_) {
    send_segment(hole, true);
  } else if (snd_nxt_ < stream_end()) {
    send_segment(snd_nxt_, true);
  }
}

}  // namespace ft::transport
