// XCP endpoint (Katabi et al., SIGCOMM 2002).
//
// Data packets carry the congestion header (cwnd, rtt, requested
// feedback); routers (sim::XcpQueue) reduce the feedback field to the
// allocation their control law grants; the receiver echoes it on the
// ACK; the sender applies cwnd += feedback per ACK. Window growth from
// ACK-clocking is disabled (XCP replaces AIMD); drops still halve the
// window as a safety net, though XCP's explicit control keeps queues
// short enough that drops are negligible (Figure 10).
#pragma once

#include "transport/tcp.h"

namespace ft::transport {

class XcpFlow : public TcpFlow {
 public:
  using TcpFlow::TcpFlow;

 protected:
  void stamp_data(sim::Packet& p) override {
    p.xcp_cwnd_bytes = cwnd_;
    p.xcp_rtt_sec =
        srtt_ > 0 ? to_sec(srtt_) : to_sec(30 * kMicrosecond);
    p.xcp_feedback_bytes = 1e18;  // unbounded demand; routers clamp
  }
  void stamp_ack(sim::Packet& ack, const sim::Packet& data) override {
    ack.xcp_feedback_bytes = data.xcp_feedback_bytes;
  }
  void on_ack_hook(const sim::Packet& ack, std::int64_t acked) override {
    if (acked <= 0) return;
    const auto mss = static_cast<double>(cfg_.mss);
    if (ack.xcp_feedback_bytes < 1e17) {  // header was processed
      cwnd_ = std::max(cwnd_ + ack.xcp_feedback_bytes, mss);
      ssthresh_ = cwnd_;
    }
  }
  void ca_increase(std::int64_t) override {}  // no AIMD growth
};

}  // namespace ft::transport
