// End-to-end experiment harness: builds the paper's simulation setup
// (§6.2) for a chosen scheme -- topology, queue disciplines, transports,
// workload, the Flowtune allocator when applicable -- runs it, and
// collects the measurements behind Figures 8-11.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sim/simulator.h"
#include "topo/clos.h"
#include "transport/control.h"
#include "transport/flow.h"
#include "transport/tcp.h"
#include "workload/traffic_gen.h"

namespace ft::transport {

enum class Scheme {
  kFlowtune,
  kDctcp,
  kPfabric,
  kSfqCodel,  // Cubic over sfqCoDel
  kXcp,
  kTcp,       // plain NewReno over drop-tail (plumbing baseline)
};

[[nodiscard]] const char* scheme_name(Scheme s);

struct ExpConfig {
  topo::ClosConfig topo;          // with_allocator is set automatically
  wl::TrafficConfig traffic;      // num_hosts is taken from `topo`
  Scheme scheme = Scheme::kFlowtune;
  Time duration = 40 * kMillisecond;   // measured window
  Time warmup = 5 * kMillisecond;      // excluded from all statistics
  Time drain = 10 * kMillisecond;      // extra time for stragglers
  Time queue_sample_period = 1 * kMillisecond;  // §6.5
  AllocatorAppConfig allocator;   // Flowtune only
  // Scheme knobs (per-10G-link values; scaled by capacity).
  std::int64_t dctcp_marking_bytes = 65 * 1538;
  std::int64_t droptail_limit_bytes = 512 * 1538;
  std::int64_t pfabric_limit_bytes = 24 * 1538;
  sim::SfqCodelConfig sfq_codel = [] {
    sim::SfqCodelConfig c;
    // Datacenter-scaled CoDel (see DESIGN.md): WAN defaults (5 ms /
    // 100 ms) never engage at 14-22 us RTTs. 64 buckets makes
    // flow-to-bucket collisions as frequent as the paper's results
    // imply (mid-size flows colliding with elephants inherit their
    // queue and drops).
    c.num_buckets = 64;
    c.target = 100 * kMicrosecond;
    c.interval = 2 * kMillisecond;
    c.limit_bytes = 384 * 1538;
    return c;
  }();
};

struct BucketResult {
  double p99_norm_fct = 0.0;
  double p50_norm_fct = 0.0;
  std::size_t count = 0;
};

struct ExpResult {
  std::string scheme;
  double load = 0.0;
  std::array<BucketResult, wl::kNumSizeBuckets> buckets;
  double fairness_score = 0.0;     // mean log2(rate_gbps), Figure 11
  double p99_queue_2hop_us = 0.0;  // Figure 9
  double p99_queue_4hop_us = 0.0;
  double dropped_gbps = 0.0;       // Figure 10 (measured window)
  double goodput_gbps = 0.0;       // application bytes acked / duration
  std::size_t flows_started = 0;
  std::size_t flows_completed = 0;
  std::size_t flows_unfinished = 0;
  double mean_norm_fct = 0.0;
  // Flowtune only: control-plane traffic over the measured window.
  double to_allocator_gbps = 0.0;
  double from_allocator_gbps = 0.0;
  std::uint64_t allocator_updates = 0;
};

[[nodiscard]] ExpResult run_experiment(const ExpConfig& cfg);

// Builds the per-scheme queue factory (exposed for tests).
[[nodiscard]] sim::QueueFactory make_queue_factory(const ExpConfig& cfg);

// Builds the per-scheme data-flow TcpConfig (exposed for tests).
[[nodiscard]] TcpConfig make_data_tcp_config(Scheme s);

}  // namespace ft::transport
