#include "transport/experiment.h"

#include <unordered_map>

#include "common/ratecode.h"
#include "transport/cubic.h"
#include "transport/dctcp.h"
#include "transport/pfabric.h"
#include "transport/xcp.h"

namespace ft::transport {

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kFlowtune:
      return "Flowtune";
    case Scheme::kDctcp:
      return "DCTCP";
    case Scheme::kPfabric:
      return "pFabric";
    case Scheme::kSfqCodel:
      return "sfqCoDel";
    case Scheme::kXcp:
      return "XCP";
    case Scheme::kTcp:
      return "TCP";
  }
  return "?";
}

sim::QueueFactory make_queue_factory(const ExpConfig& cfg) {
  // Buffer thresholds are specified per 10 Gbit/s and scale with link
  // capacity (a 40G fabric port gets 4x the buffer/threshold), matching
  // the usual practice in the compared papers.
  switch (cfg.scheme) {
    case Scheme::kDctcp:
      return [cfg](double cap) -> std::unique_ptr<sim::QueueDisc> {
        const double scale = cap / 10e9;
        return std::make_unique<sim::DropTailQueue>(
            static_cast<std::int64_t>(
                static_cast<double>(cfg.droptail_limit_bytes) * scale),
            static_cast<std::int64_t>(
                static_cast<double>(cfg.dctcp_marking_bytes) * scale));
      };
    case Scheme::kPfabric:
      return [cfg](double cap) -> std::unique_ptr<sim::QueueDisc> {
        const double scale = cap / 10e9;
        return std::make_unique<sim::PfabricQueue>(
            static_cast<std::int64_t>(
                static_cast<double>(cfg.pfabric_limit_bytes) * scale));
      };
    case Scheme::kSfqCodel:
      return [cfg](double cap) -> std::unique_ptr<sim::QueueDisc> {
        sim::SfqCodelConfig qc = cfg.sfq_codel;
        qc.limit_bytes = static_cast<std::int64_t>(
            static_cast<double>(qc.limit_bytes) * cap / 10e9);
        return std::make_unique<sim::SfqCodelQueue>(qc);
      };
    case Scheme::kXcp:
      return [cfg](double cap) -> std::unique_ptr<sim::QueueDisc> {
        sim::XcpConfig xc;
        xc.limit_bytes = static_cast<std::int64_t>(
            static_cast<double>(cfg.droptail_limit_bytes) * cap / 10e9);
        return std::make_unique<sim::XcpQueue>(cap, xc);
      };
    case Scheme::kFlowtune:
    case Scheme::kTcp:
      return [cfg](double cap) -> std::unique_ptr<sim::QueueDisc> {
        return std::make_unique<sim::DropTailQueue>(
            static_cast<std::int64_t>(
                static_cast<double>(cfg.droptail_limit_bytes) * cap /
                10e9));
      };
  }
  FT_CHECK(false);
}

TcpConfig make_data_tcp_config(Scheme s) {
  TcpConfig c;
  switch (s) {
    case Scheme::kPfabric:
      // Fixed window ~ 1.2x BDP; tiny RTOs (~3 RTTs) per the pFabric
      // paper.
      c.fixed_window_pkts = 24;
      c.min_rto = 60 * kMicrosecond;
      c.max_rto = 480 * kMicrosecond;
      break;
    case Scheme::kXcp:
      // ns2-era initial window; XCP's explicit feedback must grow the
      // window from there, which is what makes it conservative in
      // handing out bandwidth (§6.3).
      c.init_cwnd_pkts = 2.0;
      c.min_rto = 1 * kMillisecond;
      c.max_rto = 32 * kMillisecond;
      break;
    case Scheme::kFlowtune:
      // "Servers start a regular TCP connection" (§6.2): the ns2-era
      // initial window of 2 carries the first packets until the first
      // rate update arrives (a few 10 us iterations later), after which
      // the window opens fully and pacing takes over.
      c.init_cwnd_pkts = 2.0;
      c.min_rto = 1 * kMillisecond;
      c.max_rto = 32 * kMillisecond;
      break;
    case Scheme::kDctcp:
    case Scheme::kSfqCodel:
    case Scheme::kTcp:
      // ns2 default initial window, as in the paper's simulations.
      c.init_cwnd_pkts = 2.0;
      c.min_rto = 1 * kMillisecond;
      c.max_rto = 32 * kMillisecond;
      break;
  }
  return c;
}

namespace {

// Drives the workload: creates a transport flow per flowlet event and
// records completions.
class ExperimentDriver : public sim::EventHandler {
 public:
  ExperimentDriver(const ExpConfig& cfg, const topo::ClosTopology& clos,
                   sim::Simulator& s, sim::Network& net,
                   FlowRegistry& reg, AllocatorApp* alloc_app)
      : cfg_(cfg),
        clos_(clos),
        sim_(s),
        net_(net),
        reg_(reg),
        alloc_app_(alloc_app),
        gen_([&] {
          wl::TrafficConfig tc = cfg.traffic;
          tc.num_hosts = clos.config().num_hosts();
          tc.host_link_bps = clos.config().host_link_bps;
          return tc;
        }()),
        stats_(clos) {
    if (alloc_app_ != nullptr) {
      alloc_app_->on_rate_update =
          [this](std::int32_t host, const core::RateUpdateMsg& m) {
            apply_rate_update(host, m);
          };
    }
  }

  void start() {
    next_ = gen_.next();
    schedule_next();
  }

  void on_event(std::uint32_t, std::uint64_t) override {
    launch_flow(next_);
    next_ = gen_.next();
    schedule_next();
  }

  [[nodiscard]] sim::FlowStats& stats() { return stats_; }
  [[nodiscard]] std::size_t started() const { return started_; }
  [[nodiscard]] std::size_t completed() const { return completed_; }
  [[nodiscard]] std::size_t unfinished() const {
    return started_ - completed_measured_ - ignored_;
  }
  [[nodiscard]] std::int64_t goodput_bytes() const {
    return goodput_bytes_;
  }

 private:
  void schedule_next() {
    const Time end = cfg_.warmup + cfg_.duration;
    if (next_.start >= end) return;  // stop launching at window end
    sim_.events.schedule(next_.start, this, 0, 0);
  }

  std::unique_ptr<TcpFlow> make_flow(std::int32_t src, std::int32_t dst,
                                     std::uint64_t hash) {
    const auto fwd = clos_.host_path(clos_.host(src), clos_.host(dst), hash);
    const auto rev = clos_.host_path(clos_.host(dst), clos_.host(src), hash);
    const TcpConfig tc = make_data_tcp_config(cfg_.scheme);
    switch (cfg_.scheme) {
      case Scheme::kDctcp:
        return std::make_unique<DctcpFlow>(reg_, src, dst, fwd, rev, tc);
      case Scheme::kPfabric:
        return std::make_unique<PfabricFlow>(reg_, src, dst, fwd, rev,
                                             tc);
      case Scheme::kSfqCodel:
        return std::make_unique<CubicFlow>(reg_, src, dst, fwd, rev, tc);
      case Scheme::kXcp:
        return std::make_unique<XcpFlow>(reg_, src, dst, fwd, rev, tc);
      case Scheme::kFlowtune:
      case Scheme::kTcp:
        return std::make_unique<TcpFlow>(reg_, src, dst, fwd, rev, tc);
    }
    FT_CHECK(false);
  }

  void launch_flow(const wl::FlowletEvent& ev) {
    ++started_;
    // The ECMP hash must be identical at the endpoint and the allocator;
    // both use the flow key, which is the registry id assigned to the
    // flow created next.
    auto probe = make_flow(ev.src_host, ev.dst_host, reg_.next_id());
    TcpFlow* flow = probe.get();
    flows_.push_back(std::move(probe));
    const std::uint32_t id = flow->flow_id();
    const bool measured = sim_.now() >= cfg_.warmup;
    if (measured) {
      stats_.on_flow_start(id, ev.bytes, ev.src_host, ev.dst_host,
                           sim_.now());
    } else {
      ++ignored_;
    }
    flow->on_complete = [this, id, flow, measured, ev] {
      ++completed_;
      if (measured) {
        ++completed_measured_;
        stats_.on_flow_complete(id, sim_.now());
      }
      if (alloc_app_ != nullptr) {
        core::FlowletEndMsg end;
        end.flow_key = id;
        alloc_app_->notify_end(ev.src_host, end);
        key_to_flow_.erase(id);
      }
    };
    flow->on_acked_bytes = [this](std::int64_t b, Time now) {
      if (now >= cfg_.warmup && now < cfg_.warmup + cfg_.duration) {
        goodput_bytes_ += b;
      }
    };
    if (alloc_app_ != nullptr) {
      key_to_flow_.emplace(id, flow);
      core::FlowletStartMsg m;
      m.flow_key = id;
      m.src_host = static_cast<std::uint16_t>(ev.src_host);
      m.dst_host = static_cast<std::uint16_t>(ev.dst_host);
      m.size_hint_bytes = static_cast<std::uint32_t>(
          std::min<std::int64_t>(ev.bytes, UINT32_MAX));
      alloc_app_->notify_start(ev.src_host, m);
    }
    flow->app_send(ev.bytes);
    flow->app_close();
  }

  void apply_rate_update(std::int32_t /*host*/,
                         const core::RateUpdateMsg& m) {
    const auto it = key_to_flow_.find(m.flow_key);
    if (it == key_to_flow_.end()) return;  // already finished
    it->second->set_pacing_rate(decode_rate(m.rate_code));
  }

  const ExpConfig& cfg_;
  const topo::ClosTopology& clos_;
  sim::Simulator& sim_;
  sim::Network& net_;
  FlowRegistry& reg_;
  AllocatorApp* alloc_app_;
  wl::TrafficGenerator gen_;
  wl::FlowletEvent next_{};
  sim::FlowStats stats_;
  std::vector<std::unique_ptr<TcpFlow>> flows_;
  std::unordered_map<std::uint32_t, TcpFlow*> key_to_flow_;
  std::size_t started_ = 0;
  std::size_t completed_ = 0;
  std::size_t completed_measured_ = 0;
  std::size_t ignored_ = 0;
  std::int64_t goodput_bytes_ = 0;
};

}  // namespace

ExpResult run_experiment(const ExpConfig& cfg) {
  topo::ClosConfig tcfg = cfg.topo;
  tcfg.with_allocator = cfg.scheme == Scheme::kFlowtune;
  topo::ClosTopology clos(tcfg);

  sim::Simulator s;
  sim::Network net(s.events, s.pool, clos, make_queue_factory(cfg));
  FlowRegistry reg(net);

  std::unique_ptr<AllocatorApp> alloc_app;
  if (cfg.scheme == Scheme::kFlowtune) {
    alloc_app = std::make_unique<AllocatorApp>(reg, clos, cfg.allocator);
    alloc_app->start();
  }

  ExperimentDriver driver(cfg, clos, s, net, reg, alloc_app.get());
  driver.start();

  // Warmup, then measure.
  s.run_until(cfg.warmup);
  const std::int64_t dropped0 = net.total_dropped_bytes();

  sim::PathDelaySampler sampler(net, cfg.queue_sample_period, 32,
                                cfg.traffic.seed);
  sampler.start(cfg.warmup + cfg.duration);

  const std::uint64_t updates0 =
      alloc_app ? alloc_app->allocator().stats().updates_emitted : 0;
  std::int64_t to_alloc0 = 0, from_alloc0 = 0;
  const auto control_bytes = [&](std::int64_t* to, std::int64_t* from) {
    if (!alloc_app) return;
    *to = 0;
    *from = 0;
    const auto& g = clos.graph();
    for (const auto& l : g.links()) {
      const auto st = g.node(l.src).type;
      const auto dt = g.node(l.dst).type;
      if (dt == topo::NodeType::kAllocator) {
        *to += net.link(l.id).stats().tx_bytes;
      } else if (st == topo::NodeType::kAllocator) {
        *from += net.link(l.id).stats().tx_bytes;
      }
    }
  };
  control_bytes(&to_alloc0, &from_alloc0);

  s.run_until(cfg.warmup + cfg.duration);
  const std::int64_t dropped1 = net.total_dropped_bytes();
  std::int64_t to_alloc1 = 0, from_alloc1 = 0;
  control_bytes(&to_alloc1, &from_alloc1);
  const std::uint64_t updates1 =
      alloc_app ? alloc_app->allocator().stats().updates_emitted : 0;

  // Drain stragglers (their completions still count for flows that
  // started in the window).
  s.run_until(cfg.warmup + cfg.duration + cfg.drain);

  ExpResult r;
  r.scheme = scheme_name(cfg.scheme);
  r.load = cfg.traffic.load;
  const sim::FlowStats& fs = driver.stats();
  for (std::int32_t b = 0; b < wl::kNumSizeBuckets; ++b) {
    const auto& sampler_b = fs.bucket(static_cast<wl::SizeBucket>(b));
    r.buckets[static_cast<std::size_t>(b)] = BucketResult{
        sampler_b.p99(), sampler_b.p50(), sampler_b.count()};
  }
  r.fairness_score = fs.fairness_score();
  r.p99_queue_2hop_us = sampler.two_hop().p99();
  r.p99_queue_4hop_us = sampler.four_hop().p99();
  const double dur_sec = to_sec(cfg.duration);
  r.dropped_gbps =
      static_cast<double>(dropped1 - dropped0) * 8.0 / dur_sec / 1e9;
  r.goodput_gbps =
      static_cast<double>(driver.goodput_bytes()) * 8.0 / dur_sec / 1e9;
  r.flows_started = driver.started();
  r.flows_completed = fs.completed();
  r.flows_unfinished = driver.unfinished();
  r.mean_norm_fct = fs.mean_normalized_fct();
  r.to_allocator_gbps =
      static_cast<double>(to_alloc1 - to_alloc0) * 8.0 / dur_sec / 1e9;
  r.from_allocator_gbps =
      static_cast<double>(from_alloc1 - from_alloc0) * 8.0 / dur_sec / 1e9;
  r.allocator_updates = updates1 - updates0;
  return r;
}

}  // namespace ft::transport
