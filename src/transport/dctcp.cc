#include "transport/dctcp.h"

#include <algorithm>

namespace ft::transport {

void DctcpFlow::on_ack_hook(const sim::Packet& ack, std::int64_t acked) {
  if (acked <= 0) return;
  acked_bytes_ += acked;
  if (ack.ecn_echo) marked_bytes_ += acked;
  if (snd_una_ < window_end_) return;

  // One observation window (~1 RTT of data) has elapsed.
  if (acked_bytes_ > 0) {
    const double f = static_cast<double>(marked_bytes_) /
                     static_cast<double>(acked_bytes_);
    alpha_ = (1.0 - kG) * alpha_ + kG * f;
    if (marked_bytes_ > 0) {
      const auto mss = static_cast<double>(cfg_.mss);
      cwnd_ = std::max(cwnd_ * (1.0 - alpha_ / 2.0), mss);
      ssthresh_ = cwnd_;
    }
  }
  acked_bytes_ = 0;
  marked_bytes_ = 0;
  window_end_ = snd_nxt_;
}

}  // namespace ft::transport
