// TCP NewReno over the simulator: slow start, congestion avoidance, fast
// retransmit / fast recovery, RTO with exponential backoff and
// configurable min/max (the paper's control connections use a 20 us
// minRTO / 30 us maxRTO), per-packet ACKs carrying an exact-segment echo
// (sack_seq) and ECN echo.
//
// The same class carries sized flows (app_send + app_close -> completion
// callback) and byte streams (control channels); subclasses override the
// congestion-control hooks to implement Cubic, DCTCP, pFabric, XCP and
// Flowtune's paced mode.
#pragma once

#include <cstdint>
#include <functional>
#include <map>

#include "common/wire.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "topo/path.h"
#include "transport/flow.h"

namespace ft::transport {

struct TcpConfig {
  std::int64_t mss = kMss;
  double init_cwnd_pkts = 10.0;
  Time min_rto = 2 * kMillisecond;
  Time max_rto = 100 * kMillisecond;
  bool ecn_capable = false;
  // pFabric-style fixed window: if > 0, cwnd is pinned to this many
  // packets and loss events do not reduce it.
  double fixed_window_pkts = 0.0;
};

class TcpFlow : public Flow, public sim::EventHandler {
 public:
  // `fwd` is the data path (src -> dst), `rev` the ACK path.
  TcpFlow(FlowRegistry& reg, std::int32_t src_host, std::int32_t dst_host,
          const topo::Path& fwd, const topo::Path& rev, TcpConfig cfg);
  ~TcpFlow() override = default;

  [[nodiscard]] std::uint32_t flow_id() const { return flow_id_; }
  [[nodiscard]] std::int32_t src_host() const { return src_host_; }
  [[nodiscard]] std::int32_t dst_host() const { return dst_host_; }

  // --- Application interface (sender side) ---
  void app_send(std::int64_t bytes);  // append bytes to the stream
  void app_close();                   // complete after all queued bytes
  // Truncates the stream at the bytes already sent and closes: used to
  // stop long-running flows (Figure 4's staircase senders).
  void app_abort();
  [[nodiscard]] std::int64_t app_bytes() const { return app_bytes_; }
  [[nodiscard]] bool complete() const { return complete_; }

  // Invoked once when every byte (and the close marker) has been acked.
  std::function<void()> on_complete;
  // Receiver side: called with counts of newly in-order bytes.
  std::function<void(std::int64_t)> on_delivered;
  // Observer for every data byte acked (throughput traces).
  std::function<void(std::int64_t, Time)> on_acked_bytes;

  // --- Flowtune pacing ---
  // Rate-paced mode: the window opens fully and segments leave at
  // `rate_bps` (paper §6.2 "opens the flow's TCP window and paces
  // packets"). 0 restores window mode.
  void set_pacing_rate(double rate_bps);
  [[nodiscard]] double pacing_rate() const { return pace_rate_bps_; }

  [[nodiscard]] double cwnd_bytes() const { return cwnd_; }
  [[nodiscard]] Time srtt() const { return srtt_; }
  [[nodiscard]] std::uint64_t retransmits() const { return retx_count_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeout_count_; }

  void on_packet(sim::Packet* p) override;
  void on_event(std::uint32_t tag, std::uint64_t arg) override;

 protected:
  // --- Congestion-control hooks (NewReno defaults) ---
  // Window growth on newly acked data.
  virtual void ca_increase(std::int64_t acked);
  // Multiplicative decrease on a loss event; `timeout` distinguishes RTO.
  virtual void on_loss_event(bool timeout);
  // Per-ACK observation hook (ECN echoes, XCP feedback...).
  virtual void on_ack_hook(const sim::Packet& ack, std::int64_t acked);
  // Stamp outgoing data packets (pFabric priority, XCP header).
  virtual void stamp_data(sim::Packet& p);
  // Stamp outgoing ACKs (receiver side).
  virtual void stamp_ack(sim::Packet& ack, const sim::Packet& data);
  // Retransmission strategy on RTO expiry (default: go-back-N).
  virtual void on_rto();
  // Reaction to the third duplicate ACK (default: NewReno fast
  // retransmit + fast recovery).
  virtual void on_dupacks();

  void try_send();
  void send_segment(std::int64_t seq, bool is_retx);
  void enter_recovery();
  void schedule_rto();
  void handle_ack(sim::Packet* p);
  void handle_data(sim::Packet* p);
  [[nodiscard]] std::int64_t flight() const { return snd_nxt_ - snd_una_; }
  [[nodiscard]] std::int64_t stream_end() const { return app_bytes_; }
  [[nodiscard]] sim::EventQueue& events() { return net_.events(); }

  static constexpr std::uint32_t kRtoTimer = 1;
  static constexpr std::uint32_t kPaceTimer = 2;

  FlowRegistry& reg_;
  sim::Network& net_;
  std::uint32_t flow_id_;
  std::int32_t src_host_;
  std::int32_t dst_host_;
  topo::Path fwd_;
  topo::Path rev_;
  TcpConfig cfg_;

  // Sender.
  std::int64_t app_bytes_ = 0;
  bool close_requested_ = false;
  bool complete_ = false;
  std::int64_t snd_una_ = 0;
  std::int64_t snd_nxt_ = 0;
  double cwnd_ = 0.0;
  double ssthresh_ = 0.0;
  std::int32_t dupacks_ = 0;
  bool in_recovery_ = false;
  std::int64_t recover_ = 0;
  std::uint64_t retx_count_ = 0;
  std::uint64_t timeout_count_ = 0;

  // RTT estimation (RFC 6298).
  Time srtt_ = 0;
  Time rttvar_ = 0;
  Time rto_;
  std::int64_t timed_seq_ = -1;
  Time timed_at_ = 0;
  std::uint64_t rto_gen_ = 0;
  bool rto_pending_ = false;

  // Pacing.
  double pace_rate_bps_ = 0.0;
  bool pace_timer_pending_ = false;
  std::uint64_t pace_gen_ = 0;

  // Receiver.
  std::int64_t rcv_nxt_ = 0;
  std::map<std::int64_t, std::int64_t> ooo_;  // start -> end
};

}  // namespace ft::transport
