#include "transport/cubic.h"

#include <algorithm>
#include <cmath>

namespace ft::transport {

void CubicFlow::ca_increase(std::int64_t acked) {
  const auto mss = static_cast<double>(cfg_.mss);
  if (cwnd_ < ssthresh_) {
    cwnd_ += static_cast<double>(acked);
    return;
  }
  if (epoch_start_ < 0) {
    epoch_start_ = events().now();
    const double cwnd_pkts = cwnd_ / mss;
    if (w_max_pkts_ < cwnd_pkts) w_max_pkts_ = cwnd_pkts;
    k_sec_ = std::cbrt((w_max_pkts_ - cwnd_pkts) / kC);
    tcp_friendly_w_ = cwnd_pkts;
  }
  const double t = to_sec(events().now() - epoch_start_);
  const double w_cubic =
      kC * std::pow(t - k_sec_, 3.0) + w_max_pkts_;
  // TCP-friendly region (average Reno window over the epoch).
  const double rtt = std::max(to_sec(srtt_), 1e-6);
  tcp_friendly_w_ += 3.0 * (1.0 - kBeta) / (1.0 + kBeta) *
                     static_cast<double>(acked) / cwnd_ * mss / mss;
  const double target_pkts = std::max(w_cubic, tcp_friendly_w_);
  const double cwnd_pkts = cwnd_ / mss;
  if (target_pkts > cwnd_pkts) {
    // Spread the increase over the next window of ACKs.
    cwnd_ += (target_pkts - cwnd_pkts) / cwnd_pkts *
             static_cast<double>(acked);
  } else {
    // Slow growth floor so the window never stalls completely.
    cwnd_ += 0.01 * mss * static_cast<double>(acked) / cwnd_;
  }
  (void)rtt;
}

void CubicFlow::on_loss_event(bool timeout) {
  const auto mss = static_cast<double>(cfg_.mss);
  w_max_pkts_ = cwnd_ / mss;
  epoch_start_ = -1;
  if (timeout) {
    ssthresh_ = std::max(cwnd_ * kBeta, 2.0 * mss);
    cwnd_ = mss;
  } else {
    cwnd_ = std::max(cwnd_ * kBeta, 2.0 * mss);
    ssthresh_ = cwnd_;
  }
  last_loss_ = events().now();
}

}  // namespace ft::transport
