#include "transport/control.h"

#include "common/ratecode.h"

namespace ft::transport {

ControlChannel::ControlChannel(std::unique_ptr<TcpFlow> flow)
    : flow_(std::move(flow)) {
  flow_->on_delivered = [this](std::int64_t n) { deliver(n); };
}

void ControlChannel::send_start(const core::FlowletStartMsg& m) {
  Pending p;
  p.type = 0;
  p.start = m;
  p.bytes = core::kFlowletStartBytes;
  fifo_.push_back(p);
  payload_sent_ += p.bytes;
  flow_->app_send(p.bytes);
}

void ControlChannel::send_end(const core::FlowletEndMsg& m) {
  Pending p;
  p.type = 1;
  p.end = m;
  p.bytes = core::kFlowletEndBytes;
  fifo_.push_back(p);
  payload_sent_ += p.bytes;
  flow_->app_send(p.bytes);
}

void ControlChannel::send_update(const core::RateUpdateMsg& m) {
  Pending p;
  p.type = 2;
  p.update = m;
  p.bytes = core::kRateUpdateBytes;
  fifo_.push_back(p);
  payload_sent_ += p.bytes;
  flow_->app_send(p.bytes);
}

void ControlChannel::deliver(std::int64_t bytes) {
  delivered_ += bytes;
  // Consume every message whose final byte has now arrived in order
  // ("updates ... are only applied when the corresponding bytes arrive,
  // as in ns2's TcpApp").
  while (!fifo_.empty() && consumed_ + fifo_.front().bytes <= delivered_) {
    const Pending p = fifo_.front();
    fifo_.pop_front();
    consumed_ += p.bytes;
    switch (p.type) {
      case 0:
        if (on_start) on_start(p.start);
        break;
      case 1:
        if (on_end) on_end(p.end);
        break;
      case 2:
        if (on_update) on_update(p.update);
        break;
      default:
        FT_CHECK(false);
    }
  }
}

AllocatorApp::AllocatorApp(FlowRegistry& reg,
                           const topo::ClosTopology& clos,
                           AllocatorAppConfig cfg)
    : reg_(reg),
      clos_(clos),
      cfg_(cfg),
      alloc_(
          [&clos] {
            std::vector<double> caps;
            for (const auto& l : clos.graph().links()) {
              caps.push_back(l.capacity_bps);
            }
            return caps;
          }(),
          cfg.allocator) {
  FT_CHECK(clos.config().with_allocator);
  const std::int32_t n = clos.num_hosts();
  up_.reserve(static_cast<std::size_t>(n));
  down_.reserve(static_cast<std::size_t>(n));
  for (std::int32_t h = 0; h < n; ++h) {
    const auto hash = static_cast<std::uint64_t>(h);
    // Host -> allocator (notifications).
    auto up_flow = std::make_unique<TcpFlow>(
        reg_, h, /*dst=*/-1, clos.to_allocator_path(clos.host(h), hash),
        clos.from_allocator_path(clos.host(h), hash), cfg_.control_tcp);
    up_.push_back(std::make_unique<ControlChannel>(std::move(up_flow)));
    up_.back()->on_start =
        [this](const core::FlowletStartMsg& m) { handle_start(m); };
    up_.back()->on_end =
        [this](const core::FlowletEndMsg& m) { handle_end(m); };
    // Allocator -> host (rate updates).
    auto down_flow = std::make_unique<TcpFlow>(
        reg_, /*src=*/-1, h, clos.from_allocator_path(clos.host(h), hash),
        clos.to_allocator_path(clos.host(h), hash), cfg_.control_tcp);
    down_.push_back(
        std::make_unique<ControlChannel>(std::move(down_flow)));
    down_.back()->on_update = [this, h](const core::RateUpdateMsg& m) {
      if (on_rate_update) on_rate_update(h, m);
    };
  }
}

void AllocatorApp::start() {
  reg_.net().events().schedule(
      reg_.net().events().now() + cfg_.iteration_period, this, 0, 0);
}

void AllocatorApp::notify_start(std::int32_t src_host,
                                const core::FlowletStartMsg& m) {
  up_[static_cast<std::size_t>(src_host)]->send_start(m);
}

void AllocatorApp::notify_end(std::int32_t src_host,
                              const core::FlowletEndMsg& m) {
  up_[static_cast<std::size_t>(src_host)]->send_end(m);
}

void AllocatorApp::handle_start(const core::FlowletStartMsg& m) {
  // The allocator derives the flow's path exactly as the endpoint did:
  // ECMP keyed by the flow key (§7: the allocator knows flow routes).
  const auto path = clos_.host_path(clos_.host(m.src_host),
                                    clos_.host(m.dst_host), m.flow_key);
  std::vector<LinkId> links(path.begin(), path.end());
  // Weighted proportional fairness: the notification carries the flow's
  // weight in milli-units relative to the default utility weight.
  core::Utility util = cfg_.allocator.default_util;
  if (m.weight_milli != 1000 && m.weight_milli != 0) {
    util.weight *= static_cast<double>(m.weight_milli) / 1000.0;
  }
  if (alloc_.flowlet_start(m.flow_key, links, util)) {
    key_src_.emplace(m.flow_key, m.src_host);
  }
}

void AllocatorApp::handle_end(const core::FlowletEndMsg& m) {
  alloc_.flowlet_end(m.flow_key);
  key_src_.erase(m.flow_key);
}

void AllocatorApp::run_iteration() {
  scratch_updates_.clear();
  alloc_.run_iteration(scratch_updates_);
  ++iterations_;
  for (const core::RateUpdate& u : scratch_updates_) {
    const auto it = key_src_.find(static_cast<std::uint32_t>(u.key));
    if (it == key_src_.end()) continue;  // flow ended meanwhile
    core::RateUpdateMsg msg;
    msg.flow_key = static_cast<std::uint32_t>(u.key);
    msg.rate_code = u.rate_code;
    down_[static_cast<std::size_t>(it->second)]->send_update(msg);
  }
}

void AllocatorApp::on_event(std::uint32_t, std::uint64_t) {
  if (stopped_) return;
  run_iteration();
  reg_.net().events().schedule(
      reg_.net().events().now() + cfg_.iteration_period, this, 0, 0);
}

}  // namespace ft::transport
