// DCTCP (Alizadeh et al., SIGCOMM 2010).
//
// Switches mark packets when the instantaneous queue exceeds K (the
// DropTailQueue ECN threshold); the receiver echoes marks per packet
// (per-packet ACKs make the echo exact, no delayed-ACK state machine
// needed); the sender maintains the marked fraction EWMA
// alpha <- (1-g) alpha + g F per window and cuts cwnd by alpha/2 at most
// once per window of data.
#pragma once

#include "transport/tcp.h"

namespace ft::transport {

class DctcpFlow : public TcpFlow {
 public:
  DctcpFlow(FlowRegistry& reg, std::int32_t src_host,
            std::int32_t dst_host, const topo::Path& fwd,
            const topo::Path& rev, TcpConfig cfg)
      : TcpFlow(reg, src_host, dst_host, fwd, rev, [&] {
          cfg.ecn_capable = true;
          return cfg;
        }()) {}

  [[nodiscard]] double alpha() const { return alpha_; }

 protected:
  void on_ack_hook(const sim::Packet& ack, std::int64_t acked) override;

 private:
  static constexpr double kG = 1.0 / 16.0;

  double alpha_ = 0.0;
  std::int64_t window_end_ = 0;
  std::int64_t acked_bytes_ = 0;
  std::int64_t marked_bytes_ = 0;
};

}  // namespace ft::transport
