// pFabric endpoint (Alizadeh et al., SIGCOMM 2013).
//
// Rate control is "minimal": flows start at a fixed window sized to the
// bandwidth-delay product and never reduce it; the fabric's tiny
// remaining-size priority queues do the scheduling. Data packets carry
// the flow's remaining bytes (the priority); ACKs travel at highest
// priority. Loss recovery is per-packet: the receiver's exact-segment
// echo (sack_seq) marks individual arrivals, dup-ACKs or a small fixed
// RTO trigger retransmission of the earliest unacked segment only.
#pragma once

#include <set>

#include "transport/tcp.h"

namespace ft::transport {

class PfabricFlow : public TcpFlow {
 public:
  PfabricFlow(FlowRegistry& reg, std::int32_t src_host,
              std::int32_t dst_host, const topo::Path& fwd,
              const topo::Path& rev, TcpConfig cfg)
      : TcpFlow(reg, src_host, dst_host, fwd, rev, [&] {
          if (cfg.fixed_window_pkts <= 0) cfg.fixed_window_pkts = 24;
          return cfg;
        }()) {}

 protected:
  void stamp_data(sim::Packet& p) override {
    p.remaining = stream_end() - p.seq;
  }
  void stamp_ack(sim::Packet& ack, const sim::Packet&) override {
    ack.remaining = 0;  // highest priority
  }
  void on_ack_hook(const sim::Packet& ack, std::int64_t acked) override;
  void on_rto() override;
  void on_dupacks() override;

 private:
  // First byte offset not yet individually acked at or after `from`.
  [[nodiscard]] std::int64_t first_unsacked() const;

  std::set<std::int64_t> sacked_;  // segment start offsets
};

}  // namespace ft::transport
