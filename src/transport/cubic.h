// TCP Cubic (Ha, Rhee, Xu 2008) -- the sender used on top of sfqCoDel in
// the paper's comparison ("Cubic-over-sfqCoDel").
//
// Standard cubic window growth W(t) = C (t - K)^3 + W_max with the
// TCP-friendly lower bound, beta = 0.7 multiplicative decrease.
#pragma once

#include "transport/tcp.h"

namespace ft::transport {

class CubicFlow : public TcpFlow {
 public:
  using TcpFlow::TcpFlow;

 protected:
  void ca_increase(std::int64_t acked) override;
  void on_loss_event(bool timeout) override;

 private:
  static constexpr double kC = 0.4;     // scaling (packets/sec^3)
  static constexpr double kBeta = 0.7;  // multiplicative decrease

  double w_max_pkts_ = 0.0;
  double k_sec_ = 0.0;
  Time epoch_start_ = -1;
  double tcp_friendly_w_ = 0.0;
  Time last_loss_ = 0;
};

}  // namespace ft::transport
