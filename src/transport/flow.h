// Transport-layer flow abstraction and the flow registry that dispatches
// delivered packets.
//
// A Flow object owns *both* endpoints' transport state (sender at
// src_host, receiver at dst_host); the registry routes a delivered packet
// to its flow, and the flow tells the roles apart by packet kind. This
// mirrors ns-2's agent pairs with less bookkeeping.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "sim/network.h"
#include "sim/packet.h"

namespace ft::transport {

class Flow {
 public:
  virtual ~Flow() = default;
  // Takes ownership of the packet (must recycle it via the pool).
  virtual void on_packet(sim::Packet* p) = 0;
};

class FlowRegistry {
 public:
  explicit FlowRegistry(sim::Network& net) : net_(net) {
    net_.set_delivery_handler(
        [this](sim::Packet* p) { dispatch(p); });
  }

  // Registers a flow and returns its flow id.
  std::uint32_t add(Flow* f) {
    flows_.push_back(f);
    return static_cast<std::uint32_t>(flows_.size() - 1);
  }

  // The id the next add() will assign -- used to pick path hashes that
  // the Flowtune allocator can reproduce from the flow key.
  [[nodiscard]] std::uint32_t next_id() const {
    return static_cast<std::uint32_t>(flows_.size());
  }

  void replace(std::uint32_t id, Flow* f) { flows_[id] = f; }

  [[nodiscard]] sim::Network& net() { return net_; }

 private:
  void dispatch(sim::Packet* p) {
    FT_CHECK(p->flow_id < flows_.size());
    FT_CHECK(flows_[p->flow_id] != nullptr);
    flows_[p->flow_id]->on_packet(p);
  }

  sim::Network& net_;
  std::vector<Flow*> flows_;
};

}  // namespace ft::transport
