#include "transport/tcp.h"

#include <algorithm>

namespace ft::transport {

TcpFlow::TcpFlow(FlowRegistry& reg, std::int32_t src_host,
                 std::int32_t dst_host, const topo::Path& fwd,
                 const topo::Path& rev, TcpConfig cfg)
    : reg_(reg),
      net_(reg.net()),
      src_host_(src_host),
      dst_host_(dst_host),
      fwd_(fwd),
      rev_(rev),
      cfg_(cfg) {
  flow_id_ = reg_.add(this);
  const double iw = cfg_.fixed_window_pkts > 0 ? cfg_.fixed_window_pkts
                                               : cfg_.init_cwnd_pkts;
  cwnd_ = iw * static_cast<double>(cfg_.mss);
  ssthresh_ = 1e18;
  rto_ = cfg_.min_rto;
}

void TcpFlow::app_send(std::int64_t bytes) {
  FT_CHECK(bytes > 0);
  FT_CHECK(!close_requested_);
  app_bytes_ += bytes;
  try_send();
}

void TcpFlow::app_close() { close_requested_ = true; }

void TcpFlow::app_abort() {
  if (complete_) return;
  app_bytes_ = std::max(snd_nxt_, snd_una_);
  close_requested_ = true;
  if (snd_una_ >= app_bytes_) {
    // Nothing in flight: complete immediately.
    complete_ = true;
    ++rto_gen_;
    rto_pending_ = false;
    if (on_complete) on_complete();
  }
}

void TcpFlow::set_pacing_rate(double rate_bps) {
  pace_rate_bps_ = rate_bps;
  if (rate_bps > 0.0) {
    // Paced mode: the window is opened fully (the allocator's rates are
    // trusted); transmission timing comes from the pacing timer alone.
    cwnd_ = 1e18;
    if (!pace_timer_pending_) try_send();
  }
}

void TcpFlow::try_send() {
  if (complete_) return;
  if (pace_rate_bps_ > 0.0) {
    // One segment per pacing tick.
    if (pace_timer_pending_) return;
    if (snd_nxt_ >= stream_end()) return;
    const std::int64_t payload =
        std::min(cfg_.mss, stream_end() - snd_nxt_);
    send_segment(snd_nxt_, false);
    snd_nxt_ += payload;
    const Time gap =
        tx_time(wire_bytes_tcp(payload), pace_rate_bps_);
    pace_timer_pending_ = true;
    events().schedule(events().now() + gap, this, kPaceTimer,
                      ++pace_gen_);
    return;
  }
  while (snd_nxt_ < stream_end() &&
         flight() + cfg_.mss <= static_cast<std::int64_t>(cwnd_)) {
    const std::int64_t payload =
        std::min(cfg_.mss, stream_end() - snd_nxt_);
    send_segment(snd_nxt_, false);
    snd_nxt_ += payload;
  }
}

void TcpFlow::send_segment(std::int64_t seq, bool is_retx) {
  sim::Packet* p = net_.pool().alloc();
  p->flow_id = flow_id_;
  p->src_host = src_host_;
  p->dst_host = dst_host_;
  p->kind = sim::PacketKind::kData;
  p->seq = seq;
  p->payload = std::min(cfg_.mss, stream_end() - seq);
  FT_CHECK(p->payload > 0);
  p->fin = close_requested_ && seq + p->payload == stream_end();
  p->ecn_capable = cfg_.ecn_capable;
  p->sent_at = events().now();
  p->set_path(fwd_.begin(), fwd_.size());
  p->finalize_size();
  stamp_data(*p);
  if (is_retx) {
    ++retx_count_;
  } else if (timed_seq_ < 0) {
    // Time one segment at a time (Karn's algorithm).
    timed_seq_ = seq;
    timed_at_ = events().now();
  }
  if (!rto_pending_) schedule_rto();
  net_.send(p);
}

void TcpFlow::schedule_rto() {
  rto_pending_ = true;
  events().schedule(events().now() + rto_, this, kRtoTimer, ++rto_gen_);
}

void TcpFlow::stamp_data(sim::Packet&) {}

void TcpFlow::stamp_ack(sim::Packet&, const sim::Packet&) {}

void TcpFlow::on_packet(sim::Packet* p) {
  if (p->kind == sim::PacketKind::kData) {
    handle_data(p);
  } else {
    handle_ack(p);
  }
}

void TcpFlow::handle_data(sim::Packet* p) {
  // Receiver role.
  const std::int64_t start = p->seq;
  const std::int64_t end = p->seq + p->payload;
  std::int64_t newly = 0;
  if (end > rcv_nxt_) {
    if (start <= rcv_nxt_) {
      std::int64_t adv = end;
      // Merge any out-of-order segments that are now contiguous.
      auto it = ooo_.begin();
      while (it != ooo_.end() && it->first <= adv) {
        adv = std::max(adv, it->second);
        it = ooo_.erase(it);
      }
      newly = adv - rcv_nxt_;
      rcv_nxt_ = adv;
    } else {
      // Out of order: remember the interval.
      auto [it, inserted] = ooo_.emplace(start, end);
      if (!inserted) it->second = std::max(it->second, end);
    }
  }
  // Per-packet ACK.
  sim::Packet* ack = net_.pool().alloc();
  ack->flow_id = flow_id_;
  ack->src_host = dst_host_;
  ack->dst_host = src_host_;
  ack->kind = sim::PacketKind::kAck;
  ack->payload = 0;
  ack->ack_seq = rcv_nxt_;
  ack->sack_seq = p->seq;
  ack->ecn_echo = p->ecn_marked;
  ack->sent_at = p->sent_at;  // echo for RTT at the sender
  ack->set_path(rev_.begin(), rev_.size());
  ack->finalize_size();
  stamp_ack(*ack, *p);
  net_.send(ack);

  if (newly > 0 && on_delivered) on_delivered(newly);
  net_.pool().free(p);
}

void TcpFlow::handle_ack(sim::Packet* p) {
  // Sender role.
  if (complete_) {  // straggler ACKs after completion
    net_.pool().free(p);
    return;
  }
  const std::int64_t acked = p->ack_seq - snd_una_;
  on_ack_hook(*p, std::max<std::int64_t>(acked, 0));

  if (acked > 0) {
    snd_una_ = p->ack_seq;
    dupacks_ = 0;
    if (on_acked_bytes) on_acked_bytes(acked, events().now());
    // RTT sample.
    if (timed_seq_ >= 0 && snd_una_ > timed_seq_) {
      const Time sample = events().now() - timed_at_;
      if (srtt_ == 0) {
        srtt_ = sample;
        rttvar_ = sample / 2;
      } else {
        const Time err =
            sample > srtt_ ? sample - srtt_ : srtt_ - sample;
        rttvar_ = (3 * rttvar_ + err) / 4;
        srtt_ = (7 * srtt_ + sample) / 8;
      }
      rto_ = std::clamp(srtt_ + 4 * rttvar_, cfg_.min_rto, cfg_.max_rto);
      timed_seq_ = -1;
    }
    if (in_recovery_) {
      if (snd_una_ >= recover_) {
        in_recovery_ = false;
        cwnd_ = ssthresh_;
      } else {
        // Partial ACK (RFC 6582): deflate the window by the amount
        // acked, re-inflate by one MSS, and retransmit the next hole.
        // Without the deflation, burst losses leave the window
        // inflating one MSS per duplicate ACK forever.
        cwnd_ = std::max(cwnd_ - static_cast<double>(acked) +
                             static_cast<double>(cfg_.mss),
                         2.0 * static_cast<double>(cfg_.mss));
        send_segment(snd_una_, true);
      }
    } else {
      ca_increase(acked);
    }
    // Fresh RTO for remaining flight.
    rto_gen_++;  // cancel outstanding
    rto_pending_ = false;
    if (flight() > 0 || snd_nxt_ < stream_end()) schedule_rto();

    if (snd_una_ >= stream_end() && close_requested_ && !complete_) {
      complete_ = true;
      rto_gen_++;  // cancel timers
      rto_pending_ = false;
      if (on_complete) on_complete();
      net_.pool().free(p);
      return;
    }
  } else if (flight() > 0) {
    ++dupacks_;
    if (dupacks_ == 3 && !in_recovery_) {
      on_dupacks();
    } else if (in_recovery_) {
      // Window inflation per extra dupack, capped at ssthresh plus the
      // data outstanding when recovery began: new-data injection during
      // a burst-loss recovery must stay bounded, otherwise every
      // injected packet re-fills the queue, creates a fresh hole, and
      // recovery never terminates.
      const double cap =
          ssthresh_ + static_cast<double>(recover_ - snd_una_);
      if (cwnd_ + static_cast<double>(cfg_.mss) <= cap) {
        cwnd_ += cfg_.mss;
      }
    }
  }
  net_.pool().free(p);
  try_send();
}

void TcpFlow::on_dupacks() { enter_recovery(); }

void TcpFlow::enter_recovery() {
  in_recovery_ = true;
  recover_ = snd_nxt_;
  on_loss_event(/*timeout=*/false);
  send_segment(snd_una_, true);
}

void TcpFlow::ca_increase(std::int64_t acked) {
  if (cfg_.fixed_window_pkts > 0) return;
  if (cwnd_ < ssthresh_) {
    cwnd_ += static_cast<double>(acked);  // slow start
  } else {
    cwnd_ += static_cast<double>(cfg_.mss) * static_cast<double>(acked) /
             cwnd_;  // ~1 MSS per RTT
  }
}

void TcpFlow::on_loss_event(bool timeout) {
  if (cfg_.fixed_window_pkts > 0) return;  // pFabric-style fixed window
  if (timeout) {
    ssthresh_ = std::max<double>(static_cast<double>(flight()) / 2,
                                 2.0 * static_cast<double>(cfg_.mss));
    cwnd_ = static_cast<double>(cfg_.mss);
  } else {
    ssthresh_ = std::max<double>(cwnd_ / 2,
                                 2.0 * static_cast<double>(cfg_.mss));
    cwnd_ = ssthresh_ + 3.0 * static_cast<double>(cfg_.mss);
  }
}

void TcpFlow::on_ack_hook(const sim::Packet&, std::int64_t) {}

void TcpFlow::on_rto() {
  // Go-back-N: rewind to the first unacked byte and retransmit one
  // segment; try_send refills the window from there.
  snd_nxt_ = snd_una_;
  send_segment(snd_una_, true);
  snd_nxt_ = snd_una_ + std::min(cfg_.mss, stream_end() - snd_una_);
}

void TcpFlow::on_event(std::uint32_t tag, std::uint64_t arg) {
  switch (tag) {
    case kRtoTimer: {
      if (arg != rto_gen_ || complete_) return;  // stale or done
      rto_pending_ = false;
      if (flight() <= 0) return;
      ++timeout_count_;
      on_loss_event(/*timeout=*/true);
      in_recovery_ = false;
      dupacks_ = 0;
      rto_ = std::min(rto_ * 2, cfg_.max_rto);  // exponential backoff
      timed_seq_ = -1;
      on_rto();
      schedule_rto();
      try_send();
      break;
    }
    case kPaceTimer: {
      if (arg != pace_gen_) return;
      pace_timer_pending_ = false;
      try_send();
      break;
    }
    default:
      FT_CHECK(false);
  }
}

}  // namespace ft::transport
