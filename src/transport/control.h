// Flowtune control plane inside the simulation (paper §6.2):
//
//  * ControlChannel -- typed messages framed over a reliable TcpFlow byte
//    stream. Like ns-2's TcpApp (which the paper uses), the simulated
//    stream carries byte *counts* through the network -- experiencing
//    queueing, drops and retransmission -- while message content rides a
//    parallel FIFO that is consumed exactly when the corresponding bytes
//    arrive in order. Message sizes are the paper's 16 / 4 / 6 bytes.
//
//  * AllocatorApp -- the allocator process on the allocator node: one up
//    channel (notifications) and one down channel (rate updates) per
//    host, a NED+F-NORM core::Allocator, and a 10 us iteration timer.
//    Allocator<->host connections use TCP with 20 us minRTO / 30 us
//    maxRTO.
#pragma once

#include <deque>
#include <memory>
#include <unordered_map>

#include "core/allocator.h"
#include "core/messages.h"
#include "topo/clos.h"
#include "transport/tcp.h"

namespace ft::transport {

class ControlChannel {
 public:
  explicit ControlChannel(std::unique_ptr<TcpFlow> flow);

  void send_start(const core::FlowletStartMsg& m);
  void send_end(const core::FlowletEndMsg& m);
  void send_update(const core::RateUpdateMsg& m);

  std::function<void(const core::FlowletStartMsg&)> on_start;
  std::function<void(const core::FlowletEndMsg&)> on_end;
  std::function<void(const core::RateUpdateMsg&)> on_update;

  [[nodiscard]] std::int64_t payload_bytes_sent() const {
    return payload_sent_;
  }
  [[nodiscard]] TcpFlow& flow() { return *flow_; }

 private:
  struct Pending {
    std::uint8_t type;  // 0 start, 1 end, 2 update
    core::FlowletStartMsg start;
    core::FlowletEndMsg end;
    core::RateUpdateMsg update;
    std::int64_t bytes;
  };

  void deliver(std::int64_t bytes);

  std::unique_ptr<TcpFlow> flow_;
  std::deque<Pending> fifo_;
  std::int64_t delivered_ = 0;
  std::int64_t consumed_ = 0;
  std::int64_t payload_sent_ = 0;
};

struct AllocatorAppConfig {
  core::AllocatorConfig allocator;
  Time iteration_period = 10 * kMicrosecond;
  TcpConfig control_tcp = [] {
    TcpConfig c;
    c.min_rto = 20 * kMicrosecond;
    c.max_rto = 30 * kMicrosecond;
    return c;
  }();
};

class AllocatorApp : public sim::EventHandler {
 public:
  AllocatorApp(FlowRegistry& reg, const topo::ClosTopology& clos,
               AllocatorAppConfig cfg);

  void start();  // begins the iteration timer
  // Simulates an allocator failure (§2): iterations cease and no further
  // rate updates are sent; endpoints keep their last allocated rates.
  void stop() { stopped_ = true; }

  // Endpoint-side API (used by Flowtune hosts).
  void notify_start(std::int32_t src_host, const core::FlowletStartMsg& m);
  void notify_end(std::int32_t src_host, const core::FlowletEndMsg& m);
  // Rate updates arrive at the *source* host of the flow; endpoints
  // subscribe here.
  std::function<void(std::int32_t host, const core::RateUpdateMsg&)>
      on_rate_update;

  [[nodiscard]] const core::Allocator& allocator() const { return alloc_; }
  [[nodiscard]] std::uint64_t iterations() const { return iterations_; }

  void on_event(std::uint32_t tag, std::uint64_t arg) override;

 private:
  void handle_start(const core::FlowletStartMsg& m);
  void handle_end(const core::FlowletEndMsg& m);
  void run_iteration();

  FlowRegistry& reg_;
  const topo::ClosTopology& clos_;
  AllocatorAppConfig cfg_;
  core::Allocator alloc_;
  std::vector<std::unique_ptr<ControlChannel>> up_;    // per host
  std::vector<std::unique_ptr<ControlChannel>> down_;  // per host
  std::unordered_map<std::uint32_t, std::int32_t> key_src_;
  std::vector<core::RateUpdate> scratch_updates_;
  std::uint64_t iterations_ = 0;
  bool stopped_ = false;
};

}  // namespace ft::transport
