#include "obs/trace.h"

#include <cstdio>
#include <mutex>
#include <vector>

namespace ft::obs {
namespace {

// One thread's span ring. Registered with the global list on the
// thread's first span and kept for the life of the process (a dump can
// still see spans from threads that have exited).
struct ThreadRing {
  std::uint32_t tid = 0;
  std::atomic<std::uint64_t> head{0};  // next write position (free-running)
  std::array<SpanEvent, PhaseTracer::kRingCapacity> events{};
};

std::mutex g_rings_mu;
std::vector<ThreadRing*>& rings() {
  static std::vector<ThreadRing*>* v = new std::vector<ThreadRing*>();
  return *v;
}

ThreadRing* ring_for_thread() {
  thread_local ThreadRing* ring = [] {
    auto* r = new ThreadRing();  // lives forever; dumps may outlive thread
    std::lock_guard<std::mutex> lock(g_rings_mu);
    r->tid = static_cast<std::uint32_t>(rings().size());
    rings().push_back(r);
    return r;
  }();
  return ring;
}

void json_escape(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

}  // namespace

std::atomic<bool> PhaseTracer::enabled_{false};

void PhaseTracer::set_enabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

void PhaseTracer::record(const char* name, std::int64_t start_us,
                         std::int64_t dur_us) {
  // Self-guarding: hot paths check enabled() first to skip their clock
  // reads, but a record() that slips through while disabled must not
  // land on the ring.
  if (!enabled()) return;
  ThreadRing* r = ring_for_thread();
  const std::uint64_t pos =
      r->head.fetch_add(1, std::memory_order_relaxed);
  SpanEvent& e = r->events[pos % kRingCapacity];
  e.name = name;
  e.start_us = start_us;
  e.dur_us = dur_us;
}

std::string PhaseTracer::dump_json() {
  std::string out = "{\"traceEvents\":[\n";
  char buf[160];
  bool first = true;
  std::lock_guard<std::mutex> lock(g_rings_mu);
  for (const ThreadRing* r : rings()) {
    const std::uint64_t head = r->head.load(std::memory_order_acquire);
    const std::uint64_t have =
        head < kRingCapacity ? head : kRingCapacity;
    for (std::uint64_t i = head - have; i < head; ++i) {
      const SpanEvent& e = r->events[i % kRingCapacity];
      if (e.name == nullptr) continue;
      if (!first) out += ",\n";
      first = false;
      out += "{\"name\":\"";
      json_escape(out, e.name);
      std::snprintf(buf, sizeof buf,
                    "\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                    "\"ts\":%lld,\"dur\":%lld}",
                    r->tid, static_cast<long long>(e.start_us),
                    static_cast<long long>(e.dur_us));
      out += buf;
    }
  }
  out += "\n]}\n";
  return out;
}

bool PhaseTracer::dump_json(const std::string& path) {
  const std::string body = dump_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "PhaseTracer: cannot open %s\n", path.c_str());
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) ==
                  body.size();
  std::fclose(f);
  if (!ok) std::fprintf(stderr, "PhaseTracer: short write to %s\n",
                        path.c_str());
  return ok;
}

void PhaseTracer::reset() {
  std::lock_guard<std::mutex> lock(g_rings_mu);
  for (ThreadRing* r : rings()) {
    r->head.store(0, std::memory_order_relaxed);
    for (SpanEvent& e : r->events) e = SpanEvent{};
  }
}

}  // namespace ft::obs
