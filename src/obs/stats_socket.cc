#include "obs/stats_socket.h"

#include <fcntl.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/check.h"
#include "obs/export.h"
#include "obs/flight.h"
#include "obs/trace.h"

namespace ft::obs {
namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  FT_CHECK(flags >= 0);
  FT_CHECK(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0);
}

bool connect_unix(int fd, const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) return false;
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  return ::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof addr) == 0;
}

}  // namespace

StatsSocket::StatsSocket(net::EpollLoop& loop, std::string path,
                         const MetricsRegistry& reg)
    : loop_(loop), path_(std::move(path)), reg_(reg) {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  FT_CHECK(listen_fd_ >= 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  FT_CHECK(path_.size() < sizeof addr.sun_path);
  std::strncpy(addr.sun_path, path_.c_str(), sizeof addr.sun_path - 1);
  ::unlink(path_.c_str());
  FT_CHECK(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                  sizeof addr) == 0);
  FT_CHECK(::listen(listen_fd_, 16) == 0);
  set_nonblocking(listen_fd_);
  loop_.add_fd(listen_fd_, EPOLLIN,
               [this](std::uint32_t) { accept_ready(); });
}

StatsSocket::~StatsSocket() {
  for (const auto& [fd, c] : conns_) {
    loop_.del_fd(fd);
    ::close(fd);
  }
  conns_.clear();
  if (listen_fd_ >= 0) {
    loop_.del_fd(listen_fd_);
    ::close(listen_fd_);
  }
  ::unlink(path_.c_str());
}

void StatsSocket::accept_ready() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient failure; admin plane, keep serving
    }
    set_nonblocking(fd);
    conns_.emplace(fd, Conn{});
    loop_.add_fd(fd, EPOLLIN, [this, fd](std::uint32_t ev) {
      conn_ready(fd, ev);
    });
  }
}

void StatsSocket::conn_ready(int fd, std::uint32_t events) {
  const auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  Conn& c = it->second;
  if (events & (EPOLLHUP | EPOLLERR)) {
    // EOF before a newline still gets an answer (default snapshot) if
    // the peer half-closed; a hard error just drops the conn.
    if ((events & EPOLLERR) || c.responding) {
      close_conn(fd);
      return;
    }
  }
  if ((events & EPOLLOUT) && c.responding) {
    try_write(fd, c);
    return;
  }
  if (events & (EPOLLIN | EPOLLHUP)) {
    char buf[256];
    while (!c.responding) {
      const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
      if (n > 0) {
        c.request.append(buf, static_cast<std::size_t>(n));
        if (c.request.size() > 4096) {  // garbage peer
          close_conn(fd);
          return;
        }
        if (c.request.find('\n') != std::string::npos) {
          start_response(fd, c);  // may close (and thus free) the conn
          return;
        }
        continue;
      }
      if (n == 0) {  // EOF: treat whatever arrived as the request
        start_response(fd, c);
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      close_conn(fd);
      return;
    }
  }
}

void StatsSocket::start_response(int fd, Conn& c) {
  std::string line = c.request.substr(0, c.request.find('\n'));
  while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
    line.pop_back();
  }
  if (line == "prom") {
    c.response = to_prometheus(reg_);
  } else if (line == "trace") {
    c.response = PhaseTracer::dump_json();
  } else if (line == "flight") {
    c.response = flight_ != nullptr
                     ? flight_->dump_json()
                     : std::string("{\"kind\":\"flight\",\"error\":"
                                   "\"no flight recorder attached\"}");
  } else {  // "json", empty, or anything else: the JSON snapshot
    c.response = to_json(reg_);
  }
  ++scrapes_;
  c.responding = true;
  try_write(fd, c);
}

void StatsSocket::try_write(int fd, Conn& c) {
  while (c.off < c.response.size()) {
    const ssize_t n = ::send(fd, c.response.data() + c.off,
                             c.response.size() - c.off, MSG_NOSIGNAL);
    if (n > 0) {
      c.off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      loop_.mod_fd(fd, EPOLLOUT);
      return;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // peer gone
  }
  close_conn(fd);  // response fully sent (or failed): EOF terminates it
}

void StatsSocket::close_conn(int fd) {
  if (conns_.erase(fd) == 0) return;
  loop_.del_fd(fd);
  ::close(fd);
}

std::string scrape_stats_socket(const std::string& path,
                                const std::string& what) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return "";
  // Bounded blocking: a serving loop that stopped ticking (e.g. a bench
  // run finishing mid-scrape) must not wedge the caller.
  timeval tv{};
  tv.tv_sec = 5;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  if (!connect_unix(fd, path)) {
    ::close(fd);
    return "";
  }
  const std::string req = what + "\n";
  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t n = ::send(fd, req.data() + off, req.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    ::close(fd);
    return "";
  }
  std::string out;
  char buf[16 * 1024];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
    if (n > 0) {
      out.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    break;  // EOF or error: whatever we have is the response
  }
  ::close(fd);
  return out;
}

}  // namespace ft::obs
