#include "obs/flight.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace ft::obs {
namespace {

void append_record_json(std::ostringstream& os, const RoundRecord& r) {
  os << "{\"round\":" << r.round << ",\"t_start_ns\":" << r.t_start_ns
     << ",\"ingest_us\":" << r.ingest_us << ",\"solve_us\":" << r.solve_us
     << ",\"emit_us\":" << r.emit_us << ",\"fanout_us\":" << r.fanout_us
     << ",\"round_us\":" << r.round_us << ",\"wakeup_us\":" << r.wakeup_us
     << ",\"band_max_us\":" << r.band_max_us
     << ",\"churn_events\":" << r.churn_events
     << ",\"updates\":" << r.updates << ",\"batches\":" << r.batches
     << ",\"queue_drops\":" << r.queue_drops
     << ",\"up_ring_hw\":" << r.up_ring_hw
     << ",\"down_ring_hw\":" << r.down_ring_hw
     << ",\"threshold_us\":" << r.threshold_us << "}";
}

void append_ring_json(std::ostringstream& os, const char* key,
                      const std::vector<RoundRecord>& recs) {
  os << "\"" << key << "\":[";
  for (std::size_t i = 0; i < recs.size(); ++i) {
    if (i) os << ",";
    append_record_json(os, recs[i]);
  }
  os << "]";
}

// Oldest-first view of a ring that has seen `total` writes with `head`
// as the next write slot.
std::vector<RoundRecord> unroll(const std::vector<RoundRecord>& ring,
                                std::size_t head, std::uint64_t total) {
  std::vector<RoundRecord> out;
  const std::size_t n =
      std::min<std::uint64_t>(total, ring.size());
  out.reserve(n);
  const std::size_t start = (head + ring.size() - n) % ring.size();
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring[(start + i) % ring.size()]);
  }
  return out;
}

}  // namespace

FlightRecorder::FlightRecorder() : FlightRecorder(Config{}) {}

FlightRecorder::FlightRecorder(Config cfg) : cfg_(cfg) {
  if (cfg_.ring_capacity == 0) cfg_.ring_capacity = 1;
  if (cfg_.black_box_capacity == 0) cfg_.black_box_capacity = 1;
  recent_.resize(cfg_.ring_capacity);
  black_box_.resize(cfg_.black_box_capacity);
}

void FlightRecorder::update_quantile(double round_us) {
  if (rounds_seen_ == 1) {
    q99_us_ = round_us;
    return;
  }
  // Stochastic p99: step up by 0.99 units, down by 0.01 units, scaled
  // relative to the current estimate so convergence speed is independent
  // of the absolute magnitude (3 us rounds and 3 ms rounds both settle).
  const double step =
      cfg_.quantile_step * std::max(q99_us_, 1.0);
  if (round_us > q99_us_) {
    q99_us_ += step * 0.99;
  } else {
    q99_us_ -= step * 0.01;
  }
  if (q99_us_ < 0.0) q99_us_ = 0.0;
}

double FlightRecorder::threshold_us() const {
  if (rounds_seen_ < cfg_.warmup_rounds) {
    // Not armed yet: only the floor can promote (a 100x outlier during
    // warmup is still worth keeping).
    return std::max(cfg_.promote_floor_us, q99_us_ * 100.0);
  }
  return std::max(cfg_.promote_floor_us,
                  q99_us_ * cfg_.promote_headroom);
}

bool FlightRecorder::record(const RoundRecord& r) {
  ++rounds_seen_;
  const double thresh = threshold_us();  // pre-update: r can't raise its
                                         // own bar before being judged
  update_quantile(r.round_us);
  recent_[head_] = r;
  recent_[head_].threshold_us = 0;
  head_ = (head_ + 1) % recent_.size();

  if (r.round_us <= thresh) return false;
  black_box_[bb_head_] = r;
  black_box_[bb_head_].threshold_us = static_cast<float>(thresh);
  bb_head_ = (bb_head_ + 1) % black_box_.size();
  ++promoted_;
  return true;
}

std::vector<RoundRecord> FlightRecorder::recent() const {
  return unroll(recent_, head_, rounds_seen_);
}

std::vector<RoundRecord> FlightRecorder::black_box() const {
  return unroll(black_box_, bb_head_, promoted_);
}

std::string FlightRecorder::dump_json() const {
  std::ostringstream os;
  os << "{\"kind\":\"flight\",\"rounds_seen\":" << rounds_seen_
     << ",\"promoted\":" << promoted_
     << ",\"p99_estimate_us\":" << q99_us_
     << ",\"threshold_us\":" << threshold_us() << ",";
  append_ring_json(os, "recent", recent());
  os << ",";
  append_ring_json(os, "black_box", black_box());
  os << "}";
  return os.str();
}

bool FlightRecorder::dump_to_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const std::string json = dump_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace ft::obs
