#include "obs/metrics.h"

#include <time.h>

#include <algorithm>
#include <bit>

#include "common/check.h"
#include "common/time.h"

namespace ft::obs {
namespace {

std::atomic<ft::Clock*> g_clock_override{nullptr};

}  // namespace

void set_clock_override(ft::Clock* clock) {
  g_clock_override.store(clock, std::memory_order_release);
}

ft::Clock* clock_override() {
  return g_clock_override.load(std::memory_order_acquire);
}

std::int64_t now_us() {
  if (ft::Clock* c = clock_override()) return c->now_us();
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000 +
         ts.tv_nsec / 1'000;
}

std::int64_t now_ns() {
  if (ft::Clock* c = clock_override()) return c->now_ns();
  timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC_RAW, &ts);
  return static_cast<std::int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

namespace {

std::atomic<std::uint32_t> g_next_thread_id{0};

}  // namespace

std::uint32_t thread_stripe() {
  // Threads are assigned round-robin stripe slots on first use; the id
  // lives in plain TLS so the assignment itself never allocates.
  thread_local const std::uint32_t id =
      g_next_thread_id.fetch_add(1, std::memory_order_relaxed) &
      (kStripes - 1);
  return id;
}

int LatencyHisto::bucket_of(std::uint64_t v) {
  if (v == 0) return 0;
  const int b = std::bit_width(v);  // 1..64
  return b < kHistoBuckets ? b : kHistoBuckets - 1;
}

double LatencyHisto::bucket_lower(int b) {
  if (b <= 0) return 0.0;
  return static_cast<double>(1ULL << (b - 1));
}

double LatencyHisto::bucket_upper(int b) {
  if (b <= 0) return 1.0;
  if (b >= 63) return static_cast<double>(1ULL << 62) * 4.0;
  return static_cast<double>(1ULL << b);
}

HistoSnapshot LatencyHisto::snapshot() const {
  HistoSnapshot out;
  for (const Stripe& s : stripes_) {
    for (int b = 0; b < kHistoBuckets; ++b) {
      out.buckets[static_cast<std::size_t>(b)] +=
          s.buckets[static_cast<std::size_t>(b)].load(
              std::memory_order_relaxed);
    }
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
  }
  return out;
}

double HistoSnapshot::percentile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (int b = 0; b < kHistoBuckets; ++b) {
    const std::uint64_t n = buckets[static_cast<std::size_t>(b)];
    if (n == 0) continue;
    if (static_cast<double>(seen + n) >= target) {
      if (b == 0) return 0.0;  // bucket 0 holds exact zeros
      const double lo = LatencyHisto::bucket_lower(b);
      const double hi = LatencyHisto::bucket_upper(b);
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(n);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen += n;
  }
  return LatencyHisto::bucket_upper(kHistoBuckets - 1);
}

double HistoSnapshot::max_bound() const {
  for (int b = kHistoBuckets - 1; b >= 0; --b) {
    if (buckets[static_cast<std::size_t>(b)] != 0) {
      return LatencyHisto::bucket_upper(b);
    }
  }
  return 0.0;
}

void HistoSnapshot::merge(const HistoSnapshot& other) {
  for (int b = 0; b < kHistoBuckets; ++b) {
    buckets[static_cast<std::size_t>(b)] +=
        other.buckets[static_cast<std::size_t>(b)];
  }
  count += other.count;
  sum += other.sum;
}

MetricsRegistry::Entry& MetricsRegistry::entry(std::string_view name,
                                               MetricKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& e : entries_) {
    if (e->name == name) {
      FT_CHECK(e->kind == kind);  // one name, one kind
      return *e;
    }
  }
  auto e = std::make_unique<Entry>();
  e->name = std::string(name);
  e->kind = kind;
  switch (kind) {
    case MetricKind::kCounter:
      e->counter = std::make_unique<Counter>();
      break;
    case MetricKind::kGauge:
      e->gauge = std::make_unique<Gauge>();
      break;
    case MetricKind::kHisto:
      e->histo = std::make_unique<LatencyHisto>();
      break;
  }
  entries_.push_back(std::move(e));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return *entry(name, MetricKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return *entry(name, MetricKind::kGauge).gauge;
}

LatencyHisto& MetricsRegistry::histo(std::string_view name) {
  return *entry(name, MetricKind::kHisto).histo;
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  std::vector<MetricSnapshot> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(entries_.size());
    for (const auto& e : entries_) {
      MetricSnapshot m;
      m.name = e->name;
      m.kind = e->kind;
      switch (e->kind) {
        case MetricKind::kCounter:
          m.value = static_cast<std::int64_t>(e->counter->value());
          break;
        case MetricKind::kGauge:
          m.value = e->gauge->value();
          break;
        case MetricKind::kHisto:
          m.histo = e->histo->snapshot();
          break;
      }
      out.push_back(std::move(m));
    }
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* reg = new MetricsRegistry();  // never destroyed
  return *reg;
}

}  // namespace ft::obs
