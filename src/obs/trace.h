// PhaseTracer: low-overhead span tracing for the allocation round's hot
// phases, dumpable as chrome://tracing / Perfetto JSON.
//
//   OBS_SPAN("solve");          // times the enclosing scope
//   ...
//   ft::obs::PhaseTracer::set_enabled(true);
//   ft::obs::PhaseTracer::dump_json("trace.json");
//
// Recording goes to a per-thread ring buffer of fixed capacity (newest
// spans win), so the record path takes no lock and performs no heap
// allocation -- except the very first span on a thread, which registers
// that thread's ring with the global tracer (warmup covers this in the
// zero-alloc regression). When tracing is disabled (the default) a span
// costs one relaxed atomic load.
//
// Span names must be string literals (the ring stores the pointer).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

#include "obs/metrics.h"  // now_ns

// Span timestamps are CLOCK_MONOTONIC_RAW-derived microseconds
// (obs::now_ns / 1000): one clock for every producer, so hand-recorded
// phase spans, scoped spans and the e2e trace-hop spans line up on the
// same timeline in the dump.

namespace ft::obs {

struct SpanEvent {
  const char* name = nullptr;
  std::int64_t start_us = 0;
  std::int64_t dur_us = 0;
};

class PhaseTracer {
 public:
  static constexpr std::size_t kRingCapacity = 4096;

  static void set_enabled(bool on);
  [[nodiscard]] static bool enabled() {
    return enabled_.load(std::memory_order_relaxed);
  }

  // Records one completed span on the calling thread's ring.
  static void record(const char* name, std::int64_t start_us,
                     std::int64_t dur_us);

  // All recorded spans (every thread, oldest first per thread) as a
  // chrome://tracing "traceEvents" JSON document. Racy-by-design against
  // concurrent recording: spans written during the dump may be missed or
  // torn off the ring edge, which is fine for diagnostics.
  [[nodiscard]] static std::string dump_json();
  // dump_json() to a file; false (with stderr message) on I/O failure.
  static bool dump_json(const std::string& path);

  // Drops all recorded spans (rings stay registered).
  static void reset();

 private:
  static std::atomic<bool> enabled_;
};

// RAII span: times construction -> destruction when tracing is enabled.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (PhaseTracer::enabled()) {
      name_ = name;
      t0_ = now_ns();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) {
      PhaseTracer::record(name_, t0_ / 1000, (now_ns() - t0_) / 1000);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::int64_t t0_ = 0;
};

#define FT_OBS_CONCAT2(a, b) a##b
#define FT_OBS_CONCAT(a, b) FT_OBS_CONCAT2(a, b)
// Times the enclosing scope as a span named `name` (string literal).
#define OBS_SPAN(name) \
  ::ft::obs::ScopedSpan FT_OBS_CONCAT(obs_span_, __LINE__)(name)

}  // namespace ft::obs
