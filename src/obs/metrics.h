// Runtime telemetry: named counters, gauges and fixed-memory log-bucketed
// latency histograms behind a MetricsRegistry.
//
// Design constraints (the control-plane hot paths this instruments run a
// ~3 us allocation round, and tests/zero_alloc_test.cc counts every heap
// allocation mid-round):
//
//   * The record path -- Counter::add, Gauge::set/update_max,
//     LatencyHisto::record -- performs zero heap allocation and takes no
//     lock. Every metric is a fixed array of relaxed atomics, striped
//     per thread (a thread_local stripe id hashes writers onto disjoint
//     cache lines) and merged only on scrape.
//   * Registration (MetricsRegistry::counter/gauge/histo) is the cold
//     path: it takes a mutex and may allocate. Callers resolve handles
//     once at setup and keep the returned reference -- metric addresses
//     are stable for the registry's lifetime.
//   * Scrape (snapshot()) is read-only with respect to the stripes: it
//     sums relaxed loads, so it is safe from any thread while writers
//     are recording.
//
// Histogram buckets are powers of two over an unsigned 64-bit value
// (microseconds by convention for *_us metrics): bucket 0 holds exact
// zeros, bucket b >= 1 holds [2^(b-1), 2^b). 64 buckets cover the full
// value range in ~4 KB per histogram, and percentiles are recovered by
// linear interpolation inside the winning bucket -- coarse (<= 2x) but
// tail-faithful, which is what phase attribution needs.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace ft {
class Clock;
}  // namespace ft

namespace ft::obs {

// CLOCK_MONOTONIC microseconds (same clock as net::EpollLoop::now_us,
// duplicated here so core/ can time phases without depending on net/).
[[nodiscard]] std::int64_t now_us();

// CLOCK_MONOTONIC_RAW nanoseconds: the trace clock. All cross-thread and
// cross-process (same host) trace hop stamps use this single helper so
// deltas are never skewed by NTP slewing the way CLOCK_MONOTONIC or
// steady_clock call sites can be. Stamps from *different hosts* are not
// comparable; the trace path only ever differences stamps taken on the
// same machine (agent-side pair, service-side run).
[[nodiscard]] std::int64_t now_ns();

// Virtual-time override for both helpers above. When set (the sim
// harness installs its event-queue-slaved clock), every now_us/now_ns
// call site in the process -- trace stamps, heartbeat payloads, phase
// timers -- reads simulated time instead of the OS clocks, so timestamps
// inside a deterministic run are themselves deterministic. Null restores
// the OS clocks. Single-threaded by construction (the simulator is
// single-threaded); the pointer is still atomic so a concurrent OS-path
// reader only ever sees null-or-valid.
void set_clock_override(ft::Clock* clock);
[[nodiscard]] ft::Clock* clock_override();

// Stable small id for the calling thread, used to pick a stripe. The
// first call from a thread assigns the id (no allocation: plain TLS).
[[nodiscard]] std::uint32_t thread_stripe();

inline constexpr std::size_t kStripes = 8;  // power of two

// Monotonic counter, striped per thread.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    stripes_[thread_stripe()].v.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const auto& s : stripes_) {
      sum += s.v.load(std::memory_order_relaxed);
    }
    return sum;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Stripe, kStripes> stripes_{};
};

// Last-writer-wins signed gauge with a lock-free running-max helper
// (queue depth high-water marks).
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void update_max(std::int64_t v) {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur && !v_.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed,
                          std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

inline constexpr int kHistoBuckets = 64;

// Merged, plain-integer view of one histogram (what scrapes operate on).
struct HistoSnapshot {
  std::array<std::uint64_t, kHistoBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  // q in [0, 1]; 0 when empty. Linear interpolation within the bucket.
  [[nodiscard]] double percentile(double q) const;
  [[nodiscard]] double p50() const { return percentile(0.50); }
  [[nodiscard]] double p99() const { return percentile(0.99); }
  [[nodiscard]] double mean() const {
    return count ? static_cast<double>(sum) / static_cast<double>(count)
                 : 0.0;
  }
  [[nodiscard]] double max_bound() const;  // upper bound of top bucket

  void merge(const HistoSnapshot& other);
};

// Fixed-memory log2-bucketed histogram; record() is lock- and
// allocation-free from any thread.
class LatencyHisto {
 public:
  // Bucket index for a value: 0 for 0, else bit_width(v) clamped.
  [[nodiscard]] static int bucket_of(std::uint64_t v);
  // Inclusive lower / exclusive upper value bound of a bucket.
  [[nodiscard]] static double bucket_lower(int b);
  [[nodiscard]] static double bucket_upper(int b);

  void record(std::uint64_t value) {
    Stripe& s = stripes_[thread_stripe()];
    s.buckets[static_cast<std::size_t>(bucket_of(value))].fetch_add(
        1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
  }
  // Convenience for signed durations (negative clock glitches clamp to 0).
  void record_signed(std::int64_t value) {
    record(value > 0 ? static_cast<std::uint64_t>(value) : 0);
  }

  [[nodiscard]] HistoSnapshot snapshot() const;

 private:
  struct alignas(64) Stripe {
    std::array<std::atomic<std::uint64_t>, kHistoBuckets> buckets{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };
  std::array<Stripe, kStripes> stripes_{};
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHisto };

// One scraped metric (counters/gauges fill `value`, histos fill `histo`).
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::int64_t value = 0;
  HistoSnapshot histo;
};

// Named metric store. Instantiable: components that need per-instance
// accounting (each AllocatorService / Allocator in a test process) own
// their own registry; the process-wide daemon uses global().
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create by name; the kind must match on re-lookup (checked).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  LatencyHisto& histo(std::string_view name);

  // Merged snapshot of every metric, sorted by name.
  [[nodiscard]] std::vector<MetricSnapshot> snapshot() const;

  // Process-wide default registry (the daemon's export plane).
  [[nodiscard]] static MetricsRegistry& global();

 private:
  struct Entry {
    std::string name;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHisto> histo;
  };
  Entry& entry(std::string_view name, MetricKind kind);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace ft::obs
