// Live stats plane: a Unix-domain admin endpoint serving metric
// snapshots while the service runs.
//
// Protocol (deliberately netcat-friendly): the client connects, sends
// one request line and reads the full response until EOF.
//
//   "json\n"  (or an empty line / immediate EOF)  -> obs::to_json
//   "prom\n"                                      -> obs::to_prometheus
//   "trace\n"                                     -> PhaseTracer dump
//   "flight\n"                                    -> FlightRecorder dump
//
//     $ echo json | nc -U /tmp/flowtune_stats.sock
//     $ echo prom | nc -U /tmp/flowtune_stats.sock
//
// The listener and every admin connection live on the caller's
// EpollLoop (the allocation thread's loop in the daemon), so a scrape
// serializes with allocation rounds and reads a coherent snapshot; the
// snapshot itself only does relaxed loads of the record-path stripes,
// so shard threads never stall for a scrape.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/epoll_loop.h"
#include "obs/metrics.h"

namespace ft::obs {

class FlightRecorder;

class StatsSocket {
 public:
  // Binds `path` (unlinked first) on `loop`. `reg` must outlive this.
  StatsSocket(net::EpollLoop& loop, std::string path,
              const MetricsRegistry& reg);
  ~StatsSocket();
  StatsSocket(const StatsSocket&) = delete;
  StatsSocket& operator=(const StatsSocket&) = delete;

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] std::uint64_t scrapes() const { return scrapes_; }

  // Serves `flight` requests from this recorder (dump_json runs on the
  // caller's loop, which is the thread that writes the recorder, so the
  // read is race-free). Null (the default) answers with a stub.
  void set_flight(const FlightRecorder* flight) { flight_ = flight; }

 private:
  struct Conn {
    std::string request;
    std::string response;
    std::size_t off = 0;
    bool responding = false;
  };

  void accept_ready();
  void conn_ready(int fd, std::uint32_t events);
  void start_response(int fd, Conn& c);
  void try_write(int fd, Conn& c);
  void close_conn(int fd);

  net::EpollLoop& loop_;
  std::string path_;
  const MetricsRegistry& reg_;
  const FlightRecorder* flight_ = nullptr;
  int listen_fd_ = -1;
  std::unordered_map<int, Conn> conns_;
  std::uint64_t scrapes_ = 0;
};

// Blocking client-side scrape helper (tests / bench / obs_dump.py uses
// the socket directly): connects to `path`, sends `what` ("json",
// "prom" or "trace") and returns the full response ("" on any error).
[[nodiscard]] std::string scrape_stats_socket(const std::string& path,
                                              const std::string& what);

}  // namespace ft::obs
