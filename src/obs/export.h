// Export plane rendering: a scraped MetricsRegistry snapshot as a JSON
// document (the format tools/obs_dump.py pretty-prints and diffs) or as
// Prometheus-style text exposition.
//
// JSON shape -- one flat object keyed by metric name so diffs are
// trivially alignable:
//
//   {
//     "ts_us": 12345,
//     "metrics": {
//       "core.solve_us": {"kind": "histo", "count": N, "sum": S,
//                         "p50": ..., "p90": ..., "p99": ..., "max": ...,
//                         "buckets": [[lower_bound, count], ...]},
//       "net.shard0.bytes_in": {"kind": "counter", "value": 123}
//     }
//   }
//
// Only non-empty buckets are listed. Rendering allocates freely -- this
// is the scrape path, not the record path.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.h"

namespace ft::obs {

[[nodiscard]] std::string to_json(
    const std::vector<MetricSnapshot>& metrics);
inline std::string to_json(const MetricsRegistry& reg) {
  return to_json(reg.snapshot());
}

// Prometheus text exposition: '.' in names becomes '_' and everything is
// prefixed "ft_". Histograms render as <name>_count / <name>_sum plus
// {quantile="..."} summary samples.
[[nodiscard]] std::string to_prometheus(
    const std::vector<MetricSnapshot>& metrics);
inline std::string to_prometheus(const MetricsRegistry& reg) {
  return to_prometheus(reg.snapshot());
}

}  // namespace ft::obs
