// Tail-latency flight recorder for the allocation round loop.
//
// The metrics registry can say *which phase* is slow in aggregate; the
// flight recorder says *why a particular round* was slow. Every round
// deposits one fixed-size RoundRecord (phase timings, per-shard SPSC
// high-waters, batch/record counts, churn size, epoll wakeup-to-drain)
// into a ring of recent rounds. Rounds that breach an adaptive
// p99-tracking threshold are additionally *promoted* into a persistent
// black-box ring that survives until dumped -- so a 20 ms spike at 3 am
// is still attributable when someone pulls the dump at 9 am, even though
// the recent ring has long since wrapped.
//
// The threshold is an EWMA-style stochastic p99 estimate of round_us
// (SGD on the pinball loss: the estimate steps up by 99x the down-step,
// so it settles where ~1% of samples land above it), scaled by a
// headroom factor so only genuine outliers promote, with a floor so a
// quiet service does not promote 3 us rounds.
//
// Threading: record() and the dump/inspection methods must be driven
// from one thread (the allocation loop; the stats socket's `flight` verb
// runs on that same loop, so the daemon serializes naturally). record()
// never allocates after construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ft::obs {

// One allocation round's black-box entry. All durations in microseconds
// (matching the svc.*_us registry histograms); wall anchor in
// CLOCK_MONOTONIC_RAW ns (obs::now_ns) so records line up with trace
// hop stamps.
struct RoundRecord {
  std::uint64_t round = 0;      // monotonically increasing round id
  std::int64_t t_start_ns = 0;  // obs::now_ns at round start
  double ingest_us = 0;         // up-ring drain (includes churn apply)
  double solve_us = 0;          // NED iterations + normalization
  double emit_us = 0;           // thresholded update emission sweep
  double fanout_us = 0;         // update queueing / shard handoff
  double round_us = 0;          // end-to-end round time
  double wakeup_us = 0;         // worst shard eventfd wakeup-to-drain
  double band_max_us = 0;       // slowest parallel solve band (0 = seq)
  std::uint32_t churn_events = 0;   // up events drained this round
  std::uint32_t updates = 0;        // rate updates emitted
  std::uint32_t batches = 0;        // peer batches the fanout touched
  std::uint32_t queue_drops = 0;    // down-ring drops this round
  std::uint16_t up_ring_hw = 0;     // max per-shard up-ring depth seen
  std::uint16_t down_ring_hw = 0;   // max per-shard down-ring depth seen
  float threshold_us = 0;  // promotion threshold at record time (0 = not
                           // promoted; set only on black-box copies)
};

class FlightRecorder {
 public:
  struct Config {
    std::size_t ring_capacity = 1024;      // recent rounds, always on
    std::size_t black_box_capacity = 256;  // promoted slow rounds
    // p99-estimate SGD step, as a fraction of the current estimate.
    double quantile_step = 0.05;
    // Promote when round_us > headroom * p99_estimate (and > floor).
    double promote_headroom = 2.0;
    double promote_floor_us = 50.0;
    // Rounds to observe before promotion arms (lets the estimate settle).
    std::uint64_t warmup_rounds = 64;
  };

  FlightRecorder();
  explicit FlightRecorder(Config cfg);

  // Deposits one round; promotes it into the black box when it breaches
  // the adaptive threshold. Returns true iff the round was promoted.
  bool record(const RoundRecord& r);

  // Current promotion threshold in microseconds (headroom * p99
  // estimate, floored). Before warmup completes this is the floor.
  [[nodiscard]] double threshold_us() const;
  [[nodiscard]] double p99_estimate_us() const { return q99_us_; }
  [[nodiscard]] std::uint64_t rounds_seen() const { return rounds_seen_; }
  [[nodiscard]] std::uint64_t promoted() const { return promoted_; }

  // Oldest-first copies of the live rings (allocates; cold path).
  [[nodiscard]] std::vector<RoundRecord> recent() const;
  [[nodiscard]] std::vector<RoundRecord> black_box() const;

  // {"p99_estimate_us":..,"threshold_us":..,"recent":[..],"black_box":[..]}
  // -- the payload behind the stats socket's `flight` verb and the
  // daemon's shutdown auto-flush; tools/obs_dump.py renders it.
  [[nodiscard]] std::string dump_json() const;

  // Writes dump_json() to `path`; returns false on I/O failure.
  bool dump_to_file(const std::string& path) const;

 private:
  void update_quantile(double round_us);

  Config cfg_;
  std::vector<RoundRecord> recent_;     // ring, head_ = next write slot
  std::vector<RoundRecord> black_box_;  // ring, bb_head_ = next write slot
  std::size_t head_ = 0;
  std::size_t bb_head_ = 0;
  std::uint64_t rounds_seen_ = 0;
  std::uint64_t promoted_ = 0;
  double q99_us_ = 0.0;
};

}  // namespace ft::obs
