#include "obs/export.h"

#include <cstdarg>
#include <cstdio>

namespace ft::obs {
namespace {

void append_fmt(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  out += buf;
}

// Metric names are code-controlled ([a-z0-9._] by convention) but keep
// the escaping honest anyway.
void json_escape(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

std::string prom_name(const std::string& name) {
  std::string out = "ft_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string to_json(const std::vector<MetricSnapshot>& metrics) {
  std::string out;
  out.reserve(4096);
  append_fmt(out, "{\n  \"ts_us\": %lld,\n  \"metrics\": {\n",
             static_cast<long long>(now_us()));
  bool first = true;
  for (const MetricSnapshot& m : metrics) {
    if (!first) out += ",\n";
    first = false;
    out += "    \"";
    json_escape(out, m.name);
    out += "\": ";
    switch (m.kind) {
      case MetricKind::kCounter:
        append_fmt(out, "{\"kind\": \"counter\", \"value\": %lld}",
                   static_cast<long long>(m.value));
        break;
      case MetricKind::kGauge:
        append_fmt(out, "{\"kind\": \"gauge\", \"value\": %lld}",
                   static_cast<long long>(m.value));
        break;
      case MetricKind::kHisto: {
        const HistoSnapshot& h = m.histo;
        append_fmt(out,
                   "{\"kind\": \"histo\", \"count\": %llu, "
                   "\"sum\": %llu, \"mean\": %.3f, \"p50\": %.1f, "
                   "\"p90\": %.1f, \"p99\": %.1f, \"max\": %.1f, "
                   "\"buckets\": [",
                   static_cast<unsigned long long>(h.count),
                   static_cast<unsigned long long>(h.sum), h.mean(),
                   h.p50(), h.percentile(0.90), h.p99(), h.max_bound());
        bool bfirst = true;
        for (int b = 0; b < kHistoBuckets; ++b) {
          const std::uint64_t n = h.buckets[static_cast<std::size_t>(b)];
          if (n == 0) continue;
          if (!bfirst) out += ", ";
          bfirst = false;
          append_fmt(out, "[%.0f, %llu]", LatencyHisto::bucket_lower(b),
                     static_cast<unsigned long long>(n));
        }
        out += "]}";
        break;
      }
    }
  }
  out += "\n  }\n}\n";
  return out;
}

std::string to_prometheus(const std::vector<MetricSnapshot>& metrics) {
  std::string out;
  out.reserve(4096);
  for (const MetricSnapshot& m : metrics) {
    const std::string name = prom_name(m.name);
    switch (m.kind) {
      case MetricKind::kCounter:
        append_fmt(out, "# TYPE %s counter\n%s %lld\n", name.c_str(),
                   name.c_str(), static_cast<long long>(m.value));
        break;
      case MetricKind::kGauge:
        append_fmt(out, "# TYPE %s gauge\n%s %lld\n", name.c_str(),
                   name.c_str(), static_cast<long long>(m.value));
        break;
      case MetricKind::kHisto: {
        const HistoSnapshot& h = m.histo;
        append_fmt(out, "# TYPE %s summary\n", name.c_str());
        for (const double q : {0.5, 0.9, 0.99}) {
          append_fmt(out, "%s{quantile=\"%g\"} %.1f\n", name.c_str(), q,
                     h.percentile(q));
        }
        append_fmt(out, "%s_sum %llu\n%s_count %llu\n", name.c_str(),
                   static_cast<unsigned long long>(h.sum), name.c_str(),
                   static_cast<unsigned long long>(h.count));
        break;
      }
    }
  }
  return out;
}

}  // namespace ft::obs
