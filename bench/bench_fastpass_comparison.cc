// Reproduces the paper's Fastpass comparison (§1, §6.1 "Throughput
// scaling and comparison to Fastpass"): Fastpass arbitrates *per packet*
// (one maximal matching per MTU timeslot), so the network throughput one
// core can manage is (timeslot matchings computed per second) x MTU x
// matched pairs -- and shrinks as link speed grows, because timeslots
// shrink. Flowtune allocates *per flowlet*: one NED+F-NORM iteration per
// 10 us covers the whole network regardless of link speed, so the
// allocated throughput per core scales with the links.
//
// Paper: Fastpass reported 2.2 Tbit/s on 8 cores (~0.28 Tbit/s/core);
// Flowtune allocates 15.36 Tbit/s on 4 cores (~3.8 Tbit/s/core), 10.4x
// more throughput per core, and scales to 8x more cores for an 83x
// total gain. Absolute numbers here reflect this host's single vCPU;
// the per-core *ratio* between the two allocators is the reproduced
// quantity, along with the link-speed scaling behaviour.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/fastpass.h"
#include "core/ned.h"
#include "core/normalizer.h"
#include "core/problem.h"
#include "topo/clos.h"

namespace {

using namespace ft;

struct Workload {
  topo::ClosTopology clos;
  std::vector<std::pair<std::int32_t, std::int32_t>> pairs;

  Workload(std::int32_t servers, std::int32_t flows, std::uint64_t seed)
      : clos([&] {
          topo::ClosConfig cfg;
          cfg.servers_per_rack = 16;
          cfg.racks = servers / 16;
          cfg.spines = 4;
          return topo::ClosTopology(cfg);
        }()) {
    Rng rng(seed);
    const auto hosts = static_cast<std::uint64_t>(clos.num_hosts());
    for (std::int32_t f = 0; f < flows; ++f) {
      const auto s = static_cast<std::int32_t>(rng.below(hosts));
      auto d = static_cast<std::int32_t>(rng.below(hosts - 1));
      if (d >= s) ++d;
      pairs.emplace_back(s, d);
    }
  }
};

// Fastpass: sustained allocation throughput per core = bytes granted per
// second of arbiter CPU, with demands replenished so the arbiter always
// has work (a loaded network).
double fastpass_tbps_per_core(const Workload& w, double /*link_bps*/) {
  core::FastpassArbiter arb(w.clos.num_hosts());
  Rng rng(7);
  for (const auto& [s, d] : w.pairs) arb.add_demand(s, d, 1 << 20);
  // Warmup.
  for (int i = 0; i < 200; ++i) arb.allocate_timeslot();
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t bytes0 = arb.stats().bytes_granted;
  constexpr int kSlots = 20000;
  for (int i = 0; i < kSlots; ++i) {
    arb.allocate_timeslot();
    if ((i & 1023) == 0) {
      // Replenish backlog so the matching stays loaded.
      for (const auto& [s, d] : w.pairs) arb.add_demand(s, d, 1 << 18);
    }
  }
  const double cpu_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const auto bytes = static_cast<double>(arb.stats().bytes_granted -
                                         bytes0);
  // Throughput the arbiter can *sustain*: it must compute timeslots at
  // least as fast as the network consumes them. One arbiter-CPU second
  // yields `bytes` of grants; the network needs them in
  // kSlots * slot_duration of real time, so the manageable throughput is
  // bytes / cpu_sec (bits per arbiter-CPU-second).
  return bytes * 8.0 / cpu_sec / 1e12;
}

// Flowtune: allocated throughput per core = (sum of F-NORM rates it
// sustains) x (iteration period / iteration CPU time).
double flowtune_tbps_per_core(const Workload& w, double link_scale) {
  std::vector<double> caps;
  for (const auto& l : w.clos.graph().links()) {
    caps.push_back(l.capacity_bps * link_scale);
  }
  core::NumProblem p(caps);
  Rng rng(9);
  for (const auto& [s, d] : w.pairs) {
    const auto path =
        w.clos.host_path(w.clos.host(s), w.clos.host(d), rng.next());
    std::vector<LinkId> links(path.begin(), path.end());
    p.add_flow(links, core::Utility::log_utility());
  }
  core::NedSolver ned(p);
  std::vector<double> norm(p.num_slots());
  for (int i = 0; i < 50; ++i) ned.iterate();  // warmup/converge
  const auto t0 = std::chrono::steady_clock::now();
  constexpr int kIters = 2000;
  double allocated_bps = 0.0;
  for (int i = 0; i < kIters; ++i) {
    ned.iterate();
    core::f_norm(p, ned.rates(), norm);
  }
  const double cpu_sec =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (std::size_t s = 0; s < norm.size(); ++s) allocated_bps += norm[s];
  // One iteration of CPU time buys 10 us of allocations for the whole
  // network: manageable throughput = allocated * (10us / per-iter cpu).
  const double per_iter_cpu = cpu_sec / kIters;
  return allocated_bps * (10e-6 / per_iter_cpu) / 1e12;
}

}  // namespace

int main(int argc, char** argv) {
  ft::bench::Flags flags(argc, argv);
  const auto servers = static_cast<std::int32_t>(
      flags.int_flag("servers", 384, "number of servers"));
  const auto flows = static_cast<std::int32_t>(
      flags.int_flag("flows", 3072, "concurrent flows"));
  flags.done("Reproduces the paper's Fastpass throughput-per-core "
             "comparison (§1, §6.1).");

  ft::bench::banner("Allocator throughput per core: Flowtune vs Fastpass",
                    "Flowtune paper §1 / §6.1 (10.4x per core, 83x total "
                    "on the paper's hardware)");

  const Workload w(servers, flows, 42);

  ft::bench::Table table({"allocator", "link speed", "Tbit/s per core"});
  const double fp = fastpass_tbps_per_core(w, 10e9);
  table.add_row({"Fastpass (per-packet timeslots)", "10G",
                 ft::bench::fmt("%.3f", fp)});
  const double ft10 = flowtune_tbps_per_core(w, 1.0);
  table.add_row({"Flowtune (NED + F-NORM)", "10G",
                 ft::bench::fmt("%.3f", ft10)});
  const double ft40 = flowtune_tbps_per_core(w, 4.0);
  table.add_row({"Flowtune (NED + F-NORM)", "40G",
                 ft::bench::fmt("%.3f", ft40)});
  table.print();

  std::printf(
      "\nPer-core advantage at 10G: %.1fx (paper: 10.4x).\n"
      "Flowtune's manageable throughput scales with link speed "
      "(%.1fx going 10G->40G; Fastpass would stay flat since its "
      "timeslots shrink 4x), and its LinkBlock aggregation scales it "
      "across 8x more cores -- the paper's 83x total.\n",
      ft10 / fp, ft40 / ft10);
  return 0;
}
