// Shared helpers for the benchmark harnesses: tiny CLI flag parsing and
// aligned table printing matching the paper's figure/table formats.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace ft::bench {

// Minimal --key=value flag parser. Unknown flags abort with a message
// listing valid keys (registered via int_flag/double_flag/...).
class Flags {
 public:
  Flags(int argc, char** argv);

  // Registers a flag and returns its value (default if absent).
  std::int64_t int_flag(const std::string& name, std::int64_t def,
                        const std::string& help);
  double double_flag(const std::string& name, double def,
                     const std::string& help);
  bool bool_flag(const std::string& name, bool def,
                 const std::string& help);
  std::string string_flag(const std::string& name, std::string def,
                          const std::string& help);

  // Call after all registrations: rejects unknown flags, handles --help.
  void done(const char* description);

 private:
  struct Entry {
    std::string name;
    std::string value;
    bool used = false;
  };
  struct HelpLine {
    std::string name;
    std::string def;
    std::string help;
  };
  const std::string* find(const std::string& name);
  std::vector<Entry> entries_;
  std::vector<HelpLine> help_;
  std::string prog_;
  bool help_requested_ = false;
};

// Fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print(std::FILE* out = stdout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

[[nodiscard]] std::string fmt(const char* format, ...);

// Prints a section banner for a figure/table reproduction.
void banner(const std::string& title, const std::string& paper_ref);

}  // namespace ft::bench
