// Shared helpers for the benchmark harnesses: tiny CLI flag parsing and
// aligned table printing matching the paper's figure/table formats.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace ft::bench {

// Minimal --key=value flag parser. Unknown flags abort with a message
// listing valid keys (registered via int_flag/double_flag/...).
class Flags {
 public:
  Flags(int argc, char** argv);

  // Registers a flag and returns its value (default if absent).
  std::int64_t int_flag(const std::string& name, std::int64_t def,
                        const std::string& help);
  double double_flag(const std::string& name, double def,
                     const std::string& help);
  bool bool_flag(const std::string& name, bool def,
                 const std::string& help);
  std::string string_flag(const std::string& name, std::string def,
                          const std::string& help);

  // Call after all registrations: rejects unknown flags, handles --help.
  void done(const char* description);

 private:
  struct Entry {
    std::string name;
    std::string value;
    bool used = false;
  };
  struct HelpLine {
    std::string name;
    std::string def;
    std::string help;
  };
  const std::string* find(const std::string& name);
  std::vector<Entry> entries_;
  std::vector<HelpLine> help_;
  std::string prog_;
  bool help_requested_ = false;
};

// Fixed-width table printer.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print(std::FILE* out = stdout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

[[nodiscard]] std::string fmt(const char* format, ...);

// Prints a section banner for a figure/table reproduction.
void banner(const std::string& title, const std::string& paper_ref);

// Minimal ordered JSON object builder for the BENCH_*.json result files
// the CI tracks across PRs. Scalars, nested objects and arrays of
// objects; keys keep insertion order so diffs stay stable.
class Json {
 public:
  Json() = default;
  Json(const Json&) = delete;
  Json& operator=(const Json&) = delete;
  Json(Json&&) = default;
  Json& operator=(Json&&) = default;

  Json& set(const std::string& key, double v);
  Json& set(const std::string& key, std::int64_t v);
  Json& set(const std::string& key, int v) {
    return set(key, static_cast<std::int64_t>(v));
  }
  Json& set(const std::string& key, std::uint64_t v) {
    return set(key, static_cast<std::int64_t>(v));
  }
  Json& set(const std::string& key, bool v);
  Json& set(const std::string& key, const std::string& v);
  Json& set(const std::string& key, const char* v) {
    return set(key, std::string(v));
  }

  // Nested object under `key` (created on first use).
  Json& child(const std::string& key);
  // Appends a fresh object to the array under `key`.
  Json& append(const std::string& key);

  [[nodiscard]] std::string dump(int indent = 0) const;
  // Writes dump() to `path`; returns false (with a message to stderr)
  // on I/O failure.
  bool write_file(const std::string& path) const;

  // Fills this object's "run" child with the metadata every BENCH_*.json
  // carries so trajectories are comparable across machines and commits:
  // git sha (git rev-parse, falling back to GITHUB_SHA/GIT_SHA, then
  // "unknown"), hardware_concurrency, compiler, and -- when non-empty --
  // the pinning layout and backend config of the run.
  Json& add_run_metadata(const std::string& pinning = "",
                         const std::string& backend = "");

 private:
  struct Entry {
    std::string key;
    // Exactly one is used: a pre-rendered scalar, a nested object, or
    // an array of objects.
    std::string scalar;
    std::unique_ptr<Json> object;
    std::vector<std::unique_ptr<Json>> array;
    bool is_scalar = false;
  };
  Entry& slot(const std::string& key);
  std::vector<Entry> entries_;
};

}  // namespace ft::bench
