// Chaos campaign driver: randomized fault schedules over the simulated
// control plane with continuous invariant oracles, in two modes.
//
// Campaign mode (default): run N seed-derived schedules against a
// 1k-endpoint plane with the full liveness stack on. Every schedule
// converges fault-free, takes its faults under oracle sweeps, then must
// reconverge to the baseline fixpoint. The first violation stops the
// campaign, is shrunk to a 1-minimal schedule, and lands as a repro
// JSON (seed + kept event indices + violated oracle + exact replay
// command) -- the artifact CI uploads on a red nightly. Exit status is
// the verdict: 0 green, 1 violation, 2 operational failure.
//
// Replay mode (--replay-schedule-seed, optionally --keep): re-run one
// schedule -- typically pasted from a repro -- and print the oracle
// verdict. Same seed, same verdict, bit for bit, machine to machine.
//
// Everything is virtual time: a 200-schedule campaign at 1k endpoints
// is minutes of wall clock, and every reported sim_* metric is a
// deterministic function of (--seed, config).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "sim/chaos.h"

namespace {

using namespace ft;

// Percentile over a sorted copy (nearest-rank).
std::int64_t pctl(std::vector<std::int64_t> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

std::vector<int> parse_keep(const std::string& s) {
  std::vector<int> out;
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t end = s.find(',', pos);
    if (end == std::string::npos) end = s.size();
    if (end > pos) out.push_back(std::atoi(s.substr(pos, end - pos).c_str()));
    pos = end + 1;
  }
  return out;
}

bool write_text(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fputs(text.c_str(), f);
  std::fclose(f);
  return true;
}

void print_violation(const sim::ChaosResult& r) {
  for (const auto& v : r.violations) {
    std::fprintf(stderr, "VIOLATION %s at virtual %lld us: %s\n",
                 v.oracle.c_str(), static_cast<long long>(v.virtual_us),
                 v.detail.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const auto campaign =
      flags.int_flag("campaign", 200, "schedules per campaign");
  const auto seed = flags.int_flag("seed", 1, "campaign seed");
  const auto endpoints =
      flags.int_flag("endpoints", 1'000, "endpoints in the plane");
  const auto plane_seed =
      flags.int_flag("plane-seed", 1, "harness seed (topology, workload)");
  // Schedule seeds span the full uint64 range (splitmix64 output), so
  // this cannot go through int_flag -- INT64_MAX saturation would
  // silently replay a different schedule than the repro names.
  const std::string replay_seed_str = flags.string_flag(
      "replay-schedule-seed", "0",
      "replay one schedule by seed instead of running a campaign");
  const std::string keep_csv = flags.string_flag(
      "keep", "", "comma-separated event indices kept during replay");
  const bool vip = flags.bool_flag(
      "vip", false, "put a SimProxy VIP in front of the service");
  const std::string out =
      flags.string_flag("out", "BENCH_chaos.json", "JSON results path");
  const std::string repro_out = flags.string_flag(
      "repro-out", "chaos_repro.json", "repro artifact on violation");
  flags.done(
      "Randomized fault campaigns with invariant oracles and automatic "
      "schedule shrinking, on the virtual-time control plane.");

  sim::ChaosConfig cfg;
  cfg.harness.num_endpoints = static_cast<int>(endpoints);
  cfg.harness.flows_per_endpoint = 1;
  cfg.harness.seed = static_cast<std::uint64_t>(plane_seed);
  cfg.harness.poll_period_us = 1'000;
  cfg.harness.heartbeat_period_us = 10'000;
  cfg.harness.rate_lease_us = 50'000;
  cfg.harness.peer_timeout_us = 300'000;
  cfg.harness.agent_heartbeat_period_us = 10'000;
  cfg.harness.agent_peer_timeout_us = 150'000;
  cfg.harness.use_vip_proxy = vip;
  const sim::ChaosEngine engine(cfg);

  const std::uint64_t replay_seed =
      std::strtoull(replay_seed_str.c_str(), nullptr, 10);
  if (replay_seed != 0) {
    bench::banner("Chaos schedule replay",
                  "one seed, one schedule, one deterministic verdict");
    sim::ChaosSchedule s = engine.generate(replay_seed);
    if (!keep_csv.empty()) {
      s = sim::ChaosEngine::apply_keep(s, parse_keep(keep_csv));
    }
    std::printf("schedule seed %llu, %zu events:\n",
                static_cast<unsigned long long>(replay_seed), s.events.size());
    for (const auto& e : s.events) {
      std::printf("  [%d] %s at %lld us dur %lld us mag %.2f\n", e.idx,
                  sim::chaos_fault_name(e.kind),
                  static_cast<long long>(e.at_us),
                  static_cast<long long>(e.duration_us), e.magnitude);
    }
    const sim::ChaosResult r = engine.run_schedule(s);
    if (r.ok) {
      std::printf("OK: all oracles green, reconverged in %lld virtual us "
                  "(trajectory %016llx)\n",
                  static_cast<long long>(r.reconverge_us),
                  static_cast<unsigned long long>(r.trajectory_hash));
      return 0;
    }
    print_violation(r);
    if (!write_text(repro_out, engine.repro_json(r))) return 2;
    std::fprintf(stderr, "wrote %s\n", repro_out.c_str());
    return 1;
  }

  bench::banner("Chaos campaign",
                "seed-derived fault schedules + invariant oracles");
  const auto t0 = std::chrono::steady_clock::now();
  const sim::CampaignResult res = engine.run_campaign(
      static_cast<std::uint64_t>(seed), static_cast<int>(campaign));
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (res.violations > 0) {
    std::fprintf(stderr,
                 "campaign seed %lld: schedule %d of %lld violated\n",
                 static_cast<long long>(seed), res.schedules_run,
                 static_cast<long long>(campaign));
    print_violation(res.first_violation);
    std::fprintf(stderr,
                 "shrunk to %zu event(s) in %d replays; replay with:\n  %s\n",
                 res.shrunk.minimal.events.size(), res.shrunk.runs,
                 engine.replay_command(res.shrunk.result).c_str());
    if (!write_text(repro_out, engine.repro_json(res.shrunk.result))) {
      return 2;
    }
    std::fprintf(stderr, "wrote %s\n", repro_out.c_str());
    return 1;
  }

  const std::int64_t p50 = pctl(res.reconverge_us, 0.50);
  const std::int64_t p99 = pctl(res.reconverge_us, 0.99);
  bench::Table t({"schedules", "endpoints", "violations", "reconv_p50_ms",
                  "reconv_p99_ms", "wall_s"});
  t.add_row({bench::fmt("%d", res.schedules_run),
             bench::fmt("%lld", static_cast<long long>(endpoints)),
             bench::fmt("%d", res.violations),
             bench::fmt("%.1f", static_cast<double>(p50) / 1e3),
             bench::fmt("%.1f", static_cast<double>(p99) / 1e3),
             bench::fmt("%.2f", wall)});
  t.print();
  std::printf("campaign hash %016llx (deterministic per seed)\n",
              static_cast<unsigned long long>(res.campaign_hash));

  bench::Json j;
  j.add_run_metadata();
  j.set("campaign_seed", seed);
  j.set("endpoints", endpoints);
  j.set("vip", vip);
  j.set("campaign_hash",
        bench::fmt("%016llx",
                   static_cast<unsigned long long>(res.campaign_hash)));
  j.set("sim_chaos_schedules_run", res.schedules_run);
  j.set("sim_chaos_violations", res.violations);
  j.set("sim_chaos_reconverge_p50_us", p50);
  j.set("sim_chaos_reconverge_p99_us", p99);
  j.set("wall_elapsed_sec", wall);
  if (!j.write_file(out)) return 2;
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
