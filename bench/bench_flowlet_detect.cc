// Flowlet detection engine benchmark: raw packets/sec through each
// detector, plus a boundary-accuracy sweep (precision/recall against the
// packet trace's ground truth) across static gap thresholds, the
// FlowDyn-style dynamic detector, and offered loads.
//
// The PASS gate is the subsystem's acceptance bar: on the Web workload
// at 0.6 load the dynamic detector must reach >= 95% precision and
// recall with its default (untuned) config, while a 4x-misconfigured
// static gap measurably degrades on the same trace.
//
//   $ ./bench_flowlet_detect --hosts=64 --load=0.6 --horizon-ms=50
#include <chrono>

#include "bench_util.h"
#include "flowlet/accuracy.h"
#include "flowlet/detector.h"
#include "workload/traffic_gen.h"

namespace {

using namespace ft;

wl::PacketTrace make_trace(std::int64_t hosts, double load,
                           Time horizon) {
  wl::TrafficConfig cfg;
  cfg.num_hosts = static_cast<std::int32_t>(hosts);
  cfg.load = load;
  cfg.workload = wl::Workload::kWeb;
  cfg.seed = 7;
  wl::PacketTraceGenerator gen(cfg);
  return gen.generate(horizon);
}

// Feeds the trace through a detector repeatedly (shifting timestamps so
// time keeps advancing) until `target_packets`, returns packets/sec.
double throughput_pps(flowlet::FlowletDetector& det,
                      const wl::PacketTrace& trace,
                      std::uint64_t target_packets) {
  det.set_callbacks(nullptr, nullptr);
  const Time span = trace.packets.back().at + kMillisecond;
  std::uint64_t fed = 0;
  Time offset = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (fed < target_packets) {
    for (const wl::PacketEvent& ev : trace.packets) {
      flowlet::PacketRecord rec;
      rec.flow_key = ev.flow_id;
      rec.src_host = static_cast<std::uint16_t>(ev.src_host);
      rec.dst_host = static_cast<std::uint16_t>(ev.dst_host);
      rec.bytes = static_cast<std::uint32_t>(ev.bytes);
      rec.at = ev.at + offset;
      det.on_packet(rec);
    }
    fed += trace.packets.size();
    offset += span;
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double secs =
      std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(fed) / secs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ft;
  bench::Flags flags(argc, argv);
  const auto hosts = flags.int_flag("hosts", 64, "number of hosts");
  const double load = flags.double_flag("load", 0.6, "offered load");
  const auto horizon_ms =
      flags.int_flag("horizon-ms", 50, "trace horizon (ms)");
  const auto tput_packets = flags.int_flag(
      "tput-packets", 2'000'000, "packets for the throughput phase");
  const auto json_path = flags.string_flag(
      "json", "BENCH_flowlet_detect.json",
      "machine-readable results file (empty disables)");
  flags.done("Flowlet detection: packets/sec and boundary accuracy.");

  bench::Json json;
  json.add_run_metadata();

  bench::banner("Flowlet detection engine",
                "FlowDyn-style dynamic gap vs static thresholds");

  const Time horizon = horizon_ms * kMillisecond;
  const wl::PacketTrace trace = make_trace(hosts, load, horizon);
  if (trace.packets.empty()) {
    std::fprintf(stderr, "empty trace (horizon/load too small)\n");
    return 1;
  }
  std::printf("trace: %zu packets, %zu flows, %zu ground-truth "
              "flowlets (web, load %.2f)\n\n",
              trace.packets.size(), trace.flows, trace.bursts, load);

  // --- Phase 1: raw detection throughput.
  bench::Table tput({"detector", "packets/sec"});
  {
    flowlet::StaticGapDetector det;
    const double pps = throughput_pps(det, trace, tput_packets);
    tput.add_row({"static-gap", bench::fmt("%.2fM", pps / 1e6)});
    json.child("throughput").set("static_gap_pps", pps);
  }
  {
    flowlet::DynamicGapDetector det;
    const double pps = throughput_pps(det, trace, tput_packets);
    tput.add_row({"dynamic-gap", bench::fmt("%.2fM", pps / 1e6)});
    json.child("throughput").set("dynamic_gap_pps", pps);
  }
  tput.print();

  // --- Phase 2: accuracy sweep across gap thresholds and loads.
  const double static_gaps_us[] = {12.5, 25, 50, 100, 200, 400, 800};
  const double loads[] = {0.3, load, 0.9};
  std::printf("\n");
  bench::Table acc({"detector", "load", "precision", "recall",
                    "truth", "detected", "evictions"});
  const auto u64 = [](std::uint64_t v) {
    return bench::fmt("%llu", static_cast<unsigned long long>(v));
  };
  double dyn_precision = 0.0;
  double dyn_recall = 0.0;
  double static4x_recall = 0.0;
  for (const double l : loads) {
    const wl::PacketTrace t =
        (l == load) ? trace : make_trace(hosts, l, horizon);
    {
      flowlet::DynamicGapDetector det;
      const auto s = flowlet::score_trace(det, t.packets);
      if (l == load) {
        dyn_precision = s.precision;
        dyn_recall = s.recall;
      }
      acc.add_row({"dynamic", bench::fmt("%.1f", l),
                   bench::fmt("%.4f", s.precision),
                   bench::fmt("%.4f", s.recall), u64(s.truth_boundaries),
                   u64(s.detected_boundaries), u64(s.evictions)});
      auto& j = json.append("accuracy");
      j.set("detector", "dynamic");
      j.set("load", l);
      j.set("precision", s.precision);
      j.set("recall", s.recall);
    }
    for (const double gap_us : static_gaps_us) {
      flowlet::StaticGapConfig cfg;
      cfg.gap = from_us(gap_us);
      flowlet::StaticGapDetector det(cfg);
      const auto s = flowlet::score_trace(det, t.packets);
      if (l == load && gap_us == 200.0) static4x_recall = s.recall;
      acc.add_row({bench::fmt("static %.1fus", gap_us),
                   bench::fmt("%.1f", l),
                   bench::fmt("%.4f", s.precision),
                   bench::fmt("%.4f", s.recall), u64(s.truth_boundaries),
                   u64(s.detected_boundaries), u64(s.evictions)});
      auto& j = json.append("accuracy");
      j.set("detector", bench::fmt("static_%.1fus", gap_us));
      j.set("load", l);
      j.set("precision", s.precision);
      j.set("recall", s.recall);
    }
  }
  acc.print();

  // --- PASS gate: untuned dynamic >= 95/95; a 4x-misconfigured static
  // (200us against the trace's ~50us sweet spot) measurably degrades.
  const bool dyn_ok = dyn_precision >= 0.95 && dyn_recall >= 0.95;
  const bool static_degrades = static4x_recall < dyn_recall - 0.05;
  std::printf("\ndynamic @ load %.1f: precision %.4f recall %.4f "
              "(target >= 0.95/0.95)\n",
              load, dyn_precision, dyn_recall);
  std::printf("static 4x-misconfigured (200us) recall: %.4f "
              "(must trail dynamic by > 0.05)\n", static4x_recall);
  const bool pass = dyn_ok && static_degrades;
  json.set("load", load);
  json.set("dynamic_precision", dyn_precision);
  json.set("dynamic_recall", dyn_recall);
  json.set("static_4x_recall", static4x_recall);
  json.set("pass", pass);
  if (!json_path.empty()) json.write_file(json_path);
  std::printf("%s\n", pass ? "PASS" : "FAIL");
  return pass ? 0 : 1;
}
