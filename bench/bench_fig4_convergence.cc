// Reproduces Figure 4 / §6.3 (result B): convergence to a fair
// allocation. Five senders share one receiver; every 10 ms a sender
// starts a flow (up to five), then every 10 ms one stops. The figure
// plots each flow's throughput in 100 us bins over 90 ms.
//
// Paper shape: Flowtune reaches the 1/N fair share within ~100 us of
// every change (allocation itself within 20 us); DCTCP takes several
// milliseconds and keeps fluctuating; pFabric starves all but the
// highest-priority flow; sfqCoDel shares quickly but delivers bursty
// application throughput; XCP hands out bandwidth so conservatively that
// flows stay slow for most of the experiment.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "common/ratecode.h"
#include "sim/simulator.h"
#include "topo/clos.h"
#include "transport/control.h"
#include "transport/cubic.h"
#include "transport/dctcp.h"
#include "transport/experiment.h"
#include "transport/pfabric.h"
#include "transport/xcp.h"

namespace {

using namespace ft;
using namespace ft::transport;

constexpr Time kBin = 100 * kMicrosecond;
constexpr Time kEventGap = 10 * kMillisecond;
constexpr std::int32_t kSenders = 5;
constexpr Time kHorizon = 2 * kSenders * kEventGap;  // 100 ms

struct FlowTrace {
  std::vector<double> gbps;  // per bin
};

struct RunOutput {
  std::array<FlowTrace, kSenders> flows;
  std::array<Time, 2 * kSenders - 1> event_times;
};

class Fig4Driver : public sim::EventHandler {
 public:
  Fig4Driver(Scheme scheme, sim::Simulator& s,
             const topo::ClosTopology& clos, FlowRegistry& reg,
             AllocatorApp* app)
      : scheme_(scheme), s_(s), clos_(clos), reg_(reg), app_(app) {
    for (auto& f : out_.flows) {
      f.gbps.assign(static_cast<std::size_t>(kHorizon / kBin), 0.0);
    }
    if (app_ != nullptr) {
      app_->on_rate_update = [this](std::int32_t,
                                    const core::RateUpdateMsg& m) {
        const auto it = by_key_.find(m.flow_key);
        if (it != by_key_.end()) {
          it->second->set_pacing_rate(decode_rate(m.rate_code));
        }
      };
    }
  }

  void start() {
    std::int32_t k = 0;
    for (; k < kSenders; ++k) {
      out_.event_times[static_cast<std::size_t>(k)] = k * kEventGap;
      s_.events.schedule(k * kEventGap, this, /*tag=*/0,
                         static_cast<std::uint64_t>(k));
    }
    for (std::int32_t j = 0; j < kSenders - 1; ++j, ++k) {
      out_.event_times[static_cast<std::size_t>(k)] =
          (kSenders + j) * kEventGap;
      s_.events.schedule((kSenders + j) * kEventGap, this, /*tag=*/1,
                         static_cast<std::uint64_t>(j));
    }
  }

  void on_event(std::uint32_t tag, std::uint64_t arg) override {
    const auto i = static_cast<std::int32_t>(arg);
    if (tag == 0) {
      start_flow(i);
    } else {
      stop_flow(i);
    }
  }

  [[nodiscard]] RunOutput& output() { return out_; }

 private:
  std::unique_ptr<TcpFlow> make_flow(std::int32_t src, std::int32_t dst,
                                     std::uint64_t hash) {
    const auto fwd = clos_.host_path(clos_.host(src), clos_.host(dst), hash);
    const auto rev = clos_.host_path(clos_.host(dst), clos_.host(src), hash);
    const TcpConfig tc = make_data_tcp_config(scheme_);
    switch (scheme_) {
      case Scheme::kDctcp:
        return std::make_unique<DctcpFlow>(reg_, src, dst, fwd, rev, tc);
      case Scheme::kPfabric:
        return std::make_unique<PfabricFlow>(reg_, src, dst, fwd, rev, tc);
      case Scheme::kSfqCodel:
        return std::make_unique<CubicFlow>(reg_, src, dst, fwd, rev, tc);
      case Scheme::kXcp:
        return std::make_unique<XcpFlow>(reg_, src, dst, fwd, rev, tc);
      default:
        return std::make_unique<TcpFlow>(reg_, src, dst, fwd, rev, tc);
    }
  }

  void start_flow(std::int32_t i) {
    // Senders sit in distinct racks; the receiver is host 0.
    const std::int32_t src = (i + 1) * clos_.config().servers_per_rack;
    const std::int32_t dst = 0;
    const std::uint32_t key = reg_.next_id();
    auto flow = make_flow(src, dst, key);
    TcpFlow* f = flow.get();
    flows_[static_cast<std::size_t>(i)] = std::move(flow);
    by_key_.emplace(key, f);
    f->on_delivered = [this, i](std::int64_t bytes) {
      auto& bins = out_.flows[static_cast<std::size_t>(i)].gbps;
      const auto bin = static_cast<std::size_t>(s_.now() / kBin);
      if (bin < bins.size()) {
        bins[bin] += static_cast<double>(bytes) * 8.0 / to_sec(kBin) / 1e9;
      }
    };
    if (app_ != nullptr) {
      const std::int32_t srch = src;
      f->on_complete = [this, key, srch] {
        core::FlowletEndMsg end;
        end.flow_key = key;
        app_->notify_end(srch, end);
        by_key_.erase(key);
      };
      core::FlowletStartMsg m;
      m.flow_key = key;
      m.src_host = static_cast<std::uint16_t>(src);
      m.dst_host = static_cast<std::uint16_t>(dst);
      app_->notify_start(src, m);
    }
    f->app_send(std::int64_t{1} << 34);  // effectively unbounded
  }

  void stop_flow(std::int32_t i) {
    if (flows_[static_cast<std::size_t>(i)]) {
      flows_[static_cast<std::size_t>(i)]->app_abort();
    }
  }

  Scheme scheme_;
  sim::Simulator& s_;
  const topo::ClosTopology& clos_;
  FlowRegistry& reg_;
  AllocatorApp* app_;
  std::array<std::unique_ptr<TcpFlow>, kSenders> flows_;
  std::unordered_map<std::uint32_t, TcpFlow*> by_key_;
  RunOutput out_;
};

RunOutput run_scheme(Scheme scheme) {
  ExpConfig qcfg;  // queue parameters only
  qcfg.scheme = scheme;
  topo::ClosConfig tcfg;  // paper topology
  tcfg.with_allocator = scheme == Scheme::kFlowtune;
  topo::ClosTopology clos(tcfg);
  sim::Simulator s;
  sim::Network net(s.events, s.pool, clos, make_queue_factory(qcfg));
  FlowRegistry reg(net);
  std::unique_ptr<AllocatorApp> app;
  if (scheme == Scheme::kFlowtune) {
    app = std::make_unique<AllocatorApp>(reg, clos, AllocatorAppConfig{});
    app->start();
  }
  Fig4Driver driver(scheme, s, clos, reg, app.get());
  driver.start();
  s.run_until(kHorizon);
  return driver.output();
}

// First time after the event where all active flows stay within
// `tol` of the fair share for `hold` consecutive bins.
Time convergence_time(const RunOutput& out, std::size_t event_idx,
                      double fair_gbps, std::int32_t first_active,
                      std::int32_t last_active, double tol,
                      std::int32_t hold) {
  const Time t0 = out.event_times[event_idx];
  const Time t1 = event_idx + 1 < out.event_times.size()
                      ? out.event_times[event_idx + 1]
                      : kHorizon;
  const auto bin0 = static_cast<std::size_t>(t0 / kBin);
  const auto bin1 = static_cast<std::size_t>(t1 / kBin);
  std::int32_t streak = 0;
  for (std::size_t b = bin0; b < bin1; ++b) {
    bool ok = true;
    for (std::int32_t f = first_active; f <= last_active; ++f) {
      const double rate = out.flows[static_cast<std::size_t>(f)].gbps[b];
      if (rate < fair_gbps * (1 - tol) || rate > fair_gbps * (1 + tol)) {
        ok = false;
        break;
      }
    }
    streak = ok ? streak + 1 : 0;
    if (streak >= hold) {
      return static_cast<Time>(b + 1 - static_cast<std::size_t>(hold)) *
                 kBin -
             t0 + kBin;
    }
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  ft::bench::Flags flags(argc, argv);
  const bool timeline =
      flags.bool_flag("timeline", true, "print the 1ms-binned timeline");
  flags.done("Reproduces Figure 4 (fair-allocation convergence).");

  ft::bench::banner("Convergence to fair shares (5-sender staircase)",
                    "Flowtune paper Figure 4 / §6.3, result (B)");

  const Scheme schemes[] = {Scheme::kFlowtune, Scheme::kDctcp,
                            Scheme::kPfabric, Scheme::kSfqCodel,
                            Scheme::kXcp};
  for (const Scheme scheme : schemes) {
    const RunOutput out = run_scheme(scheme);
    std::printf("--- %s ---\n", scheme_name(scheme));
    if (timeline) {
      std::printf("time(ms)  f1     f2     f3     f4     f5   (Gbit/s, "
                  "1ms bins)\n");
      const auto bins_per_ms = static_cast<std::size_t>(kMillisecond / kBin);
      for (std::size_t ms = 0; ms < 100; ms += 4) {
        std::printf("%6zu  ", ms);
        for (std::int32_t f = 0; f < kSenders; ++f) {
          double sum = 0;
          for (std::size_t b = ms * bins_per_ms;
               b < (ms + 1) * bins_per_ms; ++b) {
            sum += out.flows[static_cast<std::size_t>(f)].gbps[b];
          }
          std::printf("%5.2f  ", sum / static_cast<double>(bins_per_ms));
        }
        std::printf("\n");
      }
    }
    // Convergence-time summary per join event (paper: Flowtune within
    // ~100 us, DCTCP several ms, XCP slow, pFabric never shares).
    std::printf("convergence to fair share (+/-25%%, held 0.5 ms):\n");
    for (std::size_t e = 1; e < kSenders; ++e) {
      const double fair =
          (scheme == Scheme::kFlowtune ? 9.9 : 10.0) /
          static_cast<double>(e + 1);
      const Time ct = convergence_time(out, e, fair, 0,
                                       static_cast<std::int32_t>(e),
                                       0.25, 5);
      if (ct < 0) {
        std::printf("  %zu->%zu flows: not converged within 10 ms\n", e,
                    e + 1);
      } else {
        std::printf("  %zu->%zu flows: %.2f ms\n", e, e + 1, to_ms(ct));
      }
    }
    std::printf("\n");
  }
  std::printf(
      "Paper: Flowtune converges within ~100 us (20 us allocation); "
      "DCTCP needs several ms and keeps fluctuating; pFabric starves all "
      "but one flow; sfqCoDel is fair but bursty; XCP stays slow.\n");
  return 0;
}
