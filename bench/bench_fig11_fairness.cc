// Reproduces Figure 11: per-flow proportional-fairness score relative to
// Flowtune. A network assigning flow rates r_i scores sum log2(r_i);
// we report the mean per-flow score difference (scheme - Flowtune), so
// -1.0 means flows got on average half the rate Flowtune gave them.
//
// Paper shape: DCTCP 1.0-1.9 points below Flowtune, pFabric 0.45-0.83
// below, XCP ~1.3 below, sfqCoDel ~0.25 below.
#include <cstdio>

#include "bench_util.h"
#include "transport/experiment.h"

int main(int argc, char** argv) {
  using namespace ft;
  using namespace ft::bench;
  using namespace ft::transport;

  Flags flags(argc, argv);
  const double dur_ms =
      flags.double_flag("duration_ms", 12, "measured milliseconds");
  flags.done("Reproduces Figure 11 (proportional fairness relative to "
             "Flowtune).");

  banner("Per-flow proportional fairness relative to Flowtune",
         "Flowtune paper Figure 11");

  const Scheme others[] = {Scheme::kDctcp, Scheme::kPfabric,
                           Scheme::kSfqCodel, Scheme::kXcp};
  Table table({"scheme", "load", "score - Flowtune (log2 points)"});
  for (const double load : {0.2, 0.4, 0.6, 0.8}) {
    ExpConfig cfg;
    cfg.traffic.load = load;
    cfg.traffic.workload = wl::Workload::kWeb;
    cfg.duration = from_ms(dur_ms);
    cfg.scheme = Scheme::kFlowtune;
    const ExpResult ft_r = run_experiment(cfg);
    for (const Scheme s : others) {
      cfg.scheme = s;
      const ExpResult r = run_experiment(cfg);
      table.add_row({scheme_name(s), fmt("%.1f", load),
                     fmt("%+.2f", r.fairness_score - ft_r.fairness_score)});
    }
  }
  table.print();
  std::printf(
      "\nPaper: DCTCP -1.0..-1.9, pFabric -0.45..-0.83, XCP ~-1.3, "
      "sfqCoDel ~-0.25 relative to Flowtune (negative = less fair).\n");
  return 0;
}
