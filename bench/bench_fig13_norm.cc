// Reproduces Figure 13: network throughput of U-NORM and F-NORM as a
// fraction of the converged optimal allocation, for NED and Gradient
// under flowlet churn.
//
// Paper result (J): F-NORM achieves over 99.7% of optimal throughput
// with NED (98.4% with Gradient) and occasionally slightly exceeds the
// optimum (at some fairness cost, never exceeding link capacities);
// U-NORM scales flows down too aggressively and is not competitive.
#include <cstdio>

#include "bench_util.h"
#include "churn_harness.h"

int main(int argc, char** argv) {
  using namespace ft;
  using namespace ft::bench;

  Flags flags(argc, argv);
  const auto servers = static_cast<std::int32_t>(
      flags.int_flag("servers", 64, "number of servers"));
  const double dur_ms =
      flags.double_flag("duration_ms", 15, "simulated milliseconds");
  const auto exact_every = static_cast<std::int32_t>(flags.int_flag(
      "exact_every", 50, "iterations between converged-optimum solves"));
  flags.done("Reproduces Figure 13 (U-NORM vs F-NORM throughput).");

  banner("Normalized throughput as a fraction of the optimal",
         "Flowtune paper Figure 13 / result (J)");

  Table table({"algorithm", "load", "F-NORM (frac of optimal)",
               "U-NORM (frac of optimal)", "samples"});
  for (const SolverKind kind : {SolverKind::kGradient, SolverKind::kNed}) {
    for (const double load : {0.25, 0.5, 0.75}) {
      ChurnSolverConfig cfg;
      cfg.servers = servers;
      cfg.workload = wl::Workload::kWeb;
      cfg.load = load;
      cfg.solver = kind;
      cfg.gamma = kind == SolverKind::kGradient ? 0.2 : 0.4;
      cfg.duration = from_ms(dur_ms);
      cfg.exact_every = exact_every;
      const ChurnSolverResult r = run_churn_solver(cfg);
      table.add_row(
          {solver_kind_name(kind), fmt("%.2f", load),
           fmt("%.3f", r.fnorm_frac.mean()),
           fmt("%.3f", r.unorm_frac.mean()),
           fmt("%zu", r.fnorm_frac.count())});
    }
  }
  table.print();
  std::printf(
      "\nPaper: F-NORM >= 99.7%% of optimal with NED (98.4%% with "
      "Gradient); U-NORM well below; F-NORM may slightly exceed 1.0 "
      "(more throughput than the proportionally-fair optimum, at some "
      "fairness cost).\n");
  return 0;
}
