#include "bench_util.h"

#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace ft::bench {

Flags::Flags(int argc, char** argv) : prog_(argv[0]) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      continue;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected argument: %s (try --help)\n",
                   arg.c_str());
      std::exit(2);
    }
    const auto eq = arg.find('=');
    Entry e;
    if (eq == std::string::npos) {
      e.name = arg.substr(2);
      e.value = "1";  // bare flag == boolean true
    } else {
      e.name = arg.substr(2, eq - 2);
      e.value = arg.substr(eq + 1);
    }
    entries_.push_back(std::move(e));
  }
}

const std::string* Flags::find(const std::string& name) {
  for (auto& e : entries_) {
    if (e.name == name) {
      e.used = true;
      return &e.value;
    }
  }
  return nullptr;
}

std::int64_t Flags::int_flag(const std::string& name, std::int64_t def,
                             const std::string& help) {
  help_.push_back({name, std::to_string(def), help});
  const std::string* v = find(name);
  return v ? std::strtoll(v->c_str(), nullptr, 10) : def;
}

double Flags::double_flag(const std::string& name, double def,
                          const std::string& help) {
  help_.push_back({name, fmt("%g", def), help});
  const std::string* v = find(name);
  return v ? std::strtod(v->c_str(), nullptr) : def;
}

bool Flags::bool_flag(const std::string& name, bool def,
                      const std::string& help) {
  help_.push_back({name, def ? "true" : "false", help});
  const std::string* v = find(name);
  if (!v) return def;
  return *v == "1" || *v == "true" || *v == "yes";
}

std::string Flags::string_flag(const std::string& name, std::string def,
                               const std::string& help) {
  help_.push_back({name, def, help});
  const std::string* v = find(name);
  return v ? *v : def;
}

void Flags::done(const char* description) {
  if (help_requested_) {
    std::printf("%s\n\n%s\n\nflags:\n", prog_.c_str(), description);
    for (const auto& h : help_) {
      std::printf("  --%-18s (default %s)  %s\n", h.name.c_str(),
                  h.def.c_str(), h.help.c_str());
    }
    std::exit(0);
  }
  for (const auto& e : entries_) {
    if (!e.used) {
      std::fprintf(stderr, "unknown flag: --%s (try --help)\n",
                   e.name.c_str());
      std::exit(2);
    }
  }
}

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void Table::print(std::FILE* out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < width.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  const auto line = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < width.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : "";
      std::fprintf(out, "%-*s  ", static_cast<int>(width[c]), s.c_str());
    }
    std::fprintf(out, "\n");
  };
  line(headers_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  std::string sep(total, '-');
  std::fprintf(out, "%s\n", sep.c_str());
  for (const auto& row : rows_) line(row);
}

std::string fmt(const char* format, ...) {
  va_list args;
  va_start(args, format);
  char buf[512];
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("[reproduces %s]\n\n", paper_ref.c_str());
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += fmt("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Json::Entry& Json::slot(const std::string& key) {
  for (Entry& e : entries_) {
    if (e.key == key) return e;
  }
  entries_.push_back(Entry{});
  entries_.back().key = key;
  return entries_.back();
}

Json& Json::set(const std::string& key, double v) {
  Entry& e = slot(key);
  e.is_scalar = true;
  // %.17g round-trips doubles; trim the common integral case. The
  // range check must short-circuit the cast (UB for NaN/huge values),
  // and non-finite values have no JSON number form -- emit null.
  if (!std::isfinite(v)) {
    e.scalar = "null";
  } else if (std::abs(v) < 1e15 && v == static_cast<std::int64_t>(v)) {
    e.scalar = fmt("%lld", static_cast<long long>(v));
  } else {
    e.scalar = fmt("%.17g", v);
  }
  return *this;
}

Json& Json::set(const std::string& key, std::int64_t v) {
  Entry& e = slot(key);
  e.is_scalar = true;
  e.scalar = fmt("%lld", static_cast<long long>(v));
  return *this;
}

Json& Json::set(const std::string& key, bool v) {
  Entry& e = slot(key);
  e.is_scalar = true;
  e.scalar = v ? "true" : "false";
  return *this;
}

Json& Json::set(const std::string& key, const std::string& v) {
  Entry& e = slot(key);
  e.is_scalar = true;
  e.scalar = "\"" + json_escape(v) + "\"";
  return *this;
}

Json& Json::child(const std::string& key) {
  Entry& e = slot(key);
  if (!e.object) e.object = std::make_unique<Json>();
  return *e.object;
}

Json& Json::append(const std::string& key) {
  Entry& e = slot(key);
  e.array.push_back(std::make_unique<Json>());
  return *e.array.back();
}

std::string Json::dump(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  const std::string pad_in(static_cast<std::size_t>(indent + 1) * 2, ' ');
  std::string out = "{\n";
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    out += pad_in + "\"" + json_escape(e.key) + "\": ";
    if (e.is_scalar) {
      out += e.scalar;
    } else if (e.object) {
      out += e.object->dump(indent + 1);
    } else {
      out += "[";
      for (std::size_t a = 0; a < e.array.size(); ++a) {
        out += "\n" + pad_in + "  " + e.array[a]->dump(indent + 2);
        if (a + 1 < e.array.size()) out += ",";
      }
      if (!e.array.empty()) out += "\n" + pad_in;
      out += "]";
    }
    if (i + 1 < entries_.size()) out += ",";
    out += "\n";
  }
  out += pad + "}";
  return out;
}

namespace {

std::string git_sha() {
  if (std::FILE* p = ::popen("git rev-parse --short=12 HEAD 2>/dev/null",
                             "r")) {
    char buf[64] = {};
    const std::size_t n = std::fread(buf, 1, sizeof buf - 1, p);
    ::pclose(p);
    std::string sha(buf, n);
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
      sha.pop_back();
    }
    if (!sha.empty()) return sha;
  }
  for (const char* env : {"GITHUB_SHA", "GIT_SHA"}) {
    if (const char* v = std::getenv(env); v != nullptr && *v != '\0') {
      return v;
    }
  }
  return "unknown";
}

}  // namespace

Json& Json::add_run_metadata(const std::string& pinning,
                             const std::string& backend) {
  Json& run = child("run");
  run.set("git_sha", git_sha());
  run.set("hardware_concurrency",
          static_cast<std::int64_t>(std::thread::hardware_concurrency()));
#if defined(__VERSION__)
  run.set("compiler", __VERSION__);
#endif
#if defined(NDEBUG)
  run.set("assertions_disabled", true);
#else
  run.set("assertions_disabled", false);
#endif
  if (!pinning.empty()) run.set("pinning", pinning);
  if (!backend.empty()) run.set("backend", backend);
  return run;
}

bool Json::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const std::string body = dump() + "\n";
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) ==
                  body.size();
  std::fclose(f);
  if (ok) std::printf("results written to %s\n", path.c_str());
  return ok;
}

}  // namespace ft::bench
