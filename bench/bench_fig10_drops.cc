// Reproduces Figure 10 (result H): rate at which the network drops data
// (Gbit/s) per scheme and load.
//
// Paper shape: at 0.8 load sfqCoDel drops >100 Gbit/s (~8% of the bytes
// its servers transmit, 1-in-13) and pFabric ~6%; Flowtune, DCTCP and
// XCP drop negligible amounts.
#include <cstdio>

#include "bench_util.h"
#include "transport/experiment.h"

int main(int argc, char** argv) {
  using namespace ft;
  using namespace ft::bench;
  using namespace ft::transport;

  Flags flags(argc, argv);
  const double dur_ms =
      flags.double_flag("duration_ms", 12, "measured milliseconds");
  flags.done("Reproduces Figure 10 (dropped data per second).");

  banner("Dropped data per second", "Flowtune paper Figure 10 / result (H)");

  const Scheme schemes[] = {Scheme::kFlowtune, Scheme::kDctcp,
                            Scheme::kPfabric, Scheme::kSfqCodel,
                            Scheme::kXcp};
  Table table({"scheme", "load", "dropped (Gbps)", "goodput (Gbps)",
               "drop fraction"});
  for (const Scheme s : schemes) {
    for (const double load : {0.2, 0.4, 0.6, 0.8}) {
      ExpConfig cfg;
      cfg.traffic.load = load;
      cfg.traffic.workload = wl::Workload::kWeb;
      cfg.scheme = s;
      cfg.duration = from_ms(dur_ms);
      const ExpResult r = run_experiment(cfg);
      const double frac =
          r.dropped_gbps / std::max(1e-9, r.goodput_gbps + r.dropped_gbps);
      table.add_row({scheme_name(s), fmt("%.1f", load),
                     fmt("%.2f", r.dropped_gbps),
                     fmt("%.0f", r.goodput_gbps),
                     fmt("%.2f%%", 100 * frac)});
    }
  }
  table.print();
  std::printf(
      "\nPaper: sfqCoDel ~8%% and pFabric ~6%% of bytes dropped at 0.8 "
      "load; Flowtune, DCTCP and XCP negligible.\n");
  return 0;
}
