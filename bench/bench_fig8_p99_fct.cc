// Reproduces Figure 8 (result F): improvement ("speedup") in 99th-
// percentile flow completion time from switching each scheme to
// Flowtune, per flow-size bucket and load, on the Web workload.
// FCTs are normalized by the empty-network completion time (§6.5).
//
// Paper shape: vs DCTCP 8.6-10.9x (1 packet) and 2.1-2.9x (1-10
// packets); vs pFabric 1.7-2.4x on 1-packet and large flows with pFabric
// competitive in between; vs sfqCoDel 3.5-3.8x on 10-100 packets at high
// load; vs XCP 2.35x (1 packet) up to 4.1x (large).
#include <cstdio>
#include <map>

#include "bench_util.h"
#include "transport/experiment.h"

int main(int argc, char** argv) {
  using namespace ft;
  using namespace ft::bench;
  using namespace ft::transport;

  Flags flags(argc, argv);
  const double dur_ms =
      flags.double_flag("duration_ms", 12, "measured milliseconds");
  const bool full = flags.bool_flag("full", false,
                                    "4 loads instead of 3, longer runs");
  const auto seed =
      static_cast<std::uint64_t>(flags.int_flag("seed", 1, "workload seed"));
  flags.done("Reproduces Figure 8 (p99 FCT speedup of Flowtune).");

  banner("p99 normalized-FCT speedup of switching to Flowtune",
         "Flowtune paper Figure 8 / result (F)");

  std::vector<double> loads = full
                                  ? std::vector<double>{0.2, 0.4, 0.6, 0.8}
                                  : std::vector<double>{0.2, 0.5, 0.8};

  const Scheme baselines[] = {Scheme::kDctcp, Scheme::kPfabric,
                              Scheme::kSfqCodel, Scheme::kXcp};

  std::map<double, ExpResult> flowtune;
  std::map<std::pair<int, double>, ExpResult> results;
  for (const double load : loads) {
    ExpConfig cfg;
    cfg.traffic.load = load;
    cfg.traffic.workload = wl::Workload::kWeb;
    cfg.traffic.seed = seed;
    cfg.duration = from_ms(full ? 2 * dur_ms : dur_ms);
    cfg.scheme = Scheme::kFlowtune;
    flowtune.emplace(load, run_experiment(cfg));
    for (const Scheme s : baselines) {
      cfg.scheme = s;
      results.emplace(std::make_pair(static_cast<int>(s), load),
                      run_experiment(cfg));
    }
  }

  for (const Scheme s : baselines) {
    std::printf("--- speedup vs %s ---\n",
                scheme_name(s));
    Table table({"load", "1 packet", "1-10 pkts", "10-100 pkts",
                 "100-1000 pkts", "large", "(flows)"});
    for (const double load : loads) {
      const ExpResult& ft_r = flowtune.at(load);
      const ExpResult& other =
          results.at(std::make_pair(static_cast<int>(s), load));
      std::vector<std::string> row = {fmt("%.1f", load)};
      std::size_t flows = 0;
      for (std::int32_t b = 0; b < wl::kNumSizeBuckets; ++b) {
        const auto& fb = ft_r.buckets[static_cast<std::size_t>(b)];
        const auto& ob = other.buckets[static_cast<std::size_t>(b)];
        flows += ob.count;
        if (fb.count < 10 || ob.count < 10 || fb.p99_norm_fct <= 0) {
          row.push_back("-");
        } else {
          row.push_back(fmt("%.2fx", ob.p99_norm_fct / fb.p99_norm_fct));
        }
      }
      row.push_back(fmt("%zu", flows));
      table.add_row(std::move(row));
    }
    table.print();
    std::printf("\n");
  }
  std::printf(
      "Paper: DCTCP 8.6-10.9x (1 pkt), 2.1-2.9x (1-10); pFabric 1.7-2.4x "
      "(1 pkt, large); sfqCoDel 3.5-3.8x (10-100, high load); XCP 2.35x "
      "(1 pkt) to 4.1x (large). Values > 1 mean Flowtune is faster.\n");
  return 0;
}
