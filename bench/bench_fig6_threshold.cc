// Reproduces Figure 6: percentage reduction in update (from-allocator)
// traffic when raising the notification threshold from 0.01 to
// 0.02-0.05, per workload and load.
//
// Paper result (D): a 0.05 threshold saves up to 69% / 64% / 33% of
// update traffic on Hadoop / Cache / Web.
#include <cstdio>

#include "bench_util.h"
#include "churn_harness.h"

int main(int argc, char** argv) {
  using namespace ft;
  using namespace ft::bench;

  Flags flags(argc, argv);
  const auto servers = static_cast<std::int32_t>(
      flags.int_flag("servers", 128, "number of servers"));
  const double dur_ms =
      flags.double_flag("duration_ms", 40, "simulated milliseconds");
  flags.done("Reproduces Figure 6 (update-traffic reduction from higher "
             "notification thresholds).");

  banner("Update-traffic reduction vs notification threshold",
         "Flowtune paper Figure 6 / result (D)");

  Table table({"workload", "load", "th=0.02", "th=0.03", "th=0.04",
               "th=0.05"});
  for (const auto wl :
       {wl::Workload::kHadoop, wl::Workload::kCache, wl::Workload::kWeb}) {
    double best = 0.0;
    for (const double load : {0.4, 0.6, 0.8}) {
      UpdateTrafficConfig base;
      base.servers = servers;
      base.workload = wl;
      base.load = load;
      base.threshold = 0.01;
      base.duration = from_ms(dur_ms);
      const auto baseline = run_update_traffic(base);

      std::vector<std::string> row = {wl::workload_name(wl),
                                      fmt("%.1f", load)};
      for (const double th : {0.02, 0.03, 0.04, 0.05}) {
        UpdateTrafficConfig cfg = base;
        cfg.threshold = th;
        const auto r = run_update_traffic(cfg);
        const double reduction =
            100.0 * (1.0 - static_cast<double>(r.from_allocator_bytes) /
                               static_cast<double>(
                                   baseline.from_allocator_bytes));
        best = std::max(best, reduction);
        row.push_back(fmt("%.0f%%", reduction));
      }
      table.add_row(std::move(row));
    }
    std::printf("  [%s: best reduction %.0f%%]\n", wl::workload_name(wl),
                best);
  }
  table.print();
  std::printf(
      "\nPaper: up to 69%% (Hadoop), 64%% (Cache), 33%% (Web) update-"
      "traffic reduction at threshold 0.05.\n");
  return 0;
}
