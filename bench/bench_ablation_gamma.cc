// Ablation: NED's step-size parameter gamma.
//
// §6.2 states that for gamma in [0.2, 1.5] the network performs
// similarly (the paper runs 0.4). This bench quantifies that robustness
// claim on two axes: (a) iterations to converge on a static multi-
// bottleneck problem, and (b) mean over-allocation under flowlet churn.
// Values outside the paper's range (0.05, 2.0, 2.5) show where the
// claim stops holding.
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "churn_harness.h"
#include "core/exact.h"
#include "core/ned.h"

namespace {

using namespace ft;

// Iterations for NED to reach within 1% of the converged optimum on a
// random 2-tier instance.
int static_convergence_iters(double gamma) {
  std::vector<double> caps;
  for (int i = 0; i < 24; ++i) caps.push_back(10e9);
  core::NumProblem ref_p(caps);
  core::NumProblem p(caps);
  Rng rng(7);
  for (int f = 0; f < 80; ++f) {
    const auto a = static_cast<std::uint32_t>(rng.below(24));
    auto b = static_cast<std::uint32_t>(rng.below(23));
    if (b >= a) ++b;
    const std::vector<LinkId> route{LinkId(a), LinkId(b)};
    ref_p.add_flow(route, core::Utility::log_utility());
    p.add_flow(route, core::Utility::log_utility());
  }
  const core::ExactResult opt = core::solve_exact(ref_p);
  core::NedSolver ned(p, gamma);
  for (int it = 1; it <= 20000; ++it) {
    ned.iterate();
    bool ok = true;
    for (std::size_t s = 0; s < opt.rates.size(); ++s) {
      if (std::abs(ned.rates()[s] - opt.rates[s]) > 0.01 * opt.rates[s]) {
        ok = false;
        break;
      }
    }
    if (ok) return it;
  }
  return -1;
}

}  // namespace

int main(int argc, char** argv) {
  ft::bench::Flags flags(argc, argv);
  const double dur_ms = flags.double_flag("duration_ms", 15,
                                          "churn milliseconds per point");
  flags.done("Gamma-robustness ablation (§6.2 claim).");

  ft::bench::banner("NED gamma ablation",
                    "Flowtune paper §6.2 (gamma in [0.2,1.5] behaves "
                    "similarly; default 0.4)");

  ft::bench::Table table({"gamma", "static conv (iters)",
                          "churn mean over-alloc (Gbps)",
                          "churn max (Gbps)"});
  for (const double gamma :
       {0.05, 0.1, 0.2, 0.4, 0.8, 1.0, 1.2, 1.5, 2.0, 2.5}) {
    const int iters = static_convergence_iters(gamma);
    ft::bench::ChurnSolverConfig cfg;
    cfg.servers = 64;
    cfg.load = 0.6;
    cfg.solver = ft::bench::SolverKind::kNed;
    cfg.gamma = gamma;
    cfg.duration = ft::from_ms(dur_ms);
    const auto churn = ft::bench::run_churn_solver(cfg);
    table.add_row({ft::bench::fmt("%.2f", gamma),
                   iters < 0 ? "diverged" : ft::bench::fmt("%d", iters),
                   ft::bench::fmt("%.2f", churn.overalloc_gbps.mean()),
                   ft::bench::fmt("%.1f", churn.overalloc_gbps.max())});
  }
  table.print();
  std::printf(
      "\nExpected: the paper's *network-level* similarity across "
      "[0.2, 1.5] shows as flat churn over-allocation through 1.5 "
      "(normalization absorbs residual oscillation); strict static "
      "convergence to 1%% holds to gamma ~1; past ~2 the churn metrics "
      "blow up; tiny gammas converge slowly.\n");
  return 0;
}
