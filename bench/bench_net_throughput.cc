// Control-plane throughput over loopback: an endpoint agent blasts
// flowlet start/end notifications at the AllocatorService and we measure
// control messages/sec through the full path (agent framing -> socket ->
// epoll -> deframing -> allocator churn) plus bytes-on-wire with and
// without batching. Single-threaded: the bench interleaves client sends,
// the service's epoll loop and allocation rounds, so every number is
// read race-free.
//
// The multi-client fan-out phase then re-runs the same churn from N
// agent threads (N = 1/2/4/8) against one service thread driving its
// own epoll loop and iteration timer, reporting aggregate msgs/sec
// scaling.
//
//   $ ./bench_net_throughput --messages=400000 --batch=256 --unix=1
#include <algorithm>
#include <atomic>
#include <thread>

#include "bench_util.h"
#include "common/rng.h"
#include "common/wire.h"
#include "core/allocator.h"
#include "net/client.h"
#include "net/epoll_loop.h"
#include "net/server.h"
#include "topo/clos.h"

namespace {

std::vector<double> caps_of(const ft::topo::ClosTopology& clos) {
  std::vector<double> caps;
  for (const auto& l : clos.graph().links()) caps.push_back(l.capacity_bps);
  return caps;
}

// One fan-out run: `nclients` agent threads blast start/end churn at a
// service whose epoll loop (and allocation timer) runs in its own
// thread. Returns aggregate msgs/sec, or < 0 on connection loss.
double run_fanout(const ft::topo::ClosTopology& clos, int nclients,
                  std::int64_t messages_per_client, std::int64_t batch,
                  bool use_unix) {
  using namespace ft;
  core::Allocator alloc(caps_of(clos), core::AllocatorConfig{});
  net::EpollLoop loop;
  net::ServerConfig scfg;
  scfg.tcp_port = use_unix ? -1 : 0;
  if (use_unix) {
    scfg.unix_path = "/tmp/flowtune_bench_fanout_" +
                     std::to_string(nclients) + ".sock";
  }
  scfg.iteration_period_us = 100;  // timer-driven rounds
  net::AllocatorService svc(loop, alloc, clos, scfg);

  const std::int64_t expected =
      static_cast<std::int64_t>(nclients) * messages_per_client;
  std::atomic<bool> all_consumed{false};
  std::atomic<bool> failed{false};
  std::atomic<std::int64_t> t_end_us{0};

  std::thread service([&] {
    const std::int64_t deadline = net::EpollLoop::now_us() + 60'000'000;
    while (!failed.load(std::memory_order_relaxed)) {
      loop.run_once(500);
      const auto consumed = static_cast<std::int64_t>(
          svc.stats().flowlet_starts + svc.stats().flowlet_ends);
      if (consumed >= expected) {
        t_end_us.store(net::EpollLoop::now_us(),
                       std::memory_order_relaxed);
        break;
      }
      if (net::EpollLoop::now_us() > deadline) {
        failed.store(true, std::memory_order_relaxed);
        break;
      }
    }
    all_consumed.store(true, std::memory_order_release);
  });

  const std::int64_t t0 = net::EpollLoop::now_us();
  std::vector<std::thread> clients;
  for (int c = 0; c < nclients; ++c) {
    clients.emplace_back([&, c] {
      net::EndpointAgent agent;
      const bool connected =
          use_unix ? agent.connect_unix(svc.unix_path())
                   : agent.connect_tcp("127.0.0.1", svc.tcp_port());
      if (!connected) {
        failed.store(true, std::memory_order_relaxed);
        return;
      }
      Rng rng(1000 + static_cast<std::uint64_t>(c));
      const int hosts = clos.num_hosts();
      std::vector<std::uint32_t> live;
      std::uint32_t next_key =
          (static_cast<std::uint32_t>(c) << 24) | 1U;
      std::int64_t sent = 0;
      const std::int64_t per_burst = std::max<std::int64_t>(1, batch / 2);
      while (sent < messages_per_client &&
             !failed.load(std::memory_order_relaxed)) {
        for (std::int64_t b = 0;
             b < per_burst && sent < messages_per_client; ++b) {
          const auto src = static_cast<std::uint16_t>(rng.below(hosts));
          auto dst = static_cast<std::uint16_t>(rng.below(hosts - 1));
          if (dst >= src) ++dst;
          agent.flowlet_start(next_key, src, dst);
          live.push_back(next_key++);
          ++sent;
          if (live.size() > 64 && sent < messages_per_client) {
            agent.flowlet_end(live.front());
            live.erase(live.begin());
            ++sent;
          }
        }
        agent.flush();
        if (!agent.poll()) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
      // Keep draining rate updates until the service has consumed
      // everything, then disconnect.
      while (!all_consumed.load(std::memory_order_acquire)) {
        if (!agent.poll()) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
      agent.disconnect();
    });
  }
  for (auto& t : clients) t.join();
  service.join();
  if (failed.load(std::memory_order_relaxed)) return -1.0;
  const double secs =
      static_cast<double>(t_end_us.load(std::memory_order_relaxed) - t0) /
      1e6;
  return static_cast<double>(expected) / secs;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ft;
  bench::Flags flags(argc, argv);
  const auto messages = flags.int_flag("messages", 400'000,
                                       "control messages to send");
  const auto batch = flags.int_flag("batch", 256,
                                    "records per client batch flush");
  const auto period_us = flags.int_flag("period-us", 100,
                                        "allocation round period (us)");
  const bool use_unix = flags.bool_flag("unix", false,
                                        "Unix socket instead of TCP");
  const bool fanout = flags.bool_flag("fanout", true,
                                      "run the multi-client scaling phase");
  const auto fanout_messages = flags.int_flag(
      "fanout-messages", 400'000, "total messages per fan-out run");
  flags.done("Allocator control-plane throughput over loopback.");

  topo::ClosConfig tcfg;
  tcfg.racks = 4;
  tcfg.servers_per_rack = 8;
  tcfg.spines = 2;
  const topo::ClosTopology clos(tcfg);
  core::Allocator alloc(caps_of(clos), core::AllocatorConfig{});

  net::EpollLoop loop;
  net::ServerConfig scfg;
  scfg.tcp_port = use_unix ? -1 : 0;
  if (use_unix) scfg.unix_path = "/tmp/flowtune_bench_net.sock";
  scfg.iteration_period_us = 0;  // rounds interleaved below
  net::AllocatorService svc(loop, alloc, clos, scfg);

  net::EndpointAgent agent;
  const bool ok = use_unix
                      ? agent.connect_unix(scfg.unix_path)
                      : agent.connect_tcp("127.0.0.1", svc.tcp_port());
  if (!ok) {
    std::fprintf(stderr, "connect failed\n");
    return 1;
  }

  bench::banner("Control-plane throughput",
                "messages/sec over loopback, §6.2 encodings");

  // Steady-state churn: every start is eventually ended, so sends are
  // half starts, half ends, in batches of `batch` records per frame.
  const int hosts = clos.num_hosts();
  Rng rng(42);
  std::vector<std::uint32_t> live;
  std::uint32_t next_key = 1;
  const std::int64_t total = messages;
  std::int64_t sent = 0;
  std::int64_t next_round_us = net::EpollLoop::now_us() + period_us;
  const auto t0 = net::EpollLoop::now_us();
  const std::int64_t per_burst = std::max<std::int64_t>(1, batch / 2);
  while (sent < total) {
    for (std::int64_t b = 0; b < per_burst && sent < total; ++b) {
      const auto src = static_cast<std::uint16_t>(rng.below(hosts));
      auto dst = static_cast<std::uint16_t>(rng.below(hosts - 1));
      if (dst >= src) ++dst;
      agent.flowlet_start(next_key, src, dst);
      live.push_back(next_key++);
      ++sent;
      if (live.size() > 64) {
        agent.flowlet_end(live.front());
        live.erase(live.begin());
        ++sent;
      }
    }
    agent.flush();
    if (!agent.poll()) {
      std::fprintf(stderr, "connection lost\n");
      return 1;
    }
    loop.run_once(0);
    const std::int64_t now = net::EpollLoop::now_us();
    if (now >= next_round_us) {
      svc.run_allocation_round();
      next_round_us = now + period_us;
    }
  }
  // Drain: pump until the service has consumed every message sent.
  const std::int64_t drain_deadline = net::EpollLoop::now_us() + 30'000'000;
  while (static_cast<std::int64_t>(svc.stats().flowlet_starts +
                                   svc.stats().flowlet_ends) < sent &&
         net::EpollLoop::now_us() < drain_deadline) {
    if (!agent.poll()) break;
    loop.run_once(1'000);
  }
  const auto t1 = net::EpollLoop::now_us();

  const auto& s = svc.stats();
  const double secs = static_cast<double>(t1 - t0) / 1e6;
  const double msgs_per_sec = static_cast<double>(sent) / secs;
  const auto& as = agent.stats();
  // What the same messages would cost unbatched: one TCP segment per
  // §6.2 message (paper's "plus standard TCP/IP overheads").
  const std::int64_t unbatched_wire =
      static_cast<std::int64_t>(as.starts_sent) *
          wire_bytes_tcp(core::kFlowletStartBytes) +
      static_cast<std::int64_t>(as.ends_sent) *
          wire_bytes_tcp(core::kFlowletEndBytes);

  bench::Table table({"metric", "value"});
  table.add_row({"transport", use_unix ? "unix" : "tcp"});
  table.add_row({"control messages sent", bench::fmt("%lld",
                 static_cast<long long>(sent))});
  table.add_row({"elapsed", bench::fmt("%.3f s", secs)});
  table.add_row({"messages/sec", bench::fmt("%.0f", msgs_per_sec)});
  table.add_row({"server starts/ends", bench::fmt("%llu / %llu",
                 static_cast<unsigned long long>(s.flowlet_starts),
                 static_cast<unsigned long long>(s.flowlet_ends))});
  table.add_row({"allocation rounds", bench::fmt("%llu",
                 static_cast<unsigned long long>(s.iterations))});
  table.add_row({"rate updates pushed", bench::fmt("%llu (coalesced %llu)",
                 static_cast<unsigned long long>(s.updates_sent),
                 static_cast<unsigned long long>(s.updates_coalesced))});
  table.add_row({"client bytes out", bench::fmt("%lld",
                 static_cast<long long>(as.bytes_out))});
  table.add_row({"wire bytes (batched)", bench::fmt("%lld",
                 static_cast<long long>(as.wire_bytes_out))});
  table.add_row({"wire bytes (unbatched)", bench::fmt("%lld",
                 static_cast<long long>(unbatched_wire))});
  table.add_row({"batching saving", bench::fmt("%.1fx",
                 static_cast<double>(unbatched_wire) /
                     static_cast<double>(as.wire_bytes_out > 0
                                             ? as.wire_bytes_out
                                             : 1))});
  table.print();

  bool fanout_ok = true;
  if (fanout) {
    bench::banner("Multi-client fan-out",
                  "N agent threads vs one service thread");
    bench::Table ft_table({"clients", "aggregate msgs/sec", "scaling"});
    double base = 0.0;
    for (const int n : {1, 2, 4, 8}) {
      const double rate =
          run_fanout(clos, n, fanout_messages / n, batch, use_unix);
      if (rate < 0.0) {
        fanout_ok = false;
        ft_table.add_row({bench::fmt("%d", n), "FAILED", "-"});
        continue;
      }
      if (n == 1) base = rate;
      ft_table.add_row({bench::fmt("%d", n),
                        bench::fmt("%.0f", rate),
                        base > 0.0 ? bench::fmt("%.2fx", rate / base)
                                   : "-"});
    }
    ft_table.print();
  }

  const bool pass = msgs_per_sec >= 100'000.0 && fanout_ok;
  std::printf("\n%s: %.0f control messages/sec (target >= 100k)\n",
              pass ? "PASS" : "FAIL", msgs_per_sec);
  return pass ? 0 : 1;
}
