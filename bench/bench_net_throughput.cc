// Control-plane throughput over loopback: an endpoint agent blasts
// flowlet start/end notifications at the AllocatorService and we measure
// control messages/sec through the full path (agent framing -> socket ->
// epoll -> deframing -> allocator churn) plus bytes-on-wire with and
// without batching. Single-threaded: the bench interleaves client sends,
// the service's epoll loop and allocation rounds, so every number is
// read race-free.
//
// The allocation-backend phase then times one allocation round over
// --backend-flows flows (default 100k) through the sequential NedSolver
// backend vs the §5 ParallelNed backend, and the multi-client fan-out
// phase re-runs start/end churn from N agent threads against the
// service at increasing I/O shard counts x ParallelNed thread counts,
// reporting aggregate msgs/sec and allocation round latency (p50/p99).
// Sub-linear fan-out scaling at shards=0 is the PR 2 saturation
// baseline the sharded service exists to fix.
//
// Results are also written to BENCH_net_throughput.json (disable with
// --json=) so the perf trajectory is tracked across PRs.
//
//   $ ./bench_net_throughput --messages=400000 --batch=256 --unix=1
#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>

#include "bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/wire.h"
#include "core/allocator.h"
#include "core/backend.h"
#include "net/client.h"
#include "net/epoll_loop.h"
#include "net/faultjail.h"
#include "net/server.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/stats_socket.h"
#include "topo/clos.h"
#include "topo/partition.h"

namespace {

using namespace ft;

std::vector<double> caps_of(const topo::ClosTopology& clos) {
  std::vector<double> caps;
  for (const auto& l : clos.graph().links()) caps.push_back(l.capacity_bps);
  return caps;
}

core::Allocator make_allocator(const topo::ClosTopology& clos,
                               int alloc_threads, bool pin_cores,
                               obs::MetricsRegistry* reg = nullptr) {
  core::AllocatorConfig acfg;
  acfg.metrics = reg;
  if (alloc_threads <= 0) {
    return core::Allocator(caps_of(clos), acfg);
  }
  core::ParallelConfig pcfg;
  pcfg.num_threads = alloc_threads;
  pcfg.pin.enable = pin_cores;
  return core::Allocator(
      caps_of(clos), acfg,
      core::parallel_backend(
          topo::BlockPartition::make(
              clos, topo::BlockPartition::default_blocks(clos)),
          pcfg));
}

// Round-phase attribution (src/obs/ histograms): where a round's p99
// actually goes -- shard-event ingest, NED solve, update emission, or
// the per-endpoint fan-out -- instead of one opaque round number.
inline constexpr const char* kPhaseMetrics[] = {
    "svc.ingest_us", "core.solve_us", "core.emit_us", "svc.fanout_us"};

// End-to-end update-path spans (agent-side e2e.* histograms, fed by the
// trace-mark echo): the full agent -> shard -> round -> fanout -> agent
// breakdown of one sampled update's latency.
inline constexpr const char* kE2eMetrics[] = {
    "e2e.update_us",  "e2e.queue_us",  "e2e.solve_us", "e2e.emit_us",
    "e2e.fanout_us",  "e2e.service_us", "e2e.wire_us"};

struct PhaseLat {
  const char* metric = nullptr;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t count = 0;
};

struct FanoutResult {
  double msgs_per_sec = -1.0;
  double round_p50_us = 0.0;
  double round_p99_us = 0.0;
  std::uint64_t queue_drops = 0;
  std::uint64_t traces_sent = 0;
  std::uint64_t traces_completed = 0;
  std::uint64_t flight_rounds = 0;
  std::uint64_t flight_promoted = 0;
  std::vector<PhaseLat> phases;
  std::vector<PhaseLat> e2e;  // filled when tracing was sampled
  // Mid-run "json" scrape off the live stats socket ("" if not taken).
  std::string snapshot_json;
};

struct FanoutOpts {
  int shards = 0;
  int alloc_threads = 0;
  bool live_scrape = false;
  // Attach the shared registry to the agents (required for e2e.* spans;
  // costs a couple of clock reads per poll, so the plain sweep leaves
  // it off to stay comparable with earlier PRs' numbers).
  bool agent_metrics = false;
  std::uint32_t trace_sample_every = 0;  // 0 = tracing off
  // Tail-latency injection + flight-recorder dump (the p99 forensics
  // demo): stall every Nth round by `stall_us` inside the fanout phase,
  // then dump the recorder to `flight_dump_path` after the run.
  int stall_every_rounds = 0;
  int stall_us = 0;
  std::string flight_dump_path;
};

// One fan-out run: `nclients` agent threads blast start/end churn at a
// service running `opts.shards` I/O shard threads (0 = inline
// single-thread service) over an `opts.alloc_threads`-thread allocation
// backend (0 = sequential), with the caller loop (accept + allocation
// rounds) in its own thread. Returns aggregate msgs/sec, or < 0 on
// connection loss.
FanoutResult run_fanout(const topo::ClosTopology& clos, int nclients,
                        std::int64_t messages_per_client,
                        std::int64_t batch, bool use_unix, bool pin_cores,
                        const FanoutOpts& opts) {
  const int shards = opts.shards;
  const int alloc_threads = opts.alloc_threads;
  const bool live_scrape = opts.live_scrape;
  obs::MetricsRegistry reg;  // shared by allocator + service (one scrape)
  core::Allocator alloc =
      make_allocator(clos, alloc_threads, pin_cores, &reg);
  net::EpollLoop loop;
  net::ServerConfig scfg;
  scfg.metrics = &reg;
  scfg.pin.enable = pin_cores;
  scfg.tcp_port = use_unix ? -1 : 0;
  if (use_unix) {
    scfg.unix_path = "/tmp/flowtune_bench_fanout_" +
                     std::to_string(nclients) + "_" +
                     std::to_string(shards) + ".sock";
  }
  scfg.iteration_period_us = 100;  // timer-driven rounds
  scfg.num_shards = shards;
  scfg.stall_every_rounds = opts.stall_every_rounds;
  scfg.stall_us = opts.stall_us;
  net::AllocatorService svc(loop, alloc, clos, scfg);
  // Live stats plane, scraped mid-run below exactly as an operator
  // would (served by the service thread's loop).
  std::unique_ptr<obs::StatsSocket> stats_sock;
  const std::string stats_path = "/tmp/flowtune_bench_stats.sock";
  if (live_scrape) {
    stats_sock = std::make_unique<obs::StatsSocket>(loop, stats_path, reg);
  }

  const std::int64_t expected =
      static_cast<std::int64_t>(nclients) * messages_per_client;
  std::atomic<bool> all_consumed{false};
  std::atomic<bool> failed{false};
  std::atomic<std::int64_t> t_end_us{0};

  std::thread service([&] {
    const std::int64_t deadline = net::EpollLoop::now_us() + 120'000'000;
    while (!failed.load(std::memory_order_relaxed)) {
      loop.run_once(500);
      const auto s = svc.stats();
      const auto consumed =
          static_cast<std::int64_t>(s.flowlet_starts + s.flowlet_ends);
      if (consumed >= expected) {
        t_end_us.store(net::EpollLoop::now_us(),
                       std::memory_order_relaxed);
        break;
      }
      if (net::EpollLoop::now_us() > deadline) {
        failed.store(true, std::memory_order_relaxed);
        break;
      }
    }
    all_consumed.store(true, std::memory_order_release);
  });

  const std::int64_t t0 = net::EpollLoop::now_us();
  std::vector<std::thread> clients;
  std::atomic<std::uint64_t> traces_sent{0};
  std::atomic<std::uint64_t> traces_completed{0};
  for (int c = 0; c < nclients; ++c) {
    clients.emplace_back([&, c] {
      net::AgentConfig acfg;
      if (opts.agent_metrics) acfg.metrics = &reg;
      acfg.trace_sample_every = opts.trace_sample_every;
      net::EndpointAgent agent(acfg);
      const bool connected =
          use_unix ? agent.connect_unix(svc.unix_path())
                   : agent.connect_tcp("127.0.0.1", svc.tcp_port());
      if (!connected) {
        failed.store(true, std::memory_order_relaxed);
        return;
      }
      Rng rng(1000 + static_cast<std::uint64_t>(c));
      const int hosts = clos.num_hosts();
      std::vector<std::uint32_t> live;
      std::uint32_t next_key =
          (static_cast<std::uint32_t>(c) << 24) | 1U;
      std::int64_t sent = 0;
      const std::int64_t per_burst = std::max<std::int64_t>(1, batch / 2);
      while (sent < messages_per_client &&
             !failed.load(std::memory_order_relaxed)) {
        for (std::int64_t b = 0;
             b < per_burst && sent < messages_per_client; ++b) {
          const auto src = static_cast<std::uint16_t>(rng.below(hosts));
          auto dst = static_cast<std::uint16_t>(rng.below(hosts - 1));
          if (dst >= src) ++dst;
          agent.flowlet_start(next_key, src, dst);
          live.push_back(next_key++);
          ++sent;
          if (live.size() > 64 && sent < messages_per_client) {
            agent.flowlet_end(live.front());
            live.erase(live.begin());
            ++sent;
          }
        }
        agent.flush();
        if (!agent.poll()) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
      // Keep draining rate updates until the service has consumed
      // everything, then disconnect.
      while (!all_consumed.load(std::memory_order_acquire)) {
        if (!agent.poll()) {
          failed.store(true, std::memory_order_relaxed);
          return;
        }
      }
      traces_sent.fetch_add(agent.stats().traces_sent,
                            std::memory_order_relaxed);
      traces_completed.fetch_add(agent.stats().traces_completed,
                                 std::memory_order_relaxed);
      agent.disconnect();
    });
  }
  FanoutResult r;
  if (live_scrape) {
    // Wait until the run is demonstrably underway, then pull a "json"
    // snapshot through the socket while shards and clients are hot. The
    // service thread stops ticking its loop once everything is
    // consumed, so only scrape while the run is live (the scrape helper
    // itself has a receive timeout as a backstop).
    while (!all_consumed.load(std::memory_order_acquire) &&
           static_cast<std::int64_t>(svc.stats().flowlet_starts) <
               expected / 4) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (!all_consumed.load(std::memory_order_acquire)) {
      r.snapshot_json = obs::scrape_stats_socket(stats_path, "json");
    }
  }
  for (auto& t : clients) t.join();
  service.join();
  if (live_scrape && r.snapshot_json.empty()) {
    // The run beat the scraper (tiny --fanout-messages): snapshot the
    // registry directly so the artifact is never empty.
    r.snapshot_json = obs::to_json(reg);
  }
  if (!opts.flight_dump_path.empty()) {
    // Black-box forensics artifact: both rings, with the promoted slow
    // rounds carrying their breach threshold. Safe here: the service
    // thread (the only writer) has joined.
    if (svc.flight().dump_to_file(opts.flight_dump_path)) {
      std::printf("flight recorder dump -> %s (%llu rounds, %llu "
                  "promoted)\n",
                  opts.flight_dump_path.c_str(),
                  static_cast<unsigned long long>(
                      svc.flight().rounds_seen()),
                  static_cast<unsigned long long>(svc.flight().promoted()));
    }
  }
  if (failed.load(std::memory_order_relaxed)) return r;
  const double secs =
      static_cast<double>(t_end_us.load(std::memory_order_relaxed) - t0) /
      1e6;
  r.msgs_per_sec = static_cast<double>(expected) / secs;
  PercentileSampler lat;
  for (const double us : svc.round_latency_us()) lat.add(us);
  r.round_p50_us = lat.p50();
  r.round_p99_us = lat.p99();
  r.queue_drops = svc.stats().queue_drops;
  r.traces_sent = traces_sent.load(std::memory_order_relaxed);
  r.traces_completed = traces_completed.load(std::memory_order_relaxed);
  r.flight_rounds = svc.flight().rounds_seen();
  r.flight_promoted = svc.flight().promoted();
  for (const char* name : kPhaseMetrics) {
    const obs::HistoSnapshot h = reg.histo(name).snapshot();
    r.phases.push_back({name, h.p50(), h.p99(), h.count});
  }
  if (opts.trace_sample_every > 0) {
    for (const char* name : kE2eMetrics) {
      const obs::HistoSnapshot h = reg.histo(name).snapshot();
      r.e2e.push_back({name, h.p50(), h.p99(), h.count});
    }
  }
  return r;
}

// Times one allocation round (NED + F-NORM + update emission) over
// `flows` random host-pair flows, returning mean microseconds over
// `rounds` timed rounds after one warmup.
double backend_round_us(const topo::ClosTopology& clos, int alloc_threads,
                        std::int64_t flows, int rounds, bool pin_cores) {
  core::Allocator alloc = make_allocator(clos, alloc_threads, pin_cores);
  alloc.reserve(static_cast<std::size_t>(flows));
  Rng rng(99);
  const int hosts = clos.num_hosts();
  std::vector<LinkId> route;
  for (std::int64_t key = 1; key <= flows; ++key) {
    const auto src = static_cast<std::int32_t>(rng.below(hosts));
    auto dst = static_cast<std::int32_t>(rng.below(hosts - 1));
    if (dst >= src) ++dst;
    const auto p = clos.host_path(clos.host(src), clos.host(dst),
                                  static_cast<std::uint64_t>(key));
    route.assign(p.begin(), p.end());
    alloc.flowlet_start(static_cast<std::uint64_t>(key), route);
  }
  std::vector<core::RateUpdate> sink;
  alloc.run_iteration(sink);  // warmup: first-allocation notifications
  double total_us = 0.0;
  for (int i = 0; i < rounds; ++i) {
    sink.clear();
    const std::int64_t t0 = net::EpollLoop::now_us();
    alloc.run_iteration(sink);
    total_us += static_cast<double>(net::EpollLoop::now_us() - t0);
  }
  return total_us / rounds;
}

// --- Recovery drills (fault-tolerant control plane) -----------------
//
// Kill-restart: N auto-reconnect agents converge against an inline
// service, the service dies and is instantly recreated on the same port
// with a *fresh* allocator, and the drill measures, per agent, the time
// from the kill to the re-established connection (p50/p99 across the
// fleet), the time until the fresh allocator's rates match the pre-kill
// allocation again (pure replay-driven warm restart), and the fraction
// of fleet-time spent not-kConnected. Single-threaded and seeded, so
// the numbers are comparable across runs.

struct KillRestartResult {
  bool ok = false;
  double reconnect_p50_us = 0.0;
  double reconnect_p99_us = 0.0;
  double reconverge_us = 0.0;   // kill -> rates match pre-kill again
  double degraded_frac = 0.0;   // sum(degraded_us) / (agents * window)
  std::uint64_t replayed_starts = 0;
  std::uint64_t queue_drops_on_close = 0;
};

KillRestartResult run_kill_restart_drill(const topo::ClosTopology& clos,
                                         int nagents,
                                         int flows_per_agent) {
  KillRestartResult r;
  net::EpollLoop loop;
  core::AllocatorConfig acfg0;
  acfg0.threshold = 0.0;  // re-emit every round: convergence observable
  auto alloc = std::make_unique<core::Allocator>(caps_of(clos), acfg0);
  net::ServerConfig scfg;
  scfg.tcp_port = 0;
  scfg.iteration_period_us = 0;  // rounds driven by the drill loop
  scfg.num_shards = 0;
  scfg.heartbeat_period_us = 2'000;
  scfg.rate_lease_us = 100'000;
  auto svc =
      std::make_unique<net::AllocatorService>(loop, *alloc, clos, scfg);
  const int port = svc->tcp_port();

  const auto key_of = [](int a, int f) {
    return (static_cast<std::uint32_t>(a) << 16) |
           static_cast<std::uint32_t>(f + 1);
  };
  const int hosts = clos.num_hosts();
  Rng rng(2026);
  std::vector<std::unique_ptr<net::EndpointAgent>> agents;
  for (int a = 0; a < nagents; ++a) {
    net::AgentConfig acfg;
    acfg.auto_reconnect = true;
    acfg.reconnect_backoff_min_us = 2'000;
    acfg.reconnect_backoff_max_us = 50'000;
    acfg.reconnect_seed = 0xD811AU + static_cast<std::uint64_t>(a);
    acfg.heartbeat_period_us = 2'000;
    acfg.peer_timeout_us = 20'000;
    agents.push_back(std::make_unique<net::EndpointAgent>(acfg));
    if (!agents.back()->connect_tcp("127.0.0.1", port)) return r;
    for (int f = 0; f < flows_per_agent; ++f) {
      const auto src = static_cast<std::uint16_t>(rng.below(hosts));
      auto dst = static_cast<std::uint16_t>(rng.below(hosts - 1));
      if (dst >= src) ++dst;
      agents.back()->flowlet_start(key_of(a, f), src, dst);
    }
    agents.back()->flush();
  }
  const auto pump = [&] {
    svc->run_allocation_round();
    loop.run_once(0);
    for (auto& a : agents) a->poll();
  };
  for (int i = 0; i < 300; ++i) pump();

  // The allocation a fresh service must reconverge to from replay alone.
  std::vector<std::vector<std::uint16_t>> ref(nagents);
  for (int a = 0; a < nagents; ++a) {
    for (int f = 0; f < flows_per_agent; ++f) {
      ref[a].push_back(agents[a]->rate_code(key_of(a, f)));
    }
  }

  const std::int64_t t_kill = net::EpollLoop::now_us();
  svc.reset();
  alloc = std::make_unique<core::Allocator>(caps_of(clos), acfg0);
  scfg.tcp_port = port;  // warm restart: same endpoint, zero state
  svc = std::make_unique<net::AllocatorService>(loop, *alloc, clos, scfg);

  std::vector<std::int64_t> reconnected_at(
      static_cast<std::size_t>(nagents), 0);
  const std::int64_t deadline = t_kill + 10'000'000;
  std::int64_t t_reconverged = 0;
  while (net::EpollLoop::now_us() < deadline) {
    pump();
    const std::int64_t now = net::EpollLoop::now_us();
    bool all_reconnected = true;
    for (int a = 0; a < nagents; ++a) {
      auto& at = reconnected_at[static_cast<std::size_t>(a)];
      if (at == 0 && agents[a]->stats().reconnects > 0 &&
          agents[a]->conn_state() == net::ConnState::kConnected) {
        at = now;
      }
      if (at == 0) all_reconnected = false;
    }
    if (!all_reconnected) continue;
    bool converged = true;
    for (int a = 0; a < nagents && converged; ++a) {
      for (int f = 0; f < flows_per_agent; ++f) {
        const int code = agents[a]->rate_code(key_of(a, f));
        const int want = ref[a][static_cast<std::size_t>(f)];
        if (code - want > 2 || want - code > 2) {
          converged = false;
          break;
        }
      }
    }
    if (converged) {
      t_reconverged = now;
      break;
    }
  }
  if (t_reconverged == 0) return r;  // drill timed out: r.ok == false

  PercentileSampler lat;
  std::int64_t degraded_total = 0;
  for (int a = 0; a < nagents; ++a) {
    lat.add(static_cast<double>(
        reconnected_at[static_cast<std::size_t>(a)] - t_kill));
    degraded_total += agents[a]->stats().degraded_us;
    r.replayed_starts += agents[a]->stats().replayed_starts;
    r.queue_drops_on_close += agents[a]->stats().queue_drops_on_close;
  }
  r.reconnect_p50_us = lat.p50();
  r.reconnect_p99_us = lat.p99();
  r.reconverge_us = static_cast<double>(t_reconverged - t_kill);
  r.degraded_frac =
      static_cast<double>(degraded_total) /
      (static_cast<double>(nagents) *
       static_cast<double>(t_reconverged - t_kill));
  r.ok = true;
  return r;
}

// Lease drill: one agent behind the FaultJail with >= 50% of
// service->agent frames dropped. Once the allocation settles only
// heartbeats re-arm the lease, so drop streaks expire it: the agent
// degrades and decays its rates toward the fallback. The drill reports
// how often leases expired and how quickly the agent re-armed once the
// drops stopped.
struct LeaseDrillResult {
  bool ok = false;
  std::uint64_t frames_down = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t lease_expiries = 0;
  std::uint64_t fallback_enters = 0;  // on_fallback(entering=true) calls
  double degraded_frac = 0.0;         // of the dropping window
  double reclaim_us = 0.0;            // drops off -> lease fresh again
};

LeaseDrillResult run_lease_drill(const topo::ClosTopology& clos,
                                 double drop_frac,
                                 std::int64_t window_us) {
  LeaseDrillResult r;
  net::EpollLoop loop;
  core::Allocator alloc(caps_of(clos), core::AllocatorConfig{});
  net::ServerConfig scfg;
  scfg.tcp_port = 0;
  scfg.iteration_period_us = 0;
  scfg.num_shards = 0;
  scfg.heartbeat_period_us = 1'000;
  scfg.rate_lease_us = 4'000;
  net::AllocatorService svc(loop, alloc, clos, scfg);

  net::FaultJailConfig jcfg;
  jcfg.upstream_port = svc.tcp_port();
  jcfg.seed = 0xF417;
  net::FaultJail jail(loop, jcfg);

  std::uint64_t fallback_enters = 0;
  net::AgentConfig acfg;
  acfg.fallback_rate_bps = 1e6;
  acfg.fallback_decay = 0.5;
  acfg.fallback_decay_interval_us = 1'000;
  acfg.on_fallback = [&fallback_enters](std::uint32_t, double,
                                        bool entering) {
    if (entering) ++fallback_enters;
  };
  net::EndpointAgent agent(acfg);
  if (!agent.connect_tcp("127.0.0.1", jail.port())) return r;
  const int hosts = clos.num_hosts();
  Rng rng(7);
  for (int f = 0; f < 8; ++f) {
    const auto src = static_cast<std::uint16_t>(rng.below(hosts));
    auto dst = static_cast<std::uint16_t>(rng.below(hosts - 1));
    if (dst >= src) ++dst;
    agent.flowlet_start(static_cast<std::uint32_t>(f + 1), src, dst);
  }
  agent.flush();
  const auto pump = [&] {
    svc.run_allocation_round();
    loop.run_once(1'000);  // let the heartbeat timer fire
    agent.poll();
  };
  for (int i = 0; i < 200; ++i) pump();
  if (!agent.lease_fresh()) return r;

  jail.set_drop_down_frac(drop_frac);
  const std::int64_t t0 = net::EpollLoop::now_us();
  const std::int64_t degraded_before = agent.stats().degraded_us;
  while (net::EpollLoop::now_us() - t0 < window_us) pump();
  const std::int64_t window = net::EpollLoop::now_us() - t0;
  r.lease_expiries = agent.stats().lease_expiries;
  r.degraded_frac =
      static_cast<double>(agent.stats().degraded_us - degraded_before) /
      static_cast<double>(window);

  jail.set_drop_down_frac(0.0);
  const std::int64_t t_off = net::EpollLoop::now_us();
  const std::int64_t reclaim_deadline = t_off + 5'000'000;
  while (net::EpollLoop::now_us() < reclaim_deadline) {
    pump();
    if (agent.conn_state() == net::ConnState::kConnected &&
        agent.lease_fresh()) {
      break;
    }
  }
  if (!agent.lease_fresh()) return r;
  r.reclaim_us = static_cast<double>(net::EpollLoop::now_us() - t_off);
  r.frames_down = jail.stats().frames_down;
  r.frames_dropped = jail.stats().frames_dropped;
  r.fallback_enters = fallback_enters;
  r.ok = true;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ft;
  bench::Flags flags(argc, argv);
  const auto messages = flags.int_flag("messages", 400'000,
                                       "control messages to send");
  const auto batch = flags.int_flag("batch", 256,
                                    "records per client batch flush");
  const auto period_us = flags.int_flag("period-us", 100,
                                        "allocation round period (us)");
  const bool use_unix = flags.bool_flag("unix", false,
                                        "Unix socket instead of TCP");
  const bool fanout = flags.bool_flag("fanout", true,
                                      "run the multi-client scaling phase");
  const auto fanout_messages = flags.int_flag(
      "fanout-messages", 400'000, "total messages per fan-out run");
  const auto fanout_clients = flags.int_flag(
      "fanout-clients", 8, "agent threads per fan-out run");
  const bool backend_phase = flags.bool_flag(
      "backend", true, "run the allocation-backend comparison phase");
  const auto backend_flows = flags.int_flag(
      "backend-flows", 100'000, "flows for the backend round comparison");
  const auto alloc_threads = flags.int_flag(
      "alloc-threads", 0,
      "ParallelNed threads for the backend phase (0 = hardware)");
  const auto json_path = flags.string_flag(
      "json", "BENCH_net_throughput.json",
      "machine-readable results file (empty disables)");
  const auto snapshot_path = flags.string_flag(
      "metrics-snapshot", "metrics_snapshot.json",
      "write a mid-run stats-socket scrape of the largest fan-out "
      "config here (empty disables)");
  const auto trace_sample = flags.int_flag(
      "trace-sample", 64,
      "sample every Nth flowlet start for e2e update-path tracing in "
      "the overhead phase (0 disables the phase)");
  const auto flight_dump_path = flags.string_flag(
      "flight-dump", "flight_dump.json",
      "flight-recorder dump from the injected-stall demo run (empty "
      "disables the phase)");
  const bool recovery = flags.bool_flag(
      "recovery", true,
      "run the recovery drills (service kill-restart + rate-lease "
      "fallback under frame drops)");
  const auto recovery_agents = flags.int_flag(
      "recovery-agents", 8, "agents in the kill-restart drill");
  const auto recovery_flows = flags.int_flag(
      "recovery-flows", 16, "flows per agent in the kill-restart drill");
  const bool pin_cores = flags.bool_flag(
      "pin-cores", false,
      "pin solver workers by FlowBlock row and I/O shards to the same "
      "cores (§6.1 co-scheduling)");
  const bool strict = flags.bool_flag(
      "strict", false,
      "gate on scaling/backend speedup regardless of core count");
  flags.done("Allocator control-plane throughput over loopback.");

  topo::ClosConfig tcfg;
  tcfg.racks = 4;
  tcfg.servers_per_rack = 8;
  tcfg.spines = 2;
  const topo::ClosTopology clos(tcfg);
  core::Allocator alloc(caps_of(clos), core::AllocatorConfig{});

  const int hw = std::max(
      1, static_cast<int>(std::thread::hardware_concurrency()));
  bench::Json json;
  json.set("hardware_concurrency", hw);
  {
    const std::int32_t blocks = topo::BlockPartition::default_blocks(clos);
    core::CpuMapConfig pin_cfg;
    pin_cfg.enable = pin_cores;
    const std::string layout = core::CpuMap::make(blocks, pin_cfg).describe();
    json.add_run_metadata(
        layout,
        bench::fmt("blocks=%d alloc_threads=%lld shards_swept pin=%d",
                   blocks, static_cast<long long>(alloc_threads),
                   pin_cores ? 1 : 0));
  }

  net::EpollLoop loop;
  net::ServerConfig scfg;
  scfg.tcp_port = use_unix ? -1 : 0;
  if (use_unix) scfg.unix_path = "/tmp/flowtune_bench_net.sock";
  scfg.iteration_period_us = 0;  // rounds interleaved below
  net::AllocatorService svc(loop, alloc, clos, scfg);

  net::EndpointAgent agent;
  const bool ok = use_unix
                      ? agent.connect_unix(scfg.unix_path)
                      : agent.connect_tcp("127.0.0.1", svc.tcp_port());
  if (!ok) {
    std::fprintf(stderr, "connect failed\n");
    return 1;
  }

  bench::banner("Control-plane throughput",
                "messages/sec over loopback, §6.2 encodings");

  // Steady-state churn: every start is eventually ended, so sends are
  // half starts, half ends, in batches of `batch` records per frame.
  const int hosts = clos.num_hosts();
  Rng rng(42);
  std::vector<std::uint32_t> live;
  std::uint32_t next_key = 1;
  const std::int64_t total = messages;
  std::int64_t sent = 0;
  std::int64_t next_round_us = net::EpollLoop::now_us() + period_us;
  const auto t0 = net::EpollLoop::now_us();
  const std::int64_t per_burst = std::max<std::int64_t>(1, batch / 2);
  while (sent < total) {
    for (std::int64_t b = 0; b < per_burst && sent < total; ++b) {
      const auto src = static_cast<std::uint16_t>(rng.below(hosts));
      auto dst = static_cast<std::uint16_t>(rng.below(hosts - 1));
      if (dst >= src) ++dst;
      agent.flowlet_start(next_key, src, dst);
      live.push_back(next_key++);
      ++sent;
      if (live.size() > 64) {
        agent.flowlet_end(live.front());
        live.erase(live.begin());
        ++sent;
      }
    }
    agent.flush();
    if (!agent.poll()) {
      std::fprintf(stderr, "connection lost\n");
      return 1;
    }
    loop.run_once(0);
    const std::int64_t now = net::EpollLoop::now_us();
    if (now >= next_round_us) {
      svc.run_allocation_round();
      next_round_us = now + period_us;
    }
  }
  // Drain: pump until the service has consumed every message sent.
  const std::int64_t drain_deadline = net::EpollLoop::now_us() + 30'000'000;
  while (static_cast<std::int64_t>(svc.stats().flowlet_starts +
                                   svc.stats().flowlet_ends) < sent &&
         net::EpollLoop::now_us() < drain_deadline) {
    if (!agent.poll()) break;
    loop.run_once(1'000);
  }
  const auto t1 = net::EpollLoop::now_us();

  const auto s = svc.stats();
  const double secs = static_cast<double>(t1 - t0) / 1e6;
  const double msgs_per_sec = static_cast<double>(sent) / secs;
  const auto& as = agent.stats();
  // What the same messages would cost unbatched: one TCP segment per
  // §6.2 message (paper's "plus standard TCP/IP overheads").
  const std::int64_t unbatched_wire =
      static_cast<std::int64_t>(as.starts_sent) *
          wire_bytes_tcp(core::kFlowletStartBytes) +
      static_cast<std::int64_t>(as.ends_sent) *
          wire_bytes_tcp(core::kFlowletEndBytes);

  bench::Table table({"metric", "value"});
  table.add_row({"transport", use_unix ? "unix" : "tcp"});
  table.add_row({"control messages sent", bench::fmt("%lld",
                 static_cast<long long>(sent))});
  table.add_row({"elapsed", bench::fmt("%.3f s", secs)});
  table.add_row({"messages/sec", bench::fmt("%.0f", msgs_per_sec)});
  table.add_row({"server starts/ends", bench::fmt("%llu / %llu",
                 static_cast<unsigned long long>(s.flowlet_starts),
                 static_cast<unsigned long long>(s.flowlet_ends))});
  table.add_row({"allocation rounds", bench::fmt("%llu",
                 static_cast<unsigned long long>(s.iterations))});
  table.add_row({"rate updates pushed", bench::fmt("%llu (coalesced %llu)",
                 static_cast<unsigned long long>(s.updates_sent),
                 static_cast<unsigned long long>(s.updates_coalesced))});
  table.add_row({"client bytes out", bench::fmt("%lld",
                 static_cast<long long>(as.bytes_out))});
  table.add_row({"wire bytes (batched)", bench::fmt("%lld",
                 static_cast<long long>(as.wire_bytes_out))});
  table.add_row({"wire bytes (unbatched)", bench::fmt("%lld",
                 static_cast<long long>(unbatched_wire))});
  table.add_row({"batching saving", bench::fmt("%.1fx",
                 static_cast<double>(unbatched_wire) /
                     static_cast<double>(as.wire_bytes_out > 0
                                             ? as.wire_bytes_out
                                             : 1))});
  table.print();

  {
    auto& j = json.child("single_thread");
    j.set("transport", use_unix ? "unix" : "tcp");
    j.set("messages", sent);
    j.set("msgs_per_sec", msgs_per_sec);
    j.set("allocation_rounds", s.iterations);
    j.set("updates_sent", s.updates_sent);
    j.set("updates_coalesced", s.updates_coalesced);
    j.set("wire_bytes_batched", as.wire_bytes_out);
    j.set("wire_bytes_unbatched", unbatched_wire);
  }

  // --- Allocation backend: sequential vs ParallelNed round time at
  // service scale (the acceptance point for the §5 engine behind the
  // live allocator).
  bool backend_ok = true;
  if (backend_phase) {
    bench::banner("Allocation backend round",
                  "§5 multicore NED+F-NORM vs sequential, one round");
    const int par_threads =
        alloc_threads > 0 ? static_cast<int>(alloc_threads) : hw;
    const int rounds = backend_flows >= 50'000 ? 5 : 20;
    const double seq_us =
        backend_round_us(clos, 0, backend_flows, rounds, pin_cores);
    const double par_us =
        backend_round_us(clos, par_threads, backend_flows, rounds,
                         pin_cores);
    const double speedup = par_us > 0.0 ? seq_us / par_us : 0.0;
    bench::Table bt({"backend", "threads", "round time", "speedup"});
    bt.add_row({"sequential", "1", bench::fmt("%.0f us", seq_us), "1.00x"});
    bt.add_row({bench::fmt("parallel (%d blocks)", topo::BlockPartition::default_blocks(clos)),
                bench::fmt("%d", par_threads),
                bench::fmt("%.0f us", par_us),
                bench::fmt("%.2fx", speedup)});
    bt.print();
    auto& j = json.child("backend_round");
    j.set("flows", backend_flows);
    j.set("blocks", topo::BlockPartition::default_blocks(clos));
    j.set("alloc_threads", par_threads);
    j.set("sequential_round_us", seq_us);
    j.set("parallel_round_us", par_us);
    j.set("speedup", speedup);
    // Only gate the speedup where there are cores to scale onto with
    // headroom beyond the bench's own thread count -- a shared 4-vCPU
    // CI runner is too noisy to fail PRs on (the JSON still tracks it).
    if (strict || (hw >= 8 && backend_flows >= 100'000)) {
      backend_ok = par_us < seq_us;
      if (!backend_ok) {
        std::printf("backend FAIL: parallel round (%.0f us) not faster "
                    "than sequential (%.0f us) on %d cores\n",
                    par_us, seq_us, hw);
      }
    }
  }

  // --- Fan-out: N agent threads vs the service at increasing I/O shard
  // counts x allocation backend threads.
  bool fanout_ok = true;
  if (fanout) {
    bench::banner("Multi-client fan-out",
                  "N agents vs service shards x ParallelNed threads");
    const int nclients = static_cast<int>(fanout_clients);
    struct Config {
      int shards;
      int alloc_threads;
    };
    std::vector<Config> sweep = {{0, 0}, {1, 0}, {2, 0}, {4, 0}};
    const int par_threads =
        alloc_threads > 0 ? static_cast<int>(alloc_threads)
                          : std::min(hw, 4);
    sweep.push_back({4, par_threads});
    bench::Table ft_table({"shards", "alloc threads", "clients",
                           "aggregate msgs/sec", "scaling",
                           "round p50", "round p99"});
    double base = 0.0;
    double best_sharded = 0.0;
    std::vector<PhaseLat> last_phases;
    std::string snapshot_json;
    for (const Config& c : sweep) {
      FanoutOpts opts;
      opts.shards = c.shards;
      opts.alloc_threads = c.alloc_threads;
      // Scrape the live stats plane during the largest config's run.
      opts.live_scrape = !snapshot_path.empty() && &c == &sweep.back();
      const bool live_scrape = opts.live_scrape;
      const FanoutResult r =
          run_fanout(clos, nclients, fanout_messages / nclients, batch,
                     use_unix, pin_cores, opts);
      if (live_scrape) {
        last_phases = r.phases;
        snapshot_json = r.snapshot_json;
      }
      auto& j = json.append("fanout");
      j.set("shards", c.shards);
      j.set("alloc_threads", c.alloc_threads);
      j.set("clients", nclients);
      if (r.msgs_per_sec < 0.0) {
        fanout_ok = false;
        j.set("failed", true);
        ft_table.add_row({bench::fmt("%d", c.shards),
                          bench::fmt("%d", c.alloc_threads),
                          bench::fmt("%d", nclients), "FAILED", "-", "-",
                          "-"});
        continue;
      }
      if (c.shards == 0 && c.alloc_threads == 0) base = r.msgs_per_sec;
      if (c.shards >= 4) {
        best_sharded = std::max(best_sharded, r.msgs_per_sec);
      }
      j.set("msgs_per_sec", r.msgs_per_sec);
      j.set("round_p50_us", r.round_p50_us);
      j.set("round_p99_us", r.round_p99_us);
      j.set("queue_drops", r.queue_drops);
      auto& pj = j.child("phases");
      for (const PhaseLat& p : r.phases) {
        auto& e = pj.child(p.metric);
        e.set("p50_us", p.p50_us);
        e.set("p99_us", p.p99_us);
        e.set("count", p.count);
      }
      ft_table.add_row(
          {bench::fmt("%d", c.shards), bench::fmt("%d", c.alloc_threads),
           bench::fmt("%d", nclients),
           bench::fmt("%.0f", r.msgs_per_sec),
           base > 0.0 ? bench::fmt("%.2fx", r.msgs_per_sec / base) : "-",
           bench::fmt("%.0f us", r.round_p50_us),
           bench::fmt("%.0f us", r.round_p99_us)});
    }
    ft_table.print();
    json.set("fanout_base_msgs_per_sec", base);
    json.set("fanout_best_sharded_msgs_per_sec", best_sharded);
    if (!last_phases.empty()) {
      std::printf("\nround latency attribution (largest config):\n");
      bench::Table pt({"phase", "p50", "p99", "samples"});
      for (const PhaseLat& p : last_phases) {
        pt.add_row({p.metric, bench::fmt("%.1f us", p.p50_us),
                    bench::fmt("%.1f us", p.p99_us),
                    bench::fmt("%llu",
                               static_cast<unsigned long long>(p.count))});
      }
      pt.print();
    }
    if (!snapshot_path.empty() && !snapshot_json.empty()) {
      if (std::FILE* f = std::fopen(snapshot_path.c_str(), "w")) {
        std::fwrite(snapshot_json.data(), 1, snapshot_json.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("mid-run metrics snapshot -> %s\n",
                    snapshot_path.c_str());
      }
    }
    // The acceptance bar -- >= 2x over the single-threaded service with
    // >= 4 shards at N=8 clients -- only binds where the hardware has
    // the cores to show it (clients + shards + service comfortably
    // placed; pass --strict to force the gate).
    if (base > 0.0 && fanout_ok) {
      const double scaling = best_sharded / base;
      const bool gated = strict || hw >= 8;
      std::printf("\nsharded scaling: %.2fx over single-threaded "
                  "service (target >= 2x, %s on %d cores)\n",
                  scaling, gated ? "gated" : "advisory", hw);
      if (gated && scaling < 2.0) fanout_ok = false;
    }
  }

  // --- End-to-end tracing: the same largest config run twice -- trace
  // sampling off vs every Nth start -- so the overhead number isolates
  // the sampling itself (both arms carry agent metrics). The traced run
  // yields the agent -> shard -> round -> fanout -> agent span
  // breakdown from real echoed trace marks.
  if (fanout && trace_sample > 0) {
    bench::banner("E2E update-path tracing",
                  "per-hop span breakdown + sampling overhead");
    const int nclients = static_cast<int>(fanout_clients);
    const int par_threads =
        alloc_threads > 0 ? static_cast<int>(alloc_threads)
                          : std::min(hw, 4);
    FanoutOpts off;
    off.shards = 4;
    off.alloc_threads = par_threads;
    off.agent_metrics = true;
    FanoutOpts on = off;
    on.trace_sample_every = static_cast<std::uint32_t>(trace_sample);
    const FanoutResult r_off =
        run_fanout(clos, nclients, fanout_messages / nclients, batch,
                   use_unix, pin_cores, off);
    const FanoutResult r_on =
        run_fanout(clos, nclients, fanout_messages / nclients, batch,
                   use_unix, pin_cores, on);
    auto& j = json.child("tracing");
    j.set("sample_every", trace_sample);
    if (r_off.msgs_per_sec > 0.0 && r_on.msgs_per_sec > 0.0) {
      const double overhead_pct =
          (r_off.msgs_per_sec - r_on.msgs_per_sec) / r_off.msgs_per_sec *
          100.0;
      std::printf("msgs/sec off=%.0f on=%.0f (1/%lld sampling) -> "
                  "overhead %.2f%% (target < 2%%)\n",
                  r_off.msgs_per_sec, r_on.msgs_per_sec,
                  static_cast<long long>(trace_sample), overhead_pct);
      std::printf("traces: %llu sampled, %llu completed echoes\n",
                  static_cast<unsigned long long>(r_on.traces_sent),
                  static_cast<unsigned long long>(r_on.traces_completed));
      bench::Table et({"span", "p50", "p99", "samples"});
      for (const PhaseLat& p : r_on.e2e) {
        et.add_row({p.metric, bench::fmt("%.1f us", p.p50_us),
                    bench::fmt("%.1f us", p.p99_us),
                    bench::fmt("%llu",
                               static_cast<unsigned long long>(p.count))});
      }
      et.print();
      j.set("msgs_per_sec_off", r_off.msgs_per_sec);
      j.set("msgs_per_sec_on", r_on.msgs_per_sec);
      j.set("overhead_pct", overhead_pct);
      j.set("traces_sent", r_on.traces_sent);
      j.set("traces_completed", r_on.traces_completed);
      auto& ej = j.child("e2e");
      for (const PhaseLat& p : r_on.e2e) {
        auto& e = ej.child(p.metric);
        e.set("p50_us", p.p50_us);
        e.set("p99_us", p.p99_us);
        e.set("count", p.count);
        if (std::string(p.metric) == "e2e.update_us") {
          // Top-level alias the regression checker tracks across PRs.
          json.set("e2e_p50_us", p.p50_us);
          json.set("e2e_p99_us", p.p99_us);
        }
      }
    } else {
      j.set("failed", true);
    }
  }

  // --- Flight recorder demo: a short run with a stall injected into
  // every 200th round's fanout phase; the promoted rounds land in the
  // black box with phase attribution, dumped as the CI artifact.
  if (fanout && !flight_dump_path.empty()) {
    bench::banner("Flight recorder",
                  "injected-stall tail forensics -> flight dump");
    const int nclients = static_cast<int>(fanout_clients);
    FanoutOpts opts;
    opts.shards = 4;
    opts.alloc_threads = 0;
    opts.stall_every_rounds = 200;
    opts.stall_us = 3000;
    opts.flight_dump_path = flight_dump_path;
    const std::int64_t demo_messages =
        std::min<std::int64_t>(fanout_messages, 200'000);
    const FanoutResult r =
        run_fanout(clos, nclients, demo_messages / nclients, batch,
                   use_unix, pin_cores, opts);
    auto& j = json.child("flight_demo");
    j.set("stall_every_rounds", opts.stall_every_rounds);
    j.set("stall_us", opts.stall_us);
    j.set("rounds", r.flight_rounds);
    j.set("promoted", r.flight_promoted);
    std::printf("%llu rounds, %llu promoted into the black box\n",
                static_cast<unsigned long long>(r.flight_rounds),
                static_cast<unsigned long long>(r.flight_promoted));
  }

  // --- Recovery drills: the fault-tolerance numbers the control plane
  // is now on the hook for. Kill-restart measures detection + jittered
  // backoff + replay-driven reconvergence end to end; the lease drill
  // measures the graceful-fallback path under sustained frame loss.
  bool recovery_ok = true;
  if (recovery) {
    bench::banner("Recovery drills",
                  "service kill-restart + rate-lease fallback");
    const int nagents = static_cast<int>(recovery_agents);
    const int fpa = static_cast<int>(recovery_flows);
    const KillRestartResult kr =
        run_kill_restart_drill(clos, nagents, fpa);
    auto& j = json.child("recovery");
    j.set("agents", nagents);
    j.set("flows_per_agent", fpa);
    if (kr.ok) {
      bench::Table rt({"metric", "value"});
      rt.add_row({"reconnect p50",
                  bench::fmt("%.0f us", kr.reconnect_p50_us)});
      rt.add_row({"reconnect p99",
                  bench::fmt("%.0f us", kr.reconnect_p99_us)});
      rt.add_row({"reconverge (rates match pre-kill)",
                  bench::fmt("%.0f us", kr.reconverge_us)});
      rt.add_row({"degraded fraction of window",
                  bench::fmt("%.3f", kr.degraded_frac)});
      rt.add_row({"replayed flowlet starts",
                  bench::fmt("%llu", static_cast<unsigned long long>(
                                         kr.replayed_starts))});
      rt.add_row({"counted queue drops on close",
                  bench::fmt("%llu", static_cast<unsigned long long>(
                                         kr.queue_drops_on_close))});
      rt.print();
      j.set("reconnect_p50_us", kr.reconnect_p50_us);
      j.set("reconnect_p99_us", kr.reconnect_p99_us);
      j.set("reconverge_us", kr.reconverge_us);
      j.set("degraded_frac", kr.degraded_frac);
      j.set("replayed_starts", kr.replayed_starts);
      j.set("queue_drops_on_close", kr.queue_drops_on_close);
    } else {
      recovery_ok = false;
      j.set("failed", true);
      std::printf("kill-restart drill FAILED (timed out before "
                  "reconvergence)\n");
    }
    const double drop_frac = 0.6;
    const LeaseDrillResult lr =
        run_lease_drill(clos, drop_frac, 400'000);
    auto& lj = j.child("lease");
    lj.set("drop_frac", drop_frac);
    if (lr.ok) {
      std::printf("\nlease drill (%.0f%% of downstream frames dropped "
                  "for 400 ms):\n",
                  drop_frac * 100.0);
      std::printf("  frames %llu seen / %llu dropped, %llu lease "
                  "expiries, %llu flows entered fallback,\n"
                  "  degraded %.1f%% of the window, re-armed %.0f us "
                  "after drops stopped\n",
                  static_cast<unsigned long long>(lr.frames_down),
                  static_cast<unsigned long long>(lr.frames_dropped),
                  static_cast<unsigned long long>(lr.lease_expiries),
                  static_cast<unsigned long long>(lr.fallback_enters),
                  lr.degraded_frac * 100.0, lr.reclaim_us);
      lj.set("frames_down", lr.frames_down);
      lj.set("frames_dropped", lr.frames_dropped);
      lj.set("lease_expiries", lr.lease_expiries);
      lj.set("fallback_enters", lr.fallback_enters);
      lj.set("degraded_frac", lr.degraded_frac);
      lj.set("reclaim_us", lr.reclaim_us);
    } else {
      recovery_ok = false;
      lj.set("failed", true);
      std::printf("lease drill FAILED (agent never re-armed)\n");
    }
  }

  const bool pass =
      msgs_per_sec >= 100'000.0 && fanout_ok && backend_ok && recovery_ok;
  json.set("msgs_per_sec_floor", 100'000);
  json.set("pass", pass);
  if (!json_path.empty()) json.write_file(json_path);
  std::printf("\n%s: %.0f control messages/sec (target >= 100k)\n",
              pass ? "PASS" : "FAIL", msgs_per_sec);
  return pass ? 0 : 1;
}
