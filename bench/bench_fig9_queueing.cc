// Reproduces Figure 9 (result G): 99th-percentile queueing delay on
// 2-hop and 4-hop network paths, from queue lengths sampled every 1 ms.
//
// Paper shape: Flowtune keeps p99 path queueing under 8.9 us at every
// load; at 0.8 load XCP carries ~3.5x longer queues and DCTCP ~12x.
// pFabric and sfqCoDel are omitted, as in the paper: their queues are
// not FIFO, so sampled lengths do not give a meaningful path delay.
#include <cstdio>

#include "bench_util.h"
#include "transport/experiment.h"

int main(int argc, char** argv) {
  using namespace ft;
  using namespace ft::bench;
  using namespace ft::transport;

  Flags flags(argc, argv);
  const double dur_ms =
      flags.double_flag("duration_ms", 12, "measured milliseconds");
  flags.done("Reproduces Figure 9 (p99 path queueing delay).");

  banner("p99 queueing delay on 2-hop and 4-hop paths",
         "Flowtune paper Figure 9 / result (G)");

  const Scheme schemes[] = {Scheme::kFlowtune, Scheme::kDctcp,
                            Scheme::kXcp};
  Table table({"scheme", "load", "p99 2-hop (us)", "p99 4-hop (us)"});
  double ft_4hop_at_08 = 0;
  for (const Scheme s : schemes) {
    for (const double load : {0.2, 0.4, 0.6, 0.8}) {
      ExpConfig cfg;
      cfg.traffic.load = load;
      cfg.traffic.workload = wl::Workload::kWeb;
      cfg.scheme = s;
      cfg.duration = from_ms(dur_ms);
      const ExpResult r = run_experiment(cfg);
      if (s == Scheme::kFlowtune && load == 0.8) {
        ft_4hop_at_08 = r.p99_queue_4hop_us;
      }
      table.add_row({scheme_name(s), fmt("%.1f", load),
                     fmt("%.2f", r.p99_queue_2hop_us),
                     fmt("%.2f", r.p99_queue_4hop_us)});
    }
  }
  table.print();
  std::printf(
      "\nPaper: Flowtune < 8.9 us everywhere; DCTCP ~12x and XCP ~3.5x "
      "Flowtune's at 0.8 load. (Flowtune 4-hop p99 here: %.2f us)\n",
      ft_4hop_at_08);
  return 0;
}
