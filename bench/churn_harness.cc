#include "churn_harness.h"

#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/wire.h"
#include "core/exact.h"
#include "core/messages.h"
#include "core/fgm.h"
#include "core/gradient.h"
#include "core/ned.h"
#include "core/newton_like.h"
#include "core/normalizer.h"
#include "core/rt.h"
#include "topo/clos.h"
#include "workload/traffic_gen.h"

namespace ft::bench {
namespace {

topo::ClosConfig clos_for(std::int32_t servers) {
  topo::ClosConfig cfg;
  cfg.servers_per_rack = 16;
  cfg.racks = (servers + cfg.servers_per_rack - 1) / cfg.servers_per_rack;
  cfg.spines = 4;  // full bisection at 16 x 10G vs 4 x 40G
  return cfg;
}

std::vector<double> caps_of(const topo::ClosTopology& clos) {
  std::vector<double> caps;
  for (const auto& l : clos.graph().links()) caps.push_back(l.capacity_bps);
  return caps;
}

}  // namespace

UpdateTrafficResult run_update_traffic(const UpdateTrafficConfig& cfg) {
  const topo::ClosTopology clos(clos_for(cfg.servers));
  wl::TrafficConfig tc;
  tc.num_hosts = clos.config().num_hosts();
  tc.host_link_bps = clos.config().host_link_bps;
  tc.load = cfg.load;
  tc.workload = cfg.workload;
  tc.seed = cfg.seed;
  wl::TrafficGenerator gen(tc);

  core::AllocatorConfig acfg;
  acfg.gamma = cfg.gamma;
  acfg.threshold = cfg.threshold;
  core::Allocator alloc(caps_of(clos), acfg);

  struct Live {
    double remaining_bytes;
    std::int32_t src;
  };
  std::unordered_map<std::uint64_t, Live> live;
  std::vector<std::uint64_t> ended_scratch;
  std::vector<core::RateUpdate> updates;

  UpdateTrafficResult res;
  wl::FlowletEvent next = gen.next();
  std::uint64_t next_key = 1;
  double active_flow_iters = 0.0;
  std::uint64_t iters = 0;

  for (Time now = 0; now < cfg.duration; now += cfg.iter_period) {
    // Admit arrivals up to `now`.
    while (next.start <= now) {
      const auto path = clos.host_path(clos.host(next.src_host),
                                       clos.host(next.dst_host), next_key);
      std::vector<LinkId> links(path.begin(), path.end());
      alloc.flowlet_start(next_key, links);
      live.emplace(next_key,
                   Live{static_cast<double>(next.bytes), next.src_host});
      // Start notification: 16 B on its own frame.
      res.to_allocator_bytes += wire_bytes_tcp(core::kFlowletStartBytes);
      ++res.flowlet_starts;
      ++next_key;
      next = gen.next();
    }

    updates.clear();
    alloc.run_iteration(updates);
    ++iters;
    active_flow_iters += static_cast<double>(live.size());
    res.updates += updates.size();

    // Updates are batched per destination server (or per intermediary
    // group, §7) within an iteration: the allocator coalesces all
    // updates for one destination into one TCP stream write.
    std::unordered_map<std::int32_t, std::int64_t> per_host_bytes;
    for (const auto& u : updates) {
      const auto it = live.find(u.key);
      if (it == live.end()) continue;
      per_host_bytes[it->second.src / cfg.hosts_per_intermediary] +=
          static_cast<std::int64_t>(core::kRateUpdateBytes);
    }
    for (const auto& [host, bytes] : per_host_bytes) {
      // Full MSS segments plus one partial.
      std::int64_t rest = bytes;
      while (rest > 0) {
        const std::int64_t seg = std::min<std::int64_t>(rest, kMss);
        res.from_allocator_bytes += wire_bytes_tcp(seg);
        rest -= seg;
      }
    }

    // Drain live flowlets at their allocated rates.
    ended_scratch.clear();
    const double dt = to_sec(cfg.iter_period);
    for (auto& [key, l] : live) {
      const double rate = alloc.notified_rate(key);
      l.remaining_bytes -= rate / 8.0 * dt;
      if (l.remaining_bytes <= 0.0) ended_scratch.push_back(key);
    }
    for (const std::uint64_t key : ended_scratch) {
      alloc.flowlet_end(key);
      live.erase(key);
      res.to_allocator_bytes += wire_bytes_tcp(core::kFlowletEndBytes);
      ++res.flowlet_ends;
    }
  }

  const double capacity_bps = static_cast<double>(cfg.servers) *
                              clos.config().host_link_bps;
  const double dur_sec = to_sec(cfg.duration);
  res.to_allocator_frac = static_cast<double>(res.to_allocator_bytes) *
                          8.0 / dur_sec / capacity_bps;
  res.from_allocator_frac =
      static_cast<double>(res.from_allocator_bytes) * 8.0 / dur_sec /
      capacity_bps;
  res.mean_active_flows =
      iters > 0 ? active_flow_iters / static_cast<double>(iters) : 0.0;
  return res;
}

const char* solver_kind_name(SolverKind k) {
  switch (k) {
    case SolverKind::kNed:
      return "NED";
    case SolverKind::kNedRt:
      return "NED-RT";
    case SolverKind::kGradient:
      return "Gradient";
    case SolverKind::kGradientRt:
      return "Gradient-RT";
    case SolverKind::kFgm:
      return "FGM";
    case SolverKind::kNewtonLike:
      return "Newton-like";
  }
  return "?";
}

std::unique_ptr<core::Solver> make_solver(SolverKind k,
                                          core::NumProblem& problem,
                                          double gamma) {
  switch (k) {
    case SolverKind::kNed:
      return std::make_unique<core::NedSolver>(problem, gamma);
    case SolverKind::kNedRt:
      return std::make_unique<core::NedRtSolver>(problem, gamma);
    case SolverKind::kGradient:
      return std::make_unique<core::GradientSolver>(problem, gamma);
    case SolverKind::kGradientRt:
      return std::make_unique<core::GradientRtSolver>(problem, gamma);
    case SolverKind::kFgm:
      return std::make_unique<core::FgmSolver>(problem, gamma);
    case SolverKind::kNewtonLike: {
      core::NewtonLikeOptions opt;
      opt.gamma = gamma;
      return std::make_unique<core::NewtonLikeSolver>(problem, opt);
    }
  }
  FT_CHECK(false);
}

ChurnSolverResult run_churn_solver(const ChurnSolverConfig& cfg) {
  const topo::ClosTopology clos(clos_for(cfg.servers));
  wl::TrafficConfig tc;
  tc.num_hosts = clos.config().num_hosts();
  tc.host_link_bps = clos.config().host_link_bps;
  tc.load = cfg.load;
  tc.workload = cfg.workload;
  tc.seed = cfg.seed;
  wl::TrafficGenerator gen(tc);

  core::NumProblem problem(caps_of(clos));
  auto solver = make_solver(cfg.solver, problem, cfg.gamma);

  struct Live {
    core::FlowIndex slot;
    double remaining_bytes;
  };
  std::vector<Live> live;
  std::vector<double> norm_rates;
  std::vector<double> u_rates;

  ChurnSolverResult res;
  wl::FlowletEvent next = gen.next();
  std::uint64_t iters = 0;
  double active_flow_iters = 0.0;

  for (Time now = 0; now < cfg.duration; now += cfg.iter_period) {
    while (next.start <= now) {
      const auto path =
          clos.host_path(clos.host(next.src_host),
                         clos.host(next.dst_host), res.flowlets);
      std::vector<LinkId> links(path.begin(), path.end());
      const core::FlowIndex slot =
          problem.add_flow(links, core::Utility::log_utility());
      live.push_back(Live{slot, static_cast<double>(next.bytes)});
      ++res.flowlets;
      next = gen.next();
    }

    solver->iterate();
    ++iters;
    active_flow_iters += static_cast<double>(live.size());

    // Figure 12 metric: over-capacity allocation of the *raw* rates.
    res.overalloc_gbps.add(solver->total_over_allocation() / 1e9);

    // Physical drain uses F-NORM rates (feasible by construction).
    norm_rates.resize(problem.num_slots());
    core::f_norm(problem, solver->rates(), norm_rates);

    if (cfg.exact_every > 0 &&
        iters % static_cast<std::uint64_t>(cfg.exact_every) == 0 &&
        problem.num_active() > 0) {
      u_rates.resize(problem.num_slots());
      core::u_norm(problem, solver->rates(), u_rates);
      // Converged optimum on a copy of the current flow set.
      core::NumProblem ref(caps_of(clos));
      for (core::FlowIndex s = 0; s < problem.num_slots(); ++s) {
        const core::FlowView f = problem.flow(s);
        if (!f.active()) continue;
        std::vector<LinkId> r;
        for (std::uint32_t l : f.route()) r.emplace_back(l);
        ref.add_flow(r, f.util());
      }
      const core::ExactResult opt = core::solve_exact(ref);
      if (opt.total_rate > 0.0) {
        double f_total = 0.0, u_total = 0.0;
        for (core::FlowIndex s = 0; s < problem.num_slots(); ++s) {
          if (!problem.flow(s).active()) continue;
          f_total += norm_rates[s];
          u_total += u_rates[s];
        }
        res.fnorm_frac.add(f_total / opt.total_rate);
        res.unorm_frac.add(u_total / opt.total_rate);
      }
    }

    const double dt = to_sec(cfg.iter_period);
    for (std::size_t i = 0; i < live.size();) {
      live[i].remaining_bytes -=
          norm_rates[live[i].slot] / 8.0 * dt;
      if (live[i].remaining_bytes <= 0.0) {
        problem.remove_flow(live[i].slot);
        live[i] = live.back();
        live.pop_back();
      } else {
        ++i;
      }
    }
  }
  res.mean_active_flows =
      iters > 0 ? active_flow_iters / static_cast<double>(iters) : 0.0;
  return res;
}

}  // namespace ft::bench
