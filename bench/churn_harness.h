// Flow-level churn harnesses shared by the allocator-overhead benches
// (Figures 5-7) and the solver benches (Figures 12-13).
//
// These drive the *allocator* (not the packet simulator): flowlets arrive
// per the workload's Poisson process, routes come from the Clos topology,
// and each live flowlet drains at its currently allocated (normalized)
// rate, ending when its bytes are exhausted -- so offered load, flowlet
// lifetime and churn rate are all physically consistent. One iteration
// step is the paper's 10 us allocator period.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/stats.h"
#include "common/time.h"
#include "core/allocator.h"
#include "core/solver.h"
#include "workload/size_dist.h"

namespace ft::bench {

// ---------------------------------------------------------------------
// Figures 5-7: control-traffic accounting against a full Allocator.
// ---------------------------------------------------------------------

struct UpdateTrafficConfig {
  std::int32_t servers = 128;
  wl::Workload workload = wl::Workload::kWeb;
  double load = 0.6;
  double threshold = 0.01;
  Time duration = 100 * kMillisecond;
  Time iter_period = 10 * kMicrosecond;
  double gamma = 0.4;
  std::uint64_t seed = 1;
  // §7 "more scalable rate update schemes": updates are batched per
  // group of this many servers (1 = per-server batching; 32+ models the
  // intermediary servers that receive one MTU of updates and fan them
  // out, cutting the allocator-NIC overhead of tiny frames).
  std::int32_t hosts_per_intermediary = 1;
};

struct UpdateTrafficResult {
  double to_allocator_frac = 0.0;    // wire bytes/sec / network capacity
  double from_allocator_frac = 0.0;
  std::int64_t to_allocator_bytes = 0;
  std::int64_t from_allocator_bytes = 0;
  std::uint64_t flowlet_starts = 0;
  std::uint64_t flowlet_ends = 0;
  std::uint64_t updates = 0;
  double mean_active_flows = 0.0;
};

UpdateTrafficResult run_update_traffic(const UpdateTrafficConfig& cfg);

// ---------------------------------------------------------------------
// Figures 12-13: raw solver behaviour under churn.
// ---------------------------------------------------------------------

enum class SolverKind {
  kNed,
  kNedRt,
  kGradient,
  kGradientRt,
  kFgm,
  kNewtonLike,
};

[[nodiscard]] const char* solver_kind_name(SolverKind k);
[[nodiscard]] std::unique_ptr<core::Solver> make_solver(
    SolverKind k, core::NumProblem& problem, double gamma);

struct ChurnSolverConfig {
  std::int32_t servers = 128;
  wl::Workload workload = wl::Workload::kWeb;
  double load = 0.5;
  SolverKind solver = SolverKind::kNed;
  double gamma = 0.4;
  Time duration = 50 * kMillisecond;
  Time iter_period = 10 * kMicrosecond;
  std::uint64_t seed = 1;
  // Figure 13: compare normalized throughput to the converged optimum
  // every `exact_every` iterations (0 = skip; exact solves are costly).
  std::int32_t exact_every = 0;
};

struct ChurnSolverResult {
  // Over-capacity allocation, summed over links, in Gbit/s (Figure 12).
  StreamingStats overalloc_gbps;
  // Throughput as a fraction of the converged optimum (Figure 13).
  StreamingStats fnorm_frac;
  StreamingStats unorm_frac;
  std::uint64_t flowlets = 0;
  double mean_active_flows = 0.0;
};

ChurnSolverResult run_churn_solver(const ChurnSolverConfig& cfg);

}  // namespace ft::bench
