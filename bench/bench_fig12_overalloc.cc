// Reproduces Figure 12: total over-capacity allocation (Gbit/s summed
// over links) of the raw optimizers under flowlet churn, without
// normalization.
//
// Paper result (I): normalization is necessary; NED over-allocates more
// than Gradient (it adjusts prices more aggressively on churn, up to
// ~140 Gbit/s total); FGM "does not handle the stream of updates well"
// and its allocations become unrealistic at even moderate loads; the RT
// (single-precision) variants track their reference implementations.
#include <cstdio>

#include "bench_util.h"
#include "churn_harness.h"

int main(int argc, char** argv) {
  using namespace ft;
  using namespace ft::bench;

  Flags flags(argc, argv);
  const auto servers = static_cast<std::int32_t>(
      flags.int_flag("servers", 128, "number of servers"));
  const double dur_ms =
      flags.double_flag("duration_ms", 30, "simulated milliseconds");
  flags.done("Reproduces Figure 12 (over-allocation without "
             "normalization).");

  banner("Over-capacity allocation under churn (no normalization)",
         "Flowtune paper Figure 12 / result (I)");

  const SolverKind kinds[] = {SolverKind::kFgm, SolverKind::kGradient,
                              SolverKind::kGradientRt, SolverKind::kNed,
                              SolverKind::kNedRt};

  Table table({"algorithm", "load", "mean over-alloc (Gbps)",
               "p-max (Gbps)", "flowlets"});
  for (const SolverKind kind : kinds) {
    for (const double load : {0.25, 0.5, 0.75, 0.9}) {
      ChurnSolverConfig cfg;
      cfg.servers = servers;
      cfg.workload = wl::Workload::kWeb;
      cfg.load = load;
      cfg.solver = kind;
      // Gradient's capacity-normalized step uses a smaller gamma, as in
      // its stability analysis; NED/FGM run the paper's setting.
      cfg.gamma = (kind == SolverKind::kGradient ||
                   kind == SolverKind::kGradientRt)
                      ? 0.2
                      : 0.4;
      cfg.duration = from_ms(dur_ms);
      const ChurnSolverResult r = run_churn_solver(cfg);
      table.add_row({solver_kind_name(kind), fmt("%.2f", load),
                     fmt("%.2f", r.overalloc_gbps.mean()),
                     fmt("%.1f", r.overalloc_gbps.max()),
                     fmt("%llu", static_cast<unsigned long long>(
                                     r.flowlets))});
    }
  }
  table.print();
  std::printf(
      "\nPaper shape: FGM >> NED > Gradient; RT variants track their "
      "references; all grow with load (NED up to ~140 Gbit/s total on a "
      "128-server network).\n");
  return 0;
}
