// Reproduces Figure 5: traffic to and from the allocator as a fraction of
// network capacity, per workload (Hadoop / Cache / Web) and load, at the
// default 0.01 notification threshold.
//
// Paper result (C): overhead is < 0.17% (Hadoop), 0.57% (Cache), 1.13%
// (Web) of network capacity; from-allocator traffic dominates
// to-allocator traffic; Web is highest because its mean flowlet size is
// smallest (most churn).
#include <cstdio>

#include "bench_util.h"
#include "churn_harness.h"

int main(int argc, char** argv) {
  using namespace ft;
  using namespace ft::bench;

  Flags flags(argc, argv);
  const auto servers = static_cast<std::int32_t>(
      flags.int_flag("servers", 128, "number of servers"));
  const double dur_ms =
      flags.double_flag("duration_ms", 60, "simulated milliseconds");
  flags.done("Reproduces Figure 5 (allocator traffic overhead).");

  banner("Rate-update traffic vs load (threshold 0.01)",
         "Flowtune paper Figure 5 / result (C)");

  Table table({"workload", "load", "to alloc (%cap)", "from alloc (%cap)",
               "updates/flowlet", "mean active flows"});
  for (const auto wl :
       {wl::Workload::kHadoop, wl::Workload::kCache, wl::Workload::kWeb}) {
    double max_total = 0.0;
    for (const double load : {0.2, 0.4, 0.6, 0.8}) {
      UpdateTrafficConfig cfg;
      cfg.servers = servers;
      cfg.workload = wl;
      cfg.load = load;
      cfg.duration = from_ms(dur_ms);
      const UpdateTrafficResult r = run_update_traffic(cfg);
      max_total = std::max(
          max_total, r.to_allocator_frac + r.from_allocator_frac);
      table.add_row(
          {wl::workload_name(wl), fmt("%.1f", load),
           fmt("%.3f%%", 100 * r.to_allocator_frac),
           fmt("%.3f%%", 100 * r.from_allocator_frac),
           fmt("%.1f", static_cast<double>(r.updates) /
                           std::max<std::uint64_t>(1, r.flowlet_starts)),
           fmt("%.0f", r.mean_active_flows)});
    }
    std::printf("  [%s peak total overhead: %.2f%% of capacity]\n",
                wl::workload_name(wl), 100 * max_total);
  }
  table.print();
  std::printf(
      "\nPaper: Hadoop < 0.17%%, Cache < 0.57%%, Web < 1.13%% of network "
      "capacity; from-allocator >> to-allocator.\n");

  // §7 extension: intermediary servers that each receive one batched MTU
  // of updates and fan them out to their hosts ("a straightforward
  // solution to scale the allocator 10x").
  {
    UpdateTrafficConfig cfg;
    cfg.servers = servers;
    cfg.workload = wl::Workload::kWeb;
    cfg.load = 0.8;
    cfg.duration = from_ms(dur_ms);
    const auto direct = run_update_traffic(cfg);
    cfg.hosts_per_intermediary = 32;
    const auto inter = run_update_traffic(cfg);
    std::printf(
        "\n§7 intermediary batching (Web, load 0.8): per-host updates "
        "%.3f%% of capacity -> %.3f%% via 32-host intermediaries (%.1fx "
        "less allocator-NIC traffic).\n",
        100 * direct.from_allocator_frac, 100 * inter.from_allocator_frac,
        direct.from_allocator_frac /
            std::max(1e-12, inter.from_allocator_frac));
  }
  return 0;
}
