// Virtual-time scale bench: the real control plane -- one inline
// AllocatorService plus N real EndpointAgents -- run to convergence at
// 10k endpoints inside a single process on sim::SimTransport.
//
// Reports rounds / virtual time to convergence and the per-endpoint
// update-message overhead (the Fig 5 metric, here at a scale the
// loopback benches cannot reach), plus the virtual-over-wall speedup
// that makes the exercise worthwhile. The bench runs the same seed
// twice and hard-fails on any trajectory divergence: determinism is an
// acceptance criterion, not a best effort.
//
// Every sim_* metric in BENCH_sim_scale.json is a deterministic
// function of (seed, config) -- identical on every machine -- so the
// regression checker holds them to a tight band.
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "bench_util.h"
#include "sim/control_plane_harness.h"

namespace {

using namespace ft;

struct RunResult {
  sim::ConvergeStats stats;
  double wall_sec = 0.0;
};

RunResult run_once(const sim::HarnessConfig& cfg) {
  const auto t0 = std::chrono::steady_clock::now();
  sim::ControlPlaneHarness h(cfg);
  RunResult r;
  r.stats = h.run_to_convergence();
  r.wall_sec = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const auto endpoints =
      flags.int_flag("endpoints", 10'000, "real EndpointAgents to run");
  const auto flows_per = flags.int_flag("flows_per_endpoint", 2,
                                        "generated flowlets per endpoint");
  const auto seed = flags.int_flag("seed", 1, "harness seed");
  const std::string out = flags.string_flag(
      "out", "BENCH_sim_scale.json", "JSON results path");
  flags.done(
      "10k-endpoint virtual-time control plane: convergence, update "
      "overhead (Fig 5 scale), determinism gate.");

  sim::HarnessConfig cfg;
  cfg.num_endpoints = static_cast<int>(endpoints);
  cfg.flows_per_endpoint = static_cast<int>(flows_per);
  cfg.seed = static_cast<std::uint64_t>(seed);

  bench::banner("Virtual-time control plane at scale",
                "single process, real service + agents, Fig 5 metric");

  const RunResult a = run_once(cfg);
  const RunResult b = run_once(cfg);  // determinism gate

  if (!a.stats.converged || !b.stats.converged) {
    std::fprintf(stderr,
                 "FAIL: harness did not converge within %lld virtual us\n",
                 static_cast<long long>(cfg.max_virtual_us));
    return 1;
  }
  if (a.stats.trajectory_hash != b.stats.trajectory_hash ||
      a.stats.virtual_us != b.stats.virtual_us ||
      a.stats.updates_sent != b.stats.updates_sent) {
    std::fprintf(stderr,
                 "FAIL: same-seed runs diverged "
                 "(hash %016llx vs %016llx, virtual_us %lld vs %lld)\n",
                 static_cast<unsigned long long>(a.stats.trajectory_hash),
                 static_cast<unsigned long long>(b.stats.trajectory_hash),
                 static_cast<long long>(a.stats.virtual_us),
                 static_cast<long long>(b.stats.virtual_us));
    return 1;
  }

  const sim::ConvergeStats& st = b.stats;
  const double wall = std::min(a.wall_sec, b.wall_sec);
  const double virtual_sec = static_cast<double>(st.virtual_us) * 1e-6;
  const double updates_per_endpoint =
      static_cast<double>(st.updates_sent) /
      static_cast<double>(endpoints);

  bench::Table t({"endpoints", "flows", "rounds", "virtual_ms",
                  "upd/endpoint", "wall_s", "virt/wall"});
  t.add_row({bench::fmt("%lld", static_cast<long long>(endpoints)),
             bench::fmt("%lld",
                        static_cast<long long>(endpoints * flows_per)),
             bench::fmt("%llu", static_cast<unsigned long long>(st.rounds)),
             bench::fmt("%.1f", static_cast<double>(st.virtual_us) / 1e3),
             bench::fmt("%.2f", updates_per_endpoint),
             bench::fmt("%.2f", wall),
             bench::fmt("%.3f", virtual_sec / wall)});
  t.print();
  std::printf("trajectory hash %016llx (two runs identical)\n",
              static_cast<unsigned long long>(st.trajectory_hash));

  bench::Json j;
  j.add_run_metadata();
  j.set("endpoints", endpoints);
  j.set("flows", endpoints * flows_per);
  j.set("seed", seed);
  j.set("deterministic", true);
  j.set("trajectory_hash", bench::fmt("%016llx",
                                      static_cast<unsigned long long>(
                                          st.trajectory_hash)));
  j.set("sim_rounds_to_converge", st.rounds);
  j.set("sim_virtual_to_converge_us", st.virtual_us);
  j.set("sim_updates_sent", st.updates_sent);
  j.set("sim_update_msgs_per_endpoint", updates_per_endpoint);
  j.set("sim_events_processed", st.events_processed);
  j.set("virtual_over_wall_speedup", virtual_sec / wall);
  j.set("wall_elapsed_sec", wall);
  if (!j.write_file(out)) return 1;
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
