// Reproduces Figure 7: the fraction of network capacity consumed by
// rate-update traffic stays constant as the network scales from 128 to
// 2048 servers -- the notification threshold contains update cascades
// (result (E)).
#include <cstdio>

#include "bench_util.h"
#include "churn_harness.h"

int main(int argc, char** argv) {
  using namespace ft;
  using namespace ft::bench;

  Flags flags(argc, argv);
  const double dur_ms =
      flags.double_flag("duration_ms", 25, "simulated milliseconds");
  const bool full =
      flags.bool_flag("full", false, "include the 2048-server point");
  flags.done("Reproduces Figure 7 (update traffic vs network size).");

  banner("Rate-update traffic fraction vs network size (Web workload)",
         "Flowtune paper Figure 7 / result (E)");

  std::vector<std::int32_t> sizes = {128, 256, 512, 1024};
  if (full) sizes.push_back(2048);

  Table table({"servers", "load 0.4", "load 0.6", "load 0.8"});
  for (const std::int32_t servers : sizes) {
    std::vector<std::string> row = {fmt("%d", servers)};
    for (const double load : {0.4, 0.6, 0.8}) {
      UpdateTrafficConfig cfg;
      cfg.servers = servers;
      cfg.workload = wl::Workload::kWeb;
      cfg.load = load;
      cfg.duration = from_ms(dur_ms);
      const auto r = run_update_traffic(cfg);
      row.push_back(fmt("%.3f%%", 100 * r.from_allocator_frac));
    }
    table.add_row(std::move(row));
  }
  table.print();
  std::printf(
      "\nPaper: the fraction is flat in network size -- no debilitating "
      "cascade of updates as the network grows.\n");
  return 0;
}
