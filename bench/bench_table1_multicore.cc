// Reproduces the §6.1 multicore benchmark table:
//
//   Cores  Nodes  Flows   Cycles    Time
//   4      384    3072    19896.6   8.29 us
//   ...
//   64     4608   49152   73703.2   30.71 us
//
// "Cores" in the paper is the number of FlowBlocks (the paper maps
// multiple FlowBlocks per physical core); each row runs the partitioned
// NED+F-NORM engine of §5 with the same block counts (2/4/8 blocks ->
// 4/16/64 FlowBlocks) on synthetic uniform traffic. The number of OS
// threads defaults to the host's hardware concurrency -- on a machine
// with fewer cores than the paper's 80-core testbed, per-iteration times
// measure algorithmic cost, not parallel speedup (see EXPERIMENTS.md).
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "core/parallel.h"
#include "core/problem.h"
#include "topo/clos.h"
#include "topo/partition.h"

namespace {

using namespace ft;

struct Row {
  std::int32_t blocks;  // n; FlowBlocks = n^2
  std::int32_t nodes;
  std::int32_t flows;
};

void run_row(const Row& row, std::int32_t iters, std::int32_t threads,
             bool pin, ft::bench::Table& table, ft::bench::Json& json) {
  topo::ClosConfig cfg;
  cfg.servers_per_rack = 16;
  cfg.racks = row.nodes / cfg.servers_per_rack;
  cfg.spines = 4;
  const topo::ClosTopology clos(cfg);
  const auto part = topo::BlockPartition::make(clos, row.blocks);

  std::vector<double> caps;
  for (const auto& l : clos.graph().links()) caps.push_back(l.capacity_bps);
  core::NumProblem problem(caps);

  core::ParallelConfig pcfg;
  pcfg.num_blocks = row.blocks;
  pcfg.num_threads = threads;
  pcfg.gamma = 1.0;
  pcfg.pin.enable = pin;
  core::ParallelNed engine(problem, part, pcfg);

  Rng rng(42);
  const auto hosts = static_cast<std::uint64_t>(clos.num_hosts());
  for (std::int32_t f = 0; f < row.flows; ++f) {
    const auto s = static_cast<std::int32_t>(rng.below(hosts));
    auto d = static_cast<std::int32_t>(rng.below(hosts - 1));
    if (d >= s) ++d;
    const auto path =
        clos.host_path(clos.host(s), clos.host(d), rng.next());
    std::vector<LinkId> links(path.begin(), path.end());
    const core::FlowIndex idx =
        problem.add_flow(links, core::Utility::log_utility());
    engine.assign_flow(idx, part.block_of_host(clos, clos.host(s)),
                       part.block_of_host(clos, clos.host(d)));
  }

  // Warmup, then measure.
  for (int i = 0; i < 20; ++i) engine.iterate();
  std::vector<double> us;
  std::vector<double> cycles;
  for (std::int32_t i = 0; i < iters; ++i) {
    engine.iterate();
    us.push_back(engine.last_iter_seconds() * 1e6);
    cycles.push_back(static_cast<double>(engine.last_iter_cycles()));
  }
  std::sort(us.begin(), us.end());
  std::sort(cycles.begin(), cycles.end());
  const double med_us = us[us.size() / 2];
  const double med_cycles = cycles[cycles.size() / 2];

  table.add_row({ft::bench::fmt("%d", row.blocks * row.blocks),
                 ft::bench::fmt("%d", row.nodes),
                 ft::bench::fmt("%d", row.flows),
                 ft::bench::fmt("%.1f", med_cycles),
                 ft::bench::fmt("%.2f us", med_us),
                 ft::bench::fmt("%d", engine.num_threads())});
  auto& j = json.append("rows");
  j.set("flow_blocks", row.blocks * row.blocks);
  j.set("nodes", row.nodes);
  j.set("flows", row.flows);
  j.set("median_cycles", med_cycles);
  j.set("median_us", med_us);
  j.set("threads", engine.num_threads());
  if (!engine.pinning().empty()) j.set("pinning", engine.pinning());
  // Paper throughput check: flows allocated per second of iteration time.
  j.set("flows_per_sec", med_us > 0.0 ? row.flows / (med_us / 1e6) : 0.0);
}

}  // namespace

int main(int argc, char** argv) {
  ft::bench::Flags flags(argc, argv);
  const auto iters =
      static_cast<std::int32_t>(flags.int_flag("iters", 200, "timed iterations per row"));
  const auto threads = static_cast<std::int32_t>(
      flags.int_flag("threads", 0, "worker threads (0 = hardware)"));
  const bool full = flags.bool_flag("full", false,
                                    "include the largest (4608-node) rows");
  const bool pin = flags.bool_flag(
      "pin", false, "pin worker threads by FlowBlock row (§6.1)");
  const auto json_path = flags.string_flag(
      "json", "BENCH_table1_multicore.json",
      "machine-readable results file (empty disables)");
  flags.done("Reproduces the paper's §6.1 multicore allocator benchmark.");

  ft::bench::banner("Multicore NED allocator latency",
                    "Flowtune paper §6.1 benchmark table");

  std::vector<Row> rows = {
      {2, 384, 3072},    // 4 FlowBlocks
      {4, 768, 6144},    // 16 FlowBlocks
      {8, 1536, 12288},  // 64 FlowBlocks
      {8, 1536, 24576},  {8, 1536, 49152},
  };
  if (full) {
    rows.push_back({8, 3072, 49152});
    rows.push_back({8, 4608, 49152});
  }

  ft::bench::Table table({"FlowBlocks", "Nodes", "Flows", "Cycles",
                          "Time/iter", "Threads"});
  ft::bench::Json json;
  json.add_run_metadata("", ft::bench::fmt("threads=%d pin=%d", threads,
                                           pin ? 1 : 0));
  for (const Row& row : rows) run_row(row, iters, threads, pin, table, json);
  table.print();
  if (!json_path.empty()) json.write_file(json_path);

  std::printf(
      "\nPaper reference (8x10-core E7-8870): 8.29 us (4 blocks, 384 "
      "nodes) to 30.71 us (64 blocks, 4608 nodes).\n"
      "Throughput check: 4608 nodes x 10G ~ 46 Tbit/s allocated per "
      "iteration interval.\n");
  return 0;
}
