// Microbenchmarks (google-benchmark) for the allocator's inner loops:
// NED iteration cost vs problem size, F-NORM, the parallel engine at
// different block counts, rate-codec and message-codec throughput.
// These are the per-iteration costs behind the §6.1 table.
#include <benchmark/benchmark.h>

#include <vector>

#include "common/ratecode.h"
#include "common/rng.h"
#include "core/messages.h"
#include "core/ned.h"
#include "core/normalizer.h"
#include "core/parallel.h"
#include "core/problem.h"
#include "topo/clos.h"
#include "topo/partition.h"

namespace {

using namespace ft;

struct Instance {
  topo::ClosTopology clos;
  std::vector<double> caps;
  std::vector<std::pair<std::vector<LinkId>, std::pair<int, int>>> flows;

  Instance(std::int32_t servers, std::int32_t num_flows,
           std::int32_t blocks)
      : clos([&] {
          topo::ClosConfig cfg;
          cfg.servers_per_rack = 16;
          cfg.racks = servers / 16;
          cfg.spines = 4;
          return topo::ClosTopology(cfg);
        }()) {
    for (const auto& l : clos.graph().links()) {
      caps.push_back(l.capacity_bps);
    }
    const auto part = topo::BlockPartition::make(clos, blocks);
    Rng rng(1);
    const auto hosts = static_cast<std::uint64_t>(clos.num_hosts());
    for (std::int32_t f = 0; f < num_flows; ++f) {
      const auto s = static_cast<std::int32_t>(rng.below(hosts));
      auto d = static_cast<std::int32_t>(rng.below(hosts - 1));
      if (d >= s) ++d;
      const auto path =
          clos.host_path(clos.host(s), clos.host(d), rng.next());
      flows.emplace_back(
          std::vector<LinkId>(path.begin(), path.end()),
          std::make_pair(part.block_of_host(clos, clos.host(s)),
                         part.block_of_host(clos, clos.host(d))));
    }
  }
};

void BM_NedIteration(benchmark::State& state) {
  const auto servers = static_cast<std::int32_t>(state.range(0));
  const auto num_flows = static_cast<std::int32_t>(state.range(1));
  Instance inst(servers, num_flows, 2);
  core::NumProblem p(inst.caps);
  for (const auto& [route, blocks] : inst.flows) {
    p.add_flow(route, core::Utility::log_utility());
  }
  core::NedSolver ned(p);
  for (auto _ : state) {
    ned.iterate();
    benchmark::DoNotOptimize(ned.rates().data());
  }
  state.SetItemsProcessed(state.iterations() * num_flows);
}
BENCHMARK(BM_NedIteration)
    ->Args({128, 1024})
    ->Args({384, 3072})
    ->Args({768, 6144})
    ->Args({1536, 12288})
    ->Args({1536, 49152});

void BM_FNorm(benchmark::State& state) {
  const auto num_flows = static_cast<std::int32_t>(state.range(0));
  Instance inst(384, num_flows, 2);
  core::NumProblem p(inst.caps);
  for (const auto& [route, blocks] : inst.flows) {
    p.add_flow(route, core::Utility::log_utility());
  }
  core::NedSolver ned(p);
  ned.iterate();
  std::vector<double> out(p.num_slots());
  for (auto _ : state) {
    core::f_norm(p, ned.rates(), out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * num_flows);
}
BENCHMARK(BM_FNorm)->Arg(3072)->Arg(12288);

void BM_ParallelIteration(benchmark::State& state) {
  const auto blocks = static_cast<std::int32_t>(state.range(0));
  Instance inst(768, 6144, blocks);
  const auto part = topo::BlockPartition::make(inst.clos, blocks);
  core::NumProblem p(inst.caps);
  core::ParallelConfig cfg;
  cfg.num_blocks = blocks;
  core::ParallelNed engine(p, part, cfg);
  for (const auto& [route, bl] : inst.flows) {
    const core::FlowIndex idx =
        p.add_flow(route, core::Utility::log_utility());
    engine.assign_flow(idx, bl.first, bl.second);
  }
  for (auto _ : state) {
    engine.iterate();
    benchmark::DoNotOptimize(engine.rates().data());
  }
}
BENCHMARK(BM_ParallelIteration)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_RateCodec(benchmark::State& state) {
  Rng rng(3);
  std::vector<double> rates(4096);
  for (auto& r : rates) r = rng.uniform(1e6, 40e9);
  std::size_t i = 0;
  for (auto _ : state) {
    const std::uint16_t code = encode_rate(rates[i++ & 4095]);
    benchmark::DoNotOptimize(decode_rate(code));
  }
}
BENCHMARK(BM_RateCodec);

void BM_MessageCodec(benchmark::State& state) {
  core::FlowletStartMsg m;
  m.flow_key = 12345;
  m.src_host = 17;
  m.dst_host = 99;
  for (auto _ : state) {
    const auto buf = core::encode(m);
    benchmark::DoNotOptimize(core::decode_flowlet_start(buf));
  }
}
BENCHMARK(BM_MessageCodec);

}  // namespace

BENCHMARK_MAIN();
