// Microbenchmarks for the allocator's inner loops: NED iteration cost vs
// problem size, F-NORM (scatter and fused from-alloc variants), the
// parallel engine at different block counts, rate-codec and
// message-codec throughput. These are the per-iteration costs behind the
// §6.1 table.
//
// Self-contained on bench_util timers (no Google Benchmark dependency,
// so it always builds) and emits BENCH_ned_micro.json for the CI
// baseline diff:
//
//   $ ./bench_ned_micro --min-ms=200 --json=BENCH_ned_micro.json
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/ratecode.h"
#include "common/rng.h"
#include "core/messages.h"
#include "core/ned.h"
#include "core/normalizer.h"
#include "core/parallel.h"
#include "core/problem.h"
#include "topo/clos.h"
#include "topo/partition.h"

namespace {

using namespace ft;

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Volatile sink defeating dead-code elimination of benchmark bodies.
volatile double g_sink = 0.0;

struct Case {
  std::string name;
  double ns_per_iter = 0.0;
  double items_per_sec = 0.0;
  std::int64_t iters = 0;
};

// Runs `body` (which returns items processed per call) until `min_ms`
// of measured time has accumulated, after a short warmup.
Case run_case(const std::string& name, double min_ms,
              const std::function<double()>& body) {
  for (int i = 0; i < 3; ++i) g_sink = body();
  Case c;
  c.name = name;
  double items = 0.0;
  const double t0 = now_s();
  double elapsed = 0.0;
  while (elapsed < min_ms / 1e3 || c.iters < 10) {
    items += body();
    ++c.iters;
    elapsed = now_s() - t0;
  }
  c.ns_per_iter = elapsed / static_cast<double>(c.iters) * 1e9;
  c.items_per_sec = items / elapsed;
  return c;
}

struct Instance {
  topo::ClosTopology clos;
  std::vector<double> caps;
  std::vector<std::pair<std::vector<LinkId>, std::pair<int, int>>> flows;

  Instance(std::int32_t servers, std::int32_t num_flows,
           std::int32_t blocks)
      : clos([&] {
          topo::ClosConfig cfg;
          cfg.servers_per_rack = 16;
          cfg.racks = servers / 16;
          cfg.spines = 4;
          return topo::ClosTopology(cfg);
        }()) {
    for (const auto& l : clos.graph().links()) {
      caps.push_back(l.capacity_bps);
    }
    const auto part = topo::BlockPartition::make(clos, blocks);
    Rng rng(1);
    const auto hosts = static_cast<std::uint64_t>(clos.num_hosts());
    for (std::int32_t f = 0; f < num_flows; ++f) {
      const auto s = static_cast<std::int32_t>(rng.below(hosts));
      auto d = static_cast<std::int32_t>(rng.below(hosts - 1));
      if (d >= s) ++d;
      const auto path =
          clos.host_path(clos.host(s), clos.host(d), rng.next());
      flows.emplace_back(
          std::vector<LinkId>(path.begin(), path.end()),
          std::make_pair(part.block_of_host(clos, clos.host(s)),
                         part.block_of_host(clos, clos.host(d))));
    }
  }
};

Case bench_ned_iteration(std::int32_t servers, std::int32_t num_flows,
                         double min_ms) {
  Instance inst(servers, num_flows, 2);
  core::NumProblem p(inst.caps);
  for (const auto& [route, blocks] : inst.flows) {
    p.add_flow(route, core::Utility::log_utility());
  }
  core::NedSolver ned(p);
  return run_case(
      bench::fmt("ned_iteration/%d/%d", servers, num_flows), min_ms,
      [&] {
        ned.iterate();
        return static_cast<double>(num_flows);
      });
}

Case bench_f_norm(std::int32_t num_flows, bool from_alloc,
                  double min_ms) {
  Instance inst(384, num_flows, 2);
  core::NumProblem p(inst.caps);
  for (const auto& [route, blocks] : inst.flows) {
    p.add_flow(route, core::Utility::log_utility());
  }
  core::NedSolver ned(p);
  ned.iterate();
  std::vector<double> out(p.num_slots());
  core::NormScratch scratch;
  return run_case(
      bench::fmt("%s/%d", from_alloc ? "f_norm_from_alloc" : "f_norm",
                 num_flows),
      min_ms, [&, from_alloc] {
        if (from_alloc) {
          core::f_norm_from_alloc(p, ned.rates(), ned.link_alloc(),
                                  ned.link_fixed(), out, scratch);
        } else {
          core::f_norm(p, ned.rates(), out, scratch);
        }
        return static_cast<double>(num_flows);
      });
}

Case bench_parallel_iteration(std::int32_t blocks, bool pin,
                              double min_ms) {
  Instance inst(768, 6144, blocks);
  const auto part = topo::BlockPartition::make(inst.clos, blocks);
  core::NumProblem p(inst.caps);
  core::ParallelConfig cfg;
  cfg.num_blocks = blocks;
  cfg.pin.enable = pin;
  core::ParallelNed engine(p, part, cfg);
  for (const auto& [route, bl] : inst.flows) {
    const core::FlowIndex idx =
        p.add_flow(route, core::Utility::log_utility());
    engine.assign_flow(idx, bl.first, bl.second);
  }
  return run_case(
      bench::fmt("parallel_iteration/%d%s", blocks, pin ? "/pinned" : ""),
      min_ms, [&] {
        engine.iterate();
        return static_cast<double>(inst.flows.size());
      });
}

Case bench_rate_codec(double min_ms) {
  Rng rng(3);
  std::vector<double> rates(4096);
  for (auto& r : rates) r = rng.uniform(1e6, 40e9);
  std::size_t i = 0;
  return run_case("rate_codec", min_ms, [&] {
    double acc = 0.0;
    for (int n = 0; n < 1024; ++n) {
      const std::uint16_t code = encode_rate(rates[i++ & 4095]);
      acc += decode_rate(code);
    }
    g_sink = acc;
    return 1024.0;
  });
}

Case bench_message_codec(double min_ms) {
  core::FlowletStartMsg m;
  m.flow_key = 12345;
  m.src_host = 17;
  m.dst_host = 99;
  return run_case("message_codec", min_ms, [&] {
    double acc = 0.0;
    for (int n = 0; n < 1024; ++n) {
      const auto buf = core::encode(m);
      acc += static_cast<double>(core::decode_flowlet_start(buf).flow_key);
    }
    g_sink = acc;
    return 1024.0;
  });
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  const double min_ms =
      flags.double_flag("min-ms", 200.0, "measured time per case (ms)");
  const bool quick = flags.bool_flag(
      "quick", false, "skip the largest problem sizes (CI smoke)");
  const bool pin = flags.bool_flag(
      "pin", false, "also run the parallel engine with row-pinned workers");
  const auto json_path = flags.string_flag(
      "json", "BENCH_ned_micro.json",
      "machine-readable results file (empty disables)");
  flags.done(
      "Microbenchmarks for the NED/F-NORM/parallel inner loops and the "
      "wire codecs (bench_util timers; no external dependency).");

  bench::banner("NED allocator microbenchmarks",
                "per-iteration costs behind the §6.1 table");

  std::vector<Case> cases;
  cases.push_back(bench_ned_iteration(128, 1024, min_ms));
  cases.push_back(bench_ned_iteration(384, 3072, min_ms));
  if (!quick) {
    cases.push_back(bench_ned_iteration(768, 6144, min_ms));
    cases.push_back(bench_ned_iteration(1536, 12288, min_ms));
    cases.push_back(bench_ned_iteration(1536, 49152, min_ms));
  }
  cases.push_back(bench_f_norm(3072, false, min_ms));
  cases.push_back(bench_f_norm(3072, true, min_ms));
  if (!quick) {
    cases.push_back(bench_f_norm(12288, false, min_ms));
    cases.push_back(bench_f_norm(12288, true, min_ms));
  }
  for (const std::int32_t blocks : {1, 2, 4, 8}) {
    if (quick && blocks > 4) continue;
    cases.push_back(bench_parallel_iteration(blocks, false, min_ms));
    if (pin) cases.push_back(bench_parallel_iteration(blocks, true, min_ms));
  }
  cases.push_back(bench_rate_codec(min_ms));
  cases.push_back(bench_message_codec(min_ms));

  bench::Table table({"case", "time/iter", "items/sec", "iters"});
  for (const Case& c : cases) {
    table.add_row({c.name,
                   c.ns_per_iter >= 1e6
                       ? bench::fmt("%.0f us", c.ns_per_iter / 1e3)
                       : bench::fmt("%.0f ns", c.ns_per_iter),
                   bench::fmt("%.3gM", c.items_per_sec / 1e6),
                   bench::fmt("%lld", static_cast<long long>(c.iters))});
  }
  table.print();

  if (!json_path.empty()) {
    bench::Json json;
    json.add_run_metadata();
    for (const Case& c : cases) {
      auto& j = json.append("cases");
      j.set("name", c.name);
      j.set("ns_per_iter", c.ns_per_iter);
      j.set("items_per_sec", c.items_per_sec);
    }
    json.write_file(json_path);
  }
  return 0;
}
