// Chaos engine tests: the invariant oracles catch deliberately
// re-introduced bugs (mutation testing via the AgentConfig test hooks),
// the shrinker reduces violating schedules to 1-minimal repros that
// replay deterministically from their seed, and green campaigns are
// bit-identical across runs.
//
// The mutation pattern: every oracle is only as good as the bug it
// catches. Each test flips exactly one hardening flag (epoch
// filtering, lease enforcement, fd hygiene), runs a schedule that
// exercises the corresponding fault, and asserts the matching oracle
// -- and only a real schedule, not a unit-test stub -- fires. The
// hardened plane runs the *same* schedule green, proving the oracle
// discriminates.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/messages.h"
#include "net/client.h"
#include "sim/chaos.h"
#include "sim/control_plane_harness.h"
#include "sim/oracles.h"

namespace ft::sim {
namespace {

// Small plane with the full liveness stack on: service heartbeats and
// leases, agent heartbeats and dead-peer detection.
HarnessConfig plane_cfg(std::uint64_t seed, bool vip) {
  HarnessConfig cfg;
  cfg.num_endpoints = 32;
  cfg.flows_per_endpoint = 2;
  cfg.servers_per_rack = 8;
  cfg.spines = 2;
  cfg.stable_rounds = 3;
  cfg.max_virtual_us = 30'000'000;
  cfg.seed = seed;
  cfg.poll_period_us = 1'000;
  cfg.heartbeat_period_us = 10'000;
  cfg.rate_lease_us = 50'000;
  cfg.peer_timeout_us = 300'000;
  cfg.agent_heartbeat_period_us = 10'000;
  cfg.agent_peer_timeout_us = 150'000;
  cfg.use_vip_proxy = vip;
  return cfg;
}

ChaosConfig chaos_cfg(std::uint64_t plane_seed, bool vip) {
  ChaosConfig cfg;
  cfg.harness = plane_cfg(plane_seed, vip);
  return cfg;
}

// Hand-built schedule (the generator is for campaigns; mutation tests
// want one precisely-aimed fault).
ChaosSchedule manual_schedule(std::vector<ChaosEvent> events) {
  ChaosSchedule s;
  s.seed = 0;
  s.events = std::move(events);
  for (std::size_t i = 0; i < s.events.size(); ++i) {
    s.events[i].idx = static_cast<int>(i);
  }
  return s;
}

// ---------------------------------------------------------------------
// VIP warm restart: the epoch hardening end to end
// ---------------------------------------------------------------------

TEST(VipWarmRestartTest, AgentsSeeNewEpochWithoutDisconnecting) {
  HarnessConfig cfg = plane_cfg(11, /*vip=*/true);
  ControlPlaneHarness h(cfg);
  ASSERT_TRUE(h.run_to_convergence().converged);
  ASSERT_NE(h.proxy(), nullptr);
  for (int i = 0; i < h.num_agents(); ++i) {
    ASSERT_TRUE(h.agent(i).epoch_seen());
    ASSERT_EQ(h.agent(i).observed_epoch(), 1);
  }

  h.restart_service();  // warm: the proxy redials, agents never notice
  ASSERT_TRUE(h.run_to_convergence().converged);

  std::uint64_t invalidated = 0;
  std::uint64_t replays = 0;
  for (int i = 0; i < h.num_agents(); ++i) {
    const net::EndpointAgent& a = h.agent(i);
    EXPECT_EQ(a.observed_epoch(), 2) << "agent " << i;
    // The defining property of a warm restart: zero disconnects.
    EXPECT_EQ(a.stats().disconnects, 0u) << "agent " << i;
    invalidated += a.stats().epoch_invalidated_rates;
    replays += a.stats().epoch_replays;
  }
  // Old-epoch rates were invalidated into fallback, and the epoch
  // advance (not a reconnect) triggered the flowlet replay that
  // rebuilt the allocator's flow set.
  EXPECT_GT(invalidated, 0u);
  EXPECT_EQ(replays, static_cast<std::uint64_t>(h.num_agents()));
  EXPECT_GT(h.proxy()->stats().upstream_redials, 0u);
  EXPECT_EQ(h.allocator().num_active_flowlets(), h.total_flows());

  // The full oracle suite is clean on the hardened plane.
  const Oracles orc;
  for (const auto& r : orc.check_quiesce(h)) {
    ADD_FAILURE() << r.oracle << ": " << r.detail;
  }
}

TEST(VipWarmRestartTest, StaleHeartbeatsAndUpdatesAreDiscarded) {
  // epoch_newer is serial arithmetic: adoption must survive wraparound.
  EXPECT_TRUE(core::epoch_newer(1, 65535));
  EXPECT_TRUE(core::epoch_newer(2, 1));
  EXPECT_FALSE(core::epoch_newer(1, 2));
  EXPECT_FALSE(core::epoch_newer(7, 7));
}

// ---------------------------------------------------------------------
// Mutation: epoch filtering disabled -> stale_rate oracle
// ---------------------------------------------------------------------

TEST(ChaosMutationTest, StaleRateBugIsCaughtShrunkAndReplayable) {
  // The re-introduced bug: agents track epochs but never invalidate or
  // replay (epoch_filtering off). Behind a VIP, a service restart then
  // leaves every agent steering traffic on the dead instance's rates.
  ChaosConfig cfg = chaos_cfg(21, /*vip=*/true);
  cfg.harness.agent_epoch_filtering = false;
  const ChaosEngine engine(cfg);

  // Deterministically find a generated (not hand-built) schedule with
  // several events, one of them a restart -- the shrinker needs chaff
  // to remove.
  std::uint64_t seed = 0;
  ChaosSchedule schedule;
  for (std::uint64_t s = 1; s < 200; ++s) {
    const ChaosSchedule cand = engine.generate(s);
    const bool has_restart =
        std::any_of(cand.events.begin(), cand.events.end(),
                    [](const ChaosEvent& e) {
                      return e.kind == ChaosFaultKind::kRestartService;
                    });
    if (has_restart && cand.events.size() >= 3) {
      seed = s;
      schedule = cand;
      break;
    }
  }
  ASSERT_NE(seed, 0u) << "no suitable schedule in seed range";

  const ChaosResult failing = engine.run_schedule(schedule);
  ASSERT_FALSE(failing.ok);
  ASSERT_FALSE(failing.violations.empty());
  EXPECT_EQ(failing.violations.front().oracle, "stale_rate");

  // Shrink to 1-minimal: a restart alone reproduces, so the repro is
  // well under the 3-event bound.
  const ShrinkResult shrunk = engine.shrink(failing);
  ASSERT_FALSE(shrunk.result.ok);
  EXPECT_EQ(shrunk.result.violations.front().oracle, "stale_rate");
  EXPECT_LE(shrunk.minimal.events.size(), 3u);
  EXPECT_GE(shrunk.minimal.events.size(), 1u);

  // 1-minimality, verified directly: removing any single remaining
  // event kills the repro.
  for (std::size_t i = 0; i < shrunk.minimal.events.size(); ++i) {
    ChaosSchedule sub = shrunk.minimal;
    sub.events.erase(sub.events.begin() + static_cast<std::ptrdiff_t>(i));
    const ChaosResult r = engine.run_schedule(sub);
    const bool same_violation =
        !r.ok && !r.violations.empty() &&
        r.violations.front().oracle == "stale_rate";
    EXPECT_FALSE(same_violation)
        << "schedule still violates without event " << i;
  }

  // The repro replays from its seed: regenerating the schedule and
  // filtering by the kept indices reproduces the identical failure.
  std::vector<int> keep;
  for (const ChaosEvent& e : shrunk.minimal.events) keep.push_back(e.idx);
  const ChaosSchedule replayed =
      ChaosEngine::apply_keep(engine.generate(seed), keep);
  ASSERT_EQ(replayed.events.size(), shrunk.minimal.events.size());
  const ChaosResult r1 = engine.run_schedule(replayed);
  const ChaosResult r2 = engine.run_schedule(replayed);
  ASSERT_FALSE(r1.ok);
  EXPECT_EQ(r1.violations.front().oracle, "stale_rate");
  EXPECT_EQ(r1.violations.front().detail,
            shrunk.result.violations.front().detail);
  EXPECT_EQ(r1.violations.front().virtual_us,
            shrunk.result.violations.front().virtual_us);
  EXPECT_EQ(r1.trajectory_hash, r2.trajectory_hash);

  // The repro artifact names the oracle and carries the replay command.
  const std::string json = engine.repro_json(shrunk.result);
  EXPECT_NE(json.find("\"violated_oracle\": \"stale_rate\""),
            std::string::npos);
  EXPECT_NE(json.find("--replay-schedule-seed=" + std::to_string(seed)),
            std::string::npos);

  // Discrimination: the hardened plane survives the same schedule.
  ChaosConfig fixed = cfg;
  fixed.harness.agent_epoch_filtering = true;
  const ChaosEngine hardened(fixed);
  const ChaosResult ok = hardened.run_schedule(schedule);
  EXPECT_TRUE(ok.ok) << (ok.violations.empty()
                             ? "?"
                             : ok.violations.front().oracle + ": " +
                                   ok.violations.front().detail);
}

// ---------------------------------------------------------------------
// Mutation: lease enforcement disabled -> lease_safety oracle
// ---------------------------------------------------------------------

TEST(ChaosMutationTest, LeaseDecayBugIsCaughtByLeaseOracle) {
  // The re-introduced bug: the agent never degrades on lease expiry,
  // so a silent allocator (black hole) leaves it running on stale
  // allocations forever.
  ChaosConfig cfg = chaos_cfg(22, /*vip=*/false);
  cfg.harness.agent_lease_enforcement = false;
  const ChaosEngine engine(cfg);
  const ChaosSchedule s = manual_schedule({
      {ChaosFaultKind::kBlackHole, /*at_us=*/10'000,
       /*duration_us=*/120'000, 0.0, 0},
  });
  const ChaosResult r = engine.run_schedule(s);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.violations.front().oracle, "lease_safety");

  // Hardened contrast: lease enforcement on, same schedule, green.
  ChaosConfig fixed = cfg;
  fixed.harness.agent_lease_enforcement = true;
  const ChaosResult ok = ChaosEngine(fixed).run_schedule(s);
  EXPECT_TRUE(ok.ok) << (ok.violations.empty()
                             ? "?"
                             : ok.violations.front().oracle + ": " +
                                   ok.violations.front().detail);
}

// ---------------------------------------------------------------------
// Mutation: leaked connection slots -> resource_leaks oracle
// ---------------------------------------------------------------------

TEST(ChaosMutationTest, SlotRecyclingBugIsCaughtByLeakOracle) {
  // The re-introduced bug: lost connections never close their
  // transport handle, so every reconnect storm leaks slots.
  ChaosConfig cfg = chaos_cfg(23, /*vip=*/false);
  cfg.harness.agent_leak_fds = true;
  const ChaosEngine engine(cfg);
  const ChaosSchedule s = manual_schedule({
      {ChaosFaultKind::kKillConnections, /*at_us=*/10'000, 0, 0.0, 0},
  });
  const ChaosResult r = engine.run_schedule(s);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.violations.front().oracle, "resource_leaks");

  ChaosConfig fixed = cfg;
  fixed.harness.agent_leak_fds = false;
  const ChaosResult ok = ChaosEngine(fixed).run_schedule(s);
  EXPECT_TRUE(ok.ok) << (ok.violations.empty()
                             ? "?"
                             : ok.violations.front().oracle + ": " +
                                   ok.violations.front().detail);
}

// ---------------------------------------------------------------------
// Green campaigns: deterministic and clean on the hardened plane
// ---------------------------------------------------------------------

TEST(ChaosCampaignTest, HardenedPlaneSurvivesCampaignDeterministically) {
  const ChaosConfig cfg = chaos_cfg(31, /*vip=*/false);
  const ChaosEngine engine(cfg);
  const CampaignResult a = engine.run_campaign(/*campaign_seed=*/7, 4);
  EXPECT_EQ(a.violations, 0)
      << a.first_violation.violations.front().oracle << ": "
      << a.first_violation.violations.front().detail;
  EXPECT_EQ(a.schedules_run, 4);
  const CampaignResult b = engine.run_campaign(/*campaign_seed=*/7, 4);
  EXPECT_EQ(a.campaign_hash, b.campaign_hash);
  EXPECT_EQ(a.reconverge_us, b.reconverge_us);
}

TEST(ChaosCampaignTest, VipPlaneSurvivesWarmRestartCampaign) {
  // Same, through the VIP: warm restarts, redials and epoch adoption
  // all in the loop.
  const ChaosConfig cfg = chaos_cfg(32, /*vip=*/true);
  const ChaosEngine engine(cfg);
  const CampaignResult a = engine.run_campaign(/*campaign_seed=*/9, 3);
  EXPECT_EQ(a.violations, 0)
      << a.first_violation.violations.front().oracle << ": "
      << a.first_violation.violations.front().detail;
}

// Schedule generation is a pure function of the seed.
TEST(ChaosScheduleTest, GenerateIsDeterministicAndBounded) {
  const ChaosConfig cfg = chaos_cfg(1, false);
  const ChaosEngine engine(cfg);
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    const ChaosSchedule a = engine.generate(seed);
    const ChaosSchedule b = engine.generate(seed);
    ASSERT_EQ(a.events.size(), b.events.size());
    ASSERT_GE(a.events.size(),
              static_cast<std::size_t>(cfg.min_events));
    ASSERT_LE(a.events.size(),
              static_cast<std::size_t>(cfg.max_events));
    for (std::size_t i = 0; i < a.events.size(); ++i) {
      EXPECT_EQ(a.events[i].kind, b.events[i].kind);
      EXPECT_EQ(a.events[i].at_us, b.events[i].at_us);
      EXPECT_EQ(a.events[i].duration_us, b.events[i].duration_us);
      EXPECT_EQ(a.events[i].magnitude, b.events[i].magnitude);
      ASSERT_GE(a.events[i].at_us, 0);
      ASSERT_LT(a.events[i].at_us, cfg.window_us);
      if (i > 0) {
        ASSERT_LE(a.events[i - 1].at_us, a.events[i].at_us);
      }
    }
  }
}

}  // namespace
}  // namespace ft::sim
