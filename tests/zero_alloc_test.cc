// Regression tests for the allocation-round hot path's "allocation-free
// in steady state" guarantee (§6.1: the allocator core must keep up with
// the network, so a round must not touch the heap once warm).
//
// A counting global operator new/delete tallies every heap allocation in
// the process; the tests warm an allocator up, then assert that further
// run_iteration rounds -- including rounds that emit a full set of rate
// updates -- perform exactly zero allocations, for both the sequential
// and the §5 parallel backend. A churn-spike test checks the re-reserve
// behaviour: growth happens up front (bounded allocations at flowlet
// start), never inside the emission loop.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "common/rng.h"
#include "core/allocator.h"
#include "core/backend.h"
#include "core/messages.h"
#include "net/frame.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "topo/clos.h"
#include "topo/partition.h"

namespace {

std::atomic<std::uint64_t> g_news{0};

}  // namespace

// Counting overrides: every allocation in the binary (any thread) goes
// through these, so a parallel-backend worker allocating mid-round is
// caught too.
void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ft::core {
namespace {

std::vector<double> caps_of(const topo::ClosTopology& clos) {
  std::vector<double> caps;
  for (const auto& l : clos.graph().links()) {
    caps.push_back(l.capacity_bps);
  }
  return caps;
}

topo::ClosTopology small_clos() {
  topo::ClosConfig cfg;
  cfg.racks = 8;
  cfg.servers_per_rack = 2;
  cfg.spines = 2;
  return topo::ClosTopology(cfg);
}

void start_random_flows(Allocator& alloc, const topo::ClosTopology& clos,
                        int count, std::uint64_t first_key) {
  Rng rng(first_key);
  const int hosts = clos.num_hosts();
  std::vector<LinkId> route;
  for (int i = 0; i < count; ++i) {
    const auto src = static_cast<int>(rng.below(hosts));
    auto dst = static_cast<int>(rng.below(hosts - 1));
    if (dst >= src) ++dst;
    const auto p = clos.host_path(clos.host(src), clos.host(dst),
                                  first_key + static_cast<std::uint64_t>(i));
    route.assign(p.begin(), p.end());
    ASSERT_TRUE(alloc.flowlet_start(
        first_key + static_cast<std::uint64_t>(i), route));
  }
}

std::uint64_t allocations_during_rounds(Allocator& alloc, int rounds,
                                        std::vector<RateUpdate>& out) {
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  for (int i = 0; i < rounds; ++i) {
    out.clear();
    alloc.run_iteration(out);
  }
  return g_news.load(std::memory_order_relaxed) - before;
}

TEST(ZeroAllocTest, SequentialSteadyStateRoundsAreAllocationFree) {
  const auto clos = small_clos();
  Allocator alloc(caps_of(clos), AllocatorConfig{});
  start_random_flows(alloc, clos, 300, 1);
  std::vector<RateUpdate> out;
  // Warm up: sizes every scratch vector and the recycled out-vector.
  for (int i = 0; i < 5; ++i) {
    out.clear();
    alloc.run_iteration(out);
  }
  EXPECT_EQ(allocations_during_rounds(alloc, 50, out), 0u);
}

TEST(ZeroAllocTest, SequentialZeroThresholdEmitsEveryRoundStillAllocFree) {
  // threshold 0 re-emits every flow's rate on every round: the strongest
  // case for the emission loop (maximum push_backs + encodes per round).
  const auto clos = small_clos();
  AllocatorConfig cfg;
  cfg.threshold = 0.0;
  Allocator alloc(caps_of(clos), cfg);
  start_random_flows(alloc, clos, 300, 1);
  std::vector<RateUpdate> out;
  for (int i = 0; i < 5; ++i) {
    out.clear();
    alloc.run_iteration(out);
  }
  const std::uint64_t allocs = allocations_during_rounds(alloc, 50, out);
  EXPECT_GT(out.size(), 0u);  // rounds really are emitting
  EXPECT_EQ(allocs, 0u);
}

TEST(ZeroAllocTest, ParallelBackendSteadyStateRoundsAreAllocationFree) {
  const auto clos = small_clos();
  ParallelConfig pcfg;
  pcfg.num_threads = 2;
  Allocator alloc(caps_of(clos), AllocatorConfig{},
                  parallel_backend(topo::BlockPartition::make(clos, 4),
                                   pcfg));
  start_random_flows(alloc, clos, 300, 1);
  std::vector<RateUpdate> out;
  for (int i = 0; i < 5; ++i) {
    out.clear();
    alloc.run_iteration(out);
  }
  EXPECT_EQ(allocations_during_rounds(alloc, 50, out), 0u);
}

TEST(ZeroAllocTest, MetricsAndTracingEnabledRoundsStayAllocationFree) {
  // The telemetry subsystem's core promise: binding a shared registry
  // and enabling phase tracing must not cost the round a single heap
  // allocation. Handles resolve at construction (cold path); the record
  // path is striped atomics; the tracer's per-thread ring registers on
  // the first span, which the warmup covers.
  const auto clos = small_clos();
  obs::MetricsRegistry reg;
  AllocatorConfig cfg;
  cfg.metrics = &reg;
  cfg.threshold = 0.0;  // maximum emission volume per round
  Allocator alloc(caps_of(clos), cfg);
  start_random_flows(alloc, clos, 300, 1);
  obs::PhaseTracer::set_enabled(true);
  std::vector<RateUpdate> out;
  for (int i = 0; i < 5; ++i) {
    out.clear();
    alloc.run_iteration(out);
  }
  const std::uint64_t allocs = allocations_during_rounds(alloc, 50, out);
  obs::PhaseTracer::set_enabled(false);
  obs::PhaseTracer::reset();
  EXPECT_EQ(allocs, 0u);
  // The rounds really were recorded while staying allocation-free.
  EXPECT_EQ(reg.counter("core.iterations").value(), 55u);
  EXPECT_EQ(reg.histo("core.solve_us").snapshot().count, 55u);
}

TEST(ZeroAllocTest, ChurnSpikeReservesUpFrontNotMidRound) {
  // After a churn spike doubles the flow count, the next round may grow
  // the out-vector -- but only via the single up-front reserve, and once
  // re-warmed the rounds are allocation-free again.
  const auto clos = small_clos();
  AllocatorConfig cfg;
  cfg.threshold = 0.0;
  Allocator alloc(caps_of(clos), cfg);
  start_random_flows(alloc, clos, 200, 1);
  std::vector<RateUpdate> out;
  for (int i = 0; i < 5; ++i) {
    out.clear();
    alloc.run_iteration(out);
  }
  start_random_flows(alloc, clos, 200, 10'000);  // spike
  // The post-spike round emits 400 updates into a 200-capacity vector.
  // Growth happens up front -- one reserve for `out` plus the solver's
  // rates/norm_rates resizes -- so the allocation count is O(1), not
  // O(updates): the emission loop's push_backs stay within the reserve.
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  out.clear();
  alloc.run_iteration(out);
  const std::uint64_t during =
      g_news.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(out.size(), 400u);
  EXPECT_LE(during, 6u);
  // Re-warmed: allocation-free again.
  for (int i = 0; i < 3; ++i) {
    out.clear();
    alloc.run_iteration(out);
  }
  EXPECT_EQ(allocations_during_rounds(alloc, 20, out), 0u);
}

TEST(ZeroAllocTest, FrameWriterSteadyStateBatchesAreAllocationFree) {
  // The fanout path builds one batch per peer per round: rate updates
  // (coalescing latest-wins through the flat open-addressed map) plus
  // the occasional sampled trace-mark echo. Once the payload buffer,
  // the coalescing table and the output vector are warm, a full
  // add+flush cycle must not touch the heap -- flush() clears the
  // table but keeps its capacity.
  net::FrameWriter writer;
  std::vector<std::uint8_t> out;
  auto one_cycle = [&writer, &out] {
    for (std::uint32_t k = 0; k < 300; ++k) {
      core::RateUpdateMsg m;
      m.flow_key = 1000 + k;
      m.rate_code = static_cast<std::uint16_t>(k);
      writer.add(m);
      if (k % 3 == 0) {  // superseded before the flush: coalesces
        m.rate_code = static_cast<std::uint16_t>(k + 1);
        writer.add(m);
      }
    }
    core::TraceMarkMsg mark;
    mark.flow_key = 1001;
    mark.trace_id = 42;
    mark.t_ns[0] = 1;
    writer.add(mark);  // sampling enabled: a mark rides the batch
    // Liveness on: a heartbeat (carrying the rate lease) rides every
    // steady-state period too, and must stay allocation-free.
    writer.add(core::HeartbeatMsg{123456789, 250'000});
    out.clear();
    writer.flush(out);
  };
  for (int i = 0; i < 5; ++i) one_cycle();  // warm
  const std::uint64_t records_before = writer.stats().records;
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  for (int i = 0; i < 50; ++i) one_cycle();
  const std::uint64_t during =
      g_news.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(during, 0u);
  // 300 updates (100 of them coalesced in place) + 1 trace mark + 1
  // heartbeat framed per cycle: the batches really carried the full
  // load.
  EXPECT_EQ(writer.stats().records - records_before, 50u * 302u);
  EXPECT_GE(writer.stats().coalesced_updates, 50u * 100u);
}

TEST(ZeroAllocTest, ReserveMakesChurnAllocationFree) {
  // Allocator::reserve pre-sizes the problem SoA arrays, key map and
  // notification state: flowlet churn below the reserved size performs
  // no allocation at all once the per-link adjacency lists are warm.
  const auto clos = small_clos();
  Allocator alloc(caps_of(clos), AllocatorConfig{});
  alloc.reserve(1024);
  // Pre-resolve the routes so the measured region is pure allocator churn.
  Rng rng(7);
  const int hosts = clos.num_hosts();
  std::vector<std::vector<LinkId>> routes;
  for (int i = 0; i < 512; ++i) {
    const auto src = static_cast<int>(rng.below(hosts));
    auto dst = static_cast<int>(rng.below(hosts - 1));
    if (dst >= src) ++dst;
    const auto p = clos.host_path(clos.host(src), clos.host(dst),
                                  static_cast<std::uint64_t>(i));
    routes.emplace_back(p.begin(), p.end());
  }
  // Warm pass: adjacency vectors reach steady capacity for these routes.
  for (std::size_t i = 0; i < routes.size(); ++i) {
    ASSERT_TRUE(alloc.flowlet_start(1000 + i, routes[i]));
  }
  for (std::size_t i = 0; i < routes.size(); ++i) {
    ASSERT_TRUE(alloc.flowlet_end(1000 + i));
  }
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < routes.size(); ++i) {
    ASSERT_TRUE(alloc.flowlet_start(5000 + i, routes[i]));
  }
  for (std::size_t i = 0; i < routes.size(); ++i) {
    ASSERT_TRUE(alloc.flowlet_end(5000 + i));
  }
  const std::uint64_t during =
      g_news.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(during, 0u);
}

}  // namespace
}  // namespace ft::core
