// Tests for the benchmark churn harnesses (bench/churn_harness.*):
// these drive Figures 5-7 and 12-13, so their own behaviour -- load
// monotonicity, determinism, solver orderings -- is verified here.
#include <gtest/gtest.h>

#include "churn_harness.h"

namespace ft::bench {
namespace {

TEST(UpdateTrafficTest, OverheadIncreasesWithLoad) {
  UpdateTrafficConfig cfg;
  cfg.servers = 32;
  cfg.duration = from_ms(10);
  cfg.load = 0.2;
  const auto low = run_update_traffic(cfg);
  cfg.load = 0.8;
  const auto high = run_update_traffic(cfg);
  EXPECT_GT(high.from_allocator_frac, low.from_allocator_frac);
  EXPECT_GT(high.to_allocator_frac, low.to_allocator_frac);
}

TEST(UpdateTrafficTest, FromAllocatorDominates) {
  // Figure 5's asymmetry: many updates per flowlet, two notifications.
  UpdateTrafficConfig cfg;
  cfg.servers = 32;
  cfg.load = 0.6;
  cfg.duration = from_ms(10);
  const auto r = run_update_traffic(cfg);
  EXPECT_GT(r.from_allocator_bytes, r.to_allocator_bytes);
  EXPECT_GT(r.updates, r.flowlet_starts);  // > 1 update per flowlet
}

TEST(UpdateTrafficTest, WorkloadOrderingMatchesFig5) {
  UpdateTrafficConfig cfg;
  cfg.servers = 32;
  cfg.load = 0.6;
  cfg.duration = from_ms(10);
  cfg.workload = wl::Workload::kWeb;
  const auto web = run_update_traffic(cfg);
  cfg.workload = wl::Workload::kCache;
  const auto cache = run_update_traffic(cfg);
  cfg.workload = wl::Workload::kHadoop;
  const auto hadoop = run_update_traffic(cfg);
  EXPECT_GT(web.from_allocator_frac, cache.from_allocator_frac);
  EXPECT_GT(cache.from_allocator_frac, hadoop.from_allocator_frac);
}

TEST(UpdateTrafficTest, HigherThresholdFewerUpdates) {
  UpdateTrafficConfig cfg;
  cfg.servers = 32;
  cfg.load = 0.6;
  cfg.duration = from_ms(10);
  cfg.threshold = 0.01;
  const auto t1 = run_update_traffic(cfg);
  cfg.threshold = 0.05;
  const auto t5 = run_update_traffic(cfg);
  EXPECT_LT(t5.from_allocator_bytes, t1.from_allocator_bytes);
}

TEST(UpdateTrafficTest, Deterministic) {
  UpdateTrafficConfig cfg;
  cfg.servers = 32;
  cfg.duration = from_ms(5);
  const auto a = run_update_traffic(cfg);
  const auto b = run_update_traffic(cfg);
  EXPECT_EQ(a.from_allocator_bytes, b.from_allocator_bytes);
  EXPECT_EQ(a.to_allocator_bytes, b.to_allocator_bytes);
  EXPECT_EQ(a.updates, b.updates);
}

TEST(ChurnSolverTest, Fig12OrderingAtSmallScale) {
  // FGM over-allocates more than NED; both more than zero.
  ChurnSolverConfig cfg;
  cfg.servers = 32;
  cfg.load = 0.6;
  cfg.duration = from_ms(8);
  cfg.solver = SolverKind::kNed;
  const auto ned = run_churn_solver(cfg);
  cfg.solver = SolverKind::kFgm;
  const auto fgm = run_churn_solver(cfg);
  EXPECT_GT(ned.overalloc_gbps.mean(), 0.0);
  EXPECT_GT(fgm.overalloc_gbps.mean(), 1.5 * ned.overalloc_gbps.mean());
}

TEST(ChurnSolverTest, RtTracksReference) {
  ChurnSolverConfig cfg;
  cfg.servers = 32;
  cfg.load = 0.5;
  cfg.duration = from_ms(8);
  cfg.solver = SolverKind::kNed;
  const auto ref = run_churn_solver(cfg);
  cfg.solver = SolverKind::kNedRt;
  const auto rt = run_churn_solver(cfg);
  EXPECT_NEAR(rt.overalloc_gbps.mean(), ref.overalloc_gbps.mean(),
              0.05 * ref.overalloc_gbps.mean() + 0.5);
}

TEST(ChurnSolverTest, FNormBeatsUNormVsOptimal) {
  // Figure 13 at small scale.
  ChurnSolverConfig cfg;
  cfg.servers = 16;
  cfg.load = 0.5;
  cfg.duration = from_ms(5);
  cfg.exact_every = 50;
  const auto r = run_churn_solver(cfg);
  ASSERT_GT(r.fnorm_frac.count(), 3u);
  EXPECT_GT(r.fnorm_frac.mean(), 0.85);
  EXPECT_LT(r.unorm_frac.mean(), r.fnorm_frac.mean());
}

TEST(UpdateTrafficTest, IntermediariesCutUpdateTraffic) {
  // §7: batching updates per 32-host intermediary instead of per host
  // amortizes the 84-byte minimum frame across many 6-byte updates.
  UpdateTrafficConfig cfg;
  cfg.servers = 64;
  cfg.load = 0.8;
  cfg.duration = from_ms(10);
  const auto direct = run_update_traffic(cfg);
  cfg.hosts_per_intermediary = 32;
  const auto batched = run_update_traffic(cfg);
  EXPECT_LT(batched.from_allocator_bytes,
            direct.from_allocator_bytes / 2);
  // Notifications (to-allocator) are unaffected.
  EXPECT_EQ(batched.to_allocator_bytes, direct.to_allocator_bytes);
}

TEST(ChurnSolverTest, LoadIsApproximatelyConserved) {
  // The drain-at-allocated-rate loop must sustain roughly the offered
  // load: mean active flows should stabilize (not grow unboundedly).
  ChurnSolverConfig cfg;
  cfg.servers = 32;
  cfg.load = 0.5;
  cfg.duration = from_ms(6);
  const auto a = run_churn_solver(cfg);
  cfg.duration = from_ms(12);
  const auto b = run_churn_solver(cfg);
  // Doubling the horizon must not double the active-flow count.
  EXPECT_LT(b.mean_active_flows, 1.6 * a.mean_active_flows);
}

}  // namespace
}  // namespace ft::bench
