// Unit tests for src/obs: log2 bucket-boundary exactness, cross-thread
// record/merge equivalence, registry find-or-create semantics, the
// allocation-free record-path guarantee (counting operator new, same
// technique as zero_alloc_test), export formats, phase tracing, and an
// end-to-end stats-socket scrape.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "net/epoll_loop.h"
#include "obs/export.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/stats_socket.h"
#include "obs/trace.h"

namespace {

std::atomic<std::uint64_t> g_news{0};

}  // namespace

// Counting overrides: every allocation in the binary (any thread) goes
// through these, so the record-path test catches stray allocations from
// worker threads too.
void* operator new(std::size_t size) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace ft::obs {
namespace {

TEST(LatencyHistoTest, BucketBoundariesAreExact) {
  // Bucket 0 holds exact zeros; bucket b >= 1 holds [2^(b-1), 2^b).
  EXPECT_EQ(LatencyHisto::bucket_of(0), 0);
  EXPECT_EQ(LatencyHisto::bucket_of(1), 1);
  EXPECT_EQ(LatencyHisto::bucket_of(2), 2);
  EXPECT_EQ(LatencyHisto::bucket_of(3), 2);
  EXPECT_EQ(LatencyHisto::bucket_of(4), 3);
  for (int b = 1; b <= 62; ++b) {
    const std::uint64_t lo = 1ULL << (b - 1);
    const std::uint64_t hi = (1ULL << b) - 1;
    EXPECT_EQ(LatencyHisto::bucket_of(lo), b) << "lower bound, b=" << b;
    EXPECT_EQ(LatencyHisto::bucket_of(hi), b) << "upper bound, b=" << b;
    EXPECT_DOUBLE_EQ(LatencyHisto::bucket_lower(b),
                     static_cast<double>(lo));
    EXPECT_DOUBLE_EQ(LatencyHisto::bucket_upper(b),
                     static_cast<double>(1ULL << b));
  }
  // The top bucket absorbs everything past the last boundary.
  EXPECT_EQ(LatencyHisto::bucket_of(1ULL << 62), kHistoBuckets - 1);
  EXPECT_EQ(LatencyHisto::bucket_of(~0ULL), kHistoBuckets - 1);
}

TEST(LatencyHistoTest, RecordedValuesLandInTheirBuckets) {
  LatencyHisto h;
  h.record(0);
  h.record(1);
  h.record(5);    // [4, 8) -> bucket 3
  h.record(7);    // same bucket
  h.record(100);  // [64, 128) -> bucket 7
  h.record_signed(-3);  // clamps to 0
  const HistoSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 6u);
  EXPECT_EQ(s.sum, 0u + 1 + 5 + 7 + 100 + 0);
  EXPECT_EQ(s.buckets[0], 2u);  // the zero and the clamped negative
  EXPECT_EQ(s.buckets[1], 1u);
  EXPECT_EQ(s.buckets[3], 2u);
  EXPECT_EQ(s.buckets[7], 1u);
}

TEST(LatencyHistoTest, CrossThreadRecordingMatchesSingleThread) {
  // The same values recorded from 4 threads (landing on different
  // stripes) and from one thread must produce identical snapshots:
  // striping is an implementation detail the merge erases.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20000;
  std::vector<std::vector<std::uint64_t>> values(kThreads);
  Rng rng(71);
  for (auto& v : values) {
    for (int i = 0; i < kPerThread; ++i) {
      v.push_back(rng.next() % 1'000'000);
    }
  }
  LatencyHisto single;
  for (const auto& v : values) {
    for (const std::uint64_t x : v) single.record(x);
  }
  LatencyHisto multi;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (const std::uint64_t x : values[static_cast<std::size_t>(t)]) {
        multi.record(x);
      }
    });
  }
  for (auto& t : threads) t.join();
  const HistoSnapshot a = single.snapshot();
  const HistoSnapshot b = multi.snapshot();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  EXPECT_EQ(a.buckets, b.buckets);
  EXPECT_DOUBLE_EQ(a.p50(), b.p50());
  EXPECT_DOUBLE_EQ(a.p99(), b.p99());
}

TEST(HistoSnapshotTest, MergeEqualsCombinedRecording) {
  LatencyHisto x, y, both;
  for (std::uint64_t v = 0; v < 1000; ++v) {
    (v % 2 ? x : y).record(v);
    both.record(v);
  }
  HistoSnapshot merged = x.snapshot();
  merged.merge(y.snapshot());
  const HistoSnapshot want = both.snapshot();
  EXPECT_EQ(merged.count, want.count);
  EXPECT_EQ(merged.sum, want.sum);
  EXPECT_EQ(merged.buckets, want.buckets);
}

TEST(HistoSnapshotTest, PercentileInterpolatesWithinBucket) {
  LatencyHisto h;
  const HistoSnapshot empty = h.snapshot();
  EXPECT_DOUBLE_EQ(empty.percentile(0.99), 0.0);
  for (int i = 0; i < 100; ++i) h.record(0);
  EXPECT_DOUBLE_EQ(h.snapshot().p50(), 0.0);  // all-zero mass
  LatencyHisto one;
  one.record(100);  // [64, 128)
  const double p = one.snapshot().p99();
  EXPECT_GE(p, 64.0);
  EXPECT_LE(p, 128.0);
}

TEST(CounterTest, StripedAddsSumExactlyAcrossThreads) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kAdds = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kAdds; ++i) c.add(3);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kAdds * 3);
}

TEST(GaugeTest, UpdateMaxKeepsTheGlobalMaximum) {
  Gauge g;
  std::vector<std::thread> threads;
  for (int t = 1; t <= 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 10000; ++i) g.update_max(t * 10000 + i);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(g.value(), 49999);
}

TEST(MetricsRegistryTest, FindOrCreateReturnsStableInstances) {
  MetricsRegistry reg;
  Counter& a = reg.counter("svc.requests");
  a.add(7);
  EXPECT_EQ(&a, &reg.counter("svc.requests"));
  EXPECT_EQ(reg.counter("svc.requests").value(), 7u);
  LatencyHisto& h = reg.histo("svc.latency_us");
  EXPECT_EQ(&h, &reg.histo("svc.latency_us"));
}

TEST(MetricsRegistryTest, SnapshotIsSortedByName) {
  MetricsRegistry reg;
  reg.counter("zebra");
  reg.gauge("alpha");
  reg.histo("mid");
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "alpha");
  EXPECT_EQ(snap[1].name, "mid");
  EXPECT_EQ(snap[2].name, "zebra");
  EXPECT_EQ(snap[0].kind, MetricKind::kGauge);
  EXPECT_EQ(snap[1].kind, MetricKind::kHisto);
  EXPECT_EQ(snap[2].kind, MetricKind::kCounter);
}

TEST(RecordPathTest, RecordingAllocatesNothing) {
  // The tentpole guarantee: once handles are resolved (cold path) and
  // this thread's trace ring is registered (first record), the record
  // path -- counter, gauge, histogram and tracer -- never touches the
  // heap. This is what lets the ~3 us allocation round carry telemetry.
  MetricsRegistry reg;
  Counter& c = reg.counter("hot.counter");
  Gauge& g = reg.gauge("hot.gauge");
  LatencyHisto& h = reg.histo("hot.histo");
  PhaseTracer::set_enabled(true);
  PhaseTracer::record("warmup", 0, 1);  // registers this thread's ring
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    c.add(1);
    g.set(i);
    g.update_max(i);
    h.record(static_cast<std::uint64_t>(i));
    PhaseTracer::record("hot.span", i, 1);
  }
  const std::uint64_t during =
      g_news.load(std::memory_order_relaxed) - before;
  PhaseTracer::set_enabled(false);
  PhaseTracer::reset();
  EXPECT_EQ(during, 0u);
  EXPECT_EQ(c.value(), 10000u);
  EXPECT_EQ(h.snapshot().count, 10000u);
}

TEST(ExportTest, JsonAndPrometheusRenderEveryKind) {
  MetricsRegistry reg;
  reg.counter("test.requests").add(42);
  reg.gauge("test.depth").set(-7);
  reg.histo("test.lat_us").record(100);
  const std::string json = to_json(reg);
  EXPECT_NE(json.find("\"test.requests\""), std::string::npos);
  EXPECT_NE(json.find("\"test.depth\""), std::string::npos);
  EXPECT_NE(json.find("\"test.lat_us\""), std::string::npos);
  EXPECT_NE(json.find("\"ts_us\""), std::string::npos);
  const std::string prom = to_prometheus(reg);
  EXPECT_NE(prom.find("ft_test_requests 42"), std::string::npos);
  EXPECT_NE(prom.find("ft_test_depth -7"), std::string::npos);
  EXPECT_NE(prom.find("ft_test_lat_us_count 1"), std::string::npos);
}

TEST(PhaseTracerTest, DisabledRecordIsDroppedEnabledIsKept) {
  PhaseTracer::reset();
  PhaseTracer::set_enabled(false);
  PhaseTracer::record("dropped", 1, 2);
  PhaseTracer::set_enabled(true);
  PhaseTracer::record("kept", 10, 5);
  PhaseTracer::set_enabled(false);
  const std::string json = PhaseTracer::dump_json();
  EXPECT_EQ(json.find("dropped"), std::string::npos);
  EXPECT_NE(json.find("\"kept\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":5"), std::string::npos);
  PhaseTracer::reset();
}

RoundRecord make_round(std::uint64_t id, double round_us) {
  RoundRecord r;
  r.round = id;
  r.round_us = round_us;
  r.solve_us = round_us * 0.5;
  r.fanout_us = round_us * 0.25;
  return r;
}

TEST(FlightRecorderTest, SteadyStateOutlierPromotesAtTheFloor) {
  FlightRecorder::Config cfg;
  cfg.warmup_rounds = 4;
  cfg.promote_floor_us = 50.0;
  cfg.promote_headroom = 2.0;
  FlightRecorder fr(cfg);
  // Constant 10 us rounds: the p99 estimate sits near 10, so the
  // 2x-headroom term (~20) loses to the 50 us floor.
  for (std::uint64_t i = 0; i < 50; ++i) {
    EXPECT_FALSE(fr.record(make_round(i, 10.0)));
  }
  EXPECT_EQ(fr.promoted(), 0u);
  EXPECT_DOUBLE_EQ(fr.threshold_us(), 50.0);
  EXPECT_TRUE(fr.record(make_round(50, 100.0)));
  EXPECT_EQ(fr.promoted(), 1u);
  const auto bb = fr.black_box();
  ASSERT_EQ(bb.size(), 1u);
  EXPECT_EQ(bb[0].round, 50u);
  EXPECT_DOUBLE_EQ(bb[0].round_us, 100.0);
  // The black-box copy carries the threshold it breached; recent-ring
  // copies stay unmarked.
  EXPECT_FLOAT_EQ(bb[0].threshold_us, 50.0f);
  for (const RoundRecord& r : fr.recent()) {
    EXPECT_FLOAT_EQ(r.threshold_us, 0.0f);
  }
}

TEST(FlightRecorderTest, WarmupOnlyPromotesExtremeOutliers) {
  FlightRecorder::Config cfg;
  cfg.warmup_rounds = 100;
  cfg.promote_floor_us = 50.0;
  FlightRecorder fr(cfg);
  fr.record(make_round(0, 10.0));  // seeds the estimate at 10
  // During warmup the bar is 100x the estimate: a 5x spike that would
  // promote in steady state is ignored while the estimate settles...
  EXPECT_FALSE(fr.record(make_round(1, 60.0)));
  // ...but a genuine 100x+ outlier is still kept.
  EXPECT_TRUE(fr.record(make_round(2, 5000.0)));
  EXPECT_EQ(fr.promoted(), 1u);
}

TEST(FlightRecorderTest, QuantileEstimateTracksConstantInput) {
  FlightRecorder fr;
  for (std::uint64_t i = 0; i < 200; ++i) {
    fr.record(make_round(i, 100.0));
  }
  // First sample seeds at 100; after that the asymmetric steps (up 99x
  // the down-step) saw-tooth around the input, staying within ~10%.
  EXPECT_GT(fr.p99_estimate_us(), 90.0);
  EXPECT_LT(fr.p99_estimate_us(), 110.0);
}

TEST(FlightRecorderTest, RingsWrapAndUnrollOldestFirst) {
  FlightRecorder::Config cfg;
  cfg.ring_capacity = 4;
  cfg.black_box_capacity = 2;
  cfg.warmup_rounds = 0;
  cfg.promote_floor_us = 50.0;
  FlightRecorder fr(cfg);
  // Rounds 0..9 at 10 us (never promoted), with promoted spikes at
  // rounds 3, 6 and 9 -- one more spike than the black box holds.
  for (std::uint64_t i = 0; i < 10; ++i) {
    const bool spike = (i % 3 == 0 && i > 0);
    fr.record(make_round(i, spike ? 500.0 : 10.0));
  }
  EXPECT_EQ(fr.rounds_seen(), 10u);
  const auto recent = fr.recent();
  ASSERT_EQ(recent.size(), 4u);  // capacity, oldest first
  EXPECT_EQ(recent[0].round, 6u);
  EXPECT_EQ(recent[3].round, 9u);
  EXPECT_EQ(fr.promoted(), 3u);
  const auto bb = fr.black_box();
  ASSERT_EQ(bb.size(), 2u);  // oldest promoted entry (round 3) evicted
  EXPECT_EQ(bb[0].round, 6u);
  EXPECT_EQ(bb[1].round, 9u);
}

TEST(FlightRecorderTest, RecordPathAllocatesNothing) {
  FlightRecorder fr;  // default rings, allocated here
  fr.record(make_round(0, 10.0));
  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  for (std::uint64_t i = 1; i < 5000; ++i) {
    // Mix of promoted and unpromoted rounds: both paths are hot.
    fr.record(make_round(i, i % 100 == 0 ? 10000.0 : 10.0));
  }
  const std::uint64_t during =
      g_news.load(std::memory_order_relaxed) - before;
  EXPECT_EQ(during, 0u);
  EXPECT_GT(fr.promoted(), 0u);
}

TEST(FlightRecorderTest, DumpJsonCarriesBothRingsAndRoundTripsToFile) {
  FlightRecorder::Config cfg;
  cfg.warmup_rounds = 0;
  FlightRecorder fr(cfg);
  fr.record(make_round(0, 10.0));
  fr.record(make_round(1, 900.0));  // promoted (floor 50)
  const std::string json = fr.dump_json();
  EXPECT_NE(json.find("\"kind\":\"flight\""), std::string::npos);
  EXPECT_NE(json.find("\"rounds_seen\":2"), std::string::npos);
  EXPECT_NE(json.find("\"promoted\":1"), std::string::npos);
  EXPECT_NE(json.find("\"recent\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"black_box\":[{"), std::string::npos);
  EXPECT_NE(json.find("\"round_us\":900"), std::string::npos);
  const std::string path = "/tmp/ft_obs_test_flight.json";
  ASSERT_TRUE(fr.dump_to_file(path));
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string back(json.size() + 1, '\0');
  back.resize(std::fread(back.data(), 1, back.size(), f));
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(back, json);
}

TEST(StatsSocketTest, FlightVerbServesDumpOrStub) {
  net::EpollLoop loop;
  MetricsRegistry reg;
  FlightRecorder fr;
  fr.record(make_round(7, 10.0));
  StatsSocket bare(loop, "/tmp/ft_obs_test_flight_bare.sock", reg);
  StatsSocket sock(loop, "/tmp/ft_obs_test_flight.sock", reg);
  sock.set_flight(&fr);  // attached before the loop thread starts
  std::thread server([&] { loop.run(); });
  const std::string stub = scrape_stats_socket(bare.path(), "flight");
  const std::string dump = scrape_stats_socket(sock.path(), "flight");
  loop.stop();
  server.join();
  EXPECT_NE(stub.find("no flight recorder attached"), std::string::npos);
  EXPECT_NE(dump.find("\"kind\":\"flight\""), std::string::npos);
  EXPECT_NE(dump.find("\"round\":7"), std::string::npos);
}

TEST(StatsSocketTest, ServesJsonAndPrometheusOverTheSocket) {
  net::EpollLoop loop;
  MetricsRegistry reg;
  reg.counter("probe.hits").add(9);
  StatsSocket sock(loop, "/tmp/ft_obs_test_stats.sock", reg);
  std::thread server([&] { loop.run(); });
  const std::string json = scrape_stats_socket(sock.path(), "json");
  const std::string prom = scrape_stats_socket(sock.path(), "prom");
  loop.stop();
  server.join();
  EXPECT_NE(json.find("\"probe.hits\""), std::string::npos);
  EXPECT_NE(json.find("\"value\": 9"), std::string::npos);
  EXPECT_NE(prom.find("ft_probe_hits 9"), std::string::npos);
  EXPECT_EQ(sock.scrapes(), 2u);
}

}  // namespace
}  // namespace ft::obs
