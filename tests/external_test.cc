// Tests for the §7 "closed loop" extensions: fixed-demand external
// traffic, runtime link-capacity adjustment, and the residual-capacity
// semantics of normalization in their presence.
#include <gtest/gtest.h>

#include <vector>

#include "core/exact.h"
#include "core/flowtune.h"

namespace ft::core {
namespace {

std::vector<LinkId> route(std::initializer_list<std::uint32_t> ids) {
  std::vector<LinkId> r;
  for (auto i : ids) r.emplace_back(i);
  return r;
}

TEST(FixedDemandTest, UtilityBasics) {
  const Utility u = Utility::fixed_demand(3e9);
  EXPECT_TRUE(u.is_fixed());
  EXPECT_DOUBLE_EQ(u.rate(0.0), 3e9);
  EXPECT_DOUBLE_EQ(u.rate(123.0), 3e9);
  EXPECT_DOUBLE_EQ(u.drate(1.0, 3e9), 0.0);
  EXPECT_DOUBLE_EQ(u.value(3e9), 0.0);
  EXPECT_FALSE(Utility::log_utility().is_fixed());
}

TEST(FixedDemandTest, AdaptiveFlowsShareResidualCapacity) {
  // External traffic takes 4G of a 10G link; two adaptive flows share
  // the remaining 6G.
  NumProblem p({10e9});
  p.add_flow(route({0}), Utility::fixed_demand(4e9));
  const FlowIndex a = p.add_flow(route({0}), Utility::log_utility());
  const FlowIndex b = p.add_flow(route({0}), Utility::log_utility());
  NedSolver ned(p);
  for (int i = 0; i < 400; ++i) ned.iterate();
  EXPECT_NEAR(ned.rates()[a], 3e9, 3e9 * 0.01);
  EXPECT_NEAR(ned.rates()[b], 3e9, 3e9 * 0.01);
  EXPECT_LE(ned.link_alloc()[0], 10e9 * 1.001);
}

TEST(FixedDemandTest, FNormNeverScalesExternalTraffic) {
  NumProblem p({10e9});
  const FlowIndex ext =
      p.add_flow(route({0}), Utility::fixed_demand(6e9));
  const FlowIndex a = p.add_flow(route({0}), Utility::log_utility());
  // Deliberately infeasible adaptive rate: F-NORM must squeeze the
  // adaptive flow into the 4G residual, leaving the external flow at 6G.
  std::vector<double> rates(p.num_slots(), 0.0);
  rates[ext] = 6e9;
  rates[a] = 9e9;
  std::vector<double> out(p.num_slots());
  f_norm(p, rates, out);
  EXPECT_DOUBLE_EQ(out[ext], 6e9);
  EXPECT_NEAR(out[a], 4e9, 1.0);
  EXPECT_LE(out[ext] + out[a], 10e9 * (1 + 1e-9));
}

TEST(FixedDemandTest, SaturatedExternalSqueezesAdaptiveToZero) {
  NumProblem p({10e9});
  const FlowIndex ext =
      p.add_flow(route({0}), Utility::fixed_demand(10e9));
  const FlowIndex a = p.add_flow(route({0}), Utility::log_utility());
  std::vector<double> rates(p.num_slots(), 0.0);
  rates[ext] = 10e9;
  rates[a] = 1e9;
  std::vector<double> out(p.num_slots());
  f_norm(p, rates, out);
  EXPECT_DOUBLE_EQ(out[ext], 10e9);
  EXPECT_LT(out[a], 1e5);  // squeezed to the epsilon residual
}

TEST(SetCapacityTest, AllocationsFollowCapacityChanges) {
  NumProblem p({10e9, 40e9});
  const FlowIndex a = p.add_flow(route({0, 1}), Utility::log_utility());
  const FlowIndex b = p.add_flow(route({0}), Utility::log_utility());
  NedSolver ned(p);
  for (int i = 0; i < 300; ++i) ned.iterate();
  EXPECT_NEAR(ned.rates()[a], 5e9, 5e9 * 0.01);
  EXPECT_NEAR(ned.rates()[b], 5e9, 5e9 * 0.01);

  // Link 0 shrinks to 4G (e.g. measured external interference).
  p.set_capacity(0, 4e9);
  for (int i = 0; i < 400; ++i) ned.iterate();
  EXPECT_NEAR(ned.rates()[a], 2e9, 2e9 * 0.02);
  EXPECT_NEAR(ned.rates()[b], 2e9, 2e9 * 0.02);
  EXPECT_LE(ned.link_alloc()[0], 4e9 * 1.001);

  // And grows back.
  p.set_capacity(0, 10e9);
  for (int i = 0; i < 400; ++i) ned.iterate();
  EXPECT_NEAR(ned.rates()[a], 5e9, 5e9 * 0.02);
}

TEST(SetCapacityTest, RateCapAndFloorRefreshed) {
  NumProblem p({10e9, 40e9});
  const FlowIndex f = p.add_flow(route({0, 1}), Utility::log_utility());
  EXPECT_DOUBLE_EQ(p.flow(f).rate_cap(), 10e9);
  p.set_capacity(0, 2e9);
  EXPECT_DOUBLE_EQ(p.flow(f).rate_cap(), 2e9);
  const double expected_floor = 1e9 / (kDemandCapFactor * 2e9);
  EXPECT_DOUBLE_EQ(p.flow(f).price_floor(), expected_floor);
}

TEST(AllocatorExternalTest, EndToEnd) {
  // 4-link toy: external traffic on the shared link; allocator must
  // notify adaptive flows of residual-share rates, and react when the
  // external flow leaves.
  AllocatorConfig cfg;
  cfg.threshold = 0.0;
  cfg.reserve_headroom = false;
  Allocator alloc({10e9, 10e9, 10e9}, cfg);
  EXPECT_TRUE(alloc.external_traffic_start(100, route({1}), 5e9));
  EXPECT_TRUE(alloc.flowlet_start(1, route({0, 1})));
  EXPECT_TRUE(alloc.flowlet_start(2, route({1, 2})));
  std::vector<RateUpdate> updates;
  for (int i = 0; i < 400; ++i) alloc.run_iteration(updates);
  EXPECT_NEAR(alloc.notified_rate(1), 2.5e9, 2.5e9 * 0.02);
  EXPECT_NEAR(alloc.notified_rate(2), 2.5e9, 2.5e9 * 0.02);

  // External traffic ends: adaptive flows reclaim the link.
  EXPECT_TRUE(alloc.flowlet_end(100));
  for (int i = 0; i < 400; ++i) alloc.run_iteration(updates);
  EXPECT_NEAR(alloc.notified_rate(1), 5e9, 5e9 * 0.02);
  EXPECT_NEAR(alloc.notified_rate(2), 5e9, 5e9 * 0.02);
}

TEST(AllocatorExternalTest, SetLinkCapacityAppliesHeadroom) {
  AllocatorConfig cfg;  // threshold 0.01 -> 99% headroom
  Allocator alloc({10e9}, cfg);
  alloc.flowlet_start(1, route({0}));
  std::vector<RateUpdate> updates;
  for (int i = 0; i < 200; ++i) alloc.run_iteration(updates);
  EXPECT_NEAR(alloc.notified_rate(1), 0.99 * 10e9, 10e9 * 0.02);
  alloc.set_link_capacity(0, 5e9);
  for (int i = 0; i < 300; ++i) alloc.run_iteration(updates);
  EXPECT_NEAR(alloc.notified_rate(1), 0.99 * 5e9, 5e9 * 0.02);
}

TEST(ExactTest, ExternalTrafficRespectedAtOptimum) {
  NumProblem p({10e9, 10e9});
  p.add_flow(route({0}), Utility::fixed_demand(7e9));
  const FlowIndex a = p.add_flow(route({0, 1}), Utility::log_utility());
  const FlowIndex b = p.add_flow(route({1}), Utility::log_utility());
  const ExactResult res = solve_exact(p);
  ASSERT_TRUE(res.converged);
  // Flow a bottlenecked by link 0's 3G residual; flow b gets the rest
  // of link 1.
  EXPECT_NEAR(res.rates[a], 3e9, 3e9 * 0.02);
  EXPECT_NEAR(res.rates[b], 7e9, 7e9 * 0.02);
}

}  // namespace
}  // namespace ft::core
