// Tests for the Fastpass-style timeslot arbiter baseline: matching
// validity (each endpoint at most once per slot), maximality, demand
// conservation, fairness under rotation, and throughput accounting.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/rng.h"
#include "core/fastpass.h"

namespace ft::core {
namespace {

TEST(FastpassTest, GrantsAreAValidMatching) {
  FastpassArbiter arb(8);
  arb.add_demand(0, 1, 100000);
  arb.add_demand(0, 2, 100000);  // same src as above
  arb.add_demand(3, 1, 100000);  // same dst as first
  arb.add_demand(4, 5, 100000);
  const auto& grants = arb.allocate_timeslot();
  std::set<std::int32_t> srcs, dsts;
  for (const auto& g : grants) {
    EXPECT_TRUE(srcs.insert(g.src).second) << "src granted twice";
    EXPECT_TRUE(dsts.insert(g.dst).second) << "dst granted twice";
  }
  // 0->1 (or 0->2 / 3->1) plus 4->5: at least 2, at most 3 grants.
  EXPECT_GE(grants.size(), 2u);
  EXPECT_LE(grants.size(), 3u);
}

TEST(FastpassTest, MatchingIsMaximal) {
  Rng rng(3);
  FastpassArbiter arb(16);
  for (int i = 0; i < 40; ++i) {
    const auto s = static_cast<std::int32_t>(rng.below(16));
    auto d = static_cast<std::int32_t>(rng.below(15));
    if (d >= s) ++d;
    arb.add_demand(s, d, 1538 * (1 + static_cast<std::int64_t>(
                                         rng.below(20))));
  }
  for (int slot = 0; slot < 50 && arb.active_pairs() > 0; ++slot) {
    const auto& grants = arb.allocate_timeslot();
    std::set<std::int32_t> srcs, dsts;
    for (const auto& g : grants) {
      srcs.insert(g.src);
      dsts.insert(g.dst);
    }
    // Maximality would be violated if some *ungranted* demand had both
    // endpoints free. We can't inspect internal pairs, but a maximal
    // matching implies: if no grants happened, no demand exists.
    if (arb.active_pairs() > 0) {
      EXPECT_FALSE(grants.empty());
    }
  }
}

TEST(FastpassTest, ServesExactDemand) {
  FastpassArbiter arb(4);
  arb.add_demand(0, 1, 10 * 1538 + 100);  // 11 slots worth
  int slots = 0;
  while (arb.total_backlog_bytes() > 0) {
    arb.allocate_timeslot();
    ++slots;
    ASSERT_LT(slots, 20);
  }
  EXPECT_EQ(slots, 11);
  EXPECT_EQ(arb.stats().bytes_granted, 10 * 1538 + 100);
  EXPECT_EQ(arb.active_pairs(), 0u);
  // Idle slots grant nothing.
  EXPECT_TRUE(arb.allocate_timeslot().empty());
}

TEST(FastpassTest, RotationSharesContendedDestination) {
  // Three sources into one destination: only one can win per slot; over
  // 3k slots each should get roughly a third.
  FastpassArbiter arb(4);
  arb.add_demand(0, 3, 1538 * 1000);
  arb.add_demand(1, 3, 1538 * 1000);
  arb.add_demand(2, 3, 1538 * 1000);
  std::array<int, 3> wins{};
  for (int slot = 0; slot < 3000; ++slot) {
    for (const auto& g : arb.allocate_timeslot()) {
      ++wins[static_cast<std::size_t>(g.src)];
    }
  }
  for (int w : wins) EXPECT_NEAR(w, 1000, 150);
}

TEST(FastpassTest, AggregatesDemandPerPair) {
  FastpassArbiter arb(4);
  arb.add_demand(0, 1, 1000);
  arb.add_demand(0, 1, 538);
  EXPECT_EQ(arb.active_pairs(), 1u);
  EXPECT_EQ(arb.total_backlog_bytes(), 1538);
  arb.allocate_timeslot();
  EXPECT_EQ(arb.total_backlog_bytes(), 0);
}

TEST(FastpassTest, FullBisectionSlotIsFullyMatched) {
  // A permutation demand matrix must be fully granted every slot (the
  // matching is perfect when demands are a permutation).
  const std::int32_t n = 32;
  FastpassArbiter arb(n);
  for (std::int32_t s = 0; s < n; ++s) {
    arb.add_demand(s, (s + 7) % n, 1538 * 100);
  }
  for (int slot = 0; slot < 100; ++slot) {
    EXPECT_EQ(arb.allocate_timeslot().size(),
              static_cast<std::size_t>(n));
  }
  EXPECT_EQ(arb.total_backlog_bytes(), 0);
}

}  // namespace
}  // namespace ft::core
