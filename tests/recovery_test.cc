// Recovery drills for the fault-tolerant control plane: allocator
// kill/restart with agent-side replay (warm restart), disconnect storms
// that must leak nothing, rate leases decaying to the fallback under a
// black-holed network, and dead-peer culling via heartbeats. Everything
// is driven deterministically: manual allocation rounds, seeded backoff
// jitter, and the FaultJail proxy for in-flight faults.
#include <gtest/gtest.h>

#include <dirent.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <set>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/ratecode.h"
#include "common/rng.h"
#include "core/allocator.h"
#include "net/client.h"
#include "net/epoll_loop.h"
#include "net/faultjail.h"
#include "net/frame.h"
#include "net/server.h"
#include "topo/clos.h"

namespace ft::net {
namespace {

topo::ClosConfig small_clos() {
  topo::ClosConfig cfg;
  cfg.racks = 4;
  cfg.servers_per_rack = 4;
  cfg.spines = 2;
  cfg.fabric_link_bps = 20e9;
  return cfg;
}

std::vector<double> caps_of(const topo::ClosTopology& clos) {
  std::vector<double> caps;
  for (const auto& l : clos.graph().links()) caps.push_back(l.capacity_bps);
  return caps;
}

core::AllocatorConfig alloc_cfg() {
  core::AllocatorConfig cfg;
  cfg.threshold = 0.0;  // every change notifies: exact equivalence
  return cfg;
}

std::size_t open_fd_count() {
  std::size_t n = 0;
  DIR* d = ::opendir("/proc/self/fd");
  if (d == nullptr) return 0;
  while (::readdir(d) != nullptr) ++n;
  ::closedir(d);
  return n;
}

struct Flow {
  std::uint32_t key;
  std::uint16_t src;
  std::uint16_t dst;
};

std::vector<Flow> make_flows(const topo::ClosTopology& clos, Rng& rng,
                             int count, std::uint32_t first_key) {
  std::vector<Flow> flows;
  const int hosts = clos.num_hosts();
  std::uint32_t key = first_key;
  for (int f = 0; f < count; ++f) {
    const auto src = static_cast<std::uint16_t>(rng.below(hosts));
    auto dst = static_cast<std::uint16_t>(rng.below(hosts - 1));
    if (dst >= src) ++dst;
    flows.push_back({key++, src, dst});
  }
  return flows;
}

// Reference run: the same flows through an uninterrupted in-process
// allocator, iterated to convergence.
std::vector<std::uint16_t> reference_codes(const topo::ClosTopology& clos,
                                           const std::vector<Flow>& flows,
                                           int iters) {
  core::Allocator ref(caps_of(clos), alloc_cfg());
  for (const Flow& fl : flows) {
    const auto p =
        clos.host_path(clos.host(fl.src), clos.host(fl.dst), fl.key);
    const std::vector<LinkId> route(p.begin(), p.end());
    EXPECT_TRUE(ref.flowlet_start(fl.key, route));
  }
  std::vector<core::RateUpdate> sink;
  for (int i = 0; i < iters; ++i) {
    sink.clear();
    ref.run_iteration(sink);
  }
  std::vector<std::uint16_t> codes;
  for (const Flow& fl : flows) {
    codes.push_back(encode_rate(ref.notified_rate(fl.key)));
  }
  return codes;
}

class RecoveryTest : public ::testing::Test {
 protected:
  // Pumps the loop and every agent until `cond` holds. Unlike the
  // net_test pumps, agents in kReconnecting keep polling true.
  template <class Cond>
  bool pump_until(EpollLoop& loop, std::vector<EndpointAgent*>& agents,
                  Cond cond, std::int64_t budget_us = 10'000'000) {
    const std::int64_t deadline = EpollLoop::now_us() + budget_us;
    while (!cond()) {
      if (EpollLoop::now_us() > deadline) return false;
      loop.run_once(1'000);
      for (auto* a : agents) a->poll();
    }
    return true;
  }
};

// Tentpole drill: kill the allocator mid-run, restart it on the same
// port, and require (a) every agent reconnects with jittered backoff,
// (b) the fresh allocator rebuilds its whole flow set purely from the
// agents' replayed flowlet_start batches, and (c) the post-recovery
// allocation matches an uninterrupted run. Parameterized over inline
// and sharded service modes.
class KillRestartTest : public RecoveryTest,
                        public ::testing::WithParamInterface<int> {};

TEST_P(KillRestartTest, WarmRestartRebuildsFromReplay) {
  const topo::ClosTopology clos(small_clos());
  const int num_shards = GetParam();

  EpollLoop loop;
  auto alloc = std::make_unique<core::Allocator>(caps_of(clos), alloc_cfg());
  ServerConfig scfg;
  scfg.tcp_port = 0;
  scfg.iteration_period_us = 0;
  scfg.num_shards = num_shards;
  auto svc = std::make_unique<AllocatorService>(loop, *alloc, clos, scfg);
  const int port = svc->tcp_port();
  ASSERT_GT(port, 0);

  constexpr int kAgents = 4;
  constexpr int kFlowsPerAgent = 6;
  Rng rng(0xD1E5E1);
  std::vector<std::vector<Flow>> flows;
  std::vector<Flow> all_flows;
  for (int a = 0; a < kAgents; ++a) {
    flows.push_back(make_flows(clos, rng, kFlowsPerAgent,
                               1 + static_cast<std::uint32_t>(a) * 100));
    all_flows.insert(all_flows.end(), flows[a].begin(), flows[a].end());
  }

  std::vector<std::unique_ptr<EndpointAgent>> agents;
  std::vector<EndpointAgent*> raw;
  for (int a = 0; a < kAgents; ++a) {
    AgentConfig acfg;
    acfg.auto_reconnect = true;
    acfg.reconnect_backoff_min_us = 5'000;
    acfg.reconnect_backoff_max_us = 200'000;
    acfg.reconnect_seed = 0xC0FFEE + static_cast<std::uint64_t>(a);
    agents.push_back(std::make_unique<EndpointAgent>(acfg));
    ASSERT_TRUE(agents.back()->connect_tcp("127.0.0.1", port));
    raw.push_back(agents.back().get());
  }
  for (int a = 0; a < kAgents; ++a) {
    for (const Flow& fl : flows[a]) {
      ASSERT_TRUE(agents[a]->flowlet_start(fl.key, fl.src, fl.dst));
    }
    agents[a]->flush();
  }
  ASSERT_TRUE(pump_until(loop, raw, [&] {
    if (num_shards > 0) svc->run_allocation_round();
    return alloc->num_active_flowlets() == all_flows.size();
  }));

  // Converge once so the kill interrupts a steady state, not a cold one.
  for (int i = 0; i < 100; ++i) {
    svc->run_allocation_round();
    loop.run_once(0);
    for (auto* a : raw) a->poll();
  }

  // --- Kill. Leave one agent with a batched-but-unflushed record so
  // the close path exercises the counted drop (satellite 1: buffered
  // updates must never vanish silently).
  ASSERT_TRUE(agents[0]->flowlet_start(9000, 0, 5));
  svc.reset();
  alloc = std::make_unique<core::Allocator>(caps_of(clos), alloc_cfg());

  // Every agent notices the dead socket and enters backoff.
  ASSERT_TRUE(pump_until(loop, raw, [&] {
    return std::all_of(raw.begin(), raw.end(), [](EndpointAgent* a) {
      return a->conn_state() == ConnState::kReconnecting;
    });
  }));
  for (auto* a : raw) {
    EXPECT_EQ(a->stats().disconnects, 1u);
    EXPECT_FALSE(a->connected());
  }
  // The counted drop is deterministic only inline: with shard threads
  // there can be in-flight downstream bytes, so the agent's first
  // post-kill poll may drain them successfully and then flush() the
  // batched record into the half-closed socket (send() succeeds until
  // the RST lands), leaving nothing pending when death is detected.
  if (num_shards == 0) {
    EXPECT_GE(raw[0]->stats().queue_drops_on_close, 1u);
  }

  // Jitter spread: with distinct seeds the scheduled backoffs must not
  // collapse onto one instant (thundering herd).
  std::set<std::int64_t> backoffs;
  for (auto* a : raw) backoffs.insert(a->last_backoff_us());
  EXPECT_GT(backoffs.size(), 1u);
  for (auto* a : raw) {
    EXPECT_GE(a->last_backoff_us(), 2'500);
    EXPECT_LT(a->last_backoff_us(), 200'000);
  }

  // --- Restart on the same port with a fresh allocator: no state
  // survives except what the agents replay.
  scfg.tcp_port = port;
  svc = std::make_unique<AllocatorService>(loop, *alloc, clos, scfg);
  ASSERT_EQ(svc->tcp_port(), port);

  ASSERT_TRUE(pump_until(loop, raw, [&] {
    if (num_shards > 0) svc->run_allocation_round();
    return std::all_of(raw.begin(), raw.end(), [](EndpointAgent* a) {
      return a->conn_state() == ConnState::kConnected;
    });
  }));
  for (auto* a : raw) {
    EXPECT_EQ(a->stats().reconnects, 1u);
    EXPECT_GE(a->stats().reconnect_attempts, 1u);
    // Agent 0 also replays flow 9000: its start record died unflushed
    // with the old connection, but the flow table is the truth replay
    // rebuilds from. Registration refreshes (periodic re-replay while
    // any flow is unacked) each replay the table *as of that moment*,
    // so they add between 0 and flows_here starts apiece; the
    // reconnect replay itself is the exact lower bound.
    const auto flows_here = static_cast<std::uint64_t>(kFlowsPerAgent) +
                            (a == raw[0] ? 1u : 0u);
    EXPECT_GE(a->stats().replayed_starts, flows_here);
    EXPECT_LE(a->stats().replayed_starts,
              flows_here * (1u + a->stats().registration_refreshes));
  }

  // The warm restart rebuilt the full flow set from replay alone
  // (flow 9000's start record died with the old connection: replay
  // rebuilds from the flow table, where it IS live, so it comes back).
  ASSERT_TRUE(pump_until(loop, raw, [&] {
    if (num_shards > 0) svc->run_allocation_round();
    return alloc->num_active_flowlets() == all_flows.size() + 1;
  }));

  ASSERT_TRUE(agents[0]->flowlet_end(9000));
  agents[0]->flush();
  ASSERT_TRUE(pump_until(loop, raw, [&] {
    if (num_shards > 0) svc->run_allocation_round();
    return alloc->num_active_flowlets() == all_flows.size();
  }));

  // --- Equivalence: converge the restarted service and compare against
  // an uninterrupted reference run.
  constexpr int kIters = 300;
  for (int i = 0; i < kIters; ++i) {
    svc->run_allocation_round();
    loop.run_once(0);
    for (auto* a : raw) a->poll();
  }
  // Deadline-poll the delivery of the last updates instead of hoping a
  // fixed drain window is long enough (the old 50 x 1ms wait flaked on
  // loaded runners); the exact-timing variants of this drill live on
  // the virtual clock in sim_transport_test.cc.
  const std::vector<std::uint16_t> want = reference_codes(
      clos, all_flows, kIters);
  ASSERT_TRUE(pump_until(loop, raw, [&] {
    std::size_t j = 0;
    for (int a = 0; a < kAgents; ++a) {
      for (const Flow& fl : flows[a]) {
        const int diff = static_cast<int>(agents[a]->rate_code(fl.key)) -
                         static_cast<int>(want[j]);
        if (diff > 2 || diff < -2 || agents[a]->rate_bps(fl.key) <= 0.0) {
          return false;
        }
        ++j;
      }
    }
    return true;
  }));
  std::size_t i = 0;
  for (int a = 0; a < kAgents; ++a) {
    for (const Flow& fl : flows[a]) {
      EXPECT_NEAR(agents[a]->rate_code(fl.key), want[i], 2)
          << "agent " << a << " flow " << fl.key << " after restart";
      EXPECT_GT(agents[a]->rate_bps(fl.key), 0.0);
      ++i;
    }
  }
  EXPECT_EQ(svc->stats().protocol_errors, 0u);
  EXPECT_EQ(svc->stats().rejected_starts, 0u);
}

INSTANTIATE_TEST_SUITE_P(InlineAndSharded, KillRestartTest,
                         ::testing::Values(0, 2));

TEST_F(RecoveryTest, DisconnectStormLeaksNothing) {
  // N agents spread across all shards vanish at once. The service must
  // end every owned flow, free every slot and fd, and leave no stuck
  // key_owner entry -- proven by re-registering the exact same keys.
  const topo::ClosTopology clos(small_clos());
  core::Allocator alloc(caps_of(clos), alloc_cfg());

  EpollLoop loop;
  ServerConfig scfg;
  scfg.tcp_port = 0;
  scfg.iteration_period_us = 0;
  scfg.num_shards = 3;
  AllocatorService svc(loop, alloc, clos, scfg);

  const std::size_t fds_before = open_fd_count();

  constexpr int kAgents = 6;
  constexpr int kFlowsPerAgent = 5;
  Rng rng(0x5709);
  std::vector<std::vector<Flow>> flows;
  for (int a = 0; a < kAgents; ++a) {
    flows.push_back(make_flows(clos, rng, kFlowsPerAgent,
                               1 + static_cast<std::uint32_t>(a) * 64));
  }
  {
    std::vector<std::unique_ptr<EndpointAgent>> agents;
    std::vector<EndpointAgent*> raw;
    for (int a = 0; a < kAgents; ++a) {
      agents.push_back(std::make_unique<EndpointAgent>());
      ASSERT_TRUE(agents.back()->connect_tcp("127.0.0.1", svc.tcp_port()));
      raw.push_back(agents.back().get());
    }
    for (int a = 0; a < kAgents; ++a) {
      for (const Flow& fl : flows[a]) {
        ASSERT_TRUE(agents[a]->flowlet_start(fl.key, fl.src, fl.dst));
      }
      agents[a]->flush();
    }
    ASSERT_TRUE(pump_until(loop, raw, [&] {
      svc.run_allocation_round();
      return alloc.num_active_flowlets() ==
             static_cast<std::size_t>(kAgents * kFlowsPerAgent);
    }));
    ASSERT_EQ(svc.num_connections(), static_cast<std::size_t>(kAgents));
    // The storm: every agent's destructor slams its connection shut.
  }
  std::vector<EndpointAgent*> none;
  ASSERT_TRUE(pump_until(loop, none, [&] {
    svc.run_allocation_round();
    return alloc.num_active_flowlets() == 0 && svc.num_connections() == 0;
  }));

  // No fd leak: agent sockets and their service twins are all gone.
  ASSERT_TRUE(pump_until(loop, none,
                         [&] { return open_fd_count() <= fds_before; }));

  // No stuck ownership: the same keys register cleanly again.
  EndpointAgent again;
  ASSERT_TRUE(again.connect_tcp("127.0.0.1", svc.tcp_port()));
  std::vector<EndpointAgent*> raw2 = {&again};
  for (int a = 0; a < kAgents; ++a) {
    for (const Flow& fl : flows[a]) {
      ASSERT_TRUE(again.flowlet_start(fl.key, fl.src, fl.dst));
    }
  }
  again.flush();
  ASSERT_TRUE(pump_until(loop, raw2, [&] {
    svc.run_allocation_round();
    return alloc.num_active_flowlets() ==
           static_cast<std::size_t>(kAgents * kFlowsPerAgent);
  }));

  // Conservation: every accepted connection was closed, every start
  // ended (the second wave is still live), nothing rejected.
  const auto s = svc.stats();
  EXPECT_EQ(s.accepted, static_cast<std::uint64_t>(kAgents) + 1u);
  EXPECT_EQ(s.closed, static_cast<std::uint64_t>(kAgents));
  EXPECT_EQ(s.flowlet_starts,
            static_cast<std::uint64_t>(2 * kAgents * kFlowsPerAgent));
  EXPECT_EQ(s.flowlet_ends,
            static_cast<std::uint64_t>(kAgents * kFlowsPerAgent));
  EXPECT_EQ(s.rejected_starts, 0u);
  EXPECT_EQ(s.protocol_errors, 0u);
}

TEST_F(RecoveryTest, LeaseExpiryDecaysToFallbackThenReclaims) {
  // The paper's failure story end-to-end: black-hole the network (100%
  // of updates and heartbeats dropped -- the >= 50% acceptance case)
  // and the agent must stop trusting its allocation, decay to the safe
  // fallback rate, fire the FallbackPolicy hook, and hand the flow back
  // on the first fresh update once the network heals.
  const topo::ClosTopology clos(small_clos());
  core::Allocator alloc(caps_of(clos), alloc_cfg());

  EpollLoop loop;
  ServerConfig scfg;
  scfg.tcp_port = 0;
  scfg.iteration_period_us = 0;
  scfg.heartbeat_period_us = 5'000;
  scfg.rate_lease_us = 50'000;
  AllocatorService svc(loop, alloc, clos, scfg);

  FaultJailConfig jcfg;
  jcfg.upstream_port = svc.tcp_port();
  jcfg.seed = 42;
  FaultJail jail(loop, jcfg);

  constexpr double kFallbackBps = 5e6;
  struct HookEvent {
    std::uint32_t key;
    double rate_bps;
    bool entering;
  };
  std::vector<HookEvent> hook_events;
  AgentConfig acfg;
  acfg.fallback_rate_bps = kFallbackBps;
  acfg.fallback_decay = 0.5;
  acfg.fallback_decay_interval_us = 2'000;
  acfg.on_fallback = [&](std::uint32_t key, double bps, bool entering) {
    hook_events.push_back({key, bps, entering});
  };
  EndpointAgent agent(acfg);
  ASSERT_TRUE(agent.connect_tcp("127.0.0.1", jail.port()));
  std::vector<EndpointAgent*> raw = {&agent};

  ASSERT_TRUE(agent.flowlet_start(7, 0, 5));
  ASSERT_TRUE(agent.flowlet_start(8, 1, 9));
  agent.flush();
  ASSERT_TRUE(pump_until(loop, raw, [&] {
    svc.run_allocation_round();
    return alloc.num_active_flowlets() == 2 && agent.rate_bps(7) > 0.0 &&
           agent.rate_bps(8) > 0.0;
  }));
  const std::uint16_t healthy_code7 = agent.rate_code(7);
  ASSERT_GT(agent.rate_bps(7), kFallbackBps);

  // Heartbeats arm the lease.
  ASSERT_TRUE(pump_until(loop, raw, [&] { return agent.lease_fresh(); }));
  EXPECT_EQ(agent.conn_state(), ConnState::kConnected);

  // --- Partition: sockets stay up, nothing gets through.
  jail.set_black_hole(true);
  ASSERT_TRUE(pump_until(loop, raw, [&] {
    svc.run_allocation_round();
    return agent.conn_state() == ConnState::kDegraded;
  }));
  EXPECT_EQ(agent.stats().lease_expiries, 1u);
  EXPECT_FALSE(agent.lease_fresh());

  // Rates decay multiplicatively down to the fallback floor, and the
  // hook reported the handover exactly once per flow.
  ASSERT_TRUE(pump_until(loop, raw, [&] {
    return agent.rate_bps(7) <= kFallbackBps * 1.001 &&
           agent.rate_bps(8) <= kFallbackBps * 1.001;
  }));
  EXPECT_GE(agent.rate_bps(7), kFallbackBps * 0.999);
  {
    std::size_t entered7 = 0;
    std::size_t entered8 = 0;
    for (const HookEvent& e : hook_events) {
      ASSERT_TRUE(e.entering);
      if (e.key == 7) ++entered7;
      if (e.key == 8) ++entered8;
    }
    EXPECT_EQ(entered7, 1u);
    EXPECT_EQ(entered8, 1u);
  }

  // --- Heal: heartbeats re-arm the lease; a fresh update (forced by
  // invalidating the notification) reclaims each flow from fallback.
  jail.set_black_hole(false);
  ASSERT_TRUE(pump_until(loop, raw, [&] {
    return agent.conn_state() == ConnState::kConnected &&
           agent.lease_fresh();
  }));
  EXPECT_GT(agent.stats().heartbeats_received, 0u);
  EXPECT_GT(agent.stats().degraded_us, 0);

  alloc.invalidate_notification(7);
  alloc.invalidate_notification(8);
  ASSERT_TRUE(pump_until(loop, raw, [&] {
    svc.run_allocation_round();
    return hook_events.size() >= 4;
  }));
  std::size_t reclaimed = 0;
  for (const HookEvent& e : hook_events) {
    if (!e.entering) ++reclaimed;
  }
  EXPECT_EQ(reclaimed, 2u);
  EXPECT_NEAR(agent.rate_code(7), healthy_code7, 2);
  EXPECT_GT(agent.rate_bps(7), kFallbackBps);
}

TEST_F(RecoveryTest, PeerTimeoutCullsSilentPeerNotHeartbeatingAgent) {
  // Dead-peer detection in O(heartbeat): a connection that goes silent
  // is culled after peer_timeout_us and its flows freed, while an agent
  // that heartbeats (but has no flowlet churn at all) stays connected.
  const topo::ClosTopology clos(small_clos());
  core::Allocator alloc(caps_of(clos), alloc_cfg());

  EpollLoop loop;
  ServerConfig scfg;
  scfg.tcp_port = 0;
  scfg.iteration_period_us = 0;
  scfg.heartbeat_period_us = 5'000;
  scfg.rate_lease_us = 200'000;
  scfg.peer_timeout_us = 80'000;
  AllocatorService svc(loop, alloc, clos, scfg);

  AgentConfig acfg;
  acfg.heartbeat_period_us = 10'000;
  EndpointAgent agent(acfg);
  ASSERT_TRUE(agent.connect_tcp("127.0.0.1", svc.tcp_port()));
  std::vector<EndpointAgent*> raw = {&agent};
  ASSERT_TRUE(agent.flowlet_start(1, 0, 5));
  agent.flush();

  // The silent peer: registers flows over a raw socket, then never
  // sends another byte.
  const int silent = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(silent, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(svc.tcp_port()));
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(
      ::connect(silent, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
      0);
  {
    FrameWriter w;
    core::FlowletStartMsg m;
    m.flow_key = 500;
    m.src_host = 2;
    m.dst_host = 9;
    w.add(m);
    std::vector<std::uint8_t> bytes;
    w.flush(bytes);
    ASSERT_EQ(::send(silent, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  ASSERT_TRUE(pump_until(loop, raw, [&] {
    return alloc.num_active_flowlets() == 2;
  }));

  // The cull: flow 500 freed, the heartbeating agent untouched even
  // though it never sends another flowlet record.
  ASSERT_TRUE(pump_until(loop, raw, [&] {
    return svc.stats().peer_timeouts >= 1;
  }));
  std::vector<EndpointAgent*> still = {&agent};
  ASSERT_TRUE(pump_until(loop, still, [&] {
    return alloc.num_active_flowlets() == 1;
  }));
  EXPECT_TRUE(alloc.is_active(1));
  EXPECT_FALSE(alloc.is_active(500));
  EXPECT_EQ(svc.stats().peer_timeouts, 1u);
  EXPECT_EQ(svc.num_connections(), 1u);
  EXPECT_EQ(agent.conn_state(), ConnState::kConnected);
  EXPECT_GT(agent.stats().heartbeats_sent, 0u);
  EXPECT_GT(svc.stats().heartbeats_received, 0u);
  EXPECT_GT(svc.stats().heartbeats_sent, 0u);
  ::close(silent);
}

TEST_F(RecoveryTest, FaultJailDropsWholeFramesDeterministically) {
  // The drill instrument itself: downstream frame drops are whole-frame
  // (the agent's parser never sees a torn stream) and seeded (same drop
  // pattern every run).
  const topo::ClosTopology clos(small_clos());
  core::Allocator alloc(caps_of(clos), alloc_cfg());

  EpollLoop loop;
  ServerConfig scfg;
  scfg.tcp_port = 0;
  scfg.iteration_period_us = 0;
  AllocatorService svc(loop, alloc, clos, scfg);

  FaultJailConfig jcfg;
  jcfg.upstream_port = svc.tcp_port();
  jcfg.seed = 7;
  jcfg.drop_down_frac = 0.5;
  FaultJail jail(loop, jcfg);

  EndpointAgent agent;
  ASSERT_TRUE(agent.connect_tcp("127.0.0.1", jail.port()));
  std::vector<EndpointAgent*> raw = {&agent};
  for (std::uint32_t key = 1; key <= 8; ++key) {
    ASSERT_TRUE(agent.flowlet_start(
        key, static_cast<std::uint16_t>(key % 16),
        static_cast<std::uint16_t>((key + 5) % 16)));
  }
  agent.flush();
  ASSERT_TRUE(pump_until(loop, raw, [&] {
    return alloc.num_active_flowlets() == 8;
  }));

  for (int i = 0; i < 200; ++i) {
    svc.run_allocation_round();
    loop.run_once(0);
    agent.poll();
  }
  // Deadline-poll until every flow's rate landed (threshold 0 keeps
  // re-emitting dropped notifications round by round) rather than
  // trusting a fixed drain window on a loaded runner.
  ASSERT_TRUE(pump_until(loop, raw, [&] {
    svc.run_allocation_round();
    for (std::uint32_t key = 1; key <= 8; ++key) {
      if (agent.rate_bps(key) <= 0.0) return false;
    }
    return true;
  }));

  const FaultJailStats& js = jail.stats();
  EXPECT_GT(js.frames_down, 20u);
  EXPECT_GT(js.frames_dropped, js.frames_down / 4);
  EXPECT_LT(js.frames_dropped, js.frames_down);
  // Despite half the batches vanishing, the surviving stream parsed
  // cleanly end to end and rates still landed (threshold 0 re-emits
  // until each notified rate sticks... eventually every flow has one).
  EXPECT_EQ(svc.stats().protocol_errors, 0u);
  EXPECT_GT(agent.stats().updates_received, 0u);
  for (std::uint32_t key = 1; key <= 8; ++key) {
    EXPECT_GT(agent.rate_bps(key), 0.0) << "flow " << key;
  }
}

}  // namespace
}  // namespace ft::net
