// Tests for the discrete-event simulator: event ordering, packet pool
// hygiene, queue disciplines (DropTail/ECN, pFabric, sfqCoDel, XCP), link
// serialization timing and end-to-end path delays.
#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"
#include "topo/clos.h"

namespace ft::sim {
namespace {

// ---------------------------------------------------------------------
// EventQueue
// ---------------------------------------------------------------------

struct Recorder : EventHandler {
  std::vector<std::pair<std::uint32_t, Time>> fired;
  EventQueue* q = nullptr;
  void on_event(std::uint32_t tag, std::uint64_t) override {
    fired.emplace_back(tag, q->now());
  }
};

TEST(EventQueueTest, OrdersByTimeThenSeq) {
  EventQueue q;
  Recorder r;
  r.q = &q;
  q.schedule(30, &r, 3);
  q.schedule(10, &r, 1);
  q.schedule(10, &r, 2);  // same time: insertion order wins
  q.schedule(20, &r, 9);
  q.run_until(100);
  ASSERT_EQ(r.fired.size(), 4u);
  EXPECT_EQ(r.fired[0].first, 1u);
  EXPECT_EQ(r.fired[1].first, 2u);
  EXPECT_EQ(r.fired[2].first, 9u);
  EXPECT_EQ(r.fired[3].first, 3u);
  EXPECT_EQ(q.now(), 100);
}

TEST(EventQueueTest, RunUntilStopsAtHorizon) {
  EventQueue q;
  Recorder r;
  r.q = &q;
  q.schedule(10, &r, 1);
  q.schedule(50, &r, 2);
  q.run_until(20);
  EXPECT_EQ(r.fired.size(), 1u);
  EXPECT_EQ(q.pending(), 1u);
  q.run_until(50);
  EXPECT_EQ(r.fired.size(), 2u);
}

struct Rescheduler : EventHandler {
  EventQueue* q;
  int count = 0;
  void on_event(std::uint32_t, std::uint64_t) override {
    if (++count < 5) q->schedule(q->now() + 10, this, 0);
  }
};

TEST(EventQueueTest, HandlersCanReschedule) {
  EventQueue q;
  Rescheduler r;
  r.q = &q;
  q.schedule(0, &r, 0);
  q.run_until(1000);
  EXPECT_EQ(r.count, 5);
}

TEST(EventQueueTest, StepProcessesOneEvent) {
  EventQueue q;
  Recorder r;
  r.q = &q;
  q.schedule(10, &r, 1);
  q.schedule(20, &r, 2);
  EXPECT_TRUE(q.step());
  EXPECT_EQ(r.fired.size(), 1u);
  EXPECT_EQ(q.now(), 10);
  EXPECT_TRUE(q.step());
  EXPECT_FALSE(q.step());
  EXPECT_EQ(q.processed(), 2u);
}

TEST(PacketPoolTest, RecyclesAndResets) {
  PacketPool pool;
  Packet* a = pool.alloc();
  a->flow_id = 42;
  a->payload = 1460;
  pool.free(a);
  Packet* b = pool.alloc();
  EXPECT_EQ(b, a);  // recycled
  EXPECT_EQ(b->flow_id, 0u);  // reset
  EXPECT_EQ(b->payload, 0);
  pool.free(b);
  EXPECT_EQ(pool.outstanding(), 0u);
}

// ---------------------------------------------------------------------
// Queues
// ---------------------------------------------------------------------

struct DropCounter : DropSink {
  std::vector<Packet*> dropped;
  PacketPool* pool = nullptr;
  void on_drop(Packet* p) override {
    dropped.push_back(p);
    if (pool) pool->free(p);
  }
};

Packet* make_pkt(PacketPool& pool, std::int64_t payload,
                 std::uint32_t flow = 0, std::int64_t seq = 0) {
  Packet* p = pool.alloc();
  p->flow_id = flow;
  p->payload = payload;
  p->seq = seq;
  p->finalize_size();
  return p;
}

TEST(DropTailTest, FifoAndDrop) {
  PacketPool pool;
  DropCounter sink;
  sink.pool = &pool;
  DropTailQueue q(3200);
  q.set_drop_sink(&sink);
  Packet* a = make_pkt(pool, 1460, 1);
  Packet* b = make_pkt(pool, 1460, 2);
  Packet* c = make_pkt(pool, 1460, 3);  // exceeds 3200B with a+b queued
  q.enqueue(a, 0);
  q.enqueue(b, 0);
  q.enqueue(c, 0);
  EXPECT_EQ(sink.dropped.size(), 1u);
  EXPECT_EQ(q.dequeue(0), a);
  EXPECT_EQ(q.dequeue(0), b);
  EXPECT_EQ(q.dequeue(0), nullptr);
  pool.free(a);
  pool.free(b);
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(DropTailTest, EcnMarksAboveThreshold) {
  PacketPool pool;
  DropCounter sink;
  sink.pool = &pool;
  DropTailQueue q(1 << 20, 3000);
  q.set_drop_sink(&sink);
  std::vector<Packet*> pkts;
  for (int i = 0; i < 5; ++i) {
    Packet* p = make_pkt(pool, 1460);
    p->ecn_capable = true;
    q.enqueue(p, 0);
    pkts.push_back(p);
  }
  // First two arrive under the threshold (0 and 1538 bytes queued);
  // later arrivals see >= 3000 queued and get marked.
  EXPECT_FALSE(pkts[0]->ecn_marked);
  EXPECT_FALSE(pkts[1]->ecn_marked);
  EXPECT_TRUE(pkts[2]->ecn_marked);
  EXPECT_TRUE(pkts[4]->ecn_marked);
  for (auto* p : pkts) {
    q.dequeue(0);
    pool.free(p);
  }
}

TEST(PfabricQueueTest, DequeuesMinRemaining) {
  PacketPool pool;
  DropCounter sink;
  sink.pool = &pool;
  PfabricQueue q(1 << 20);
  q.set_drop_sink(&sink);
  Packet* big = make_pkt(pool, 1460, 1);
  big->remaining = 100000;
  Packet* small = make_pkt(pool, 1460, 2);
  small->remaining = 1460;
  q.enqueue(big, 0);
  q.enqueue(small, 0);
  EXPECT_EQ(q.dequeue(0), small);  // priority inversion of FIFO
  EXPECT_EQ(q.dequeue(0), big);
  pool.free(big);
  pool.free(small);
}

TEST(PfabricQueueTest, SameFlowStaysInOrder) {
  PacketPool pool;
  DropCounter sink;
  sink.pool = &pool;
  PfabricQueue q(1 << 20);
  q.set_drop_sink(&sink);
  // Same flow: remaining decreases with seq, but dequeue must prefer the
  // earliest seq of the chosen flow.
  Packet* first = make_pkt(pool, 1460, 7, /*seq=*/0);
  first->remaining = 4380;
  Packet* second = make_pkt(pool, 1460, 7, /*seq=*/1460);
  second->remaining = 2920;
  q.enqueue(first, 0);
  q.enqueue(second, 0);
  EXPECT_EQ(q.dequeue(0), first);
  EXPECT_EQ(q.dequeue(0), second);
  pool.free(first);
  pool.free(second);
}

TEST(PfabricQueueTest, DropsMaxRemainingOnOverflow) {
  PacketPool pool;
  DropCounter sink;
  sink.pool = &pool;
  PfabricQueue q(3200);
  q.set_drop_sink(&sink);
  Packet* big = make_pkt(pool, 1460, 1);
  big->remaining = 100000;
  Packet* mid = make_pkt(pool, 1460, 2);
  mid->remaining = 50000;
  Packet* small = make_pkt(pool, 1460, 3);
  small->remaining = 1460;
  q.enqueue(big, 0);
  q.enqueue(mid, 0);
  q.enqueue(small, 0);  // overflow: evict `big`, keep small
  ASSERT_EQ(sink.dropped.size(), 1u);
  EXPECT_EQ(sink.dropped[0], big);
  EXPECT_EQ(q.dequeue(0), small);
  EXPECT_EQ(q.dequeue(0), mid);
  pool.free(small);
  pool.free(mid);
}

TEST(PfabricQueueTest, RejectsArrivalIfItIsWorst) {
  PacketPool pool;
  DropCounter sink;
  sink.pool = &pool;
  PfabricQueue q(3200);
  q.set_drop_sink(&sink);
  Packet* a = make_pkt(pool, 1460, 1);
  a->remaining = 1000;
  Packet* b = make_pkt(pool, 1460, 2);
  b->remaining = 2000;
  Packet* worst = make_pkt(pool, 1460, 3);
  worst->remaining = 99999;
  q.enqueue(a, 0);
  q.enqueue(b, 0);
  q.enqueue(worst, 0);
  ASSERT_EQ(sink.dropped.size(), 1u);
  EXPECT_EQ(sink.dropped[0], worst);
  q.dequeue(0);
  q.dequeue(0);
  pool.free(a);
  pool.free(b);
}

TEST(SfqCodelTest, SeparatesFlowsRoundRobin) {
  PacketPool pool;
  DropCounter sink;
  sink.pool = &pool;
  SfqCodelQueue q;
  q.set_drop_sink(&sink);
  // Flow 1 floods; flow 2 sends one packet. DRR must serve flow 2 within
  // one quantum even though it arrived last.
  std::vector<Packet*> flood;
  for (int i = 0; i < 20; ++i) {
    Packet* p = make_pkt(pool, 1460, 1, i * 1460);
    q.enqueue(p, 0);
    flood.push_back(p);
  }
  Packet* lone = make_pkt(pool, 1460, 2);
  q.enqueue(lone, 0);
  // Collect the first few dequeues; the lone packet must appear within
  // the first two.
  Packet* d1 = q.dequeue(0);
  Packet* d2 = q.dequeue(0);
  EXPECT_TRUE(d1 == lone || d2 == lone);
  pool.free(d1);
  pool.free(d2);
  while (Packet* p = q.dequeue(0)) pool.free(p);
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(SfqCodelTest, CodelDropsUnderSustainedDelay) {
  PacketPool pool;
  DropCounter sink;
  sink.pool = &pool;
  SfqCodelConfig cfg;
  cfg.target = 50 * kMicrosecond;
  cfg.interval = 1 * kMillisecond;
  SfqCodelQueue q(cfg);
  q.set_drop_sink(&sink);
  // Feed and drain at a rate that keeps sojourn far above target for
  // many intervals: enqueue 10 packets every ms, dequeue 5.
  Time now = 0;
  std::int64_t seq = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 10; ++i) {
      q.enqueue(make_pkt(pool, 1460, 1, seq), now);
      seq += 1460;
    }
    for (int i = 0; i < 5; ++i) {
      if (Packet* p = q.dequeue(now)) pool.free(p);
    }
    now += 1 * kMillisecond;
  }
  EXPECT_GT(sink.dropped.size(), 0u);
  while (Packet* p = q.dequeue(now)) pool.free(p);
}

TEST(XcpQueueTest, GrantsPositiveFeedbackWhenIdle) {
  PacketPool pool;
  DropCounter sink;
  sink.pool = &pool;
  XcpQueue q(10e9);
  q.set_drop_sink(&sink);
  Time now = 0;
  double last_feedback = 0;
  // Trickle packets from a small-cwnd flow; after the first interval
  // rollover the router should grant positive feedback (spare capacity).
  for (int i = 0; i < 100; ++i) {
    Packet* p = make_pkt(pool, 1460, 1, i * 1460);
    p->xcp_cwnd_bytes = 14600;
    p->xcp_rtt_sec = 20e-6;
    p->xcp_feedback_bytes = 1e18;
    q.enqueue(p, now);
    Packet* out = q.dequeue(now);
    if (out != nullptr) {
      last_feedback = out->xcp_feedback_bytes;
      pool.free(out);
    }
    now += 100 * kMicrosecond;  // 1460B / 100us << 10G: mostly idle
  }
  EXPECT_GT(last_feedback, 0.0);
  EXPECT_LT(last_feedback, 1e17);  // header actually processed
}

// ---------------------------------------------------------------------
// Link + Network timing
// ---------------------------------------------------------------------

topo::ClosConfig tiny_clos() {
  topo::ClosConfig cfg;
  cfg.racks = 2;
  cfg.servers_per_rack = 2;
  cfg.spines = 1;
  cfg.fabric_link_bps = 20e9;
  return cfg;
}

struct DeliverySink {
  std::vector<std::pair<Packet*, Time>> got;
};

TEST(NetworkTest, EndToEndLatencyMatchesTopology) {
  Simulator s;
  topo::ClosTopology clos(tiny_clos());
  Network net(s.events, s.pool, clos, [](double) {
    return std::make_unique<DropTailQueue>(1 << 20);
  });
  DeliverySink sink;
  net.set_delivery_handler([&](Packet* p) {
    sink.got.emplace_back(p, s.now());
  });

  // Intra-rack (2 hops): host egress 2us + 2x (serialize 1538B @ 10G =
  // 1.2304us + prop 1.5us) + host ingress 2us.
  Packet* p = s.pool.alloc();
  p->src_host = 0;
  p->dst_host = 1;
  p->payload = kMss;
  p->finalize_size();
  const auto path = clos.host_path(clos.host(0), clos.host(1), 0);
  p->set_path(path.begin(), path.size());
  net.send(p);
  s.run_until(from_us(100));
  ASSERT_EQ(sink.got.size(), 1u);
  const Time expect = 2 * from_us(2) + 2 * (tx_time(1538, 10e9) +
                                            from_us(1.5));
  EXPECT_EQ(sink.got[0].second, expect);
  s.pool.free(sink.got[0].first);
}

TEST(LinkTest, BackToBackPacketsPipeline) {
  Simulator s;
  topo::ClosTopology clos(tiny_clos());
  Network net(s.events, s.pool, clos, [](double) {
    return std::make_unique<DropTailQueue>(1 << 20);
  });
  std::vector<Time> arrivals;
  net.set_delivery_handler([&](Packet* p) {
    arrivals.push_back(s.now());
    s.pool.free(p);
  });
  const auto path = clos.host_path(clos.host(0), clos.host(1), 0);
  for (int i = 0; i < 3; ++i) {
    Packet* p = s.pool.alloc();
    p->src_host = 0;
    p->dst_host = 1;
    p->payload = kMss;
    p->finalize_size();
    p->set_path(path.begin(), path.size());
    net.send(p);
  }
  s.run_until(from_us(100));
  ASSERT_EQ(arrivals.size(), 3u);
  // Successive arrivals separated by exactly one serialization time
  // (pipelined through the 2-hop path at equal rates).
  const Time ser = tx_time(1538, 10e9);
  EXPECT_EQ(arrivals[1] - arrivals[0], ser);
  EXPECT_EQ(arrivals[2] - arrivals[1], ser);
}

}  // namespace
}  // namespace ft::sim
